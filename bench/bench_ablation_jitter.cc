// Ablation: network jitter — the root cause of out-of-order arrivals and
// hence of t_wait(F) (paper Sec. II-D: "Scheduling and fluctuating delays
// of connections introduce indetermination, and thus entries can no longer
// reach a follower in order"). With no jitter, NB-Raft has nothing to fix;
// the gap over Raft widens with disorder.

#include <cstdio>

#include "bench/bench_util.h"

using namespace nbraft;

namespace {

harness::ThroughputResult Run(raft::Protocol protocol, SimDuration jitter,
                              const bench::BenchMode& mode) {
  harness::ClusterConfig config;
  config.num_nodes = 3;
  config.num_clients = 256;
  config.payload_size = 4096;
  config.client_think = Micros(5);
  config.protocol = protocol;
  config.network.jitter_mean = jitter;
  config.seed = 37;
  config.release_payloads = true;
  return harness::RunThroughputExperiment(config, mode.warmup(),
                                          mode.measure());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchMode mode = bench::ParseMode(argc, argv);
  const std::vector<int> jitter_us =
      mode.quick ? std::vector<int>{0, 160}
                 : std::vector<int>{0, 40, 80, 160, 320, 640, 1280};

  std::printf("Ablation — network jitter (3 replicas, 256 clients, 4 KB)\n\n");
  std::printf("%-12s %14s %14s %10s %16s\n", "jitter us", "Raft kop/s",
              "NB-Raft kop/s", "gain", "Raft t_wait us");
  for (const int j : jitter_us) {
    const auto raft = Run(raft::Protocol::kRaft, Micros(j), mode);
    const auto nb = Run(raft::Protocol::kNbRaft, Micros(j), mode);
    std::printf("%-12d %14.2f %14.2f %9.1f%% %16.0f\n", j,
                raft.throughput_kops, nb.throughput_kops,
                raft.throughput_kops > 0
                    ? (nb.throughput_kops / raft.throughput_kops - 1.0) *
                          100.0
                    : 0.0,
                raft.wait_mean_us);
    std::fprintf(stderr, ".");
  }
  std::fprintf(stderr, "\n");
  std::printf("\n(no jitter -> no disorder -> no NB-Raft advantage; the "
              "gain grows with disorder)\n");
  return 0;
}
