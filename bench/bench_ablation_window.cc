// Ablation: sliding-window size w. The paper sets w = 10000 ("it is never
// filled up in the experiments") and notes Raft == NB-Raft at w = 0. This
// sweep shows where the benefit comes from: a handful of window slots
// captures most of the gain, because the out-of-order span is bounded by
// jitter x in-flight depth.

#include <cstdio>

#include "bench/bench_util.h"

using namespace nbraft;

int main(int argc, char** argv) {
  const bench::BenchMode mode = bench::ParseMode(argc, argv);
  const std::vector<int> windows =
      mode.quick ? std::vector<int>{0, 16}
                 : std::vector<int>{0, 1, 2, 4, 8, 16, 64, 256, 10000};

  std::printf("Ablation — sliding-window size (3 replicas, 256 clients, "
              "4 KB)\n\n");
  std::printf("%-10s %12s %14s %14s %16s\n", "window", "kop/s",
              "latency ms", "weak/req", "t_wait mean us");
  double w0 = 0;
  for (const int w : windows) {
    harness::ClusterConfig config;
    config.num_nodes = 3;
    config.num_clients = 256;
    config.payload_size = 4096;
    config.client_think = Micros(5);
    config.protocol = raft::Protocol::kNbRaft;
    config.window_size = w;
    config.seed = 31;
    config.release_payloads = true;
    const harness::ThroughputResult r = harness::RunThroughputExperiment(
        config, mode.warmup(), mode.measure());
    if (w == 0) w0 = r.throughput_kops;
    std::printf("%-10d %12.2f %14.2f %14.2f %16.0f\n", w, r.throughput_kops,
                r.unblock_latency_ms, r.weak_ratio, r.wait_mean_us);
    std::fprintf(stderr, ".");
  }
  std::fprintf(stderr, "\n");
  std::printf("\n(w = 0 is original Raft: %.1f kop/s; the curve shows how "
              "few slots already unblock the pipeline)\n", w0);
  return 0;
}
