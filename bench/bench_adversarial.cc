// Blast-radius study: what each protocol-level adversary costs the
// cluster, and how much of that cost each mitigation claws back. Sweeps
// attack {none, disruptive server, vote withholder, election storm} x
// mitigation {none, prevote, cq_lease, all} x protocol {Raft, NB-Raft}
// on fixed seeds and reports, per cell, the leaderless (unavailable)
// virtual time, healthy-leader depositions, term inflation and ingest
// throughput.
//
// The acceptance row pair this file exists for: under disruptive_server,
// the *_none cells must show depositions >= 1 (the attack lands) while
// the *_all cells show exactly 0 (the mitigations hold) — on both
// protocols. tools/check_perf_smoke.py additionally gates events/sec per
// cell against the committed BENCH_adversarial.json.
//
// The 32-cell grid fans out through the parallel sweep scheduler — each
// cell owns its Cluster and Simulator, so --workers N runs cells on N
// cores. Per-cell ev/s is only baseline-comparable at --workers 1 (the
// default); higher counts are for fast iteration on the attack matrix.
//
// Usage: bench_adversarial [--quick] [--workers N] [--out PATH]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "chaos/chaos_plan.h"
#include "chaos/nemesis.h"
#include "harness/cluster.h"
#include "sim/simulator.h"
#include "sweep/scheduler.h"

using namespace nbraft;

namespace {

enum class Attack { kNone, kDisruptive, kWithholder, kStorm };
enum class Mitigation { kNone, kPreVote, kCqLease, kAll };

const char* AttackName(Attack a) {
  switch (a) {
    case Attack::kNone: return "calm";
    case Attack::kDisruptive: return "disruptive";
    case Attack::kWithholder: return "withholder";
    case Attack::kStorm: return "storm";
  }
  return "?";
}

const char* MitigationName(Mitigation m) {
  switch (m) {
    case Mitigation::kNone: return "none";
    case Mitigation::kPreVote: return "prevote";
    case Mitigation::kCqLease: return "cq_lease";
    case Mitigation::kAll: return "all";
  }
  return "?";
}

struct CellResult {
  std::string name;
  uint64_t events = 0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  double virtual_ms = 0.0;
  uint64_t requests_completed = 0;
  /// Virtual ms (5ms sampling) during the attack window with no live
  /// leader anywhere — the blast radius in availability terms.
  double unavailable_ms = 0.0;
  uint64_t leader_depositions = 0;
  uint64_t checkquorum_stepdowns = 0;
  uint64_t terms_started = 0;
  uint64_t prevotes_rejected = 0;
  uint64_t max_term = 0;
};

double WallMs(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

CellResult RunCell(raft::Protocol protocol, Attack attack, Mitigation m,
                   SimDuration span) {
  CellResult r;
  r.name = std::string(protocol == raft::Protocol::kRaft ? "raft" : "nbraft") +
           "_" + AttackName(attack) + "_" + MitigationName(m);

  harness::ClusterConfig config;
  config.num_nodes = 5;
  config.num_clients = 16;
  config.protocol = protocol;
  config.window_size = 64;
  config.payload_size = 512;
  config.client_think = Micros(50);
  config.election_timeout = Millis(150);
  config.seed = 20260808;  // Fixed: the sweep compares cells, not runs.
  config.release_payloads = true;
  config.pre_vote = m == Mitigation::kPreVote || m == Mitigation::kAll;
  config.check_quorum = m == Mitigation::kCqLease || m == Mitigation::kAll;
  config.leader_lease = m == Mitigation::kCqLease || m == Mitigation::kAll;

  chaos::ChaosPlan plan;
  plan.seed = 99;
  plan.min_gap = Millis(40);
  plan.max_gap = Millis(150);
  // Isolations must outlive one election timeout or the disruptive
  // victim's timer never fires while it is cut off.
  plan.min_duration = Millis(250);
  plan.max_duration = Millis(450);
  switch (attack) {
    case Attack::kNone: break;
    case Attack::kDisruptive:
      plan.mix = {chaos::FaultKind::kDisruptiveServer};
      break;
    case Attack::kWithholder:
      plan.mix = {chaos::FaultKind::kVoteWithholder};
      break;
    case Attack::kStorm:
      plan.mix = {chaos::FaultKind::kElectionStorm};
      break;
  }

  harness::Cluster cluster(config);
  cluster.Start();
  if (!cluster.AwaitLeader()) {
    std::fprintf(stderr, "%s: no leader\n", r.name.c_str());
    return r;
  }
  cluster.StartClients();
  chaos::Nemesis nemesis(&cluster, plan);
  if (attack != Attack::kNone) nemesis.Start();

  const auto start = std::chrono::steady_clock::now();
  const uint64_t events_before = cluster.sim()->events_processed();
  const SimTime virt_before = cluster.sim()->Now();

  // Step the attack window in 5ms slices, sampling leader liveness: the
  // integral of the leaderless slices is the unavailability window.
  const SimDuration slice = Millis(5);
  for (SimTime t = virt_before + slice; t <= virt_before + span; t += slice) {
    cluster.RunFor(slice);
    if (cluster.leader() == nullptr) {
      r.unavailable_ms += static_cast<double>(slice) / kMillisecond;
    }
  }
  nemesis.Stop();
  nemesis.HealAll();
  cluster.RunFor(Millis(500));  // Drain: retries land, commits catch up.

  r.wall_ms = WallMs(start);
  r.events = cluster.sim()->events_processed() - events_before;
  r.virtual_ms =
      static_cast<double>(cluster.sim()->Now() - virt_before) / kMillisecond;
  r.events_per_sec =
      r.wall_ms > 0 ? static_cast<double>(r.events) / (r.wall_ms / 1000.0)
                    : 0.0;
  r.requests_completed = cluster.Collect().requests_completed;
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    const raft::NodeStats& ns = cluster.node(i)->stats();
    r.leader_depositions += ns.leader_depositions;
    r.checkquorum_stepdowns += ns.checkquorum_stepdowns;
    r.terms_started += ns.terms_started;
    r.prevotes_rejected += ns.prevotes_rejected;
    if (!cluster.node(i)->crashed() &&
        static_cast<uint64_t>(cluster.node(i)->current_term()) > r.max_term) {
      r.max_term = static_cast<uint64_t>(cluster.node(i)->current_term());
    }
  }
  return r;
}

void WriteJson(const std::string& path,
               const std::vector<CellResult>& results) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"adversarial\",\n  \"workloads\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"events\": %llu, \"wall_ms\": %.1f, "
        "\"events_per_sec\": %.0f, \"virtual_ms\": %.1f, "
        "\"requests_completed\": %llu, \"unavailable_ms\": %.1f, "
        "\"leader_depositions\": %llu, \"checkquorum_stepdowns\": %llu, "
        "\"terms_started\": %llu, \"prevotes_rejected\": %llu, "
        "\"max_term\": %llu}%s\n",
        r.name.c_str(), static_cast<unsigned long long>(r.events), r.wall_ms,
        r.events_per_sec, r.virtual_ms,
        static_cast<unsigned long long>(r.requests_completed),
        r.unavailable_ms,
        static_cast<unsigned long long>(r.leader_depositions),
        static_cast<unsigned long long>(r.checkquorum_stepdowns),
        static_cast<unsigned long long>(r.terms_started),
        static_cast<unsigned long long>(r.prevotes_rejected),
        static_cast<unsigned long long>(r.max_term),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int workers = 1;
  std::string out = "BENCH_adversarial.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    }
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
  }
  const SimDuration span = quick ? Seconds(2) : Seconds(5);

  // The attack x mitigation x protocol grid as independent sweep cells,
  // written to pre-sized slots so output order is grid order no matter
  // which worker ran what.
  struct CellSpec {
    raft::Protocol protocol;
    Attack attack;
    Mitigation m;
  };
  std::vector<CellSpec> specs;
  for (const raft::Protocol protocol :
       {raft::Protocol::kRaft, raft::Protocol::kNbRaft}) {
    for (const Attack attack : {Attack::kNone, Attack::kDisruptive,
                                Attack::kWithholder, Attack::kStorm}) {
      for (const Mitigation m : {Mitigation::kNone, Mitigation::kPreVote,
                                 Mitigation::kCqLease, Mitigation::kAll}) {
        specs.push_back(CellSpec{protocol, attack, m});
      }
    }
  }
  std::vector<CellResult> results(specs.size());
  std::vector<sweep::SweepTask> tasks;
  tasks.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const CellSpec& spec = specs[i];
    CellResult* slot = &results[i];
    tasks.push_back(sweep::SweepTask{
        std::string(AttackName(spec.attack)) + "_" +
            MitigationName(spec.m),
        [spec, slot, span](uint64_t /*task_seed*/) {
          *slot = RunCell(spec.protocol, spec.attack, spec.m, span);
          sweep::TaskOutput out;
          out.fingerprint = slot->events;  // Deterministic per cell.
          out.events = slot->events;
          out.detail = slot->name;
          return out;
        }});
  }
  sweep::SweepOptions options;
  options.workers = workers;
  sweep::SweepScheduler scheduler(options);
  const sweep::SweepReport sweep = scheduler.Run(tasks);
  if (!sweep.ok()) {
    std::fprintf(stderr, "%s\n", sweep.Summary().c_str());
    return 1;
  }

  std::printf("%-28s %10s %12s %8s %7s %7s %7s %8s\n", "cell", "reqs",
              "events/sec", "unavail", "depose", "cqstep", "terms",
              "max_term");
  for (const CellResult& r : results) {
    std::printf("%-28s %10llu %12.0f %7.0fms %7llu %7llu %7llu %8llu\n",
                r.name.c_str(),
                static_cast<unsigned long long>(r.requests_completed),
                r.events_per_sec, r.unavailable_ms,
                static_cast<unsigned long long>(r.leader_depositions),
                static_cast<unsigned long long>(r.checkquorum_stepdowns),
                static_cast<unsigned long long>(r.terms_started),
                static_cast<unsigned long long>(r.max_term));
  }
  WriteJson(out, results);
  std::printf("\nwrote %s\n", out.c_str());

  // Self-check of the acceptance pair so a regression fails the bench
  // run itself, not only downstream JSON consumers.
  int rc = 0;
  for (const CellResult& r : results) {
    const bool disruptive = r.name.find("_disruptive_") != std::string::npos;
    if (disruptive && r.name.find("_none") != std::string::npos &&
        r.leader_depositions < 1) {
      std::fprintf(stderr, "FAIL %s: attack landed no deposition\n",
                   r.name.c_str());
      rc = 1;
    }
    if (disruptive && r.name.find("_all") != std::string::npos &&
        r.leader_depositions != 0) {
      std::fprintf(stderr, "FAIL %s: mitigations leaked a deposition\n",
                   r.name.c_str());
      rc = 1;
    }
  }
  return rc;
}
