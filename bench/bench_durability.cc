// Durability-cost bench: what the simulated disk charges the protocol for
// making acknowledgements durable. Sweeps the fsync barrier cost through
// {0, 100us, 1ms} with group commit on and off (plus a diskless reference
// row), on the Fig. 14-style closed-loop NB-Raft cluster, and reports
// requests completed, fsync counts and kernel events/sec per cell.
//
// Two things this trajectory guards:
//  * group commit must amortize barriers — at equal fsync cost, the
//    group-commit row completes far more requests per fsync than the
//    per-record row;
//  * the fsync-cost-0 row must track the diskless row closely — the
//    durable path's bookkeeping alone must not throttle the pipeline.
//
// Usage: bench_durability [--quick] [--out PATH]
//
// Writes a JSON report (default BENCH_durability.json in the CWD) in the
// same schema as BENCH_sim_kernel.json, so tools/check_perf_smoke.py can
// compare events/sec per cell against the committed baseline.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "sim/simulator.h"

using namespace nbraft;

namespace {

struct CellResult {
  std::string name;
  uint64_t events = 0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  double virtual_ms = 0.0;
  uint64_t requests_completed = 0;
  uint64_t fsyncs = 0;
  uint64_t entries_appended = 0;
};

double WallMs(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

CellResult RunCell(const std::string& name, bool disk_enabled,
                   SimDuration fsync_latency, bool group_commit,
                   SimDuration span) {
  harness::ClusterConfig config;
  config.num_nodes = 3;
  config.num_clients = 64;
  config.protocol = raft::Protocol::kNbRaft;
  config.payload_size = 4096;
  config.client_think = Micros(5);
  config.seed = 4321;
  config.release_payloads = true;
  config.disk.enabled = disk_enabled;
  config.disk.write_latency = disk_enabled ? Micros(2) : 0;
  config.disk.fsync_latency = fsync_latency;
  config.disk.group_commit = group_commit;

  harness::Cluster cluster(config);
  cluster.Start();
  if (!cluster.AwaitLeader()) {
    std::fprintf(stderr, "%s: no leader\n", name.c_str());
    return CellResult{name};
  }
  cluster.StartClients();

  const auto start = std::chrono::steady_clock::now();
  const uint64_t events_before = cluster.sim()->events_processed();
  const SimTime virt_before = cluster.sim()->Now();
  cluster.RunFor(span);

  CellResult r;
  r.name = name;
  r.wall_ms = WallMs(start);
  r.events = cluster.sim()->events_processed() - events_before;
  r.virtual_ms =
      static_cast<double>(cluster.sim()->Now() - virt_before) / kMillisecond;
  r.events_per_sec =
      r.wall_ms > 0 ? static_cast<double>(r.events) / (r.wall_ms / 1000.0)
                    : 0.0;
  r.requests_completed = cluster.Collect().requests_completed;
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    r.fsyncs += cluster.node(i)->stats().fsyncs_completed;
    r.entries_appended += cluster.node(i)->stats().entries_appended;
  }
  return r;
}

void WriteJson(const std::string& path,
               const std::vector<CellResult>& results) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"durability\",\n  \"workloads\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"events\": %llu, "
                 "\"wall_ms\": %.1f, \"events_per_sec\": %.0f, "
                 "\"virtual_ms\": %.1f, \"requests_completed\": %llu, "
                 "\"fsyncs\": %llu, \"entries_appended\": %llu}%s\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.events),
                 r.wall_ms, r.events_per_sec, r.virtual_ms,
                 static_cast<unsigned long long>(r.requests_completed),
                 static_cast<unsigned long long>(r.fsyncs),
                 static_cast<unsigned long long>(r.entries_appended),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_durability.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
  }
  const SimDuration span = quick ? Millis(200) : Millis(600);

  struct Cell {
    const char* name;
    SimDuration fsync;
    bool group_commit;
  };
  const Cell kCells[] = {
      {"nbraft_fsync0us_gc", 0, true},
      {"nbraft_fsync0us_nogc", 0, false},
      {"nbraft_fsync100us_gc", Micros(100), true},
      {"nbraft_fsync100us_nogc", Micros(100), false},
      {"nbraft_fsync1ms_gc", Millis(1), true},
      {"nbraft_fsync1ms_nogc", Millis(1), false},
  };

  std::vector<CellResult> results;
  results.push_back(
      RunCell("nbraft_nodisk", /*disk_enabled=*/false, 0, true, span));
  for (const Cell& cell : kCells) {
    results.push_back(RunCell(cell.name, /*disk_enabled=*/true, cell.fsync,
                              cell.group_commit, span));
  }

  std::printf("%-24s %12s %10s %14s %10s %10s\n", "cell", "events",
              "wall_ms", "events/sec", "reqs", "fsyncs");
  for (const CellResult& r : results) {
    std::printf("%-24s %12llu %10.1f %14.0f %10llu %10llu\n", r.name.c_str(),
                static_cast<unsigned long long>(r.events), r.wall_ms,
                r.events_per_sec,
                static_cast<unsigned long long>(r.requests_completed),
                static_cast<unsigned long long>(r.fsyncs));
  }
  WriteJson(out, results);
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
