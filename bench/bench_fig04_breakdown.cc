// Fig. 4 + Table I: proportions of time during log replication, measured
// on the IoTDB profile and the Ratis-FileStore profile, cross-checked
// against the Petri-net replication model of Sec. II (Fig. 3).
//
// Paper's observations to reproduce:
//  * t_wait(F) is a dominant protocol-related cost in both systems;
//  * Ratis shows a higher t_idx(L) (heavier indexing lock) and a larger
//    t_apply(L) (I/O per request) than IoTDB.

#include <cstdio>

#include "bench/bench_util.h"
#include "petri/replication_model.h"

using namespace nbraft;

namespace {

void RunProfile(const char* name, harness::SystemProfile profile,
                const bench::BenchMode& mode) {
  harness::ClusterConfig config;
  config.num_nodes = 3;
  config.num_clients = 64;
  config.payload_size = 4096;
  config.protocol = raft::Protocol::kRaft;
  config.profile = profile;
  config.seed = 4;
  const harness::ThroughputResult r =
      harness::RunThroughputExperiment(config, mode.warmup(), mode.measure());
  std::printf("\n== %s profile (Raft, 64 clients, 4 KB) ==\n", name);
  std::printf("throughput: %.1f kop/s; mean t_wait(F): %.0f us\n",
              r.throughput_kops, r.wait_mean_us);
  std::printf("%s", r.breakdown.ToTable().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchMode mode = bench::ParseMode(argc, argv);
  std::printf("Fig. 4 / Table I — proportions of time during log "
              "replication\n");

  RunProfile("IoTDB", harness::SystemProfile::kIoTDB, mode);
  RunProfile("Ratis FileStore", harness::SystemProfile::kRatis, mode);

  // Petri-net cross-check (Sec. II): same qualitative ordering from the
  // analytical model.
  petri::ReplicationModel::Params params;
  params.num_clients = 256;
  params.num_dispatchers = 256;
  params.out_of_order_probability = 0.35;
  petri::ReplicationModel model(params);
  model.Run(Seconds(2));
  std::printf("\n== Petri-net model of Fig. 3 (Raft, analytical) ==\n");
  std::printf("throughput: %.1f kop/s; blue-loop turns: %llu\n",
              model.ThroughputOps() / 1000.0,
              static_cast<unsigned long long>(model.WaitLoopTurns()));
  std::printf("%s", model.PhaseBreakdown().ToTable().c_str());

  std::printf("\nTable I — notation (see metrics/breakdown.h for the "
              "bottleneck column)\n");
  for (int i = 0; i < metrics::kNumPhases; ++i) {
    const auto phase = static_cast<metrics::Phase>(i);
    std::printf("  %-12s %s\n",
                std::string(metrics::PhaseNotation(phase)).c_str(),
                std::string(metrics::PhaseDescription(phase)).c_str());
  }
  return 0;
}
