// Fig. 14: throughput and latency vs number of concurrent clients with
// 4 KB requests, 3 replicas, all seven protocols.
//
// Paper shapes to reproduce: throughput rises with concurrency, peaks,
// then declines under resource competition; NB-Raft ≈ +30% over Raft at
// 1024 clients; NB-Raft+CRaft best; VGRaft worst.

#include <cstdio>

#include "bench/bench_util.h"

using namespace nbraft;

int main(int argc, char** argv) {
  const bench::BenchMode mode = bench::ParseMode(argc, argv);
  const std::vector<double> clients =
      mode.full ? std::vector<double>{1, 4, 16, 64, 256, 512, 768, 1024}
                : (mode.quick ? std::vector<double>{16, 256}
                              : std::vector<double>{1, 16, 64, 256, 1024});

  const auto results = bench::RunSweep(
      mode, clients, bench::AllProtocols(), [](double x,
                                               harness::ClusterConfig* c) {
        c->num_nodes = 3;
        c->num_clients = static_cast<int>(x);
        c->payload_size = 4096;
        c->client_think = Micros(5);
      });

  bench::PrintTable("Fig. 14(a) — varying concurrency, 4 KB requests",
                    "#clients", clients, bench::AllProtocols(), results,
                    /*latency=*/false);
  bench::PrintTable("Fig. 14(b) — varying concurrency, 4 KB requests",
                    "#clients", clients, bench::AllProtocols(), results,
                    /*latency=*/true);

  // Headline number: NB-Raft vs Raft at the highest concurrency.
  const auto& last = results.back();
  const double raft = last[0].throughput_kops;
  const double nb = last[1].throughput_kops;
  std::printf("\nNB-Raft vs Raft at %d clients: %+0.1f%%  "
              "(paper: about +30%%)\n",
              static_cast<int>(clients.back()),
              (nb / raft - 1.0) * 100.0);
  return 0;
}
