// Fig. 15: throughput and latency vs replication number (2..9 replicas),
// 4 KB requests.
//
// Paper shapes: NB-Raft's gap over Raft is largest at 2 replicas; KRaft
// equals Raft at 2 replicas (nothing to relay); CRaft equals Raft at 2
// replicas (cannot fragment) and may exceed NB-Raft at 9.

#include <cstdio>

#include "bench/bench_util.h"

using namespace nbraft;

int main(int argc, char** argv) {
  const bench::BenchMode mode = bench::ParseMode(argc, argv);
  const std::vector<double> replicas =
      mode.full ? std::vector<double>{2, 3, 4, 5, 6, 7, 8, 9}
                : (mode.quick ? std::vector<double>{2, 3}
                              : std::vector<double>{2, 3, 5, 7, 9});

  const auto results = bench::RunSweep(
      mode, replicas, bench::AllProtocols(),
      [](double x, harness::ClusterConfig* c) {
        c->num_nodes = static_cast<int>(x);
        c->num_clients = 256;
        c->payload_size = 4096;
        c->client_think = Micros(5);
      });

  bench::PrintTable("Fig. 15(a) — varying replication number", "#replicas",
                    replicas, bench::AllProtocols(), results,
                    /*latency=*/false);
  bench::PrintTable("Fig. 15(b) — varying replication number", "#replicas",
                    replicas, bench::AllProtocols(), results,
                    /*latency=*/true);

  const double gap2 =
      results.front()[1].throughput_kops / results.front()[0].throughput_kops;
  const double gap_last =
      results.back()[1].throughput_kops / results.back()[0].throughput_kops;
  std::printf("\nNB-Raft/Raft gap: %.2fx at 2 replicas vs %.2fx at %d "
              "(paper: largest gap at 2)\n",
              gap2, gap_last, static_cast<int>(replicas.back()));
  return 0;
}
