// Fig. 16: throughput and latency vs payload size (1..128 KB), 256
// clients, 3 replicas.
//
// Paper shapes: NB-Raft wins at small payloads; CRaft overtakes NB-Raft
// once requests are large enough to be worth splitting (>= ~32 KB in the
// paper); NB-Raft + CRaft is best or tied everywhere.

#include <cstdio>

#include "bench/bench_util.h"

using namespace nbraft;

int main(int argc, char** argv) {
  const bench::BenchMode mode = bench::ParseMode(argc, argv);
  const std::vector<double> payload_kb =
      mode.full ? std::vector<double>{1, 2, 4, 8, 16, 32, 64, 128}
                : (mode.quick ? std::vector<double>{4, 64}
                              : std::vector<double>{1, 4, 16, 64, 128});

  const auto results = bench::RunSweep(
      mode, payload_kb, bench::AllProtocols(),
      [](double x, harness::ClusterConfig* c) {
        c->num_nodes = 3;
        c->num_clients = 256;
        c->payload_size = static_cast<size_t>(x) * 1024;
        c->client_think = Micros(5);
      });

  bench::PrintTable("Fig. 16(a) — varying payload size", "payload KB",
                    payload_kb, bench::AllProtocols(), results,
                    /*latency=*/false);
  bench::PrintTable("Fig. 16(b) — varying payload size", "payload KB",
                    payload_kb, bench::AllProtocols(), results,
                    /*latency=*/true);

  // Find the NB-Raft / CRaft crossover.
  double crossover = -1;
  for (size_t i = 0; i < payload_kb.size(); ++i) {
    if (results[i][2].throughput_kops > results[i][1].throughput_kops) {
      crossover = payload_kb[i];
      break;
    }
  }
  if (crossover > 0) {
    std::printf("\nCRaft overtakes NB-Raft at %.0f KB "
                "(paper: around 32 KB)\n", crossover);
  } else {
    std::printf("\nCRaft did not overtake NB-Raft in this grid\n");
  }
  return 0;
}
