// Fig. 17: throughput and latency vs concurrency with 128 KB requests.
//
// Paper shapes: with large requests CRaft's splitting helps at low
// concurrency; NB-Raft still wins at high concurrency; NB-Raft + CRaft
// best in all settings.

#include <cstdio>

#include "bench/bench_util.h"

using namespace nbraft;

int main(int argc, char** argv) {
  const bench::BenchMode mode = bench::ParseMode(argc, argv);
  const std::vector<double> clients =
      mode.full ? std::vector<double>{1, 4, 16, 64, 256, 512, 768, 1024}
                : (mode.quick ? std::vector<double>{16, 256}
                              : std::vector<double>{1, 16, 64, 256, 1024});

  const auto results = bench::RunSweep(
      mode, clients, bench::AllProtocols(),
      [](double x, harness::ClusterConfig* c) {
        c->num_nodes = 3;
        c->num_clients = static_cast<int>(x);
        c->payload_size = 128 * 1024;
        c->client_think = Micros(5);
      });

  bench::PrintTable("Fig. 17(a) — varying concurrency, 128 KB requests",
                    "#clients", clients, bench::AllProtocols(), results,
                    /*latency=*/false);
  bench::PrintTable("Fig. 17(b) — varying concurrency, 128 KB requests",
                    "#clients", clients, bench::AllProtocols(), results,
                    /*latency=*/true);

  const auto& last = results.back();
  std::printf("\nAt %d clients / 128 KB: NB-Raft+CRaft %.1f vs CRaft %.1f "
              "vs NB-Raft %.1f vs Raft %.1f kop/s\n",
              static_cast<int>(clients.back()), last[3].throughput_kops,
              last[2].throughput_kops, last[1].throughput_kops,
              last[0].throughput_kops);
  return 0;
}
