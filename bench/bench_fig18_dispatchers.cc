// Fig. 18: throughput and latency vs the number of dispatchers (N_csm)
// per follower, 4 KB requests.
//
// Paper shapes: few dispatchers queue requests up (high latency, low
// throughput); more dispatchers raise concurrency, and the trends mirror
// the client-concurrency sweep — NB-Raft performs better at high
// dispatcher counts.

#include <cstdio>

#include "bench/bench_util.h"

using namespace nbraft;

int main(int argc, char** argv) {
  const bench::BenchMode mode = bench::ParseMode(argc, argv);
  const std::vector<double> dispatchers =
      mode.full ? std::vector<double>{1, 4, 16, 64, 256, 512, 1024}
                : (mode.quick ? std::vector<double>{4, 64}
                              : std::vector<double>{1, 4, 16, 64, 256, 1024});

  const auto results = bench::RunSweep(
      mode, dispatchers, bench::AllProtocols(),
      [](double x, harness::ClusterConfig* c) {
        c->num_nodes = 3;
        c->num_clients = 256;
        c->payload_size = 4096;
        c->client_think = Micros(5);
        c->dispatchers = static_cast<int>(x);
      });

  bench::PrintTable("Fig. 18(a) — varying dispatcher number", "#dispatchers",
                    dispatchers, bench::AllProtocols(), results,
                    /*latency=*/false);
  bench::PrintTable("Fig. 18(b) — varying dispatcher number", "#dispatchers",
                    dispatchers, bench::AllProtocols(), results,
                    /*latency=*/true);

  // Beyond the paper: the same sweep with AppendEntries batching
  // (max_batch_entries = 8). Batching amortizes per-RPC dispatch cost
  // exactly where Fig. 18 hurts — few dispatchers, deep queues — and
  // must not regress the uncontended right-hand side of the curve.
  const std::vector<raft::Protocol> pair = {raft::Protocol::kRaft,
                                            raft::Protocol::kNbRaft};
  for (const int batch : {1, 8}) {
    const auto batched = bench::RunSweep(
        mode, dispatchers, pair, [batch](double x, harness::ClusterConfig* c) {
          c->num_nodes = 3;
          c->num_clients = 256;
          c->payload_size = 4096;
          c->client_think = Micros(5);
          c->dispatchers = static_cast<int>(x);
          c->max_batch_entries = batch;
        });
    char title[96];
    std::snprintf(title, sizeof(title),
                  "Fig. 18+ — AppendEntries batching, max_batch_entries=%d",
                  batch);
    bench::PrintTable(title, "#dispatchers", dispatchers, pair, batched,
                      /*latency=*/false);
  }
  return 0;
}
