// Fig. 19: data loss when the leader and all clients are killed
// simultaneously.
//  (a) varying how long the system ran before the failure;
//  (b) varying the follower (election) timeout.
//
// Paper shapes: the loss stabilizes once the system reaches steady state;
// longer follower timeouts reduce the loss (the new leader keeps receiving
// the dead leader's in-flight entries during the timeout); NB-Raft loses
// slightly more than Raft (bounded by N_cli + w); the fractions are tiny.

#include <cstdio>

#include "bench/bench_util.h"

using namespace nbraft;

namespace {

harness::ClusterConfig LossConfig(raft::Protocol protocol, uint64_t seed) {
  harness::ClusterConfig config;
  config.num_nodes = 3;
  config.num_clients = 64;
  config.payload_size = 4096;
  config.protocol = protocol;
  config.seed = seed;
  config.release_payloads = true;
  return config;
}

struct LossPoint {
  double x = 0;
  uint64_t issued = 0;
  uint64_t lost = 0;
};

void PrintLossTable(const char* title, const char* x_label,
                    const std::vector<LossPoint>& raft,
                    const std::vector<LossPoint>& nb) {
  std::printf("\n%s\n", title);
  std::printf("%-14s %20s %20s\n", x_label, "Raft loss (%)",
              "NB-Raft loss (%)");
  for (size_t i = 0; i < raft.size(); ++i) {
    const auto frac = [](const LossPoint& p) {
      return p.issued == 0
                 ? 0.0
                 : 100.0 * static_cast<double>(p.lost) /
                       static_cast<double>(p.issued);
    };
    std::printf("%-14.1f %17.5f%%   %17.5f%%   (lost %llu/%llu vs "
                "%llu/%llu)\n",
                raft[i].x, frac(raft[i]), frac(nb[i]),
                static_cast<unsigned long long>(raft[i].lost),
                static_cast<unsigned long long>(raft[i].issued),
                static_cast<unsigned long long>(nb[i].lost),
                static_cast<unsigned long long>(nb[i].issued));
  }
}

LossPoint RunPoint(raft::Protocol protocol, double x,
                   SimDuration run_time, SimDuration follower_timeout,
                   int seeds) {
  LossPoint point;
  point.x = x;
  for (int s = 0; s < seeds; ++s) {
    harness::ClusterConfig config =
        LossConfig(protocol, 100 + static_cast<uint64_t>(s));
    config.election_timeout = follower_timeout;
    const harness::LossResult r =
        harness::RunLossExperiment(config, run_time);
    if (!r.new_leader_elected) continue;
    point.issued += r.requests_issued;
    point.lost += r.requests_issued -
                  std::min(r.requests_survived, r.requests_issued);
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchMode mode = bench::ParseMode(argc, argv);
  const int seeds = mode.quick ? 1 : 3;

  // (a) Varying run time before the failure (scaled from the paper's
  // 10..180 s to virtual-time budgets).
  const std::vector<double> run_seconds =
      mode.quick ? std::vector<double>{0.5}
                 : std::vector<double>{0.25, 0.5, 1.0, 2.0, 4.0};
  std::vector<LossPoint> a_raft;
  std::vector<LossPoint> a_nb;
  for (const double s : run_seconds) {
    const auto run_time = static_cast<SimDuration>(s * kSecond);
    a_raft.push_back(
        RunPoint(raft::Protocol::kRaft, s, run_time, Millis(500), seeds));
    a_nb.push_back(
        RunPoint(raft::Protocol::kNbRaft, s, run_time, Millis(500), seeds));
    std::fprintf(stderr, ".");
  }
  PrintLossTable("Fig. 19(a) — data loss vs run time before failure "
                 "(follower timeout 0.5 s)",
                 "run time (s)", a_raft, a_nb);

  // (b) Varying the follower timeout (paper: 0.5 .. 2.5 s).
  const std::vector<double> timeouts_s =
      mode.quick ? std::vector<double>{0.5}
                 : std::vector<double>{0.5, 1.0, 1.5, 2.0, 2.5};
  std::vector<LossPoint> b_raft;
  std::vector<LossPoint> b_nb;
  for (const double t : timeouts_s) {
    const auto timeout = static_cast<SimDuration>(t * kSecond);
    b_raft.push_back(
        RunPoint(raft::Protocol::kRaft, t, Seconds(1), timeout, seeds));
    b_nb.push_back(
        RunPoint(raft::Protocol::kNbRaft, t, Seconds(1), timeout, seeds));
    std::fprintf(stderr, ".");
  }
  std::fprintf(stderr, "\n");
  PrintLossTable("Fig. 19(b) — data loss vs follower timeout (failure "
                 "after 1 s)",
                 "timeout (s)", b_raft, b_nb);

  std::printf("\n(paper: loss stays under 0.00003%% at 0.5 s timeout on "
              "3-minute runs; shorter virtual runs inflate the fraction "
              "but the ordering and bounds — loss <= N_cli + w — hold)\n");
  return 0;
}
