// Fig. 20: non-geo-distributed vs geo-distributed 5-node cloud deployment
// (Beijing / Guangzhou / Shanghai / Hangzhou / Chengdu latencies), 64
// clients, 1 KB requests, weaker cloud instances.
//
// Paper shapes: geo-distribution slashes absolute throughput (latency
// dominates); NB-Raft leads in both configurations; CRaft loses its edge
// (limited cloud CPU makes parity computation a bottleneck, and saving
// bandwidth matters less than latency).

#include <cstdio>

#include "bench/bench_util.h"

using namespace nbraft;

namespace {

void RunConfig(const char* title, bool geo, const bench::BenchMode& mode) {
  std::printf("\n== %s ==\n", title);
  std::printf("%-16s %14s %14s\n", "protocol", "kReq/s", "latency ms");
  for (raft::Protocol protocol : bench::AllProtocols()) {
    harness::ClusterConfig config;
    config.num_nodes = 5;
    config.num_clients = 64;
    config.payload_size = 1024;  // Censored data from real applications.
    config.protocol = protocol;
    config.geo_distributed = geo;
    config.cpu_speed = 0.5;  // ecs.s6 instances are far weaker than the
                             // LAN testbed's Xeon 8260 boxes.
    config.cpu_lanes = 8;
    config.seed = 20;
    const harness::ThroughputResult r = harness::RunThroughputExperiment(
        config, mode.warmup(), mode.measure());
    std::printf("%-16s %14.2f %14.2f\n",
                std::string(raft::ProtocolName(protocol)).c_str(),
                r.throughput_kops, r.unblock_latency_ms);
    std::fprintf(stderr, ".");
  }
  std::fprintf(stderr, "\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchMode mode = bench::ParseMode(argc, argv);
  std::printf("Fig. 20 — Alibaba-Cloud-style deployment, 5 nodes, 64 "
              "clients, 1 KB\n");
  RunConfig("Fig. 20(a) Non-Geo-Distributed (all nodes in one region)",
            /*geo=*/false, mode);
  RunConfig("Fig. 20(b) Geo-Distributed (BJ/GZ/SH/HZ/CD)", /*geo=*/true,
            mode);
  return 0;
}
