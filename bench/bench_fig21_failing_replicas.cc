// Fig. 21: throughput with 1 or 2 failing replicas in a 5-replica group.
//
// Paper shapes: having failing nodes resembles reducing the replica count
// (throughput can even rise for Raft); ECRaft improves slightly over CRaft
// after a failure (it keeps erasure coding in degraded mode); NB-Raft
// stays ahead by reducing the waiting time of concurrent requests.

#include <cstdio>

#include "bench/bench_util.h"
#include "harness/cluster.h"

using namespace nbraft;

namespace {

double RunWithFailures(raft::Protocol protocol, int failures,
                       const bench::BenchMode& mode) {
  harness::ClusterConfig config;
  config.num_nodes = 5;
  config.num_clients = 256;
  config.payload_size = 4096;
  config.client_think = Micros(5);
  config.protocol = protocol;
  config.seed = 21;
  config.release_payloads = true;

  harness::Cluster cluster(config);
  cluster.Start();
  if (!cluster.AwaitLeader()) return 0.0;
  cluster.StartClients();
  cluster.RunFor(Millis(200));
  // Crash `failures` non-leader replicas.
  int killed = 0;
  for (int i = 0; i < 5 && killed < failures; ++i) {
    if (cluster.node(i)->role() != raft::Role::kLeader) {
      cluster.CrashNode(i);
      ++killed;
    }
  }
  // Let the leader detect the failures and settle into degraded mode.
  cluster.RunFor(mode.warmup() + Millis(200));
  cluster.ResetMeasurement();
  cluster.RunFor(mode.measure());
  const harness::ClusterStats stats = cluster.Collect();
  return static_cast<double>(stats.requests_completed) /
         ToSeconds(mode.measure()) / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchMode mode = bench::ParseMode(argc, argv);
  std::printf("Fig. 21 — failing replicas in a 5-replica setting "
              "(256 clients, 4 KB)\n\n");
  std::printf("%-16s %20s %20s\n", "protocol", "1 failing (kReq/s)",
              "2 failing (kReq/s)");
  for (raft::Protocol protocol : bench::AllProtocols()) {
    const double one = RunWithFailures(protocol, 1, mode);
    const double two = RunWithFailures(protocol, 2, mode);
    std::printf("%-16s %20.2f %20.2f\n",
                std::string(raft::ProtocolName(protocol)).c_str(), one, two);
    std::fprintf(stderr, ".");
  }
  std::fprintf(stderr, "\n");
  return 0;
}
