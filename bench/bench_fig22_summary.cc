// Fig. 22: summary of throughput in various conditions — which protocol
// wins where, as a (concurrency x payload) matrix.
//
// Paper summary to reproduce: NB-Raft handles high concurrency; CRaft
// prefers low concurrency and large payloads; NB-Raft + CRaft is best in
// most settings.

#include <cstdio>

#include "bench/bench_util.h"

using namespace nbraft;

int main(int argc, char** argv) {
  const bench::BenchMode mode = bench::ParseMode(argc, argv);
  const std::vector<int> client_grid =
      mode.quick ? std::vector<int>{64} : std::vector<int>{16, 256, 1024};
  const std::vector<size_t> payload_grid =
      mode.quick ? std::vector<size_t>{4096}
                 : std::vector<size_t>{1024, 4096, 32768, 131072};

  // Compare the two headline protocols plus their combination and Raft.
  const std::vector<raft::Protocol> protocols = {
      raft::Protocol::kRaft, raft::Protocol::kNbRaft,
      raft::Protocol::kCRaft, raft::Protocol::kNbCRaft};

  std::printf("Fig. 22 — winner per (concurrency, payload) cell\n\n");
  std::printf("%-12s", "clients\\KB");
  for (size_t p : payload_grid) std::printf(" %16zu", p / 1024);
  std::printf("\n");

  for (int clients : client_grid) {
    std::printf("%-12d", clients);
    for (size_t payload : payload_grid) {
      double best = -1;
      double nb_vs_craft = 0;
      raft::Protocol winner = raft::Protocol::kRaft;
      double nb_kops = 0;
      double craft_kops = 0;
      for (raft::Protocol protocol : protocols) {
        harness::ClusterConfig config;
        config.num_nodes = 3;
        config.num_clients = clients;
        config.payload_size = payload;
        config.client_think = Micros(5);
        config.protocol = protocol;
        config.seed = 22;
        config.release_payloads = true;
        const harness::ThroughputResult r =
            harness::RunThroughputExperiment(config, mode.warmup(),
                                             mode.measure());
        if (r.throughput_kops > best) {
          best = r.throughput_kops;
          winner = protocol;
        }
        if (protocol == raft::Protocol::kNbRaft) nb_kops = r.throughput_kops;
        if (protocol == raft::Protocol::kCRaft) {
          craft_kops = r.throughput_kops;
        }
        std::fprintf(stderr, ".");
        std::fflush(stderr);
      }
      nb_vs_craft = nb_kops - craft_kops;
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%s%s",
                    std::string(raft::ProtocolName(winner)).c_str(),
                    nb_vs_craft >= 0 ? " (NB>C)" : " (C>NB)");
      std::printf(" %16s", cell);
    }
    std::printf("\n");
  }
  std::fprintf(stderr, "\n");
  std::printf("\n(paper: NB-Raft side wins at high concurrency / small "
              "payloads, CRaft side at low concurrency / large payloads, "
              "NB-Raft+CRaft best overall)\n");
  return 0;
}
