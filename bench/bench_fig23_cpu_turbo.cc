// Fig. 23: throughput with CPU-Turbo enabled vs disabled.
//
// Paper shapes: reducing CPU resources lowers every protocol's throughput,
// but CRaft (and its derivatives) suffer disproportionately — parity
// computation is CPU-hungry (Table II's CPU-usage column).

#include <cstdio>

#include "bench/bench_util.h"

using namespace nbraft;

namespace {

double Run(raft::Protocol protocol, double cpu_speed,
           const bench::BenchMode& mode) {
  harness::ClusterConfig config;
  config.num_nodes = 3;
  config.num_clients = 256;
  config.payload_size = 32 * 1024;  // Large enough that coding matters.
  config.client_think = Micros(5);
  config.protocol = protocol;
  config.cpu_speed = cpu_speed;
  config.seed = 23;
  config.release_payloads = true;
  return harness::RunThroughputExperiment(config, mode.warmup(),
                                          mode.measure())
      .throughput_kops;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchMode mode = bench::ParseMode(argc, argv);
  std::printf("Fig. 23 — throughput under different CPU conditions "
              "(256 clients, 32 KB)\n\n");
  std::printf("%-16s %18s %18s %12s\n", "protocol", "Turbo on (kReq/s)",
              "Turbo off (kReq/s)", "drop");
  for (raft::Protocol protocol : bench::AllProtocols()) {
    const double on = Run(protocol, 1.0, mode);
    const double off = Run(protocol, 0.55, mode);
    std::printf("%-16s %18.2f %18.2f %11.1f%%\n",
                std::string(raft::ProtocolName(protocol)).c_str(), on, off,
                on > 0 ? (1.0 - off / on) * 100.0 : 0.0);
    std::fprintf(stderr, ".");
  }
  std::fprintf(stderr, "\n");
  std::printf("\n(paper: all protocols drop; CRaft variants drop most — "
              "parity fragments need heavy computation)\n");
  return 0;
}
