// Elastic-membership bench: the WEAK_ACCEPT x learner-lag study.
//
// A 3-voter cluster (of 5 provisioned hosts) ingests under load while two
// extra hosts join as learners back-to-back; each join runs the full
// pipeline — joint-consensus add, throttled catch-up through the recovery
// STM, bounded-lag promotion, joint-consensus voter seat. The grid crosses
// the replication mode against the promotion-lag bound:
//
//   - protocol/window: original Raft (STRONG, window 0) vs NB-Raft at
//     WEAK_ACCEPT window {32, 1024}. The window governs how far the
//     leader's log runs ahead with unacknowledged holes; catch-up reads
//     only the learner's *contiguous* durable prefix, so a wide window
//     stretches the tail the learner must chase while it keeps moving.
//   - promotion_lag {4, 64}: how close (in entries) the contiguous prefix
//     must get before the leader proposes promotion. Tight lag means more
//     catch-up rounds before the seat; loose lag hands the final stretch
//     to the ordinary replication path after promotion.
//
// Reported per cell: virtual ms from each AddNode to the voter seat
// (promote1/2_ms — the elasticity latency the study is about), kernel
// events/sec (the perf-smoke metric), and aggregate requests completed
// (the load the cluster sustained while reconfiguring).
//
// Usage: bench_membership [--quick] [--out PATH]
//
// Writes a JSON report (default BENCH_membership.json in the CWD) in the
// same schema as BENCH_durability.json, so tools/check_perf_smoke.py can
// compare events/sec per cell against the committed baseline.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "raft/membership.h"
#include "raft/raft_node.h"
#include "sim/simulator.h"

using namespace nbraft;

namespace {

struct CellSpec {
  std::string name;
  raft::Protocol protocol = raft::Protocol::kRaft;
  int window = 0;
  int64_t promotion_lag = 16;
};

struct CellResult {
  std::string name;
  uint64_t events = 0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  double virtual_ms = 0.0;
  double promote1_ms = -1.0;  ///< AddNode(host 3) -> voter seat; -1 = never.
  double promote2_ms = -1.0;  ///< AddNode(host 4) -> voter seat; -1 = never.
  uint64_t requests_completed = 0;
  uint64_t learners_promoted = 0;
};

double WallMs(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

// Proposes AddNode(host) and runs the cluster in small slices until the
// leader seats the host as a voter (retrying the proposal while an earlier
// change is still in flight). Returns virtual ms to the seat, -1 on cap.
double JoinAndAwaitSeat(harness::Cluster* cluster, int host,
                        SimDuration slice, int max_slices) {
  const SimTime t0 = cluster->sim()->Now();
  bool proposed = cluster->AddNode(0, host);
  for (int i = 0; i < max_slices; ++i) {
    cluster->RunFor(slice);
    raft::RaftNode* lead = cluster->leader(0);
    if (lead == nullptr) continue;
    if (!proposed) proposed = cluster->AddNode(0, host);
    if (lead->membership()->active() &&
        !lead->membership()->ChangeInFlight() &&
        lead->membership()->IsVoter(host)) {
      return static_cast<double>(cluster->sim()->Now() - t0) / kMillisecond;
    }
  }
  return -1.0;
}

CellResult RunCell(const CellSpec& spec, SimDuration warmup,
                   SimDuration measure) {
  harness::ClusterConfig config;
  config.num_nodes = 5;
  config.initial_voters = 3;
  config.promotion_lag = spec.promotion_lag;
  // Catch-up bandwidth must exceed the ingest rate or the learner chases
  // the tail forever (the default 32/round throttle is sized for chaos
  // cells, not a saturating closed loop): 512 entries per 10 ms round.
  config.recovery_batch = 512;
  config.num_clients = 4;
  config.workload.series_count = 64;
  config.protocol = spec.protocol;
  config.window_size = spec.window;
  config.payload_size = 1024;
  config.client_think = Micros(5);
  config.seed = 271828;
  config.release_payloads = true;
  // The mitigation stack every elastic deployment runs (a removed or
  // stale-config server must not depose the leader mid-reconfiguration).
  config.pre_vote = true;
  config.check_quorum = true;
  config.leader_lease = true;

  harness::Cluster cluster(config);
  cluster.Start();
  if (!cluster.AwaitLeader()) {
    std::fprintf(stderr, "%s: no leader\n", spec.name.c_str());
    return CellResult{spec.name};
  }
  cluster.StartClients();

  const auto start = std::chrono::steady_clock::now();
  const uint64_t events_before = cluster.sim()->events_processed();
  const SimTime virt_before = cluster.sim()->Now();

  // Warmup builds the log tail the learners will have to chase.
  cluster.RunFor(warmup);
  CellResult r;
  r.name = spec.name;
  r.promote1_ms = JoinAndAwaitSeat(&cluster, 3, Millis(5), 2000);
  r.promote2_ms = JoinAndAwaitSeat(&cluster, 4, Millis(5), 2000);
  cluster.RunFor(measure);

  r.wall_ms = WallMs(start);
  r.events = cluster.sim()->events_processed() - events_before;
  r.virtual_ms =
      static_cast<double>(cluster.sim()->Now() - virt_before) / kMillisecond;
  r.events_per_sec =
      r.wall_ms > 0 ? static_cast<double>(r.events) / (r.wall_ms / 1000.0)
                    : 0.0;
  r.requests_completed = cluster.Collect().requests_completed;
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    r.learners_promoted += cluster.node(i)->stats().learners_promoted;
  }
  return r;
}

void WriteJson(const std::string& path,
               const std::vector<CellResult>& results) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"membership\",\n  \"workloads\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"events\": %llu, "
                 "\"wall_ms\": %.1f, \"events_per_sec\": %.0f, "
                 "\"virtual_ms\": %.1f, \"promote1_ms\": %.1f, "
                 "\"promote2_ms\": %.1f, \"requests_completed\": %llu, "
                 "\"learners_promoted\": %llu}%s\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.events),
                 r.wall_ms, r.events_per_sec, r.virtual_ms, r.promote1_ms,
                 r.promote2_ms,
                 static_cast<unsigned long long>(r.requests_completed),
                 static_cast<unsigned long long>(r.learners_promoted),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_membership.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
  }
  const SimDuration warmup = quick ? Millis(100) : Millis(400);
  const SimDuration measure = quick ? Millis(100) : Millis(400);

  std::vector<CellSpec> specs;
  for (const int64_t lag : {int64_t{4}, int64_t{64}}) {
    CellSpec raft;
    raft.name = "raft_lag" + std::to_string(lag);
    raft.protocol = raft::Protocol::kRaft;
    raft.window = 0;
    raft.promotion_lag = lag;
    specs.push_back(raft);
    for (const int window : {32, 1024}) {
      CellSpec nb;
      nb.name =
          "nbraft_w" + std::to_string(window) + "_lag" + std::to_string(lag);
      nb.protocol = raft::Protocol::kNbRaft;
      nb.window = window;
      nb.promotion_lag = lag;
      specs.push_back(nb);
    }
  }

  std::vector<CellResult> results;
  bool promotions_ok = true;
  for (const CellSpec& spec : specs) {
    results.push_back(RunCell(spec, warmup, measure));
    const CellResult& r = results.back();
    // Acceptance: every cell must actually seat both joiners — a bench
    // that silently measured a cluster stuck at 3 voters would gate
    // nothing.
    if (r.promote1_ms < 0 || r.promote2_ms < 0 || r.learners_promoted < 2) {
      std::fprintf(stderr, "%s: join never seated (p1=%.1f p2=%.1f)\n",
                   r.name.c_str(), r.promote1_ms, r.promote2_ms);
      promotions_ok = false;
    }
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");

  std::printf("%-20s %12s %10s %14s %12s %12s %10s %9s\n", "cell", "events",
              "wall_ms", "events/sec", "promote1_ms", "promote2_ms", "reqs",
              "promoted");
  for (const CellResult& r : results) {
    std::printf("%-20s %12llu %10.1f %14.0f %12.1f %12.1f %10llu %9llu\n",
                r.name.c_str(), static_cast<unsigned long long>(r.events),
                r.wall_ms, r.events_per_sec, r.promote1_ms, r.promote2_ms,
                static_cast<unsigned long long>(r.requests_completed),
                static_cast<unsigned long long>(r.learners_promoted));
  }
  WriteJson(out, results);
  std::printf("\nwrote %s\n", out.c_str());
  return promotions_ok ? 0 : 1;
}
