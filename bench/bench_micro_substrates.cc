// Microbenchmarks (google-benchmark) of the substrates every experiment
// rests on: hashing, CRC, erasure coding, time-series encoders, the
// sliding window, the histogram, the event queue and the Petri engine.

#include <benchmark/benchmark.h>

#include "common/hash.h"
#include "common/random.h"
#include "common/varint.h"
#include "craft/reed_solomon.h"
#include "metrics/histogram.h"
#include "nbraft/sliding_window.h"
#include "petri/petri_net.h"
#include "sim/simulator.h"
#include "tsdb/encoding.h"

namespace {

using namespace nbraft;

std::string RandomPayload(size_t len, uint64_t seed) {
  Rng rng(seed);
  std::string out(len, '\0');
  for (char& c : out) c = static_cast<char>(rng.Next());
  return out;
}

void BM_Sha256(benchmark::State& state) {
  const std::string data =
      RandomPayload(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1024)->Arg(4096)->Arg(65536);

void BM_Crc32c(benchmark::State& state) {
  const std::string data =
      RandomPayload(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(65536);

void BM_ReedSolomonEncode(benchmark::State& state) {
  craft::ReedSolomon rs(static_cast<int>(state.range(0)),
                        static_cast<int>(state.range(1)));
  const std::string data = RandomPayload(4096, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.Encode(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_ReedSolomonEncode)->Args({2, 1})->Args({3, 2})->Args({5, 4});

void BM_ReedSolomonDecode(benchmark::State& state) {
  craft::ReedSolomon rs(3, 2);
  const std::string data = RandomPayload(4096, 4);
  auto shards = rs.Encode(data);
  std::vector<std::optional<std::string>> subset(shards.begin(),
                                                 shards.end());
  subset[0].reset();
  subset[3].reset();  // Force real decoding.
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.Decode(subset, data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_ReedSolomonDecode);

void BM_GorillaEncodeValues(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> values;
  double v = 20.0;
  for (int i = 0; i < 1024; ++i) {
    v += rng.NextGaussian(0, 0.1);
    values.push_back(v);
  }
  for (auto _ : state) {
    std::string out;
    tsdb::EncodeValues(values, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_GorillaEncodeValues);

void BM_DeltaOfDeltaTimestamps(benchmark::State& state) {
  std::vector<int64_t> ts;
  for (int i = 0; i < 1024; ++i) ts.push_back(1600000000000 + i * 1000);
  for (auto _ : state) {
    std::string out;
    tsdb::EncodeTimestamps(ts, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_DeltaOfDeltaTimestamps);

void BM_SlidingWindowInsertFlush(benchmark::State& state) {
  for (auto _ : state) {
    raft::SlidingWindow w(1024);
    // Insert 2..512 out of order, then flush with entry 1.
    for (storage::LogIndex i = 512; i >= 2; --i) {
      w.Insert(storage::MakeEntry(i, 1, 1));
    }
    benchmark::DoNotOptimize(w.TakeFlushablePrefix(1, 1));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_SlidingWindowInsertFlush);

void BM_HistogramRecord(benchmark::State& state) {
  metrics::Histogram h;
  Rng rng(6);
  for (auto _ : state) {
    h.Record(static_cast<int64_t>(rng.NextBounded(1'000'000'000)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramRecord);

void BM_SimulatorEventChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim(1);
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.After(i, [&fired] { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_SimulatorEventChurn);

void BM_PetriProducerConsumer(benchmark::State& state) {
  for (auto _ : state) {
    petri::PetriNet net(1);
    const auto idle = net.AddPlace("idle", 1);
    const auto queue = net.AddPlace("queue");
    const auto done = net.AddPlace("done");
    net.AddTransition("produce", {{idle, 1}}, {{queue, 1}, {idle, 1}},
                      petri::PetriNet::FixedDelay(Micros(10)));
    net.AddTransition("consume", {{queue, 1}}, {{done, 1}},
                      petri::PetriNet::FixedDelay(Micros(10)));
    net.Run(Millis(10));
    benchmark::DoNotOptimize(net.Tokens(done));
  }
}
BENCHMARK(BM_PetriProducerConsumer);

void BM_VarintRoundTrip(benchmark::State& state) {
  Rng rng(7);
  std::vector<uint64_t> values;
  for (int i = 0; i < 1024; ++i) values.push_back(rng.Next() >> (i % 64));
  for (auto _ : state) {
    std::string buf;
    for (uint64_t v : values) PutVarint64(&buf, v);
    std::string_view in(buf);
    uint64_t out = 0;
    while (GetVarint64(&in, &out)) benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_VarintRoundTrip);

}  // namespace

BENCHMARK_MAIN();
