// Multi-Raft scaling bench: sweeps the consensus-group count through
// {1, 4, 16, 64} at a FIXED aggregate offered load (64 closed-loop
// clients and a 1024-series universe, divided evenly across groups) for
// Raft and NB-Raft on a shared 3-host substrate. More groups means more
// parallel consensus pipelines over the same simulated NICs, CPU lanes
// and disks — the sweep shows how throughput and simulator event rate
// respond, and how much co-residency interference the substrate charges.
//
// Reported per cell: kernel events/sec (the perf-smoke metric), aggregate
// requests completed, and the min/max per-group completion spread (a
// fairness signal — a starved group shows up as min << max).
//
// Usage: bench_multiraft [--quick] [--out PATH]
//
// Writes a JSON report (default BENCH_multiraft.json in the CWD) in the
// same schema as BENCH_durability.json, so tools/check_perf_smoke.py can
// compare events/sec per cell against the committed baseline.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "sim/simulator.h"

using namespace nbraft;

namespace {

constexpr int kTotalClients = 64;
constexpr uint64_t kTotalSeries = 1024;

struct CellResult {
  std::string name;
  uint64_t events = 0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  double virtual_ms = 0.0;
  int groups = 0;
  uint64_t requests_completed = 0;
  uint64_t group_min_completed = 0;
  uint64_t group_max_completed = 0;
};

double WallMs(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

CellResult RunCell(const std::string& name, raft::Protocol protocol,
                   int groups, SimDuration span) {
  harness::ClusterConfig config;
  config.num_nodes = 3;
  config.num_groups = groups;
  // Fixed aggregate load: the same 64 closed-loop clients and the same
  // series universe regardless of how many groups carve them up.
  config.num_clients = kTotalClients / groups;
  config.workload.series_count = kTotalSeries;
  config.protocol = protocol;
  config.payload_size = 1024;
  config.window_size = 32;
  config.client_think = Micros(5);
  config.seed = 271828;
  config.release_payloads = true;

  harness::Cluster cluster(config);
  cluster.Start();
  if (!cluster.AwaitLeader()) {
    std::fprintf(stderr, "%s: no leader\n", name.c_str());
    return CellResult{name};
  }
  cluster.StartClients();

  const auto start = std::chrono::steady_clock::now();
  const uint64_t events_before = cluster.sim()->events_processed();
  const SimTime virt_before = cluster.sim()->Now();
  cluster.RunFor(span);

  CellResult r;
  r.name = name;
  r.groups = groups;
  r.wall_ms = WallMs(start);
  r.events = cluster.sim()->events_processed() - events_before;
  r.virtual_ms =
      static_cast<double>(cluster.sim()->Now() - virt_before) / kMillisecond;
  r.events_per_sec =
      r.wall_ms > 0 ? static_cast<double>(r.events) / (r.wall_ms / 1000.0)
                    : 0.0;
  r.requests_completed = cluster.Collect().requests_completed;
  r.group_min_completed = ~0ULL;
  for (int g = 0; g < groups; ++g) {
    const uint64_t done = cluster.CollectGroup(g).requests_completed;
    r.group_min_completed = std::min(r.group_min_completed, done);
    r.group_max_completed = std::max(r.group_max_completed, done);
  }
  return r;
}

void WriteJson(const std::string& path,
               const std::vector<CellResult>& results) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"multiraft\",\n  \"workloads\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"events\": %llu, "
                 "\"wall_ms\": %.1f, \"events_per_sec\": %.0f, "
                 "\"virtual_ms\": %.1f, \"groups\": %d, "
                 "\"requests_completed\": %llu, "
                 "\"group_min_completed\": %llu, "
                 "\"group_max_completed\": %llu}%s\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.events),
                 r.wall_ms, r.events_per_sec, r.virtual_ms, r.groups,
                 static_cast<unsigned long long>(r.requests_completed),
                 static_cast<unsigned long long>(r.group_min_completed),
                 static_cast<unsigned long long>(r.group_max_completed),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_multiraft.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
  }
  const SimDuration span = quick ? Millis(150) : Millis(500);

  const int kGroupCounts[] = {1, 4, 16, 64};
  const raft::Protocol kProtocols[] = {raft::Protocol::kRaft,
                                       raft::Protocol::kNbRaft};

  std::vector<CellResult> results;
  for (const raft::Protocol protocol : kProtocols) {
    const char* proto =
        protocol == raft::Protocol::kRaft ? "raft" : "nbraft";
    for (const int groups : kGroupCounts) {
      const std::string name =
          std::string(proto) + "_g" + std::to_string(groups);
      results.push_back(RunCell(name, protocol, groups, span));
      std::fprintf(stderr, ".");
      std::fflush(stderr);
    }
  }
  std::fprintf(stderr, "\n");

  std::printf("%-16s %6s %12s %10s %14s %10s %10s %10s\n", "cell", "groups",
              "events", "wall_ms", "events/sec", "reqs", "grp_min",
              "grp_max");
  for (const CellResult& r : results) {
    std::printf("%-16s %6d %12llu %10.1f %14.0f %10llu %10llu %10llu\n",
                r.name.c_str(), r.groups,
                static_cast<unsigned long long>(r.events), r.wall_ms,
                r.events_per_sec,
                static_cast<unsigned long long>(r.requests_completed),
                static_cast<unsigned long long>(r.group_min_completed),
                static_cast<unsigned long long>(r.group_max_completed));
  }
  WriteJson(out, results);
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
