// Multi-Raft scaling bench: sweeps the consensus-group count through
// {1, 4, 16, 64} at a FIXED aggregate offered load (64 closed-loop
// clients and a 1024-series universe, divided evenly across groups) for
// Raft and NB-Raft on a shared 3-host substrate. More groups means more
// parallel consensus pipelines over the same simulated NICs, CPU lanes
// and disks — the sweep shows how throughput and simulator event rate
// respond, and how much co-residency interference the substrate charges.
//
// A second, sensors-fleet grid scales the offered load WITH the group
// count instead of dividing a fixed budget: group count x clients-per-
// group over a 65536-series universe (each series one sensor stream),
// the scaling-toward-millions-of-sensors axis of the paper's IoT story.
//
// All cells run through the parallel sweep scheduler — each cell builds
// its own Cluster on its own Simulator, so --workers N fans the grid out
// across cores. Per-cell ev/s is only comparable to the committed
// baseline at --workers 1 (the default): concurrent cells contend for
// cycles and each other's wall clock.
//
// Reported per cell: kernel events/sec (the perf-smoke metric), aggregate
// requests completed, and the min/max per-group completion spread (a
// fairness signal — a starved group shows up as min << max).
//
// Usage: bench_multiraft [--quick] [--workers N] [--out PATH]
//
// Writes a JSON report (default BENCH_multiraft.json in the CWD) in the
// same schema as BENCH_durability.json, so tools/check_perf_smoke.py can
// compare events/sec per cell against the committed baseline.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "sim/simulator.h"
#include "sweep/scheduler.h"

using namespace nbraft;

namespace {

constexpr int kTotalClients = 64;
constexpr uint64_t kTotalSeries = 1024;
constexpr uint64_t kSensorSeries = 65536;

struct CellSpec {
  std::string name;
  raft::Protocol protocol = raft::Protocol::kRaft;
  int groups = 1;
  int clients_per_group = 1;
  uint64_t series = kTotalSeries;
};

struct CellResult {
  std::string name;
  uint64_t events = 0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  double virtual_ms = 0.0;
  int groups = 0;
  uint64_t requests_completed = 0;
  uint64_t group_min_completed = 0;
  uint64_t group_max_completed = 0;
};

double WallMs(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

CellResult RunCell(const CellSpec& spec, SimDuration span) {
  harness::ClusterConfig config;
  config.num_nodes = 3;
  config.num_groups = spec.groups;
  config.num_clients = spec.clients_per_group;
  config.workload.series_count = spec.series;
  config.protocol = spec.protocol;
  config.payload_size = 1024;
  config.window_size = 32;
  config.client_think = Micros(5);
  config.seed = 271828;
  config.release_payloads = true;

  harness::Cluster cluster(config);
  cluster.Start();
  if (!cluster.AwaitLeader()) {
    std::fprintf(stderr, "%s: no leader\n", spec.name.c_str());
    return CellResult{spec.name};
  }
  cluster.StartClients();

  const auto start = std::chrono::steady_clock::now();
  const uint64_t events_before = cluster.sim()->events_processed();
  const SimTime virt_before = cluster.sim()->Now();
  cluster.RunFor(span);

  CellResult r;
  r.name = spec.name;
  r.groups = spec.groups;
  r.wall_ms = WallMs(start);
  r.events = cluster.sim()->events_processed() - events_before;
  r.virtual_ms =
      static_cast<double>(cluster.sim()->Now() - virt_before) / kMillisecond;
  r.events_per_sec =
      r.wall_ms > 0 ? static_cast<double>(r.events) / (r.wall_ms / 1000.0)
                    : 0.0;
  r.requests_completed = cluster.Collect().requests_completed;
  r.group_min_completed = ~0ULL;
  for (int g = 0; g < spec.groups; ++g) {
    const uint64_t done = cluster.CollectGroup(g).requests_completed;
    r.group_min_completed = std::min(r.group_min_completed, done);
    r.group_max_completed = std::max(r.group_max_completed, done);
  }
  return r;
}

void WriteJson(const std::string& path,
               const std::vector<CellResult>& results) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"multiraft\",\n  \"workloads\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"events\": %llu, "
                 "\"wall_ms\": %.1f, \"events_per_sec\": %.0f, "
                 "\"virtual_ms\": %.1f, \"groups\": %d, "
                 "\"requests_completed\": %llu, "
                 "\"group_min_completed\": %llu, "
                 "\"group_max_completed\": %llu}%s\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.events),
                 r.wall_ms, r.events_per_sec, r.virtual_ms, r.groups,
                 static_cast<unsigned long long>(r.requests_completed),
                 static_cast<unsigned long long>(r.group_min_completed),
                 static_cast<unsigned long long>(r.group_max_completed),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int workers = 1;
  std::string out = "BENCH_multiraft.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    }
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
  }
  const SimDuration span = quick ? Millis(150) : Millis(500);
  const SimDuration sensor_span = quick ? Millis(100) : Millis(250);

  std::vector<CellSpec> specs;
  // Fixed-load grid: the same 64 clients and 1024 series however many
  // groups carve them up.
  for (const raft::Protocol protocol :
       {raft::Protocol::kRaft, raft::Protocol::kNbRaft}) {
    const char* proto =
        protocol == raft::Protocol::kRaft ? "raft" : "nbraft";
    for (const int groups : {1, 4, 16, 64}) {
      CellSpec spec;
      spec.name = std::string(proto) + "_g" + std::to_string(groups);
      spec.protocol = protocol;
      spec.groups = groups;
      spec.clients_per_group = kTotalClients / groups;
      spec.series = kTotalSeries;
      specs.push_back(spec);
    }
  }
  // Sensors-fleet grid: load grows with the fleet (groups x clients each
  // aggregating a slice of a 65536-sensor universe).
  const size_t sensors_begin = specs.size();
  for (const int groups : {4, 16, 64}) {
    for (const int cpg : {1, 4}) {
      CellSpec spec;
      spec.name = "nbraft_sensors_g" + std::to_string(groups) + "_c" +
                  std::to_string(cpg);
      spec.protocol = raft::Protocol::kNbRaft;
      spec.groups = groups;
      spec.clients_per_group = cpg;
      spec.series = kSensorSeries;
      specs.push_back(spec);
    }
  }

  // Fan the grid out through the sweep scheduler: each cell owns its
  // simulator, results land in pre-sized slots, order is by spec index
  // regardless of which worker ran what.
  std::vector<CellResult> results(specs.size());
  std::vector<sweep::SweepTask> tasks;
  tasks.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const CellSpec& spec = specs[i];
    const SimDuration cell_span = i >= sensors_begin ? sensor_span : span;
    CellResult* slot = &results[i];
    tasks.push_back(sweep::SweepTask{
        spec.name, [spec, cell_span, slot](uint64_t /*task_seed*/) {
          *slot = RunCell(spec, cell_span);
          sweep::TaskOutput out;
          out.fingerprint = slot->events;  // Deterministic per cell.
          out.events = slot->events;
          out.detail = spec.name;
          std::fprintf(stderr, ".");
          std::fflush(stderr);
          return out;
        }});
  }
  sweep::SweepOptions options;
  options.workers = workers;
  sweep::SweepScheduler scheduler(options);
  const sweep::SweepReport sweep = scheduler.Run(tasks);
  std::fprintf(stderr, "\n%s\n", sweep.Summary().c_str());
  if (!sweep.ok()) return 1;

  std::printf("%-22s %6s %12s %10s %14s %10s %10s %10s\n", "cell", "groups",
              "events", "wall_ms", "events/sec", "reqs", "grp_min",
              "grp_max");
  for (const CellResult& r : results) {
    std::printf("%-22s %6d %12llu %10.1f %14.0f %10llu %10llu %10llu\n",
                r.name.c_str(), r.groups,
                static_cast<unsigned long long>(r.events), r.wall_ms,
                r.events_per_sec,
                static_cast<unsigned long long>(r.requests_completed),
                static_cast<unsigned long long>(r.group_min_completed),
                static_cast<unsigned long long>(r.group_max_completed));
  }
  WriteJson(out, results);
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
