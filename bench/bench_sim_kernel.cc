// Simulation-kernel throughput bench: how many discrete events per second
// of *wall clock* the substrate sustains. Every experiment in the repo —
// the paper-figure benches, the chaos sweeps, the tier-1 integration tests
// — is bottlenecked by this number, so it is the first entry in the perf
// trajectory (BENCH_sim_kernel.json).
//
// Three workloads:
//  * fig14_4kb    — the Fig. 14 closed-loop cluster workload (3 replicas,
//                   256 clients, 4 KB requests, Raft + NB-Raft) driven for
//                   a fixed span of virtual time; the end-to-end number.
//  * fig14_128kb  — the Fig. 17 variant (128 KB payloads, 64 clients);
//                   stresses the payload copy path.
//  * timer_churn  — pure scheduler: schedule/cancel/fire churn with no
//                   protocol on top; isolates the event arena itself.
//
// Usage: bench_sim_kernel [--quick] [--out PATH]
//
// Writes a JSON report (default BENCH_sim_kernel.json in the CWD) with
// events/sec per workload. The CI perf-smoke job compares events/sec
// against the committed baseline and fails below a conservative floor.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "sim/simulator.h"

using namespace nbraft;

namespace {

struct WorkloadResult {
  std::string name;
  uint64_t events = 0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  double virtual_ms = 0.0;
  uint64_t requests_completed = 0;
};

double WallMs(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

/// Fig. 14/17-style closed loop: fixed virtual-time span, fixed seed, so
/// the event count is deterministic and only the wall time varies.
WorkloadResult RunClusterWorkload(const std::string& name,
                                  raft::Protocol protocol, int clients,
                                  size_t payload, SimDuration span) {
  harness::ClusterConfig config;
  config.num_nodes = 3;
  config.num_clients = clients;
  config.protocol = protocol;
  config.payload_size = payload;
  config.client_think = Micros(5);
  config.seed = 1234;
  config.release_payloads = true;

  harness::Cluster cluster(config);
  cluster.Start();
  if (!cluster.AwaitLeader()) {
    std::fprintf(stderr, "%s: no leader\n", name.c_str());
    return WorkloadResult{name};
  }
  cluster.StartClients();

  const auto start = std::chrono::steady_clock::now();
  const uint64_t events_before = cluster.sim()->events_processed();
  const SimTime virt_before = cluster.sim()->Now();
  cluster.RunFor(span);

  WorkloadResult r;
  r.name = name;
  r.wall_ms = WallMs(start);
  r.events = cluster.sim()->events_processed() - events_before;
  r.virtual_ms =
      static_cast<double>(cluster.sim()->Now() - virt_before) / kMillisecond;
  r.events_per_sec =
      r.wall_ms > 0 ? static_cast<double>(r.events) / (r.wall_ms / 1000.0)
                    : 0.0;
  r.requests_completed = cluster.Collect().requests_completed;
  return r;
}

/// Pure scheduler churn: a ring of self-rescheduling timers, a rolling set
/// of cancelled timers (the election-timer reset pattern), and a fan of
/// one-shot events. No network, no protocol — just the arena.
WorkloadResult RunTimerChurn(uint64_t target_events) {
  sim::Simulator sim(99);
  const auto start = std::chrono::steady_clock::now();

  constexpr int kTimers = 64;
  // Each timer re-arms itself and keeps one "election timeout" pending
  // that the next firing cancels — the dominant schedule/cancel pattern
  // of the protocol layer.
  struct TimerState {
    sim::EventId pending = sim::kInvalidEventId;
    uint64_t fires = 0;
  };
  std::vector<TimerState> timers(kTimers);
  const uint64_t per_timer = target_events / kTimers;
  for (int t = 0; t < kTimers; ++t) {
    struct Loop {
      static void Arm(sim::Simulator* sim, std::vector<TimerState>* timers,
                      int t, uint64_t per_timer) {
        TimerState& ts = (*timers)[static_cast<size_t>(t)];
        sim->Cancel(ts.pending);  // Reset the previous "election timeout".
        ts.pending = sim->After(Micros(200), [] {});
        sim->After(Micros(10 + t), [sim, timers, t, per_timer]() {
          TimerState& inner = (*timers)[static_cast<size_t>(t)];
          if (++inner.fires >= per_timer) {
            sim->Cancel(inner.pending);
            inner.pending = sim::kInvalidEventId;
            return;
          }
          Arm(sim, timers, t, per_timer);
        });
      }
    };
    Loop::Arm(&sim, &timers, t, per_timer);
  }
  sim.Run();

  WorkloadResult r;
  r.name = "timer_churn";
  r.wall_ms = WallMs(start);
  r.events = sim.events_processed();
  r.virtual_ms = static_cast<double>(sim.Now()) / kMillisecond;
  r.events_per_sec =
      r.wall_ms > 0 ? static_cast<double>(r.events) / (r.wall_ms / 1000.0)
                    : 0.0;
  return r;
}

void WriteJson(const std::string& path,
               const std::vector<WorkloadResult>& results) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"sim_kernel\",\n  \"workloads\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"events\": %llu, "
                 "\"wall_ms\": %.1f, \"events_per_sec\": %.0f, "
                 "\"virtual_ms\": %.1f, \"requests_completed\": %llu}%s\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.events),
                 r.wall_ms, r.events_per_sec, r.virtual_ms,
                 static_cast<unsigned long long>(r.requests_completed),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_sim_kernel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
  }
  const SimDuration span = quick ? Millis(200) : Millis(800);
  const uint64_t churn = quick ? 500000 : 2000000;

  std::vector<WorkloadResult> results;
  results.push_back(RunClusterWorkload("fig14_raft_4kb",
                                       raft::Protocol::kRaft, 256, 4096,
                                       span));
  results.push_back(RunClusterWorkload("fig14_nbraft_4kb",
                                       raft::Protocol::kNbRaft, 256, 4096,
                                       span));
  results.push_back(RunClusterWorkload("fig17_nbraft_128kb",
                                       raft::Protocol::kNbRaft, 64,
                                       128 * 1024, span / 2));
  results.push_back(RunTimerChurn(churn));

  std::printf("%-22s %12s %10s %14s %10s\n", "workload", "events", "wall_ms",
              "events/sec", "reqs");
  for (const WorkloadResult& r : results) {
    std::printf("%-22s %12llu %10.1f %14.0f %10llu\n", r.name.c_str(),
                static_cast<unsigned long long>(r.events), r.wall_ms,
                r.events_per_sec,
                static_cast<unsigned long long>(r.requests_completed));
  }
  WriteJson(out, results);
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
