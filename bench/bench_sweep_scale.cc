// Sweep-scheduler scaling bench: the same fixed chaos-cell grid (2
// protocols x 16 seeds of the light sweep scenario) pushed through the
// work-stealing scheduler at worker counts {1, 2, 4, 8, 16}, reporting
// the *aggregate* simulator event rate — total events across all cells
// divided by the sweep's wall time. The simulated work is byte-identical
// at every worker count (the bench hard-fails if any merged report hash
// diverges from the workers=1 oracle), so the only thing that changes
// between rows is how many cores the fan-out saturates.
//
// Usage: bench_sweep_scale [--quick] [--out PATH]
//
// Writes sweep_scale_w<N> entries in the bench_sim_kernel JSON schema so
// tools/check_perf_smoke.py can gate the aggregate rate per worker count
// against the entries appended to the committed BENCH_sim_kernel.json.
//
// Exit code doubles as the acceptance self-check: on hosts with >= 8
// hardware threads the 8-worker aggregate rate must be >= 3x the
// single-worker rate. On smaller hosts (CI runners, the 1-core container
// this repo grows in) the gate is skipped with a note — parallel speedup
// cannot materialize without cores — but the determinism cross-check
// always runs.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "chaos/chaos_plan.h"
#include "chaos/chaos_runner.h"
#include "chaos/chaos_sweep.h"
#include "harness/cluster.h"
#include "sweep/scheduler.h"

using namespace nbraft;

namespace {

struct ScaleResult {
  std::string name;
  int workers = 0;
  uint64_t events = 0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  uint64_t merged_hash = 0;
};

chaos::ChaosCell ScaleCell(raft::Protocol protocol, uint64_t seed,
                           int rounds) {
  chaos::ChaosCell cell;
  cell.name = std::string(protocol == raft::Protocol::kRaft ? "raft"
                                                            : "nbraft") +
              "_seed" + std::to_string(seed);
  cell.config.num_nodes = 3;
  cell.config.num_clients = 2;
  cell.config.protocol = protocol;
  cell.config.window_size = 64;
  cell.config.payload_size = 256;
  cell.config.client_think = Millis(1);
  cell.config.election_timeout = Millis(150);
  cell.config.seed = seed * 7919 + 13;
  cell.config.client_backoff_base = Millis(150);
  cell.config.client_backoff_cap = Millis(1200);
  cell.config.client_max_requests = 150;
  cell.config.snapshot_threshold = 0;
  cell.plan.seed = seed;
  cell.plan.min_gap = Millis(30);
  cell.plan.max_gap = Millis(120);
  cell.plan.min_duration = Millis(50);
  cell.plan.max_duration = Millis(200);
  cell.options.rounds = rounds;
  cell.options.round_length = Millis(200);
  cell.options.drain = Millis(1200);
  return cell;
}

double WallMs(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

void WriteJson(const std::string& path,
               const std::vector<ScaleResult>& results) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"sweep_scale\",\n  \"workloads\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"events\": %llu, "
                 "\"wall_ms\": %.1f, \"events_per_sec\": %.0f, "
                 "\"workers\": %d}%s\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.events),
                 r.wall_ms, r.events_per_sec, r.workers,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_sweep_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
  }
  const uint64_t seeds = quick ? 6 : 16;
  const int rounds = quick ? 2 : 3;

  std::vector<chaos::ChaosCell> cells;
  for (const raft::Protocol protocol :
       {raft::Protocol::kRaft, raft::Protocol::kNbRaft}) {
    for (uint64_t seed = 1; seed <= seeds; ++seed) {
      cells.push_back(ScaleCell(protocol, seed, rounds));
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::fprintf(stderr,
               "sweep_scale: %zu cells, hardware_concurrency=%u\n",
               cells.size(), hw);

  const int kWorkerCounts[] = {1, 2, 4, 8, 16};
  std::vector<ScaleResult> results;
  for (const int workers : kWorkerCounts) {
    const auto start = std::chrono::steady_clock::now();
    const chaos::ChaosSweepOutcome outcome =
        chaos::RunChaosSweep(cells, workers);
    ScaleResult r;
    r.name = "sweep_scale_w" + std::to_string(workers);
    r.workers = workers;
    r.wall_ms = WallMs(start);
    r.events = outcome.sweep.total_events;
    r.events_per_sec =
        r.wall_ms > 0 ? static_cast<double>(r.events) / (r.wall_ms / 1000.0)
                      : 0.0;
    r.merged_hash = outcome.sweep.merged_hash;
    if (!outcome.ok()) {
      std::fprintf(stderr, "FAIL %s: %s\n", r.name.c_str(),
                   outcome.sweep.Summary().c_str());
      return 1;
    }
    results.push_back(r);
    std::fprintf(stderr, ".");
    std::fflush(stderr);
  }
  std::fprintf(stderr, "\n");

  std::printf("%-18s %8s %12s %10s %14s %8s\n", "cell", "workers", "events",
              "wall_ms", "agg ev/sec", "speedup");
  for (const ScaleResult& r : results) {
    std::printf("%-18s %8d %12llu %10.1f %14.0f %7.2fx\n", r.name.c_str(),
                r.workers, static_cast<unsigned long long>(r.events),
                r.wall_ms, r.events_per_sec,
                results[0].events_per_sec > 0
                    ? r.events_per_sec / results[0].events_per_sec
                    : 0.0);
  }
  WriteJson(out, results);
  std::printf("\nwrote %s\n", out.c_str());

  int rc = 0;

  // Determinism cross-check: every worker count must merge to the exact
  // bytes of the workers=1 serial oracle.
  for (const ScaleResult& r : results) {
    if (r.merged_hash != results[0].merged_hash) {
      std::fprintf(stderr,
                   "FAIL %s: merged hash %016llx != serial %016llx "
                   "(scheduling leaked into results)\n",
                   r.name.c_str(),
                   static_cast<unsigned long long>(r.merged_hash),
                   static_cast<unsigned long long>(results[0].merged_hash));
      rc = 1;
    }
    if (r.events != results[0].events) {
      std::fprintf(stderr, "FAIL %s: event count diverged\n", r.name.c_str());
      rc = 1;
    }
  }

  // Scaling self-check, only meaningful when the cores exist: >= 3x
  // aggregate throughput at 8 workers vs 1.
  if (hw >= 8) {
    const double speedup =
        results[0].events_per_sec > 0
            ? results[3].events_per_sec / results[0].events_per_sec
            : 0.0;
    if (speedup < 3.0) {
      std::fprintf(stderr,
                   "FAIL sweep_scale_w8: %.2fx aggregate speedup < 3x over "
                   "w1 on a %u-thread host\n",
                   speedup, hw);
      rc = 1;
    } else {
      std::printf("scaling gate: w8 %.2fx over w1 (>= 3x required) ok\n",
                  speedup);
    }
  } else {
    std::printf("scaling gate: skipped (%u hardware threads < 8; speedup "
                "cannot materialize without cores)\n",
                hw);
  }
  return rc;
}
