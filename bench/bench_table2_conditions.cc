// Table II: preferred conditions per protocol — the qualitative matrix,
// cross-checked against measured sweeps (which protocol actually prefers
// high/low concurrency and small/large requests in this reproduction).

#include <cstdio>

#include "bench/bench_util.h"

using namespace nbraft;

namespace {

double Run(raft::Protocol protocol, int clients, size_t payload,
           const bench::BenchMode& mode) {
  harness::ClusterConfig config;
  config.num_nodes = 3;
  config.num_clients = clients;
  config.payload_size = payload;
  config.client_think = Micros(5);
  config.protocol = protocol;
  config.seed = 2;
  config.release_payloads = true;
  return harness::RunThroughputExperiment(config, mode.warmup(),
                                          mode.measure())
      .throughput_kops;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchMode mode = bench::ParseMode(argc, argv);

  std::printf("Table II — preferred conditions (paper's matrix)\n\n%s\n",
              baselines::FormatTraitsTable().c_str());

  std::printf("Measured cross-check (throughput ratios vs Raft):\n\n");
  std::printf("%-16s %22s %22s\n", "protocol", "high/low concurrency",
              "large/small payload");
  const double raft_low = Run(raft::Protocol::kRaft, 16, 4096, mode);
  const double raft_high = Run(raft::Protocol::kRaft, 512, 4096, mode);
  const double raft_small = Run(raft::Protocol::kRaft, 256, 2048, mode);
  const double raft_large = Run(raft::Protocol::kRaft, 256, 65536, mode);
  for (raft::Protocol protocol : bench::AllProtocols()) {
    const double low = Run(protocol, 16, 4096, mode) / raft_low;
    const double high = Run(protocol, 512, 4096, mode) / raft_high;
    const double small = Run(protocol, 256, 2048, mode) / raft_small;
    const double large = Run(protocol, 256, 65536, mode) / raft_large;
    std::printf("%-16s %10.2fx / %7.2fx %10.2fx / %7.2fx\n",
                std::string(raft::ProtocolName(protocol)).c_str(), high, low,
                large, small);
    std::fprintf(stderr, ".");
  }
  std::fprintf(stderr, "\n");
  std::printf("\n(expected: NB variants shine in the high-concurrency "
              "column, CRaft variants in the large-payload column)\n");
  return 0;
}
