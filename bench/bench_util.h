#ifndef NBRAFT_BENCH_BENCH_UTIL_H_
#define NBRAFT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/protocol_registry.h"
#include "harness/experiment.h"
#include "raft/types.h"

namespace nbraft::bench {

/// Shared defaults for the figure benchmarks. Every benchmark accepts
/// `--full` for the paper's complete parameter grid (slower) and `--quick`
/// for a smoke-test grid; the default sits in between so that running
/// every bench binary back-to-back stays tractable on one core.
struct BenchMode {
  bool full = false;
  bool quick = false;

  SimDuration warmup() const { return Millis(quick ? 100 : 250); }
  SimDuration measure() const {
    return quick ? Millis(300) : (full ? Millis(1500) : Millis(800));
  }
};

inline BenchMode ParseMode(int argc, char** argv) {
  BenchMode mode;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) mode.full = true;
    if (std::strcmp(argv[i], "--quick") == 0) mode.quick = true;
  }
  return mode;
}

inline const std::vector<raft::Protocol>& AllProtocols() {
  return baselines::AllProtocols();
}

/// Prints one figure-style table: rows = x values, columns = protocols,
/// cells = throughput (kop/s). `latency` switches the metric to the
/// client-visible latency in ms (the unblock latency; see Sec. III-B2).
inline void PrintTable(
    const std::string& title, const std::string& x_label,
    const std::vector<double>& xs,
    const std::vector<raft::Protocol>& protocols,
    const std::vector<std::vector<harness::ThroughputResult>>& results,
    bool latency) {
  std::printf("\n%s — %s\n", title.c_str(),
              latency ? "client latency (ms)" : "throughput (kop/s)");
  std::printf("%-12s", x_label.c_str());
  for (raft::Protocol p : protocols) {
    std::printf(" %14s", std::string(raft::ProtocolName(p)).c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < xs.size(); ++i) {
    std::printf("%-12.0f", xs[i]);
    for (size_t j = 0; j < protocols.size(); ++j) {
      const harness::ThroughputResult& r = results[i][j];
      std::printf(" %14.2f",
                  latency ? r.unblock_latency_ms : r.throughput_kops);
    }
    std::printf("\n");
  }
}

/// Runs a full figure sweep: for each x, configure the cluster via `setup`
/// and run every protocol.
template <typename SetupFn>
std::vector<std::vector<harness::ThroughputResult>> RunSweep(
    const BenchMode& mode, const std::vector<double>& xs,
    const std::vector<raft::Protocol>& protocols, SetupFn setup) {
  std::vector<std::vector<harness::ThroughputResult>> results;
  for (const double x : xs) {
    std::vector<harness::ThroughputResult> row;
    for (const raft::Protocol protocol : protocols) {
      harness::ClusterConfig config;
      config.release_payloads = true;
      config.seed = 1234;
      setup(x, &config);
      config.protocol = protocol;
      row.push_back(harness::RunThroughputExperiment(config, mode.warmup(),
                                                     mode.measure()));
      std::fprintf(stderr, ".");
      std::fflush(stderr);
    }
    results.push_back(std::move(row));
  }
  std::fprintf(stderr, "\n");
  return results;
}

}  // namespace nbraft::bench

#endif  // NBRAFT_BENCH_BENCH_UTIL_H_
