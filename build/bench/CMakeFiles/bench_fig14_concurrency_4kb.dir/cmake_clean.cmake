file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_concurrency_4kb.dir/bench_fig14_concurrency_4kb.cc.o"
  "CMakeFiles/bench_fig14_concurrency_4kb.dir/bench_fig14_concurrency_4kb.cc.o.d"
  "bench_fig14_concurrency_4kb"
  "bench_fig14_concurrency_4kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_concurrency_4kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
