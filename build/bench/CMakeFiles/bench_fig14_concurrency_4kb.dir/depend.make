# Empty dependencies file for bench_fig14_concurrency_4kb.
# This may be replaced when dependencies are built.
