file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_replicas.dir/bench_fig15_replicas.cc.o"
  "CMakeFiles/bench_fig15_replicas.dir/bench_fig15_replicas.cc.o.d"
  "bench_fig15_replicas"
  "bench_fig15_replicas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_replicas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
