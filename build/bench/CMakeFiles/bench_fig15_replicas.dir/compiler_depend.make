# Empty compiler generated dependencies file for bench_fig15_replicas.
# This may be replaced when dependencies are built.
