file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_payload.dir/bench_fig16_payload.cc.o"
  "CMakeFiles/bench_fig16_payload.dir/bench_fig16_payload.cc.o.d"
  "bench_fig16_payload"
  "bench_fig16_payload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_payload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
