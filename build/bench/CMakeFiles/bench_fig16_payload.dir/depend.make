# Empty dependencies file for bench_fig16_payload.
# This may be replaced when dependencies are built.
