# Empty compiler generated dependencies file for bench_fig17_concurrency_128kb.
# This may be replaced when dependencies are built.
