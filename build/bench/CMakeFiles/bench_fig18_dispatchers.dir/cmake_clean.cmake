file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_dispatchers.dir/bench_fig18_dispatchers.cc.o"
  "CMakeFiles/bench_fig18_dispatchers.dir/bench_fig18_dispatchers.cc.o.d"
  "bench_fig18_dispatchers"
  "bench_fig18_dispatchers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_dispatchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
