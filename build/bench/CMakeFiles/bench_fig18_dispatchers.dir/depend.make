# Empty dependencies file for bench_fig18_dispatchers.
# This may be replaced when dependencies are built.
