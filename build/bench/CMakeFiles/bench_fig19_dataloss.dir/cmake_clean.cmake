file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_dataloss.dir/bench_fig19_dataloss.cc.o"
  "CMakeFiles/bench_fig19_dataloss.dir/bench_fig19_dataloss.cc.o.d"
  "bench_fig19_dataloss"
  "bench_fig19_dataloss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_dataloss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
