# Empty dependencies file for bench_fig19_dataloss.
# This may be replaced when dependencies are built.
