# Empty compiler generated dependencies file for bench_fig21_failing_replicas.
# This may be replaced when dependencies are built.
