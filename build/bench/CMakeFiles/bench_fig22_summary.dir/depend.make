# Empty dependencies file for bench_fig22_summary.
# This may be replaced when dependencies are built.
