file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23_cpu_turbo.dir/bench_fig23_cpu_turbo.cc.o"
  "CMakeFiles/bench_fig23_cpu_turbo.dir/bench_fig23_cpu_turbo.cc.o.d"
  "bench_fig23_cpu_turbo"
  "bench_fig23_cpu_turbo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_cpu_turbo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
