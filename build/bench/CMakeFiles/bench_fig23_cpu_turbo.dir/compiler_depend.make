# Empty compiler generated dependencies file for bench_fig23_cpu_turbo.
# This may be replaced when dependencies are built.
