
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_conditions.cc" "bench/CMakeFiles/bench_table2_conditions.dir/bench_table2_conditions.cc.o" "gcc" "bench/CMakeFiles/bench_table2_conditions.dir/bench_table2_conditions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/nbraft_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/nbraft_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/petri/CMakeFiles/nbraft_petri.dir/DependInfo.cmake"
  "/root/repo/build/src/raft/CMakeFiles/nbraft_raft.dir/DependInfo.cmake"
  "/root/repo/build/src/craft/CMakeFiles/nbraft_craft.dir/DependInfo.cmake"
  "/root/repo/build/src/nbraft/CMakeFiles/nbraft_nb.dir/DependInfo.cmake"
  "/root/repo/build/src/tsdb/CMakeFiles/nbraft_tsdb.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/nbraft_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nbraft_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nbraft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/nbraft_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nbraft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
