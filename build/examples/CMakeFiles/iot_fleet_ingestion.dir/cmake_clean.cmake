file(REMOVE_RECURSE
  "CMakeFiles/iot_fleet_ingestion.dir/iot_fleet_ingestion.cpp.o"
  "CMakeFiles/iot_fleet_ingestion.dir/iot_fleet_ingestion.cpp.o.d"
  "iot_fleet_ingestion"
  "iot_fleet_ingestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iot_fleet_ingestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
