# Empty compiler generated dependencies file for iot_fleet_ingestion.
# This may be replaced when dependencies are built.
