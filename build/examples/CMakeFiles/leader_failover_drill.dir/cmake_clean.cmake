file(REMOVE_RECURSE
  "CMakeFiles/leader_failover_drill.dir/leader_failover_drill.cpp.o"
  "CMakeFiles/leader_failover_drill.dir/leader_failover_drill.cpp.o.d"
  "leader_failover_drill"
  "leader_failover_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leader_failover_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
