# Empty compiler generated dependencies file for leader_failover_drill.
# This may be replaced when dependencies are built.
