# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("metrics")
subdirs("sim")
subdirs("net")
subdirs("storage")
subdirs("tsdb")
subdirs("nbraft")
subdirs("craft")
subdirs("raft")
subdirs("baselines")
subdirs("petri")
subdirs("harness")
