file(REMOVE_RECURSE
  "CMakeFiles/nbraft_baselines.dir/protocol_registry.cc.o"
  "CMakeFiles/nbraft_baselines.dir/protocol_registry.cc.o.d"
  "libnbraft_baselines.a"
  "libnbraft_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbraft_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
