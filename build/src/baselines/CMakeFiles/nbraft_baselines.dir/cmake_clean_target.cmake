file(REMOVE_RECURSE
  "libnbraft_baselines.a"
)
