# Empty dependencies file for nbraft_baselines.
# This may be replaced when dependencies are built.
