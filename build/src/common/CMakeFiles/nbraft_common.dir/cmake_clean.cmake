file(REMOVE_RECURSE
  "CMakeFiles/nbraft_common.dir/hash.cc.o"
  "CMakeFiles/nbraft_common.dir/hash.cc.o.d"
  "CMakeFiles/nbraft_common.dir/logging.cc.o"
  "CMakeFiles/nbraft_common.dir/logging.cc.o.d"
  "CMakeFiles/nbraft_common.dir/random.cc.o"
  "CMakeFiles/nbraft_common.dir/random.cc.o.d"
  "CMakeFiles/nbraft_common.dir/sim_time.cc.o"
  "CMakeFiles/nbraft_common.dir/sim_time.cc.o.d"
  "CMakeFiles/nbraft_common.dir/status.cc.o"
  "CMakeFiles/nbraft_common.dir/status.cc.o.d"
  "CMakeFiles/nbraft_common.dir/varint.cc.o"
  "CMakeFiles/nbraft_common.dir/varint.cc.o.d"
  "libnbraft_common.a"
  "libnbraft_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbraft_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
