file(REMOVE_RECURSE
  "libnbraft_common.a"
)
