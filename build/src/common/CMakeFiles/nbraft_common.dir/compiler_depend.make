# Empty compiler generated dependencies file for nbraft_common.
# This may be replaced when dependencies are built.
