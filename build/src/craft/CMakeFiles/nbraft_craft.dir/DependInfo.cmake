
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/craft/gf256.cc" "src/craft/CMakeFiles/nbraft_craft.dir/gf256.cc.o" "gcc" "src/craft/CMakeFiles/nbraft_craft.dir/gf256.cc.o.d"
  "/root/repo/src/craft/reed_solomon.cc" "src/craft/CMakeFiles/nbraft_craft.dir/reed_solomon.cc.o" "gcc" "src/craft/CMakeFiles/nbraft_craft.dir/reed_solomon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nbraft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
