file(REMOVE_RECURSE
  "CMakeFiles/nbraft_craft.dir/gf256.cc.o"
  "CMakeFiles/nbraft_craft.dir/gf256.cc.o.d"
  "CMakeFiles/nbraft_craft.dir/reed_solomon.cc.o"
  "CMakeFiles/nbraft_craft.dir/reed_solomon.cc.o.d"
  "libnbraft_craft.a"
  "libnbraft_craft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbraft_craft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
