file(REMOVE_RECURSE
  "libnbraft_craft.a"
)
