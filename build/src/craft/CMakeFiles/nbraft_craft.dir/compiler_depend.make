# Empty compiler generated dependencies file for nbraft_craft.
# This may be replaced when dependencies are built.
