file(REMOVE_RECURSE
  "CMakeFiles/nbraft_harness.dir/cluster.cc.o"
  "CMakeFiles/nbraft_harness.dir/cluster.cc.o.d"
  "CMakeFiles/nbraft_harness.dir/experiment.cc.o"
  "CMakeFiles/nbraft_harness.dir/experiment.cc.o.d"
  "CMakeFiles/nbraft_harness.dir/workload.cc.o"
  "CMakeFiles/nbraft_harness.dir/workload.cc.o.d"
  "libnbraft_harness.a"
  "libnbraft_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbraft_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
