file(REMOVE_RECURSE
  "libnbraft_harness.a"
)
