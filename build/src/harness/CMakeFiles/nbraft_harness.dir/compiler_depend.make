# Empty compiler generated dependencies file for nbraft_harness.
# This may be replaced when dependencies are built.
