file(REMOVE_RECURSE
  "CMakeFiles/nbraft_metrics.dir/breakdown.cc.o"
  "CMakeFiles/nbraft_metrics.dir/breakdown.cc.o.d"
  "CMakeFiles/nbraft_metrics.dir/histogram.cc.o"
  "CMakeFiles/nbraft_metrics.dir/histogram.cc.o.d"
  "libnbraft_metrics.a"
  "libnbraft_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbraft_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
