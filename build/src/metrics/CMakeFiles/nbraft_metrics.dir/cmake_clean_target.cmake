file(REMOVE_RECURSE
  "libnbraft_metrics.a"
)
