# Empty dependencies file for nbraft_metrics.
# This may be replaced when dependencies are built.
