
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nbraft/sliding_window.cc" "src/nbraft/CMakeFiles/nbraft_nb.dir/sliding_window.cc.o" "gcc" "src/nbraft/CMakeFiles/nbraft_nb.dir/sliding_window.cc.o.d"
  "/root/repo/src/nbraft/vote_list.cc" "src/nbraft/CMakeFiles/nbraft_nb.dir/vote_list.cc.o" "gcc" "src/nbraft/CMakeFiles/nbraft_nb.dir/vote_list.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nbraft_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/nbraft_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nbraft_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nbraft_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
