file(REMOVE_RECURSE
  "CMakeFiles/nbraft_nb.dir/sliding_window.cc.o"
  "CMakeFiles/nbraft_nb.dir/sliding_window.cc.o.d"
  "CMakeFiles/nbraft_nb.dir/vote_list.cc.o"
  "CMakeFiles/nbraft_nb.dir/vote_list.cc.o.d"
  "libnbraft_nb.a"
  "libnbraft_nb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbraft_nb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
