file(REMOVE_RECURSE
  "libnbraft_nb.a"
)
