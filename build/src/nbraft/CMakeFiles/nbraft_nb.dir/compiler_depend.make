# Empty compiler generated dependencies file for nbraft_nb.
# This may be replaced when dependencies are built.
