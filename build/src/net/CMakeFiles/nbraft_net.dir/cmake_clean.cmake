file(REMOVE_RECURSE
  "CMakeFiles/nbraft_net.dir/network.cc.o"
  "CMakeFiles/nbraft_net.dir/network.cc.o.d"
  "libnbraft_net.a"
  "libnbraft_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbraft_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
