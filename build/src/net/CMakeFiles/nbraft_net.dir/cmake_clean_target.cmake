file(REMOVE_RECURSE
  "libnbraft_net.a"
)
