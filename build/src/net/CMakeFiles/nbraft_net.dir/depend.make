# Empty dependencies file for nbraft_net.
# This may be replaced when dependencies are built.
