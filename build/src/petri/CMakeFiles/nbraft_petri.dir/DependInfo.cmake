
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/petri/petri_net.cc" "src/petri/CMakeFiles/nbraft_petri.dir/petri_net.cc.o" "gcc" "src/petri/CMakeFiles/nbraft_petri.dir/petri_net.cc.o.d"
  "/root/repo/src/petri/replication_model.cc" "src/petri/CMakeFiles/nbraft_petri.dir/replication_model.cc.o" "gcc" "src/petri/CMakeFiles/nbraft_petri.dir/replication_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nbraft_common.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/nbraft_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
