file(REMOVE_RECURSE
  "CMakeFiles/nbraft_petri.dir/petri_net.cc.o"
  "CMakeFiles/nbraft_petri.dir/petri_net.cc.o.d"
  "CMakeFiles/nbraft_petri.dir/replication_model.cc.o"
  "CMakeFiles/nbraft_petri.dir/replication_model.cc.o.d"
  "libnbraft_petri.a"
  "libnbraft_petri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbraft_petri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
