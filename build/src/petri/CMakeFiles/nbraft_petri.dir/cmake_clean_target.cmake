file(REMOVE_RECURSE
  "libnbraft_petri.a"
)
