# Empty dependencies file for nbraft_petri.
# This may be replaced when dependencies are built.
