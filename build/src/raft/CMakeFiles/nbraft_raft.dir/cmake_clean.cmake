file(REMOVE_RECURSE
  "CMakeFiles/nbraft_raft.dir/raft_client.cc.o"
  "CMakeFiles/nbraft_raft.dir/raft_client.cc.o.d"
  "CMakeFiles/nbraft_raft.dir/raft_node.cc.o"
  "CMakeFiles/nbraft_raft.dir/raft_node.cc.o.d"
  "CMakeFiles/nbraft_raft.dir/types.cc.o"
  "CMakeFiles/nbraft_raft.dir/types.cc.o.d"
  "libnbraft_raft.a"
  "libnbraft_raft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbraft_raft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
