file(REMOVE_RECURSE
  "libnbraft_raft.a"
)
