# Empty dependencies file for nbraft_raft.
# This may be replaced when dependencies are built.
