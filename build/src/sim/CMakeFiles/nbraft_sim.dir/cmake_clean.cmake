file(REMOVE_RECURSE
  "CMakeFiles/nbraft_sim.dir/cpu_executor.cc.o"
  "CMakeFiles/nbraft_sim.dir/cpu_executor.cc.o.d"
  "CMakeFiles/nbraft_sim.dir/simulator.cc.o"
  "CMakeFiles/nbraft_sim.dir/simulator.cc.o.d"
  "libnbraft_sim.a"
  "libnbraft_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbraft_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
