file(REMOVE_RECURSE
  "libnbraft_sim.a"
)
