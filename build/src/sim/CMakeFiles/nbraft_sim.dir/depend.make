# Empty dependencies file for nbraft_sim.
# This may be replaced when dependencies are built.
