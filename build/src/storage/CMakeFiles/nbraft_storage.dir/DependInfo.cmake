
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/durable_log.cc" "src/storage/CMakeFiles/nbraft_storage.dir/durable_log.cc.o" "gcc" "src/storage/CMakeFiles/nbraft_storage.dir/durable_log.cc.o.d"
  "/root/repo/src/storage/log_entry.cc" "src/storage/CMakeFiles/nbraft_storage.dir/log_entry.cc.o" "gcc" "src/storage/CMakeFiles/nbraft_storage.dir/log_entry.cc.o.d"
  "/root/repo/src/storage/raft_log.cc" "src/storage/CMakeFiles/nbraft_storage.dir/raft_log.cc.o" "gcc" "src/storage/CMakeFiles/nbraft_storage.dir/raft_log.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/storage/CMakeFiles/nbraft_storage.dir/wal.cc.o" "gcc" "src/storage/CMakeFiles/nbraft_storage.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nbraft_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nbraft_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nbraft_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
