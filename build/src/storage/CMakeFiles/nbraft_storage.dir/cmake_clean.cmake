file(REMOVE_RECURSE
  "CMakeFiles/nbraft_storage.dir/durable_log.cc.o"
  "CMakeFiles/nbraft_storage.dir/durable_log.cc.o.d"
  "CMakeFiles/nbraft_storage.dir/log_entry.cc.o"
  "CMakeFiles/nbraft_storage.dir/log_entry.cc.o.d"
  "CMakeFiles/nbraft_storage.dir/raft_log.cc.o"
  "CMakeFiles/nbraft_storage.dir/raft_log.cc.o.d"
  "CMakeFiles/nbraft_storage.dir/wal.cc.o"
  "CMakeFiles/nbraft_storage.dir/wal.cc.o.d"
  "libnbraft_storage.a"
  "libnbraft_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbraft_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
