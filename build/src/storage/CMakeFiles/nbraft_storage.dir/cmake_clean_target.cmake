file(REMOVE_RECURSE
  "libnbraft_storage.a"
)
