# Empty dependencies file for nbraft_storage.
# This may be replaced when dependencies are built.
