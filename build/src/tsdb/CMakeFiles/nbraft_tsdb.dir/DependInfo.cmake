
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tsdb/bitstream.cc" "src/tsdb/CMakeFiles/nbraft_tsdb.dir/bitstream.cc.o" "gcc" "src/tsdb/CMakeFiles/nbraft_tsdb.dir/bitstream.cc.o.d"
  "/root/repo/src/tsdb/encoding.cc" "src/tsdb/CMakeFiles/nbraft_tsdb.dir/encoding.cc.o" "gcc" "src/tsdb/CMakeFiles/nbraft_tsdb.dir/encoding.cc.o.d"
  "/root/repo/src/tsdb/ingest_record.cc" "src/tsdb/CMakeFiles/nbraft_tsdb.dir/ingest_record.cc.o" "gcc" "src/tsdb/CMakeFiles/nbraft_tsdb.dir/ingest_record.cc.o.d"
  "/root/repo/src/tsdb/memtable.cc" "src/tsdb/CMakeFiles/nbraft_tsdb.dir/memtable.cc.o" "gcc" "src/tsdb/CMakeFiles/nbraft_tsdb.dir/memtable.cc.o.d"
  "/root/repo/src/tsdb/state_machine.cc" "src/tsdb/CMakeFiles/nbraft_tsdb.dir/state_machine.cc.o" "gcc" "src/tsdb/CMakeFiles/nbraft_tsdb.dir/state_machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nbraft_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/nbraft_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nbraft_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nbraft_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
