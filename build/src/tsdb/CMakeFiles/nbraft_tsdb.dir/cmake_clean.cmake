file(REMOVE_RECURSE
  "CMakeFiles/nbraft_tsdb.dir/bitstream.cc.o"
  "CMakeFiles/nbraft_tsdb.dir/bitstream.cc.o.d"
  "CMakeFiles/nbraft_tsdb.dir/encoding.cc.o"
  "CMakeFiles/nbraft_tsdb.dir/encoding.cc.o.d"
  "CMakeFiles/nbraft_tsdb.dir/ingest_record.cc.o"
  "CMakeFiles/nbraft_tsdb.dir/ingest_record.cc.o.d"
  "CMakeFiles/nbraft_tsdb.dir/memtable.cc.o"
  "CMakeFiles/nbraft_tsdb.dir/memtable.cc.o.d"
  "CMakeFiles/nbraft_tsdb.dir/state_machine.cc.o"
  "CMakeFiles/nbraft_tsdb.dir/state_machine.cc.o.d"
  "libnbraft_tsdb.a"
  "libnbraft_tsdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbraft_tsdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
