file(REMOVE_RECURSE
  "libnbraft_tsdb.a"
)
