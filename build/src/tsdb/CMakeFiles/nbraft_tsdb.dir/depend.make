# Empty dependencies file for nbraft_tsdb.
# This may be replaced when dependencies are built.
