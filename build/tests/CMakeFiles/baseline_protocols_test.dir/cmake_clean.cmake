file(REMOVE_RECURSE
  "CMakeFiles/baseline_protocols_test.dir/raft/baseline_protocols_test.cc.o"
  "CMakeFiles/baseline_protocols_test.dir/raft/baseline_protocols_test.cc.o.d"
  "baseline_protocols_test"
  "baseline_protocols_test.pdb"
  "baseline_protocols_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_protocols_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
