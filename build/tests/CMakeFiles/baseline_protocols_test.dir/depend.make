# Empty dependencies file for baseline_protocols_test.
# This may be replaced when dependencies are built.
