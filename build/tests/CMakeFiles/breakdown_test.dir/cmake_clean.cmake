file(REMOVE_RECURSE
  "CMakeFiles/breakdown_test.dir/metrics/breakdown_test.cc.o"
  "CMakeFiles/breakdown_test.dir/metrics/breakdown_test.cc.o.d"
  "breakdown_test"
  "breakdown_test.pdb"
  "breakdown_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/breakdown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
