file(REMOVE_RECURSE
  "CMakeFiles/cluster_fault_test.dir/harness/cluster_fault_test.cc.o"
  "CMakeFiles/cluster_fault_test.dir/harness/cluster_fault_test.cc.o.d"
  "cluster_fault_test"
  "cluster_fault_test.pdb"
  "cluster_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
