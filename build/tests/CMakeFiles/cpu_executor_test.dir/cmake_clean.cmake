file(REMOVE_RECURSE
  "CMakeFiles/cpu_executor_test.dir/sim/cpu_executor_test.cc.o"
  "CMakeFiles/cpu_executor_test.dir/sim/cpu_executor_test.cc.o.d"
  "cpu_executor_test"
  "cpu_executor_test.pdb"
  "cpu_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
