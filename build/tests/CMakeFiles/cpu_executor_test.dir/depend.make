# Empty dependencies file for cpu_executor_test.
# This may be replaced when dependencies are built.
