file(REMOVE_RECURSE
  "CMakeFiles/craft_protocol_test.dir/raft/craft_protocol_test.cc.o"
  "CMakeFiles/craft_protocol_test.dir/raft/craft_protocol_test.cc.o.d"
  "craft_protocol_test"
  "craft_protocol_test.pdb"
  "craft_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/craft_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
