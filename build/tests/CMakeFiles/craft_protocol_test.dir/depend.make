# Empty dependencies file for craft_protocol_test.
# This may be replaced when dependencies are built.
