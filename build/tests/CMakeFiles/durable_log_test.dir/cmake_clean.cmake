file(REMOVE_RECURSE
  "CMakeFiles/durable_log_test.dir/storage/durable_log_test.cc.o"
  "CMakeFiles/durable_log_test.dir/storage/durable_log_test.cc.o.d"
  "durable_log_test"
  "durable_log_test.pdb"
  "durable_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durable_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
