# Empty dependencies file for durable_log_test.
# This may be replaced when dependencies are built.
