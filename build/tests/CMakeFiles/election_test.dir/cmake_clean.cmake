file(REMOVE_RECURSE
  "CMakeFiles/election_test.dir/raft/election_test.cc.o"
  "CMakeFiles/election_test.dir/raft/election_test.cc.o.d"
  "election_test"
  "election_test.pdb"
  "election_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/election_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
