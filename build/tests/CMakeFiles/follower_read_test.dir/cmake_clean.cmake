file(REMOVE_RECURSE
  "CMakeFiles/follower_read_test.dir/raft/follower_read_test.cc.o"
  "CMakeFiles/follower_read_test.dir/raft/follower_read_test.cc.o.d"
  "follower_read_test"
  "follower_read_test.pdb"
  "follower_read_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/follower_read_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
