# Empty dependencies file for follower_read_test.
# This may be replaced when dependencies are built.
