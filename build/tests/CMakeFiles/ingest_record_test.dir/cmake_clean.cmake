file(REMOVE_RECURSE
  "CMakeFiles/ingest_record_test.dir/tsdb/ingest_record_test.cc.o"
  "CMakeFiles/ingest_record_test.dir/tsdb/ingest_record_test.cc.o.d"
  "ingest_record_test"
  "ingest_record_test.pdb"
  "ingest_record_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ingest_record_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
