# Empty compiler generated dependencies file for ingest_record_test.
# This may be replaced when dependencies are built.
