file(REMOVE_RECURSE
  "CMakeFiles/log_entry_test.dir/storage/log_entry_test.cc.o"
  "CMakeFiles/log_entry_test.dir/storage/log_entry_test.cc.o.d"
  "log_entry_test"
  "log_entry_test.pdb"
  "log_entry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_entry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
