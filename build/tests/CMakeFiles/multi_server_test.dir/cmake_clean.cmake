file(REMOVE_RECURSE
  "CMakeFiles/multi_server_test.dir/petri/multi_server_test.cc.o"
  "CMakeFiles/multi_server_test.dir/petri/multi_server_test.cc.o.d"
  "multi_server_test"
  "multi_server_test.pdb"
  "multi_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
