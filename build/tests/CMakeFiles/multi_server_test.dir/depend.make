# Empty dependencies file for multi_server_test.
# This may be replaced when dependencies are built.
