file(REMOVE_RECURSE
  "CMakeFiles/nbraft_equivalence_test.dir/raft/nbraft_equivalence_test.cc.o"
  "CMakeFiles/nbraft_equivalence_test.dir/raft/nbraft_equivalence_test.cc.o.d"
  "nbraft_equivalence_test"
  "nbraft_equivalence_test.pdb"
  "nbraft_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbraft_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
