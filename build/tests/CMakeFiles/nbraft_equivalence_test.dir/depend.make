# Empty dependencies file for nbraft_equivalence_test.
# This may be replaced when dependencies are built.
