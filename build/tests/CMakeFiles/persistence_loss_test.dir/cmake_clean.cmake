file(REMOVE_RECURSE
  "CMakeFiles/persistence_loss_test.dir/harness/persistence_loss_test.cc.o"
  "CMakeFiles/persistence_loss_test.dir/harness/persistence_loss_test.cc.o.d"
  "persistence_loss_test"
  "persistence_loss_test.pdb"
  "persistence_loss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistence_loss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
