# Empty compiler generated dependencies file for persistence_loss_test.
# This may be replaced when dependencies are built.
