file(REMOVE_RECURSE
  "CMakeFiles/protocol_registry_test.dir/baselines/protocol_registry_test.cc.o"
  "CMakeFiles/protocol_registry_test.dir/baselines/protocol_registry_test.cc.o.d"
  "protocol_registry_test"
  "protocol_registry_test.pdb"
  "protocol_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
