# Empty dependencies file for protocol_registry_test.
# This may be replaced when dependencies are built.
