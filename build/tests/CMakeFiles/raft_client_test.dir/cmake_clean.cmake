file(REMOVE_RECURSE
  "CMakeFiles/raft_client_test.dir/raft/raft_client_test.cc.o"
  "CMakeFiles/raft_client_test.dir/raft/raft_client_test.cc.o.d"
  "raft_client_test"
  "raft_client_test.pdb"
  "raft_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raft_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
