# Empty dependencies file for raft_client_test.
# This may be replaced when dependencies are built.
