file(REMOVE_RECURSE
  "CMakeFiles/raft_log_test.dir/storage/raft_log_test.cc.o"
  "CMakeFiles/raft_log_test.dir/storage/raft_log_test.cc.o.d"
  "raft_log_test"
  "raft_log_test.pdb"
  "raft_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raft_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
