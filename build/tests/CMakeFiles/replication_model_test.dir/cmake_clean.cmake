file(REMOVE_RECURSE
  "CMakeFiles/replication_model_test.dir/petri/replication_model_test.cc.o"
  "CMakeFiles/replication_model_test.dir/petri/replication_model_test.cc.o.d"
  "replication_model_test"
  "replication_model_test.pdb"
  "replication_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replication_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
