file(REMOVE_RECURSE
  "CMakeFiles/state_machine_test.dir/tsdb/state_machine_test.cc.o"
  "CMakeFiles/state_machine_test.dir/tsdb/state_machine_test.cc.o.d"
  "state_machine_test"
  "state_machine_test.pdb"
  "state_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
