# Empty dependencies file for state_machine_test.
# This may be replaced when dependencies are built.
