file(REMOVE_RECURSE
  "CMakeFiles/vote_list_test.dir/nbraft/vote_list_test.cc.o"
  "CMakeFiles/vote_list_test.dir/nbraft/vote_list_test.cc.o.d"
  "vote_list_test"
  "vote_list_test.pdb"
  "vote_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vote_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
