// Prints a deterministic behavior fingerprint of the consensus engine:
// the chaos sweep's per-seed fault fingerprints and committed-prefix
// hashes, plus per-protocol steady-state run digests (committed prefix,
// client counters, network message/byte totals).
//
// The output is a refactoring contract: any change that claims to be
// behavior-preserving must reproduce this byte-for-byte (diff the output
// of the old and new builds). The PR 3 engine decomposition was proven
// with exactly this probe.
//
// Usage: behavior_fingerprint [num_chaos_seeds]   (default 25, the full
// chaos sweep matrix)

#include <cstdio>
#include <cstdlib>

#include "chaos/chaos_plan.h"
#include "chaos/chaos_runner.h"
#include "harness/cluster.h"

using namespace nbraft;

namespace {

// Mirrors tests/chaos/chaos_sweep_test.cc exactly, so this probe pins the
// same behavior the sweep checks.
harness::ClusterConfig SweepConfig(raft::Protocol protocol, uint64_t seed) {
  harness::ClusterConfig config;
  config.num_nodes = (seed % 2 == 0) ? 5 : 3;
  config.num_clients = 3;
  config.protocol = protocol;
  config.window_size = 64;
  config.payload_size = 256;
  config.client_think = Millis(1);
  config.election_timeout = Millis(150);
  config.seed = seed * 7919 + 13;
  config.client_backoff_base = Millis(150);
  config.client_backoff_cap = Millis(1200);
  config.client_max_requests = 250;
  config.snapshot_threshold = 0;
  return config;
}

chaos::ChaosPlan SweepPlan(uint64_t seed) {
  chaos::ChaosPlan plan;
  plan.seed = seed;
  plan.min_gap = Millis(30);
  plan.max_gap = Millis(120);
  plan.min_duration = Millis(50);
  plan.max_duration = Millis(200);
  return plan;
}

chaos::ChaosRunner::Options SweepOptions() {
  chaos::ChaosRunner::Options options;
  options.rounds = 5;
  options.round_length = Millis(200);
  options.drain = Millis(1500);
  return options;
}

// A short traced steady-state run; digests commit sequence and traffic.
void SteadyStateDigest(raft::Protocol protocol, uint64_t seed) {
  harness::ClusterConfig config;
  config.num_nodes = 3;
  config.num_clients = 6;
  config.protocol = protocol;
  config.payload_size = 512;
  config.client_think = Micros(50);
  config.election_timeout = Millis(300);
  config.seed = seed;
  config.release_payloads = false;
  config.workload.series_count = 50;
  config.trace = true;
  harness::Cluster cluster(config);
  cluster.Start();
  if (!cluster.AwaitLeader()) {
    std::printf("steady %-8s seed %llu: NO LEADER\n",
                std::string(raft::ProtocolName(protocol)).c_str(),
                static_cast<unsigned long long>(seed));
    return;
  }
  cluster.StartClients();
  cluster.RunFor(Millis(400));
  cluster.StopAllClients();
  cluster.RunFor(Millis(300));

  raft::RaftNode* leader = cluster.leader();
  uint64_t h = 1469598103934665603ULL;  // FNV-1a.
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  if (leader != nullptr) {
    const auto& log = leader->log();
    for (storage::LogIndex i = log.FirstIndex();
         i <= leader->commit_index() && i <= log.LastIndex(); ++i) {
      mix(static_cast<uint64_t>(i));
      mix(log.AtUnchecked(i).request_id);
    }
  }
  const harness::ClusterStats stats = cluster.Collect();
  std::printf("steady %-8s seed %llu: prefix %llu completed %llu weak %llu "
              "msgs %llu bytes %llu\n",
              std::string(raft::ProtocolName(protocol)).c_str(),
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(h),
              static_cast<unsigned long long>(stats.requests_completed),
              static_cast<unsigned long long>(stats.weak_accepts),
              static_cast<unsigned long long>(
                  cluster.network()->messages_sent()),
              static_cast<unsigned long long>(cluster.network()->bytes_sent()));
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seeds =
      argc > 1 ? static_cast<uint64_t>(std::atoll(argv[1])) : 25;

  for (raft::Protocol protocol :
       {raft::Protocol::kRaft, raft::Protocol::kNbRaft}) {
    for (uint64_t seed = 1; seed <= seeds; ++seed) {
      chaos::ChaosRunner runner(SweepConfig(protocol, seed), SweepPlan(seed),
                                SweepOptions());
      const chaos::ChaosReport report = runner.Run();
      std::printf("chaos %-8s seed %llu: fp %llu prefix %llu commit %lld "
                  "issued %llu completed %llu violations %zu\n",
                  std::string(raft::ProtocolName(protocol)).c_str(),
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(report.fault_fingerprint),
                  static_cast<unsigned long long>(
                      report.committed_prefix_hash),
                  static_cast<long long>(report.final_commit_index),
                  static_cast<unsigned long long>(report.requests_issued),
                  static_cast<unsigned long long>(report.requests_completed),
                  report.violations.size());
    }
  }
  for (raft::Protocol protocol :
       {raft::Protocol::kRaft, raft::Protocol::kNbRaft}) {
    for (uint64_t seed : {91ULL, 92ULL, 93ULL}) {
      SteadyStateDigest(protocol, seed);
    }
  }
  return 0;
}
