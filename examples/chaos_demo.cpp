// Deterministic chaos demo: run one seeded nemesis campaign against a
// Raft and an NB-Raft cluster, print the fault schedule and the safety
// oracle's verdict, then replay the same seed and show the run is
// bit-identical. Optionally export the traced timeline for Perfetto.
//
//   ./build/examples/chaos_demo [seed] [trace_dir]
//   ./build/examples/chaos_demo --sweep N [--workers W]
//
// The --sweep mode fans N seeds x {Raft, NB-Raft} of a lightweight chaos
// scenario out through the parallel sweep scheduler (W workers; 0 or
// omitted = every core) and exits non-zero if any cell trips a safety
// oracle — cheap enough that CI runs N=1000 per protocol on every push.
//
// With a trace_dir, chaos_demo writes <trace_dir>/chaos_<seed>.json —
// open it in https://ui.perfetto.dev to see chaos.* fault instants lined
// up with per-entry lifecycle spans — plus the full observability bundle
// (compressed metric series, flight-recorder journal, Prometheus/JSON
// snapshots) under <trace_dir>/obs_<seed>/, renderable with
// tools/obs_report.py.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "chaos/chaos_plan.h"
#include "chaos/chaos_runner.h"
#include "chaos/chaos_sweep.h"
#include "harness/cluster.h"
#include "raft/types.h"
#include "sweep/scheduler.h"

using namespace nbraft;

namespace {

harness::ClusterConfig DemoConfig(raft::Protocol protocol, uint64_t seed) {
  harness::ClusterConfig config;
  config.num_nodes = 5;
  config.num_clients = 4;
  config.protocol = protocol;
  config.window_size = 64;
  config.payload_size = 512;
  config.client_think = Millis(1);
  config.election_timeout = Millis(150);
  config.seed = seed * 7919 + 13;
  config.client_backoff_base = Millis(150);
  config.client_backoff_cap = Millis(1200);
  config.client_max_requests = 400;
  return config;
}

chaos::ChaosPlan DemoPlan(uint64_t seed) {
  chaos::ChaosPlan plan;
  plan.seed = seed;
  plan.min_gap = Millis(30);
  plan.max_gap = Millis(120);
  plan.min_duration = Millis(50);
  plan.max_duration = Millis(200);
  return plan;
}

chaos::ChaosReport RunOne(raft::Protocol protocol, uint64_t seed,
                          const std::string& trace_path,
                          const std::string& obs_dir, bool verbose) {
  harness::ClusterConfig config = DemoConfig(protocol, seed);
  if (!trace_path.empty()) config.trace_path = trace_path;
  if (!obs_dir.empty()) {
    // Full pipeline for the exported run: sampled + Gorilla-compressed
    // telemetry and the flight recorder.
    config.sample_interval = Millis(1);
    config.journal = true;
  }
  chaos::ChaosRunner::Options options;
  options.rounds = 6;
  options.round_length = Millis(200);
  chaos::ChaosRunner runner(config, DemoPlan(seed), options);
  chaos::ChaosReport report = runner.Run();
  if (verbose) {
    std::printf("  fault schedule (%zu actions):\n", report.faults.size());
    for (const chaos::FaultRecord& r : report.faults) {
      std::printf("    %s\n", chaos::FaultRecordToString(r).c_str());
    }
  }
  std::printf("  %s\n", report.Summary().c_str());
  if (!trace_path.empty() && runner.cluster()->WriteTraces().ok()) {
    std::printf("  trace written to %s\n", trace_path.c_str());
    // Drop the raw per-node counters next to the trace so a dashboard can
    // line RPC/batching stats up against the lifecycle spans.
    std::string stats_path = trace_path;
    const size_t dot = stats_path.rfind(".json");
    stats_path = stats_path.substr(0, dot) + "_stats.json";
    if (std::FILE* f = std::fopen(stats_path.c_str(), "w")) {
      const std::string json = runner.cluster()->NodeStatsJson();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("  per-node stats written to %s\n", stats_path.c_str());
    }
  }
  if (!obs_dir.empty()) {
    if (runner.cluster()->WriteObsBundle(obs_dir).ok()) {
      std::printf("  obs bundle written to %s "
                  "(render: tools/obs_report.py %s)\n",
                  obs_dir.c_str(), obs_dir.c_str());
    }
  }
  return report;
}

/// One cell of the --sweep mode: a trimmed-down scenario (3 nodes, 2
/// clients, 3 rounds) so a 1000-seed matrix stays CI-cheap while still
/// exercising every fault kind in the default mix.
chaos::ChaosCell SweepModeCell(raft::Protocol protocol, uint64_t seed) {
  chaos::ChaosCell cell;
  cell.name = std::string(protocol == raft::Protocol::kRaft ? "raft"
                                                            : "nbraft") +
              "_seed" + std::to_string(seed);
  cell.config = DemoConfig(protocol, seed);
  cell.config.num_nodes = 3;
  cell.config.num_clients = 2;
  cell.config.client_max_requests = 120;
  cell.config.snapshot_threshold = 0;
  cell.plan = DemoPlan(seed);
  cell.options.rounds = 3;
  cell.options.round_length = Millis(200);
  cell.options.drain = Millis(1200);
  if (const char* dir = std::getenv("NBRAFT_POSTMORTEM_DIR")) {
    cell.options.postmortem_dir =
        std::string(dir) + "/ChaosDemoSweep." + cell.name;
  }
  return cell;
}

int RunSweepMode(uint64_t num_seeds, int workers) {
  std::vector<chaos::ChaosCell> cells;
  for (const raft::Protocol protocol :
       {raft::Protocol::kRaft, raft::Protocol::kNbRaft}) {
    for (uint64_t seed = 1; seed <= num_seeds; ++seed) {
      cells.push_back(SweepModeCell(protocol, seed));
    }
  }
  std::printf("== chaos sweep: %llu seeds x {Raft, NB-Raft} = %zu cells, "
              "%d workers ==\n",
              static_cast<unsigned long long>(num_seeds), cells.size(),
              workers == 0 ? sweep::ResolveWorkers(0) : workers);
  const chaos::ChaosSweepOutcome outcome =
      chaos::RunChaosSweep(cells, workers);
  std::printf("%s\n", outcome.sweep.Summary().c_str());
  for (size_t i = 0; i < outcome.sweep.results.size(); ++i) {
    if (!outcome.sweep.results[i].ok()) {
      std::printf("FAIL %s: %s%s\n", outcome.sweep.results[i].name.c_str(),
                  outcome.sweep.results[i].error.c_str(),
                  outcome.sweep.results[i].output.detail.c_str());
    }
  }
  std::printf("merged report hash: %016llx\n",
              static_cast<unsigned long long>(outcome.sweep.merged_hash));
  return outcome.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t sweep_seeds = 0;
  int workers = 0;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sweep") == 0 && i + 1 < argc) {
      sweep_seeds = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (sweep_seeds > 0) return RunSweepMode(sweep_seeds, workers);

  const uint64_t seed =
      !positional.empty()
          ? static_cast<uint64_t>(std::atoll(positional[0].c_str()))
          : 7;
  const std::string trace_dir =
      positional.size() > 1 ? positional[1] : "";

  std::printf("== chaos demo: seeded nemesis vs Raft and NB-Raft, seed "
              "%llu ==\n\n",
              static_cast<unsigned long long>(seed));

  std::printf("[Raft x5]\n");
  chaos::ChaosReport raft_report =
      RunOne(raft::Protocol::kRaft, seed, "", "", /*verbose=*/true);

  std::printf("\n[NB-Raft x5, window 64]\n");
  const std::string trace_path =
      trace_dir.empty()
          ? ""
          : trace_dir + "/chaos_" + std::to_string(seed) + ".json";
  const std::string obs_dir =
      trace_dir.empty() ? ""
                        : trace_dir + "/obs_" + std::to_string(seed);
  chaos::ChaosReport nb_report = RunOne(raft::Protocol::kNbRaft, seed,
                                        trace_path, obs_dir,
                                        /*verbose=*/false);

  std::printf("\n[NB-Raft replay of seed %llu]\n",
              static_cast<unsigned long long>(seed));
  chaos::ChaosReport replay =
      RunOne(raft::Protocol::kNbRaft, seed, "", "", /*verbose=*/false);

  const bool identical =
      replay.fault_fingerprint == nb_report.fault_fingerprint &&
      replay.committed_prefix_hash == nb_report.committed_prefix_hash &&
      replay.requests_completed == nb_report.requests_completed;
  std::printf("\nreplay identical: %s\n", identical ? "yes" : "NO");

  return (raft_report.ok() && nb_report.ok() && replay.ok() && identical)
             ? 0
             : 1;
}
