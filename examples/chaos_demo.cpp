// Deterministic chaos demo: run one seeded nemesis campaign against a
// Raft and an NB-Raft cluster, print the fault schedule and the safety
// oracle's verdict, then replay the same seed and show the run is
// bit-identical. Optionally export the traced timeline for Perfetto.
//
//   ./build/examples/chaos_demo [seed] [trace_dir]
//
// With a trace_dir, chaos_demo writes <trace_dir>/chaos_<seed>.json —
// open it in https://ui.perfetto.dev to see chaos.* fault instants lined
// up with per-entry lifecycle spans — plus the full observability bundle
// (compressed metric series, flight-recorder journal, Prometheus/JSON
// snapshots) under <trace_dir>/obs_<seed>/, renderable with
// tools/obs_report.py.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "chaos/chaos_plan.h"
#include "chaos/chaos_runner.h"
#include "harness/cluster.h"
#include "raft/types.h"

using namespace nbraft;

namespace {

harness::ClusterConfig DemoConfig(raft::Protocol protocol, uint64_t seed) {
  harness::ClusterConfig config;
  config.num_nodes = 5;
  config.num_clients = 4;
  config.protocol = protocol;
  config.window_size = 64;
  config.payload_size = 512;
  config.client_think = Millis(1);
  config.election_timeout = Millis(150);
  config.seed = seed * 7919 + 13;
  config.client_backoff_base = Millis(150);
  config.client_backoff_cap = Millis(1200);
  config.client_max_requests = 400;
  return config;
}

chaos::ChaosPlan DemoPlan(uint64_t seed) {
  chaos::ChaosPlan plan;
  plan.seed = seed;
  plan.min_gap = Millis(30);
  plan.max_gap = Millis(120);
  plan.min_duration = Millis(50);
  plan.max_duration = Millis(200);
  return plan;
}

chaos::ChaosReport RunOne(raft::Protocol protocol, uint64_t seed,
                          const std::string& trace_path,
                          const std::string& obs_dir, bool verbose) {
  harness::ClusterConfig config = DemoConfig(protocol, seed);
  if (!trace_path.empty()) config.trace_path = trace_path;
  if (!obs_dir.empty()) {
    // Full pipeline for the exported run: sampled + Gorilla-compressed
    // telemetry and the flight recorder.
    config.sample_interval = Millis(1);
    config.journal = true;
  }
  chaos::ChaosRunner::Options options;
  options.rounds = 6;
  options.round_length = Millis(200);
  chaos::ChaosRunner runner(config, DemoPlan(seed), options);
  chaos::ChaosReport report = runner.Run();
  if (verbose) {
    std::printf("  fault schedule (%zu actions):\n", report.faults.size());
    for (const chaos::FaultRecord& r : report.faults) {
      std::printf("    %s\n", chaos::FaultRecordToString(r).c_str());
    }
  }
  std::printf("  %s\n", report.Summary().c_str());
  if (!trace_path.empty() && runner.cluster()->WriteTraces().ok()) {
    std::printf("  trace written to %s\n", trace_path.c_str());
    // Drop the raw per-node counters next to the trace so a dashboard can
    // line RPC/batching stats up against the lifecycle spans.
    std::string stats_path = trace_path;
    const size_t dot = stats_path.rfind(".json");
    stats_path = stats_path.substr(0, dot) + "_stats.json";
    if (std::FILE* f = std::fopen(stats_path.c_str(), "w")) {
      const std::string json = runner.cluster()->NodeStatsJson();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("  per-node stats written to %s\n", stats_path.c_str());
    }
  }
  if (!obs_dir.empty()) {
    if (runner.cluster()->WriteObsBundle(obs_dir).ok()) {
      std::printf("  obs bundle written to %s "
                  "(render: tools/obs_report.py %s)\n",
                  obs_dir.c_str(), obs_dir.c_str());
    }
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed =
      argc > 1 ? static_cast<uint64_t>(std::atoll(argv[1])) : 7;
  const std::string trace_dir = argc > 2 ? argv[2] : "";

  std::printf("== chaos demo: seeded nemesis vs Raft and NB-Raft, seed "
              "%llu ==\n\n",
              static_cast<unsigned long long>(seed));

  std::printf("[Raft x5]\n");
  chaos::ChaosReport raft_report =
      RunOne(raft::Protocol::kRaft, seed, "", "", /*verbose=*/true);

  std::printf("\n[NB-Raft x5, window 64]\n");
  const std::string trace_path =
      trace_dir.empty()
          ? ""
          : trace_dir + "/chaos_" + std::to_string(seed) + ".json";
  const std::string obs_dir =
      trace_dir.empty() ? ""
                        : trace_dir + "/obs_" + std::to_string(seed);
  chaos::ChaosReport nb_report = RunOne(raft::Protocol::kNbRaft, seed,
                                        trace_path, obs_dir,
                                        /*verbose=*/false);

  std::printf("\n[NB-Raft replay of seed %llu]\n",
              static_cast<unsigned long long>(seed));
  chaos::ChaosReport replay =
      RunOne(raft::Protocol::kNbRaft, seed, "", "", /*verbose=*/false);

  const bool identical =
      replay.fault_fingerprint == nb_report.fault_fingerprint &&
      replay.committed_prefix_hash == nb_report.committed_prefix_hash &&
      replay.requests_completed == nb_report.requests_completed;
  std::printf("\nreplay identical: %s\n", identical ? "yes" : "NO");

  return (raft_report.ok() && nb_report.ok() && replay.ok() && identical)
             ? 0
             : 1;
}
