// Geo-replication (the paper's Fig. 20 deployment): a 5-node cluster
// spread over Beijing, Guangzhou, Shanghai, Hangzhou and Chengdu, compared
// against the same cluster in a single region, under Raft and NB-Raft.
//
//   ./build/examples/geo_replication

#include <cstdio>

#include "harness/experiment.h"
#include "raft/types.h"

using namespace nbraft;

namespace {

harness::ThroughputResult Run(raft::Protocol protocol, bool geo) {
  harness::ClusterConfig config;
  config.num_nodes = 5;
  config.num_clients = 64;
  config.payload_size = 1024;
  config.protocol = protocol;
  config.geo_distributed = geo;
  config.cpu_speed = 0.5;  // Cloud instances, not the LAN testbed.
  config.cpu_lanes = 8;
  config.seed = 77;
  return harness::RunThroughputExperiment(config, Millis(300), Seconds(2));
}

}  // namespace

int main() {
  std::printf("== geo-replication: 5 nodes, 64 clients, 1 KB requests ==\n");
  std::printf("\n%-24s %12s %14s %12s\n", "configuration", "kReq/s",
              "latency ms", "weak/req");
  for (const bool geo : {false, true}) {
    for (const raft::Protocol protocol :
         {raft::Protocol::kRaft, raft::Protocol::kNbRaft}) {
      const harness::ThroughputResult r = Run(protocol, geo);
      char label[64];
      std::snprintf(label, sizeof(label), "%s / %s",
                    geo ? "geo (BJ,GZ,SH,HZ,CD)" : "single region",
                    std::string(raft::ProtocolName(protocol)).c_str());
      std::printf("%-24s %12.2f %14.2f %12.2f\n", label, r.throughput_kops,
                  r.unblock_latency_ms, r.weak_ratio);
    }
  }
  std::printf("\nGeo-distribution trades an order of magnitude of "
              "throughput for disaster tolerance (paper Fig. 20). NB-Raft's "
              "early return shines in-region; across regions the WAN round "
              "trip dominates the closed loop, so the protocols converge.\n");
  return 0;
}
