// IoT fleet ingestion: a sensor fleet (many devices, Zipf-skewed
// popularity, ~1 Hz sampling) streams measurements into a 3-replica
// NB-Raft cluster backed by the time-series state machine. Afterwards the
// example queries series back from the replicated store and demonstrates
// a follower read.
//
//   ./build/examples/iot_fleet_ingestion [num_sensors] [num_clients]

#include <cstdio>
#include <cstdlib>

#include "harness/cluster.h"
#include "raft/types.h"

int main(int argc, char** argv) {
  using namespace nbraft;

  const uint64_t sensors =
      argc > 1 ? static_cast<uint64_t>(std::atol(argv[1])) : 500;
  const int clients = argc > 2 ? std::atoi(argv[2]) : 32;

  harness::ClusterConfig config;
  config.num_nodes = 3;
  config.num_clients = clients;
  config.protocol = raft::Protocol::kNbRaft;
  config.payload_size = 2048;
  config.seed = 2024;
  config.release_payloads = false;
  config.workload.series_count = sensors;
  config.workload.zipf_skew = 0.9;  // A few hot devices dominate.
  config.workload.measurements_per_request = 32;

  std::printf("== IoT fleet ingestion: %llu sensors, %d client "
              "connections, NB-Raft x3 ==\n\n",
              static_cast<unsigned long long>(sensors), clients);

  harness::Cluster cluster(config);
  cluster.Start();
  if (!cluster.AwaitLeader()) return 1;
  cluster.StartClients();
  cluster.RunFor(Seconds(2));
  cluster.StopAllClients();
  cluster.RunFor(Seconds(1));  // Drain the pipeline.

  raft::RaftNode* leader = cluster.leader();
  const auto& sm = static_cast<const tsdb::TsdbStateMachine&>(
      leader->state_machine());

  const harness::ClusterStats stats = cluster.Collect();
  std::printf("ingestion requests committed: %llu\n",
              static_cast<unsigned long long>(
                  leader->stats().entries_committed));
  std::printf("points in the store          : %llu (%zu flushed chunks)\n",
              static_cast<unsigned long long>(sm.ingested_points()),
              sm.flushed_chunks());
  std::printf("weak accepts (early returns) : %llu\n",
              static_cast<unsigned long long>(stats.weak_accepts));

  // Read a hot series back from the leader.
  auto points = sm.Query(0);
  if (points.ok() && !points->empty()) {
    std::printf("\nseries 0 holds %zu points; first (t=%lld, v=%.2f), "
                "last (t=%lld, v=%.2f)\n",
                points->size(),
                static_cast<long long>(points->front().timestamp),
                points->front().value,
                static_cast<long long>(points->back().timestamp),
                points->back().value);
  }

  // Replicas hold the same data: compare point counts on each node.
  std::printf("\nper-replica point count for series 0: ");
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    std::printf("node%d=%llu ", i,
                static_cast<unsigned long long>(
                    cluster.node(i)->state_machine().PointCount(0)));
  }
  std::printf("\n(identical counts = replicated state machines agree; "
              "NB-Raft keeps follower reads available, unlike CRaft)\n");
  return 0;
}
