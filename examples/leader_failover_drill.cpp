// Leader failover drill (the paper's Sec. IV / Fig. 13 scenario): ingest
// under NB-Raft, kill the leader and every client at the same instant,
// watch a new leader take over, and account for exactly how many requests
// were lost — verifying the paper's N_cli + w bound and that committed
// entries survive.
//
//   ./build/examples/leader_failover_drill [follower_timeout_ms]

#include <cstdio>
#include <cstdlib>

#include "harness/cluster.h"
#include "raft/types.h"

int main(int argc, char** argv) {
  using namespace nbraft;

  const int timeout_ms = argc > 1 ? std::atoi(argv[1]) : 500;
  constexpr int kClients = 32;
  constexpr int kWindow = 64;

  harness::ClusterConfig config;
  config.num_nodes = 3;
  config.num_clients = kClients;
  config.protocol = raft::Protocol::kNbRaft;
  config.window_size = kWindow;
  config.payload_size = 4096;
  config.election_timeout = Millis(timeout_ms);
  config.seed = 99;

  std::printf("== leader failover drill: NB-Raft x3, %d clients, window "
              "%d, follower timeout %d ms ==\n\n",
              kClients, kWindow, timeout_ms);

  harness::Cluster cluster(config);
  cluster.Start();
  if (!cluster.AwaitLeader()) return 1;
  cluster.StartClients();
  cluster.RunFor(Seconds(1));

  raft::RaftNode* old_leader = cluster.leader();
  const storage::LogIndex committed_before = old_leader->commit_index();
  std::printf("t=1.0s  leader is node %d, commit index %lld\n",
              old_leader->id(),
              static_cast<long long>(committed_before));

  // The failure: leader and all clients die at the same instant.
  const int dead = cluster.CrashLeader();
  cluster.StopAllClients();
  const uint64_t issued = cluster.TotalRequestsIssued();
  std::printf("t=1.0s  KILLED leader node %d and all %d clients "
              "(%llu requests issued so far)\n",
              dead, kClients, static_cast<unsigned long long>(issued));

  if (!cluster.AwaitLeader(Seconds(15))) {
    std::printf("no new leader elected!\n");
    return 1;
  }
  cluster.RunFor(Millis(300));
  raft::RaftNode* new_leader = cluster.leader();
  std::printf("t=%.2fs new leader is node %d (term %lld)\n",
              ToSeconds(cluster.sim()->Now()), new_leader->id(),
              static_cast<long long>(new_leader->current_term()));

  int leader_index = -1;
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    if (cluster.node(i) == new_leader) leader_index = i;
  }
  const uint64_t survived = cluster.CountUniqueRequestsInLog(leader_index);
  const uint64_t lost = issued - std::min(survived, issued);

  std::printf("\nrequests issued   : %llu\n",
              static_cast<unsigned long long>(issued));
  std::printf("requests survived : %llu\n",
              static_cast<unsigned long long>(survived));
  std::printf("requests lost     : %llu (%.5f%%)\n",
              static_cast<unsigned long long>(lost),
              issued ? 100.0 * static_cast<double>(lost) /
                           static_cast<double>(issued)
                     : 0.0);
  std::printf("paper's bound     : N_cli + w = %d\n", kClients + kWindow);
  std::printf("committed prefix  : %s (new leader's log reaches %lld >= "
              "%lld)\n",
              new_leader->log().LastIndex() >= committed_before ? "intact"
                                                                : "LOST!",
              static_cast<long long>(new_leader->log().LastIndex()),
              static_cast<long long>(committed_before));

  const bool ok = lost <= static_cast<uint64_t>(kClients + kWindow) &&
                  new_leader->log().LastIndex() >= committed_before;
  std::printf("\n%s\n", ok ? "drill PASSED" : "drill FAILED");
  return ok ? 0 : 1;
}
