// Protocol comparison: run the same IoT ingestion workload under every
// protocol of the paper's evaluation and print a side-by-side table —
// a one-binary summary of Fig. 14 at one concurrency level.
//
//   ./build/examples/protocol_comparison [num_clients] [payload_bytes]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness/experiment.h"
#include "raft/types.h"

int main(int argc, char** argv) {
  using namespace nbraft;

  const int clients = argc > 1 ? std::atoi(argv[1]) : 128;
  const size_t payload = argc > 2
                             ? static_cast<size_t>(std::atol(argv[2]))
                             : 4096;

  const std::vector<raft::Protocol> protocols = {
      raft::Protocol::kRaft,   raft::Protocol::kNbRaft,
      raft::Protocol::kCRaft,  raft::Protocol::kNbCRaft,
      raft::Protocol::kECRaft, raft::Protocol::kKRaft,
      raft::Protocol::kVGRaft,
  };

  std::printf("== protocol comparison: 3 replicas, %d clients, %zu B ==\n\n",
              clients, payload);
  std::printf("%-16s %12s %12s %12s %10s\n", "protocol", "kop/s", "mean ms",
              "p99 ms", "weak/req");

  double raft_kops = 0.0;
  for (const raft::Protocol protocol : protocols) {
    harness::ClusterConfig config;
    config.num_nodes = 3;
    config.num_clients = clients;
    config.payload_size = payload;
    config.protocol = protocol;
    config.seed = 11;

    const harness::ThroughputResult r =
        harness::RunThroughputExperiment(config, Millis(400), Seconds(2));
    if (protocol == raft::Protocol::kRaft) raft_kops = r.throughput_kops;
    std::printf("%-16s %12.1f %12.2f %12.2f %10.2f\n",
                std::string(raft::ProtocolName(protocol)).c_str(),
                r.throughput_kops, r.mean_latency_ms, r.p99_latency_ms,
                r.weak_ratio);
  }

  std::printf("\n(paper reports NB-Raft ≈ +30%% over Raft at high "
              "concurrency; Raft baseline here: %.1f kop/s)\n",
              raft_kops);
  return 0;
}
