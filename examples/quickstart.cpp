// Quickstart: bring up a 3-replica NB-Raft cluster with 64 client
// connections on the deterministic simulator, ingest IoT data for two
// virtual seconds, and print throughput, latency, and the follower state.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "harness/cluster.h"
#include "harness/experiment.h"
#include "raft/types.h"

int main() {
  using namespace nbraft;

  harness::ClusterConfig config;
  config.num_nodes = 3;
  config.num_clients = 64;
  config.protocol = raft::Protocol::kNbRaft;  // Try raft::Protocol::kRaft!
  config.payload_size = 4096;
  config.seed = 7;

  std::printf("== NB-Raft quickstart: %d replicas, %d clients, %zu B =="
              "\n\n",
              config.num_nodes, config.num_clients, config.payload_size);

  harness::Cluster cluster(config);
  cluster.Start();
  if (!cluster.AwaitLeader()) {
    std::printf("no leader elected — check the configuration\n");
    return 1;
  }
  raft::RaftNode* leader = cluster.leader();
  std::printf("leader elected: node %d (term %lld)\n", leader->id(),
              static_cast<long long>(leader->current_term()));

  cluster.StartClients();
  cluster.RunFor(Millis(500));  // Warm-up.
  cluster.ResetMeasurement();
  cluster.RunFor(Seconds(2));   // Measured window.

  const harness::ClusterStats stats = cluster.Collect();
  std::printf("\ncompleted requests : %llu (%.1f kop/s)\n",
              static_cast<unsigned long long>(stats.requests_completed),
              static_cast<double>(stats.requests_completed) / 2.0 / 1000.0);
  std::printf("weak accepts       : %llu\n",
              static_cast<unsigned long long>(stats.weak_accepts));
  std::printf("completion latency : %s\n",
              stats.completion_latency.Summary().c_str());
  std::printf("unblock latency    : %s\n",
              stats.unblock_latency.Summary().c_str());
  std::printf("t_wait(F)          : %s\n",
              stats.follower_wait.Summary().c_str());

  leader = cluster.leader();
  std::printf("\nleader log         : last index %lld, committed %lld, "
              "applied %lld\n",
              static_cast<long long>(leader->log().LastIndex()),
              static_cast<long long>(leader->commit_index()),
              static_cast<long long>(leader->applied_index()));
  std::printf("state machine      : %llu points ingested\n",
              static_cast<unsigned long long>(
                  static_cast<const tsdb::TsdbStateMachine&>(
                      leader->state_machine())
                      .ingested_points()));

  std::printf("\nphase breakdown (all nodes):\n%s",
              stats.breakdown.ToTable().c_str());

  const Status log_matching = cluster.CheckLogMatching();
  std::printf("\nlog matching check : %s\n", log_matching.ToString().c_str());
  return log_matching.ok() ? 0 : 1;
}
