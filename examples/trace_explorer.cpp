// Per-entry lifecycle tracing, side by side for Raft and NB-Raft: runs
// both protocols with the tracer + telemetry sampler attached, exports
// Chrome trace_event JSON (open in chrome://tracing or
// https://ui.perfetto.dev) plus a JSONL dump, and then validates the
// traces themselves:
//
//   1. per-phase span totals agree with the end-of-run Breakdown the
//      cluster collects from its nodes and clients (within 1%), and
//   2. at least one entry's spans cover the full Table I lifecycle,
//      t_gen(C) through t_apply(L).
//
// Exits non-zero if either check fails, so it doubles as an acceptance
// test for the observability layer.
//
//   ./build/examples/trace_explorer [output_dir]

#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "harness/cluster.h"
#include "metrics/breakdown.h"
#include "obs/names.h"
#include "obs/tracer.h"
#include "raft/types.h"

using namespace nbraft;

namespace {

struct TraceReport {
  bool parity_ok = true;
  bool coverage_ok = false;
  int covered_entries = 0;  ///< Entries whose spans span all 11 phases.
};

// Joins client-keyed spans (request_id) with replication-keyed spans
// (log index) through the leader's `raft.entry_indexed` instant and counts
// entries
// whose union covers every phase.
// Fsync spans only exist when a simulated disk is configured (this run has
// none), so "fully covered" means the lifecycle phases before kFsync.
constexpr int kLifecyclePhases = static_cast<int>(metrics::Phase::kFsync);

int CountFullyCoveredEntries(const obs::Tracer& tracer) {
  std::map<uint64_t, std::set<int>> by_request;
  std::map<int64_t, std::set<int>> by_index;
  for (const obs::SpanEvent& s : tracer.spans()) {
    const int phase = static_cast<int>(s.phase);
    if (s.request_id != 0) by_request[s.request_id].insert(phase);
    if (s.index != 0) by_index[s.index].insert(phase);
  }
  int covered = 0;
  for (const obs::InstantEvent& e : tracer.instants()) {
    if (std::string_view(e.name) != obs::names::kEntryIndexed) continue;
    // arg0 = log index, arg1 = request id.
    std::set<int> phases;
    if (auto it = by_request.find(static_cast<uint64_t>(e.arg1));
        it != by_request.end()) {
      phases = it->second;
    }
    if (auto it = by_index.find(e.arg0); it != by_index.end()) {
      phases.insert(it->second.begin(), it->second.end());
    }
    if (static_cast<int>(phases.size()) >= kLifecyclePhases) ++covered;
  }
  return covered;
}

TraceReport Explore(raft::Protocol protocol, const std::string& out_dir) {
  const std::string tag(raft::ProtocolName(protocol));
  harness::ClusterConfig config;
  config.num_nodes = 3;
  config.num_clients = 8;
  config.protocol = protocol;
  config.payload_size = 1024;
  config.client_think = Micros(50);
  config.seed = 4242;
  config.trace_path = out_dir + "/" + tag + ".trace.json";
  config.trace_jsonl_path = out_dir + "/" + tag + ".trace.jsonl";
  config.sample_interval = Millis(1);

  harness::Cluster cluster(config);
  cluster.Start();
  if (!cluster.AwaitLeader()) {
    std::fprintf(stderr, "%s: no leader elected\n", tag.c_str());
    return TraceReport{.parity_ok = false};
  }
  cluster.StartClients();
  cluster.RunFor(Millis(400));
  cluster.StopAllClients();
  cluster.RunFor(Millis(300));

  const Status written = cluster.WriteTraces();
  if (!written.ok()) {
    std::fprintf(stderr, "%s: %s\n", tag.c_str(),
                 written.ToString().c_str());
    return TraceReport{.parity_ok = false};
  }

  const obs::Tracer& tracer = *cluster.tracer();
  const harness::ClusterStats stats = cluster.Collect();

  std::printf("== %s ==\n", tag.c_str());
  std::printf("  wrote %s (%zu spans, %zu instants, %zu samples)\n",
              config.trace_path.c_str(), tracer.span_count(),
              tracer.instant_count(), cluster.sampler()->samples().size());
  if (tracer.spans_dropped() != 0) {
    std::printf("  (ring evicted %llu spans; totals below remain exact)\n",
                static_cast<unsigned long long>(tracer.spans_dropped()));
  }
  std::printf("  committed=%llu completed=%llu\n",
              static_cast<unsigned long long>(stats.entries_committed_leader),
              static_cast<unsigned long long>(stats.requests_completed));

  // Check 1: the trace's per-phase totals reproduce the collected
  // breakdown within 1%.
  TraceReport report;
  const metrics::Breakdown& traced = tracer.SpanBreakdown();
  std::printf("  %-12s %14s %14s\n", "phase", "trace total", "breakdown");
  for (int i = 0; i < metrics::kNumPhases; ++i) {
    const auto phase = static_cast<metrics::Phase>(i);
    const double a = static_cast<double>(traced.total(phase));
    const double b = static_cast<double>(stats.breakdown.total(phase));
    const double denom = std::max(b, 1.0);
    const bool ok = std::fabs(a - b) / denom <= 0.01;
    if (!ok) report.parity_ok = false;
    std::printf("  %-12s %14.0f %14.0f%s\n",
                std::string(metrics::PhaseNotation(phase)).c_str(), a, b,
                ok ? "" : "  <-- MISMATCH");
  }

  // Check 2: at least one entry is traced across the entire lifecycle.
  report.covered_entries = CountFullyCoveredEntries(tracer);
  report.coverage_ok = report.covered_entries > 0;
  std::printf("  entries covering all %d phases: %d\n\n", kLifecyclePhases,
              report.covered_entries);
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  bool ok = true;
  for (const raft::Protocol protocol :
       {raft::Protocol::kRaft, raft::Protocol::kNbRaft}) {
    const TraceReport report = Explore(protocol, out_dir);
    if (!report.parity_ok) {
      std::fprintf(stderr, "FAIL: trace/breakdown totals diverge >1%%\n");
      ok = false;
    }
    if (!report.coverage_ok) {
      std::fprintf(stderr,
                   "FAIL: no entry traced across the full lifecycle\n");
      ok = false;
    }
  }
  if (ok) {
    std::printf("all trace checks passed; load the .trace.json files in "
                "https://ui.perfetto.dev to explore.\n");
  }
  return ok ? 0 : 1;
}
