#include "baselines/protocol_registry.h"

#include <cstdio>

#include "common/logging.h"

namespace nbraft::baselines {

namespace {

// Table II of the paper.
const ProtocolTraits kTraits[] = {
    {raft::Protocol::kRaft, "Low", "Few", "Small", "High", true, "Low"},
    {raft::Protocol::kNbRaft, "High", "Few", "Small", "Low", true, "Low"},
    {raft::Protocol::kCRaft, "Low", "Many", "Large", "High", false, "High"},
    {raft::Protocol::kNbCRaft, "High", "Many", "Large", "Low", false,
     "High"},
    {raft::Protocol::kECRaft, "Low", "Many", "Large", "High", false, "High"},
    {raft::Protocol::kKRaft, "Low", "Few", "Small", "High", true, "Low"},
    {raft::Protocol::kVGRaft, "Low", "Few", "Small", "High", true, "High"},
};

}  // namespace

const std::vector<raft::Protocol>& AllProtocols() {
  static const std::vector<raft::Protocol>* all =
      new std::vector<raft::Protocol>{
          raft::Protocol::kRaft,   raft::Protocol::kNbRaft,
          raft::Protocol::kCRaft,  raft::Protocol::kNbCRaft,
          raft::Protocol::kECRaft, raft::Protocol::kKRaft,
          raft::Protocol::kVGRaft,
      };
  return *all;
}

const ProtocolTraits& TraitsFor(raft::Protocol protocol) {
  for (const ProtocolTraits& t : kTraits) {
    if (t.protocol == protocol) return t;
  }
  NBRAFT_CHECK(false) << "unknown protocol";
  return kTraits[0];
}

std::string FormatTraitsTable() {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-14s %-12s %-9s %-9s %-12s %-9s %s\n",
                "Protocol", "Concurrency", "Replicas", "ReqSize",
                "Persistence", "FollowerRd", "CPU");
  out += line;
  for (raft::Protocol p : AllProtocols()) {
    const ProtocolTraits& t = TraitsFor(p);
    std::snprintf(line, sizeof(line), "%-14s %-12s %-9s %-9s %-12s %-9s %s\n",
                  std::string(raft::ProtocolName(p)).c_str(),
                  std::string(t.preferred_concurrency).c_str(),
                  std::string(t.preferred_replicas).c_str(),
                  std::string(t.preferred_request_size).c_str(),
                  std::string(t.persistence).c_str(),
                  t.follower_read ? "Yes" : "No",
                  std::string(t.cpu_usage).c_str());
    out += line;
  }
  return out;
}

}  // namespace nbraft::baselines
