#ifndef NBRAFT_BASELINES_PROTOCOL_REGISTRY_H_
#define NBRAFT_BASELINES_PROTOCOL_REGISTRY_H_

#include <string>
#include <string_view>
#include <vector>

#include "raft/types.h"

namespace nbraft::baselines {

/// Qualitative traits of each protocol — the rows of the paper's Table II
/// ("Preferred Conditions"). `DeriveConditions` in the Table II benchmark
/// cross-checks these against measured sweeps.
struct ProtocolTraits {
  raft::Protocol protocol;
  std::string_view preferred_concurrency;  ///< "Low" / "High".
  std::string_view preferred_replicas;     ///< "Few" / "Many".
  std::string_view preferred_request_size; ///< "Small" / "Large".
  std::string_view persistence;            ///< "High" / "Low".
  bool follower_read;
  std::string_view cpu_usage;              ///< "Low" / "High".
};

/// All protocols in the paper's evaluation order.
const std::vector<raft::Protocol>& AllProtocols();

/// Table II's row for a protocol.
const ProtocolTraits& TraitsFor(raft::Protocol protocol);

/// Renders Table II.
std::string FormatTraitsTable();

}  // namespace nbraft::baselines

#endif  // NBRAFT_BASELINES_PROTOCOL_REGISTRY_H_
