#include "chaos/chaos_plan.h"

namespace nbraft::chaos {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kCrashLeader: return "crash_leader";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kOneWayPartition: return "one_way_partition";
    case FaultKind::kLinkFlap: return "link_flap";
    case FaultKind::kDropStorm: return "drop_storm";
    case FaultKind::kDelayStorm: return "delay_storm";
    case FaultKind::kClockSkew: return "clock_skew";
    case FaultKind::kSlowNode: return "slow_node";
    case FaultKind::kDiskStall: return "disk_stall";
    case FaultKind::kDiskCorruption: return "disk_corruption";
    case FaultKind::kDisruptiveServer: return "disruptive_server";
    case FaultKind::kVoteWithholder: return "vote_withholder";
    case FaultKind::kElectionStorm: return "election_storm";
    case FaultKind::kMembershipChurn: return "membership_churn";
  }
  return "unknown";
}

const std::vector<FaultKind>& ChaosPlan::EffectiveMix() const {
  static const std::vector<FaultKind> kDefault = {
      FaultKind::kCrash,     FaultKind::kCrashLeader,
      FaultKind::kPartition, FaultKind::kOneWayPartition,
      FaultKind::kLinkFlap,  FaultKind::kDropStorm,
      FaultKind::kDelayStorm, FaultKind::kClockSkew,
      FaultKind::kSlowNode,
  };
  return mix.empty() ? kDefault : mix;
}

std::string FaultRecordToString(const FaultRecord& record) {
  std::string out = std::to_string(record.at);
  out += record.heal ? " heal " : " inject ";
  out += FaultKindName(record.kind);
  out += " a=" + std::to_string(record.a);
  out += " b=" + std::to_string(record.b);
  out += " param=" + std::to_string(record.param);
  return out;
}

uint64_t FingerprintFaults(const std::vector<FaultRecord>& records) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis.
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;  // FNV prime.
    }
  };
  for (const FaultRecord& r : records) {
    mix(static_cast<uint64_t>(r.kind));
    mix(r.heal ? 1 : 0);
    mix(static_cast<uint64_t>(r.at));
    mix(static_cast<uint64_t>(static_cast<int64_t>(r.a)));
    mix(static_cast<uint64_t>(static_cast<int64_t>(r.b)));
    mix(static_cast<uint64_t>(r.param));
  }
  return h;
}

}  // namespace nbraft::chaos
