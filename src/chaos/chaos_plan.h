#ifndef NBRAFT_CHAOS_CHAOS_PLAN_H_
#define NBRAFT_CHAOS_CHAOS_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "net/network.h"

namespace nbraft::chaos {

/// One kind of nemesis action. Each injected fault also schedules its own
/// heal, so a plan can never leave the cluster permanently degraded.
enum class FaultKind : uint8_t {
  kCrash,            ///< Crash a random up replica, restart later.
  kCrashLeader,      ///< Crash the current leader specifically.
  kPartition,        ///< Symmetric link cut between a random pair.
  kOneWayPartition,  ///< Directed cut: a can send to b, b's replies vanish.
  kLinkFlap,         ///< Rapid cut/heal cycles on one link.
  kDropStorm,        ///< Raise global message-drop probability.
  kDelayStorm,       ///< Add a fixed extra delay to every message.
  kClockSkew,        ///< Scale one node's election timeout.
  kSlowNode,         ///< Degrade one node's CPU lanes.
  kDiskStall,        ///< Stall one node's fsyncs (slow disk / write-cache flush).
  kDiskCorruption,   ///< Bit-rot a durable tail record, then crash the node so
                     ///< recovery detects it (disk-fault runs only).
  // Protocol-level adversaries: attacks on the election protocol itself
  // rather than the environment. Not in the default mix (the default
  // fault schedule is fingerprint-pinned) — opt in via `mix`.
  kDisruptiveServer,  ///< Isolate a non-leader so its term inflates (or its
                      ///< pre-vote canvasses fail), then rejoin it. Without
                      ///< PreVote the rejoin deposes a healthy leader.
  kVoteWithholder,    ///< One node refuses every vote/pre-vote request.
  kElectionStorm,     ///< Repeatedly isolate whoever is currently leader,
                      ///< forcing back-to-back elections.
  kMembershipChurn,   ///< Remove a non-leader voter from its group's
                      ///< configuration (joint consensus), then add the host
                      ///< back as a learner when the fault heals — recovery
                      ///< catch-up re-promotes it. Needs an elastic cluster
                      ///< (ClusterConfig::initial_voters > 0); not in the
                      ///< default mix (fingerprint-pinned).
};

const char* FaultKindName(FaultKind kind);

/// Declarative description of a fault campaign. The Nemesis draws every
/// choice (kind, victims, gaps, durations, intensities) from its own RNG
/// seeded with `seed`, so a plan + seed fully determines the fault
/// schedule.
struct ChaosPlan {
  uint64_t seed = 1;

  /// Fault kinds to draw from, uniformly. Repeat a kind to weight it.
  /// Empty = the default mix (every kind once).
  std::vector<FaultKind> mix;

  /// Virtual-time gap between consecutive injections.
  SimDuration min_gap = Millis(40);
  SimDuration max_gap = Millis(160);

  /// How long a fault stays active before its guaranteed heal.
  SimDuration min_duration = Millis(60);
  SimDuration max_duration = Millis(240);

  /// Crash cap: at most this many nemesis-crashed replicas at once.
  /// -1 = keep a quorum alive, i.e. (num_nodes - 1) / 2.
  int max_concurrent_crashes = -1;

  /// Intensities.
  double drop_storm_probability = 0.25;
  SimDuration delay_storm_extra = Millis(10);
  double skew_min = 0.5;   ///< Election-timer scale lower bound.
  double skew_max = 2.5;   ///< Upper bound (> 1 = sluggish node).
  double slow_factor = 0.25;  ///< CPU speed during kSlowNode (< 1 = slow).
  int flap_cycles = 4;        ///< Cut/heal cycles per kLinkFlap.
  SimDuration disk_stall_extra = Millis(5);  ///< Added to every fsync.
  /// Corruption budget per run: each corruption truncates one node's log
  /// tail, so more than one per run can cut a quorum's worth of copies of
  /// the same entry (safety requires a quorum of intact replicas).
  int max_disk_corruptions = 1;
  /// Isolate/rejoin cycles per kElectionStorm (each cycle targets whoever
  /// is leader at that moment, ending healed).
  int storm_cycles = 3;

  const std::vector<FaultKind>& EffectiveMix() const;
};

/// One executed nemesis action (or heal), in injection order. The sequence
/// of records is the fault schedule; Fingerprint() condenses it for the
/// determinism check.
struct FaultRecord {
  FaultKind kind = FaultKind::kCrash;
  bool heal = false;  ///< true for the healing half of the fault.
  SimTime at = 0;
  net::NodeId a = net::kInvalidNode;  ///< Victim (crash/skew/slow) or link end.
  net::NodeId b = net::kInvalidNode;  ///< Other link end, if any.
  int64_t param = 0;  ///< Intensity, scaled: skew/speed x1000, drop x1000, delay.
};

std::string FaultRecordToString(const FaultRecord& record);

/// FNV-1a over the full schedule: same seed => same fingerprint.
uint64_t FingerprintFaults(const std::vector<FaultRecord>& records);

}  // namespace nbraft::chaos

#endif  // NBRAFT_CHAOS_CHAOS_PLAN_H_
