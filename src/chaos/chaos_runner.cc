#include "chaos/chaos_runner.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "common/logging.h"
#include "raft/raft_node.h"

namespace nbraft::chaos {

std::string ChaosReport::Summary() const {
  std::string out = "seed " + std::to_string(seed) + ": " +
                    std::to_string(faults.size()) + " fault actions (fp " +
                    std::to_string(fault_fingerprint) + "), " +
                    std::to_string(requests_completed) + "/" +
                    std::to_string(requests_issued) + " completed, " +
                    std::to_string(strong_acked) + " strong-acked, " +
                    std::to_string(lost_weak) + " weak lost, " +
                    std::to_string(terms_observed) + " terms, commit " +
                    std::to_string(final_commit_index);
  if (!ok()) {
    out += ", " + std::to_string(violations.size()) + " VIOLATIONS:";
    for (const std::string& v : violations) out += "\n  " + v;
  }
  return out;
}

ChaosRunner::ChaosRunner(harness::ClusterConfig config, ChaosPlan plan,
                         Options options)
    : config_(std::move(config)),
      plan_(std::move(plan)),
      options_(options) {
  // The oracle needs the acked-id sets; the plan seed keys the nemesis but
  // the cluster seed keys everything else, so a (cluster seed, plan seed)
  // pair fully determines the run.
  config_.record_client_acks = true;
  // A post-mortem without a flight recorder would be empty.
  if (!options_.postmortem_dir.empty()) config_.journal = true;
}

void ChaosRunner::RunMembershipActions(int round) {
  std::vector<MembershipAction> still_pending;
  for (const MembershipAction& action : pending_membership_) {
    if (action.round > round) {
      still_pending.push_back(action);
      continue;
    }
    bool applied = false;
    switch (action.kind) {
      case MembershipAction::Kind::kAdd:
        applied = cluster_->AddNode(action.group, action.host);
        break;
      case MembershipAction::Kind::kRemove:
        applied = cluster_->RemoveNode(action.group, action.host);
        break;
      case MembershipAction::Kind::kTransfer:
        applied = cluster_->TransferLeadership(action.group, action.host);
        break;
    }
    if (!applied) still_pending.push_back(action);
  }
  pending_membership_ = std::move(still_pending);
}

bool ChaosRunner::AnyViolations() const {
  for (const auto& oracle : oracles_) {
    if (!oracle->ok()) return true;
  }
  return false;
}

void ChaosRunner::MaybeDumpPostmortem() {
  if (options_.postmortem_dir.empty()) return;
  if (!postmortem_jsonl_.empty()) return;  // First violation already dumped.
  if (!AnyViolations()) return;
  obs::Journal* journal = cluster_->journal();
  if (journal == nullptr) return;
  std::error_code ec;
  std::filesystem::create_directories(options_.postmortem_dir, ec);
  if (ec) {
    NBRAFT_LOG(Warn) << "postmortem dir " << options_.postmortem_dir
                     << " not writable: " << ec.message();
    return;
  }
  const std::string base = options_.postmortem_dir + "/postmortem_seed" +
                           std::to_string(plan_.seed);
  const SimTime cutoff = cluster_->sim()->Now();
  const Status jsonl = journal->WriteJsonl(base + ".jsonl", cutoff,
                                           options_.postmortem_lookback);
  const Status timeline = journal->WriteTimeline(
      base + ".txt", cutoff, options_.postmortem_lookback,
      [this](int32_t id) { return cluster_->EndpointName(id); });
  if (!jsonl.ok() || !timeline.ok()) {
    NBRAFT_LOG(Warn) << "postmortem dump failed: "
                     << (jsonl.ok() ? timeline.ToString() : jsonl.ToString());
    return;
  }
  postmortem_jsonl_ = base + ".jsonl";
  postmortem_timeline_ = base + ".txt";
  NBRAFT_LOG(Error) << "safety violation: flight-recorder post-mortem at "
                    << postmortem_jsonl_;
}

ChaosReport ChaosRunner::Run() {
  NBRAFT_CHECK(!ran_);
  ran_ = true;

  cluster_ = std::make_unique<harness::Cluster>(config_);
  for (int g = 0; g < cluster_->num_groups(); ++g) {
    auto oracle = std::make_unique<SafetyOracle>(cluster_.get(), g);
    oracle->set_expect_zero_depositions(options_.expect_zero_depositions);
    oracle->set_max_term_inflation(options_.max_term_inflation);
    oracle->Install();
    oracles_.push_back(std::move(oracle));
  }
  nemesis_ = std::make_unique<Nemesis>(cluster_.get(), plan_);

  cluster_->Start();
  cluster_->AwaitLeader(options_.leader_wait);
  cluster_->StartClients();
  nemesis_->Start();
  pending_membership_ = options_.membership_plan;

  for (int round = 0; round < options_.rounds; ++round) {
    RunMembershipActions(round);
    cluster_->RunFor(options_.round_length);
    if (mid_run_hook_) mid_run_hook_(cluster_.get(), round);
    for (auto& oracle : oracles_) oracle->CheckMidRun();
    // Dump at the violating round boundary, not at the end of the run:
    // the lookback window must straddle the violation, and a post-mortem
    // taken seconds later would have scrolled past it.
    MaybeDumpPostmortem();
  }

  nemesis_->Stop();
  nemesis_->HealAll();
  cluster_->AwaitLeader(options_.leader_wait);
  // One final boundary: scripted actions that kept failing mid-fault get a
  // healed cluster to land on, with the whole drain to commit.
  RunMembershipActions(options_.rounds);
  cluster_->RunFor(options_.drain);
  // Membership settle: changes are serialized (one joint window at a
  // time), so scripted actions that collided with an in-flight change —
  // or a joint window a heal-time re-add opened late — get bounded extra
  // boundaries to land and close before the final audit. A cluster with
  // nothing pending exits immediately, so fixed-roster runs are
  // untouched; a genuinely wedged change still surfaces as a pending
  // action count and an open joint at quiescence.
  for (int settle = 0; settle < options_.settle_rounds; ++settle) {
    bool in_flight = !pending_membership_.empty();
    for (int g = 0; g < cluster_->num_groups(); ++g) {
      raft::RaftNode* lead = cluster_->leader(g);
      if (lead == nullptr) {
        // Only elastic clusters wait out a missing leader here; a fixed
        // roster keeps its historical quiescence point bit-for-bit.
        if (config_.initial_voters > 0) in_flight = true;
      } else if (lead->membership()->active() &&
                 lead->membership()->ChangeInFlight()) {
        in_flight = true;
      }
    }
    if (!in_flight) break;
    RunMembershipActions(options_.rounds);
    cluster_->RunFor(options_.settle_slice);
  }
  for (auto& oracle : oracles_) oracle->CheckFinal();
  MaybeDumpPostmortem();

  ChaosReport report;
  report.seed = plan_.seed;
  report.faults = nemesis_->records();
  report.fault_fingerprint = nemesis_->Fingerprint();
  // Group-0-first concatenation; single-group output is the historical
  // report verbatim.
  for (const auto& oracle : oracles_) {
    report.violations.insert(report.violations.end(),
                             oracle->violations().begin(),
                             oracle->violations().end());
    report.strong_acked += oracle->strong_acked_count();
    report.lost_weak += oracle->lost_weak_count();
    report.terms_observed += oracle->terms_observed();
  }
  report.postmortem_jsonl = postmortem_jsonl_;
  report.postmortem_timeline = postmortem_timeline_;
  report.membership_actions_pending = pending_membership_.size();

  const harness::ClusterStats stats = cluster_->Collect();
  report.requests_issued = stats.requests_issued;
  report.requests_completed = stats.requests_completed;

  for (int g = 0; g < cluster_->num_groups(); ++g) {
    for (int n = 0; n < cluster_->num_nodes(); ++n) {
      const raft::RaftNode* node = cluster_->node(g, n);
      const raft::NodeStats& ns = node->stats();
      report.terms_started += ns.terms_started;
      report.prevotes_granted += ns.prevotes_granted;
      report.prevotes_rejected += ns.prevotes_rejected;
      report.leader_depositions += ns.leader_depositions;
      report.checkquorum_stepdowns += ns.checkquorum_stepdowns;
      report.config_changes += ns.config_changes;
      report.learners_promoted += ns.learners_promoted;
      report.transfers += ns.transfers;
      if (!node->crashed()) {
        report.max_term = std::max(
            report.max_term, static_cast<uint64_t>(node->current_term()));
      }
    }
  }

  // Commit totals and the outcome hash fold every group's final leader in
  // group order, chained from one FNV basis — a single group reduces to
  // the historical leader-prefix hash exactly.
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis.
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  bool any_leader = false;
  for (int g = 0; g < cluster_->num_groups(); ++g) {
    raft::RaftNode* leader = cluster_->leader(g);
    if (leader == nullptr) continue;
    any_leader = true;
    report.final_commit_index += leader->commit_index();
    const auto& log = leader->log();
    const storage::LogIndex upto =
        std::min(leader->commit_index(), log.LastIndex());
    for (storage::LogIndex i = log.FirstIndex(); i <= upto; ++i) {
      const auto& e = log.AtUnchecked(i);
      mix(static_cast<uint64_t>(i));
      mix(static_cast<uint64_t>(e.term));
      mix(e.request_id);
    }
  }
  if (any_leader) report.committed_prefix_hash = h;
  report.sim_events = cluster_->sim()->events_processed();

  NBRAFT_LOG(Info) << "chaos " << report.Summary();
  return report;
}

}  // namespace nbraft::chaos
