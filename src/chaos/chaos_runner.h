#ifndef NBRAFT_CHAOS_CHAOS_RUNNER_H_
#define NBRAFT_CHAOS_CHAOS_RUNNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "chaos/chaos_plan.h"
#include "chaos/invariants.h"
#include "chaos/nemesis.h"
#include "harness/cluster.h"

namespace nbraft::chaos {

/// Everything one chaos scenario produced. Two runs with the same
/// ClusterConfig + ChaosPlan must produce byte-identical reports — the
/// determinism check compares fingerprint, stats and the final committed
/// prefix hash.
struct ChaosReport {
  uint64_t seed = 0;
  std::vector<FaultRecord> faults;
  uint64_t fault_fingerprint = 0;
  std::vector<std::string> violations;

  uint64_t requests_issued = 0;
  uint64_t requests_completed = 0;
  uint64_t strong_acked = 0;
  uint64_t lost_weak = 0;
  size_t terms_observed = 0;

  // Adversarial-resilience aggregates (summed over all nodes; see
  // raft::NodeStats). The blast-radius bench and the mitigation
  // regression tests read these.
  uint64_t terms_started = 0;
  uint64_t prevotes_granted = 0;
  uint64_t prevotes_rejected = 0;
  uint64_t leader_depositions = 0;
  uint64_t checkquorum_stepdowns = 0;
  /// Highest term any live node holds at the end of the run.
  uint64_t max_term = 0;

  int64_t final_commit_index = 0;
  /// FNV-1a over the final leader's committed (index, term, request_id)
  /// sequence: the run's observable outcome in one number.
  uint64_t committed_prefix_hash = 0;

  /// Simulator events the run processed — deterministic for a fixed
  /// (config, plan), so it doubles as a cheap whole-run fingerprint and
  /// feeds the sweep scheduler's aggregate ev/s accounting.
  uint64_t sim_events = 0;

  // Membership aggregates (summed over all nodes; nonzero only on elastic
  // runs). The membership chaos sweep reads these.
  uint64_t config_changes = 0;
  uint64_t learners_promoted = 0;
  uint64_t transfers = 0;
  /// Scripted membership actions that never applied (ran out of retries).
  size_t membership_actions_pending = 0;

  /// Paths of the automatic flight-recorder dump, written the moment the
  /// oracle first reported a violation (empty when the run was clean or no
  /// postmortem_dir was configured).
  std::string postmortem_jsonl;
  std::string postmortem_timeline;

  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

/// Interleaves the ingest workload with a ChaosPlan: assembles the
/// cluster, lets the nemesis run for a configured number of rounds with
/// the invariant suite checked at every round boundary (a quiescent point
/// of the harness, not of the protocol), then heals everything, drains,
/// and runs the full safety oracle against the final state.
class ChaosRunner {
 public:
  /// One scripted membership change, executed at a round boundary (before
  /// that round's faults run). An action that fails — leaderless group,
  /// another change in flight — is retried at every later boundary,
  /// including one final boundary after HealAll, then counted in
  /// ChaosReport::membership_actions_pending if it never landed. Requires
  /// an elastic cluster (ClusterConfig::initial_voters > 0).
  struct MembershipAction {
    enum class Kind {
      kAdd,       ///< Cluster::AddNode(group, host): learner join + catch-up.
      kRemove,    ///< Cluster::RemoveNode(group, host): joint-consensus exit.
      kTransfer,  ///< Cluster::TransferLeadership(group, host): TimeoutNow.
    };
    int round = 0;  ///< First boundary at which to attempt the action.
    Kind kind = Kind::kAdd;
    int group = 0;
    int host = 0;
  };

  struct Options {
    int rounds = 6;
    SimDuration round_length = Millis(250);
    /// Post-heal run time: retries finish, commits catch up.
    SimDuration drain = Seconds(2);
    SimDuration leader_wait = Seconds(5);

    /// When non-empty, the flight recorder is forced on and — the moment
    /// the safety oracle first reports a violation — the merged multi-node
    /// journal is dumped there as postmortem_seed<seed>.jsonl plus a
    /// human-readable .txt timeline, covering the last postmortem_lookback
    /// of virtual time before the violation.
    std::string postmortem_dir;
    SimDuration postmortem_lookback = Seconds(2);

    /// Opt-in mitigation expectations, forwarded to the SafetyOracle
    /// (violations when broken). Used by adversarial mitigation runs.
    bool expect_zero_depositions = false;
    /// Bound on live-max-term minus last-led-term; < 0 disables.
    int64_t max_term_inflation = -1;

    /// Scripted elastic-membership schedule (see MembershipAction). Runs
    /// interleaved with — and unsynchronized against — the fault plan,
    /// which is the point: config changes must stay safe mid-fault.
    std::vector<MembershipAction> membership_plan;

    /// Post-drain membership settle: while scripted actions are still
    /// pending or a joint window is open (changes serialize, so a retry
    /// must wait out its predecessor's commit), up to settle_rounds extra
    /// boundaries of settle_slice each run before the final audit. A run
    /// with nothing in flight skips the loop entirely.
    int settle_rounds = 20;
    SimDuration settle_slice = Millis(200);
  };

  ChaosRunner(harness::ClusterConfig config, ChaosPlan plan,
              Options options);
  ChaosRunner(harness::ClusterConfig config, ChaosPlan plan)
      : ChaosRunner(std::move(config), std::move(plan), Options()) {}

  ChaosRunner(const ChaosRunner&) = delete;
  ChaosRunner& operator=(const ChaosRunner&) = delete;

  /// Runs the whole scenario. Callable once.
  ChaosReport Run();

  /// Valid after Run() (e.g. to write traces of a failing seed).
  harness::Cluster* cluster() { return cluster_.get(); }

  /// Test hook, called after every round's RunFor and before the round's
  /// invariant check. Lets a test mutate cluster state directly (e.g.
  /// simulate memory corruption of a log entry) so the oracle-triggered
  /// post-mortem path can be exercised deterministically.
  void set_mid_run_hook(
      std::function<void(harness::Cluster*, int round)> hook) {
    mid_run_hook_ = std::move(hook);
  }

 private:
  /// Attempts every scheduled membership action due at boundary `round`;
  /// failures stay pending for the next boundary.
  void RunMembershipActions(int round);

  /// Dumps the journal once, the first time the oracle holds violations.
  void MaybeDumpPostmortem();

  /// True when any group's oracle holds violations.
  bool AnyViolations() const;

  harness::ClusterConfig config_;
  ChaosPlan plan_;
  Options options_;
  std::unique_ptr<harness::Cluster> cluster_;
  std::unique_ptr<Nemesis> nemesis_;
  /// One oracle per consensus group (single-group runs have exactly one —
  /// the historical shape). Faults hit physical hosts; each oracle audits
  /// its own group's intra-group safety invariants.
  std::vector<std::unique_ptr<SafetyOracle>> oracles_;
  std::function<void(harness::Cluster*, int round)> mid_run_hook_;
  std::vector<MembershipAction> pending_membership_;
  std::string postmortem_jsonl_;
  std::string postmortem_timeline_;
  bool ran_ = false;
};

}  // namespace nbraft::chaos

#endif  // NBRAFT_CHAOS_CHAOS_RUNNER_H_
