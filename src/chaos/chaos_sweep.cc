#include "chaos/chaos_sweep.h"

#include <utility>

namespace nbraft::chaos {

namespace {

void MixU64(uint64_t* h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (i * 8)) & 0xff;
    *h *= 1099511628211ULL;
  }
}

void MixStr(uint64_t* h, const std::string& s) {
  MixU64(h, s.size());
  for (const char c : s) {
    *h ^= static_cast<unsigned char>(c);
    *h *= 1099511628211ULL;
  }
}

}  // namespace

uint64_t ChaosReportHash(const ChaosReport& report) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis.
  MixU64(&h, report.seed);
  MixU64(&h, report.fault_fingerprint);
  MixU64(&h, report.faults.size());
  MixU64(&h, report.violations.size());
  for (const std::string& v : report.violations) MixStr(&h, v);
  MixU64(&h, report.requests_issued);
  MixU64(&h, report.requests_completed);
  MixU64(&h, report.strong_acked);
  MixU64(&h, report.lost_weak);
  MixU64(&h, report.terms_observed);
  MixU64(&h, report.terms_started);
  MixU64(&h, report.prevotes_granted);
  MixU64(&h, report.prevotes_rejected);
  MixU64(&h, report.leader_depositions);
  MixU64(&h, report.checkquorum_stepdowns);
  MixU64(&h, report.max_term);
  MixU64(&h, report.config_changes);
  MixU64(&h, report.learners_promoted);
  MixU64(&h, report.transfers);
  MixU64(&h, report.membership_actions_pending);
  MixU64(&h, static_cast<uint64_t>(report.final_commit_index));
  MixU64(&h, report.committed_prefix_hash);
  MixU64(&h, report.sim_events);
  return h;
}

ChaosSweepOutcome RunChaosSweep(const std::vector<ChaosCell>& cells,
                                int workers, uint64_t sweep_seed) {
  ChaosSweepOutcome outcome;
  outcome.reports.resize(cells.size());

  std::vector<sweep::SweepTask> tasks;
  tasks.reserve(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    const ChaosCell& cell = cells[i];
    ChaosReport* slot = &outcome.reports[i];
    tasks.push_back(sweep::SweepTask{
        cell.name,
        // Each task owns its whole scenario and writes only its own
        // pre-sized report slot, so tasks share no mutable state. Cells
        // carry explicit seeds (the historical sweep contract); the
        // task_seed stream is for generated grids that want one (see
        // chaos_demo --sweep and bench_sweep_scale).
        [cell, slot](uint64_t /*task_seed*/) {
          ChaosRunner runner(cell.config, cell.plan, cell.options);
          *slot = runner.Run();
          sweep::TaskOutput out;
          out.fingerprint = ChaosReportHash(*slot);
          out.ok = slot->ok();
          out.detail = slot->Summary();
          out.events = slot->sim_events;
          if (cell.check) {
            // The cell's own assertions, run while the cluster still
            // exists. A failure message is part of the deterministic
            // output, so it merges identically at any worker count.
            const std::string failure = cell.check(runner, *slot);
            if (!failure.empty()) {
              out.ok = false;
              out.detail += " | check: " + failure;
            }
          }
          return out;
        }});
  }

  sweep::SweepOptions options;
  options.workers = workers;
  options.sweep_seed = sweep_seed;
  sweep::SweepScheduler scheduler(options);
  outcome.sweep = scheduler.Run(tasks);
  return outcome;
}

}  // namespace nbraft::chaos
