#ifndef NBRAFT_CHAOS_CHAOS_SWEEP_H_
#define NBRAFT_CHAOS_CHAOS_SWEEP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "chaos/chaos_runner.h"
#include "sweep/report.h"
#include "sweep/scheduler.h"

namespace nbraft::chaos {

/// One cell of a chaos sweep: a fully specified (cluster, plan, options)
/// scenario. Cells are independent by construction — each one builds its
/// own Cluster on its own Simulator inside the worker that runs it — so a
/// vector of cells is exactly the scheduler's unit of fan-out.
struct ChaosCell {
  std::string name;
  harness::ClusterConfig config;
  ChaosPlan plan;
  ChaosRunner::Options options;

  /// Optional post-run check executed inside the task while the runner's
  /// Cluster is still alive — the only window where per-group state
  /// (CheckLogMatching, CollectGroup, ...) is reachable, since the cluster
  /// dies with the task. Return "" to pass; a non-empty message fails the
  /// cell and lands in its sweep detail. Must be a pure function of the
  /// run (no wall clock, no shared state) or it breaks the merged-hash
  /// determinism contract.
  std::function<std::string(ChaosRunner&, const ChaosReport&)> check;
};

/// FNV-1a over every deterministic field of a ChaosReport (seed, fault
/// fingerprint and count, violations, request/ack/term counters, the
/// adversarial counters, commit index, committed-prefix hash, event
/// count). Two runs of the same cell must produce the same hash — this is
/// the per-cell value the sweep's merged hash chains over, and what the
/// workers=1-vs-N determinism tests pin.
uint64_t ChaosReportHash(const ChaosReport& report);

/// A sweep's worth of chaos runs plus the scheduler's merged view.
/// `reports[i]` belongs to `cells[i]`; a cell whose run threw has a
/// default-constructed report and a SweepResult carrying the error.
struct ChaosSweepOutcome {
  std::vector<ChaosReport> reports;
  sweep::SweepReport sweep;

  bool ok() const { return sweep.ok(); }
};

/// Runs every cell through the SweepScheduler with `workers` threads
/// (1 = the serial oracle on the calling thread; 0 = hardware
/// concurrency). Each cell's SweepResult carries ChaosReportHash as its
/// fingerprint, report.ok() as its verdict, Summary() as its detail and
/// the run's simulator events — so ChaosSweepOutcome::sweep.ToJson() is
/// byte-identical across worker counts, and at workers=1 it is the serial
/// loop today's tests ran, hash for hash.
ChaosSweepOutcome RunChaosSweep(const std::vector<ChaosCell>& cells,
                                int workers, uint64_t sweep_seed = 0);

}  // namespace nbraft::chaos

#endif  // NBRAFT_CHAOS_CHAOS_SWEEP_H_
