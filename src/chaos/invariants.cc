#include "chaos/invariants.h"

#include <algorithm>

#include "common/logging.h"
#include "raft/raft_node.h"

namespace nbraft::chaos {

SafetyOracle::SafetyOracle(harness::Cluster* cluster, int group)
    : cluster_(cluster), group_(group) {}

std::string SafetyOracle::Tag() const {
  return cluster_->num_groups() > 1 ? "group " + std::to_string(group_) + ": "
                                    : "";
}

void SafetyOracle::AddViolation(std::string what) {
  // Mid-run checks repeat every round; keep each distinct finding once.
  if (std::find(violations_.begin(), violations_.end(), what) !=
      violations_.end()) {
    return;
  }
  NBRAFT_LOG(Error) << "safety violation: " << what;
  violations_.push_back(std::move(what));
  if (obs::Journal* journal = cluster_->journal()) {
    journal->Record(obs::JournalEventKind::kViolation, -1, -1,
                    static_cast<int64_t>(violations_.size()),
                    static_cast<int64_t>(group_));
  }
}

void SafetyOracle::Install() {
  NBRAFT_CHECK(!installed_);
  installed_ = true;
  for (int i = 0; i < cluster_->num_nodes(); ++i) {
    cluster_->node(group_, i)->add_leader_observer(
        [this](storage::Term term, net::NodeId id) {
          auto [it, inserted] = leaders_by_term_.emplace(term, id);
          if (!inserted && it->second != id) {
            AddViolation(Tag() + "election safety: term " +
                         std::to_string(term) + " has leaders " +
                         std::to_string(it->second) + " and " +
                         std::to_string(id));
          }
        });
  }
  // Durability-claim honesty, audited at the instant of every crash: the
  // highest index this node ever claimed durable must be covered by a
  // completed fsync. Anything above the fsynced frontier is about to be
  // torn off by the crash — claiming it was the bug class this catches.
  // The observer fires per physical host; this oracle audits its own
  // group's co-resident replica.
  cluster_->set_crash_observer([this](int i) {
    raft::RaftNode* node = cluster_->node(group_, i);
    const storage::LogIndex claimed = node->strong_ack_frontier();
    const storage::LogIndex durable = node->DurableEntryFrontier();
    if (claimed > durable) {
      AddViolation(Tag() + "durability claim: node " + std::to_string(i) +
                   " strong-acked through " + std::to_string(claimed) +
                   " but fsynced only through " + std::to_string(durable) +
                   " at crash");
    }
  });
}

void SafetyOracle::CheckTermAccounting() {
  // Every term value above the initial one was minted by exactly one
  // StartElection term bump somewhere, and NodeStats survives crashes, so
  // the highest term any live node holds can never exceed the total mint
  // count. A node holding an unaccounted term fabricated it.
  storage::Term max_term = 0;
  uint64_t minted = 0;
  for (int n = 0; n < cluster_->num_nodes(); ++n) {
    const raft::RaftNode* node = cluster_->node(group_, n);
    minted += node->stats().terms_started;
    if (node->crashed()) continue;
    max_term = std::max(max_term, node->current_term());
  }
  if (static_cast<uint64_t>(max_term) > minted) {
    AddViolation(Tag() + "term accounting: live max term " +
                 std::to_string(max_term) + " exceeds " +
                 std::to_string(minted) + " terms ever started");
  }

  if (max_term_inflation_ >= 0) {
    // Inflation = terms minted beyond the last one that actually elected
    // a leader. Under PreVote a node cannot mint terms it could not win,
    // so the gap stays small; the disruptive-server attack without
    // PreVote blows it up (one mint per election timeout isolated).
    storage::Term max_led = 0;
    if (!leaders_by_term_.empty()) max_led = leaders_by_term_.rbegin()->first;
    const int64_t inflation =
        static_cast<int64_t>(max_term) - static_cast<int64_t>(max_led);
    if (inflation > max_term_inflation_) {
      AddViolation(Tag() + "term inflation: live max term " +
                   std::to_string(max_term) + " is " +
                   std::to_string(inflation) +
                   " above the last led term (bound " +
                   std::to_string(max_term_inflation_) + ")");
    }
  }
}

void SafetyOracle::CheckMidRun() {
  harness::GroupRuntime* group = cluster_->group(group_);
  Status s = group->CheckLogMatching();
  if (!s.ok()) AddViolation(s.ToString());
  s = group->CheckCommittedPrefixes();
  if (!s.ok()) AddViolation(s.ToString());
  CheckTermAccounting();
}

void SafetyOracle::CheckFinal() {
  CheckMidRun();

  if (expect_zero_depositions_) {
    uint64_t depositions = 0;
    for (int n = 0; n < cluster_->num_nodes(); ++n) {
      depositions += cluster_->node(group_, n)->stats().leader_depositions;
    }
    if (depositions > 0) {
      AddViolation(Tag() + "healthy-leader deposition: " +
                   std::to_string(depositions) +
                   " leaders forced down by a higher term despite "
                   "mitigations");
    }
  }

  raft::RaftNode* leader = cluster_->leader(group_);
  if (leader == nullptr) {
    AddViolation(Tag() + "no leader at final quiescence");
    return;
  }
  const auto& llog = leader->log();

  // Leader Completeness: every entry committed anywhere must be in the
  // final leader's log, identical. (Entries compacted below the leader's
  // first index are covered by its snapshot and skipped.)
  for (int n = 0; n < cluster_->num_nodes(); ++n) {
    const raft::RaftNode* node = cluster_->node(group_, n);
    if (node->crashed()) continue;
    const auto& nlog = node->log();
    const storage::LogIndex upto =
        std::min(node->commit_index(), nlog.LastIndex());
    for (storage::LogIndex i = std::max(nlog.FirstIndex(), llog.FirstIndex());
         i <= upto; ++i) {
      if (i > llog.LastIndex()) {
        AddViolation(Tag() + "leader completeness: node " + std::to_string(n) +
                     " committed index " + std::to_string(i) +
                     " missing from leader log");
        break;
      }
      const auto& en = nlog.AtUnchecked(i);
      const auto& el = llog.AtUnchecked(i);
      if (en.term != el.term || en.request_id != el.request_id) {
        AddViolation(Tag() + "leader completeness: committed entry diverges "
                     "at " + std::to_string(i) + " on node " +
                     std::to_string(n));
        break;
      }
    }
  }

  // Membership safety at quiescence: the final leader must hold the vote
  // under its own active configuration. A self-removing leader may keep
  // leading only until the final config commits, which the drain outlasts;
  // a leader outside its own voter set past that point means a removed
  // node's vote decided an election.
  if (leader->membership()->active() && !leader->membership()->SelfIsVoter()) {
    AddViolation(Tag() + "membership: final leader " +
                 std::to_string(leader->id()) +
                 " is not a voter in its own configuration " +
                 leader->membership()->config().Encode());
  }

  // Committed request ids: union over every live node's committed prefix.
  // Config entries carry the kConfigClientId sentinel, not a client
  // request id, and are excluded from every id set below.
  std::set<uint64_t> committed_ids;
  for (int n = 0; n < cluster_->num_nodes(); ++n) {
    const raft::RaftNode* node = cluster_->node(group_, n);
    if (node->crashed()) continue;
    const auto& nlog = node->log();
    const storage::LogIndex upto =
        std::min(node->commit_index(), nlog.LastIndex());
    for (storage::LogIndex i = nlog.FirstIndex(); i <= upto; ++i) {
      const auto& e = nlog.AtUnchecked(i);
      if (e.client_id != net::kInvalidNode &&
          e.client_id != raft::kConfigClientId) {
        committed_ids.insert(e.request_id);
      }
    }
  }

  // Per-node full-log id sets, for the live-quorum presence check. An
  // elastic cluster's host count includes unstarted spares and removed
  // nodes; durability is owed to a majority of the *current* voters.
  int quorum = cluster_->num_nodes() / 2 + 1;
  if (leader->membership()->active()) {
    quorum = leader->membership()->CountQuorum();
  }
  std::vector<std::set<uint64_t>> node_ids(
      static_cast<size_t>(cluster_->num_nodes()));
  for (int n = 0; n < cluster_->num_nodes(); ++n) {
    const raft::RaftNode* node = cluster_->node(group_, n);
    if (node->crashed()) continue;
    const auto& nlog = node->log();
    for (storage::LogIndex i = nlog.FirstIndex(); i <= nlog.LastIndex();
         ++i) {
      const auto& e = nlog.AtUnchecked(i);
      if (e.client_id != net::kInvalidNode &&
          e.client_id != raft::kConfigClientId) {
        node_ids[static_cast<size_t>(n)].insert(e.request_id);
      }
    }
  }

  // No acknowledged-write loss: every STRONG_ACCEPTed id is committed and
  // replicated on a live quorum. Only this group's clients talk to this
  // group, so the audit set is exactly their acks.
  const int num_clients = cluster_->config().num_clients;
  std::set<uint64_t> strong_acked;
  std::set<uint64_t> weak_acked;
  for (int c = 0; c < num_clients; ++c) {
    const raft::RaftClient* client = cluster_->client(group_, c);
    strong_acked.insert(client->strong_acked_ids().begin(),
                        client->strong_acked_ids().end());
    weak_acked.insert(client->weak_acked_ids().begin(),
                      client->weak_acked_ids().end());
  }
  strong_acked_count_ = strong_acked.size();
  for (uint64_t id : strong_acked) {
    if (committed_ids.count(id) == 0) {
      AddViolation(Tag() + "acked-write loss: strong-acked request " +
                   std::to_string(id) + " not in any committed prefix");
      continue;
    }
    int replicas = 0;
    for (const auto& ids : node_ids) replicas += ids.count(id) > 0 ? 1 : 0;
    if (replicas < quorum) {
      AddViolation(Tag() + "acked-write durability: strong-acked request " +
                   std::to_string(id) + " on " + std::to_string(replicas) +
                   " live replicas (quorum " + std::to_string(quorum) + ")");
    }
  }

  // Bounded weak loss: each leadership change strands at most
  // N_clients + window weakly accepted entries (paper Sec. IV bound).
  uint64_t lost = 0;
  for (uint64_t id : weak_acked) {
    if (committed_ids.count(id) == 0) ++lost;
  }
  lost_weak_count_ = lost;
  const uint64_t window = static_cast<uint64_t>(
      cluster_->node(group_, 0)->options().window_size);
  const uint64_t per_change = static_cast<uint64_t>(num_clients) + window;
  const uint64_t bound =
      std::max<uint64_t>(terms_observed(), 1) * per_change;
  if (lost > bound) {
    AddViolation(Tag() + "weak-loss bound: " + std::to_string(lost) +
                 " weakly acked ids lost, bound " + std::to_string(bound) +
                 " (" + std::to_string(terms_observed()) + " terms x (" +
                 std::to_string(num_clients) + " clients + " +
                 std::to_string(window) + " window))");
  }
}

}  // namespace nbraft::chaos
