#ifndef NBRAFT_CHAOS_INVARIANTS_H_
#define NBRAFT_CHAOS_INVARIANTS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "net/network.h"
#include "storage/log_entry.h"

namespace nbraft::chaos {

/// The full safety-invariant suite over one cluster. Built on top of the
/// cluster's own checkers (CheckLogMatching / CheckCommittedPrefixes) and
/// extends them with:
///
///  - Election Safety: at most one leader per term, tracked exactly via
///    RaftNode's leader observer rather than by polling (transient double
///    leaderships between polls cannot slip through).
///  - Leader Completeness: every committed entry appears in the final
///    leader's log (checked at final quiescence only — a stale partitioned
///    "leader" mid-run is legal and would false-positive).
///  - Acknowledged-write durability: every STRONG_ACCEPTed request id is
///    present in the committed prefix of the final leader AND in the logs
///    of a live quorum. Requires ClusterConfig::record_client_acks.
///  - Bounded weak loss: WEAK_ACCEPTed-but-uncommitted ids number at most
///    (terms_observed) * (N_clients + window) — each leadership change can
///    strand at most N_cli + w weakly accepted entries (paper Sec. IV).
///  - Durability-claim honesty (disk-backed runs): at every crash, the
///    victim's strong-ack frontier (the highest index it ever claimed
///    durably stored — via a strong accept, a counted self-vote or a
///    remembered vote grant) must sit inside its fsynced prefix. Checked
///    from the cluster crash observer, before the node's memory is wiped.
///  - Membership safety (elastic runs): election safety spans configuration
///    boundaries (the leader-per-term history never resets), committed
///    entries survive config changes (leader completeness + the acked-write
///    audit, with the quorum taken from the final voter roster rather than
///    the physical host count), and the final leader holds the vote under
///    its own active configuration — a leader outside its own voter set at
///    quiescence means a removed node's vote decided an election.
///  - Term accounting (always on): every term value above the initial one
///    is minted by exactly one StartElection bump, so the max current_term
///    of any live node can never exceed the sum of terms_started across
///    all nodes (stats survive crashes).
///
/// Plus two *opt-in* expectations for adversarial mitigation runs:
///
///  - Zero depositions (set_expect_zero_depositions): no live leader was
///    ever forced down by a higher term — what CheckQuorum + leader lease
///    + PreVote promise under the disruptive-server attack.
///  - Bounded term inflation (set_max_term_inflation): the gap between
///    the highest term any live node holds and the highest term that
///    actually elected a leader stays <= the bound — what PreVote
///    promises (an isolated node cannot mint terms it can't win).
///    Checked mid-run too, where the inflation is actually visible.
class SafetyOracle {
 public:
  /// Audits consensus group `group` of `cluster` (default: group 0, which
  /// in a single-group cluster is the whole system — the historical
  /// behavior). A multi-group chaos run builds one oracle per group; the
  /// safety invariants are all intra-group properties, while the faults
  /// that stress them hit shared physical hosts.
  explicit SafetyOracle(harness::Cluster* cluster, int group = 0);

  SafetyOracle(const SafetyOracle&) = delete;
  SafetyOracle& operator=(const SafetyOracle&) = delete;

  /// Installs the leader observers. Call once, before the cluster starts
  /// electing (observers fire from BecomeLeader).
  void Install();

  /// Cheap checks safe at any point of a run: log matching, committed
  /// prefix agreement, election-safety history. Appends to violations().
  void CheckMidRun();

  /// The full suite. Only valid at final quiescence: all faults healed,
  /// a leader present, in-flight traffic drained.
  void CheckFinal();

  const std::vector<std::string>& violations() const { return violations_; }
  bool ok() const { return violations_.empty(); }

  /// Distinct terms in which some node became leader.
  size_t terms_observed() const { return leaders_by_term_.size(); }

  /// After CheckFinal: weakly acked ids that did not survive (bounded).
  uint64_t lost_weak_count() const { return lost_weak_count_; }
  /// After CheckFinal: strong-acked ids audited.
  uint64_t strong_acked_count() const { return strong_acked_count_; }

  // ---- Opt-in adversarial-mitigation expectations ----

  /// Expect no healthy-leader deposition: sum of leader_depositions
  /// across all nodes must be 0 at CheckFinal.
  void set_expect_zero_depositions(bool expect) {
    expect_zero_depositions_ = expect;
  }
  /// Bound on (max live current_term) - (max term that elected a leader);
  /// < 0 disables (the default). Checked at every CheckMidRun/CheckFinal.
  void set_max_term_inflation(int64_t bound) { max_term_inflation_ = bound; }

  int group() const { return group_; }

 private:
  void AddViolation(std::string what);
  void CheckTermAccounting();
  /// "group g: " in multi-group clusters, "" in single-group ones (where
  /// violation strings must stay byte-identical to the historical output).
  std::string Tag() const;

  harness::Cluster* cluster_;
  int group_ = 0;
  bool installed_ = false;
  std::map<storage::Term, net::NodeId> leaders_by_term_;
  std::vector<std::string> violations_;
  uint64_t lost_weak_count_ = 0;
  uint64_t strong_acked_count_ = 0;
  bool expect_zero_depositions_ = false;
  int64_t max_term_inflation_ = -1;
};

}  // namespace nbraft::chaos

#endif  // NBRAFT_CHAOS_INVARIANTS_H_
