#include "chaos/nemesis.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "obs/names.h"

namespace nbraft::chaos {

namespace {

/// Tracer instant name for an action. Instant names must be string
/// literals (the tracer stores the pointer), hence this mapping onto the
/// canonical obs::names chaos vocabulary.
const char* InstantName(FaultKind kind, bool heal) {
  if (heal) {
    return (kind == FaultKind::kCrash || kind == FaultKind::kCrashLeader)
               ? obs::names::kChaosRestart
               : obs::names::kChaosHeal;
  }
  switch (kind) {
    case FaultKind::kCrash:
    case FaultKind::kCrashLeader:
      return obs::names::kChaosCrash;
    case FaultKind::kPartition:
    case FaultKind::kOneWayPartition:
    case FaultKind::kLinkFlap:
      return obs::names::kChaosPartition;
    case FaultKind::kDropStorm:
    case FaultKind::kDelayStorm:
      return obs::names::kChaosStorm;
    case FaultKind::kClockSkew:
      return obs::names::kChaosSkew;
    case FaultKind::kSlowNode:
      return obs::names::kChaosSlow;
    case FaultKind::kDiskStall:
    case FaultKind::kDiskCorruption:
      return obs::names::kChaosDisk;
    case FaultKind::kDisruptiveServer:
    case FaultKind::kVoteWithholder:
    case FaultKind::kElectionStorm:
      return obs::names::kChaosAdversary;
    case FaultKind::kMembershipChurn:
      return obs::names::kChaosFault;
  }
  return obs::names::kChaosFault;
}

}  // namespace

Nemesis::Nemesis(harness::Cluster* cluster, ChaosPlan plan)
    : cluster_(cluster), plan_(std::move(plan)), rng_(plan_.seed) {
  NBRAFT_CHECK_GE(plan_.max_gap, plan_.min_gap);
  NBRAFT_CHECK_GE(plan_.max_duration, plan_.min_duration);
  NBRAFT_CHECK_GT(plan_.min_gap, 0);
  NBRAFT_CHECK_GT(plan_.min_duration, 0);
}

void Nemesis::Start() {
  NBRAFT_CHECK(!running_);
  running_ = true;
  ScheduleNext();
}

void Nemesis::Stop() { running_ = false; }

SimDuration Nemesis::DrawGap() {
  return static_cast<SimDuration>(rng_.NextInRange(plan_.min_gap,
                                                   plan_.max_gap));
}

SimDuration Nemesis::DrawDuration() {
  return static_cast<SimDuration>(
      rng_.NextInRange(plan_.min_duration, plan_.max_duration));
}

int Nemesis::MaxConcurrentCrashes() const {
  if (plan_.max_concurrent_crashes >= 0) return plan_.max_concurrent_crashes;
  return (cluster_->num_nodes() - 1) / 2;  // Always keep a quorum alive.
}

void Nemesis::ScheduleNext() {
  cluster_->sim()->After(DrawGap(), [this]() {
    if (!running_) return;
    InjectOne();
    ScheduleNext();
  });
}

void Nemesis::InjectOne() {
  const auto& mix = plan_.EffectiveMix();
  const FaultKind kind =
      mix[static_cast<size_t>(rng_.NextBounded(mix.size()))];
  const SimDuration duration = DrawDuration();
  switch (kind) {
    case FaultKind::kCrash:
      InjectCrash(/*target_leader=*/false, duration);
      break;
    case FaultKind::kCrashLeader:
      InjectCrash(/*target_leader=*/true, duration);
      break;
    case FaultKind::kPartition:
      InjectPartition(/*one_way=*/false, duration);
      break;
    case FaultKind::kOneWayPartition:
      InjectPartition(/*one_way=*/true, duration);
      break;
    case FaultKind::kLinkFlap:
      InjectLinkFlap(duration);
      break;
    case FaultKind::kDropStorm:
      InjectDropStorm(duration);
      break;
    case FaultKind::kDelayStorm:
      InjectDelayStorm(duration);
      break;
    case FaultKind::kClockSkew:
      InjectClockSkew(duration);
      break;
    case FaultKind::kSlowNode:
      InjectSlowNode(duration);
      break;
    case FaultKind::kDiskStall:
      InjectDiskStall(duration);
      break;
    case FaultKind::kDiskCorruption:
      InjectDiskCorruption(duration);
      break;
    case FaultKind::kDisruptiveServer:
      InjectDisruptiveServer(duration);
      break;
    case FaultKind::kVoteWithholder:
      InjectVoteWithholder(duration);
      break;
    case FaultKind::kElectionStorm:
      InjectElectionStorm(duration);
      break;
    case FaultKind::kMembershipChurn:
      InjectMembershipChurn(duration);
      break;
  }
}

void Nemesis::Record(FaultKind kind, bool heal, net::NodeId a, net::NodeId b,
                     int64_t param) {
  FaultRecord record;
  record.kind = kind;
  record.heal = heal;
  record.at = cluster_->sim()->Now();
  record.a = a;
  record.b = b;
  record.param = param;
  records_.push_back(record);
  NBRAFT_LOG(Debug) << "nemesis: " << FaultRecordToString(record);
  if (obs::Tracer* tracer = cluster_->tracer()) {
    tracer->RecordInstant(InstantName(kind, heal), a, b, param);
  }
  if (obs::Journal* journal = cluster_->journal()) {
    journal->Record(heal ? obs::JournalEventKind::kNemesisHeal
                         : obs::JournalEventKind::kNemesisFault,
                    a, b, static_cast<int64_t>(kind), param);
  }
  if (obs::Registry* registry = cluster_->registry()) {
    if (heal) {
      registry->GetCounter(obs::names::kChaosHealsTotal)->Increment();
    } else {
      registry->GetCounter(std::string("chaos.") + FaultKindName(kind))
          ->Increment();
      registry->GetCounter(obs::names::kChaosFaultsInjected)->Increment();
    }
  }
}

net::NodeId Nemesis::PickUpNode() {
  std::vector<net::NodeId> up;
  for (int i = 0; i < cluster_->num_nodes(); ++i) {
    // Elastic clusters keep spare hosts unstarted; faulting them is a
    // no-op, so they are not in the draw (fixed rosters start everyone).
    if (cluster_->node(i)->started() && !cluster_->node(i)->crashed()) {
      up.push_back(i);
    }
  }
  if (up.empty()) return net::kInvalidNode;
  return up[static_cast<size_t>(rng_.NextBounded(up.size()))];
}

bool Nemesis::PickUpPair(net::NodeId* a, net::NodeId* b) {
  std::vector<net::NodeId> up;
  for (int i = 0; i < cluster_->num_nodes(); ++i) {
    if (cluster_->node(i)->started() && !cluster_->node(i)->crashed()) {
      up.push_back(i);
    }
  }
  if (up.size() < 2) return false;
  const size_t ia = static_cast<size_t>(rng_.NextBounded(up.size()));
  size_t ib = static_cast<size_t>(rng_.NextBounded(up.size() - 1));
  if (ib >= ia) ++ib;
  *a = up[ia];
  *b = up[ib];
  return true;
}

bool Nemesis::InjectCrash(bool target_leader, SimDuration duration) {
  if (crashed_count() >= MaxConcurrentCrashes()) return false;
  net::NodeId victim = net::kInvalidNode;
  if (target_leader) {
    if (raft::RaftNode* leader = cluster_->leader()) victim = leader->id();
  }
  if (victim == net::kInvalidNode) victim = PickUpNode();
  if (victim == net::kInvalidNode) return false;
  const FaultKind kind =
      target_leader ? FaultKind::kCrashLeader : FaultKind::kCrash;
  cluster_->CrashNode(victim);
  crashed_.insert(victim);
  Record(kind, /*heal=*/false, victim, net::kInvalidNode, duration);
  cluster_->sim()->After(duration, [this, kind, victim]() {
    if (crashed_.erase(victim) == 0) return;  // HealAll got there first.
    cluster_->RestartNode(victim);
    Record(kind, /*heal=*/true, victim, net::kInvalidNode, 0);
  });
  return true;
}

bool Nemesis::InjectPartition(bool one_way, SimDuration duration) {
  net::NodeId a, b;
  if (!PickUpPair(&a, &b)) return false;
  const FaultKind kind =
      one_way ? FaultKind::kOneWayPartition : FaultKind::kPartition;
  if (one_way) {
    cluster_->network()->SetOneWayCut(a, b, true);
  } else {
    cluster_->network()->SetLinkCut(a, b, true);
  }
  const uint64_t id = next_cut_id_++;
  active_cuts_.push_back({id, a, b, one_way});
  Record(kind, /*heal=*/false, a, b, duration);
  cluster_->sim()->After(duration, [this, kind, id]() {
    auto it = std::find_if(active_cuts_.begin(), active_cuts_.end(),
                           [id](const ActiveCut& c) { return c.id == id; });
    if (it == active_cuts_.end()) return;  // HealAll got there first.
    if (it->one_way) {
      cluster_->network()->SetOneWayCut(it->a, it->b, false);
    } else {
      cluster_->network()->SetLinkCut(it->a, it->b, false);
    }
    Record(kind, /*heal=*/true, it->a, it->b, 0);
    active_cuts_.erase(it);
  });
  return true;
}

bool Nemesis::InjectLinkFlap(SimDuration duration) {
  net::NodeId a, b;
  if (!PickUpPair(&a, &b)) return false;
  const int cycles = std::max(plan_.flap_cycles, 1);
  // The link toggles cut -> healed `cycles` times over `duration`, ending
  // healed. Intermediate toggles stop silently if the flap was healed.
  const SimDuration half = std::max<SimDuration>(duration / (2 * cycles), 1);
  cluster_->network()->SetLinkCut(a, b, true);
  const uint64_t id = next_cut_id_++;
  active_cuts_.push_back({id, a, b, /*one_way=*/false});
  Record(FaultKind::kLinkFlap, /*heal=*/false, a, b, cycles);
  for (int t = 1; t < 2 * cycles; ++t) {
    const bool cut = (t % 2) == 0;
    cluster_->sim()->After(half * t, [this, id, cut]() {
      auto it = std::find_if(active_cuts_.begin(), active_cuts_.end(),
                             [id](const ActiveCut& c) { return c.id == id; });
      if (it == active_cuts_.end()) return;
      cluster_->network()->SetLinkCut(it->a, it->b, cut);
    });
  }
  cluster_->sim()->After(half * (2 * cycles), [this, id]() {
    auto it = std::find_if(active_cuts_.begin(), active_cuts_.end(),
                           [id](const ActiveCut& c) { return c.id == id; });
    if (it == active_cuts_.end()) return;
    cluster_->network()->SetLinkCut(it->a, it->b, false);
    Record(FaultKind::kLinkFlap, /*heal=*/true, it->a, it->b, 0);
    active_cuts_.erase(it);
  });
  return true;
}

bool Nemesis::InjectDropStorm(SimDuration duration) {
  ++active_drop_storms_;
  cluster_->network()->set_drop_probability(plan_.drop_storm_probability);
  Record(FaultKind::kDropStorm, /*heal=*/false, net::kInvalidNode,
         net::kInvalidNode,
         static_cast<int64_t>(plan_.drop_storm_probability * 1000));
  cluster_->sim()->After(duration, [this]() {
    if (active_drop_storms_ == 0) return;  // HealAll got there first.
    if (--active_drop_storms_ == 0) {
      cluster_->network()->set_drop_probability(
          cluster_->config().network.drop_probability);
      Record(FaultKind::kDropStorm, /*heal=*/true, net::kInvalidNode,
             net::kInvalidNode, 0);
    }
  });
  return true;
}

bool Nemesis::InjectDelayStorm(SimDuration duration) {
  ++active_delay_storms_;
  cluster_->network()->set_extra_delay(plan_.delay_storm_extra);
  Record(FaultKind::kDelayStorm, /*heal=*/false, net::kInvalidNode,
         net::kInvalidNode, plan_.delay_storm_extra);
  cluster_->sim()->After(duration, [this]() {
    if (active_delay_storms_ == 0) return;
    if (--active_delay_storms_ == 0) {
      cluster_->network()->set_extra_delay(0);
      Record(FaultKind::kDelayStorm, /*heal=*/true, net::kInvalidNode,
             net::kInvalidNode, 0);
    }
  });
  return true;
}

bool Nemesis::InjectClockSkew(SimDuration duration) {
  const net::NodeId victim = PickUpNode();
  if (victim == net::kInvalidNode) return false;
  const double skew =
      plan_.skew_min + rng_.NextDouble() * (plan_.skew_max - plan_.skew_min);
  cluster_->SetTimerSkewAt(victim, skew);
  ++active_skew_[victim];
  Record(FaultKind::kClockSkew, /*heal=*/false, victim, net::kInvalidNode,
         static_cast<int64_t>(skew * 1000));
  cluster_->sim()->After(duration, [this, victim]() {
    auto it = active_skew_.find(victim);
    if (it == active_skew_.end()) return;
    if (--it->second == 0) {
      active_skew_.erase(it);
      cluster_->SetTimerSkewAt(victim, 1.0);
      Record(FaultKind::kClockSkew, /*heal=*/true, victim, net::kInvalidNode,
             0);
    }
  });
  return true;
}

bool Nemesis::InjectSlowNode(SimDuration duration) {
  const net::NodeId victim = PickUpNode();
  if (victim == net::kInvalidNode) return false;
  cluster_->SetCpuSpeedFactorAt(victim, plan_.slow_factor);
  ++active_slow_[victim];
  Record(FaultKind::kSlowNode, /*heal=*/false, victim, net::kInvalidNode,
         static_cast<int64_t>(plan_.slow_factor * 1000));
  cluster_->sim()->After(duration, [this, victim]() {
    auto it = active_slow_.find(victim);
    if (it == active_slow_.end()) return;
    if (--it->second == 0) {
      active_slow_.erase(it);
      cluster_->SetCpuSpeedFactorAt(victim, 1.0);
      Record(FaultKind::kSlowNode, /*heal=*/true, victim, net::kInvalidNode,
             0);
    }
  });
  return true;
}

bool Nemesis::InjectDiskStall(SimDuration duration) {
  const net::NodeId victim = PickUpNode();
  if (victim == net::kInvalidNode) return false;
  // Stalls every co-resident disk of the host (run may have none at all).
  if (!cluster_->SetDiskStallAt(victim, plan_.disk_stall_extra)) return false;
  ++active_disk_stall_[victim];
  Record(FaultKind::kDiskStall, /*heal=*/false, victim, net::kInvalidNode,
         plan_.disk_stall_extra);
  cluster_->sim()->After(duration, [this, victim]() {
    auto it = active_disk_stall_.find(victim);
    if (it == active_disk_stall_.end()) return;
    if (--it->second == 0) {
      active_disk_stall_.erase(it);
      cluster_->SetDiskStallAt(victim, 0);
      Record(FaultKind::kDiskStall, /*heal=*/true, victim, net::kInvalidNode,
             0);
    }
  });
  return true;
}

bool Nemesis::InjectDiskCorruption(SimDuration duration) {
  if (corruptions_injected_ >= plan_.max_disk_corruptions) return false;
  if (crashed_count() >= MaxConcurrentCrashes()) return false;
  const net::NodeId victim = PickUpNode();
  if (victim == net::kInvalidNode) return false;
  // Rots the newest eligible record on each co-resident disk; false when
  // the run has no disks or nothing is eligible yet.
  if (!cluster_->CorruptDiskTailAt(victim)) return false;
  ++corruptions_injected_;
  // Crash the victim so its next recovery detects the rot, repairs the
  // image and enters heal quarantine.
  cluster_->CrashNode(victim);
  crashed_.insert(victim);
  Record(FaultKind::kDiskCorruption, /*heal=*/false, victim,
         net::kInvalidNode, duration);
  cluster_->sim()->After(duration, [this, victim]() {
    if (crashed_.erase(victim) == 0) return;  // HealAll got there first.
    cluster_->RestartNode(victim);
    Record(FaultKind::kDiskCorruption, /*heal=*/true, victim,
           net::kInvalidNode, 0);
  });
  return true;
}

void Nemesis::SetIsolated(net::NodeId victim, bool isolated) {
  for (int j = 0; j < cluster_->num_nodes(); ++j) {
    if (j == victim) continue;
    cluster_->network()->SetLinkCut(victim, j, isolated);
  }
}

bool Nemesis::InjectDisruptiveServer(SimDuration duration) {
  // The classic rejoining-partitioned-node attack: isolate a NON-leader so
  // its election timer keeps firing while it cannot win. Without PreVote
  // its term inflates once per timeout; the rejoin then forces the healthy
  // leader down. With PreVote the canvasses fail and nothing inflates.
  raft::RaftNode* leader = cluster_->leader();
  if (leader == nullptr) return false;
  std::vector<net::NodeId> eligible;
  for (int i = 0; i < cluster_->num_nodes(); ++i) {
    if (i == leader->id() || !cluster_->node(i)->started() ||
        cluster_->node(i)->crashed()) {
      continue;
    }
    const auto already = [i](const ActiveIsolation& iso) {
      return iso.victim == i;
    };
    if (std::find_if(active_isolations_.begin(), active_isolations_.end(),
                     already) != active_isolations_.end()) {
      continue;
    }
    eligible.push_back(i);
  }
  if (eligible.empty()) return false;
  const net::NodeId victim =
      eligible[static_cast<size_t>(rng_.NextBounded(eligible.size()))];
  SetIsolated(victim, true);
  const uint64_t id = next_cut_id_++;
  active_isolations_.push_back({id, victim, FaultKind::kDisruptiveServer});
  Record(FaultKind::kDisruptiveServer, /*heal=*/false, victim,
         net::kInvalidNode, duration);
  cluster_->sim()->After(duration, [this, id]() {
    auto it = std::find_if(
        active_isolations_.begin(), active_isolations_.end(),
        [id](const ActiveIsolation& iso) { return iso.id == id; });
    if (it == active_isolations_.end()) return;  // HealAll got there first.
    SetIsolated(it->victim, false);
    Record(FaultKind::kDisruptiveServer, /*heal=*/true, it->victim,
           net::kInvalidNode, 0);
    active_isolations_.erase(it);
  });
  return true;
}

bool Nemesis::InjectVoteWithholder(SimDuration duration) {
  const net::NodeId victim = PickUpNode();
  if (victim == net::kInvalidNode) return false;
  cluster_->SetWithholdVotesAt(victim, true);
  ++active_withhold_[victim];
  Record(FaultKind::kVoteWithholder, /*heal=*/false, victim,
         net::kInvalidNode, duration);
  cluster_->sim()->After(duration, [this, victim]() {
    auto it = active_withhold_.find(victim);
    if (it == active_withhold_.end()) return;
    if (--it->second == 0) {
      active_withhold_.erase(it);
      cluster_->SetWithholdVotesAt(victim, false);
      Record(FaultKind::kVoteWithholder, /*heal=*/true, victim,
             net::kInvalidNode, 0);
    }
  });
  return true;
}

bool Nemesis::InjectElectionStorm(SimDuration duration) {
  // Repeated-partition schedule: every cycle isolates whoever is leader at
  // that moment for half a cycle, forcing the rest to elect, then rejoins
  // it. Ends healed. One inject/heal record pair (like kLinkFlap), so the
  // fault fingerprint stays schedule-shaped, not leader-identity-shaped.
  raft::RaftNode* leader = cluster_->leader();
  if (leader == nullptr) return false;
  const int cycles = std::max(plan_.storm_cycles, 1);
  const SimDuration half = std::max<SimDuration>(duration / (2 * cycles), 1);
  const net::NodeId first_victim = leader->id();
  SetIsolated(first_victim, true);
  const uint64_t id = next_cut_id_++;
  active_isolations_.push_back({id, first_victim, FaultKind::kElectionStorm});
  Record(FaultKind::kElectionStorm, /*heal=*/false, first_victim,
         net::kInvalidNode, cycles);
  for (int t = 1; t < 2 * cycles; ++t) {
    const bool cut = (t % 2) == 0;
    cluster_->sim()->After(half * t, [this, id, cut]() {
      auto it = std::find_if(
          active_isolations_.begin(), active_isolations_.end(),
          [id](const ActiveIsolation& iso) { return iso.id == id; });
      if (it == active_isolations_.end()) return;
      if (cut) {
        if (raft::RaftNode* l = cluster_->leader()) {
          it->victim = l->id();
          SetIsolated(it->victim, true);
        } else {
          it->victim = net::kInvalidNode;  // No leader to attack this cycle.
        }
      } else {
        if (it->victim != net::kInvalidNode) SetIsolated(it->victim, false);
        it->victim = net::kInvalidNode;
      }
    });
  }
  cluster_->sim()->After(half * (2 * cycles), [this, id]() {
    auto it = std::find_if(
        active_isolations_.begin(), active_isolations_.end(),
        [id](const ActiveIsolation& iso) { return iso.id == id; });
    if (it == active_isolations_.end()) return;
    if (it->victim != net::kInvalidNode) SetIsolated(it->victim, false);
    Record(FaultKind::kElectionStorm, /*heal=*/true, it->victim,
           net::kInvalidNode, 0);
    active_isolations_.erase(it);
  });
  return true;
}

bool Nemesis::InjectMembershipChurn(SimDuration duration) {
  // Shrink-then-regrow: drop a non-leader voter out of a random group's
  // configuration via joint consensus, then add the host back as a learner
  // when the fault heals — the leader's recovery STM drives catch-up and
  // re-promotion to voter.
  if (cluster_->config().initial_voters <= 0) return false;
  const int group = static_cast<int>(
      rng_.NextBounded(static_cast<size_t>(cluster_->num_groups())));
  raft::RaftNode* leader = cluster_->leader(group);
  if (leader == nullptr || !leader->membership()->active()) return false;
  if (leader->membership()->ChangeInFlight()) return false;
  const raft::Configuration& config = leader->membership()->config();
  // Never shrink below 3 voters: removing from a 2-voter roster leaves a
  // singleton quorum, and the point of this fault is churn, not collapse.
  if (config.voters.size() < 3) return false;
  std::vector<int> eligible;
  for (int i = 0; i < cluster_->num_nodes(); ++i) {
    raft::RaftNode* replica = cluster_->node(group, i);
    if (!replica->started() || replica->crashed()) continue;
    if (replica->id() == leader->id()) continue;
    if (!config.IsVoter(replica->id())) continue;
    const auto pending = [group, i](const ActiveChurn& c) {
      return c.group == group && c.host == i;
    };
    if (std::find_if(active_churn_.begin(), active_churn_.end(), pending) !=
        active_churn_.end()) {
      continue;
    }
    eligible.push_back(i);
  }
  if (eligible.empty()) return false;
  const int victim =
      eligible[static_cast<size_t>(rng_.NextBounded(eligible.size()))];
  if (!cluster_->RemoveNode(group, victim)) return false;
  const uint64_t id = next_cut_id_++;
  active_churn_.push_back({id, group, victim});
  Record(FaultKind::kMembershipChurn, /*heal=*/false, victim, group, duration);
  cluster_->sim()->After(duration,
                         [this, id]() { ReaddChurned(id, /*attempts_left=*/16); });
  return true;
}

void Nemesis::ReaddChurned(uint64_t id, int attempts_left) {
  auto it = std::find_if(active_churn_.begin(), active_churn_.end(),
                         [id](const ActiveChurn& c) { return c.id == id; });
  if (it == active_churn_.end()) return;  // HealAll got there first.
  if (cluster_->AddNode(it->group, it->host)) {
    Record(FaultKind::kMembershipChurn, /*heal=*/true, it->host, it->group, 0);
    active_churn_.erase(it);
    return;
  }
  if (attempts_left <= 1) {
    // Leaderless too long or changes kept colliding; the roster stays one
    // voter smaller, which is degraded but safe.
    Record(FaultKind::kMembershipChurn, /*heal=*/true, it->host, it->group,
           -1);
    active_churn_.erase(it);
    return;
  }
  cluster_->sim()->After(Millis(50), [this, id, attempts_left]() {
    ReaddChurned(id, attempts_left - 1);
  });
}

void Nemesis::HealAll() {
  for (net::NodeId victim : crashed_) {
    cluster_->RestartNode(victim);
    Record(FaultKind::kCrash, /*heal=*/true, victim, net::kInvalidNode, 0);
  }
  crashed_.clear();
  for (const ActiveCut& cut : active_cuts_) {
    if (cut.one_way) {
      cluster_->network()->SetOneWayCut(cut.a, cut.b, false);
    } else {
      cluster_->network()->SetLinkCut(cut.a, cut.b, false);
    }
    Record(cut.one_way ? FaultKind::kOneWayPartition : FaultKind::kPartition,
           /*heal=*/true, cut.a, cut.b, 0);
  }
  active_cuts_.clear();
  for (const ActiveIsolation& iso : active_isolations_) {
    if (iso.victim != net::kInvalidNode) SetIsolated(iso.victim, false);
    Record(iso.kind, /*heal=*/true, iso.victim, net::kInvalidNode, 0);
  }
  active_isolations_.clear();
  for (const auto& [victim, count] : active_withhold_) {
    cluster_->SetWithholdVotesAt(victim, false);
    Record(FaultKind::kVoteWithholder, /*heal=*/true, victim,
           net::kInvalidNode, 0);
  }
  active_withhold_.clear();
  if (active_drop_storms_ > 0) {
    active_drop_storms_ = 0;
    cluster_->network()->set_drop_probability(
        cluster_->config().network.drop_probability);
    Record(FaultKind::kDropStorm, /*heal=*/true, net::kInvalidNode,
           net::kInvalidNode, 0);
  }
  if (active_delay_storms_ > 0) {
    active_delay_storms_ = 0;
    cluster_->network()->set_extra_delay(0);
    Record(FaultKind::kDelayStorm, /*heal=*/true, net::kInvalidNode,
           net::kInvalidNode, 0);
  }
  for (const auto& [victim, count] : active_skew_) {
    cluster_->SetTimerSkewAt(victim, 1.0);
    Record(FaultKind::kClockSkew, /*heal=*/true, victim, net::kInvalidNode,
           0);
  }
  active_skew_.clear();
  for (const auto& [victim, count] : active_slow_) {
    cluster_->SetCpuSpeedFactorAt(victim, 1.0);
    Record(FaultKind::kSlowNode, /*heal=*/true, victim, net::kInvalidNode,
           0);
  }
  active_slow_.clear();
  for (const auto& [victim, count] : active_disk_stall_) {
    cluster_->SetDiskStallAt(victim, 0);
    Record(FaultKind::kDiskStall, /*heal=*/true, victim, net::kInvalidNode,
           0);
  }
  active_disk_stall_.clear();
  for (const ActiveChurn& churn : active_churn_) {
    // Best-effort re-add: the runner's post-heal AwaitLeader + drain give
    // the proposal room to land; failure leaves a smaller, still-safe
    // roster (param -1 marks the give-up, as in ReaddChurned).
    const bool ok = cluster_->AddNode(churn.group, churn.host);
    Record(FaultKind::kMembershipChurn, /*heal=*/true, churn.host,
           churn.group, ok ? 0 : -1);
  }
  active_churn_.clear();
}

}  // namespace nbraft::chaos
