#ifndef NBRAFT_CHAOS_NEMESIS_H_
#define NBRAFT_CHAOS_NEMESIS_H_

#include <set>
#include <unordered_map>
#include <vector>

#include "chaos/chaos_plan.h"
#include "common/random.h"
#include "harness/cluster.h"
#include "net/network.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "sim/simulator.h"

namespace nbraft::chaos {

/// The fault injector: runs on the cluster's simulator and executes a
/// ChaosPlan — crash/restart (incl. leader-targeted), symmetric and
/// one-way partitions, link flaps, drop/delay storms, election-timer skew
/// and CPU degradation — with every choice drawn from its own RNG seeded
/// by the plan. Each fault schedules its own heal; Stop() + HealAll()
/// restores the cluster to nominal regardless of what was active.
///
/// Every action is appended to `records()` (the fault schedule), emitted
/// as a `chaos_*` tracer instant when the cluster is traced, and counted
/// in the cluster registry (`chaos_<kind>` / `chaos_heals`).
class Nemesis {
 public:
  Nemesis(harness::Cluster* cluster, ChaosPlan plan);

  Nemesis(const Nemesis&) = delete;
  Nemesis& operator=(const Nemesis&) = delete;

  /// Schedules the first injection. Call after the cluster started.
  void Start();

  /// Stops injecting new faults (already-scheduled heals still run).
  void Stop();

  /// Reverts every outstanding fault immediately: restarts crashed nodes,
  /// removes cuts, clears storms, skew and CPU degradation.
  void HealAll();

  const std::vector<FaultRecord>& records() const { return records_; }
  uint64_t Fingerprint() const { return FingerprintFaults(records_); }

  /// Replicas crashed by this nemesis and not yet restarted.
  int crashed_count() const { return static_cast<int>(crashed_.size()); }

 private:
  void ScheduleNext();
  void InjectOne();
  void Record(FaultKind kind, bool heal, net::NodeId a, net::NodeId b,
              int64_t param);

  // Individual faults. Each returns false if not applicable right now
  // (e.g. crash cap reached), in which case the injection is skipped.
  bool InjectCrash(bool target_leader, SimDuration duration);
  bool InjectPartition(bool one_way, SimDuration duration);
  bool InjectLinkFlap(SimDuration duration);
  bool InjectDropStorm(SimDuration duration);
  bool InjectDelayStorm(SimDuration duration);
  bool InjectClockSkew(SimDuration duration);
  bool InjectSlowNode(SimDuration duration);
  bool InjectDiskStall(SimDuration duration);
  bool InjectDiskCorruption(SimDuration duration);
  // Protocol-level adversaries.
  bool InjectDisruptiveServer(SimDuration duration);
  bool InjectVoteWithholder(SimDuration duration);
  bool InjectElectionStorm(SimDuration duration);
  // Membership-level fault (elastic clusters only).
  bool InjectMembershipChurn(SimDuration duration);
  /// Heal half of kMembershipChurn: adds the removed host back as a
  /// learner, retrying while the group is leaderless or another change is
  /// in flight. Gives up (recording the heal with param -1) after
  /// `attempts_left` tries — the roster just stays one voter smaller.
  void ReaddChurned(uint64_t id, int attempts_left);

  /// Cuts (or restores) every link between `victim` and the other
  /// replicas — full isolation, the adversaries' shared primitive.
  void SetIsolated(net::NodeId victim, bool isolated);

  /// Random up replica (excludes nemesis-crashed nodes), or kInvalidNode.
  net::NodeId PickUpNode();
  /// Random unordered replica pair with both ends up.
  bool PickUpPair(net::NodeId* a, net::NodeId* b);
  SimDuration DrawGap();
  SimDuration DrawDuration();
  int MaxConcurrentCrashes() const;

  harness::Cluster* cluster_;
  ChaosPlan plan_;
  nbraft::Rng rng_;
  bool running_ = false;

  std::set<net::NodeId> crashed_;
  /// Reference counts for global effects that can overlap.
  int active_drop_storms_ = 0;
  int active_delay_storms_ = 0;
  /// Per-node outstanding skew / slow effects (heal restores 1.0 when the
  /// last one on that node expires).
  std::unordered_map<net::NodeId, int> active_skew_;
  std::unordered_map<net::NodeId, int> active_slow_;
  std::unordered_map<net::NodeId, int> active_disk_stall_;
  /// Corruptions injected so far (capped by plan.max_disk_corruptions).
  int corruptions_injected_ = 0;
  /// Outstanding cuts (and flaps) so heals and HealAll can revert them.
  struct ActiveCut {
    uint64_t id;
    net::NodeId a;
    net::NodeId b;
    bool one_way;
  };
  std::vector<ActiveCut> active_cuts_;
  uint64_t next_cut_id_ = 1;

  /// Outstanding full-node isolations (disruptive server / election
  /// storm). `victim` is kInvalidNode during a storm's healed half-cycle.
  struct ActiveIsolation {
    uint64_t id;
    net::NodeId victim;
    FaultKind kind;
  };
  std::vector<ActiveIsolation> active_isolations_;
  /// Per-node outstanding vote-withholder effects (refcounted like skew).
  std::unordered_map<net::NodeId, int> active_withhold_;

  /// Hosts churned out of a group's configuration and not yet re-added.
  struct ActiveChurn {
    uint64_t id;
    int group;
    int host;
  };
  std::vector<ActiveChurn> active_churn_;

  std::vector<FaultRecord> records_;
};

}  // namespace nbraft::chaos

#endif  // NBRAFT_CHAOS_NEMESIS_H_
