#ifndef NBRAFT_COMMON_BUFFER_H_
#define NBRAFT_COMMON_BUFFER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace nbraft {

/// Immutable ref-counted byte buffer. Copying a Buffer bumps a refcount;
/// the bytes themselves are shared and never mutated after construction.
///
/// This is what lets one 4 KB (or 128 KB) log-entry payload flow through
/// the client request, the leader's log, every per-peer AppendEntries RPC,
/// batches, retries and the state machine without a single memcpy: each
/// hop holds a reference to the same allocation. Construct from a
/// std::string (moved in) or string literal; read through view()/data().
/// An empty Buffer owns no allocation at all.
class Buffer {
 public:
  Buffer() = default;

  Buffer(std::string bytes)  // NOLINT: implicit, replaces std::string fields.
      : data_(bytes.empty()
                  ? nullptr
                  : std::make_shared<const std::string>(std::move(bytes))) {}

  Buffer(std::string_view bytes)  // NOLINT: implicit.
      : Buffer(std::string(bytes)) {}

  Buffer(const char* bytes)  // NOLINT: implicit, for literals.
      : Buffer(std::string(bytes)) {}

  size_t size() const { return data_ ? data_->size() : 0; }
  bool empty() const { return data_ == nullptr || data_->empty(); }
  const char* data() const { return data_ ? data_->data() : ""; }

  std::string_view view() const {
    return data_ ? std::string_view(*data_) : std::string_view();
  }
  operator std::string_view() const { return view(); }  // NOLINT: implicit.

  /// Materializes an owned std::string copy (cold paths: durable encode,
  /// snapshot assembly).
  std::string str() const { return std::string(view()); }

  /// Drops this reference. The bytes are freed when the last holder does.
  void clear() { data_.reset(); }

  /// True when this is the only reference (diagnostics).
  bool unique() const { return data_ == nullptr || data_.use_count() == 1; }

  // Strings and literals compare through the implicit Buffer conversion;
  // heterogeneous overloads would be ambiguous with it.
  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.data_ == b.data_ || a.view() == b.view();
  }
  friend bool operator!=(const Buffer& a, const Buffer& b) {
    return !(a == b);
  }

 private:
  std::shared_ptr<const std::string> data_;
};

}  // namespace nbraft

#endif  // NBRAFT_COMMON_BUFFER_H_
