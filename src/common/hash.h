#ifndef NBRAFT_COMMON_HASH_H_
#define NBRAFT_COMMON_HASH_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace nbraft {

/// SHA-256 message digest (FIPS 180-4). Used by the VGRaft baseline for
/// entry verification, and by tests as a content checksum. The computation
/// is real — its CPU cost is part of what the VGRaft experiments measure.
class Sha256 {
 public:
  using Digest = std::array<uint8_t, 32>;

  Sha256();

  /// Absorbs `len` bytes.
  void Update(const void* data, size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  /// Finalizes and returns the digest. The object must not be reused
  /// afterwards without calling Reset().
  Digest Finish();

  /// Resets to the initial state.
  void Reset();

  /// One-shot convenience.
  static Digest Hash(std::string_view data);

  /// Lowercase hex rendering of a digest.
  static std::string ToHex(const Digest& digest);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

/// CRC32C (Castagnoli) over `data`, software table implementation. Used as
/// the log-entry checksum.
uint32_t Crc32c(std::string_view data);
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len);

/// FNV-1a 64-bit hash; cheap non-cryptographic hash for sharding keys.
uint64_t Fnv1a64(std::string_view data);

}  // namespace nbraft

#endif  // NBRAFT_COMMON_HASH_H_
