#include "common/logging.h"

#include <atomic>
#include <cstring>

namespace nbraft {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

const char* Basename(const char* file) {
  const char* slash = std::strrchr(file, '/');
  return slash != nullptr ? slash + 1 : file;
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  if (level_ == LogLevel::kFatal) {
    std::cerr.flush();
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace nbraft
