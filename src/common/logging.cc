#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <utility>

#include "common/sim_time.h"

namespace nbraft {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

const char* Basename(const char* file) {
  const char* slash = std::strrchr(file, '/');
  return slash != nullptr ? slash + 1 : file;
}

std::atomic<int> g_level{static_cast<int>(
    ParseLogLevel(std::getenv("NBRAFT_LOG_LEVEL"), LogLevel::kWarn))};

// Each simulator is single-threaded, but the sweep scheduler runs many
// simulators on concurrent worker threads — the clock hook is therefore
// thread-local, so every worker's log stamps follow its *own* substrate's
// virtual time and installing/clearing a clock on one thread can never
// race with (or leak into) another thread's simulation.
thread_local LogClock g_clock;

int64_t WallNanosSinceFirstMessage() {
  static const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel ParseLogLevel(const char* text, LogLevel fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  if (text[0] >= '0' && text[0] <= '5' && text[1] == '\0') {
    return static_cast<LogLevel>(text[0] - '0');
  }
  std::string lower;
  for (const char* p = text; *p != '\0'; ++p) {
    lower.push_back(static_cast<char>(
        *p >= 'A' && *p <= 'Z' ? *p - 'A' + 'a' : *p));
  }
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "fatal") return LogLevel::kFatal;
  return fallback;
}

void SetLogClock(LogClock clock) { g_clock = std::move(clock); }

void ClearLogClock() { g_clock = nullptr; }

bool HasLogClock() { return static_cast<bool>(g_clock); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const int64_t stamp =
      g_clock ? g_clock() : WallNanosSinceFirstMessage();
  stream_ << "[" << LevelName(level) << " " << FormatDuration(stamp) << " "
          << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  if (level_ == LogLevel::kFatal) {
    std::cerr.flush();
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace nbraft
