#ifndef NBRAFT_COMMON_LOGGING_H_
#define NBRAFT_COMMON_LOGGING_H_

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <sstream>
#include <string_view>

namespace nbraft {

/// Severity levels for the library logger. `kFatal` aborts the process after
/// emitting the message (used by NBRAFT_CHECK, the no-exceptions analogue of
/// an assertion that is always on).
enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kFatal = 5,
};

/// Process-wide minimum level; messages below it are discarded.
/// Defaults to kWarn so tests and benches stay quiet; the NBRAFT_LOG_LEVEL
/// environment variable (name like "debug"/"INFO" or integer 0-5) overrides
/// the default at startup.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"fatal" (any case) or an
/// integer 0-5. Returns `fallback` on anything else (including nullptr).
LogLevel ParseLogLevel(const char* text, LogLevel fallback);

/// Clock used to timestamp log messages, returning nanoseconds. The harness
/// installs the simulator's virtual clock so log output lines up with trace
/// timestamps; without one, messages are stamped with wall time since the
/// first message. The hook is THREAD-LOCAL: each sweep worker thread's
/// substrate installs its own clock, so concurrent simulations never share
/// (or fight over) a timestamp source.
using LogClock = std::function<int64_t()>;
void SetLogClock(LogClock clock);
void ClearLogClock();
bool HasLogClock();

namespace internal_logging {

/// Stream-style log sink. Collects the message and emits it on destruction;
/// aborts for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace nbraft

/// Stream-style logging: `NBRAFT_LOG(Info) << "elected, term=" << term;`
/// Messages below the process-wide level are discarded without evaluating
/// the streamed expressions.
#define NBRAFT_LOG(level)                                            \
  if (static_cast<int>(::nbraft::LogLevel::k##level) <               \
      static_cast<int>(::nbraft::GetLogLevel())) {                   \
  } else /* NOLINT */                                                \
    ::nbraft::internal_logging::LogMessage(                          \
        ::nbraft::LogLevel::k##level, __FILE__, __LINE__)

/// Always-on invariant check; aborts with a message on failure. This is the
/// library's replacement for exceptions on programming errors.
#define NBRAFT_CHECK(cond)                                           \
  while (!(cond))                                                    \
  ::nbraft::internal_logging::LogMessage(::nbraft::LogLevel::kFatal, \
                                         __FILE__, __LINE__)         \
      << "Check failed: " #cond " "

#define NBRAFT_CHECK_EQ(a, b) NBRAFT_CHECK((a) == (b))
#define NBRAFT_CHECK_NE(a, b) NBRAFT_CHECK((a) != (b))
#define NBRAFT_CHECK_LT(a, b) NBRAFT_CHECK((a) < (b))
#define NBRAFT_CHECK_LE(a, b) NBRAFT_CHECK((a) <= (b))
#define NBRAFT_CHECK_GT(a, b) NBRAFT_CHECK((a) > (b))
#define NBRAFT_CHECK_GE(a, b) NBRAFT_CHECK((a) >= (b))

#endif  // NBRAFT_COMMON_LOGGING_H_
