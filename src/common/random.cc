#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace nbraft {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  NBRAFT_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  NBRAFT_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // Full range.
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  NBRAFT_CHECK_GT(mean, 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::NextGaussian(double mean, double stddev) {
  if (has_gaussian_) {
    has_gaussian_ = false;
    return mean + stddev * spare_gaussian_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_gaussian_ = r * std::sin(theta);
  has_gaussian_ = true;
  return mean + stddev * r * std::cos(theta);
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfDistribution::ZipfDistribution(uint64_t n, double s) : n_(n) {
  NBRAFT_CHECK_GT(n, 0u);
  NBRAFT_CHECK_GE(s, 0.0);
  cdf_.reserve(n);
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), s);
    cdf_.push_back(sum);
  }
  for (double& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // Guard against rounding.
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace nbraft
