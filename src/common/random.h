#ifndef NBRAFT_COMMON_RANDOM_H_
#define NBRAFT_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace nbraft {

/// Deterministic pseudo-random generator (xoshiro256** seeded via
/// SplitMix64). Every source of randomness in the simulator flows from one
/// seeded Rng so that whole-cluster experiments replay bit-identically.
///
/// Not thread-safe; the simulator is single-threaded by design.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform over the full 64-bit range.
  uint64_t Next();

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool NextBool(double p);

  /// Exponentially distributed with the given mean (> 0).
  double NextExponential(double mean);

  /// Normally distributed (Box–Muller).
  double NextGaussian(double mean, double stddev);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives an independent child generator; used to give each node or
  /// client its own stream while keeping the run reproducible from one seed.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// Zipf-distributed ranks in [0, n) with exponent `s` >= 0 (s = 0 is
/// uniform). Used for skewed device/series popularity in IoT workloads.
/// Init is O(n); sampling is O(log n) via binary search over the CDF.
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double s);

  /// Draws a rank; rank 0 is the most popular.
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i).
};

}  // namespace nbraft

#endif  // NBRAFT_COMMON_RANDOM_H_
