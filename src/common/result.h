#ifndef NBRAFT_COMMON_RESULT_H_
#define NBRAFT_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace nbraft {

/// A value-or-error holder, in the spirit of `arrow::Result` /
/// `absl::StatusOr`. Accessing the value of an errored result aborts the
/// process (the library does not use exceptions).
///
///     Result<int64_t> r = log.TermAt(index);
///     if (!r.ok()) return r.status();
///     Use(r.value());
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure). Constructing a
  /// Result from an OK status is a programming error and aborts.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    NBRAFT_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    NBRAFT_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    NBRAFT_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    NBRAFT_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace nbraft

#endif  // NBRAFT_COMMON_RESULT_H_
