#include "common/sim_time.h"

#include <cstdio>

namespace nbraft {

std::string FormatDuration(SimDuration d) {
  char buf[64];
  const bool negative = d < 0;
  const int64_t abs = negative ? -d : d;
  const char* sign = negative ? "-" : "";
  if (abs >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%s%.3fs", sign,
                  static_cast<double>(abs) / kSecond);
  } else if (abs >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%s%.3fms", sign,
                  static_cast<double>(abs) / kMillisecond);
  } else if (abs >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%s%.3fus", sign,
                  static_cast<double>(abs) / kMicrosecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%lldns", sign,
                  static_cast<long long>(abs));
  }
  return buf;
}

}  // namespace nbraft
