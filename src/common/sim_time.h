#ifndef NBRAFT_COMMON_SIM_TIME_H_
#define NBRAFT_COMMON_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace nbraft {

/// Virtual time used throughout the simulator, in nanoseconds since the
/// start of the run. Signed so durations and differences are natural.
using SimTime = int64_t;

/// Duration in nanoseconds.
using SimDuration = int64_t;

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr SimDuration Nanos(int64_t n) { return n * kNanosecond; }
constexpr SimDuration Micros(int64_t n) { return n * kMicrosecond; }
constexpr SimDuration Millis(int64_t n) { return n * kMillisecond; }
constexpr SimDuration Seconds(int64_t n) { return n * kSecond; }

/// Converts a duration to floating-point seconds (for reporting).
constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Converts a duration to floating-point milliseconds (for reporting).
constexpr double ToMillis(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Renders a duration as a short human-readable string, e.g. "1.25ms".
std::string FormatDuration(SimDuration d);

}  // namespace nbraft

#endif  // NBRAFT_COMMON_SIM_TIME_H_
