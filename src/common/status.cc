#include "common/status.h"

namespace nbraft {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotLeader:
      return "NotLeader";
    case StatusCode::kLeaderChanged:
      return "LeaderChanged";
    case StatusCode::kLogMismatch:
      return "LogMismatch";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace nbraft
