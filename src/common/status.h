#ifndef NBRAFT_COMMON_STATUS_H_
#define NBRAFT_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace nbraft {

/// Error categories used across the library. The library does not use C++
/// exceptions; every fallible operation returns a `Status` or a `Result<T>`.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kCorruption,
  kIoError,
  kNotLeader,      ///< Request must be retried on the current leader.
  kLeaderChanged,  ///< Leadership moved while a request was in flight.
  kLogMismatch,    ///< Follower log does not contain the expected prefix.
  kTimeout,
  kUnavailable,
  kAborted,
  kInternal,
};

/// Returns a stable human-readable name for `code` ("Ok", "NotLeader", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value.
///
/// The OK status carries no allocation; error statuses carry a code and an
/// optional message. Typical use:
///
///     Status s = log.Truncate(index);
///     if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotLeader(std::string msg) {
    return Status(StatusCode::kNotLeader, std::move(msg));
  }
  static Status LeaderChanged(std::string msg) {
    return Status(StatusCode::kLeaderChanged, std::move(msg));
  }
  static Status LogMismatch(std::string msg) {
    return Status(StatusCode::kLogMismatch, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsNotLeader() const { return code_ == StatusCode::kNotLeader; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsLogMismatch() const { return code_ == StatusCode::kLogMismatch; }

  /// "Ok" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace nbraft

#endif  // NBRAFT_COMMON_STATUS_H_
