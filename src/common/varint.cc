// All codecs are defined inline in varint.h (hot-path decode); this TU
// exists so the header always has a home in the library target.
#include "common/varint.h"
