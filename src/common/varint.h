#ifndef NBRAFT_COMMON_VARINT_H_
#define NBRAFT_COMMON_VARINT_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace nbraft {

/// LEB128-style variable-length integer codecs, used by the time-series
/// encoders and the log-entry wire format. Defined inline: the ingest hot
/// path decodes three of these per measurement, millions per run.

/// ZigZag transforms (exposed for the delta encoders).
constexpr uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
constexpr int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Appends an unsigned varint to `out`.
inline void PutVarint64(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

/// ZigZag-encodes a signed value then writes it as an unsigned varint.
inline void PutVarintSigned64(std::string* out, int64_t value) {
  PutVarint64(out, ZigZagEncode(value));
}

/// Appends a fixed-width little-endian 32/64-bit value.
inline void PutFixed32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>(value >> (i * 8)));
  }
}
inline void PutFixed64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>(value >> (i * 8)));
  }
}

/// Reads an unsigned varint from the front of `*in`, advancing it.
/// Returns false on truncated/overlong input.
inline bool GetVarint64(std::string_view* in, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (in->empty()) return false;
    const uint8_t byte = static_cast<uint8_t>(in->front());
    in->remove_prefix(1);
    if (shift == 63 && (byte & 0x7f) > 1) return false;  // Overflow.
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
  }
  return false;
}

/// Reads a ZigZag-encoded signed varint.
inline bool GetVarintSigned64(std::string_view* in, int64_t* value) {
  uint64_t raw = 0;
  if (!GetVarint64(in, &raw)) return false;
  *value = ZigZagDecode(raw);
  return true;
}

/// Reads fixed-width little-endian values.
inline bool GetFixed32(std::string_view* in, uint32_t* value) {
  if (in->size() < 4) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>((*in)[i])) << (i * 8);
  }
  in->remove_prefix(4);
  *value = v;
  return true;
}
inline bool GetFixed64(std::string_view* in, uint64_t* value) {
  if (in->size() < 8) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>((*in)[i])) << (i * 8);
  }
  in->remove_prefix(8);
  *value = v;
  return true;
}

}  // namespace nbraft

#endif  // NBRAFT_COMMON_VARINT_H_
