#ifndef NBRAFT_COMMON_VARINT_H_
#define NBRAFT_COMMON_VARINT_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace nbraft {

/// LEB128-style variable-length integer codecs, used by the time-series
/// encoders and the log-entry wire format.

/// Appends an unsigned varint to `out`.
void PutVarint64(std::string* out, uint64_t value);

/// ZigZag-encodes a signed value then writes it as an unsigned varint.
void PutVarintSigned64(std::string* out, int64_t value);

/// Appends a fixed-width little-endian 32/64-bit value.
void PutFixed32(std::string* out, uint32_t value);
void PutFixed64(std::string* out, uint64_t value);

/// Reads an unsigned varint from the front of `*in`, advancing it.
/// Returns false on truncated/overlong input.
bool GetVarint64(std::string_view* in, uint64_t* value);

/// Reads a ZigZag-encoded signed varint.
bool GetVarintSigned64(std::string_view* in, int64_t* value);

/// Reads fixed-width little-endian values.
bool GetFixed32(std::string_view* in, uint32_t* value);
bool GetFixed64(std::string_view* in, uint64_t* value);

/// ZigZag transforms (exposed for the delta encoders).
constexpr uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
constexpr int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace nbraft

#endif  // NBRAFT_COMMON_VARINT_H_
