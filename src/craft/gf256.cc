#include "craft/gf256.h"

#include "common/logging.h"

namespace nbraft::craft {

struct Gf256::Tables {
  uint8_t exp[512];  // Doubled so Mul needs no modulo.
  uint8_t log[256];

  Tables() {
    uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<uint8_t>(x);
      log[x] = static_cast<uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
    log[0] = 0;  // Undefined; guarded by callers.
  }
};

const Gf256::Tables& Gf256::GetTables() {
  static const Tables* tables = new Tables();
  return *tables;
}

uint8_t Gf256::Mul(uint8_t a, uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = GetTables();
  return t.exp[t.log[a] + t.log[b]];
}

uint8_t Gf256::Div(uint8_t a, uint8_t b) {
  NBRAFT_CHECK_NE(b, 0);
  if (a == 0) return 0;
  const Tables& t = GetTables();
  return t.exp[t.log[a] + 255 - t.log[b]];
}

uint8_t Gf256::Inv(uint8_t a) {
  NBRAFT_CHECK_NE(a, 0);
  const Tables& t = GetTables();
  return t.exp[255 - t.log[a]];
}

uint8_t Gf256::Exp(uint8_t a, int power) {
  NBRAFT_CHECK_GE(power, 0);
  if (power == 0) return 1;
  if (a == 0) return 0;
  const Tables& t = GetTables();
  const int l = (t.log[a] * power) % 255;
  return t.exp[l];
}

}  // namespace nbraft::craft
