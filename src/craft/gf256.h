#ifndef NBRAFT_CRAFT_GF256_H_
#define NBRAFT_CRAFT_GF256_H_

#include <cstdint>

namespace nbraft::craft {

/// Arithmetic over GF(2^8) with the AES/RS-standard reduction polynomial
/// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), via exp/log tables. This is the field
/// under the Reed–Solomon coder CRaft fragments entries with.
class Gf256 {
 public:
  static uint8_t Add(uint8_t a, uint8_t b) { return a ^ b; }
  static uint8_t Sub(uint8_t a, uint8_t b) { return a ^ b; }
  static uint8_t Mul(uint8_t a, uint8_t b);
  /// Division; b must be non-zero (aborts otherwise).
  static uint8_t Div(uint8_t a, uint8_t b);
  /// Multiplicative inverse; a must be non-zero.
  static uint8_t Inv(uint8_t a);
  /// a^power (power >= 0).
  static uint8_t Exp(uint8_t a, int power);

 private:
  struct Tables;
  static const Tables& GetTables();
};

}  // namespace nbraft::craft

#endif  // NBRAFT_CRAFT_GF256_H_
