#include "craft/reed_solomon.h"

#include <cstring>

#include "common/logging.h"
#include "craft/gf256.h"

namespace nbraft::craft {

ReedSolomon::ReedSolomon(int k, int m) : k_(k), m_(m) {
  NBRAFT_CHECK_GE(k, 1);
  NBRAFT_CHECK_GE(m, 0);
  NBRAFT_CHECK_LE(k + m, 255);
  const int n = k + m;
  // Build an n x k Vandermonde matrix, then normalize the top k x k block
  // to the identity so the code is systematic.
  Matrix vm = Vandermonde(n, k);
  Matrix top(vm.begin(), vm.begin() + k);
  auto top_inv = Invert(top);
  NBRAFT_CHECK(top_inv.ok()) << "Vandermonde top block must be invertible";
  encode_matrix_ = Multiply(vm, top_inv.value());
}

ReedSolomon::Matrix ReedSolomon::Vandermonde(int rows, int cols) {
  Matrix m(rows, Row(cols));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      m[r][c] = Gf256::Exp(static_cast<uint8_t>(r + 1), c);
    }
  }
  return m;
}

Result<ReedSolomon::Matrix> ReedSolomon::Invert(Matrix m) {
  const int n = static_cast<int>(m.size());
  Matrix inv(n, Row(n, 0));
  for (int i = 0; i < n; ++i) inv[i][i] = 1;

  for (int col = 0; col < n; ++col) {
    // Find a pivot.
    int pivot = -1;
    for (int r = col; r < n; ++r) {
      if (m[r][col] != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) return Status::InvalidArgument("singular matrix");
    std::swap(m[col], m[pivot]);
    std::swap(inv[col], inv[pivot]);

    // Scale the pivot row to 1.
    const uint8_t scale = Gf256::Inv(m[col][col]);
    for (int c = 0; c < n; ++c) {
      m[col][c] = Gf256::Mul(m[col][c], scale);
      inv[col][c] = Gf256::Mul(inv[col][c], scale);
    }
    // Eliminate the column elsewhere.
    for (int r = 0; r < n; ++r) {
      if (r == col || m[r][col] == 0) continue;
      const uint8_t factor = m[r][col];
      for (int c = 0; c < n; ++c) {
        m[r][c] ^= Gf256::Mul(factor, m[col][c]);
        inv[r][c] ^= Gf256::Mul(factor, inv[col][c]);
      }
    }
  }
  return inv;
}

ReedSolomon::Matrix ReedSolomon::Multiply(const Matrix& a, const Matrix& b) {
  const int rows = static_cast<int>(a.size());
  const int inner = static_cast<int>(b.size());
  const int cols = static_cast<int>(b[0].size());
  Matrix out(rows, Row(cols, 0));
  for (int r = 0; r < rows; ++r) {
    for (int i = 0; i < inner; ++i) {
      const uint8_t av = a[r][i];
      if (av == 0) continue;
      for (int c = 0; c < cols; ++c) {
        out[r][c] ^= Gf256::Mul(av, b[i][c]);
      }
    }
  }
  return out;
}

std::vector<std::string> ReedSolomon::Encode(std::string_view data) const {
  const size_t shard_size = ShardSize(data.size());
  const int n = total_shards();
  std::vector<std::string> shards(n);

  // Data shards: plain slices, zero-padded.
  for (int i = 0; i < k_; ++i) {
    const size_t offset = static_cast<size_t>(i) * shard_size;
    std::string shard(shard_size, '\0');
    if (offset < data.size()) {
      const size_t take = std::min(shard_size, data.size() - offset);
      std::memcpy(shard.data(), data.data() + offset, take);
    }
    shards[i] = std::move(shard);
  }
  // Parity shards.
  for (int p = k_; p < n; ++p) {
    std::string shard(shard_size, '\0');
    for (int i = 0; i < k_; ++i) {
      const uint8_t coeff = encode_matrix_[p][i];
      if (coeff == 0) continue;
      const std::string& src = shards[i];
      for (size_t b = 0; b < shard_size; ++b) {
        shard[b] = static_cast<char>(
            static_cast<uint8_t>(shard[b]) ^
            Gf256::Mul(coeff, static_cast<uint8_t>(src[b])));
      }
    }
    shards[p] = std::move(shard);
  }
  return shards;
}

Result<std::string> ReedSolomon::Decode(
    const std::vector<std::optional<std::string>>& shards,
    size_t original_len) const {
  if (static_cast<int>(shards.size()) != total_shards()) {
    return Status::InvalidArgument("wrong shard vector size");
  }
  const size_t shard_size = ShardSize(original_len);

  // Collect the first k present shards and their encode-matrix rows.
  std::vector<int> rows;
  for (int i = 0; i < total_shards() && static_cast<int>(rows.size()) < k_;
       ++i) {
    if (!shards[i].has_value()) continue;
    if (shards[i]->size() != shard_size) {
      return Status::InvalidArgument("shard size mismatch");
    }
    rows.push_back(i);
  }
  if (static_cast<int>(rows.size()) < k_) {
    return Status::InvalidArgument("not enough shards to decode");
  }

  Matrix sub(k_, Row(k_));
  for (int r = 0; r < k_; ++r) sub[r] = encode_matrix_[rows[r]];
  auto inv = Invert(std::move(sub));
  if (!inv.ok()) return inv.status();

  // data_slice[j] = sum_r inv[j][r] * shard[rows[r]].
  std::string out(static_cast<size_t>(k_) * shard_size, '\0');
  for (int j = 0; j < k_; ++j) {
    char* dst = out.data() + static_cast<size_t>(j) * shard_size;
    for (int r = 0; r < k_; ++r) {
      const uint8_t coeff = inv.value()[j][r];
      if (coeff == 0) continue;
      const std::string& src = *shards[rows[r]];
      for (size_t b = 0; b < shard_size; ++b) {
        dst[b] = static_cast<char>(
            static_cast<uint8_t>(dst[b]) ^
            Gf256::Mul(coeff, static_cast<uint8_t>(src[b])));
      }
    }
  }
  out.resize(original_len);
  return out;
}

}  // namespace nbraft::craft
