#ifndef NBRAFT_CRAFT_REED_SOLOMON_H_
#define NBRAFT_CRAFT_REED_SOLOMON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace nbraft::craft {

/// Systematic Reed–Solomon erasure coder over GF(2^8), in the style of the
/// coders CRaft builds on: `k` data shards and `m` parity shards such that
/// *any* k of the n = k + m shards reconstruct the original data.
///
/// The encoding matrix is a Vandermonde matrix row-reduced so its top k×k
/// block is the identity (shards 0..k-1 are plain data slices).
class ReedSolomon {
 public:
  /// Requires 1 <= k, 0 <= m, k + m <= 255.
  ReedSolomon(int k, int m);

  int data_shards() const { return k_; }
  int parity_shards() const { return m_; }
  int total_shards() const { return k_ + m_; }

  /// Splits `data` into k equal slices (zero-padded) and produces n shards,
  /// each of size ceil(len/k). Shard i (< k) is the i-th data slice.
  std::vector<std::string> Encode(std::string_view data) const;

  /// Reconstructs the original `original_len` bytes from any >= k shards.
  /// `shards[i]` empty/nullopt means shard i is missing. Fails with
  /// InvalidArgument if fewer than k shards are present or sizes disagree.
  Result<std::string> Decode(
      const std::vector<std::optional<std::string>>& shards,
      size_t original_len) const;

  /// Size of each shard for a payload of `len` bytes.
  size_t ShardSize(size_t len) const { return (len + k_ - 1) / k_; }

 private:
  using Row = std::vector<uint8_t>;
  using Matrix = std::vector<Row>;

  static Matrix Vandermonde(int rows, int cols);
  /// Inverts a square matrix in GF(256); fails if singular.
  static Result<Matrix> Invert(Matrix m);
  static Matrix Multiply(const Matrix& a, const Matrix& b);

  int k_;
  int m_;
  Matrix encode_matrix_;  // n x k, top k x k block = identity.
};

}  // namespace nbraft::craft

#endif  // NBRAFT_CRAFT_REED_SOLOMON_H_
