#include "harness/cluster.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <utility>

#include "common/logging.h"
#include "obs/names.h"

namespace nbraft::harness {

namespace {

std::unique_ptr<tsdb::StateMachine> MakeStateMachine(SystemProfile profile) {
  if (profile == SystemProfile::kRatis) {
    return std::make_unique<tsdb::FileStoreStateMachine>();
  }
  tsdb::TsdbStateMachine::Options options;
  return std::make_unique<tsdb::TsdbStateMachine>(options);
}

}  // namespace

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  NBRAFT_CHECK_GE(config_.num_nodes, 1);
  NBRAFT_CHECK_GE(config_.num_clients, 0);
  if (!config_.trace_path.empty() || !config_.trace_jsonl_path.empty()) {
    config_.trace = true;
  }
  sim_ = std::make_unique<sim::Simulator>(config_.seed);
  network_ = std::make_unique<net::SimNetwork>(sim_.get(), config_.network);

  std::vector<net::NodeId> server_ids;
  for (int i = 0; i < config_.num_nodes; ++i) server_ids.push_back(i);
  if (config_.geo_distributed) {
    NBRAFT_CHECK_LE(config_.num_nodes, 5)
        << "geo topology models 5 regions (Fig. 20)";
    net::ApplyGeoTopology(network_.get(), server_ids);
  }

  raft::RaftOptions options =
      raft::OptionsForProtocol(config_.protocol, config_.window_size);
  options.dispatchers_per_follower = config_.dispatchers < 0
                                         ? std::max(config_.num_clients, 1)
                                         : config_.dispatchers;
  options.max_batch_entries = config_.max_batch_entries;
  options.pre_vote = config_.pre_vote;
  options.check_quorum = config_.check_quorum;
  options.leader_lease = config_.leader_lease;
  options.cpu_lanes = config_.cpu_lanes;
  options.election_timeout = config_.election_timeout;
  options.release_applied_payloads = config_.release_payloads;
  options.snapshot_threshold = config_.snapshot_threshold;
  options.snapshot_keep_tail = config_.snapshot_keep_tail;
  options.wal_dir = config_.wal_dir;
  options.disk = config_.disk;
  options.backend_factory = config_.backend_factory;
  if (config_.profile == SystemProfile::kRatis) {
    // Ratis holds a heavier lock during indexing (paper Sec. II-F), moving
    // queue time into t_idx.
    options.costs.index_cost = Micros(12);
  }

  for (int i = 0; i < config_.num_nodes; ++i) {
    std::vector<net::NodeId> peers;
    for (int j = 0; j < config_.num_nodes; ++j) {
      if (j != i) peers.push_back(j);
    }
    auto node = std::make_unique<raft::RaftNode>(
        sim_.get(), network_.get(), i, std::move(peers), options,
        MakeStateMachine(config_.profile));
    if (config_.cpu_speed != 1.0) {
      node->cpu()->set_speed_factor(config_.cpu_speed);
    }
    nodes_.push_back(std::move(node));
  }

  raft::RaftClient::Options client_options;
  client_options.think_time = config_.client_think;
  client_options.payload_size = config_.payload_size;
  client_options.pipeline_window =
      options.window_size > 0 ? options.window_size : 0;
  client_options.backoff_base = config_.client_backoff_base;
  client_options.backoff_cap = config_.client_backoff_cap;
  client_options.backoff_multiplier = config_.client_backoff_multiplier;
  client_options.record_ack_ids = config_.record_client_acks;
  client_options.max_requests = config_.client_max_requests;

  for (int i = 0; i < config_.num_clients; ++i) {
    IngestWorkload::Options wopts = config_.workload;
    workloads_.push_back(std::make_unique<IngestWorkload>(
        wopts, config_.seed * 1315423911ULL + static_cast<uint64_t>(i)));
    IngestWorkload* workload = workloads_.back().get();
    clients_.push_back(std::make_unique<raft::RaftClient>(
        sim_.get(), network_.get(), net::kClientIdBase + i, server_ids,
        client_options,
        [workload](size_t target) { return workload->MakePayload(target); }));
  }

  SetupObservability();
}

Cluster::~Cluster() {
  if (owns_log_clock_) ClearLogClock();
}

void Cluster::SetupObservability() {
  // Log stamps follow virtual time for the duration of this cluster, so
  // NBRAFT_LOG output can be lined up with trace timestamps.
  if (!HasLogClock()) {
    SetLogClock([sim = sim_.get()]() { return sim->Now(); });
    owns_log_clock_ = true;
  }

  // The registry always exists: chaos fault counters and other cheap
  // counters surface even in untraced, unsampled runs.
  registry_ = std::make_unique<obs::Registry>();

  if (config_.journal) {
    obs::Journal::Options jopts;
    jopts.per_node_capacity = config_.journal_capacity;
    journal_ = std::make_unique<obs::Journal>(sim_.get(), config_.num_nodes,
                                              jopts);
    network_->set_journal(journal_.get());
    for (auto& node : nodes_) node->set_journal(journal_.get());
  }

  if (!config_.trace && config_.sample_interval <= 0) return;

  if (config_.trace) {
    obs::Tracer::Options topts;
    topts.span_capacity = config_.trace_span_capacity;
    topts.instant_capacity = config_.trace_instant_capacity;
    tracer_ = std::make_unique<obs::Tracer>(sim_.get(), topts);
    network_->set_tracer(tracer_.get());
    for (auto& node : nodes_) node->set_tracer(tracer_.get());
    for (auto& client : clients_) client->set_tracer(tracer_.get());
  }

  if (config_.sample_interval > 0) {
    // Cluster-wide aggregates.
    registry_->AddSource(obs::names::kWindowOccupancy, [this]() {
      size_t total = 0;
      for (const auto& node : nodes_) total += node->window().size();
      return static_cast<double>(total);
    });
    registry_->AddSource(obs::names::kCommitIndexMax, [this]() {
      storage::LogIndex max_commit = 0;
      for (const auto& node : nodes_) {
        max_commit = std::max(max_commit, node->commit_index());
      }
      return static_cast<double>(max_commit);
    });
    registry_->AddSource(obs::names::kApplyLag, [this]() {
      int64_t lag = 0;
      for (const auto& node : nodes_) {
        lag += node->commit_index() - node->applied_index();
      }
      return static_cast<double>(lag);
    });
    registry_->AddSource(obs::names::kDispatcherQueueDepth, [this]() {
      size_t total = 0;
      for (const auto& node : nodes_) total += node->DispatcherQueueDepth();
      return static_cast<double>(total);
    });
    registry_->AddSource(obs::names::kRpcsInflight, [this]() {
      size_t total = 0;
      for (const auto& node : nodes_) total += node->OutstandingRpcCount();
      return static_cast<double>(total);
    });
    registry_->AddSource(obs::names::kNicBytesSent, [this]() {
      return static_cast<double>(network_->bytes_sent());
    });

    // Per-replica series (".nodeN" suffix — the Prometheus exporter turns
    // it into a node label). Lambdas capture the raw node pointer: nodes_
    // never shrinks and outlives the sampler.
    for (int i = 0; i < config_.num_nodes; ++i) {
      const std::string suffix = ".node" + std::to_string(i);
      raft::RaftNode* node = nodes_[static_cast<size_t>(i)].get();
      registry_->AddSource(obs::names::kWindowOccupancyNode + suffix,
                           [node]() {
                             return static_cast<double>(node->window().size());
                           });
      registry_->AddSource(
          obs::names::kBarriersPending + suffix, [node]() {
            return static_cast<double>(node->PendingBarrierRecords());
          });
      registry_->AddSource(obs::names::kReplicationLag + suffix, [this,
                                                                  node]() {
        storage::LogIndex max_last = 0;
        for (const auto& n : nodes_) {
          max_last = std::max(max_last, n->log().LastIndex());
        }
        return static_cast<double>(max_last - node->log().LastIndex());
      });
      registry_->AddSource(obs::names::kCpuQueueDepth + suffix, [node]() {
        return static_cast<double>(node->cpu()->outstanding());
      });
      registry_->AddSource(obs::names::kIoQueueDepth + suffix, [node]() {
        storage::SimDisk* disk = node->disk();
        return disk == nullptr ? 0.0
                               : static_cast<double>(
                                     disk->io_lane()->outstanding());
      });
    }

    sampler_ = std::make_unique<obs::Sampler>(sim_.get(), registry_.get(),
                                              config_.sample_interval);
    if (config_.compress_series) {
      series_store_ = std::make_unique<obs::SeriesStore>();
      sampler_->set_series_store(series_store_.get());
    }
  }
}

std::string Cluster::EndpointName(int32_t id) const {
  if (id >= net::kClientIdBase) {
    return "client " + std::to_string(id - net::kClientIdBase);
  }
  return "node " + std::to_string(id);
}

Status Cluster::WriteTraces() const {
  if (tracer_ == nullptr) return Status::Ok();
  obs::ExportInputs inputs;
  inputs.tracer = tracer_.get();
  inputs.registry = registry_.get();
  inputs.sampler = sampler_.get();
  inputs.endpoint_name = [this](int32_t id) { return EndpointName(id); };
  if (!config_.trace_path.empty()) {
    Status s = obs::WriteChromeTrace(config_.trace_path, inputs);
    if (!s.ok()) return s;
  }
  if (!config_.trace_jsonl_path.empty()) {
    Status s = obs::WriteJsonl(config_.trace_jsonl_path, inputs);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status Cluster::WriteObsBundle(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create obs bundle dir " + dir + ": " +
                           ec.message());
  }
  obs::ExportInputs inputs;
  inputs.tracer = tracer_.get();
  inputs.registry = registry_.get();
  inputs.sampler = sampler_.get();
  inputs.endpoint_name = [this](int32_t id) { return EndpointName(id); };

  Status s = obs::WriteMetricsJson(dir + "/metrics.json", inputs);
  if (!s.ok()) return s;
  s = obs::WritePrometheusText(dir + "/metrics.prom", inputs);
  if (!s.ok()) return s;

  if (journal_ != nullptr) {
    // Full retained history (lookback 0): the bundle is a snapshot, not a
    // violation-scoped post-mortem — ChaosRunner handles those.
    s = journal_->WriteJsonl(dir + "/journal.jsonl", sim_->Now(), 0);
    if (!s.ok()) return s;
    s = journal_->WriteTimeline(
        dir + "/timeline.txt", sim_->Now(), 0,
        [this](int32_t id) { return EndpointName(id); });
    if (!s.ok()) return s;
  }

  std::FILE* f = std::fopen((dir + "/node_stats.json").c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open " + dir + "/node_stats.json");
  }
  const std::string stats = NodeStatsJson();
  std::fwrite(stats.data(), 1, stats.size(), f);
  std::fclose(f);
  return Status::Ok();
}

void Cluster::Start() {
  for (auto& node : nodes_) node->Start();
  if (sampler_ != nullptr) sampler_->Start();
  // Bootstrap: node 0 stands for election immediately instead of waiting a
  // full randomized timeout.
  sim_->After(Millis(1), [this]() { nodes_[0]->TriggerElection(); });
}

void Cluster::StartClients() {
  for (auto& client : clients_) client->Start();
}

void Cluster::RunFor(SimDuration d) { sim_->RunUntil(sim_->Now() + d); }

bool Cluster::AwaitLeader(SimDuration limit) {
  const SimTime deadline = sim_->Now() + limit;
  while (sim_->Now() < deadline) {
    if (leader() != nullptr) return true;
    sim_->RunUntil(sim_->Now() + Millis(10));
  }
  return leader() != nullptr;
}

void Cluster::CrashNode(int i) {
  if (crash_observer_) crash_observer_(i);
  nodes_[static_cast<size_t>(i)]->Crash();
}

void Cluster::RestartNode(int i) {
  nodes_[static_cast<size_t>(i)]->Restart();
}

int Cluster::CrashLeader() {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i]->crashed() && nodes_[i]->role() == raft::Role::kLeader) {
      CrashNode(static_cast<int>(i));
      return static_cast<int>(i);
    }
  }
  return -1;
}

void Cluster::StopAllClients() {
  for (auto& client : clients_) client->Stop();
}

raft::RaftNode* Cluster::leader() {
  raft::RaftNode* best = nullptr;
  for (auto& node : nodes_) {
    if (node->crashed() || node->role() != raft::Role::kLeader) continue;
    if (best == nullptr || node->current_term() > best->current_term()) {
      best = node.get();
    }
  }
  return best;
}

void Cluster::ResetMeasurement() {
  for (auto& client : clients_) client->ResetMeasurement();
}

ClusterStats Cluster::Collect() const {
  ClusterStats out;
  for (const auto& client : clients_) {
    const raft::ClientStats& cs = client->stats();
    out.requests_issued += cs.requests_issued;
    out.requests_completed += cs.requests_completed;
    out.weak_accepts += cs.weak_accepts;
    out.client_retries += cs.retries;
    out.completion_latency.Merge(cs.completion_latency);
    out.unblock_latency.Merge(cs.unblock_latency);
    out.breakdown.Add(metrics::Phase::kGenClient, cs.gen_time_total);
  }
  for (const auto& node : nodes_) {
    const raft::NodeStats& ns = node->stats();
    out.follower_wait.Merge(ns.wait_hist);
    out.breakdown.Merge(ns.breakdown);
    out.elections += ns.elections_started;
    out.rpc_timeouts += ns.rpc_timeouts;
    out.window_inserts += ns.window_inserts;
    out.degraded_entries += ns.degraded_entries;
    if (node->role() == raft::Role::kLeader && !node->crashed()) {
      out.entries_committed_leader = ns.entries_committed;
    }
  }
  return out;
}

std::string Cluster::NodeStatsJson() const {
  std::string out = "{";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"node" + std::to_string(i) + "\":";
    out += nodes_[i]->stats().ToJson();
  }
  out += "}";
  return out;
}

Status Cluster::CheckLogMatching() const {
  for (size_t a = 0; a < nodes_.size(); ++a) {
    for (size_t b = a + 1; b < nodes_.size(); ++b) {
      const auto& la = nodes_[a]->log();
      const auto& lb = nodes_[b]->log();
      const storage::LogIndex last =
          std::min(la.LastIndex(), lb.LastIndex());
      const storage::LogIndex first =
          std::max(la.FirstIndex(), lb.FirstIndex());
      // Find the highest shared (index, term) point.
      storage::LogIndex match = 0;
      for (storage::LogIndex i = last; i >= first; --i) {
        if (la.AtUnchecked(i).term == lb.AtUnchecked(i).term) {
          match = i;
          break;
        }
      }
      // Everything at or below the match point must agree.
      for (storage::LogIndex i = first; i <= match; ++i) {
        const auto& ea = la.AtUnchecked(i);
        const auto& eb = lb.AtUnchecked(i);
        if (ea.term != eb.term || ea.request_id != eb.request_id) {
          return Status::Corruption(
              "log matching violated at index " + std::to_string(i) +
              " between nodes " + std::to_string(a) + " and " +
              std::to_string(b));
        }
      }
    }
  }
  return Status::Ok();
}

Status Cluster::CheckCommittedPrefixes() const {
  // State Machine Safety: two nodes may only disagree above the commit
  // point of at least one of them (an uncommitted conflicting tail on a
  // stale follower is legal; a committed divergence is not).
  for (size_t a = 0; a < nodes_.size(); ++a) {
    const auto& la = nodes_[a]->log();
    for (size_t b = a + 1; b < nodes_.size(); ++b) {
      const auto& lb = nodes_[b]->log();
      const storage::LogIndex upto = std::min(
          {nodes_[a]->commit_index(), nodes_[b]->commit_index(),
           la.LastIndex(), lb.LastIndex()});
      for (storage::LogIndex i = std::max(la.FirstIndex(), lb.FirstIndex());
           i <= upto; ++i) {
        const auto& ea = la.AtUnchecked(i);
        const auto& eb = lb.AtUnchecked(i);
        if (ea.term != eb.term || ea.request_id != eb.request_id) {
          return Status::Corruption(
              "committed entries diverge at index " + std::to_string(i));
        }
      }
    }
  }
  return Status::Ok();
}

uint64_t Cluster::CountUniqueRequestsInLog(int node_index) const {
  const auto& log = nodes_[static_cast<size_t>(node_index)]->log();
  std::set<uint64_t> ids;
  for (storage::LogIndex i = log.FirstIndex(); i <= log.LastIndex(); ++i) {
    const auto& e = log.AtUnchecked(i);
    if (e.client_id != net::kInvalidNode) ids.insert(e.request_id);
  }
  return ids.size();
}

uint64_t Cluster::TotalRequestsIssued() const {
  uint64_t total = 0;
  for (const auto& client : clients_) {
    total += client->requests_issued_total();
  }
  return total;
}

}  // namespace nbraft::harness
