#include "harness/cluster.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/logging.h"
#include "obs/names.h"

namespace nbraft::harness {

void ClusterStats::Merge(const ClusterStats& other) {
  requests_issued += other.requests_issued;
  requests_completed += other.requests_completed;
  weak_accepts += other.weak_accepts;
  client_retries += other.client_retries;
  completion_latency.Merge(other.completion_latency);
  unblock_latency.Merge(other.unblock_latency);
  follower_wait.Merge(other.follower_wait);
  breakdown.Merge(other.breakdown);
  entries_committed_leader += other.entries_committed_leader;
  elections += other.elections;
  rpc_timeouts += other.rpc_timeouts;
  window_inserts += other.window_inserts;
  degraded_entries += other.degraded_entries;
}

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      shard_map_(std::max(config_.num_groups, 1), config_.shard_salt) {
  NBRAFT_CHECK_GE(config_.num_nodes, 1);
  NBRAFT_CHECK_GE(config_.num_clients, 0);
  NBRAFT_CHECK_GE(config_.num_groups, 1);
  if (!config_.trace_path.empty() || !config_.trace_jsonl_path.empty()) {
    config_.trace = true;
  }

  raft::RaftOptions options =
      raft::OptionsForProtocol(config_.protocol, config_.window_size);
  options.dispatchers_per_follower = config_.dispatchers < 0
                                         ? std::max(config_.num_clients, 1)
                                         : config_.dispatchers;
  options.max_batch_entries = config_.max_batch_entries;
  options.pre_vote = config_.pre_vote;
  options.check_quorum = config_.check_quorum;
  options.leader_lease = config_.leader_lease;
  options.cpu_lanes = config_.cpu_lanes;
  options.election_timeout = config_.election_timeout;
  options.release_applied_payloads = config_.release_payloads;
  options.snapshot_threshold = config_.snapshot_threshold;
  options.snapshot_keep_tail = config_.snapshot_keep_tail;
  options.wal_dir = config_.wal_dir;
  options.disk = config_.disk;
  if (config_.promotion_lag >= 0) {
    options.membership.promotion_lag = config_.promotion_lag;
  }
  if (config_.recovery_batch >= 0) {
    options.membership.recovery_max_entries_per_round = config_.recovery_batch;
  }
  options.backend_factory = config_.backend_factory;
  if (config_.profile == SystemProfile::kRatis) {
    // Ratis holds a heavier lock during indexing (paper Sec. II-F), moving
    // queue time into t_idx.
    options.costs.index_cost = Micros(12);
  }

  Substrate::Config sub;
  sub.seed = config_.seed;
  sub.network = config_.network;
  sub.num_physical_nodes = config_.num_nodes;
  // Host-shared pools exist only in multi-group mode; a single group owns
  // its resources exactly as before sharding (rng/bit-identity contract).
  sub.shared_pools = config_.num_groups > 1;
  sub.cpu_lanes = config_.cpu_lanes;
  sub.cpu_speed = config_.cpu_speed;
  sub.costs = options.costs;
  sub.disk_lanes = config_.disk.enabled && config_.wal_dir.empty();
  substrate_ = std::make_unique<Substrate>(sub);

  if (config_.geo_distributed) {
    NBRAFT_CHECK_LE(config_.num_nodes, 5)
        << "geo topology models 5 regions (Fig. 20)";
    std::vector<net::NodeId> hosts;
    for (int i = 0; i < config_.num_nodes; ++i) hosts.push_back(i);
    // Pair latencies are host-scoped, so this covers every group at once.
    net::ApplyGeoTopology(substrate_->network(), hosts);
  }

  raft::RaftClient::Options client_options;
  client_options.think_time = config_.client_think;
  client_options.payload_size = config_.payload_size;
  client_options.pipeline_window =
      options.window_size > 0 ? options.window_size : 0;
  client_options.backoff_base = config_.client_backoff_base;
  client_options.backoff_cap = config_.client_backoff_cap;
  client_options.backoff_multiplier = config_.client_backoff_multiplier;
  client_options.record_ack_ids = config_.record_client_acks;
  client_options.max_requests = config_.client_max_requests;

  // Groups construct in ascending order, replicas before clients inside
  // each — for one group this is the exact historical rng draw sequence.
  for (int g = 0; g < config_.num_groups; ++g) {
    groups_.push_back(std::make_unique<GroupRuntime>(
        substrate_.get(), config_, g, options, client_options, shard_map_));
  }

  // Leadership callbacks keep the router's hint cache current (observers
  // are multicast — the chaos oracle adds its own alongside).
  router_ = std::make_unique<ShardRouter>(&shard_map_);
  for (int g = 0; g < num_groups(); ++g) {
    for (int r = 0; r < config_.num_nodes; ++r) {
      groups_[static_cast<size_t>(g)]->node(r)->add_leader_observer(
          [this, g](storage::Term term, net::NodeId id) {
            router_->ObserveLeader(g, id, term);
          });
    }
  }
  if (config_.initial_voters > 0) {
    // A node leaving the configuration must not keep routing traffic: any
    // replica observing a roster that no longer knows the hinted leader
    // drops the hint (its term watermark stays, so stale re-observations
    // of the removed node cannot resurrect it).
    for (int g = 0; g < num_groups(); ++g) {
      for (int r = 0; r < config_.num_nodes; ++r) {
        groups_[static_cast<size_t>(g)]->node(r)->add_config_observer(
            [this, g](const raft::Configuration& cfg) {
              const net::NodeId hint = router_->LeaderHint(g);
              if (hint != net::kInvalidNode && !cfg.Knows(hint)) {
                router_->InvalidateIfLeaderIs(g, hint);
              }
            });
      }
    }
  }

  SetupObservability();
}

Cluster::~Cluster() = default;

void Cluster::SetupObservability() {
  // The registry always exists: chaos fault counters and other cheap
  // counters surface even in untraced, unsampled runs.
  registry_ = std::make_unique<obs::Registry>();

  if (config_.journal) {
    obs::Journal::Options jopts;
    jopts.per_node_capacity = config_.journal_capacity;
    journal_ = std::make_unique<obs::Journal>(
        sim(), config_.num_groups * config_.num_nodes, jopts);
    network()->set_journal(journal_.get());
    for (auto& group : groups_) {
      for (int r = 0; r < group->num_nodes(); ++r) {
        group->node(r)->set_journal(journal_.get());
      }
    }
    if (config_.num_groups > 1) {
      // Journal lines carry the owning group (single-group output stays
      // byte-identical: no resolver, no field).
      const int32_t N = config_.num_nodes;
      const int32_t G = config_.num_groups;
      const int32_t M = config_.num_clients;
      journal_->set_group_resolver([N, G, M](int32_t id) -> int32_t {
        if (id >= net::kClientIdBase) {
          const int32_t idx = id - net::kClientIdBase;
          return (M > 0 && idx < G * M) ? idx / M : -1;
        }
        return id < G * N ? id / N : -1;
      });
    }
  }

  if (!config_.trace && config_.sample_interval <= 0) return;

  if (config_.trace) {
    obs::Tracer::Options topts;
    topts.span_capacity = config_.trace_span_capacity;
    topts.instant_capacity = config_.trace_instant_capacity;
    tracer_ = std::make_unique<obs::Tracer>(sim(), topts);
    network()->set_tracer(tracer_.get());
    for (auto& group : groups_) {
      for (int r = 0; r < group->num_nodes(); ++r) {
        group->node(r)->set_tracer(tracer_.get());
      }
      for (int i = 0; i < group->num_clients(); ++i) {
        group->client(i)->set_tracer(tracer_.get());
      }
    }
  }

  if (config_.sample_interval > 0) {
    // Cluster-wide aggregates (across every group).
    registry_->AddSource(obs::names::kWindowOccupancy, [this]() {
      size_t total = 0;
      for (const auto& group : groups_) {
        for (int r = 0; r < group->num_nodes(); ++r) {
          total += group->node(r)->window().size();
        }
      }
      return static_cast<double>(total);
    });
    registry_->AddSource(obs::names::kCommitIndexMax, [this]() {
      storage::LogIndex max_commit = 0;
      for (const auto& group : groups_) {
        for (int r = 0; r < group->num_nodes(); ++r) {
          max_commit = std::max(max_commit, group->node(r)->commit_index());
        }
      }
      return static_cast<double>(max_commit);
    });
    registry_->AddSource(obs::names::kApplyLag, [this]() {
      int64_t lag = 0;
      for (const auto& group : groups_) {
        for (int r = 0; r < group->num_nodes(); ++r) {
          lag += group->node(r)->commit_index() -
                 group->node(r)->applied_index();
        }
      }
      return static_cast<double>(lag);
    });
    registry_->AddSource(obs::names::kDispatcherQueueDepth, [this]() {
      size_t total = 0;
      for (const auto& group : groups_) {
        for (int r = 0; r < group->num_nodes(); ++r) {
          total += group->node(r)->DispatcherQueueDepth();
        }
      }
      return static_cast<double>(total);
    });
    registry_->AddSource(obs::names::kRpcsInflight, [this]() {
      size_t total = 0;
      for (const auto& group : groups_) {
        for (int r = 0; r < group->num_nodes(); ++r) {
          total += group->node(r)->OutstandingRpcCount();
        }
      }
      return static_cast<double>(total);
    });
    registry_->AddSource(obs::names::kNicBytesSent, [this]() {
      return static_cast<double>(network()->bytes_sent());
    });

    // Per-replica series, suffixed with the replica's endpoint id (for one
    // group that is ".node0".."nodeN", the historical names; the
    // Prometheus exporter turns it into a node label). Lambdas capture raw
    // pointers: groups_ never shrinks and outlives the sampler.
    for (int g = 0; g < num_groups(); ++g) {
      GroupRuntime* grp = groups_[static_cast<size_t>(g)].get();
      for (int r = 0; r < config_.num_nodes; ++r) {
        raft::RaftNode* node = grp->node(r);
        const std::string suffix =
            ".node" + std::to_string(node->id());
        registry_->AddSource(obs::names::kWindowOccupancyNode + suffix,
                             [node]() {
                               return static_cast<double>(
                                   node->window().size());
                             });
        registry_->AddSource(
            obs::names::kBarriersPending + suffix, [node]() {
              return static_cast<double>(node->PendingBarrierRecords());
            });
        // Replication lag is an intra-group notion: distance to the
        // furthest log *within this node's group*.
        registry_->AddSource(obs::names::kReplicationLag + suffix,
                             [grp, node]() {
                               storage::LogIndex max_last = 0;
                               for (int j = 0; j < grp->num_nodes(); ++j) {
                                 max_last = std::max(
                                     max_last, grp->node(j)->log().LastIndex());
                               }
                               return static_cast<double>(
                                   max_last - node->log().LastIndex());
                             });
        registry_->AddSource(obs::names::kCpuQueueDepth + suffix, [node]() {
          return static_cast<double>(node->cpu()->outstanding());
        });
        registry_->AddSource(obs::names::kIoQueueDepth + suffix, [node]() {
          storage::SimDisk* disk = node->disk();
          return disk == nullptr ? 0.0
                                 : static_cast<double>(
                                       disk->io_lane()->outstanding());
        });
      }
    }

    sampler_ = std::make_unique<obs::Sampler>(sim(), registry_.get(),
                                              config_.sample_interval);
    if (config_.compress_series) {
      series_store_ = std::make_unique<obs::SeriesStore>();
      sampler_->set_series_store(series_store_.get());
    }
  }
}

std::string Cluster::EndpointName(int32_t id) const {
  const int32_t N = config_.num_nodes;
  const int32_t M = config_.num_clients;
  if (id >= net::kClientIdBase) {
    const int32_t idx = id - net::kClientIdBase;
    if (config_.num_groups > 1 && M > 0 && idx < config_.num_groups * M) {
      return "g" + std::to_string(idx / M) + " client " +
             std::to_string(idx % M);
    }
    return "client " + std::to_string(idx);
  }
  if (config_.num_groups > 1 && id >= 0 && id < config_.num_groups * N) {
    return "g" + std::to_string(id / N) + " node " + std::to_string(id % N);
  }
  return "node " + std::to_string(id);
}

Status Cluster::WriteTraces() const {
  if (tracer_ == nullptr) return Status::Ok();
  obs::ExportInputs inputs;
  inputs.tracer = tracer_.get();
  inputs.registry = registry_.get();
  inputs.sampler = sampler_.get();
  inputs.endpoint_name = [this](int32_t id) { return EndpointName(id); };
  if (!config_.trace_path.empty()) {
    Status s = obs::WriteChromeTrace(config_.trace_path, inputs);
    if (!s.ok()) return s;
  }
  if (!config_.trace_jsonl_path.empty()) {
    Status s = obs::WriteJsonl(config_.trace_jsonl_path, inputs);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status Cluster::WriteObsBundle(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create obs bundle dir " + dir + ": " +
                           ec.message());
  }
  obs::ExportInputs inputs;
  inputs.tracer = tracer_.get();
  inputs.registry = registry_.get();
  inputs.sampler = sampler_.get();
  inputs.endpoint_name = [this](int32_t id) { return EndpointName(id); };

  Status s = obs::WriteMetricsJson(dir + "/metrics.json", inputs);
  if (!s.ok()) return s;
  s = obs::WritePrometheusText(dir + "/metrics.prom", inputs);
  if (!s.ok()) return s;

  if (journal_ != nullptr) {
    // Full retained history (lookback 0): the bundle is a snapshot, not a
    // violation-scoped post-mortem — ChaosRunner handles those.
    s = journal_->WriteJsonl(dir + "/journal.jsonl", substrate_->sim()->Now(),
                             0);
    if (!s.ok()) return s;
    s = journal_->WriteTimeline(
        dir + "/timeline.txt", substrate_->sim()->Now(), 0,
        [this](int32_t id) { return EndpointName(id); });
    if (!s.ok()) return s;
  }

  const auto write_file = [](const std::string& path,
                             const std::string& body) -> Status {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return Status::IoError("cannot open " + path);
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    return Status::Ok();
  };
  s = write_file(dir + "/node_stats.json", NodeStatsJson());
  if (!s.ok()) return s;
  if (config_.num_groups > 1) {
    for (size_t g = 0; g < groups_.size(); ++g) {
      s = write_file(dir + "/node_stats_g" + std::to_string(g) + ".json",
                     groups_[g]->NodeStatsJson());
      if (!s.ok()) return s;
    }
  }
  return Status::Ok();
}

void Cluster::Start() {
  for (auto& group : groups_) group->StartNodes();
  if (sampler_ != nullptr) sampler_->Start();
  // Bootstrap: each group's designated replica stands for election
  // immediately instead of waiting a full randomized timeout. Round-robin
  // placement spreads initial leaders across hosts (group 0 -> node 0,
  // exactly the historical single-group bootstrap).
  for (int g = 0; g < num_groups(); ++g) {
    // Elastic mode: only the initial voters are running — bootstrap among
    // them (fixed roster: all num_nodes hosts, the historical behavior).
    const int started = groups_[static_cast<size_t>(g)]->initial_started();
    raft::RaftNode* first = groups_[static_cast<size_t>(g)]->node(
        shard_map_.BootstrapLeaderReplica(g, started));
    sim()->After(Millis(1), [first]() { first->TriggerElection(); });
  }
}

void Cluster::StartClients() {
  for (auto& group : groups_) group->StartClients();
}

void Cluster::RunFor(SimDuration d) { sim()->RunUntil(sim()->Now() + d); }

bool Cluster::AwaitLeader(SimDuration limit) {
  const auto all_groups_led = [this]() {
    for (int g = 0; g < num_groups(); ++g) {
      if (leader(g) == nullptr) return false;
    }
    return true;
  };
  const SimTime deadline = sim()->Now() + limit;
  while (sim()->Now() < deadline) {
    if (all_groups_led()) return true;
    sim()->RunUntil(sim()->Now() + Millis(10));
  }
  return all_groups_led();
}

void Cluster::CrashNode(int i) {
  // Audit observers see pre-crash state for every co-resident replica
  // before any of them is wiped.
  for (const auto& observer : crash_observers_) observer(i);
  // Never-started replicas (elastic spares) have nothing to crash.
  for (auto& group : groups_) {
    if (group->node(i)->started()) group->node(i)->Crash();
  }
  // Leader hints pointing at this host are now dead ends.
  for (int g = 0; g < num_groups(); ++g) {
    const net::NodeId hint = router_->LeaderHint(g);
    if (hint != net::kInvalidNode &&
        hint == ReplicaEndpoint(g, config_.num_nodes, i)) {
      router_->InvalidateLeader(g);
    }
  }
}

void Cluster::RestartNode(int i) {
  for (auto& group : groups_) {
    if (group->node(i)->started() && group->node(i)->crashed()) {
      group->node(i)->Restart();
    }
  }
}

int Cluster::CrashLeader() { return CrashLeader(0); }

int Cluster::CrashLeader(int group) {
  GroupRuntime* grp = groups_[static_cast<size_t>(group)].get();
  for (int r = 0; r < grp->num_nodes(); ++r) {
    raft::RaftNode* node = grp->node(r);
    if (!node->crashed() && node->role() == raft::Role::kLeader) {
      CrashNode(r);
      return r;
    }
  }
  return -1;
}

void Cluster::StopAllClients() {
  for (auto& group : groups_) group->StopClients();
}

bool Cluster::AddNode(int g, int i) {
  GroupRuntime* grp = groups_[static_cast<size_t>(g)].get();
  grp->StartReplica(i);  // Idempotent; the proposal below may still fail.
  raft::RaftNode* lead = grp->leader();
  if (lead == nullptr || !lead->membership()->active()) return false;
  return lead->membership()->ProposeAddLearner(grp->Endpoint(i));
}

bool Cluster::RemoveNode(int g, int i) {
  GroupRuntime* grp = groups_[static_cast<size_t>(g)].get();
  raft::RaftNode* lead = grp->leader();
  if (lead == nullptr || !lead->membership()->active()) return false;
  const net::NodeId target = grp->Endpoint(i);
  if (lead->id() == target) {
    // Hand leadership to another live voter first; the caller retries the
    // removal once the transfer lands (self-removal through the joint
    // change works too, but an orderly hand-off keeps the group available
    // through the shrink).
    for (int r = 0; r < grp->num_nodes(); ++r) {
      if (r == i) continue;
      raft::RaftNode* peer = grp->node(r);
      if (!peer->started() || peer->crashed()) continue;
      if (!lead->membership()->IsVoter(grp->Endpoint(r))) continue;
      lead->election()->TransferLeadership(grp->Endpoint(r));
      return false;
    }
    return false;
  }
  return lead->membership()->ProposeRemove(target);
}

bool Cluster::TransferLeadership(int g, int i) {
  GroupRuntime* grp = groups_[static_cast<size_t>(g)].get();
  raft::RaftNode* lead = grp->leader();
  if (lead == nullptr) return false;
  const net::NodeId target = grp->Endpoint(i);
  if (lead->id() == target) return false;  // Already leads.
  raft::RaftNode* node = grp->node(i);
  if (!node->started() || node->crashed()) return false;
  return lead->election()->TransferLeadership(target);
}

void Cluster::SetTimerSkewAt(int i, double skew) {
  for (auto& group : groups_) group->node(i)->set_timer_skew(skew);
}

void Cluster::SetCpuSpeedFactorAt(int i, double factor) {
  // In multi-group mode all co-resident replicas share one pool, so this
  // sets the same executor G times (idempotent); single-group it is the
  // replica's own pool.
  for (auto& group : groups_) group->node(i)->SetCpuSpeedFactor(factor);
}

void Cluster::SetWithholdVotesAt(int i, bool withhold) {
  for (auto& group : groups_) group->node(i)->set_withhold_votes(withhold);
}

bool Cluster::SetDiskStallAt(int i, SimDuration extra) {
  bool any = false;
  for (auto& group : groups_) {
    if (storage::SimDisk* disk = group->node(i)->disk()) {
      disk->set_fsync_stall(extra);
      any = true;
    }
  }
  return any;
}

bool Cluster::CorruptDiskTailAt(int i) {
  bool any = false;
  for (auto& group : groups_) {
    if (storage::SimDisk* disk = group->node(i)->disk()) {
      if (disk->CorruptTailRecord()) any = true;
    }
  }
  return any;
}

std::vector<ShardRouter::Move> Cluster::PlanLeaderRebalance() {
  std::vector<int> leader_node(static_cast<size_t>(num_groups()), -1);
  for (int g = 0; g < num_groups(); ++g) {
    if (raft::RaftNode* l = leader(g)) {
      leader_node[static_cast<size_t>(g)] =
          groups_[static_cast<size_t>(g)]->ReplicaOf(l->id());
    }
  }
  return ShardRouter::PlanRebalance(leader_node, config_.num_nodes);
}

int Cluster::RebalanceLeaders() {
  const std::vector<ShardRouter::Move> moves = PlanLeaderRebalance();
  for (const ShardRouter::Move& move : moves) {
    groups_[static_cast<size_t>(move.group)]->node(move.to)->TriggerElection();
  }
  return static_cast<int>(moves.size());
}

void Cluster::ResetMeasurement() {
  for (auto& group : groups_) group->ResetMeasurement();
}

ClusterStats Cluster::Collect() const {
  ClusterStats out;
  for (const auto& group : groups_) out.Merge(group->Collect());
  return out;
}

std::string Cluster::NodeStatsJson() const {
  if (config_.num_groups == 1) return groups_[0]->NodeStatsJson();
  std::string out = "{";
  bool first = true;
  for (size_t g = 0; g < groups_.size(); ++g) {
    for (int r = 0; r < groups_[g]->num_nodes(); ++r) {
      if (!first) out += ",";
      first = false;
      out += "\"g" + std::to_string(g) + ".node" + std::to_string(r) + "\":";
      out += groups_[g]->node(r)->stats().ToJson();
    }
  }
  out += "}";
  return out;
}

Status Cluster::CheckLogMatching() const {
  for (const auto& group : groups_) {
    Status s = group->CheckLogMatching();
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status Cluster::CheckCommittedPrefixes() const {
  for (const auto& group : groups_) {
    Status s = group->CheckCommittedPrefixes();
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

uint64_t Cluster::TotalRequestsIssued() const {
  uint64_t total = 0;
  for (const auto& group : groups_) total += group->TotalRequestsIssued();
  return total;
}

}  // namespace nbraft::harness
