#ifndef NBRAFT_HARNESS_CLUSTER_H_
#define NBRAFT_HARNESS_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "harness/cluster_types.h"
#include "harness/group_runtime.h"
#include "harness/shard_map.h"
#include "harness/shard_router.h"
#include "harness/substrate.h"
#include "net/network.h"
#include "obs/exporter.h"
#include "obs/journal.h"
#include "obs/registry.h"
#include "obs/series_store.h"
#include "obs/tracer.h"
#include "raft/raft_client.h"
#include "raft/raft_node.h"
#include "raft/types.h"
#include "sim/simulator.h"

namespace nbraft::harness {

/// An in-process multi-Raft cluster on the deterministic simulator: one
/// shared Substrate (simulator, network, per-host CPU/disk pools) carrying
/// `num_groups` consensus groups of N replicas each, plus a ShardMap/
/// ShardRouter pair that places series on groups and tracks leaders.
///
/// With num_groups == 1 (the default) this is exactly the paper's testbed:
/// the single group owns its resources and the whole construction +
/// execution path — including the rng draw sequence — is bit-identical to
/// the pre-sharding cluster (behavior_fingerprint-pinned). The historical
/// single-group API below (node(i), leader(), CrashLeader(), ...) keeps
/// working unchanged by delegating to group 0.
///
/// With num_groups > 1, group g's replica r is *co-resident* with every
/// other group's replica r on physical host r: they share the host's NIC
/// serialization and partition/crash state, one CPU pool, and one disk
/// I/O lane — so chaos faults and load interference hit whole hosts, not
/// individual groups.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Starts all replicas and bootstraps each group's initial leader
  /// (round-robin over hosts: group g triggers replica g mod N).
  void Start();

  /// Starts every client connection (typically after Start + a grace
  /// period so leaders exist).
  void StartClients();

  /// Advances virtual time by `d`.
  void RunFor(SimDuration d);

  /// Runs until every group has a leader (or `limit` elapses).
  bool AwaitLeader(SimDuration limit = Seconds(10));

  // ---- Failure injection (Sec. V-G / Fig. 21) ----

  /// Crashes physical host `i`: every group's replica i dies together.
  /// Crash observers fire for the host *before* any replica's memory is
  /// wiped; the router's leader hints for affected groups are invalidated.
  void CrashNode(int i);
  /// Restarts physical host `i` (every group's replica i recovers).
  void RestartNode(int i);
  /// Kills group 0's current leader's host; returns its index or -1.
  int CrashLeader();
  /// Kills group g's current leader's *host* (co-resident replicas of
  /// other groups die with it); returns the replica/host index or -1.
  int CrashLeader(int group);

  /// Called with the physical host index on every CrashNode/CrashLeader,
  /// *before* any replica's memory is wiped — the safety oracles audit
  /// durability claims (strong-ack frontier vs fsynced frontier) here.
  /// Multicast: each group's oracle registers its own observer.
  void set_crash_observer(std::function<void(int)> observer) {
    crash_observers_.push_back(std::move(observer));
  }
  /// Kills every client simultaneously (the paper's loss experiment kills
  /// leader and clients together).
  void StopAllClients();

  // ---- Elastic membership (requires ClusterConfig::initial_voters > 0) --

  /// Starts host `i`'s replica of group `g` (if not yet running) and asks
  /// the group's leader to add it as a learner; the leader's recovery
  /// state machine then drives catch-up and (by default) promotion to
  /// voter. Returns false when the group has no leader, membership is
  /// dormant, or another change is still in flight — retry later.
  bool AddNode(int g, int i);
  bool AddNode(int i) { return AddNode(0, i); }

  /// Removes host `i`'s replica from group `g`'s configuration (joint
  /// consensus for voters, a plain entry for learners). Removing the
  /// sitting leader transfers leadership away instead and returns false —
  /// retry once the new leader is seated. Returns false likewise with no
  /// leader or a change in flight.
  bool RemoveNode(int g, int i);
  bool RemoveNode(int i) { return RemoveNode(0, i); }

  /// Asks group `g`'s leader to hand leadership to host `i`'s replica
  /// (TimeoutNow). Returns false with no leader, an ineligible target, or
  /// when `i` already leads.
  bool TransferLeadership(int g, int i);
  bool TransferLeadership(int i) { return TransferLeadership(0, i); }

  // ---- Host-scoped chaos faults (all co-resident replicas) ----

  /// Election-timer skew on every replica of host `i`.
  void SetTimerSkewAt(int i, double skew);
  /// CPU slowdown on host `i` (one shared pool in multi-group mode, the
  /// replica's own pool otherwise).
  void SetCpuSpeedFactorAt(int i, double factor);
  /// Vote-withholder adversary on every replica of host `i`.
  void SetWithholdVotesAt(int i, bool withhold);
  /// Extra fsync stall on every simulated disk of host `i`. Returns false
  /// when the run has no simulated disks.
  bool SetDiskStallAt(int i, SimDuration extra);
  /// Corrupts the newest eligible tail record of each of host `i`'s
  /// disks. Returns true if any record was corrupted.
  bool CorruptDiskTailAt(int i);

  // ---- Introspection ----
  sim::Simulator* sim() { return substrate_->sim(); }
  net::SimNetwork* network() { return substrate_->network(); }
  Substrate* substrate() { return substrate_.get(); }

  /// Group 0's replica `i` (the historical single-group accessor; with
  /// one group this is every node). Host-scoped fault helpers above hit
  /// all co-resident replicas instead.
  raft::RaftNode* node(int i) { return groups_[0]->node(i); }
  /// Group `g`'s replica `r`.
  raft::RaftNode* node(int g, int r) {
    return groups_[static_cast<size_t>(g)]->node(r);
  }
  /// Client by cluster-wide index (group-major: g * clients_per_group + i).
  raft::RaftClient* client(int i) {
    const int per_group = config_.num_clients;
    return groups_[static_cast<size_t>(i / per_group)]->client(i % per_group);
  }
  /// Group `g`'s client `i`.
  raft::RaftClient* client(int g, int i) {
    return groups_[static_cast<size_t>(g)]->client(i);
  }
  int num_nodes() const { return config_.num_nodes; }  ///< Physical hosts.
  int num_groups() const { return static_cast<int>(groups_.size()); }
  /// Total clients across all groups.
  int num_clients() const { return config_.num_clients * num_groups(); }
  const ClusterConfig& config() const { return config_; }
  GroupRuntime* group(int g) { return groups_[static_cast<size_t>(g)].get(); }

  /// Group 0's current leader (the historical accessor), or nullptr.
  raft::RaftNode* leader() { return groups_[0]->leader(); }
  /// Group `g`'s current leader among non-crashed replicas, or nullptr.
  raft::RaftNode* leader(int g) {
    return groups_[static_cast<size_t>(g)]->leader();
  }

  // ---- Sharding ----
  const ShardMap& shard_map() const { return shard_map_; }
  /// Leader-hint cache fed by per-node leadership callbacks; external
  /// ingress routes through this (the closed-loop clients keep their own
  /// NotLeader redirect machinery and bypass it).
  ShardRouter* router() { return router_.get(); }
  const ShardRouter* router() const { return router_.get(); }

  /// Plans leader moves that even out leaders-per-host (see
  /// ShardRouter::PlanRebalance). Empty when already balanced.
  std::vector<ShardRouter::Move> PlanLeaderRebalance();
  /// Executes the plan by triggering elections on the target replicas
  /// (best-effort placement: the election itself still needs a quorum).
  /// Returns the number of moves attempted.
  int RebalanceLeaders();

  /// Marks the start of the measurement window (resets client stats).
  void ResetMeasurement();

  // ---- Observability ----

  /// Lifecycle tracer (nullptr unless ClusterConfig enabled tracing).
  obs::Tracer* tracer() { return tracer_.get(); }
  obs::Registry* registry() { return registry_.get(); }
  obs::Sampler* sampler() { return sampler_.get(); }
  /// Flight recorder (nullptr unless ClusterConfig::journal).
  obs::Journal* journal() { return journal_.get(); }
  const obs::Journal* journal() const { return journal_.get(); }
  /// Compressed metric series (nullptr unless sampling + compress_series).
  obs::SeriesStore* series_store() { return series_store_.get(); }

  /// Maps an endpoint id to its display name: "node 2" / "client 17"
  /// single-group, "g1 node 2" / "g1 client 17" sharded.
  std::string EndpointName(int32_t id) const;

  /// Writes the Chrome trace_event JSON and/or JSONL dump to the paths in
  /// the config. No-op Ok when tracing is off or both paths are empty.
  Status WriteTraces() const;

  /// Writes the full observability bundle into `dir` (created if needed):
  /// metrics.json + metrics.prom snapshots, the journal as journal.jsonl +
  /// timeline.txt, and node_stats.json (plus per-group
  /// node_stats_g<g>.json when sharded). Pieces whose collector is off are
  /// skipped. This is what tools/obs_report.py renders.
  Status WriteObsBundle(const std::string& dir) const;

  /// Aggregates node + client metrics across every group (single group:
  /// exactly that group's stats).
  ClusterStats Collect() const;
  /// One group's stats alone.
  ClusterStats CollectGroup(int g) const {
    return groups_[static_cast<size_t>(g)]->Collect();
  }

  /// Raw per-node counters as one JSON object — keyed "node0".."nodeN"
  /// single-group, "g0.node0".."gG.nodeN" sharded; each value a
  /// raft::NodeStats::ToJson object. Machine-readable complement to
  /// Collect() for dashboards and offline diffing.
  std::string NodeStatsJson() const;

  // ---- Invariant checks (used by the integration tests) ----

  /// Log Matching within every group: if two logs share (index, term)
  /// they share everything up to that index.
  Status CheckLogMatching() const;

  /// Committed-prefix agreement within every group.
  Status CheckCommittedPrefixes() const;

  /// Counts distinct client request ids in group 0 replica `node_index`'s
  /// log — the survivor count of the paper's data-loss experiment.
  uint64_t CountUniqueRequestsInLog(int node_index) const {
    return groups_[0]->CountUniqueRequestsInLog(node_index);
  }
  uint64_t CountUniqueRequestsInLog(int g, int r) const {
    return groups_[static_cast<size_t>(g)]->CountUniqueRequestsInLog(r);
  }

  /// Total distinct requests issued across all clients of all groups.
  uint64_t TotalRequestsIssued() const;

 private:
  void SetupObservability();

  ClusterConfig config_;
  std::unique_ptr<Substrate> substrate_;
  ShardMap shard_map_;
  std::unique_ptr<ShardRouter> router_;
  std::vector<std::unique_ptr<GroupRuntime>> groups_;

  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::Registry> registry_;
  std::unique_ptr<obs::Sampler> sampler_;
  std::unique_ptr<obs::Journal> journal_;
  std::unique_ptr<obs::SeriesStore> series_store_;
  std::vector<std::function<void(int)>> crash_observers_;
};

}  // namespace nbraft::harness

#endif  // NBRAFT_HARNESS_CLUSTER_H_
