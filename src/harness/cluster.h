#ifndef NBRAFT_HARNESS_CLUSTER_H_
#define NBRAFT_HARNESS_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "harness/workload.h"
#include "metrics/breakdown.h"
#include "metrics/histogram.h"
#include "net/network.h"
#include "obs/exporter.h"
#include "obs/journal.h"
#include "obs/registry.h"
#include "obs/series_store.h"
#include "obs/tracer.h"
#include "raft/raft_client.h"
#include "raft/raft_node.h"
#include "raft/types.h"
#include "sim/simulator.h"

namespace nbraft::harness {

/// Which state-machine/cost profile the replicas run (the two systems of
/// the paper's Fig. 4).
enum class SystemProfile {
  kIoTDB,  ///< Memtable-batched time-series apply; light indexing lock.
  kRatis,  ///< FileStore: per-request I/O apply; heavy indexing lock.
};

/// Everything needed to assemble one experiment's cluster.
struct ClusterConfig {
  int num_nodes = 3;           ///< Paper default replication factor.
  int num_clients = 64;
  raft::Protocol protocol = raft::Protocol::kRaft;
  int window_size = 10000;     ///< Paper default for NB variants.
  size_t payload_size = 4096;  ///< Paper default 4 KB.

  /// Dispatchers per follower; -1 follows the paper ("the number of
  /// dispatchers is the same as clients").
  int dispatchers = -1;

  /// Max consecutive entries one AppendEntries RPC may coalesce (1 = the
  /// paper's unbatched wire protocol).
  int max_batch_entries = 1;

  /// Adversarial-resilience mitigations forwarded to every node (see
  /// raft::RaftOptions). All off by default — the default cluster is
  /// bit-identical to the unmitigated protocol.
  bool pre_vote = false;
  bool check_quorum = false;
  bool leader_lease = false;

  int cpu_lanes = 16;
  double cpu_speed = 1.0;      ///< Fig. 23: < 1 models disabled CPU-Turbo.

  /// Snapshot/compaction threshold forwarded to every node (0 = off).
  int64_t snapshot_threshold = 0;
  int64_t snapshot_keep_tail = 64;

  /// Real WAL durability directory forwarded to every node ("" = off).
  std::string wal_dir;

  /// Simulated durable disk forwarded to every node (disk.enabled = on;
  /// ignored when wal_dir is set — a real WAL wins). See raft::DiskOptions.
  raft::DiskOptions disk;

  /// Test hook forwarded to every node: builds the durable-log backend
  /// instead of the wal_dir/disk selection (e.g. an injected failing
  /// backend for storage-error-path tests).
  std::function<std::unique_ptr<storage::LogBackend>(int64_t node_id)>
      backend_factory;
  SimDuration election_timeout = Millis(500);
  SimDuration client_think = Micros(5);

  /// Client resend backoff (capped exponential + seeded jitter).
  SimDuration client_backoff_base = Millis(1500);
  SimDuration client_backoff_cap = Millis(8000);
  double client_backoff_multiplier = 2.0;

  /// Retain weak/strong acked request ids on every client so the chaos
  /// safety oracle can audit acknowledged-write durability.
  bool record_client_acks = false;

  /// Per-client cap on issued requests, 0 = unlimited. Lets chaos runs
  /// drain to a true quiescent point (retries still run after the cap).
  uint64_t client_max_requests = 0;
  net::NetworkConfig network;
  bool geo_distributed = false;  ///< Fig. 20 topology (max 5 nodes).
  SystemProfile profile = SystemProfile::kIoTDB;
  uint64_t seed = 42;
  IngestWorkload::Options workload;

  /// Free applied payload bytes (keep on for long throughput runs).
  bool release_payloads = true;

  // ---- Observability ----

  /// Enables the per-entry lifecycle tracer (implied by a non-empty
  /// trace path). Off by default: untraced runs pay a single null check.
  bool trace = false;

  /// Where WriteTraces() puts the Chrome trace_event JSON ("" = skip).
  /// Open it in chrome://tracing or https://ui.perfetto.dev.
  std::string trace_path;

  /// Where WriteTraces() puts the flat JSONL dump ("" = skip).
  std::string trace_jsonl_path;

  /// Telemetry sampling period for window occupancy / commit lag / queue
  /// depth / in-flight RPCs / NIC bytes (0 = sampler off).
  SimDuration sample_interval = 0;

  /// Ring-buffer capacities for the tracer.
  size_t trace_span_capacity = 1 << 20;
  size_t trace_instant_capacity = 1 << 18;

  /// Enables the cluster flight recorder: one fixed ring of structured
  /// protocol events per node (role/term changes, decoded RPCs, window
  /// transitions, commit/apply advances, disk barriers, chaos faults).
  /// Off by default — an untraced run pays one null check per hook.
  bool journal = false;

  /// Events retained per node ring (plus one shared cluster ring).
  size_t journal_capacity = 1 << 14;

  /// Mirror every sampled series into a Gorilla-compressed SeriesStore
  /// (the system monitoring itself with its own storage format). Only
  /// meaningful when sample_interval > 0.
  bool compress_series = true;
};

/// Aggregated run metrics.
struct ClusterStats {
  uint64_t requests_issued = 0;
  uint64_t requests_completed = 0;
  uint64_t weak_accepts = 0;
  uint64_t client_retries = 0;
  metrics::Histogram completion_latency;
  metrics::Histogram unblock_latency;
  metrics::Histogram follower_wait;  ///< t_wait(F) across followers.
  metrics::Breakdown breakdown;      ///< Merged over all nodes + t_gen.
  uint64_t entries_committed_leader = 0;
  uint64_t elections = 0;
  uint64_t rpc_timeouts = 0;
  uint64_t window_inserts = 0;
  uint64_t degraded_entries = 0;
};

/// An in-process cluster on the deterministic simulator: N replicas, M
/// closed-loop clients, one network. This is the paper's testbed in
/// miniature; every evaluation figure is produced through it.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Starts the replicas and bootstraps node 0 as the initial leader.
  void Start();

  /// Starts every client connection (typically after Start + a grace
  /// period so a leader exists).
  void StartClients();

  /// Advances virtual time by `d`.
  void RunFor(SimDuration d);

  /// Runs until a leader exists (or `limit` elapses). Returns success.
  bool AwaitLeader(SimDuration limit = Seconds(10));

  // ---- Failure injection (Sec. V-G / Fig. 21) ----
  void CrashNode(int i);
  void RestartNode(int i);
  /// Kills the current leader; returns its index or -1.
  int CrashLeader();

  /// Called with the node index on every CrashNode/CrashLeader, *before*
  /// the node's memory is wiped — the safety oracle audits the node's
  /// durability claims (strong-ack frontier vs fsynced frontier) here.
  void set_crash_observer(std::function<void(int)> observer) {
    crash_observer_ = std::move(observer);
  }
  /// Kills every client simultaneously (the paper's loss experiment kills
  /// leader and clients together).
  void StopAllClients();

  // ---- Introspection ----
  sim::Simulator* sim() { return sim_.get(); }
  net::SimNetwork* network() { return network_.get(); }
  raft::RaftNode* node(int i) { return nodes_[static_cast<size_t>(i)].get(); }
  raft::RaftClient* client(int i) {
    return clients_[static_cast<size_t>(i)].get();
  }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_clients() const { return static_cast<int>(clients_.size()); }
  const ClusterConfig& config() const { return config_; }

  /// Current leader among non-crashed nodes, or nullptr.
  raft::RaftNode* leader();

  /// Marks the start of the measurement window (resets client stats).
  void ResetMeasurement();

  // ---- Observability ----

  /// Lifecycle tracer (nullptr unless ClusterConfig enabled tracing).
  obs::Tracer* tracer() { return tracer_.get(); }
  obs::Registry* registry() { return registry_.get(); }
  obs::Sampler* sampler() { return sampler_.get(); }
  /// Flight recorder (nullptr unless ClusterConfig::journal).
  obs::Journal* journal() { return journal_.get(); }
  const obs::Journal* journal() const { return journal_.get(); }
  /// Compressed metric series (nullptr unless sampling + compress_series).
  obs::SeriesStore* series_store() { return series_store_.get(); }

  /// Maps an endpoint id to its display name ("node 2" / "client 17").
  std::string EndpointName(int32_t id) const;

  /// Writes the Chrome trace_event JSON and/or JSONL dump to the paths in
  /// the config. No-op Ok when tracing is off or both paths are empty.
  Status WriteTraces() const;

  /// Writes the full observability bundle into `dir` (created if needed):
  /// metrics.json + metrics.prom snapshots, the journal as journal.jsonl +
  /// timeline.txt, and node_stats.json. Pieces whose collector is off are
  /// skipped. This is what tools/obs_report.py renders.
  Status WriteObsBundle(const std::string& dir) const;

  /// Aggregates node + client metrics.
  ClusterStats Collect() const;

  /// Raw per-node counters as one JSON object keyed "node0".."nodeN",
  /// each value a raft::NodeStats::ToJson object (includes the RPC
  /// batching counters and histograms). Machine-readable complement to
  /// Collect() for dashboards and offline diffing.
  std::string NodeStatsJson() const;

  // ---- Invariant checks (used by the integration tests) ----

  /// Log Matching: if two logs share (index, term) they share everything
  /// up to that index.
  Status CheckLogMatching() const;

  /// Committed-prefix agreement: entries at or below each node's commit
  /// index agree across nodes that have them.
  Status CheckCommittedPrefixes() const;

  /// Counts distinct client request ids present in `node_index`'s log —
  /// the survivor count of the paper's data-loss experiment.
  uint64_t CountUniqueRequestsInLog(int node_index) const;

  /// Total distinct requests issued across all clients.
  uint64_t TotalRequestsIssued() const;

 private:
  void SetupObservability();

  ClusterConfig config_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<net::SimNetwork> network_;
  std::vector<std::unique_ptr<raft::RaftNode>> nodes_;
  std::vector<std::unique_ptr<raft::RaftClient>> clients_;
  std::vector<std::unique_ptr<IngestWorkload>> workloads_;

  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::Registry> registry_;
  std::unique_ptr<obs::Sampler> sampler_;
  std::unique_ptr<obs::Journal> journal_;
  std::unique_ptr<obs::SeriesStore> series_store_;
  std::function<void(int)> crash_observer_;
  bool owns_log_clock_ = false;
};

}  // namespace nbraft::harness

#endif  // NBRAFT_HARNESS_CLUSTER_H_
