#ifndef NBRAFT_HARNESS_CLUSTER_TYPES_H_
#define NBRAFT_HARNESS_CLUSTER_TYPES_H_

#include <functional>
#include <memory>
#include <string>

#include "harness/workload.h"
#include "metrics/breakdown.h"
#include "metrics/histogram.h"
#include "net/network.h"
#include "raft/types.h"

namespace nbraft::harness {

/// Which state-machine/cost profile the replicas run (the two systems of
/// the paper's Fig. 4).
enum class SystemProfile {
  kIoTDB,  ///< Memtable-batched time-series apply; light indexing lock.
  kRatis,  ///< FileStore: per-request I/O apply; heavy indexing lock.
};

/// Everything needed to assemble one experiment's cluster.
struct ClusterConfig {
  int num_nodes = 3;           ///< Paper default replication factor.
  /// Closed-loop clients *per consensus group* (one group by default, so
  /// this is the historical total).
  int num_clients = 64;

  /// Consensus groups sharing the simulated substrate (multi-Raft
  /// sharding). Every group runs `num_nodes` replicas co-resident on the
  /// same `num_nodes` physical hosts: group g's replica r shares host r's
  /// NIC, CPU pool and disk I/O lane with every other group's replica r.
  /// 1 (the default) reproduces the single-group cluster bit-identically.
  int num_groups = 1;

  /// ShardMap hash salt (series/key -> group placement).
  uint64_t shard_salt = 0;

  /// Dynamic membership (elastic scale-out). 0 (the default) keeps the
  /// membership engine dormant: all `num_nodes` hosts start as a fixed
  /// voter roster, bit-identical to the historical cluster. > 0 activates
  /// joint-consensus membership on every replica: the first
  /// `initial_voters` hosts start as voters and the rest are constructed
  /// (same rng draw sequence) but left unstarted until Cluster::AddNode
  /// brings them in as learners.
  int initial_voters = 0;

  /// Learner promotion-lag override for elastic clusters; < 0 keeps the
  /// MembershipOptions default. The WEAK_ACCEPT x learner-lag study
  /// sweeps this to trade promotion latency against the amount of tail
  /// the joint change must finish replicating.
  int64_t promotion_lag = -1;

  /// Catch-up throttle override (max entries per recovery round); < 0
  /// keeps the MembershipOptions default. A joining learner only
  /// converges when this bandwidth exceeds the ingest rate, so elastic
  /// benches provision it above the offered load.
  int recovery_batch = -1;

  raft::Protocol protocol = raft::Protocol::kRaft;
  int window_size = 10000;     ///< Paper default for NB variants.
  size_t payload_size = 4096;  ///< Paper default 4 KB.

  /// Dispatchers per follower; -1 follows the paper ("the number of
  /// dispatchers is the same as clients").
  int dispatchers = -1;

  /// Max consecutive entries one AppendEntries RPC may coalesce (1 = the
  /// paper's unbatched wire protocol).
  int max_batch_entries = 1;

  /// Adversarial-resilience mitigations forwarded to every node (see
  /// raft::RaftOptions). All off by default — the default cluster is
  /// bit-identical to the unmitigated protocol.
  bool pre_vote = false;
  bool check_quorum = false;
  bool leader_lease = false;

  int cpu_lanes = 16;
  double cpu_speed = 1.0;      ///< Fig. 23: < 1 models disabled CPU-Turbo.

  /// Snapshot/compaction threshold forwarded to every node (0 = off).
  int64_t snapshot_threshold = 0;
  int64_t snapshot_keep_tail = 64;

  /// Real WAL durability directory forwarded to every node ("" = off).
  std::string wal_dir;

  /// Simulated durable disk forwarded to every node (disk.enabled = on;
  /// ignored when wal_dir is set — a real WAL wins). See raft::DiskOptions.
  raft::DiskOptions disk;

  /// Test hook forwarded to every node: builds the durable-log backend
  /// instead of the wal_dir/disk selection (e.g. an injected failing
  /// backend for storage-error-path tests).
  std::function<std::unique_ptr<storage::LogBackend>(int64_t node_id)>
      backend_factory;
  SimDuration election_timeout = Millis(500);
  SimDuration client_think = Micros(5);

  /// Client resend backoff (capped exponential + seeded jitter).
  SimDuration client_backoff_base = Millis(1500);
  SimDuration client_backoff_cap = Millis(8000);
  double client_backoff_multiplier = 2.0;

  /// Retain weak/strong acked request ids on every client so the chaos
  /// safety oracle can audit acknowledged-write durability.
  bool record_client_acks = false;

  /// Per-client cap on issued requests, 0 = unlimited. Lets chaos runs
  /// drain to a true quiescent point (retries still run after the cap).
  uint64_t client_max_requests = 0;
  net::NetworkConfig network;
  bool geo_distributed = false;  ///< Fig. 20 topology (max 5 nodes).
  SystemProfile profile = SystemProfile::kIoTDB;
  uint64_t seed = 42;
  IngestWorkload::Options workload;

  /// Free applied payload bytes (keep on for long throughput runs).
  bool release_payloads = true;

  // ---- Observability ----

  /// Enables the per-entry lifecycle tracer (implied by a non-empty
  /// trace path). Off by default: untraced runs pay a single null check.
  bool trace = false;

  /// Where WriteTraces() puts the Chrome trace_event JSON ("" = skip).
  /// Open it in chrome://tracing or https://ui.perfetto.dev.
  std::string trace_path;

  /// Where WriteTraces() puts the flat JSONL dump ("" = skip).
  std::string trace_jsonl_path;

  /// Telemetry sampling period for window occupancy / commit lag / queue
  /// depth / in-flight RPCs / NIC bytes (0 = sampler off).
  SimDuration sample_interval = 0;

  /// Ring-buffer capacities for the tracer.
  size_t trace_span_capacity = 1 << 20;
  size_t trace_instant_capacity = 1 << 18;

  /// Enables the cluster flight recorder: one fixed ring of structured
  /// protocol events per node (role/term changes, decoded RPCs, window
  /// transitions, commit/apply advances, disk barriers, chaos faults).
  /// Off by default — an untraced run pays one null check per hook.
  bool journal = false;

  /// Events retained per node ring (plus one shared cluster ring).
  size_t journal_capacity = 1 << 14;

  /// Mirror every sampled series into a Gorilla-compressed SeriesStore
  /// (the system monitoring itself with its own storage format). Only
  /// meaningful when sample_interval > 0.
  bool compress_series = true;
};

/// Aggregated run metrics (one group's, or — after Merge — a whole
/// multi-group cluster's).
struct ClusterStats {
  uint64_t requests_issued = 0;
  uint64_t requests_completed = 0;
  uint64_t weak_accepts = 0;
  uint64_t client_retries = 0;
  metrics::Histogram completion_latency;
  metrics::Histogram unblock_latency;
  metrics::Histogram follower_wait;  ///< t_wait(F) across followers.
  metrics::Breakdown breakdown;      ///< Merged over all nodes + t_gen.
  uint64_t entries_committed_leader = 0;
  uint64_t elections = 0;
  uint64_t rpc_timeouts = 0;
  uint64_t window_inserts = 0;
  uint64_t degraded_entries = 0;

  /// Folds another group's stats into this one (histograms and breakdowns
  /// merge, counters add — entries_committed_leader sums over each
  /// group's leader). Merging into a default-constructed object copies.
  void Merge(const ClusterStats& other);
};

}  // namespace nbraft::harness

#endif  // NBRAFT_HARNESS_CLUSTER_TYPES_H_
