#include "harness/experiment.h"

#include <cstdio>

#include "common/logging.h"

namespace nbraft::harness {

ThroughputResult RunThroughputExperiment(const ClusterConfig& config,
                                         SimDuration warmup,
                                         SimDuration measure) {
  Cluster cluster(config);
  cluster.Start();
  NBRAFT_CHECK(cluster.AwaitLeader()) << "no leader during bootstrap";
  cluster.StartClients();
  cluster.RunFor(warmup);
  cluster.ResetMeasurement();
  cluster.RunFor(measure);

  const ClusterStats stats = cluster.Collect();
  ThroughputResult out;
  out.raw = stats;
  out.breakdown = stats.breakdown;
  const double seconds = ToSeconds(measure);
  out.throughput_kops =
      static_cast<double>(stats.requests_completed) / seconds / 1000.0;
  out.mean_latency_ms = stats.completion_latency.Mean() / kMillisecond;
  out.p50_latency_ms =
      static_cast<double>(stats.completion_latency.P50()) / kMillisecond;
  out.p99_latency_ms =
      static_cast<double>(stats.completion_latency.P99()) / kMillisecond;
  out.unblock_latency_ms = stats.unblock_latency.Mean() / kMillisecond;
  out.weak_ratio =
      stats.requests_completed == 0
          ? 0.0
          : static_cast<double>(stats.weak_accepts) /
                static_cast<double>(stats.requests_completed);
  out.wait_mean_us = stats.follower_wait.Mean() / kMicrosecond;
  return out;
}

LossResult RunLossExperiment(const ClusterConfig& config, SimDuration run_time,
                             SimDuration settle) {
  Cluster cluster(config);
  cluster.Start();
  NBRAFT_CHECK(cluster.AwaitLeader()) << "no leader during bootstrap";
  cluster.StartClients();
  cluster.RunFor(run_time);

  // Kill leader and every client at the same instant (Sec. V-G).
  const int dead_leader = cluster.CrashLeader();
  cluster.StopAllClients();

  LossResult out;
  out.requests_issued = cluster.TotalRequestsIssued();

  // Wait for a new leader among the survivors.
  const SimTime deadline = cluster.sim()->Now() + settle;
  raft::RaftNode* new_leader = nullptr;
  while (cluster.sim()->Now() < deadline) {
    cluster.RunFor(Millis(50));
    new_leader = cluster.leader();
    if (new_leader != nullptr &&
        new_leader->id() != dead_leader) {
      break;
    }
  }
  if (new_leader == nullptr) {
    out.new_leader_elected = false;
    return out;
  }
  out.new_leader_elected = true;
  // Give in-flight deliveries a moment to drain, then count survivors.
  cluster.RunFor(Millis(200));

  int leader_index = -1;
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    if (cluster.node(i) == new_leader) leader_index = i;
  }
  NBRAFT_CHECK_GE(leader_index, 0);
  out.requests_survived = cluster.CountUniqueRequestsInLog(leader_index);
  if (out.requests_issued > 0) {
    const uint64_t survived =
        std::min(out.requests_survived, out.requests_issued);
    out.loss_fraction =
        1.0 - static_cast<double>(survived) /
                  static_cast<double>(out.requests_issued);
  }
  return out;
}

std::string FormatRow(const std::string& label, double x,
                      const ThroughputResult& r) {
  // Client-visible latency is the unblock latency: under NB-Raft the call
  // returns at WEAK_ACCEPT (Sec. III-B2); under Raft the two coincide.
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-16s %8.0f | %9.2f kop/s | latency %8.2f ms",
                label.c_str(), x, r.throughput_kops, r.unblock_latency_ms);
  return buf;
}

}  // namespace nbraft::harness
