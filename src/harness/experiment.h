#ifndef NBRAFT_HARNESS_EXPERIMENT_H_
#define NBRAFT_HARNESS_EXPERIMENT_H_

#include <string>
#include <vector>

#include "harness/cluster.h"

namespace nbraft::harness {

/// Result of one steady-state throughput run (one point in Figs. 14-18,
/// 20-23).
struct ThroughputResult {
  double throughput_kops = 0.0;   ///< Completed requests / s / 1000.
  double mean_latency_ms = 0.0;   ///< Issue -> STRONG_ACCEPT.
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double unblock_latency_ms = 0.0;  ///< Issue -> first response (mean).
  double weak_ratio = 0.0;        ///< Weak accepts per completed request.
  double wait_mean_us = 0.0;      ///< Mean t_wait(F).
  metrics::Breakdown breakdown;
  ClusterStats raw;
};

/// Runs warm-up then a measured window and reports steady-state metrics.
ThroughputResult RunThroughputExperiment(const ClusterConfig& config,
                                         SimDuration warmup,
                                         SimDuration measure);

/// Result of one persistence-loss run (Fig. 19).
struct LossResult {
  uint64_t requests_issued = 0;    ///< Distinct ids clients sent.
  uint64_t requests_survived = 0;  ///< Distinct ids in the new leader's log.
  double loss_fraction = 0.0;      ///< 1 - survived/issued.
  bool new_leader_elected = false;
};

/// Ingests for `run_time`, then kills the leader and all clients
/// simultaneously (Sec. V-G), waits for a new leader, and counts how many
/// issued requests survive in the new leader's log.
LossResult RunLossExperiment(const ClusterConfig& config, SimDuration run_time,
                             SimDuration settle = Seconds(8));

/// Formats a throughput table row used by the figure benchmarks.
std::string FormatRow(const std::string& label, double x,
                      const ThroughputResult& r);

}  // namespace nbraft::harness

#endif  // NBRAFT_HARNESS_EXPERIMENT_H_
