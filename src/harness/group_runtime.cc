#include "harness/group_runtime.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/logging.h"
#include "tsdb/state_machine.h"

namespace nbraft::harness {

namespace {

std::unique_ptr<tsdb::StateMachine> MakeStateMachine(SystemProfile profile) {
  if (profile == SystemProfile::kRatis) {
    return std::make_unique<tsdb::FileStoreStateMachine>();
  }
  tsdb::TsdbStateMachine::Options options;
  return std::make_unique<tsdb::TsdbStateMachine>(options);
}

}  // namespace

GroupRuntime::GroupRuntime(Substrate* substrate, const ClusterConfig& config,
                           int group, const raft::RaftOptions& base_options,
                           const raft::RaftClient::Options& client_options,
                           const ShardMap& shard_map)
    : substrate_(substrate),
      group_(group),
      initial_voters_(config.initial_voters) {
  const int N = config.num_nodes;
  for (int r = 0; r < N; ++r) {
    server_ids_.push_back(ReplicaEndpoint(group_, N, r));
  }
  // Group 0's endpoints equal the host ids; every other group binds its
  // endpoints onto the same hosts, so co-resident replicas share NIC
  // serialization, latency topology and partition/crash state.
  if (group_ > 0) {
    for (int r = 0; r < N; ++r) {
      substrate_->network()->BindEndpoint(server_ids_[static_cast<size_t>(r)],
                                          r);
    }
  }

  // Elastic mode: every replica bootstraps the same initial voter roster
  // (the first `initial_voters` hosts); later hosts join as learners via
  // Cluster::AddNode. Empty (the default) keeps membership dormant.
  std::string initial_config;
  if (initial_voters_ > 0) {
    raft::Configuration cfg;
    const int voters = std::min(initial_voters_, N);
    for (int r = 0; r < voters; ++r) {
      cfg.voters.push_back(server_ids_[static_cast<size_t>(r)]);
    }
    initial_config = cfg.Encode();
  }

  for (int r = 0; r < N; ++r) {
    std::vector<net::NodeId> peers;
    for (int j = 0; j < N; ++j) {
      if (j != r) peers.push_back(server_ids_[static_cast<size_t>(j)]);
    }
    raft::RaftOptions options = base_options;
    options.group_id = group_;
    options.membership.initial_config = initial_config;
    options.shared_cpu = substrate_->host_cpu(r);
    options.disk.shared_io_lane = substrate_->host_io_lane(r);
    auto node = std::make_unique<raft::RaftNode>(
        substrate_->sim(), substrate_->network(),
        server_ids_[static_cast<size_t>(r)], std::move(peers), options,
        MakeStateMachine(config.profile));
    node->stats().group = group_;
    node->stats().replica = r;
    // A shared host pool already carries the speed factor (the substrate
    // applies it once per host); a replica-owned pool gets it here.
    if (config.cpu_speed != 1.0 && options.shared_cpu == nullptr) {
      node->cpu()->set_speed_factor(config.cpu_speed);
    }
    nodes_.push_back(std::move(node));
  }

  const bool sharded = shard_map.num_groups() > 1;
  std::vector<uint64_t> group_series;
  if (sharded) {
    group_series = shard_map.SeriesForGroup(group_, config.workload.series_count);
  }
  for (int i = 0; i < config.num_clients; ++i) {
    IngestWorkload::Options wopts = config.workload;
    if (sharded) wopts.series_ids = group_series;
    // The workload seed counts clients across the whole cluster so no two
    // clients anywhere draw the same stream; for group 0 this reduces to
    // the historical seed * K + i.
    const uint64_t ordinal =
        static_cast<uint64_t>(group_) * static_cast<uint64_t>(config.num_clients) +
        static_cast<uint64_t>(i);
    workloads_.push_back(std::make_unique<IngestWorkload>(
        wopts, config.seed * 1315423911ULL + ordinal));
    IngestWorkload* workload = workloads_.back().get();
    clients_.push_back(std::make_unique<raft::RaftClient>(
        substrate_->sim(), substrate_->network(),
        ClientEndpoint(group_, config.num_clients, i), server_ids_,
        client_options,
        [workload](size_t target) { return workload->MakePayload(target); }));
  }
}

raft::RaftNode* GroupRuntime::leader() {
  raft::RaftNode* best = nullptr;
  for (auto& node : nodes_) {
    if (node->crashed() || node->role() != raft::Role::kLeader) continue;
    if (best == nullptr || node->current_term() > best->current_term()) {
      best = node.get();
    }
  }
  return best;
}

int GroupRuntime::ReplicaOf(net::NodeId endpoint) const {
  for (size_t r = 0; r < server_ids_.size(); ++r) {
    if (server_ids_[r] == endpoint) return static_cast<int>(r);
  }
  return -1;
}

int GroupRuntime::initial_started() const {
  if (initial_voters_ <= 0) return num_nodes();
  return std::min(initial_voters_, num_nodes());
}

bool GroupRuntime::StartReplica(int r) {
  raft::RaftNode* node = nodes_[static_cast<size_t>(r)].get();
  if (node->started()) return false;
  node->Start();
  return true;
}

void GroupRuntime::StartNodes() {
  const int start = initial_started();
  for (int r = 0; r < start; ++r) nodes_[static_cast<size_t>(r)]->Start();
}

void GroupRuntime::StartClients() {
  for (auto& client : clients_) client->Start();
}

void GroupRuntime::StopClients() {
  for (auto& client : clients_) client->Stop();
}

void GroupRuntime::ResetMeasurement() {
  for (auto& client : clients_) client->ResetMeasurement();
}

ClusterStats GroupRuntime::Collect() const {
  ClusterStats out;
  for (const auto& client : clients_) {
    const raft::ClientStats& cs = client->stats();
    out.requests_issued += cs.requests_issued;
    out.requests_completed += cs.requests_completed;
    out.weak_accepts += cs.weak_accepts;
    out.client_retries += cs.retries;
    out.completion_latency.Merge(cs.completion_latency);
    out.unblock_latency.Merge(cs.unblock_latency);
    out.breakdown.Add(metrics::Phase::kGenClient, cs.gen_time_total);
  }
  for (const auto& node : nodes_) {
    const raft::NodeStats& ns = node->stats();
    out.follower_wait.Merge(ns.wait_hist);
    out.breakdown.Merge(ns.breakdown);
    out.elections += ns.elections_started;
    out.rpc_timeouts += ns.rpc_timeouts;
    out.window_inserts += ns.window_inserts;
    out.degraded_entries += ns.degraded_entries;
    if (node->role() == raft::Role::kLeader && !node->crashed()) {
      out.entries_committed_leader = ns.entries_committed;
    }
  }
  return out;
}

std::string GroupRuntime::NodeStatsJson() const {
  std::string out = "{";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"node" + std::to_string(i) + "\":";
    out += nodes_[i]->stats().ToJson();
  }
  out += "}";
  return out;
}

Status GroupRuntime::CheckLogMatching() const {
  for (size_t a = 0; a < nodes_.size(); ++a) {
    for (size_t b = a + 1; b < nodes_.size(); ++b) {
      const auto& la = nodes_[a]->log();
      const auto& lb = nodes_[b]->log();
      const storage::LogIndex last =
          std::min(la.LastIndex(), lb.LastIndex());
      const storage::LogIndex first =
          std::max(la.FirstIndex(), lb.FirstIndex());
      // Find the highest shared (index, term) point.
      storage::LogIndex match = 0;
      for (storage::LogIndex i = last; i >= first; --i) {
        if (la.AtUnchecked(i).term == lb.AtUnchecked(i).term) {
          match = i;
          break;
        }
      }
      // Everything at or below the match point must agree.
      for (storage::LogIndex i = first; i <= match; ++i) {
        const auto& ea = la.AtUnchecked(i);
        const auto& eb = lb.AtUnchecked(i);
        if (ea.term != eb.term || ea.request_id != eb.request_id) {
          return Status::Corruption(
              (group_ > 0 ? "group " + std::to_string(group_) + ": " : "") +
              "log matching violated at index " + std::to_string(i) +
              " between nodes " + std::to_string(a) + " and " +
              std::to_string(b));
        }
      }
    }
  }
  return Status::Ok();
}

Status GroupRuntime::CheckCommittedPrefixes() const {
  // State Machine Safety: two nodes may only disagree above the commit
  // point of at least one of them (an uncommitted conflicting tail on a
  // stale follower is legal; a committed divergence is not).
  for (size_t a = 0; a < nodes_.size(); ++a) {
    const auto& la = nodes_[a]->log();
    for (size_t b = a + 1; b < nodes_.size(); ++b) {
      const auto& lb = nodes_[b]->log();
      const storage::LogIndex upto = std::min(
          {nodes_[a]->commit_index(), nodes_[b]->commit_index(),
           la.LastIndex(), lb.LastIndex()});
      for (storage::LogIndex i = std::max(la.FirstIndex(), lb.FirstIndex());
           i <= upto; ++i) {
        const auto& ea = la.AtUnchecked(i);
        const auto& eb = lb.AtUnchecked(i);
        if (ea.term != eb.term || ea.request_id != eb.request_id) {
          return Status::Corruption(
              (group_ > 0 ? "group " + std::to_string(group_) + ": " : "") +
              "committed entries diverge at index " + std::to_string(i));
        }
      }
    }
  }
  return Status::Ok();
}

uint64_t GroupRuntime::CountUniqueRequestsInLog(int replica) const {
  const auto& log = nodes_[static_cast<size_t>(replica)]->log();
  std::set<uint64_t> ids;
  for (storage::LogIndex i = log.FirstIndex(); i <= log.LastIndex(); ++i) {
    const auto& e = log.AtUnchecked(i);
    if (e.client_id != net::kInvalidNode &&
        e.client_id != raft::kConfigClientId) {
      ids.insert(e.request_id);
    }
  }
  return ids.size();
}

uint64_t GroupRuntime::TotalRequestsIssued() const {
  uint64_t total = 0;
  for (const auto& client : clients_) {
    total += client->requests_issued_total();
  }
  return total;
}

}  // namespace nbraft::harness
