#ifndef NBRAFT_HARNESS_GROUP_RUNTIME_H_
#define NBRAFT_HARNESS_GROUP_RUNTIME_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "harness/cluster_types.h"
#include "harness/shard_map.h"
#include "harness/substrate.h"
#include "raft/raft_client.h"
#include "raft/raft_node.h"

namespace nbraft::harness {

/// Endpoint id of group `group`'s replica `replica` in a cluster of
/// `num_nodes` physical hosts. Group 0's endpoints equal the host ids, so
/// a single-group cluster needs no endpoint binding at all.
inline net::NodeId ReplicaEndpoint(int group, int num_nodes, int replica) {
  return group * num_nodes + replica;
}

/// Endpoint id of group `group`'s client `i` (`num_clients` per group).
inline net::NodeId ClientEndpoint(int group, int num_clients, int i) {
  return net::kClientIdBase + group * num_clients + i;
}

/// One consensus group living on a shared Substrate: N replicas (bound
/// onto the N physical hosts), its closed-loop clients, and per-group
/// stats/invariant surface. The Cluster facade owns one of these per
/// group; all cross-group interference happens below, in the substrate's
/// shared NICs, CPU pools and disk lanes.
class GroupRuntime {
 public:
  /// Constructs the group's replicas then clients (in that order — the
  /// rng draw order at construction is part of the determinism contract).
  /// In a sharded cluster (shard_map.num_groups() > 1) the clients ingest
  /// exactly the series the ShardMap hashes to this group.
  GroupRuntime(Substrate* substrate, const ClusterConfig& config, int group,
               const raft::RaftOptions& base_options,
               const raft::RaftClient::Options& client_options,
               const ShardMap& shard_map);

  GroupRuntime(const GroupRuntime&) = delete;
  GroupRuntime& operator=(const GroupRuntime&) = delete;

  int group() const { return group_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_clients() const { return static_cast<int>(clients_.size()); }

  raft::RaftNode* node(int replica) {
    return nodes_[static_cast<size_t>(replica)].get();
  }
  const raft::RaftNode* node(int replica) const {
    return nodes_[static_cast<size_t>(replica)].get();
  }
  raft::RaftClient* client(int i) {
    return clients_[static_cast<size_t>(i)].get();
  }
  const raft::RaftClient* client(int i) const {
    return clients_[static_cast<size_t>(i)].get();
  }

  /// Current leader among this group's non-crashed replicas (highest term
  /// wins), or nullptr.
  raft::RaftNode* leader();

  /// Replica ordinal of a leader endpoint of this group, or -1.
  int ReplicaOf(net::NodeId endpoint) const;

  /// Endpoint id of replica `r` (this group's slice of the id space).
  net::NodeId Endpoint(int r) const {
    return server_ids_[static_cast<size_t>(r)];
  }

  /// Replicas started by StartNodes(): all of them in fixed-roster mode,
  /// the first `initial_voters` with elastic membership (the rest wait
  /// for Cluster::AddNode).
  int initial_started() const;

  /// Starts replica `r` if it is not running yet (elastic scale-out).
  /// Returns false when it was already started.
  bool StartReplica(int r);

  void StartNodes();
  void StartClients();
  void StopClients();
  void ResetMeasurement();

  /// This group's aggregated client + node metrics.
  ClusterStats Collect() const;

  /// Per-replica counters as one JSON object keyed "node0".."nodeN".
  std::string NodeStatsJson() const;

  // ---- Invariant checks (group-scoped) ----
  Status CheckLogMatching() const;
  Status CheckCommittedPrefixes() const;
  uint64_t CountUniqueRequestsInLog(int replica) const;
  uint64_t TotalRequestsIssued() const;

 private:
  Substrate* substrate_;
  const int group_;
  /// ClusterConfig::initial_voters (0 = fixed roster, start everything).
  const int initial_voters_;
  std::vector<net::NodeId> server_ids_;
  std::vector<std::unique_ptr<raft::RaftNode>> nodes_;
  std::vector<std::unique_ptr<raft::RaftClient>> clients_;
  std::vector<std::unique_ptr<IngestWorkload>> workloads_;
};

}  // namespace nbraft::harness

#endif  // NBRAFT_HARNESS_GROUP_RUNTIME_H_
