#include "harness/shard_map.h"

#include "common/hash.h"
#include "common/logging.h"

namespace nbraft::harness {

ShardMap::ShardMap(int num_groups, uint64_t salt)
    : num_groups_(num_groups), salt_(salt) {
  NBRAFT_CHECK_GE(num_groups_, 1);
}

int ShardMap::GroupForKey(std::string_view key) const {
  if (num_groups_ == 1) return 0;
  const uint64_t h = Fnv1a64(key) ^ salt_;
  return static_cast<int>(h % static_cast<uint64_t>(num_groups_));
}

int ShardMap::GroupForSeries(uint64_t series_id) const {
  if (num_groups_ == 1) return 0;
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>((series_id >> (i * 8)) & 0xff);
  }
  const uint64_t h = Fnv1a64(std::string_view(bytes, sizeof(bytes))) ^ salt_;
  return static_cast<int>(h % static_cast<uint64_t>(num_groups_));
}

std::vector<uint64_t> ShardMap::SeriesForGroup(int group,
                                               uint64_t series_count) const {
  std::vector<uint64_t> shard;
  for (uint64_t s = 0; s < series_count; ++s) {
    if (GroupForSeries(s) == group) shard.push_back(s);
  }
  if (shard.empty() && series_count > 0) {
    // Degenerate universe (fewer series than hash luck provides): fall
    // back to round-robin so the group still has something to ingest.
    shard.push_back(static_cast<uint64_t>(group) % series_count);
  }
  return shard;
}

}  // namespace nbraft::harness
