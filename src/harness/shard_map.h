#ifndef NBRAFT_HARNESS_SHARD_MAP_H_
#define NBRAFT_HARNESS_SHARD_MAP_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace nbraft::harness {

/// Static series/key -> consensus-group placement for a multi-Raft
/// cluster: FNV-1a over the key (salted, so two clusters can shard the
/// same universe differently), reduced modulo the group count. The map is
/// pure and stateless — two processes with the same (num_groups, salt)
/// agree on every placement, which is what lets routers, benches and tests
/// compute shard membership independently. Hash stability is pinned by
/// shard_router_test: changing the function is a data-placement migration,
/// not a refactor.
class ShardMap {
 public:
  explicit ShardMap(int num_groups, uint64_t salt = 0);

  int num_groups() const { return num_groups_; }
  uint64_t salt() const { return salt_; }

  /// Group owning an opaque string key.
  int GroupForKey(std::string_view key) const;

  /// Group owning a time-series id (hashes the 8 little-endian bytes, so
  /// dense integer ids still spread evenly).
  int GroupForSeries(uint64_t series_id) const;

  /// The shard of [0, series_count): every series id this group owns, in
  /// ascending order. Guaranteed non-empty (a degenerate universe smaller
  /// than the group count falls back to round-robin so each group still
  /// has a workload to ingest).
  std::vector<uint64_t> SeriesForGroup(int group,
                                       uint64_t series_count) const;

  /// Round-robin bootstrap placement: the replica ordinal that stands for
  /// the group's first election, spreading initial leaders across the
  /// physical nodes instead of piling them all on node 0.
  int BootstrapLeaderReplica(int group, int num_replicas) const {
    return num_replicas > 0 ? group % num_replicas : 0;
  }

 private:
  int num_groups_;
  uint64_t salt_;
};

}  // namespace nbraft::harness

#endif  // NBRAFT_HARNESS_SHARD_MAP_H_
