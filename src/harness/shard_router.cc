#include "harness/shard_router.h"

#include <algorithm>

#include "common/logging.h"

namespace nbraft::harness {

ShardRouter::ShardRouter(const ShardMap* map)
    : map_(map),
      hints_(static_cast<size_t>(map->num_groups())) {}

net::NodeId ShardRouter::LeaderHint(int group) const {
  return hints_[static_cast<size_t>(group)].leader;
}

storage::Term ShardRouter::LeaderHintTerm(int group) const {
  return hints_[static_cast<size_t>(group)].term;
}

void ShardRouter::ObserveLeader(int group, net::NodeId leader,
                                storage::Term term) {
  Hint& hint = hints_[static_cast<size_t>(group)];
  if (term < hint.term) {
    // A delayed notification from a past term, arriving after a newer
    // observation (or after an invalidation that kept the watermark).
    ++stale_observations_;
    return;
  }
  hint.leader = leader;
  hint.term = term;
  ++hints_installed_;
}

void ShardRouter::InvalidateLeader(int group) {
  Hint& hint = hints_[static_cast<size_t>(group)];
  if (hint.leader == net::kInvalidNode) return;
  // Keep the term watermark: a stale re-observation of the deposed leader
  // (same term) must not resurrect the hint, only a newer election may.
  hint.leader = net::kInvalidNode;
  ++hints_invalidated_;
}

void ShardRouter::InvalidateIfLeaderIs(int group, net::NodeId node) {
  if (node == net::kInvalidNode) return;
  if (hints_[static_cast<size_t>(group)].leader != node) return;
  InvalidateLeader(group);
}

std::vector<ShardRouter::Move> ShardRouter::PlanRebalance(
    const std::vector<int>& leader_node, int num_nodes) {
  std::vector<Move> moves;
  if (num_nodes <= 1) return moves;
  std::vector<int> load(static_cast<size_t>(num_nodes), 0);
  // Mutable copy: each planned move updates the placement it plans from.
  std::vector<int> placement = leader_node;
  for (int node : placement) {
    if (node >= 0 && node < num_nodes) ++load[static_cast<size_t>(node)];
  }
  for (;;) {
    const auto max_it = std::max_element(load.begin(), load.end());
    const auto min_it = std::min_element(load.begin(), load.end());
    if (*max_it - *min_it <= 1) break;
    const int from = static_cast<int>(max_it - load.begin());
    const int to = static_cast<int>(min_it - load.begin());
    // Lowest group id on the overloaded node moves — deterministic, and
    // re-planning the resulting placement finds nothing left to move.
    int group = -1;
    for (size_t g = 0; g < placement.size(); ++g) {
      if (placement[g] == from) {
        group = static_cast<int>(g);
        break;
      }
    }
    NBRAFT_CHECK_GE(group, 0);
    placement[static_cast<size_t>(group)] = to;
    --load[static_cast<size_t>(from)];
    ++load[static_cast<size_t>(to)];
    moves.push_back(Move{group, from, to});
  }
  return moves;
}

}  // namespace nbraft::harness
