#ifndef NBRAFT_HARNESS_SHARD_ROUTER_H_
#define NBRAFT_HARNESS_SHARD_ROUTER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "harness/shard_map.h"
#include "net/network.h"
#include "storage/log_entry.h"

namespace nbraft::harness {

/// Ingress-side request router for a multi-Raft cluster: resolves a key to
/// its consensus group via the ShardMap and caches a leader hint per group
/// so steady-state routing costs one hash and one array read — no
/// consensus round trip. Hints are term-ordered (an observation for an
/// older term than the cached one is stale and ignored) and invalidated on
/// deposition or crash of the hinted leader; a routed request that lands
/// on a non-leader falls back to the group's NotLeader redirect exactly as
/// a hintless request would.
///
/// The router also plans leader placement: PlanRebalance computes the
/// deterministic move list that spreads group leaders evenly across
/// physical nodes (round-robin bootstrap keeps them spread initially;
/// crashes pile them up over time).
class ShardRouter {
 public:
  /// One planned leadership move: `group`'s leader should migrate from
  /// physical node `from` to physical node `to`.
  struct Move {
    int group = -1;
    int from = -1;
    int to = -1;
  };

  explicit ShardRouter(const ShardMap* map);

  const ShardMap& shard_map() const { return *map_; }

  // ---- Routing ----
  int GroupForKey(std::string_view key) const {
    return map_->GroupForKey(key);
  }
  int GroupForSeries(uint64_t series_id) const {
    return map_->GroupForSeries(series_id);
  }

  /// Cached leader endpoint for `group`, or net::kInvalidNode when no
  /// valid hint is held (caller falls back to any replica + redirect).
  net::NodeId LeaderHint(int group) const;
  storage::Term LeaderHintTerm(int group) const;

  /// Resolves `key` to its group's hinted leader endpoint (kInvalidNode
  /// when the hint is cold).
  net::NodeId RouteKey(std::string_view key) const {
    return LeaderHint(GroupForKey(key));
  }

  /// Records a leader observation. Newer terms replace older hints;
  /// observations older than the cached term are stale (a delayed
  /// election notification arriving after a newer one) and are dropped.
  void ObserveLeader(int group, net::NodeId leader, storage::Term term);

  /// Drops the hint for `group` (deposition, crash of the hinted leader).
  /// Idempotent; the term watermark is kept so a stale re-observation of
  /// the deposed leader cannot resurrect the hint.
  void InvalidateLeader(int group);

  /// Drops the hint for `group` only when it currently points at `node` —
  /// the membership hook: a node leaving the configuration must stop
  /// receiving routed traffic, but a hint already pointing elsewhere is
  /// fresher than the removal and survives. Keeps the term watermark like
  /// InvalidateLeader.
  void InvalidateIfLeaderIs(int group, net::NodeId node);

  // ---- Leader placement ----

  /// Deterministic greedy balancing: given each group's current leader
  /// node (physical ordinal, -1 = unknown/skip), returns the moves that
  /// bring every node's leader count within one of every other's. Lowest
  /// group id moves first, lowest-index node receives first — so the plan
  /// is reproducible, and planning an already-balanced placement returns
  /// an empty list (idempotence, pinned by shard_router_test).
  static std::vector<Move> PlanRebalance(const std::vector<int>& leader_node,
                                         int num_nodes);

  // ---- Telemetry ----
  uint64_t hints_installed() const { return hints_installed_; }
  uint64_t hints_invalidated() const { return hints_invalidated_; }
  uint64_t stale_observations() const { return stale_observations_; }

 private:
  struct Hint {
    net::NodeId leader = net::kInvalidNode;
    storage::Term term = 0;
  };

  const ShardMap* map_;
  std::vector<Hint> hints_;  ///< Indexed by group.
  uint64_t hints_installed_ = 0;
  uint64_t hints_invalidated_ = 0;
  uint64_t stale_observations_ = 0;
};

}  // namespace nbraft::harness

#endif  // NBRAFT_HARNESS_SHARD_ROUTER_H_
