#include "harness/substrate.h"

#include <string>

#include "common/logging.h"

namespace nbraft::harness {

Substrate::Substrate(const Config& config) : config_(config) {
  sim_ = std::make_unique<sim::Simulator>(config_.seed);
  network_ = std::make_unique<net::SimNetwork>(sim_.get(), config_.network);

  // Log stamps follow virtual time for the duration of this substrate, so
  // NBRAFT_LOG output can be lined up with trace timestamps. The clock
  // hook is thread-local: a substrate created on a sweep worker thread
  // owns that thread's stamps without touching any other worker's.
  if (!HasLogClock()) {
    SetLogClock([sim = sim_.get()]() { return sim->Now(); });
    owns_log_clock_ = true;
  }

  if (config_.shared_pools) {
    for (int p = 0; p < config_.num_physical_nodes; ++p) {
      auto cpu = std::make_unique<sim::CpuExecutor>(
          sim_.get(), config_.cpu_lanes, "host" + std::to_string(p) + ".cpu");
      cpu->set_switch_cost(config_.costs.context_switch_cost,
                           config_.costs.max_switch_overhead);
      if (config_.cpu_speed != 1.0) cpu->set_speed_factor(config_.cpu_speed);
      host_cpus_.push_back(std::move(cpu));
      if (config_.disk_lanes) {
        host_io_lanes_.push_back(std::make_unique<sim::CpuExecutor>(
            sim_.get(), 1, "host" + std::to_string(p) + ".io"));
      }
    }
  }
}

Substrate::~Substrate() {
  if (owns_log_clock_) ClearLogClock();
}

}  // namespace nbraft::harness
