#ifndef NBRAFT_HARNESS_SUBSTRATE_H_
#define NBRAFT_HARNESS_SUBSTRATE_H_

#include <memory>
#include <vector>

#include "net/network.h"
#include "raft/types.h"
#include "sim/cpu_executor.h"
#include "sim/simulator.h"

namespace nbraft::harness {

/// The physical layer every consensus group shares: one deterministic
/// simulator, one network, and — in multi-group mode — one CPU pool and
/// one disk I/O lane per physical host. GroupRuntimes are tenants on top:
/// their replicas bind endpoints onto these hosts and submit work to
/// these pools, which is exactly how co-resident Raft groups interfere in
/// production (shared NIC serialization, shared cores, shared fsync lane).
///
/// In single-group mode no host pools are created and every replica owns
/// its resources, reproducing the pre-sharding cluster bit-identically —
/// the construction-time rng draw order (network, then nodes, then
/// clients) is part of the determinism contract.
class Substrate {
 public:
  struct Config {
    uint64_t seed = 42;
    net::NetworkConfig network;
    int num_physical_nodes = 3;
    /// Create per-host shared CPU pools (+ I/O lanes when disk_lanes):
    /// on in multi-group clusters, off in single-group ones.
    bool shared_pools = false;
    int cpu_lanes = 16;
    double cpu_speed = 1.0;
    /// Switch costs for the shared pools (same CostModel the replicas
    /// would use for their own pools).
    raft::CostModel costs;
    /// Also create one single-lane I/O executor per host, shared by every
    /// co-resident group's simulated disk. Only meaningful with
    /// shared_pools.
    bool disk_lanes = false;
  };

  explicit Substrate(const Config& config);
  ~Substrate();

  Substrate(const Substrate&) = delete;
  Substrate& operator=(const Substrate&) = delete;

  sim::Simulator* sim() { return sim_.get(); }
  const sim::Simulator* sim() const { return sim_.get(); }
  net::SimNetwork* network() { return network_.get(); }
  int num_physical_nodes() const { return config_.num_physical_nodes; }

  /// Host `physical`'s shared CPU pool, or nullptr when each replica owns
  /// its own (single-group mode).
  sim::CpuExecutor* host_cpu(int physical) {
    return host_cpus_.empty() ? nullptr
                              : host_cpus_[static_cast<size_t>(physical)].get();
  }

  /// Host `physical`'s shared disk I/O lane, or nullptr when each disk
  /// owns its own.
  sim::CpuExecutor* host_io_lane(int physical) {
    return host_io_lanes_.empty()
               ? nullptr
               : host_io_lanes_[static_cast<size_t>(physical)].get();
  }

 private:
  Config config_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<net::SimNetwork> network_;
  /// Indexed by physical host; empty unless Config::shared_pools.
  std::vector<std::unique_ptr<sim::CpuExecutor>> host_cpus_;
  std::vector<std::unique_ptr<sim::CpuExecutor>> host_io_lanes_;
  bool owns_log_clock_ = false;
};

}  // namespace nbraft::harness

#endif  // NBRAFT_HARNESS_SUBSTRATE_H_
