#include "harness/workload.h"

#include <cmath>

namespace nbraft::harness {

IngestWorkload::IngestWorkload(Options options, uint64_t seed)
    : options_(std::move(options)),
      rng_(seed),
      clock_ms_(options_.start_timestamp_ms) {
  const uint64_t domain = options_.series_ids.empty()
                              ? options_.series_count
                              : options_.series_ids.size();
  if (options_.zipf_skew > 0.0) {
    zipf_ = std::make_unique<ZipfDistribution>(domain, options_.zipf_skew);
  }
}

std::string IngestWorkload::MakePayload(size_t target_size) {
  ++requests_;
  std::vector<tsdb::Measurement> batch;
  batch.reserve(static_cast<size_t>(options_.measurements_per_request));
  for (int i = 0; i < options_.measurements_per_request; ++i) {
    tsdb::Measurement m;
    const uint64_t domain = options_.series_ids.empty()
                                ? options_.series_count
                                : options_.series_ids.size();
    const uint64_t ordinal =
        zipf_ != nullptr ? zipf_->Sample(&rng_) : rng_.NextBounded(domain);
    m.series_id = options_.series_ids.empty() ? ordinal
                                              : options_.series_ids[ordinal];
    // Mild timestamp jitter around the sampling interval, as real devices
    // exhibit (cf. the paper's imputation discussion in Sec. IV).
    m.point.timestamp =
        clock_ms_ + static_cast<int64_t>(rng_.NextBounded(
                        static_cast<uint64_t>(options_.sampling_interval_ms)));
    m.point.value = 20.0 + 5.0 * std::sin(static_cast<double>(requests_) /
                                          100.0) +
                    rng_.NextGaussian(0.0, 0.25);
    batch.push_back(m);
  }
  clock_ms_ += options_.sampling_interval_ms;

  std::string payload;
  tsdb::EncodeIngestBatch(batch, target_size, &payload);
  return payload;
}

}  // namespace nbraft::harness
