#ifndef NBRAFT_HARNESS_WORKLOAD_H_
#define NBRAFT_HARNESS_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "tsdb/ingest_record.h"

namespace nbraft::harness {

/// TPCx-IoT-style ingestion workload: each request is a batch of sensor
/// measurements for a fleet of devices/series, padded to the experiment's
/// payload size. Timestamps advance at a fixed sampling interval with small
/// jitter; series popularity can be skewed (Zipf) as in real IoT fleets.
class IngestWorkload {
 public:
  struct Options {
    uint64_t series_count = 1000;
    int64_t start_timestamp_ms = 1'600'000'000'000;
    int64_t sampling_interval_ms = 1000;  ///< ~1 Hz sensors (paper Sec. V-G).
    double zipf_skew = 0.0;               ///< 0 = uniform series popularity.
    int measurements_per_request = 16;
    /// Explicit series universe: when non-empty, the sampled ordinal
    /// indexes into this vector instead of [0, series_count). Multi-Raft
    /// sharding uses it to hand each consensus group exactly the series
    /// the ShardMap hashes to it. Empty (the default) generates over
    /// [0, series_count) with draws identical to the pre-sharding code.
    std::vector<uint64_t> series_ids;
  };

  IngestWorkload(Options options, uint64_t seed);

  /// Builds one request payload of at least `target_size` bytes.
  std::string MakePayload(size_t target_size);

  uint64_t requests_generated() const { return requests_; }

 private:
  Options options_;
  nbraft::Rng rng_;
  std::unique_ptr<ZipfDistribution> zipf_;
  int64_t clock_ms_;
  uint64_t requests_ = 0;
};

}  // namespace nbraft::harness

#endif  // NBRAFT_HARNESS_WORKLOAD_H_
