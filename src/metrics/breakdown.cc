#include "metrics/breakdown.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

namespace nbraft::metrics {

std::string_view PhaseNotation(Phase phase) {
  switch (phase) {
    case Phase::kGenClient:
      return "t_gen(C)";
    case Phase::kTransClientLeader:
      return "t_trans(CL)";
    case Phase::kParse:
      return "t_prs(L)";
    case Phase::kIndex:
      return "t_idx(L)";
    case Phase::kQueue:
      return "t_queue(L)";
    case Phase::kTransLeaderFollower:
      return "t_trans(LF)";
    case Phase::kWaitFollower:
      return "t_wait(F)";
    case Phase::kAppendFollower:
      return "t_append(F)";
    case Phase::kAck:
      return "t_ack(L)";
    case Phase::kCommit:
      return "t_commit(L)";
    case Phase::kApply:
      return "t_apply(L)";
    case Phase::kFsync:
      return "t_fsync(D)";
    case Phase::kNumPhases:
      break;
  }
  return "?";
}

std::string_view PhaseDescription(Phase phase) {
  switch (phase) {
    case Phase::kGenClient:
      return "Time to generate a request by a client";
    case Phase::kTransClientLeader:
      return "Time to send an entry from the client to the leader";
    case Phase::kParse:
      return "Time to convert a binary string into a meaningful request";
    case Phase::kIndex:
      return "Time to assign a term and an index to an entry by the leader";
    case Phase::kQueue:
      return "Time after being indexed and before being sent to a follower";
    case Phase::kTransLeaderFollower:
      return "Time to send an entry from the leader to a follower";
    case Phase::kWaitFollower:
      return "Time from receiving an entry to being appendable in a follower";
    case Phase::kAppendFollower:
      return "Time to append an entry in a follower";
    case Phase::kAck:
      return "Time to collect responses for an entry";
    case Phase::kCommit:
      return "Time to mark an entry as committed by the leader";
    case Phase::kApply:
      return "Time to execute the command in an entry";
    case Phase::kFsync:
      return "Time an acknowledgement waits for its covering disk fsync";
    case Phase::kNumPhases:
      break;
  }
  return "?";
}

SimDuration Breakdown::GrandTotal() const {
  return std::accumulate(total_.begin(), total_.end(), SimDuration{0});
}

double Breakdown::Proportion(Phase phase) const {
  const SimDuration grand = GrandTotal();
  if (grand == 0) return 0.0;
  return static_cast<double>(total(phase)) / static_cast<double>(grand);
}

void Breakdown::Merge(const Breakdown& other) {
  for (int i = 0; i < kNumPhases; ++i) total_[i] += other.total_[i];
}

std::string Breakdown::ToTable() const {
  std::vector<int> order(kNumPhases);
  for (int i = 0; i < kNumPhases; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [this](int a, int b) { return total_[a] > total_[b]; });

  std::string out;
  char line[160];
  for (int i : order) {
    const auto phase = static_cast<Phase>(i);
    std::snprintf(line, sizeof(line), "  %-12s %6.2f%%  (%s)\n",
                  std::string(PhaseNotation(phase)).c_str(),
                  Proportion(phase) * 100.0,
                  std::string(PhaseDescription(phase)).c_str());
    out += line;
  }
  return out;
}

std::string Breakdown::ToJson() const {
  std::string out = "{";
  char item[96];
  for (int i = 0; i < kNumPhases; ++i) {
    const auto phase = static_cast<Phase>(i);
    std::snprintf(item, sizeof(item), "\"%s\":%lld,",
                  std::string(PhaseNotation(phase)).c_str(),
                  static_cast<long long>(total(phase)));
    out += item;
  }
  std::snprintf(item, sizeof(item), "\"grand_total\":%lld}",
                static_cast<long long>(GrandTotal()));
  out += item;
  return out;
}

}  // namespace nbraft::metrics
