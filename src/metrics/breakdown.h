#ifndef NBRAFT_METRICS_BREAKDOWN_H_
#define NBRAFT_METRICS_BREAKDOWN_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/sim_time.h"

namespace nbraft::metrics {

/// The per-phase cost taxonomy of the paper's Section II / Table I.
/// Each replicated entry contributes time to these phases; the Fig. 4
/// benchmark prints their proportions.
enum class Phase : int {
  kGenClient = 0,   ///< t_gen(C): client generates a request.
  kTransClientLeader,  ///< t_trans(CL): client -> leader network.
  kParse,           ///< t_prs(L): leader parses the binary request.
  kIndex,           ///< t_idx(L): leader assigns term/index, local append.
  kQueue,           ///< t_queue(L): waiting in a dispatcher queue.
  kTransLeaderFollower,  ///< t_trans(LF): leader -> follower network.
  kWaitFollower,    ///< t_wait(F): received but not yet appendable.
  kAppendFollower,  ///< t_append(F): follower appends the entry.
  kAck,             ///< t_ack(L): first append -> quorum appended.
  kCommit,          ///< t_commit(L): leader marks committed.
  kApply,           ///< t_apply(L): state machine executes the command.
  kFsync,           ///< t_fsync(D): durable-log fsync covering the entry.
  kNumPhases,
};

constexpr int kNumPhases = static_cast<int>(Phase::kNumPhases);

/// Paper notation for a phase, e.g. "t_wait(F)".
std::string_view PhaseNotation(Phase phase);

/// Short description from Table I.
std::string_view PhaseDescription(Phase phase);

/// Accumulates total time per phase across all entries of a run.
class Breakdown {
 public:
  Breakdown() { total_.fill(0); }

  void Add(Phase phase, SimDuration d) {
    if (d < 0) d = 0;
    total_[static_cast<int>(phase)] += d;
  }

  SimDuration total(Phase phase) const {
    return total_[static_cast<int>(phase)];
  }

  /// Sum over all phases.
  SimDuration GrandTotal() const;

  /// Fraction of the grand total spent in `phase`, in [0,1].
  double Proportion(Phase phase) const;

  void Merge(const Breakdown& other);
  void Reset() { total_.fill(0); }

  /// Multi-line table of phase proportions, largest first (Fig. 4 style).
  std::string ToTable() const;

  /// JSON object keyed by paper notation, values in nanoseconds, e.g.
  /// {"t_gen(C)":1234,...,"grand_total":56789}. Zero phases included so the
  /// key set is stable across runs.
  std::string ToJson() const;

 private:
  std::array<SimDuration, kNumPhases> total_;
};

}  // namespace nbraft::metrics

#endif  // NBRAFT_METRICS_BREAKDOWN_H_
