#include "metrics/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "common/logging.h"
#include "common/sim_time.h"

namespace nbraft::metrics {

Histogram::Histogram() { Reset(); }

void Histogram::Reset() {
  buckets_.assign(64 * kSubBuckets, 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

int Histogram::BucketFor(int64_t value) {
  if (value < 0) value = 0;
  const uint64_t v = static_cast<uint64_t>(value);
  if (v < kSubBuckets) return static_cast<int>(v);
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - kSubBucketBits;  // v >> shift is in [16, 31].
  const int sub = static_cast<int>(v >> shift) - kSubBuckets;
  return (shift + 1) * kSubBuckets + sub;
}

int64_t Histogram::BucketLowerBound(int bucket) {
  if (bucket < kSubBuckets) return bucket;
  const int shift = bucket / kSubBuckets - 1;
  const int sub = bucket % kSubBuckets;
  return (static_cast<int64_t>(kSubBuckets + sub)) << shift;
}

void Histogram::Record(int64_t value) { RecordMany(value, 1); }

void Histogram::RecordMany(int64_t value, uint64_t count) {
  if (count == 0) return;
  if (value < 0) value = 0;
  const int b = BucketFor(value);
  NBRAFT_CHECK_LT(static_cast<size_t>(b), buckets_.size());
  buckets_[b] += count;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  count_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

int64_t Histogram::min() const { return count_ == 0 ? 0 : min_; }

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

int64_t Histogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target =
      static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::min(BucketLowerBound(static_cast<int>(i)), max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "n=%llu mean=%s p50=%s p95=%s p99=%s max=%s",
                static_cast<unsigned long long>(count_),
                FormatDuration(static_cast<int64_t>(Mean())).c_str(),
                FormatDuration(P50()).c_str(), FormatDuration(P95()).c_str(),
                FormatDuration(P99()).c_str(),
                FormatDuration(max()).c_str());
  return buf;
}

std::string Histogram::ToJson() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "{\"count\":%llu,\"min\":%lld,\"max\":%lld,\"mean\":%.1f,"
      "\"p50\":%lld,\"p95\":%lld,\"p99\":%lld}",
      static_cast<unsigned long long>(count_),
      static_cast<long long>(min()), static_cast<long long>(max_), Mean(),
      static_cast<long long>(P50()), static_cast<long long>(P95()),
      static_cast<long long>(P99()));
  return buf;
}

}  // namespace nbraft::metrics
