#ifndef NBRAFT_METRICS_HISTOGRAM_H_
#define NBRAFT_METRICS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace nbraft::metrics {

/// Log-bucketed histogram for non-negative 64-bit values (latencies in
/// nanoseconds, sizes in bytes). Values are bucketed with ~4.3% relative
/// error (16 sub-buckets per power of two), which is plenty for the
/// percentile reporting the benchmarks do.
///
/// Records are O(1); percentile queries are O(#buckets). Not thread-safe
/// (the simulator is single-threaded).
class Histogram {
 public:
  Histogram();

  /// Records one observation. Negative values are clamped to zero.
  void Record(int64_t value);

  /// Records `count` observations of the same value.
  void RecordMany(int64_t value, uint64_t count);

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  int64_t min() const;
  int64_t max() const { return max_; }
  double Mean() const;
  double Sum() const { return sum_; }

  /// Value at quantile q in [0, 1]; e.g. ValueAtQuantile(0.99) is p99.
  /// Returns 0 for an empty histogram.
  int64_t ValueAtQuantile(double q) const;

  int64_t P50() const { return ValueAtQuantile(0.50); }
  int64_t P95() const { return ValueAtQuantile(0.95); }
  int64_t P99() const { return ValueAtQuantile(0.99); }

  /// Resets to empty.
  void Reset();

  /// One-line summary, e.g. "n=1000 mean=1.2ms p50=1.0ms p99=4.1ms max=9ms".
  std::string Summary() const;

  /// Compact JSON object: {"count":...,"min":...,"max":...,"mean":...,
  /// "p50":...,"p95":...,"p99":...}. Durations stay in raw nanoseconds so
  /// downstream tooling doesn't have to parse unit suffixes.
  std::string ToJson() const;

 private:
  static constexpr int kSubBucketBits = 4;  // 16 sub-buckets per octave.
  static constexpr int kSubBuckets = 1 << kSubBucketBits;

  static int BucketFor(int64_t value);
  static int64_t BucketLowerBound(int bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace nbraft::metrics

#endif  // NBRAFT_METRICS_HISTOGRAM_H_
