#include "nbraft/sliding_window.h"

#include "common/logging.h"

namespace nbraft::raft {

SlidingWindow::SlidingWindow(int capacity) : capacity_(capacity) {
  NBRAFT_CHECK_GE(capacity, 0);
}

const storage::LogEntry& SlidingWindow::At(storage::LogIndex index) const {
  const auto it = entries_.find(index);
  NBRAFT_CHECK(it != entries_.end()) << "window miss at " << index;
  return it->second;
}

void SlidingWindow::Insert(const storage::LogEntry& entry) {
  // Predecessor continuity (Sec. III-A2a): remove a predecessor the new
  // entry does not chain to.
  const auto pred = entries_.find(entry.index - 1);
  if (pred != entries_.end() && pred->second.term != entry.prev_term) {
    entries_.erase(pred);
    if (observer_ != nullptr) {
      observer_->OnEvict(entry.index - 1, entries_.size());
    }
  }
  // Successor continuity: if the new entry is not the successor's previous
  // entry, the successor and everything after it are stale (Fig. 8).
  const auto succ = entries_.find(entry.index + 1);
  if (succ != entries_.end() && succ->second.prev_term != entry.term) {
    entries_.erase(succ, entries_.end());
    if (observer_ != nullptr) {
      observer_->OnEvict(entry.index + 1, entries_.size());
    }
  }
  entries_[entry.index] = entry;
  if (observer_ != nullptr) {
    observer_->OnInsert(entry.index, entries_.size());
  }
}

std::vector<storage::LogEntry> SlidingWindow::TakeFlushablePrefix(
    storage::LogIndex last_index, storage::Term last_term) {
  std::vector<storage::LogEntry> out;
  storage::LogIndex next = last_index + 1;
  storage::Term prev_term = last_term;
  for (auto it = entries_.find(next); it != entries_.end();
       it = entries_.find(next)) {
    if (it->second.prev_term != prev_term) break;
    prev_term = it->second.term;
    ++next;
    out.push_back(std::move(it->second));
    entries_.erase(it);
  }
  if (observer_ != nullptr && !out.empty()) {
    observer_->OnFlush(last_index + 1, out.size(), entries_.size());
  }
  return out;
}

void SlidingWindow::OnLogReshaped(storage::LogIndex new_last,
                                  storage::Term min_term) {
  const storage::LogIndex window_end = new_last + capacity_;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const storage::LogEntry& e = it->second;
    if (e.index <= new_last || e.index > window_end || e.term < min_term) {
      const storage::LogIndex evicted = e.index;
      it = entries_.erase(it);
      if (observer_ != nullptr) observer_->OnEvict(evicted, entries_.size());
    } else {
      ++it;
    }
  }
}

std::vector<storage::LogIndex> SlidingWindow::Indices() const {
  std::vector<storage::LogIndex> out;
  out.reserve(entries_.size());
  for (const auto& [index, entry] : entries_) out.push_back(index);
  return out;
}

}  // namespace nbraft::raft
