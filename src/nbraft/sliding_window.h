#ifndef NBRAFT_NBRAFT_SLIDING_WINDOW_H_
#define NBRAFT_NBRAFT_SLIDING_WINDOW_H_

#include <map>
#include <vector>

#include "storage/log_entry.h"

namespace nbraft::raft {

/// The follower-side cache of NB-Raft (paper Sec. III-A): out-of-order
/// entries that are received but not yet appendable are held here, in a
/// window covering indices (last_appended, last_appended + capacity].
///
/// Entries are keyed by absolute log index — the paper's "position j holds
/// index i + j" with i the last appended index. The window enforces the
/// continuity rules of Sec. III-A2a on insertion and hands back flushable
/// prefixes (Sec. III-A2b) when the head of the window becomes continuous
/// with the log.
///
/// The class is pure data structure (no I/O, no clock) so the unit tests can
/// replay the paper's Figs. 7, 8 and 9 literally.
class SlidingWindow {
 public:
  /// Observability hook: the tracing layer subscribes to the window's
  /// state transitions (insert / continuity eviction / flush) without the
  /// window needing a clock or a tracer of its own. Callbacks fire after
  /// the mutation, with the resulting occupancy.
  class Observer {
   public:
    virtual ~Observer() = default;
    virtual void OnInsert(storage::LogIndex index, size_t occupancy) = 0;
    virtual void OnEvict(storage::LogIndex index, size_t occupancy) = 0;
    virtual void OnFlush(storage::LogIndex first, size_t count,
                         size_t occupancy) = 0;
  };

  /// `capacity` is the paper's window size w; 0 degenerates to original
  /// Raft (nothing can ever be cached).
  explicit SlidingWindow(int capacity);

  /// nullptr detaches. The window does not own the observer.
  void set_observer(Observer* observer) { observer_ = observer; }

  int capacity() const { return capacity_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// True if an index is currently cached.
  bool Contains(storage::LogIndex index) const {
    return entries_.count(index) > 0;
  }

  /// Cached entry at `index`; requires Contains(index).
  const storage::LogEntry& At(storage::LogIndex index) const;

  /// Inserts `entry` (which the caller has checked to fall inside the
  /// window: last_appended + 1 < entry.index <= last_appended + capacity),
  /// applying the continuity rules:
  ///   * a predecessor at index-1 that is not the entry's previous entry
  ///     (term != entry.prev_term) is removed;
  ///   * a successor at index+1 for which the entry is not the previous
  ///     entry (successor.prev_term != entry.term) is removed together with
  ///     every entry after it.
  /// Re-inserting an index replaces the old entry (after the same checks).
  void Insert(const storage::LogEntry& entry);

  /// Pops the continuous prefix starting at `last_index + 1` whose
  /// prev_term chain extends (last_index, last_term); the caller appends
  /// the returned entries to the log (the paper's "flush", Fig. 9).
  std::vector<storage::LogEntry> TakeFlushablePrefix(
      storage::LogIndex last_index, storage::Term last_term);

  /// Reacts to the appended log changing shape after a truncation /
  /// replacement (Sec. III-A1, Fig. 7): the window "moves leftwards".
  /// Drops every cached entry that
  ///   * now falls at or before the new last appended index, or
  ///   * exceeds the new window end (new_last + capacity), or
  ///   * has a term lower than `min_term` (stale entries from old leaders).
  void OnLogReshaped(storage::LogIndex new_last, storage::Term min_term);

  /// Removes everything (leader change cleanup).
  void Clear() { entries_.clear(); }

  /// Cached indices in ascending order (for tests and introspection).
  std::vector<storage::LogIndex> Indices() const;

 private:
  int capacity_;
  std::map<storage::LogIndex, storage::LogEntry> entries_;
  Observer* observer_ = nullptr;
};

}  // namespace nbraft::raft

#endif  // NBRAFT_NBRAFT_SLIDING_WINDOW_H_
