#include "nbraft/vote_list.h"

#include "common/logging.h"

namespace nbraft::raft {

void VoteList::AddTuple(storage::LogIndex index, storage::Term term,
                        net::NodeId leader, int required) {
  Tuple& t = tuples_[index];
  t.term = term;
  t.required = required;
  // kInvalidNode defers the leader's self-vote: with a simulated disk the
  // leader only counts itself once its own fsync covers the entry.
  if (leader != net::kInvalidNode) t.strong.insert(leader);
}

const VoteList::Tuple* VoteList::Find(storage::LogIndex index) const {
  const auto it = tuples_.find(index);
  return it == tuples_.end() ? nullptr : &it->second;
}

bool VoteList::AddWeak(storage::LogIndex index, net::NodeId node) {
  const auto it = tuples_.find(index);
  if (it == tuples_.end()) return false;  // Already committed or cleaned.
  Tuple& t = it->second;
  t.weak.insert(node);
  if (t.weak_notified) return false;
  // Weak ∪ strong: a node may appear in both after its window flushed.
  std::set<net::NodeId> combined = t.strong;
  combined.insert(t.weak.begin(), t.weak.end());
  if (static_cast<int>(combined.size()) >= t.required) {
    t.weak_notified = true;
    return true;
  }
  return false;
}

std::vector<storage::LogIndex> VoteList::AddStrongUpTo(
    storage::LogIndex last_index, net::NodeId node,
    storage::Term current_term) {
  storage::LogIndex commit_up_to = -1;
  for (auto& [index, tuple] : tuples_) {
    if (index > last_index) break;
    tuple.strong.insert(node);
    if (tuple.term == current_term && StrongSatisfied(tuple)) {
      commit_up_to = index;
    }
  }
  return PopCommittable(commit_up_to, current_term);
}

std::vector<storage::LogIndex> VoteList::PopCommittable(
    storage::LogIndex up_to, storage::Term current_term) {
  // Pop committed tuples in order. An old-term tuple below a committed
  // current-term one commits transitively (Raft Sec. 5.4.2); a
  // current-term tuple must meet its own required count — with mixed
  // requirements (CRaft mode switches) a fragment entry may need more
  // holders than the plain entry that follows it.
  std::vector<storage::LogIndex> committed;
  while (!tuples_.empty()) {
    const auto& [index, tuple] = *tuples_.begin();
    if (index > up_to) break;
    if (tuple.term == current_term && !StrongSatisfied(tuple)) {
      break;
    }
    committed.push_back(index);
    tuples_.erase(tuples_.begin());
  }
  return committed;
}

void VoteList::ForEach(
    const std::function<void(storage::LogIndex, Tuple*)>& fn) {
  for (auto& [index, tuple] : tuples_) fn(index, &tuple);
}

std::vector<storage::LogIndex> VoteList::CollectCommittable(
    storage::Term current_term) {
  storage::LogIndex commit_up_to = -1;
  for (const auto& [index, tuple] : tuples_) {
    if (tuple.term == current_term && StrongSatisfied(tuple)) {
      commit_up_to = index;
    }
  }
  return PopCommittable(commit_up_to, current_term);
}

}  // namespace nbraft::raft
