#ifndef NBRAFT_NBRAFT_VOTE_LIST_H_
#define NBRAFT_NBRAFT_VOTE_LIST_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "net/network.h"
#include "storage/log_entry.h"

namespace nbraft::raft {

/// The leader-side entry-state tracker of NB-Raft (paper Sec. III-B): an
/// ordered list of (logIndex, Weakly Accepted Nodes, Strongly Accepted
/// Nodes) tuples. The original Raft uses the same structure with only the
/// strong sets, so one VoteList serves every protocol variant.
class VoteList {
 public:
  struct Tuple {
    storage::Term term = 0;
    /// Acceptances needed to commit this entry: the majority quorum for
    /// plain entries, k + F for CRaft fragments.
    int required = 1;
    std::set<net::NodeId> weak;
    std::set<net::NodeId> strong;
    /// Whether the WEAK_ACCEPT response has already been sent to the client
    /// (sent at most once per entry, when weak ∪ strong first reaches the
    /// required count).
    bool weak_notified = false;
  };

  /// Registers a tuple when the leader starts replicating `index`. The
  /// leader itself counts as strongly accepted (it appended locally);
  /// pass kInvalidNode to defer the self-vote until the leader's own
  /// durable write completes (fsync-gated acknowledgement).
  void AddTuple(storage::LogIndex index, storage::Term term,
                net::NodeId leader, int required);

  bool Contains(storage::LogIndex index) const {
    return tuples_.count(index) > 0;
  }
  const Tuple* Find(storage::LogIndex index) const;

  /// Records a WEAK_ACCEPT from `node` for `index` (Sec. III-B2). Returns
  /// true when this made weak ∪ strong reach the tuple's required count for
  /// the first time — the moment the leader replies WEAK_ACCEPT to the
  /// client.
  bool AddWeak(storage::LogIndex index, net::NodeId node);

  /// Records a STRONG_ACCEPT covering every index <= `last_index`
  /// (Sec. III-B3b: window continuity means a strong accept covers the
  /// whole prefix). Tuples of `current_term` whose strong set reaches the
  /// tuple's required count commit — together with every earlier tuple
  /// (Raft's commit rule: an old-term tuple commits only transitively
  /// through a current-term one). Committed tuples are removed; their
  /// indices return in order.
  std::vector<storage::LogIndex> AddStrongUpTo(storage::LogIndex last_index,
                                               net::NodeId node,
                                               storage::Term current_term);

  /// Visits every tuple in index order (mutable) — used to re-evaluate
  /// required counts when the set of alive replicas changes (CRaft/ECRaft
  /// degraded-mode transitions).
  void ForEach(
      const std::function<void(storage::LogIndex, Tuple*)>& fn);

  /// Pops and returns the maximal committable prefix without adding any
  /// new vote — called after requirements were lowered.
  std::vector<storage::LogIndex> CollectCommittable(
      storage::Term current_term);

  /// Leader-change cleanup (Sec. III-B3a).
  void Clear() { tuples_.clear(); }

  /// Removes the front tuple without committing it (used while draining
  /// the list to notify clients on leader change).
  void RemoveFront() {
    if (!tuples_.empty()) tuples_.erase(tuples_.begin());
  }

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Smallest tracked index, or -1 when empty.
  storage::LogIndex FrontIndex() const {
    return tuples_.empty() ? -1 : tuples_.begin()->first;
  }

  /// Overrides the count-based commit rule with a set-based one (dynamic
  /// membership: a joint configuration needs majorities of both voter
  /// generations, which no single count can express). Unset (the
  /// default), commit stays `strong.size() >= required` exactly as
  /// before. Weak-accept client notification keeps the count rule either
  /// way — it is a latency signal, not a safety decision.
  using CommitCheck = std::function<bool(const Tuple&)>;
  void set_commit_check(CommitCheck check) { commit_check_ = std::move(check); }

 private:
  bool StrongSatisfied(const Tuple& tuple) const {
    if (commit_check_) return commit_check_(tuple);
    return static_cast<int>(tuple.strong.size()) >= tuple.required;
  }

  /// Removes the committable prefix given the highest satisfied
  /// current-term index has been identified.
  std::vector<storage::LogIndex> PopCommittable(storage::LogIndex up_to,
                                                storage::Term current_term);

  std::map<storage::LogIndex, Tuple> tuples_;
  CommitCheck commit_check_;
};

}  // namespace nbraft::raft

#endif  // NBRAFT_NBRAFT_VOTE_LIST_H_
