#include "net/network.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "obs/names.h"

namespace nbraft::net {

SimNetwork::SimNetwork(sim::Simulator* sim, NetworkConfig config)
    : sim_(sim), config_(config), rng_(sim->rng()->Next()) {}

void SimNetwork::RegisterEndpoint(NodeId id, MessageHandler handler) {
  handlers_.At(id) = std::move(handler);
}

void SimNetwork::UnregisterEndpoint(NodeId id) {
  if (MessageHandler* handler = handlers_.Find(id)) *handler = nullptr;
}

void SimNetwork::BindEndpoint(NodeId id, NodeId physical) {
  physical_plus1_.At(id) = physical + 1;
}

uint64_t SimNetwork::PairKey(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

uint64_t SimNetwork::DirectedKey(NodeId from, NodeId to) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
         static_cast<uint32_t>(to);
}

SimDuration SimNetwork::LatencyFor(NodeId from, NodeId to) const {
  if (pair_latency_.empty()) return config_.base_latency;
  const auto it = pair_latency_.find(PairKey(from, to));
  return it != pair_latency_.end() ? it->second : config_.base_latency;
}

SimDuration SimNetwork::SerializationTime(size_t bytes) const {
  if (config_.nic_bandwidth_bps <= 0) return 0;
  const double seconds =
      static_cast<double>(bytes) * 8.0 / config_.nic_bandwidth_bps;
  return static_cast<SimDuration>(seconds * static_cast<double>(kSecond));
}

bool SimNetwork::LinkBlocked(NodeId from, NodeId to) const {
  if (!isolated_nodes_.empty() &&
      (isolated_nodes_.count(from) > 0 || isolated_nodes_.count(to) > 0)) {
    return true;
  }
  if (!one_way_cuts_.empty() &&
      one_way_cuts_.count(DirectedKey(from, to)) > 0) {
    return true;
  }
  return !cut_links_.empty() && cut_links_.count(PairKey(from, to)) > 0;
}

SimTime SimNetwork::Send(NodeId from, NodeId to, size_t bytes,
                         PayloadRef payload) {
  ++stats_.messages_sent;
  stats_.bytes_sent += bytes;

  // All fault and resource state is per physical host: co-resident
  // endpoints (several consensus groups on one machine) share crash
  // state, partitions, and NIC serialization queues.
  const NodeId pfrom = PhysicalOf(from);
  const NodeId pto = PhysicalOf(to);

  if (IsDown(pfrom) || IsDown(pto) || LinkBlocked(pfrom, pto) ||
      rng_.NextBool(config_.drop_probability)) {
    ++stats_.messages_dropped;
    if (tracer_ != nullptr) {
      tracer_->RecordInstant(obs::names::kMsgDrop, from, to,
                             static_cast<int64_t>(bytes));
    }
    if (journal_ != nullptr) {
      journal_->Record(obs::JournalEventKind::kRpcDrop, from, to, -1,
                       static_cast<int64_t>(bytes));
    }
    return -1;
  }
  if (tracer_ != nullptr) {
    tracer_->RecordInstant(obs::names::kMsgSend, from, to,
                           static_cast<int64_t>(bytes));
  }

  const SimTime now = sim_->Now();
  const SimDuration ser = SerializationTime(bytes);

  // Egress NIC of the sender's host: serialization queue.
  Nic& src = nics_.At(pfrom);
  const SimTime tx_start = std::max(src.egress_free_at, now);
  const SimTime tx_done = tx_start + ser;
  src.egress_free_at = tx_done;

  // Propagation + scheduling jitter. Jitter varies per message, so two
  // messages sent back-to-back can arrive in either order — the disorder
  // the paper's t_wait(F) bottleneck stems from.
  SimDuration jitter = 0;
  if (config_.jitter_mean > 0) {
    jitter = static_cast<SimDuration>(
        rng_.NextExponential(static_cast<double>(config_.jitter_mean)));
  }
  const SimTime propagated =
      tx_done + LatencyFor(pfrom, pto) + jitter + extra_delay_;

  Message msg;
  msg.from = from;
  msg.to = to;
  msg.bytes = bytes;
  msg.sent_at = now;
  msg.payload = std::move(payload);

  ++stats_.messages_in_flight;

  // The receiver's ingress NIC slot is claimed when the packet *arrives*
  // (not when it was sent): reordered packets are served in arrival order,
  // and the shared inbound link saturates when many clients send at once.
  // The serialization time is recomputed from msg.bytes at arrival — it is
  // a pure function of the (immutable) bandwidth, and not capturing it
  // keeps the capture inside EventFn's inline buffer.
  sim_->At(propagated, [this, msg = std::move(msg)]() mutable {
    Nic& dst = nics_.At(PhysicalOf(msg.to));
    const SimTime rx_start = std::max(dst.ingress_free_at, sim_->Now());
    const SimTime rx_done = rx_start + SerializationTime(msg.bytes);
    dst.ingress_free_at = rx_done;
    if (rx_done == sim_->Now()) {
      // Idle ingress, zero serialization time: the chained completion
      // event would fire at this same instant — deliver directly instead
      // of paying for a second event.
      Deliver(std::move(msg));
      return;
    }
    sim_->At(rx_done,
             [this, msg = std::move(msg)]() mutable { Deliver(std::move(msg)); });
  });
  return propagated + ser;
}

void SimNetwork::Deliver(Message&& msg) {
  --stats_.messages_in_flight;
  if (IsDown(PhysicalOf(msg.to))) {
    ++stats_.messages_dropped;
    if (tracer_ != nullptr) {
      tracer_->RecordInstant(obs::names::kMsgDrop, msg.from, msg.to,
                             static_cast<int64_t>(msg.bytes));
    }
    if (journal_ != nullptr) {
      journal_->Record(obs::JournalEventKind::kRpcDrop, msg.from, msg.to,
                       -1, static_cast<int64_t>(msg.bytes));
    }
    return;
  }
  MessageHandler* handler = handlers_.Find(msg.to);
  if (handler == nullptr || !*handler) {
    ++stats_.messages_dropped;
    if (tracer_ != nullptr) {
      tracer_->RecordInstant(obs::names::kMsgDrop, msg.from, msg.to,
                             static_cast<int64_t>(msg.bytes));
    }
    if (journal_ != nullptr) {
      journal_->Record(obs::JournalEventKind::kRpcDrop, msg.from, msg.to,
                       -1, static_cast<int64_t>(msg.bytes));
    }
    return;
  }
  ++stats_.messages_delivered;
  if (tracer_ != nullptr) {
    tracer_->RecordInstant(obs::names::kMsgRecv, msg.to, msg.from,
                           static_cast<int64_t>(msg.bytes));
  }
  (*handler)(std::move(msg));
}

void SimNetwork::SetPairLatency(NodeId a, NodeId b, SimDuration latency) {
  pair_latency_[PairKey(PhysicalOf(a), PhysicalOf(b))] = latency;
}

void SimNetwork::SetNodeUp(NodeId id, bool up) {
  const NodeId physical = PhysicalOf(id);
  if (up) {
    down_.At(physical) = 0;
  } else {
    down_.At(physical) = 1;
    // A restarting host starts with quiet NICs.
    nics_.At(physical) = Nic{};
  }
}

bool SimNetwork::IsNodeUp(NodeId id) const { return !IsDown(PhysicalOf(id)); }

void SimNetwork::SetLinkCut(NodeId a, NodeId b, bool cut,
                            bool bidirectional) {
  if (bidirectional) {
    if (cut) {
      cut_links_.insert(PairKey(PhysicalOf(a), PhysicalOf(b)));
    } else {
      cut_links_.erase(PairKey(PhysicalOf(a), PhysicalOf(b)));
    }
    return;
  }
  SetOneWayCut(a, b, cut);
}

void SimNetwork::SetOneWayCut(NodeId from, NodeId to, bool cut) {
  if (cut) {
    one_way_cuts_.insert(DirectedKey(PhysicalOf(from), PhysicalOf(to)));
  } else {
    one_way_cuts_.erase(DirectedKey(PhysicalOf(from), PhysicalOf(to)));
  }
}

void SimNetwork::Isolate(NodeId id, bool isolated) {
  if (isolated) {
    isolated_nodes_.insert(PhysicalOf(id));
  } else {
    isolated_nodes_.erase(PhysicalOf(id));
  }
}

void ApplyGeoTopology(SimNetwork* net, const std::vector<NodeId>& nodes) {
  NBRAFT_CHECK_LE(nodes.size(), 5u);
  // One-way latency (ms) between Beijing, Guangzhou, Shanghai, Hangzhou,
  // Chengdu — typical inter-region figures for Chinese cloud regions.
  static constexpr double kLatencyMs[5][5] = {
      //        BJ    GZ    SH    HZ    CD
      /*BJ*/ {0.3, 23.0, 13.0, 14.0, 19.0},
      /*GZ*/ {23.0, 0.3, 15.0, 14.0, 17.0},
      /*SH*/ {13.0, 15.0, 0.3, 3.0, 20.0},
      /*HZ*/ {14.0, 14.0, 3.0, 0.3, 19.0},
      /*CD*/ {19.0, 17.0, 20.0, 19.0, 0.3},
  };
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (size_t j = i + 1; j < nodes.size(); ++j) {
      const double ms = kLatencyMs[i][j];
      net->SetPairLatency(nodes[i], nodes[j],
                          static_cast<SimDuration>(ms * kMillisecond));
    }
  }
}

}  // namespace nbraft::net
