#ifndef NBRAFT_NET_NETWORK_H_
#define NBRAFT_NET_NETWORK_H_

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "common/sim_time.h"
#include "obs/tracer.h"
#include "sim/simulator.h"

namespace nbraft::net {

/// Endpoint identifier. Replica nodes use small non-negative ids; client
/// connections use ids at or above kClientIdBase.
using NodeId = int32_t;
constexpr NodeId kInvalidNode = -1;
constexpr NodeId kClientIdBase = 10000;

inline bool IsClientId(NodeId id) { return id >= kClientIdBase; }

/// A delivered datagram. `payload` carries a protocol-defined struct
/// (std::any keeps the network layer protocol-agnostic); `bytes` is the
/// modelled wire size, which drives serialization/bandwidth costs.
struct Message {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  size_t bytes = 0;
  SimTime sent_at = 0;
  std::any payload;
};

using MessageHandler = std::function<void(Message&&)>;

/// Network model parameters. Defaults approximate the paper's LAN testbed
/// (10 Gb/s NICs, sub-millisecond RTT with scheduling jitter).
struct NetworkConfig {
  /// Per-NIC bandwidth in bits per second, applied independently to each
  /// node's egress and ingress. Shared ingress at the leader is what makes
  /// t_trans(CL) scale as b/(w_net/N_cli) in the paper's Step 1 cost model.
  double nic_bandwidth_bps = 10e9;

  /// One-way propagation delay between any pair, unless overridden by a
  /// per-pair entry (used for geo-distributed topologies).
  SimDuration base_latency = Micros(120);

  /// Mean of the exponential per-message scheduling/queuing jitter. Jitter
  /// is what makes entries arrive out of order — the root cause of the
  /// paper's t_wait(F) bottleneck.
  SimDuration jitter_mean = Micros(160);

  /// Probability a message is silently dropped (in addition to partitions
  /// and crashed endpoints).
  double drop_probability = 0.0;
};

/// Simulated network: point-to-point datagrams with per-NIC serialization
/// queues, propagation latency, jitter-induced reordering, loss, node
/// crashes and partitions. Single-threaded, driven by the Simulator.
class SimNetwork {
 public:
  SimNetwork(sim::Simulator* sim, NetworkConfig config);

  /// Registers the handler invoked for messages delivered to `id`.
  /// Registering twice replaces the handler.
  void RegisterEndpoint(NodeId id, MessageHandler handler);
  void UnregisterEndpoint(NodeId id);

  /// Queues a message. Returns the scheduled arrival time, or -1 if the
  /// message was dropped at send time (down endpoint, partition, loss).
  /// Delivery can still silently fail if the receiver goes down in flight.
  SimTime Send(NodeId from, NodeId to, size_t bytes, std::any payload);

  /// Symmetric one-way latency override for a pair (geo topologies).
  void SetPairLatency(NodeId a, NodeId b, SimDuration latency);

  /// Marks a node up/down. Messages to or from a down node are dropped;
  /// in-flight messages to it are dropped at delivery time.
  void SetNodeUp(NodeId id, bool up);
  bool IsNodeUp(NodeId id) const;

  /// Cuts / restores connectivity between two nodes. With `bidirectional`
  /// (the default, matching the historical API) both directions are
  /// affected; otherwise only messages a -> b are cut, which expresses the
  /// classic "leader sends but cannot hear" asymmetric failure.
  void SetLinkCut(NodeId a, NodeId b, bool cut, bool bidirectional = true);

  /// One-way cut: messages `from` -> `to` are dropped, the reverse
  /// direction is untouched. Equivalent to SetLinkCut(from, to, cut, false).
  void SetOneWayCut(NodeId from, NodeId to, bool cut);

  /// Isolates `id` from every other node without marking it down.
  void Isolate(NodeId id, bool isolated);

  const NetworkConfig& config() const { return config_; }
  void set_drop_probability(double p) { config_.drop_probability = p; }

  /// Additional one-way delay added to every message (delay storms). Only
  /// affects messages sent while the value is non-zero.
  void set_extra_delay(SimDuration d) { extra_delay_ = d; }
  SimDuration extra_delay() const { return extra_delay_; }

  /// Attaches the lifecycle tracer (nullptr = off, the default). Emits
  /// `net_send` / `net_recv` (arg0 = peer, arg1 = bytes) and `net_drop`
  /// instants. Purely observational: delivery order and timing are
  /// unaffected.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  struct Nic {
    SimTime egress_free_at = 0;
    SimTime ingress_free_at = 0;
  };

  static uint64_t PairKey(NodeId a, NodeId b);
  static uint64_t DirectedKey(NodeId from, NodeId to);
  SimDuration LatencyFor(NodeId from, NodeId to) const;
  SimDuration SerializationTime(size_t bytes) const;
  bool LinkBlocked(NodeId from, NodeId to) const;

  sim::Simulator* sim_;
  NetworkConfig config_;
  std::unordered_map<NodeId, MessageHandler> handlers_;
  std::unordered_map<NodeId, Nic> nics_;
  std::unordered_set<NodeId> down_nodes_;
  std::unordered_set<NodeId> isolated_nodes_;
  std::unordered_set<uint64_t> cut_links_;
  std::unordered_set<uint64_t> one_way_cuts_;  ///< Directed (from, to) keys.
  std::unordered_map<uint64_t, SimDuration> pair_latency_;
  SimDuration extra_delay_ = 0;
  nbraft::Rng rng_;
  obs::Tracer* tracer_ = nullptr;

  uint64_t messages_sent_ = 0;
  uint64_t messages_delivered_ = 0;
  uint64_t messages_dropped_ = 0;
  uint64_t bytes_sent_ = 0;
};

/// Builds the paper's Fig. 20 geo-distributed topology: one-way latencies
/// between Beijing, Guangzhou, Shanghai, Hangzhou and Chengdu for the given
/// node ids (in that order). Values are typical inter-region RTT/2 for
/// Chinese cloud regions.
void ApplyGeoTopology(SimNetwork* net, const std::vector<NodeId>& nodes);

}  // namespace nbraft::net

#endif  // NBRAFT_NET_NETWORK_H_
