#ifndef NBRAFT_NET_NETWORK_H_
#define NBRAFT_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "common/sim_time.h"
#include "net/payload.h"
#include "obs/journal.h"
#include "obs/tracer.h"
#include "sim/simulator.h"

namespace nbraft::net {

/// Endpoint identifier. Replica nodes use small non-negative ids; client
/// connections use ids at or above kClientIdBase.
using NodeId = int32_t;
constexpr NodeId kInvalidNode = -1;
constexpr NodeId kClientIdBase = 10000;

inline bool IsClientId(NodeId id) { return id >= kClientIdBase; }

/// A delivered datagram. `payload` carries a protocol-defined struct behind
/// a refcount (PayloadRef keeps the network layer protocol-agnostic without
/// std::any's deep copies); `bytes` is the modelled wire size, which drives
/// serialization/bandwidth costs.
struct Message {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  size_t bytes = 0;
  SimTime sent_at = 0;
  PayloadRef payload;
};

using MessageHandler = std::function<void(Message&&)>;

/// Network model parameters. Defaults approximate the paper's LAN testbed
/// (10 Gb/s NICs, sub-millisecond RTT with scheduling jitter).
struct NetworkConfig {
  /// Per-NIC bandwidth in bits per second, applied independently to each
  /// node's egress and ingress. Shared ingress at the leader is what makes
  /// t_trans(CL) scale as b/(w_net/N_cli) in the paper's Step 1 cost model.
  double nic_bandwidth_bps = 10e9;

  /// One-way propagation delay between any pair, unless overridden by a
  /// per-pair entry (used for geo-distributed topologies).
  SimDuration base_latency = Micros(120);

  /// Mean of the exponential per-message scheduling/queuing jitter. Jitter
  /// is what makes entries arrive out of order — the root cause of the
  /// paper's t_wait(F) bottleneck.
  SimDuration jitter_mean = Micros(160);

  /// Probability a message is silently dropped (in addition to partitions
  /// and crashed endpoints).
  double drop_probability = 0.0;
};

/// Message accounting snapshot. Every accepted Send() ends up delivered or
/// dropped; until its arrival event fires it is in flight. The invariant
/// `sent == delivered + dropped + in_flight` holds at every instant — a
/// message can't be double-counted or leak — and once the simulator drains,
/// in_flight is 0 and `sent == delivered + dropped` exactly.
struct NetStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;
  uint64_t messages_in_flight = 0;
  uint64_t bytes_sent = 0;

  bool Consistent() const {
    return messages_sent ==
           messages_delivered + messages_dropped + messages_in_flight;
  }
};

/// Simulated network: point-to-point datagrams with per-NIC serialization
/// queues, propagation latency, jitter-induced reordering, loss, node
/// crashes and partitions. Single-threaded, driven by the Simulator.
///
/// Per-endpoint state (handlers, NICs, up/down) lives in dense vectors
/// indexed by NodeId — replicas from 0, clients from kClientIdBase — so the
/// per-message hot path is two array reads, not hash lookups.
class SimNetwork {
 public:
  SimNetwork(sim::Simulator* sim, NetworkConfig config);

  /// Registers the handler invoked for messages delivered to `id`.
  /// Registering twice replaces the handler.
  void RegisterEndpoint(NodeId id, MessageHandler handler);
  void UnregisterEndpoint(NodeId id);

  /// Binds endpoint `id` onto physical host `physical`. All endpoints bound
  /// to one host share its NIC serialization queues, up/down state, and
  /// partition/isolation faults — this is how several consensus groups
  /// co-resident on one machine contend for its network resources. Unbound
  /// endpoints (the default) are their own host, so a single-group cluster
  /// behaves exactly as before.
  void BindEndpoint(NodeId id, NodeId physical);

  /// The physical host an endpoint is bound to (itself when unbound).
  NodeId PhysicalOf(NodeId id) const {
    const NodeId* p = physical_plus1_.Find(id);
    return (p == nullptr || *p == 0) ? id : *p - 1;
  }

  /// Queues a message. Returns the scheduled arrival time, or -1 if the
  /// message was dropped at send time (down endpoint, partition, loss).
  /// Delivery can still silently fail if the receiver goes down in flight.
  SimTime Send(NodeId from, NodeId to, size_t bytes, PayloadRef payload);

  /// Symmetric one-way latency override for a pair (geo topologies).
  /// Physical-host scoped: pass host ids, and every endpoint bound to the
  /// pair inherits the latency.
  void SetPairLatency(NodeId a, NodeId b, SimDuration latency);

  /// Marks a node up/down. Messages to or from a down node are dropped;
  /// in-flight messages to it are dropped at delivery time. Host scoped:
  /// taking one endpoint down takes its physical host — and every
  /// co-resident endpoint — down with it.
  void SetNodeUp(NodeId id, bool up);
  bool IsNodeUp(NodeId id) const;

  /// Cuts / restores connectivity between two nodes. With `bidirectional`
  /// (the default, matching the historical API) both directions are
  /// affected; otherwise only messages a -> b are cut, which expresses the
  /// classic "leader sends but cannot hear" asymmetric failure.
  void SetLinkCut(NodeId a, NodeId b, bool cut, bool bidirectional = true);

  /// One-way cut: messages `from` -> `to` are dropped, the reverse
  /// direction is untouched. Equivalent to SetLinkCut(from, to, cut, false).
  void SetOneWayCut(NodeId from, NodeId to, bool cut);

  /// Isolates `id` from every other node without marking it down.
  void Isolate(NodeId id, bool isolated);

  const NetworkConfig& config() const { return config_; }
  void set_drop_probability(double p) { config_.drop_probability = p; }

  /// Additional one-way delay added to every message (delay storms). Only
  /// affects messages sent while the value is non-zero.
  void set_extra_delay(SimDuration d) { extra_delay_ = d; }
  SimDuration extra_delay() const { return extra_delay_; }

  /// Attaches the lifecycle tracer (nullptr = off, the default). Emits
  /// `net_send` / `net_recv` / `net_drop` instants; drop instants always
  /// record (sender, receiver) in that order, whether the drop happens at
  /// send time or delivery time. Purely observational: delivery order and
  /// timing are unaffected.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Attaches the cluster flight recorder (nullptr = off, the default).
  /// The network records only drops — kRpcDrop with (from, to, bytes) —
  /// because sends/receives are journaled, with their decoded RPC type, by
  /// the consensus layer.
  void set_journal(obs::Journal* journal) { journal_ = journal; }

  uint64_t messages_sent() const { return stats_.messages_sent; }
  uint64_t messages_delivered() const { return stats_.messages_delivered; }
  uint64_t messages_dropped() const { return stats_.messages_dropped; }
  uint64_t bytes_sent() const { return stats_.bytes_sent; }

  /// Accounting snapshot; see NetStats for the conservation invariant.
  const NetStats& stats() const { return stats_; }

 private:
  struct Nic {
    SimTime egress_free_at = 0;
    SimTime ingress_free_at = 0;
  };

  /// Dense per-endpoint storage split across the two NodeId ranges
  /// (replicas from 0, clients from kClientIdBase). Grows on first touch.
  template <typename T>
  class NodeTable {
   public:
    T& At(NodeId id) {
      std::vector<T>& vec = IsClientId(id) ? clients_ : nodes_;
      const auto index = Index(id);
      if (index >= vec.size()) vec.resize(index + 1);
      return vec[index];
    }
    T* Find(NodeId id) {
      std::vector<T>& vec = IsClientId(id) ? clients_ : nodes_;
      const auto index = Index(id);
      return index < vec.size() ? &vec[index] : nullptr;
    }
    const T* Find(NodeId id) const {
      const std::vector<T>& vec = IsClientId(id) ? clients_ : nodes_;
      const auto index = Index(id);
      return index < vec.size() ? &vec[index] : nullptr;
    }

   private:
    static size_t Index(NodeId id) {
      return static_cast<size_t>(IsClientId(id) ? id - kClientIdBase : id);
    }
    std::vector<T> nodes_;
    std::vector<T> clients_;
  };

  static uint64_t PairKey(NodeId a, NodeId b);
  static uint64_t DirectedKey(NodeId from, NodeId to);
  SimDuration LatencyFor(NodeId from, NodeId to) const;
  SimDuration SerializationTime(size_t bytes) const;
  bool LinkBlocked(NodeId from, NodeId to) const;
  /// Takes a *physical* host id (callers map endpoints via PhysicalOf).
  bool IsDown(NodeId physical) const {
    const uint8_t* flag = down_.Find(physical);
    return flag != nullptr && *flag != 0;
  }

  /// Final delivery step, run once the receiver's ingress NIC has drained
  /// the message: re-checks liveness, records stats/trace, invokes the
  /// handler.
  void Deliver(Message&& msg);

  sim::Simulator* sim_;
  NetworkConfig config_;
  NodeTable<MessageHandler> handlers_;  ///< Per endpoint.
  /// Endpoint -> physical host + 1; 0 = unbound (endpoint is its own
  /// host). NICs, down flags, cuts, isolation and pair latencies below are
  /// all keyed by physical host so co-resident endpoints share them.
  NodeTable<NodeId> physical_plus1_;
  NodeTable<Nic> nics_;
  NodeTable<uint8_t> down_;  ///< 1 = down.
  std::unordered_set<NodeId> isolated_nodes_;
  std::unordered_set<uint64_t> cut_links_;
  std::unordered_set<uint64_t> one_way_cuts_;  ///< Directed (from, to) keys.
  std::unordered_map<uint64_t, SimDuration> pair_latency_;
  SimDuration extra_delay_ = 0;
  nbraft::Rng rng_;
  obs::Tracer* tracer_ = nullptr;
  obs::Journal* journal_ = nullptr;

  NetStats stats_;
};

/// Builds the paper's Fig. 20 geo-distributed topology: one-way latencies
/// between Beijing, Guangzhou, Shanghai, Hangzhou and Chengdu for the given
/// node ids (in that order). Values are typical inter-region RTT/2 for
/// Chinese cloud regions.
void ApplyGeoTopology(SimNetwork* net, const std::vector<NodeId>& nodes);

}  // namespace nbraft::net

#endif  // NBRAFT_NET_NETWORK_H_
