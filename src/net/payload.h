#ifndef NBRAFT_NET_PAYLOAD_H_
#define NBRAFT_NET_PAYLOAD_H_

#include <memory>
#include <type_traits>
#include <typeinfo>
#include <utility>

namespace nbraft::net {

/// Ref-counted type-erased message payload: std::any semantics (the network
/// layer stays protocol-agnostic) without std::any's copy-on-copy. Copying
/// a PayloadRef bumps a refcount — forwarding a message, stashing it in a
/// test, or relaying it (KRaft) shares the one struct instead of deep-
/// copying it and every byte it owns.
///
/// Each Send() wraps its payload in a fresh PayloadRef, so the handler a
/// message is delivered to holds the only reference and may mutate or move
/// out of it via the non-const Get().
class PayloadRef {
 public:
  PayloadRef() = default;

  /// Implicit from any payload struct, mirroring std::any: call sites keep
  /// writing Send(to, bytes, response).
  template <typename T, typename D = std::decay_t<T>,
            typename = std::enable_if_t<!std::is_same_v<D, PayloadRef>>>
  PayloadRef(T&& value)  // NOLINT: implicit by design.
      : ptr_(std::make_shared<D>(std::forward<T>(value))),
        type_(&typeid(D)) {}

  /// Typed access, mirroring std::any_cast<T>(&payload): nullptr when empty
  /// or holding a different type.
  template <typename T>
  const T* Get() const {
    return Holds<T>() ? static_cast<const T*>(ptr_.get()) : nullptr;
  }

  /// Mutable access for the delivery path, where the message (and thus the
  /// reference) is uniquely held. Callers that share the ref must not
  /// mutate through it.
  template <typename T>
  T* Get() {
    return Holds<T>() ? static_cast<T*>(ptr_.get()) : nullptr;
  }

  bool has_value() const { return ptr_ != nullptr; }

  void reset() {
    ptr_.reset();
    type_ = nullptr;
  }

 private:
  template <typename T>
  bool Holds() const {
    return type_ != nullptr && *type_ == typeid(T);
  }

  std::shared_ptr<void> ptr_;
  const std::type_info* type_ = nullptr;
};

}  // namespace nbraft::net

#endif  // NBRAFT_NET_PAYLOAD_H_
