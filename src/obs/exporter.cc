#include "obs/exporter.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <set>
#include <utility>

#include "obs/series_store.h"

namespace nbraft::obs {

namespace {

constexpr int kInstantTid = 99;  ///< Shared track for point events per pid.

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

double ToTraceUs(SimTime t) { return static_cast<double>(t) / 1000.0; }

std::string DefaultEndpointName(int32_t id) {
  return "endpoint " + std::to_string(id);
}

std::function<std::string(int32_t)> Namer(const ExportInputs& inputs) {
  return inputs.endpoint_name ? inputs.endpoint_name : DefaultEndpointName;
}

/// Splits a canonical `subsystem.noun_verb[.nodeN]` name into a Prometheus
/// metric name (dots become underscores) and an optional node label.
struct PromName {
  std::string metric;
  std::string node;  ///< Empty when the series is cluster-wide.
};

PromName ToPromName(const std::string& name) {
  PromName out;
  std::string base = name;
  const size_t last_dot = name.rfind('.');
  if (last_dot != std::string::npos &&
      name.compare(last_dot + 1, 4, "node") == 0 &&
      last_dot + 5 < name.size()) {
    out.node = name.substr(last_dot + 5);
    base = name.substr(0, last_dot);
  }
  out.metric.reserve(base.size());
  for (const char c : base) {
    const bool ok = (std::isalnum(static_cast<unsigned char>(c)) != 0) ||
                    c == '_' || c == ':';
    out.metric.push_back(ok ? c : '_');
  }
  return out;
}

/// Emits one sample line, prefixing the family's `# TYPE` header the first
/// time the family appears (families repeat across `.nodeN` series).
void PromLine(std::FILE* f, std::set<std::string>* typed,
              const std::string& name, const char* type, double value) {
  const PromName p = ToPromName(name);
  if (typed->insert(p.metric).second) {
    std::fprintf(f, "# TYPE %s %s\n", p.metric.c_str(), type);
  }
  if (p.node.empty()) {
    std::fprintf(f, "%s %.17g\n", p.metric.c_str(), value);
  } else {
    std::fprintf(f, "%s{node=\"%s\"} %.17g\n", p.metric.c_str(),
                 p.node.c_str(), value);
  }
}

}  // namespace

Status WriteChromeTrace(const std::string& path,
                        const ExportInputs& inputs) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) {
    return Status::IoError("cannot open trace file " + path);
  }
  const auto name_of = Namer(inputs);

  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f.get());
  bool first = true;
  const auto sep = [&first, &f]() {
    if (!first) std::fputs(",\n", f.get());
    first = false;
  };

  std::set<int32_t> pids;
  std::set<std::pair<int32_t, int>> phase_tracks;
  if (inputs.tracer != nullptr) {
    for (const SpanEvent& s : inputs.tracer->spans()) {
      pids.insert(s.node);
      phase_tracks.emplace(s.node, static_cast<int>(s.phase));
      sep();
      std::fprintf(
          f.get(),
          "{\"name\":\"%s\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":%.3f,"
          "\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"term\":%" PRId64
          ",\"index\":%" PRId64 ",\"request_id\":%" PRIu64 "}}",
          std::string(metrics::PhaseNotation(s.phase)).c_str(),
          ToTraceUs(s.start), ToTraceUs(s.end - s.start), s.node,
          static_cast<int>(s.phase), s.term, s.index, s.request_id);
    }
    for (const InstantEvent& e : inputs.tracer->instants()) {
      pids.insert(e.node);
      sep();
      std::fprintf(f.get(),
                   "{\"name\":\"%s\",\"cat\":\"event\",\"ph\":\"i\","
                   "\"s\":\"p\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d,"
                   "\"args\":{\"arg0\":%" PRId64 ",\"arg1\":%" PRId64 "}}",
                   e.name, ToTraceUs(e.at), e.node, kInstantTid, e.arg0,
                   e.arg1);
    }
  }

  if (inputs.sampler != nullptr) {
    const auto& names = inputs.sampler->series_names();
    for (const Sampler::Sample& sample : inputs.sampler->samples()) {
      for (size_t i = 0; i < names.size() && i < sample.values.size(); ++i) {
        sep();
        std::fprintf(f.get(),
                     "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":0,"
                     "\"args\":{\"value\":%.6g}}",
                     names[i].c_str(), ToTraceUs(sample.at),
                     sample.values[i]);
      }
    }
  }

  // Metadata: human-readable process and track names.
  for (const int32_t pid : pids) {
    sep();
    std::fprintf(f.get(),
                 "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                 "\"args\":{\"name\":\"%s\"}}",
                 pid, name_of(pid).c_str());
    sep();
    std::fprintf(f.get(),
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                 "\"tid\":%d,\"args\":{\"name\":\"events\"}}",
                 pid, kInstantTid);
  }
  for (const auto& [pid, phase] : phase_tracks) {
    sep();
    std::fprintf(
        f.get(),
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
        "\"args\":{\"name\":\"%s\"}}",
        pid, phase,
        std::string(metrics::PhaseNotation(static_cast<metrics::Phase>(phase)))
            .c_str());
  }

  std::fputs("\n]}\n", f.get());
  if (std::ferror(f.get()) != 0) {
    return Status::IoError("write failed for " + path);
  }
  return Status::Ok();
}

Status WriteJsonl(const std::string& path, const ExportInputs& inputs) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) {
    return Status::IoError("cannot open trace file " + path);
  }

  if (inputs.tracer != nullptr) {
    const Tracer& t = *inputs.tracer;
    std::fprintf(f.get(),
                 "{\"type\":\"meta\",\"spans_recorded\":%" PRIu64
                 ",\"spans_dropped\":%" PRIu64 ",\"instants_recorded\":%" PRIu64
                 ",\"instants_dropped\":%" PRIu64 "}\n",
                 t.spans_recorded(), t.spans_dropped(), t.instants_recorded(),
                 t.instants_dropped());
    for (const SpanEvent& s : t.spans()) {
      std::fprintf(f.get(),
                   "{\"type\":\"span\",\"phase\":\"%s\",\"node\":%d,"
                   "\"term\":%" PRId64 ",\"index\":%" PRId64
                   ",\"request_id\":%" PRIu64 ",\"start_ns\":%" PRId64
                   ",\"end_ns\":%" PRId64 "}\n",
                   std::string(metrics::PhaseNotation(s.phase)).c_str(),
                   s.node, s.term, s.index, s.request_id, s.start, s.end);
    }
    for (const InstantEvent& e : t.instants()) {
      std::fprintf(f.get(),
                   "{\"type\":\"instant\",\"name\":\"%s\",\"node\":%d,"
                   "\"at_ns\":%" PRId64 ",\"arg0\":%" PRId64
                   ",\"arg1\":%" PRId64 "}\n",
                   e.name, e.node, e.at, e.arg0, e.arg1);
    }
  }

  if (inputs.sampler != nullptr) {
    const auto& names = inputs.sampler->series_names();
    for (const Sampler::Sample& sample : inputs.sampler->samples()) {
      for (size_t i = 0; i < names.size() && i < sample.values.size(); ++i) {
        std::fprintf(f.get(),
                     "{\"type\":\"sample\",\"series\":\"%s\",\"at_ns\":%" PRId64
                     ",\"value\":%.6g}\n",
                     names[i].c_str(), sample.at, sample.values[i]);
      }
    }
  }

  if (inputs.registry != nullptr) {
    for (const auto& [name, value] : inputs.registry->CounterValues()) {
      std::fprintf(f.get(),
                   "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%" PRId64
                   "}\n",
                   name.c_str(), value);
    }
    for (const auto& [name, value] : inputs.registry->GaugeValues()) {
      std::fprintf(f.get(),
                   "{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%.6g}\n",
                   name.c_str(), value);
    }
  }

  if (std::ferror(f.get()) != 0) {
    return Status::IoError("write failed for " + path);
  }
  return Status::Ok();
}

Status WritePrometheusText(const std::string& path,
                           const ExportInputs& inputs) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) {
    return Status::IoError("cannot open metrics file " + path);
  }
  std::set<std::string> typed;
  if (inputs.registry != nullptr) {
    for (const auto& [name, value] : inputs.registry->CounterValues()) {
      PromLine(f.get(), &typed, name, "counter",
               static_cast<double>(value));
    }
    for (const auto& [name, value] : inputs.registry->GaugeValues()) {
      PromLine(f.get(), &typed, name, "gauge", value);
    }
  }
  if (inputs.sampler != nullptr && !inputs.sampler->samples().empty()) {
    const Sampler::Sample& last = inputs.sampler->samples().back();
    const auto& names = inputs.sampler->series_names();
    for (size_t i = 0; i < names.size() && i < last.values.size(); ++i) {
      PromLine(f.get(), &typed, names[i], "gauge", last.values[i]);
    }
  }
  if (std::ferror(f.get()) != 0) {
    return Status::IoError("write failed for " + path);
  }
  return Status::Ok();
}

Status WriteMetricsJson(const std::string& path, const ExportInputs& inputs) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) {
    return Status::IoError("cannot open metrics file " + path);
  }
  std::fputs("{\"schema\":\"nbraft-obs-metrics-v1\"", f.get());
  if (inputs.sampler != nullptr) {
    std::fprintf(f.get(), ",\"sample_interval_ns\":%" PRId64,
                 inputs.sampler->interval());
  }

  std::fputs(",\"counters\":{", f.get());
  bool first = true;
  if (inputs.registry != nullptr) {
    for (const auto& [name, value] : inputs.registry->CounterValues()) {
      std::fprintf(f.get(), "%s\"%s\":%" PRId64, first ? "" : ",",
                   name.c_str(), value);
      first = false;
    }
  }
  std::fputs("},\"gauges\":{", f.get());
  first = true;
  if (inputs.registry != nullptr) {
    for (const auto& [name, value] : inputs.registry->GaugeValues()) {
      std::fprintf(f.get(), "%s\"%s\":%.17g", first ? "" : ",",
                   name.c_str(), value);
      first = false;
    }
  }
  std::fputs("},\"series\":[", f.get());

  // One entry per sampled series. With a SeriesStore attached the points
  // are decoded back from the Gorilla chunks (proving the compressed
  // stream holds the full-resolution data); otherwise the raw sample
  // stream is used and the compression accounting reads zero.
  first = true;
  if (inputs.sampler != nullptr) {
    const auto& names = inputs.sampler->series_names();
    const SeriesStore* store = inputs.sampler->series_store();
    for (size_t i = 0; i < names.size(); ++i) {
      if (!first) std::fputc(',', f.get());
      first = false;
      std::fprintf(f.get(), "{\"name\":\"%s\",\"points\":[",
                   names[i].c_str());
      bool first_point = true;
      size_t encoded_bytes = 0;
      size_t raw_bytes = 0;
      size_t sealed_chunks = 0;
      if (store != nullptr && i < store->series_count()) {
        auto points = store->Decode(i);
        if (!points.ok()) return points.status();
        for (const tsdb::Point& p : *points) {
          std::fprintf(f.get(), "%s[%" PRId64 ",%.17g]",
                       first_point ? "" : ",", p.timestamp, p.value);
          first_point = false;
        }
        encoded_bytes = store->encoded_bytes(i);
        raw_bytes = store->raw_bytes(i);
        sealed_chunks = store->chunks(i).size();
      } else {
        for (const Sampler::Sample& sample : inputs.sampler->samples()) {
          if (i >= sample.values.size()) continue;
          std::fprintf(f.get(), "%s[%" PRId64 ",%.17g]",
                       first_point ? "" : ",", sample.at, sample.values[i]);
          first_point = false;
        }
      }
      std::fprintf(f.get(),
                   "],\"encoded_bytes\":%zu,\"raw_bytes\":%zu,"
                   "\"sealed_chunks\":%zu}",
                   encoded_bytes, raw_bytes, sealed_chunks);
    }
  }
  std::fputs("]}\n", f.get());
  if (std::ferror(f.get()) != 0) {
    return Status::IoError("write failed for " + path);
  }
  return Status::Ok();
}

}  // namespace nbraft::obs
