#ifndef NBRAFT_OBS_EXPORTER_H_
#define NBRAFT_OBS_EXPORTER_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "obs/registry.h"
#include "obs/tracer.h"

namespace nbraft::obs {

/// What to export. Any member may be nullptr; the exporters skip it.
struct ExportInputs {
  const Tracer* tracer = nullptr;
  const Registry* registry = nullptr;
  const Sampler* sampler = nullptr;

  /// Maps an endpoint id to a display name ("node 2", "client 17"). The
  /// default labels everything "endpoint N".
  std::function<std::string(int32_t)> endpoint_name;
};

/// Writes a Chrome `trace_event` JSON file loadable in chrome://tracing or
/// https://ui.perfetto.dev. Spans become "X" (complete) events — one track
/// per (endpoint, phase) — instants become "i" events, and sampler series
/// become "C" counter tracks. Virtual-time nanoseconds map to trace
/// microseconds.
Status WriteChromeTrace(const std::string& path, const ExportInputs& inputs);

/// Writes a flat JSONL dump (one JSON object per line, `type` field keyed)
/// for scripts: spans, instants, samples, counters, gauges.
Status WriteJsonl(const std::string& path, const ExportInputs& inputs);

/// Writes a Prometheus text-format (v0.0.4) snapshot: counters, gauges,
/// and the latest value of every sampled series. Names are sanitized to
/// the Prometheus charset (`raft.window_occupancy.node2` becomes
/// `raft_window_occupancy{node="2"}`).
Status WritePrometheusText(const std::string& path,
                           const ExportInputs& inputs);

/// Writes a single-document JSON metrics snapshot: counters, gauges, and —
/// when the sampler records into a SeriesStore — every compressed series
/// decoded back to full resolution plus its compression accounting. This
/// is the file tools/obs_report.py renders the dashboard from.
Status WriteMetricsJson(const std::string& path, const ExportInputs& inputs);

}  // namespace nbraft::obs

#endif  // NBRAFT_OBS_EXPORTER_H_
