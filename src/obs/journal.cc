#include "obs/journal.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>

#include "common/logging.h"

namespace nbraft::obs {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

std::string DefaultName(int32_t id) {
  if (id < 0) return "cluster";
  return "node " + std::to_string(id);
}

}  // namespace

const char* JournalRpcName(JournalRpc rpc) {
  switch (rpc) {
    case JournalRpc::kAppendEntries:
      return "append_entries";
    case JournalRpc::kHeartbeat:
      return "heartbeat";
    case JournalRpc::kAppendEntriesResp:
      return "append_entries_resp";
    case JournalRpc::kRequestVote:
      return "request_vote";
    case JournalRpc::kRequestVoteResp:
      return "request_vote_resp";
    case JournalRpc::kClientRequest:
      return "client_request";
    case JournalRpc::kClientResponse:
      return "client_response";
    case JournalRpc::kInstallSnapshot:
      return "install_snapshot";
    case JournalRpc::kInstallSnapshotResp:
      return "install_snapshot_resp";
    case JournalRpc::kRead:
      return "read";
    case JournalRpc::kReadResp:
      return "read_resp";
    case JournalRpc::kTimeoutNow:
      return "timeout_now";
    case JournalRpc::kUnknown:
      break;
  }
  return "unknown";
}

const char* Journal::KindName(JournalEventKind kind) {
  switch (kind) {
    case JournalEventKind::kRoleChange:
      return "raft.role_change";
    case JournalEventKind::kTermChange:
      return "raft.term_change";
    case JournalEventKind::kElectionStart:
      return "raft.election_start";
    case JournalEventKind::kLeaderElected:
      return "raft.leader_elected";
    case JournalEventKind::kStepDown:
      return "raft.step_down";
    case JournalEventKind::kPreVoteStart:
      return "election.prevote_start";
    case JournalEventKind::kPreVoteGrant:
      return "election.prevote_grant";
    case JournalEventKind::kPreVoteReject:
      return "election.prevote_reject";
    case JournalEventKind::kLeaseReject:
      return "election.lease_reject";
    case JournalEventKind::kQuorumLost:
      return "election.quorum_lost";
    case JournalEventKind::kRpcSend:
      return "net.msg_send";
    case JournalEventKind::kRpcRecv:
      return "net.msg_recv";
    case JournalEventKind::kRpcDrop:
      return "net.msg_drop";
    case JournalEventKind::kWindowInsert:
      return "raft.window_insert";
    case JournalEventKind::kWindowEvict:
      return "raft.window_evict";
    case JournalEventKind::kWindowFlush:
      return "raft.window_flush";
    case JournalEventKind::kCommitAdvance:
      return "raft.commit_advance";
    case JournalEventKind::kApplyAdvance:
      return "raft.apply_advance";
    case JournalEventKind::kDiskWrite:
      return "storage.record_write";
    case JournalEventKind::kDiskFsync:
      return "storage.fsync_complete";
    case JournalEventKind::kStorageFailure:
      return "storage.failure_surface";
    case JournalEventKind::kCrash:
      return "raft.node_crash";
    case JournalEventKind::kRestart:
      return "raft.node_restart";
    case JournalEventKind::kRecovery:
      return "storage.state_recover";
    case JournalEventKind::kNemesisFault:
      return "chaos.fault_inject";
    case JournalEventKind::kNemesisHeal:
      return "chaos.fault_heal";
    case JournalEventKind::kViolation:
      return "chaos.invariant_violate";
    case JournalEventKind::kConfigPropose:
      return "membership.config_propose";
    case JournalEventKind::kConfigJoint:
      return "membership.joint_enter";
    case JournalEventKind::kConfigCommit:
      return "membership.config_commit";
    case JournalEventKind::kLearnerAdd:
      return "membership.learner_add";
    case JournalEventKind::kLearnerPromote:
      return "membership.learner_promote";
    case JournalEventKind::kTransferStart:
      return "membership.transfer_start";
    case JournalEventKind::kTransferDone:
      return "membership.transfer_done";
    case JournalEventKind::kNumKinds:
      break;
  }
  return "obs.unknown_event";
}

Journal::Journal(const sim::Simulator* sim, int num_nodes, Options options)
    : sim_(sim), num_nodes_(num_nodes) {
  NBRAFT_CHECK_GE(num_nodes, 0);
  NBRAFT_CHECK_GT(options.per_node_capacity, 0u);
  rings_.resize(static_cast<size_t>(num_nodes) + 1);
  for (Ring& ring : rings_) {
    ring.slots.resize(options.per_node_capacity);
  }
}

void Journal::Record(JournalEventKind kind, int32_t node, int32_t peer,
                     int64_t a, int64_t b) {
  if (!enabled_) return;
  RecordAt(sim_ != nullptr ? sim_->Now() : 0, kind, node, peer, a, b);
}

void Journal::RecordAt(SimTime at, JournalEventKind kind, int32_t node,
                       int32_t peer, int64_t a, int64_t b) {
  if (!enabled_) return;
  const size_t ring_index =
      (node >= 0 && node < num_nodes_) ? static_cast<size_t>(node)
                                       : static_cast<size_t>(num_nodes_);
  Ring& ring = rings_[ring_index];
  if (ring.written >= ring.slots.size()) ++dropped_;
  ring.slots[ring.head] = JournalEvent{at, next_seq_++, kind, node, peer,
                                       a,  b};
  ring.head = (ring.head + 1) % ring.slots.size();
  ++ring.written;
  ++recorded_;
}

const Journal::Ring& Journal::RingFor(int node) const {
  NBRAFT_CHECK_GE(node, 0);
  NBRAFT_CHECK_LE(node, num_nodes_);
  return rings_[static_cast<size_t>(node)];
}

std::vector<JournalEvent> Journal::NodeEvents(int node) const {
  const Ring& ring = RingFor(node);
  const size_t n = ring.retained();
  std::vector<JournalEvent> out;
  out.reserve(n);
  const size_t start = ring.written < ring.slots.size() ? 0 : ring.head;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(ring.slots[(start + i) % ring.slots.size()]);
  }
  return out;
}

std::vector<JournalEvent> Journal::MergedEvents() const {
  std::vector<JournalEvent> out;
  size_t total = 0;
  for (const Ring& ring : rings_) total += ring.retained();
  out.reserve(total);
  for (int r = 0; r <= num_nodes_; ++r) {
    std::vector<JournalEvent> events = NodeEvents(r);
    out.insert(out.end(), events.begin(), events.end());
  }
  // seq is globally unique and monotone with virtual time (the simulator
  // is single-threaded), so this is both time order and causal order.
  std::sort(out.begin(), out.end(),
            [](const JournalEvent& x, const JournalEvent& y) {
              return x.seq < y.seq;
            });
  return out;
}

void Journal::Clear() {
  for (Ring& ring : rings_) {
    ring.head = 0;
    ring.written = 0;
  }
  next_seq_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

Status Journal::WriteJsonl(const std::string& path, SimTime cutoff,
                           SimDuration lookback) const {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) {
    return Status::IoError("cannot open journal dump " + path);
  }
  const SimTime from = lookback > 0 ? cutoff - lookback : 0;
  const std::vector<JournalEvent> events = MergedEvents();
  size_t emitted = 0;
  for (const JournalEvent& e : events) {
    if (e.at < from || e.at > cutoff) continue;
    ++emitted;
  }
  std::fprintf(f.get(),
               "{\"type\":\"meta\",\"events_recorded\":%" PRIu64
               ",\"events_dropped\":%" PRIu64
               ",\"events_emitted\":%zu,\"window_from_ns\":%" PRId64
               ",\"window_to_ns\":%" PRId64 "}\n",
               recorded_, dropped_, emitted, from, cutoff);
  for (const JournalEvent& e : events) {
    if (e.at < from || e.at > cutoff) continue;
    // Group stamp, only in sharded clusters (resolver set): single-group
    // dumps stay byte-identical to the pre-sharding format.
    char group[32] = "";
    if (group_resolver_) {
      const int32_t g = group_resolver_(e.node);
      if (g >= 0) std::snprintf(group, sizeof(group), ",\"group\":%d", g);
    }
    if (e.kind == JournalEventKind::kRpcSend ||
        e.kind == JournalEventKind::kRpcRecv) {
      std::fprintf(f.get(),
                   "{\"type\":\"event\",\"seq\":%" PRIu64
                   ",\"at_ns\":%" PRId64
                   ",\"kind\":\"%s\",\"node\":%d,\"peer\":%d,"
                   "\"rpc\":\"%s\",\"bytes\":%" PRId64 "%s}\n",
                   e.seq, e.at, KindName(e.kind), e.node, e.peer,
                   JournalRpcName(static_cast<JournalRpc>(e.a)), e.b, group);
    } else {
      std::fprintf(f.get(),
                   "{\"type\":\"event\",\"seq\":%" PRIu64
                   ",\"at_ns\":%" PRId64
                   ",\"kind\":\"%s\",\"node\":%d,\"peer\":%d,"
                   "\"a\":%" PRId64 ",\"b\":%" PRId64 "%s}\n",
                   e.seq, e.at, KindName(e.kind), e.node, e.peer, e.a, e.b,
                   group);
    }
  }
  if (std::ferror(f.get()) != 0) {
    return Status::IoError("write failed for " + path);
  }
  return Status::Ok();
}

std::string Journal::FormatEvent(const JournalEvent& e,
                                 const EndpointNamer& namer) {
  const auto name_of = [&namer](int32_t id) {
    return namer ? namer(id) : DefaultName(id);
  };
  char stamp[64];
  std::snprintf(stamp, sizeof(stamp), "[%14.6f ms] ",
                static_cast<double>(e.at) / 1e6);
  std::string line = stamp;
  line += name_of(e.node) + ": ";
  switch (e.kind) {
    case JournalEventKind::kRoleChange: {
      const char* role = e.a == 3   ? "learner"
                         : e.a == 2 ? "leader"
                         : e.a == 1 ? "candidate"
                                    : "follower";
      line += "role -> " + std::string(role) + " (term " +
              std::to_string(e.b) + ")";
      break;
    }
    case JournalEventKind::kTermChange:
      line += "term " + std::to_string(e.a) + " -> " + std::to_string(e.b);
      break;
    case JournalEventKind::kElectionStart:
      line += "starts election, term " + std::to_string(e.a);
      break;
    case JournalEventKind::kLeaderElected:
      line += "ELECTED LEADER, term " + std::to_string(e.a);
      break;
    case JournalEventKind::kStepDown:
      line += std::string(e.b != 0 ? "steps down from leadership"
                                   : "steps down") +
              ", term " + std::to_string(e.a);
      break;
    case JournalEventKind::kPreVoteStart:
      line += "starts pre-vote canvass for term " + std::to_string(e.a);
      break;
    case JournalEventKind::kPreVoteGrant:
      line += "grants pre-vote to " + name_of(e.peer) + " for term " +
              std::to_string(e.a);
      break;
    case JournalEventKind::kPreVoteReject:
      line += "rejects pre-vote from " + name_of(e.peer) + " for term " +
              std::to_string(e.a);
      break;
    case JournalEventKind::kLeaseReject:
      line += std::string("lease holds: rejects ") +
              (e.b != 0 ? "pre-vote" : "vote") + " from " + name_of(e.peer) +
              " at term " + std::to_string(e.a);
      break;
    case JournalEventKind::kQuorumLost:
      line += "QUORUM LOST as leader, term " + std::to_string(e.a) + " (" +
              std::to_string(e.b) + " responsive)";
      break;
    case JournalEventKind::kRpcSend:
      line += "send " +
              std::string(JournalRpcName(static_cast<JournalRpc>(e.a))) +
              " -> " + name_of(e.peer) + " (" + std::to_string(e.b) + " B)";
      break;
    case JournalEventKind::kRpcRecv:
      line += "recv " +
              std::string(JournalRpcName(static_cast<JournalRpc>(e.a))) +
              " <- " + name_of(e.peer) + " (" + std::to_string(e.b) + " B)";
      break;
    case JournalEventKind::kRpcDrop:
      line += "DROP -> " + name_of(e.peer) + " (" + std::to_string(e.b) +
              " B)";
      break;
    case JournalEventKind::kWindowInsert:
      line += "window insert idx " + std::to_string(e.a) + " (occ " +
              std::to_string(e.b) + ")";
      break;
    case JournalEventKind::kWindowEvict:
      line += "window evict idx " + std::to_string(e.a) + " (occ " +
              std::to_string(e.b) + ")";
      break;
    case JournalEventKind::kWindowFlush:
      line += "window flush from idx " + std::to_string(e.a) + " x" +
              std::to_string(e.b);
      break;
    case JournalEventKind::kCommitAdvance:
      line += "commit -> " + std::to_string(e.a) + " (+" +
              std::to_string(e.b) + ")";
      break;
    case JournalEventKind::kApplyAdvance:
      line += "applied -> " + std::to_string(e.a);
      break;
    case JournalEventKind::kDiskWrite:
      line += "disk write " + std::to_string(e.a) + " B (frontier " +
              std::to_string(e.b) + ")";
      break;
    case JournalEventKind::kDiskFsync:
      line += "fsync complete, durable frontier " + std::to_string(e.a) +
              " (" + std::to_string(e.b) + " ns)";
      break;
    case JournalEventKind::kStorageFailure:
      line += std::string("STORAGE FAILURE -> ") +
              (e.a != 0 ? "step down" : "halt");
      break;
    case JournalEventKind::kCrash:
      line += "CRASH";
      if (e.b != 0) line += " (durable image survives)";
      break;
    case JournalEventKind::kRestart:
      line += "restart";
      break;
    case JournalEventKind::kRecovery:
      line += "recovered through idx " + std::to_string(e.a);
      if (e.b != 0) line += " QUARANTINED (corruption repaired)";
      break;
    case JournalEventKind::kNemesisFault:
      line += "nemesis fault kind " + std::to_string(e.a);
      if (e.peer >= 0) line += " with " + name_of(e.peer);
      line += " param " + std::to_string(e.b);
      break;
    case JournalEventKind::kNemesisHeal:
      line += "nemesis heal kind " + std::to_string(e.a);
      break;
    case JournalEventKind::kViolation:
      line += "!!! INVARIANT VIOLATION #" + std::to_string(e.a) + " !!!";
      break;
    case JournalEventKind::kConfigPropose:
      line += std::string("proposes ") + (e.b != 0 ? "joint " : "") +
              "config at idx " + std::to_string(e.a);
      break;
    case JournalEventKind::kConfigJoint:
      line += "enters joint config at idx " + std::to_string(e.a) + " (" +
              std::to_string(e.b) + " new voters)";
      break;
    case JournalEventKind::kConfigCommit:
      line += "config committed at idx " + std::to_string(e.a) + " (" +
              std::to_string(e.b) + " voters)";
      break;
    case JournalEventKind::kLearnerAdd:
      line += "adds learner " + name_of(e.peer) + " at idx " +
              std::to_string(e.a);
      break;
    case JournalEventKind::kLearnerPromote:
      line += "promotes learner " + name_of(e.peer) + " at idx " +
              std::to_string(e.a);
      break;
    case JournalEventKind::kTransferStart:
      line += "transfers leadership to " + name_of(e.peer) + ", term " +
              std::to_string(e.a);
      break;
    case JournalEventKind::kTransferDone:
      line += "leadership transfer complete, term " + std::to_string(e.a);
      break;
    case JournalEventKind::kNumKinds:
      line += "?";
      break;
  }
  return line;
}

Status Journal::WriteTimeline(const std::string& path, SimTime cutoff,
                              SimDuration lookback,
                              const EndpointNamer& namer) const {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) {
    return Status::IoError("cannot open timeline " + path);
  }
  const SimTime from = lookback > 0 ? cutoff - lookback : 0;
  std::fprintf(f.get(),
               "# flight-recorder timeline: %" PRIu64 " events recorded, %" PRIu64
               " overwritten; window [%" PRId64 ", %" PRId64 "] ns\n",
               recorded_, dropped_, from, cutoff);
  for (const JournalEvent& e : MergedEvents()) {
    if (e.at < from || e.at > cutoff) continue;
    std::fputs(FormatEvent(e, namer).c_str(), f.get());
    std::fputc('\n', f.get());
  }
  if (std::ferror(f.get()) != 0) {
    return Status::IoError("write failed for " + path);
  }
  return Status::Ok();
}

}  // namespace nbraft::obs
