#ifndef NBRAFT_OBS_JOURNAL_H_
#define NBRAFT_OBS_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "sim/simulator.h"

namespace nbraft::obs {

/// What a journal event describes. Names follow the documented
/// `subsystem.noun_verb` scheme (see KindName / src/obs/names.h).
enum class JournalEventKind : uint8_t {
  // raft: consensus engine transitions.
  kRoleChange = 0,  ///< a = new role (0 F / 1 C / 2 L), b = term.
  kTermChange,      ///< a = old term, b = new term.
  kElectionStart,   ///< a = term.
  kLeaderElected,   ///< a = term.
  kStepDown,        ///< a = term, b = 1 when leadership was lost.
  // election: mitigation phases (PreVote / leader lease / CheckQuorum).
  kPreVoteStart,   ///< a = prospective term.
  kPreVoteGrant,   ///< peer = candidate, a = prospective term.
  kPreVoteReject,  ///< peer = candidate, a = prospective term.
  kLeaseReject,    ///< peer = candidate, a = candidate term, b = 1 prevote.
  kQuorumLost,     ///< a = term, b = responsive voters (incl. self).
  // net: RPCs, decoded at the consensus layer.
  kRpcSend,  ///< peer = to, a = JournalRpc, b = wire bytes.
  kRpcRecv,  ///< peer = from, a = JournalRpc, b = wire bytes.
  kRpcDrop,  ///< node = from, peer = to, a = -1 (undecoded), b = bytes.
  // raft: sliding window (NB-Raft out-of-order ingress).
  kWindowInsert,  ///< a = index, b = occupancy after insert.
  kWindowEvict,   ///< a = index, b = occupancy after evict.
  kWindowFlush,   ///< a = first flushed index, b = flushed count.
  // raft: commit / apply progress.
  kCommitAdvance,  ///< a = new commit index, b = entries advanced.
  kApplyAdvance,   ///< a = applied index, b = request id.
  // storage: durable log activity.
  kDiskWrite,       ///< a = staged record bytes, b = pending entry frontier.
  kDiskFsync,       ///< a = durable entry frontier, b = barrier latency ns.
  kStorageFailure,  ///< a = 1 leader step-down / 0 follower halt.
  // lifecycle.
  kCrash,     ///< b = 1 when the durable image survives (disk/WAL mode).
  kRestart,   ///< —
  kRecovery,  ///< a = recovered last index, b = 1 when quarantined.
  // chaos.
  kNemesisFault,  ///< a = FaultKind, b = param; peer = second victim.
  kNemesisHeal,   ///< a = FaultKind, b = param.
  kViolation,     ///< a = violation ordinal (oracle's running count).
  // membership: dynamic reconfiguration (joint consensus + learners).
  kConfigPropose,   ///< a = config entry index, b = 1 when joint.
  kConfigJoint,     ///< a = joint entry index, b = |C_new|.
  kConfigCommit,    ///< a = config entry index, b = |voters|.
  kLearnerAdd,      ///< peer = learner, a = config entry index.
  kLearnerPromote,  ///< peer = learner, a = joint entry index.
  kTransferStart,   ///< peer = target, a = term.
  kTransferDone,    ///< a = term of the transferred leadership.
  kNumKinds
};

/// RPC type vocabulary for kRpcSend/kRpcRecv `a` arguments. Defined here so
/// the journal can print names without depending on the raft layer; the
/// raft message router translates payload types into this enum.
enum class JournalRpc : int8_t {
  kUnknown = -1,
  kAppendEntries = 0,
  kHeartbeat,
  kAppendEntriesResp,
  kRequestVote,
  kRequestVoteResp,
  kClientRequest,
  kClientResponse,
  kInstallSnapshot,
  kInstallSnapshotResp,
  kRead,
  kReadResp,
  kTimeoutNow,
};

const char* JournalRpcName(JournalRpc rpc);

/// One structured protocol event. Plain data, fixed size: the rings hold
/// these by value and recording never allocates.
struct JournalEvent {
  SimTime at = 0;
  uint64_t seq = 0;  ///< Global record order (total order across rings).
  JournalEventKind kind = JournalEventKind::kNumKinds;
  int32_t node = -1;  ///< Acting replica, or -1 for cluster-level events.
  int32_t peer = -1;  ///< Other endpoint, when the event has one.
  int64_t a = 0;      ///< Kind-specific (see JournalEventKind comments).
  int64_t b = 0;
};

/// The cluster flight recorder: one fixed-capacity ring of JournalEvents
/// per replica plus one shared ring for cluster-level events (nemesis,
/// oracle, clients), so a chatty node cannot evict another node's history.
/// Recording is O(1) with zero steady-state allocation; a null Journal*
/// (the default everywhere) makes every hook a single branch — untraced
/// runs pay nothing, which is what keeps the perf-smoke gate green.
///
/// Events carry a global sequence number stamped at record time; merging
/// the rings and sorting by `seq` reproduces exact causal record order
/// (the simulator is single-threaded), which is what makes post-mortem
/// dumps byte-identical across reruns of the same seed.
class Journal {
 public:
  struct Options {
    size_t per_node_capacity = 1 << 14;
  };

  /// `sim` provides the virtual clock; may be nullptr in unit tests that
  /// use RecordAt. `num_nodes` rings are created for replicas 0..N-1.
  Journal(const sim::Simulator* sim, int num_nodes, Options options);
  Journal(const sim::Simulator* sim, int num_nodes)
      : Journal(sim, num_nodes, Options{}) {}

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  /// Stamped with the simulator's current virtual time. Events whose
  /// `node` is outside [0, num_nodes) land in the shared cluster ring.
  void Record(JournalEventKind kind, int32_t node, int32_t peer = -1,
              int64_t a = 0, int64_t b = 0);

  /// Explicit-timestamp variant (tests, callers without a simulator).
  void RecordAt(SimTime at, JournalEventKind kind, int32_t node,
                int32_t peer = -1, int64_t a = 0, int64_t b = 0);

  // ---- Introspection ----
  int num_nodes() const { return num_nodes_; }
  uint64_t events_recorded() const { return recorded_; }
  uint64_t events_dropped() const { return dropped_; }

  /// Retained events of one ring, oldest first. `node` in [0, num_nodes)
  /// or num_nodes() for the shared cluster ring.
  std::vector<JournalEvent> NodeEvents(int node) const;

  /// All retained events merged across rings, in record (seq) order.
  std::vector<JournalEvent> MergedEvents() const;

  void Clear();

  // ---- Post-mortem export ----

  /// Maps an endpoint id to a display name; nullptr labels "node N".
  using EndpointNamer = std::function<std::string(int32_t)>;

  /// Maps an endpoint id to its consensus group (multi-Raft sharding), or
  /// -1 for cluster-level ids. When set, every JSONL event line carries a
  /// "group" field so post-mortems of a sharded cluster can be filtered
  /// per group. Left unset (the default, and always in single-group
  /// clusters) the dump format is byte-identical to the pre-sharding one.
  using GroupResolver = std::function<int32_t(int32_t)>;
  void set_group_resolver(GroupResolver resolver) {
    group_resolver_ = std::move(resolver);
  }

  /// Writes the merged, record-ordered event stream as JSONL. Events older
  /// than `cutoff - lookback` are skipped when lookback > 0 (the "last N
  /// seconds before the violation" window); pass lookback = 0 to dump
  /// everything retained. The first line is a meta object with recorded /
  /// dropped / emitted counts so truncation is always visible.
  Status WriteJsonl(const std::string& path, SimTime cutoff,
                    SimDuration lookback) const;

  /// Human-readable timeline of the same window: one line per event,
  /// virtual-time ordered, with decoded kind/RPC names.
  Status WriteTimeline(const std::string& path, SimTime cutoff,
                       SimDuration lookback,
                       const EndpointNamer& namer) const;

  /// `subsystem.noun_verb` name of a kind (stable vocabulary, used by the
  /// exporters and pinned by the naming-scheme test).
  static const char* KindName(JournalEventKind kind);

  /// One formatted timeline line (no trailing newline), shared by
  /// WriteTimeline and tests.
  static std::string FormatEvent(const JournalEvent& e,
                                 const EndpointNamer& namer);

 private:
  struct Ring {
    std::vector<JournalEvent> slots;
    size_t head = 0;       ///< Next write position.
    uint64_t written = 0;  ///< Total ever recorded into this ring.

    size_t retained() const {
      return written < slots.size() ? static_cast<size_t>(written)
                                    : slots.size();
    }
  };

  const Ring& RingFor(int node) const;

  const sim::Simulator* sim_;
  int num_nodes_;
  bool enabled_ = true;
  GroupResolver group_resolver_;
  std::vector<Ring> rings_;  ///< [0..num_nodes-1] replicas, [num_nodes] shared.
  uint64_t next_seq_ = 0;
  uint64_t recorded_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace nbraft::obs

#endif  // NBRAFT_OBS_JOURNAL_H_
