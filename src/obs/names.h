#ifndef NBRAFT_OBS_NAMES_H_
#define NBRAFT_OBS_NAMES_H_

#include <cstddef>

namespace nbraft::obs::names {

/// Canonical metric / trace / journal vocabulary.
///
/// Every user-visible observability name — tracer instants, registry
/// counters and gauges, sampler pull sources, and journal event kinds —
/// follows one scheme:
///
///     subsystem.noun_verb[.nodeN]
///
/// where `subsystem` is one of {net, raft, election, storage, client,
/// chaos, sim, membership}
/// and the optional `.nodeN` suffix scopes a per-replica series. The
/// constants below are the single source of truth: call sites reference
/// them instead of re-typing string literals, and the conformance test
/// (tests/obs/journal_test.cc) walks kAllNames to pin the scheme. DESIGN
/// section "2e. Observability pipeline" documents each name's meaning.

// ---- Tracer instants ----
inline constexpr char kEntryIndexed[] = "raft.entry_indexed";
inline constexpr char kMsgSend[] = "net.msg_send";
inline constexpr char kMsgRecv[] = "net.msg_recv";
inline constexpr char kMsgDrop[] = "net.msg_drop";
inline constexpr char kWindowInsert[] = "raft.window_insert";
inline constexpr char kWindowEvict[] = "raft.window_evict";
inline constexpr char kWindowFlush[] = "raft.window_flush";
inline constexpr char kElectionStart[] = "raft.election_start";
inline constexpr char kLeaderElected[] = "raft.leader_elected";
inline constexpr char kClientRetryAll[] = "client.retry_all";
inline constexpr char kClientWeakAccept[] = "client.weak_accept";
inline constexpr char kClientStrongAccept[] = "client.strong_accept";

// ---- Election-mitigation instants (PreVote / lease / CheckQuorum) ----
inline constexpr char kPreVoteStart[] = "election.prevote_start";
inline constexpr char kPreVoteGrant[] = "election.prevote_grant";
inline constexpr char kPreVoteReject[] = "election.prevote_reject";
inline constexpr char kLeaseReject[] = "election.lease_reject";
inline constexpr char kQuorumLost[] = "election.quorum_lost";

// ---- Chaos instants (nemesis fault / heal markers) ----
inline constexpr char kChaosCrash[] = "chaos.crash_inject";
inline constexpr char kChaosRestart[] = "chaos.node_restart";
inline constexpr char kChaosPartition[] = "chaos.partition_inject";
inline constexpr char kChaosStorm[] = "chaos.storm_inject";
inline constexpr char kChaosSkew[] = "chaos.skew_inject";
inline constexpr char kChaosSlow[] = "chaos.slow_inject";
inline constexpr char kChaosDisk[] = "chaos.disk_inject";
inline constexpr char kChaosHeal[] = "chaos.fault_heal";
inline constexpr char kChaosFault[] = "chaos.fault_inject";
/// Protocol-level adversaries (disruptive server, vote withholder,
/// election storm) — attacks on the protocol itself rather than the
/// environment.
inline constexpr char kChaosAdversary[] = "chaos.adversary_inject";

// ---- Membership events (dynamic reconfiguration journal kinds) ----
inline constexpr char kConfigPropose[] = "membership.config_propose";
inline constexpr char kConfigJoint[] = "membership.joint_enter";
inline constexpr char kConfigCommit[] = "membership.config_commit";
inline constexpr char kLearnerAdd[] = "membership.learner_add";
inline constexpr char kLearnerPromote[] = "membership.learner_promote";
inline constexpr char kTransferStart[] = "membership.transfer_start";
inline constexpr char kTransferDone[] = "membership.transfer_done";

// ---- Registry counters ----
inline constexpr char kChaosFaultsInjected[] = "chaos.faults_injected";
inline constexpr char kChaosHealsTotal[] = "chaos.heals_total";
/// Per-kind chaos counters are built as "chaos." + FaultKindName(kind),
/// e.g. "chaos.crash", "chaos.partition_oneway" — see chaos_plan.cc.

// ---- Sampler pull sources (cluster-wide) ----
inline constexpr char kWindowOccupancy[] = "raft.window_occupancy";
inline constexpr char kCommitIndexMax[] = "raft.commit_index_max";
inline constexpr char kApplyLag[] = "raft.apply_lag";
inline constexpr char kDispatcherQueueDepth[] = "raft.dispatcher_queue_depth";
inline constexpr char kRpcsInflight[] = "raft.rpcs_inflight";
inline constexpr char kNicBytesSent[] = "net.bytes_sent";

// ---- Sampler pull sources (per-node; suffixed ".nodeN" at registration)
inline constexpr char kWindowOccupancyNode[] = "raft.window_occupancy";
inline constexpr char kBarriersPending[] = "storage.barriers_pending";
inline constexpr char kReplicationLag[] = "raft.replication_lag";
inline constexpr char kCpuQueueDepth[] = "sim.cpu_queue_depth";
inline constexpr char kIoQueueDepth[] = "sim.io_queue_depth";

/// Every fixed name above, for the scheme-conformance test.
inline constexpr const char* kAllNames[] = {
    kEntryIndexed,       kMsgSend,
    kMsgRecv,            kMsgDrop,
    kWindowInsert,       kWindowEvict,
    kWindowFlush,        kElectionStart,
    kLeaderElected,      kClientRetryAll,
    kClientWeakAccept,   kClientStrongAccept,
    kPreVoteStart,       kPreVoteGrant,
    kPreVoteReject,      kLeaseReject,
    kQuorumLost,         kChaosAdversary,
    kChaosCrash,         kChaosRestart,
    kChaosPartition,     kChaosStorm,
    kChaosSkew,          kChaosSlow,
    kChaosDisk,          kChaosHeal,
    kChaosFault,         kChaosFaultsInjected,
    kChaosHealsTotal,    kWindowOccupancy,
    kCommitIndexMax,     kApplyLag,
    kDispatcherQueueDepth, kRpcsInflight,
    kNicBytesSent,       kBarriersPending,
    kReplicationLag,     kCpuQueueDepth,
    kIoQueueDepth,       kConfigPropose,
    kConfigJoint,        kConfigCommit,
    kLearnerAdd,         kLearnerPromote,
    kTransferStart,      kTransferDone,
};

inline constexpr size_t kAllNamesCount =
    sizeof(kAllNames) / sizeof(kAllNames[0]);

}  // namespace nbraft::obs::names

#endif  // NBRAFT_OBS_NAMES_H_
