#include "obs/registry.h"

#include <utility>

#include "common/logging.h"
#include "obs/series_store.h"

namespace nbraft::obs {

Counter* Registry::GetCounter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return &it->second;
  return &counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge* Registry::GetGauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return &it->second;
  return &gauges_.emplace(std::string(name), Gauge{}).first->second;
}

void Registry::AddSource(std::string name, std::function<double()> read) {
  NBRAFT_CHECK(read != nullptr);
  sources_.push_back(Source{std::move(name), std::move(read)});
}

std::vector<std::pair<std::string, int64_t>> Registry::CounterValues() const {
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter.value());
  }
  return out;
}

std::vector<std::pair<std::string, double>> Registry::GaugeValues() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge.value());
  }
  return out;
}

Sampler::Sampler(sim::Simulator* sim, Registry* registry,
                 SimDuration interval)
    : sim_(sim), registry_(registry), interval_(interval) {
  NBRAFT_CHECK(sim != nullptr);
  NBRAFT_CHECK(registry != nullptr);
  NBRAFT_CHECK_GT(interval, 0);
}

Sampler::~Sampler() { Stop(); }

void Sampler::Start() {
  if (running_) return;
  running_ = true;
  names_.clear();
  names_.reserve(registry_->sources().size());
  for (const auto& source : registry_->sources()) {
    names_.push_back(source.name);
  }
  if (store_ != nullptr) {
    store_series_.clear();
    store_series_.reserve(names_.size());
    for (const std::string& name : names_) {
      store_series_.push_back(store_->AddSeries(name));
    }
  }
  Tick();
}

void Sampler::Stop() {
  running_ = false;
  sim_->Cancel(tick_event_);
  tick_event_ = sim::kInvalidEventId;
}

void Sampler::Tick() {
  if (!running_) return;
  Sample sample;
  sample.at = sim_->Now();
  sample.values.reserve(names_.size());
  // Only the sources frozen at Start() are read, even if more were added
  // since — keeps every Sample parallel to series_names().
  for (size_t i = 0; i < names_.size(); ++i) {
    sample.values.push_back(registry_->sources()[i].read());
  }
  if (store_ != nullptr) {
    for (size_t i = 0; i < sample.values.size(); ++i) {
      store_->Append(store_series_[i], sample.at, sample.values[i]);
    }
  }
  samples_.push_back(std::move(sample));
  tick_event_ = sim_->After(interval_, [this]() { Tick(); });
}

}  // namespace nbraft::obs
