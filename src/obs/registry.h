#ifndef NBRAFT_OBS_REGISTRY_H_
#define NBRAFT_OBS_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/sim_time.h"
#include "sim/simulator.h"

namespace nbraft::obs {

/// Monotonic named counter. Obtained from a Registry; pointers stay valid
/// for the registry's lifetime.
class Counter {
 public:
  void Increment(int64_t delta = 1) { value_ += delta; }
  void Set(int64_t value) { value_ = value; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

/// Last-write-wins named gauge.
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Live telemetry registry: named counters and gauges created on demand,
/// plus pull-style sample sources the Sampler reads on its virtual-time
/// tick (window occupancy, commit lag, queue depths, NIC bytes, ...).
/// Single-threaded, like everything driven by the simulator.
class Registry {
 public:
  struct Source {
    std::string name;
    std::function<double()> read;
  };

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Create-on-demand lookup; the returned pointer is stable.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);

  /// Registers a pull source sampled by the Sampler. Sources are read in
  /// registration order (deterministic).
  void AddSource(std::string name, std::function<double()> read);

  const std::vector<Source>& sources() const { return sources_; }

  /// Name-sorted snapshots, for the exporters.
  std::vector<std::pair<std::string, int64_t>> CounterValues() const;
  std::vector<std::pair<std::string, double>> GaugeValues() const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::vector<Source> sources_;
};

class SeriesStore;

/// Periodically snapshots every Registry source on the simulator's virtual
/// clock. The sample stream is what the exporters turn into Chrome-trace
/// counter tracks (window occupancy over time, queue depth over time, ...).
///
/// The sampler only *reads* cluster state — scheduling its tick events must
/// not perturb a run (the trace-parity test pins this down).
class Sampler {
 public:
  struct Sample {
    SimTime at = 0;
    std::vector<double> values;  ///< Parallel to series_names().
  };

  Sampler(sim::Simulator* sim, Registry* registry, SimDuration interval);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Takes an immediate sample and schedules the periodic tick. The source
  /// list is frozen at Start().
  void Start();
  void Stop();

  /// Mirrors every sample into `store` as Gorilla-compressed series (one
  /// store series per source, registered at Start()). Must be set before
  /// Start(); pass nullptr to detach. The raw samples() stream is kept —
  /// the round-trip test decodes the store against it bit-for-bit.
  void set_series_store(SeriesStore* store) { store_ = store; }
  SeriesStore* series_store() const { return store_; }

  SimDuration interval() const { return interval_; }
  const std::vector<std::string>& series_names() const { return names_; }
  const std::vector<Sample>& samples() const { return samples_; }

 private:
  void Tick();

  sim::Simulator* sim_;
  Registry* registry_;
  SimDuration interval_;
  bool running_ = false;
  sim::EventId tick_event_ = sim::kInvalidEventId;
  std::vector<std::string> names_;
  std::vector<Sample> samples_;
  SeriesStore* store_ = nullptr;
  std::vector<size_t> store_series_;  ///< Parallel to names_ when store_ set.
};

}  // namespace nbraft::obs

#endif  // NBRAFT_OBS_REGISTRY_H_
