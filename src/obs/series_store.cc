#include "obs/series_store.h"

#include <utility>

#include "common/logging.h"

namespace nbraft::obs {

SeriesStore::SeriesStore(size_t chunk_points)
    : chunk_points_(chunk_points) {
  NBRAFT_CHECK_GT(chunk_points, 0u);
}

size_t SeriesStore::AddSeries(std::string name) {
  Series s;
  s.name = std::move(name);
  s.open.reserve(chunk_points_);
  series_.push_back(std::move(s));
  return series_.size() - 1;
}

void SeriesStore::Append(size_t series, SimTime at, double value) {
  Series& s = series_[series];
  s.open.push_back(tsdb::Point{at, value});
  ++s.count;
  if (s.open.size() >= chunk_points_) Seal(&s);
}

void SeriesStore::Seal(Series* s) {
  if (s->open.empty()) return;
  // The series id inside the chunk is the store-local index; bundles key
  // series by name, so the id only needs to be stable within the store.
  const auto id = static_cast<uint64_t>(s - series_.data());
  s->sealed.push_back(tsdb::BuildChunk(id, s->open));
  s->open.clear();
}

void SeriesStore::SealAll() {
  for (Series& s : series_) Seal(&s);
}

size_t SeriesStore::encoded_bytes(size_t series) const {
  size_t total = 0;
  for (const tsdb::Chunk& chunk : series_[series].sealed) {
    total += chunk.EncodedBytes();
  }
  return total;
}

Result<std::vector<tsdb::Point>> SeriesStore::Decode(size_t series) const {
  const Series& s = series_[series];
  std::vector<tsdb::Point> out;
  out.reserve(s.count);
  for (const tsdb::Chunk& chunk : s.sealed) {
    auto points = chunk.Decode();
    if (!points.ok()) return points.status();
    out.insert(out.end(), points->begin(), points->end());
  }
  out.insert(out.end(), s.open.begin(), s.open.end());
  return out;
}

}  // namespace nbraft::obs
