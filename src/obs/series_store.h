#ifndef NBRAFT_OBS_SERIES_STORE_H_
#define NBRAFT_OBS_SERIES_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "tsdb/encoding.h"

namespace nbraft::obs {

/// Compressed storage for sampled telemetry series: the consensus system
/// monitors itself with its own storage format. Every appended sample is
/// buffered in a small open block and sealed into an immutable
/// Gorilla-encoded tsdb::Chunk (delta-of-delta timestamps + XOR values)
/// every `chunk_points` samples — exactly the encoder the replicated
/// state machine flushes memtables with. Decode() walks sealed chunks plus
/// the open tail and must reproduce every (timestamp, value) bit-exactly;
/// the round-trip test pins this.
class SeriesStore {
 public:
  explicit SeriesStore(size_t chunk_points = 512);

  SeriesStore(const SeriesStore&) = delete;
  SeriesStore& operator=(const SeriesStore&) = delete;

  /// Registers a series and returns its id (dense, registration order).
  size_t AddSeries(std::string name);

  size_t series_count() const { return series_.size(); }
  const std::string& name(size_t series) const {
    return series_[series].name;
  }

  /// Appends one sample. Timestamps are virtual-time nanoseconds and must
  /// be non-decreasing per series (the Sampler ticks monotonically).
  void Append(size_t series, SimTime at, double value);

  /// Number of samples recorded into `series`.
  size_t point_count(size_t series) const {
    return series_[series].count;
  }

  /// Sealed Gorilla chunks (excludes the open tail).
  const std::vector<tsdb::Chunk>& chunks(size_t series) const {
    return series_[series].sealed;
  }

  /// Gorilla-encoded bytes across sealed chunks of `series`.
  size_t encoded_bytes(size_t series) const;

  /// Raw size the same samples would occupy uncompressed (16 B/sample).
  size_t raw_bytes(size_t series) const {
    return series_[series].count * 16;
  }

  /// Decodes the full series back from the compressed chunks + open tail.
  Result<std::vector<tsdb::Point>> Decode(size_t series) const;

  /// Seals every open tail so chunks() covers all data (end of run).
  void SealAll();

 private:
  struct Series {
    std::string name;
    std::vector<tsdb::Chunk> sealed;
    std::vector<tsdb::Point> open;
    size_t count = 0;
  };

  void Seal(Series* s);

  size_t chunk_points_;
  std::vector<Series> series_;
};

}  // namespace nbraft::obs

#endif  // NBRAFT_OBS_SERIES_STORE_H_
