#include "obs/tracer.h"

#include "common/logging.h"

namespace nbraft::obs {

Tracer::Tracer(const sim::Simulator* sim, Options options) : sim_(sim) {
  NBRAFT_CHECK_GT(options.span_capacity, 0u);
  NBRAFT_CHECK_GT(options.instant_capacity, 0u);
  span_ring_.resize(options.span_capacity);
  instant_ring_.resize(options.instant_capacity);
}

void Tracer::RecordSpan(metrics::Phase phase, int32_t node, int64_t term,
                        int64_t index, uint64_t request_id, SimTime start,
                        SimTime end) {
  if (!enabled_) return;
  if (spans_recorded_ >= span_ring_.size()) ++spans_dropped_;
  span_ring_[span_head_] =
      SpanEvent{phase, node, term, index, request_id, start, end};
  span_head_ = (span_head_ + 1) % span_ring_.size();
  ++spans_recorded_;
  span_totals_.Add(phase, end - start);
}

void Tracer::RecordInstant(const char* name, int32_t node, int64_t arg0,
                           int64_t arg1) {
  if (!enabled_) return;
  RecordInstantAt(name, node, sim_ != nullptr ? sim_->Now() : 0, arg0, arg1);
}

void Tracer::RecordInstantAt(const char* name, int32_t node, SimTime at,
                             int64_t arg0, int64_t arg1) {
  if (!enabled_) return;
  if (instants_recorded_ >= instant_ring_.size()) ++instants_dropped_;
  instant_ring_[instant_head_] = InstantEvent{name, node, at, arg0, arg1};
  instant_head_ = (instant_head_ + 1) % instant_ring_.size();
  ++instants_recorded_;
}

size_t Tracer::span_count() const {
  return spans_recorded_ < span_ring_.size()
             ? static_cast<size_t>(spans_recorded_)
             : span_ring_.size();
}

size_t Tracer::instant_count() const {
  return instants_recorded_ < instant_ring_.size()
             ? static_cast<size_t>(instants_recorded_)
             : instant_ring_.size();
}

std::vector<SpanEvent> Tracer::spans() const {
  std::vector<SpanEvent> out;
  const size_t n = span_count();
  out.reserve(n);
  // Oldest element sits at the head once the ring has wrapped.
  const size_t start =
      spans_recorded_ < span_ring_.size() ? 0 : span_head_;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(span_ring_[(start + i) % span_ring_.size()]);
  }
  return out;
}

std::vector<InstantEvent> Tracer::instants() const {
  std::vector<InstantEvent> out;
  const size_t n = instant_count();
  out.reserve(n);
  const size_t start =
      instants_recorded_ < instant_ring_.size() ? 0 : instant_head_;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(instant_ring_[(start + i) % instant_ring_.size()]);
  }
  return out;
}

void Tracer::Clear() {
  span_head_ = 0;
  spans_recorded_ = 0;
  spans_dropped_ = 0;
  instant_head_ = 0;
  instants_recorded_ = 0;
  instants_dropped_ = 0;
  span_totals_.Reset();
}

}  // namespace nbraft::obs
