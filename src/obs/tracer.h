#ifndef NBRAFT_OBS_TRACER_H_
#define NBRAFT_OBS_TRACER_H_

#include <cstdint>
#include <vector>

#include "common/sim_time.h"
#include "metrics/breakdown.h"
#include "sim/simulator.h"

namespace nbraft::obs {

/// One completed lifecycle phase of a replicated entry: the paper's Table I
/// taxonomy stamped with virtual time. Spans on the client path (before the
/// leader assigns a slot) carry only `request_id`; spans from the leader's
/// indexing step onward carry (term, index). The `raft.entry_indexed`
/// instant event joins the two key spaces.
struct SpanEvent {
  metrics::Phase phase = metrics::Phase::kNumPhases;
  int32_t node = -1;        ///< Replica id or client endpoint id.
  int64_t term = 0;         ///< 0 when not yet assigned.
  int64_t index = 0;        ///< 0 when not yet assigned.
  uint64_t request_id = 0;  ///< 0 for entries without a client (no-ops).
  SimTime start = 0;
  SimTime end = 0;

  SimDuration duration() const { return end - start; }
};

/// A point event: network send/recv/drop, window insert/evict/flush,
/// elections, client-side WEAK/STRONG accepts. `name` must be a string
/// literal (the tracer stores the pointer, not a copy). The two integer
/// arguments are event-specific; DESIGN.md documents each event's meaning.
struct InstantEvent {
  const char* name = "";
  int32_t node = -1;
  SimTime at = 0;
  int64_t arg0 = 0;
  int64_t arg1 = 0;
};

/// Records per-entry lifecycle spans and point events into fixed-capacity
/// ring buffers. Recording is O(1) with no allocation after construction;
/// when a buffer is full the oldest event is overwritten (dropped counters
/// track the loss). A disabled tracer turns every Record* into a single
/// branch, and the rest of the codebase holds `Tracer*` that is simply
/// nullptr when tracing is off — zero cost on the hot paths.
///
/// Per-phase duration totals are accumulated at record time, so
/// `SpanBreakdown()` stays exact even after ring-buffer eviction and can be
/// checked against the end-of-run `metrics::Breakdown` (the trace_explorer
/// acceptance check).
class Tracer {
 public:
  struct Options {
    size_t span_capacity = 1 << 20;
    size_t instant_capacity = 1 << 18;
  };

  /// `sim` provides the virtual clock for instants; may be nullptr in unit
  /// tests that pass explicit timestamps.
  explicit Tracer(const sim::Simulator* sim) : Tracer(sim, Options{}) {}
  Tracer(const sim::Simulator* sim, Options options);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  void RecordSpan(metrics::Phase phase, int32_t node, int64_t term,
                  int64_t index, uint64_t request_id, SimTime start,
                  SimTime end);

  /// Stamped with the simulator's current virtual time.
  void RecordInstant(const char* name, int32_t node, int64_t arg0 = 0,
                     int64_t arg1 = 0);

  /// Explicit-timestamp variant (tests, or callers without a simulator).
  void RecordInstantAt(const char* name, int32_t node, SimTime at,
                       int64_t arg0 = 0, int64_t arg1 = 0);

  // ---- Introspection / export ----

  /// Retained events, oldest first.
  std::vector<SpanEvent> spans() const;
  std::vector<InstantEvent> instants() const;

  size_t span_count() const;     ///< Retained (<= capacity).
  size_t instant_count() const;
  uint64_t spans_recorded() const { return spans_recorded_; }
  uint64_t spans_dropped() const { return spans_dropped_; }
  uint64_t instants_recorded() const { return instants_recorded_; }
  uint64_t instants_dropped() const { return instants_dropped_; }

  /// Exact per-phase duration totals over every span ever recorded
  /// (eviction-proof).
  const metrics::Breakdown& SpanBreakdown() const { return span_totals_; }

  void Clear();

 private:
  const sim::Simulator* sim_;
  bool enabled_ = true;

  std::vector<SpanEvent> span_ring_;
  size_t span_head_ = 0;  ///< Next write position.
  uint64_t spans_recorded_ = 0;
  uint64_t spans_dropped_ = 0;

  std::vector<InstantEvent> instant_ring_;
  size_t instant_head_ = 0;
  uint64_t instants_recorded_ = 0;
  uint64_t instants_dropped_ = 0;

  metrics::Breakdown span_totals_;
};

}  // namespace nbraft::obs

#endif  // NBRAFT_OBS_TRACER_H_
