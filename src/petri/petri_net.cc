#include "petri/petri_net.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace nbraft::petri {

PetriNet::PetriNet(uint64_t seed) : rng_(seed) {}

PlaceId PetriNet::AddPlace(std::string name, int initial_tokens) {
  NBRAFT_CHECK_GE(initial_tokens, 0);
  Place p;
  p.name = std::move(name);
  p.tokens = initial_tokens;
  places_.push_back(std::move(p));
  return static_cast<PlaceId>(places_.size() - 1);
}

TransitionId PetriNet::AddTransition(std::string name, std::vector<Arc> inputs,
                                     std::vector<Arc> outputs, DelayFn delay,
                                     double weight, GuardFn guard) {
  Transition t;
  t.name = std::move(name);
  t.inputs = std::move(inputs);
  t.outputs = std::move(outputs);
  t.delay = std::move(delay);
  t.weight = weight;
  t.guard = std::move(guard);
  transitions_.push_back(std::move(t));
  return static_cast<TransitionId>(transitions_.size() - 1);
}

bool PetriNet::InputsAvailable(const Transition& t) const {
  for (const Arc& arc : t.inputs) {
    if (places_[static_cast<size_t>(arc.place)].tokens < arc.weight) {
      return false;
    }
  }
  return true;
}

int PetriNet::EnabledCopies(const Transition& t) const {
  if (t.guard != nullptr && !t.guard()) return 0;
  int copies = t.servers;
  for (const Arc& arc : t.inputs) {
    const int tokens = places_[static_cast<size_t>(arc.place)].tokens;
    copies = std::min(copies, tokens / arc.weight);
  }
  if (t.inputs.empty()) copies = std::min(copies, 1);
  return copies;
}

void PetriNet::SetServers(TransitionId t, int servers) {
  NBRAFT_CHECK_GE(servers, 1);
  transitions_[static_cast<size_t>(t)].servers = servers;
}

bool PetriNet::IsEnabled(TransitionId id) const {
  const Transition& t = transitions_[static_cast<size_t>(id)];
  if (!InputsAvailable(t)) return false;
  return t.guard == nullptr || t.guard();
}

int PetriNet::Tokens(PlaceId place) const {
  return places_[static_cast<size_t>(place)].tokens;
}

uint64_t PetriNet::Firings(TransitionId t) const {
  return transitions_[static_cast<size_t>(t)].firings;
}

double PetriNet::TokenTime(PlaceId place) const {
  const Place& p = places_[static_cast<size_t>(place)];
  return p.token_time +
         static_cast<double>(p.tokens) *
             static_cast<double>(now_ - p.last_change);
}

const std::string& PetriNet::PlaceName(PlaceId place) const {
  return places_[static_cast<size_t>(place)].name;
}

const std::string& PetriNet::TransitionName(TransitionId t) const {
  return transitions_[static_cast<size_t>(t)].name;
}

void PetriNet::AccrueTokenTime(Place* place) {
  place->token_time += static_cast<double>(place->tokens) *
                       static_cast<double>(now_ - place->last_change);
  place->last_change = now_;
}

void PetriNet::Fire(TransitionId id) {
  Transition& t = transitions_[static_cast<size_t>(id)];
  NBRAFT_CHECK(InputsAvailable(t)) << "firing disabled transition " << t.name;
  for (const Arc& arc : t.inputs) {
    Place& p = places_[static_cast<size_t>(arc.place)];
    AccrueTokenTime(&p);
    p.tokens -= arc.weight;
  }
  for (const Arc& arc : t.outputs) {
    Place& p = places_[static_cast<size_t>(arc.place)];
    AccrueTokenTime(&p);
    p.tokens += arc.weight;
  }
  ++t.firings;
}

void PetriNet::DrainImmediates() {
  for (;;) {
    // Collect enabled immediate transitions and their weights.
    double total_weight = 0.0;
    std::vector<TransitionId> enabled;
    for (size_t i = 0; i < transitions_.size(); ++i) {
      const Transition& t = transitions_[i];
      if (t.delay != nullptr) continue;
      if (!InputsAvailable(t)) continue;
      if (t.guard != nullptr && !t.guard()) continue;
      enabled.push_back(static_cast<TransitionId>(i));
      total_weight += t.weight;
    }
    if (enabled.empty()) return;
    // Weighted random choice (probabilistic branching).
    double pick = rng_.NextDouble() * total_weight;
    TransitionId chosen = enabled.back();
    for (TransitionId id : enabled) {
      pick -= transitions_[static_cast<size_t>(id)].weight;
      if (pick <= 0.0) {
        chosen = id;
        break;
      }
    }
    Fire(chosen);
    // A firing may disable pending timed transitions; they re-validate at
    // their scheduled time.
  }
}

void PetriNet::RefreshTimedTransitions() {
  for (auto& t : transitions_) {
    if (t.delay == nullptr) continue;
    const int copies = EnabledCopies(t);
    while (static_cast<int>(t.pending.size()) < copies) {
      t.pending.insert(now_ + std::max<SimDuration>(t.delay(&rng_), 0));
    }
  }
}

bool PetriNet::Step(SimTime horizon) {
  DrainImmediates();
  RefreshTimedTransitions();

  // Earliest pending firing across all timed transitions.
  SimTime best_time = std::numeric_limits<SimTime>::max();
  int best = -1;
  for (size_t i = 0; i < transitions_.size(); ++i) {
    const Transition& t = transitions_[i];
    if (!t.pending.empty() && *t.pending.begin() < best_time) {
      best_time = *t.pending.begin();
      best = static_cast<int>(i);
    }
  }
  if (best < 0 || best_time > horizon) {
    return false;
  }

  now_ = best_time;
  Transition& t = transitions_[static_cast<size_t>(best)];
  t.pending.erase(t.pending.begin());
  // Re-validate: an immediate firing may have stolen our tokens.
  if (InputsAvailable(t) && (t.guard == nullptr || t.guard())) {
    Fire(static_cast<TransitionId>(best));
  }
  return true;
}

void PetriNet::Run(SimTime horizon) {
  while (Step(horizon)) {
  }
  now_ = horizon;
  for (Place& p : places_) AccrueTokenTime(&p);
}

}  // namespace nbraft::petri
