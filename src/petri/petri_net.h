#ifndef NBRAFT_PETRI_PETRI_NET_H_
#define NBRAFT_PETRI_PETRI_NET_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/sim_time.h"

namespace nbraft::petri {

/// Place / transition handles.
using PlaceId = int;
using TransitionId = int;

/// A timed stochastic Petri net with guards — the modelling tool the paper
/// uses for Raft log replication (Sec. II, Fig. 3).
///
/// Semantics:
///  * A transition is enabled when every input place holds at least the
///    arc weight in tokens and its guard (if any) passes.
///  * Enabled timed transitions sample a firing delay and race; the first
///    to fire consumes its inputs and produces its outputs (single-server
///    semantics: one pending firing per transition).
///  * Immediate transitions (zero delay) fire before any timed one; when
///    several immediate transitions compete, one is chosen by weight —
///    this expresses probabilistic branching such as "entry arrives out of
///    order with probability p".
///
/// The engine records per-transition firing counts and per-place
/// token-time integrals, which is how the replication model extracts the
/// Fig. 4 phase proportions.
class PetriNet {
 public:
  using DelayFn = std::function<SimDuration(Rng*)>;
  using GuardFn = std::function<bool()>;

  struct Arc {
    PlaceId place = 0;
    int weight = 1;
  };

  explicit PetriNet(uint64_t seed);

  /// Adds a place with an initial marking.
  PlaceId AddPlace(std::string name, int initial_tokens = 0);

  /// Adds a timed transition. `delay` samples the firing time; pass
  /// nullptr for an immediate transition (fires in zero time, arbitrated
  /// by `weight` among competing immediates).
  TransitionId AddTransition(std::string name, std::vector<Arc> inputs,
                             std::vector<Arc> outputs, DelayFn delay,
                             double weight = 1.0, GuardFn guard = nullptr);

  /// Sets the number of parallel servers of a timed transition: up to
  /// `servers` enabled firings can be in service concurrently. 1 (the
  /// default) models a serialized resource such as the follower's log
  /// lock; a large value models a parallel stage such as the network or a
  /// dispatcher pool (use kInfiniteServers).
  void SetServers(TransitionId t, int servers);

  static constexpr int kInfiniteServers = 1 << 20;

  /// Fixed-delay convenience.
  static DelayFn FixedDelay(SimDuration d) {
    return [d](Rng*) { return d; };
  }
  /// Exponential-delay convenience.
  static DelayFn ExponentialDelay(SimDuration mean) {
    return [mean](Rng* rng) {
      return static_cast<SimDuration>(
          rng->NextExponential(static_cast<double>(mean)));
    };
  }

  // ---- Simulation ----

  /// Runs the net until `horizon` virtual time (or quiescence).
  void Run(SimTime horizon);

  /// Processes a single firing; returns false at quiescence.
  bool Step(SimTime horizon);

  SimTime Now() const { return now_; }

  // ---- State & statistics ----
  int Tokens(PlaceId place) const;
  bool IsEnabled(TransitionId t) const;
  uint64_t Firings(TransitionId t) const;

  /// Integral of token count over time for a place (token·ns): divide by
  /// elapsed time for the mean queue length, or by firings of the
  /// downstream transition for the mean waiting time (Little's law).
  double TokenTime(PlaceId place) const;

  const std::string& PlaceName(PlaceId place) const;
  const std::string& TransitionName(TransitionId t) const;
  int num_places() const { return static_cast<int>(places_.size()); }
  int num_transitions() const {
    return static_cast<int>(transitions_.size());
  }

 private:
  struct Place {
    std::string name;
    int tokens = 0;
    double token_time = 0.0;  // Integral of tokens dt.
    SimTime last_change = 0;
  };

  struct Transition {
    std::string name;
    std::vector<Arc> inputs;
    std::vector<Arc> outputs;
    DelayFn delay;          // nullptr = immediate.
    double weight = 1.0;
    GuardFn guard;
    int servers = 1;
    uint64_t firings = 0;
    std::multiset<SimTime> pending;  // In-service firings.
  };

  bool InputsAvailable(const Transition& t) const;
  /// How many concurrent enablings the marking supports.
  int EnabledCopies(const Transition& t) const;
  void Fire(TransitionId id);
  void AccrueTokenTime(Place* place);
  /// Fires eligible immediate transitions until none is enabled.
  void DrainImmediates();
  /// (Re-)schedules timed transitions that became enabled.
  void RefreshTimedTransitions();

  SimTime now_ = 0;
  std::vector<Place> places_;
  std::vector<Transition> transitions_;
  Rng rng_;
};

}  // namespace nbraft::petri

#endif  // NBRAFT_PETRI_PETRI_NET_H_
