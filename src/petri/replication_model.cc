#include "petri/replication_model.h"

#include "common/logging.h"

namespace nbraft::petri {

ReplicationModel::ReplicationModel(Params params) : params_(params) {
  NBRAFT_CHECK_GE(params_.num_clients, 1);
  NBRAFT_CHECK_GE(params_.num_dispatchers, 1);
  NBRAFT_CHECK_GE(params_.out_of_order_probability, 0.0);
  NBRAFT_CHECK_LE(params_.out_of_order_probability, 1.0);
  net_ = std::make_unique<PetriNet>(params_.seed);
  PetriNet& n = *net_;
  const bool nb = params_.window_size > 0;

  // ---- Places (Fig. 3a-c) ----
  ack_ = n.AddPlace("ACK", params_.num_clients);
  client_request_ = n.AddPlace("Client Request");
  request_pool_ = n.AddPlace("Server Request Pool");
  parsed_ = n.AddPlace("Parsed Request");
  queue_to_follower_ = n.AddPlace("Queue To Follower");
  dispatcher_idle_ = n.AddPlace("Dispatcher Idle", params_.num_dispatchers);
  in_flight_ = n.AddPlace("In Flight");
  arrived_ = n.AddPlace("Pending Request");
  ready_ = n.AddPlace("Appendable");
  waiting_ = n.AddPlace("Waiting (blue loop)");
  window_ = n.AddPlace("Sliding Window");
  appended_ = n.AddPlace("Follower Log (new)");
  acked_ = n.AddPlace("Strongly Accepted Nodes");
  committed_ = n.AddPlace("Committed Log");
  applied_ = n.AddPlace("Applied Log");
  const PlaceId pending_ack = n.AddPlace("Pending Final Ack");

  // ---- Step 1: client (Fig. 3a) ----
  generate_ = n.AddTransition(
      "Generate Request", {{ack_, 1}}, {{client_request_, 1}},
      PetriNet::ExponentialDelay(params_.gen_delay));
  send_request_ = n.AddTransition(
      "Send Request", {{client_request_, 1}}, {{request_pool_, 1}},
      PetriNet::ExponentialDelay(params_.trans_cl_delay));

  // ---- Step 2: leader parse + index (Fig. 3b right) ----
  parse_ = n.AddTransition("Parse", {{request_pool_, 1}}, {{parsed_, 1}},
                           PetriNet::ExponentialDelay(params_.parse_delay));
  index_ = n.AddTransition(
      "Index Entry", {{parsed_, 1}}, {{queue_to_follower_, 1}},
      PetriNet::ExponentialDelay(params_.index_delay));

  // ---- Step 3: dispatch + deliver + append (Fig. 3c) ----
  dispatch_ = n.AddTransition(
      "Dispatch", {{queue_to_follower_, 1}, {dispatcher_idle_, 1}},
      {{in_flight_, 1}},
      PetriNet::ExponentialDelay(params_.dispatch_delay));
  deliver_ = n.AddTransition(
      "Send Log", {{in_flight_, 1}}, {{arrived_, 1}, {dispatcher_idle_, 1}},
      PetriNet::ExponentialDelay(params_.trans_lf_delay));

  // Appendability branch: in-order arrivals proceed; out-of-order ones
  // either loop in the waiting place (Raft) or enter the window and return
  // an early ACK (NB-Raft, red lines in Fig. 3).
  classify_in_order_ = n.AddTransition(
      "Appendable?", {{arrived_, 1}}, {{ready_, 1}, {pending_ack, 1}},
      nullptr, 1.0 - params_.out_of_order_probability);
  if (nb) {
    classify_out_of_order_ = n.AddTransition(
        "Enter Window", {{arrived_, 1}}, {{window_, 1}},
        nullptr, params_.out_of_order_probability);
    weak_accept_ = n.AddTransition(
        "Early Return (WEAK_ACCEPT)", {{window_, 1}},
        {{ack_, 1}, {waiting_, 1}}, nullptr);
    // Window entries become appendable once their precedence flushes.
    window_flush_ = n.AddTransition(
        "Window Flush", {{waiting_, 1}}, {{ready_, 1}},
        PetriNet::ExponentialDelay(params_.wait_retry_delay));
    wait_retry_ = -1;
  } else {
    classify_out_of_order_ = n.AddTransition(
        "Not Appendable", {{arrived_, 1}}, {{waiting_, 1}},
        nullptr, params_.out_of_order_probability);
    // The blue loop: wait, then retry classification.
    wait_retry_ = n.AddTransition(
        "Wait & Retry", {{waiting_, 1}}, {{arrived_, 1}},
        PetriNet::ExponentialDelay(params_.wait_retry_delay));
    weak_accept_ = -1;
    window_flush_ = -1;
  }

  append_ = n.AddTransition("Append", {{ready_, 1}}, {{appended_, 1}},
                            PetriNet::ExponentialDelay(params_.append_delay));

  // ---- Step 4: ack, commit, apply (Fig. 3b left) ----
  collect_ack_ = n.AddTransition(
      "Collect Ack", {{appended_, 1}}, {{acked_, 1}},
      PetriNet::ExponentialDelay(params_.ack_delay));
  commit_ = n.AddTransition("Commit", {{acked_, 1}}, {{committed_, 1}},
                            PetriNet::ExponentialDelay(params_.commit_delay));
  apply_ = n.AddTransition("Apply", {{committed_, 1}}, {{applied_, 1}},
                           PetriNet::ExponentialDelay(params_.apply_delay));

  // Client unblocking: in-order requests return their ACK token when
  // applied; weakly accepted ones already did, so their applied tokens are
  // absorbed.
  final_ack_ = n.AddTransition("Final Ack", {{applied_, 1}, {pending_ack, 1}},
                               {{ack_, 1}}, nullptr, 1.0);
  absorb_ = n.AddTransition(
      "Absorb (already acked)", {{applied_, 1}}, {}, nullptr, 1.0,
      [this, pending_ack]() {
        return net_->Tokens(applied_) > net_->Tokens(pending_ack);
      });

  // Parallelism of each stage: clients generate and transmit
  // independently; the network and the waiting loop serve every token
  // concurrently; parsing uses the worker pool; indexing, appending
  // (the log lock) and applying are serialized resources.
  n.SetServers(generate_, params_.num_clients);
  n.SetServers(send_request_, params_.num_clients);
  n.SetServers(parse_, 16);
  n.SetServers(dispatch_, params_.num_dispatchers);
  n.SetServers(deliver_, PetriNet::kInfiniteServers);
  if (wait_retry_ >= 0) {
    n.SetServers(wait_retry_, PetriNet::kInfiniteServers);
  }
  if (window_flush_ >= 0) {
    n.SetServers(window_flush_, PetriNet::kInfiniteServers);
  }
  n.SetServers(collect_ack_, PetriNet::kInfiniteServers);
}

void ReplicationModel::Run(SimTime horizon) { net_->Run(horizon); }

uint64_t ReplicationModel::CompletedRequests() const {
  return net_->Firings(apply_);
}

uint64_t ReplicationModel::WeakAccepts() const {
  return weak_accept_ < 0 ? 0 : net_->Firings(weak_accept_);
}

uint64_t ReplicationModel::WaitLoopTurns() const {
  return wait_retry_ < 0 ? 0 : net_->Firings(wait_retry_);
}

double ReplicationModel::ThroughputOps() const {
  const double seconds = ToSeconds(net_->Now());
  if (seconds <= 0) return 0.0;
  return static_cast<double>(CompletedRequests()) / seconds;
}

double ReplicationModel::MeanWaiting() const {
  const double elapsed = static_cast<double>(net_->Now());
  if (elapsed <= 0) return 0.0;
  return (net_->TokenTime(waiting_) + net_->TokenTime(window_)) / elapsed;
}

metrics::Breakdown ReplicationModel::PhaseBreakdown() const {
  metrics::Breakdown out;
  const auto add = [&](metrics::Phase phase, PlaceId place) {
    out.Add(phase, static_cast<SimDuration>(net_->TokenTime(place)));
  };
  add(metrics::Phase::kGenClient, ack_);
  add(metrics::Phase::kTransClientLeader, client_request_);
  add(metrics::Phase::kParse, request_pool_);
  add(metrics::Phase::kIndex, parsed_);
  add(metrics::Phase::kQueue, queue_to_follower_);
  add(metrics::Phase::kTransLeaderFollower, in_flight_);
  add(metrics::Phase::kWaitFollower, waiting_);
  out.Add(metrics::Phase::kWaitFollower,
          static_cast<SimDuration>(net_->TokenTime(window_)));
  add(metrics::Phase::kAppendFollower, ready_);
  add(metrics::Phase::kAck, appended_);
  add(metrics::Phase::kCommit, acked_);
  add(metrics::Phase::kApply, committed_);
  return out;
}

}  // namespace nbraft::petri
