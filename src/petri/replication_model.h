#ifndef NBRAFT_PETRI_REPLICATION_MODEL_H_
#define NBRAFT_PETRI_REPLICATION_MODEL_H_

#include <memory>
#include <string>

#include "metrics/breakdown.h"
#include "petri/petri_net.h"

namespace nbraft::petri {

/// The paper's Fig. 3: Raft log replication as an extended
/// producer-consumer Petri net — clients generate requests gated by ACK
/// tokens, the leader parses/indexes them, dispatchers carry them to the
/// follower, out-of-order arrivals loop in the waiting place (the blue
/// bottleneck loop), and appended entries flow through ack/commit/apply
/// back to the client.
///
/// With `window_size > 0` the red NB-Raft modification is active:
/// out-of-order arrivals enter the window and immediately return an early
/// ACK (WEAK_ACCEPT) to the client instead of blocking it.
class ReplicationModel {
 public:
  struct Params {
    int num_clients = 64;       ///< N_cli: initial ACK tokens.
    int num_dispatchers = 64;   ///< N_csm: dispatcher tokens.
    int window_size = 0;        ///< 0 = original Raft; > 0 = NB-Raft.
    double out_of_order_probability = 0.35;  ///< P(arrival not appendable).

    SimDuration gen_delay = Micros(5);        ///< t_gen(C).
    SimDuration trans_cl_delay = Micros(300); ///< t_trans(CL).
    SimDuration parse_delay = Micros(8);      ///< t_prs(L).
    SimDuration index_delay = Micros(7);      ///< t_idx(L).
    SimDuration dispatch_delay = Micros(2);   ///< Queue service.
    SimDuration trans_lf_delay = Micros(300); ///< t_trans(LF).
    SimDuration wait_retry_delay = Micros(120);  ///< One blue-loop turn.
    SimDuration append_delay = Micros(16);    ///< t_append(F).
    SimDuration ack_delay = Micros(150);      ///< t_ack(L).
    SimDuration commit_delay = Micros(1);     ///< t_commit(L).
    SimDuration apply_delay = Micros(4);      ///< t_apply(L).

    uint64_t seed = 42;
  };

  explicit ReplicationModel(Params params);

  /// Runs the net for `horizon` of virtual time.
  void Run(SimTime horizon);

  /// Requests fully processed (applied).
  uint64_t CompletedRequests() const;

  /// Early ACKs issued (NB-Raft weak accepts).
  uint64_t WeakAccepts() const;

  /// Times one blue-loop retry fired (the bottleneck the paper measures).
  uint64_t WaitLoopTurns() const;

  /// Throughput over the run, in requests per second.
  double ThroughputOps() const;

  /// Mean tokens waiting in the out-of-order place (queue length of the
  /// bottleneck).
  double MeanWaiting() const;

  /// Phase-time proportions in the Fig. 4 taxonomy, derived from per-place
  /// token-time integrals via Little's law.
  metrics::Breakdown PhaseBreakdown() const;

  PetriNet* net() { return net_.get(); }
  const Params& params() const { return params_; }

 private:
  Params params_;
  std::unique_ptr<PetriNet> net_;

  // Places.
  PlaceId ack_;              // Client idle (holds ACK tokens).
  PlaceId client_request_;   // Generated, transmitting to leader.
  PlaceId request_pool_;     // At leader, awaiting parse.
  PlaceId parsed_;           // Awaiting index.
  PlaceId queue_to_follower_;
  PlaceId dispatcher_idle_;
  PlaceId in_flight_;        // Leader -> follower.
  PlaceId arrived_;          // At follower, appendability unknown.
  PlaceId ready_;            // Appendable.
  PlaceId waiting_;          // Out-of-order (blue loop) — Raft only.
  PlaceId window_;           // Sliding window cache — NB-Raft only.
  PlaceId appended_;         // Strongly accepted at follower.
  PlaceId acked_;            // Ack received by leader.
  PlaceId committed_;
  PlaceId applied_;

  // Transitions.
  TransitionId generate_;
  TransitionId send_request_;
  TransitionId parse_;
  TransitionId index_;
  TransitionId dispatch_;
  TransitionId deliver_;
  TransitionId classify_in_order_;
  TransitionId classify_out_of_order_;
  TransitionId wait_retry_;
  TransitionId weak_accept_;   // NB-Raft early return.
  TransitionId window_flush_;  // NB-Raft: window -> appendable.
  TransitionId append_;
  TransitionId collect_ack_;
  TransitionId commit_;
  TransitionId apply_;
  TransitionId final_ack_;     // Returns the client's ACK token (Raft).
  TransitionId absorb_;        // NB-Raft: applied entries already acked.
};

}  // namespace nbraft::petri

#endif  // NBRAFT_PETRI_REPLICATION_MODEL_H_
