#include "raft/commit_applier.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "raft/membership.h"
#include "raft/replication_pipeline.h"

namespace nbraft::raft {

void CommitApplier::OnLeaderAppended(storage::LogIndex index) {
  entry_timing_[index].indexed_at = ctx_->Now();
}

void CommitApplier::NoteFirstStrongUpTo(storage::LogIndex last_index) {
  for (auto it = entry_timing_.begin();
       it != entry_timing_.end() && it->first <= last_index; ++it) {
    if (it->second.first_strong_at == 0) {
      it->second.first_strong_at = ctx_->Now();
    }
  }
}

void CommitApplier::CommitIndices(
    const std::vector<storage::LogIndex>& indices) {
  CoreState& core = ctx_->core();
  for (const storage::LogIndex index : indices) {
    // The index may jump past commit_index + 1 right after an election:
    // entries from older terms commit implicitly through the first
    // current-term commit (Raft Sec. 5.4.2).
    NBRAFT_CHECK_GT(index, core.commit_index);
    if (obs::Journal* j = ctx_->journal(); j != nullptr) {
      j->Record(obs::JournalEventKind::kCommitAdvance, ctx_->id(), -1,
                static_cast<int64_t>(index),
                static_cast<int64_t>(index - core.commit_index));
    }
    ctx_->stats().entries_committed +=
        static_cast<uint64_t>(index - core.commit_index);
    core.commit_index = index;
    ctx_->cpu()->Consume(ctx_->options().costs.commit_cost);
    const int64_t trace_term = ctx_->TraceTermAt(index);
    ctx_->TracePhase(metrics::Phase::kCommit, ctx_->Now(),
                     ctx_->Now() + ctx_->options().costs.commit_cost,
                     trace_term, index);

    const auto timing = entry_timing_.find(index);
    if (timing != entry_timing_.end()) {
      if (timing->second.first_strong_at != 0) {
        ctx_->TracePhase(metrics::Phase::kAck,
                         timing->second.first_strong_at, ctx_->Now(),
                         trace_term, index);
      }
      entry_timing_.erase(timing);
    }
    ctx_->pipeline()->ReleaseFragments(index);
  }
  if (indices.empty()) return;
  if (MembershipEngine* m = ctx_->membership(); m != nullptr && m->active()) {
    // Committed config entries take their cluster-level effect here (the
    // joint -> final hand-off, leader self-removal step-down).
    m->OnCommitAdvanced(core.commit_index);
  }
  ApplyReadyEntries();
}

void CommitApplier::ApplyReadyEntries() {
  CoreState& core = ctx_->core();
  MaybeTakeSnapshot();
  while (core.apply_scheduled_up_to < core.commit_index) {
    const storage::LogIndex index = ++core.apply_scheduled_up_to;
    auto entry_or = ctx_->log().At(index);
    if (!entry_or.ok()) break;  // Compacted (snapshot already applied).
    storage::LogEntry entry = std::move(entry_or).value();

    // Fragments cannot be executed (no full command bytes): CRaft gives up
    // follower reads. The apply index still advances. Config entries are
    // cluster metadata, not state-machine commands — their payload is the
    // encoded roster and must never reach Apply().
    SimDuration cost = 0;
    if (!entry.IsFragment() && !entry.payload.empty() &&
        entry.client_id != kConfigClientId) {
      cost = ctx_->mutable_state_machine()->Apply(entry);
    }
    // Config entries keep their payload: a learner joining later catches
    // up by re-reading the log tail, and an encoded roster that was
    // released to save memory would replicate as an undecodable blank.
    // They are rare and tiny, so the memory bound is unaffected.
    if (ctx_->options().release_applied_payloads &&
        entry.client_id != kConfigClientId) {
      ctx_->log().ReleasePayloadAt(index);
    }

    const uint64_t epoch = core.epoch;
    ctx_->apply_lane()->Submit(
        cost, [this, epoch, index, cost, client = entry.client_id,
               request_id = entry.request_id, term = entry.term]() {
          CoreState& c = ctx_->core();
          if (c.crashed || epoch != c.epoch) return;
          c.applied_index = std::max(c.applied_index, index);
          ++ctx_->stats().entries_applied;
          if (obs::Journal* j = ctx_->journal(); j != nullptr) {
            j->Record(obs::JournalEventKind::kApplyAdvance, ctx_->id(), -1,
                      static_cast<int64_t>(index),
                      static_cast<int64_t>(request_id));
          }
          ctx_->TracePhase(metrics::Phase::kApply, ctx_->Now() - cost,
                           ctx_->Now(), term, index, request_id);
          if (c.role == Role::kLeader && client != net::kInvalidNode &&
              client != kConfigClientId) {
            ClientResponse cresp;
            cresp.state = AcceptState::kStrongAccept;
            cresp.request_id = request_id;
            cresp.index = index;
            cresp.term = term;
            ctx_->SendTo(client, cresp.WireSize(), cresp);
          }
        });
  }
}

void CommitApplier::MaybeTakeSnapshot() {
  CoreState& core = ctx_->core();
  if (ctx_->options().snapshot_threshold <= 0) return;
  // Fragment replicas hold no applicable state — a snapshot taken there
  // would be empty. Snapshot-based compaction is a full-replication
  // feature (CRaft pairs it with fragment reconstruction instead).
  if (ctx_->options().erasure) return;
  storage::RaftLog& log = ctx_->log();
  const storage::LogIndex applied = core.apply_scheduled_up_to;
  if (applied - log.FirstIndex() + 1 <= ctx_->options().snapshot_threshold) {
    return;
  }
  // The state machine was mutated through `applied` (mutations happen at
  // scheduling time, in order), so the snapshot names that position.
  core.snapshot_data = ctx_->mutable_state_machine()->Snapshot();
  core.snapshot_index = applied;
  core.snapshot_term = log.TermAt(applied).value_or(0);
  ++ctx_->stats().snapshots_taken;
  ctx_->cpu()->Consume(PerKib(ctx_->options().costs.snapshot_cost_per_kib,
                              core.snapshot_data.size()));
  ctx_->PersistSnapshot(core.snapshot_index, core.snapshot_term,
                        core.snapshot_data, /*installed=*/false);

  const storage::LogIndex compact_upto = std::max<storage::LogIndex>(
      applied - ctx_->options().snapshot_keep_tail, log.FirstIndex() - 1);
  if (compact_upto >= log.FirstIndex()) {
    NBRAFT_CHECK(log.CompactPrefix(compact_upto).ok());
    ctx_->PersistCompact(compact_upto);
  }
}

void CommitApplier::FailPendingClientEntries(storage::Term new_term,
                                             net::NodeId new_leader) {
  while (!vote_list_.empty()) {
    const storage::LogIndex index = vote_list_.FrontIndex();
    const auto e = ctx_->log().At(index);
    if (e.ok() && e->client_id != net::kInvalidNode &&
        e->client_id != kConfigClientId) {
      ClientResponse cresp;
      cresp.state = AcceptState::kLeaderChanged;
      cresp.request_id = e->request_id;
      cresp.index = index;
      cresp.term = new_term;
      cresp.leader_hint = new_leader;
      ctx_->SendTo(e->client_id, cresp.WireSize(), cresp);
    }
    vote_list_.RemoveFront();
  }
}

void CommitApplier::ResetLeaderState() {
  vote_list_.Clear();
  entry_timing_.clear();
}

}  // namespace nbraft::raft
