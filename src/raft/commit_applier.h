#ifndef NBRAFT_RAFT_COMMIT_APPLIER_H_
#define NBRAFT_RAFT_COMMIT_APPLIER_H_

#include <map>
#include <vector>

#include "nbraft/vote_list.h"
#include "raft/node_context.h"

namespace nbraft::raft {

/// Commit and apply: the leader's VoteList (weak/strong accept tallies),
/// commit-time bookkeeping (Fig. 4 t_commit / t_ack spans, fragment-cache
/// release), the ordered apply lane that drives the state machine and
/// answers clients with STRONG_ACCEPT, and snapshot-based log compaction.
class CommitApplier {
 public:
  explicit CommitApplier(NodeContext* ctx) : ctx_(ctx) {}

  VoteList& vote_list() { return vote_list_; }
  const VoteList& vote_list() const { return vote_list_; }

  /// Starts the Fig. 4 clock for a leader-appended index (t_idx done).
  void OnLeaderAppended(storage::LogIndex index);

  /// Marks the first covering strong accept for every index
  /// <= `last_index` that has none yet (t_ack starts here).
  void NoteFirstStrongUpTo(storage::LogIndex last_index);

  /// Commits the indices the VoteList released, in order.
  void CommitIndices(const std::vector<storage::LogIndex>& indices);

  /// Schedules every committed-but-unapplied entry onto the apply lane.
  void ApplyReadyEntries();

  /// Compacts the log once enough applied entries accumulated.
  void MaybeTakeSnapshot();

  /// Step-down notification path (Sec. III-B3a): replies LEADER_CHANGED to
  /// every client with an in-flight entry and drains the VoteList.
  void FailPendingClientEntries(storage::Term new_term,
                                net::NodeId new_leader);

  /// Drops leader-only state (VoteList, per-entry timing). Called on
  /// Crash(), StepDown() and BecomeLeader().
  void ResetLeaderState();

  /// True when every leader-only container is empty (step-down audit).
  bool LeaderStateEmpty() const {
    return vote_list_.empty() && entry_timing_.empty();
  }

 private:
  /// Per-index timestamps for the Fig. 4 breakdown.
  struct EntryTiming {
    SimTime indexed_at = 0;
    SimTime first_strong_at = 0;
  };

  NodeContext* ctx_;
  VoteList vote_list_;
  std::map<storage::LogIndex, EntryTiming> entry_timing_;
};

}  // namespace nbraft::raft

#endif  // NBRAFT_RAFT_COMMIT_APPLIER_H_
