#include "raft/durability.h"

#include <algorithm>

#include "raft/node_context.h"

namespace nbraft::raft {

void DurabilityCoordinator::Attach(storage::DurableLog* log,
                                   storage::LogIndex recovered_frontier) {
  log_ = log;
  appended_seq_ = 0;
  durable_seq_ = 0;
  pending_entry_frontier_ = recovered_frontier;
  durable_entry_frontier_ = recovered_frontier;
  waiters_.clear();
  syncs_in_flight_ = 0;
}

void DurabilityCoordinator::Detach() {
  ++generation_;
  log_ = nullptr;
  appended_seq_ = 0;
  durable_seq_ = 0;
  pending_entry_frontier_ = 0;
  durable_entry_frontier_ = 0;
  waiters_.clear();
  syncs_in_flight_ = 0;
}

void DurabilityCoordinator::PersistEntry(const storage::LogEntry& entry) {
  if (log_ == nullptr) return;
  pending_entry_frontier_ = std::max(pending_entry_frontier_, entry.index);
  AfterAppend(log_->AppendEntry(entry), entry.EncodedSize());
}

void DurabilityCoordinator::PersistTruncate(storage::LogIndex from_index) {
  if (log_ == nullptr) return;
  pending_entry_frontier_ =
      std::min(pending_entry_frontier_, from_index - 1);
  storage::LogEntry marker;
  marker.index = storage::DurableLog::kTruncateMarker;
  marker.term = from_index;
  AfterAppend(log_->AppendTruncate(from_index), marker.EncodedSize());
}

void DurabilityCoordinator::PersistHardState(storage::Term term,
                                             net::NodeId voted_for) {
  if (log_ == nullptr) return;
  storage::DurableLog::HardState hs;
  hs.term = term;
  hs.voted_for = voted_for;
  storage::LogEntry marker;
  marker.index = storage::DurableLog::kHardStateMarker;
  marker.term = term;
  marker.client_id = voted_for;
  AfterAppend(log_->AppendHardState(hs), marker.EncodedSize());
}

void DurabilityCoordinator::PersistSnapshot(storage::LogIndex index,
                                            storage::Term term,
                                            const nbraft::Buffer& data,
                                            bool installed) {
  if (log_ == nullptr) return;
  storage::LogEntry marker;
  marker.index = storage::DurableLog::kSnapshotMarker;
  marker.term = index;
  marker.prev_term = term;
  marker.payload = data;
  AfterAppend(log_->AppendSnapshot(index, term, data, installed),
              marker.EncodedSize());
}

void DurabilityCoordinator::PersistCompact(storage::LogIndex upto) {
  if (log_ == nullptr) return;
  storage::LogEntry marker;
  marker.index = storage::DurableLog::kCompactMarker;
  marker.term = upto;
  AfterAppend(log_->AppendCompact(upto), marker.EncodedSize());
}

void DurabilityCoordinator::PersistConfig(const std::string& encoded,
                                          storage::LogIndex at) {
  if (log_ == nullptr) return;
  storage::LogEntry marker;
  marker.index = storage::DurableLog::kConfigMarker;
  marker.term = at;
  marker.payload = nbraft::Buffer(encoded);
  AfterAppend(log_->AppendConfig(encoded, at), marker.EncodedSize());
}

void DurabilityCoordinator::AfterAppend(const Status& appended,
                                        size_t encoded_size) {
  if (!appended.ok()) {
    ++ctx_->stats().storage_failures;
    ctx_->OnStorageFailure(appended);
    return;
  }
  ++appended_seq_;
  ctx_->stats().disk_bytes_written += encoded_size;
  if (obs::Journal* j = ctx_->journal(); j != nullptr) {
    j->Record(obs::JournalEventKind::kDiskWrite, ctx_->id(), -1,
              static_cast<int64_t>(encoded_size),
              static_cast<int64_t>(pending_entry_frontier_));
  }
  MaybeSync();
}

void DurabilityCoordinator::WhenDurable(std::function<void()> fn) {
  if (log_ == nullptr || appended_seq_ <= durable_seq_) {
    fn();
    return;
  }
  waiters_.emplace_back(appended_seq_, std::move(fn));
}

void DurabilityCoordinator::MaybeSync() {
  const bool group_commit = ctx_->options().disk.group_commit;
  if (group_commit && syncs_in_flight_ > 0) {
    // The barrier in flight doesn't cover this record; the follow-up sync
    // issued at its completion will (one fsync amortized over every record
    // staged meanwhile).
    return;
  }
  IssueSync();
}

void DurabilityCoordinator::IssueSync() {
  ++syncs_in_flight_;
  const uint64_t cover_seq = appended_seq_;
  const storage::LogIndex cover_frontier = pending_entry_frontier_;
  const uint64_t generation = generation_;
  const SimTime issued_at = ctx_->Now();
  log_->Sync([this, cover_seq, cover_frontier, generation,
              issued_at](Status synced) {
    OnSyncDone(synced, cover_seq, cover_frontier, generation, issued_at);
  });
}

void DurabilityCoordinator::OnSyncDone(const Status& synced,
                                       uint64_t cover_seq,
                                       storage::LogIndex cover_frontier,
                                       uint64_t generation,
                                       SimTime issued_at) {
  if (generation != generation_) return;  // Crashed since issue.
  --syncs_in_flight_;
  if (!synced.ok()) {
    // Waiters stay parked: the node is about to step down or halt, so the
    // acknowledgements they carry must never be sent.
    ++ctx_->stats().storage_failures;
    ctx_->OnStorageFailure(synced);
    return;
  }
  durable_seq_ = std::max(durable_seq_, cover_seq);
  durable_entry_frontier_ = cover_frontier;
  ++ctx_->stats().fsyncs_completed;
  if (obs::Journal* j = ctx_->journal(); j != nullptr) {
    j->Record(obs::JournalEventKind::kDiskFsync, ctx_->id(), -1,
              static_cast<int64_t>(cover_frontier),
              static_cast<int64_t>(ctx_->Now() - issued_at));
  }
  if (!instant()) {
    ctx_->TracePhase(metrics::Phase::kFsync, issued_at, ctx_->Now(),
                     ctx_->core().current_term, cover_frontier);
  }
  while (!waiters_.empty() && waiters_.front().first <= durable_seq_) {
    std::function<void()> fn = std::move(waiters_.front().second);
    waiters_.pop_front();
    fn();
  }
  if (appended_seq_ > durable_seq_ && syncs_in_flight_ == 0) {
    // Group commit: records staged while this barrier was in flight get
    // their own covering barrier now.
    IssueSync();
  }
}

}  // namespace nbraft::raft
