#ifndef NBRAFT_RAFT_DURABILITY_H_
#define NBRAFT_RAFT_DURABILITY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "common/sim_time.h"
#include "common/status.h"
#include "storage/durable_log.h"
#include "storage/log_entry.h"

namespace nbraft::raft {

class NodeContext;

/// Drives the node's durable log: stages persist records, issues the
/// covering fsync barriers (group commit batches every record staged while
/// a sync is in flight under the next single barrier), and parks
/// acknowledgement callbacks until the barrier that covers them completes.
///
/// Three regimes, chosen by the attached log:
///   * detached (no durable log): every persist is a no-op and WhenDurable
///     runs inline — the modelled-durability default, zero events;
///   * instant backend (real WAL file): persists stage + sync inline, so
///     WhenDurable still runs inline and the event sequence is identical
///     to modelled durability;
///   * simulated disk: syncs cost virtual time on the disk's I/O lane, and
///     WhenDurable defers its callback to the covering sync completion —
///     this is what makes acknowledgements fsync-gated.
///
/// Storage failures (failed append or fsync) are routed to
/// NodeContext::OnStorageFailure; parked waiters are then never fired (the
/// node steps down or halts).
class DurabilityCoordinator {
 public:
  explicit DurabilityCoordinator(NodeContext* ctx) : ctx_(ctx) {}

  /// Points the coordinator at this lifetime's durable log (Start /
  /// Restart), resetting all sequence tracking. nullptr = modelled mode.
  /// `recovered_frontier` seeds the durable entry frontier with the last
  /// index recovered from the previous lifetime's image: those entries are
  /// already covered by completed fsyncs.
  void Attach(storage::DurableLog* log,
              storage::LogIndex recovered_frontier);

  /// Crash: drops the log pointer, invalidates in-flight sync completions
  /// and discards parked waiters (they died with the node's memory).
  void Detach();

  /// True when persistence completes inline without consuming virtual time.
  bool instant() const { return log_ == nullptr || log_->instant(); }

  // ---- Persist operations (stage a record + schedule its barrier) ----
  void PersistEntry(const storage::LogEntry& entry);
  void PersistTruncate(storage::LogIndex from_index);
  void PersistHardState(storage::Term term, net::NodeId voted_for);
  void PersistSnapshot(storage::LogIndex index, storage::Term term,
                       const nbraft::Buffer& data, bool installed);
  void PersistCompact(storage::LogIndex upto);
  void PersistConfig(const std::string& encoded, storage::LogIndex at);

  /// Runs `fn` once everything persisted so far is covered by a completed
  /// fsync — inline when it already is.
  void WhenDurable(std::function<void()> fn);

  /// Highest entry index covered by a completed fsync. Meaningless (0) in
  /// detached mode — callers use the in-memory log there.
  storage::LogIndex durable_entry_frontier() const {
    return durable_entry_frontier_;
  }

  /// Records staged but not yet covered by a completed fsync (telemetry:
  /// the pending-barrier backlog; always 0 in detached/instant modes).
  uint64_t pending_records() const { return appended_seq_ - durable_seq_; }

 private:
  /// Common tail of every Persist op: account the staged record, surface
  /// errors, and schedule the covering barrier.
  void AfterAppend(const Status& appended, size_t encoded_size);
  void MaybeSync();
  void IssueSync();
  void OnSyncDone(const Status& synced, uint64_t cover_seq,
                  storage::LogIndex cover_frontier, uint64_t generation,
                  SimTime issued_at);

  NodeContext* ctx_;
  storage::DurableLog* log_ = nullptr;

  /// Monotonic count of staged records / records covered by a completed
  /// fsync. appended_ == durable_ means everything staged is durable.
  uint64_t appended_seq_ = 0;
  uint64_t durable_seq_ = 0;

  /// Highest entry index staged / covered by a completed fsync. The
  /// durable frontier is *assigned* (not maxed) from the value captured at
  /// sync issue, so a truncation lowers it at the next barrier.
  storage::LogIndex pending_entry_frontier_ = 0;
  storage::LogIndex durable_entry_frontier_ = 0;

  /// Waiters parked until durable_seq_ reaches their staged sequence.
  std::deque<std::pair<uint64_t, std::function<void()>>> waiters_;

  /// Invalidates sync completions issued before a crash.
  uint64_t generation_ = 0;
  int syncs_in_flight_ = 0;
};

}  // namespace nbraft::raft

#endif  // NBRAFT_RAFT_DURABILITY_H_
