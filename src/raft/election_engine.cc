#include "raft/election_engine.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/names.h"
#include "raft/commit_applier.h"
#include "raft/follower_ingress.h"
#include "raft/replication_pipeline.h"

namespace nbraft::raft {

void ElectionEngine::ArmElectionTimer() {
  sim::Simulator* sim = ctx_->simulator();
  sim->Cancel(election_timer_);
  const SimDuration base = ctx_->options().election_timeout;
  SimDuration delay =
      base + static_cast<SimDuration>(ctx_->rng().NextBounded(
                 static_cast<uint64_t>(std::max<SimDuration>(base, 1))));
  if (timer_skew_ != 1.0) {
    // Chaos clock skew: stretch or shrink this node's perception of the
    // timeout (floor 1 tick keeps the timer strictly in the future).
    delay = std::max<SimDuration>(
        static_cast<SimDuration>(static_cast<double>(delay) * timer_skew_), 1);
  }
  const uint64_t epoch = ctx_->core().epoch;
  election_timer_ = sim->After(delay, [this, epoch]() {
    const CoreState& core = ctx_->core();
    if (core.crashed || epoch != core.epoch || core.role == Role::kLeader) {
      return;
    }
    StartElection();
  });
}

void ElectionEngine::OnCrash() {
  ctx_->simulator()->Cancel(election_timer_);
  election_timer_ = sim::kInvalidEventId;
  votes_received_.clear();
}

void ElectionEngine::StartElection() {
  CoreState& core = ctx_->core();
  if (core.heal_quarantine) {
    // A corruption-truncated log must not seek leadership: it may be
    // missing committed entries, and electing it (or splitting votes with
    // it) could lose them. Sit out until healed from the leader.
    ArmElectionTimer();
    return;
  }
  ++core.current_term;
  core.role = Role::kCandidate;
  core.voted_for = ctx_->id();
  ctx_->PersistHardState();
  core.leader = net::kInvalidNode;
  votes_received_.clear();
  votes_received_.insert(ctx_->id());
  ++ctx_->stats().elections_started;
  NBRAFT_LOG(Info) << "node " << ctx_->id() << " starts election, term "
                   << core.current_term;
  if (ctx_->tracer() != nullptr) {
    ctx_->tracer()->RecordInstant(obs::names::kElectionStart, ctx_->id(),
                                  core.current_term);
  }
  if (obs::Journal* j = ctx_->journal(); j != nullptr) {
    j->Record(obs::JournalEventKind::kTermChange, ctx_->id(), -1,
              static_cast<int64_t>(core.current_term) - 1,
              static_cast<int64_t>(core.current_term));
    j->Record(obs::JournalEventKind::kElectionStart, ctx_->id(), -1,
              static_cast<int64_t>(core.current_term));
    j->Record(obs::JournalEventKind::kRoleChange, ctx_->id(), -1,
              static_cast<int64_t>(Role::kCandidate),
              static_cast<int64_t>(core.current_term));
  }

  if (static_cast<int>(votes_received_.size()) >= ctx_->quorum()) {
    BecomeLeader();
    return;
  }
  RequestVoteRequest req;
  req.term = core.current_term;
  req.candidate = ctx_->id();
  req.last_log_index = ctx_->log().LastIndex();
  req.last_log_term = ctx_->log().LastTerm();
  if (ctx_->DurabilityInstant()) {
    for (net::NodeId peer : ctx_->peer_ids()) {
      ctx_->SendTo(peer, req.WireSize(), req);
    }
  } else {
    // The candidacy (term bump + self-vote) must be fsynced before anyone
    // hears about it, or a crash could forget the vote and grant it again.
    const uint64_t epoch = core.epoch;
    const storage::Term term = core.current_term;
    ctx_->WhenDurable([this, epoch, term, req]() {
      const CoreState& c = ctx_->core();
      if (c.crashed || epoch != c.epoch || c.current_term != term ||
          c.role != Role::kCandidate) {
        return;
      }
      for (net::NodeId peer : ctx_->peer_ids()) {
        ctx_->SendTo(peer, req.WireSize(), req);
      }
    });
  }
  ArmElectionTimer();  // Retry with a fresh randomized timeout.
}

void ElectionEngine::HandleRequestVote(RequestVoteRequest req) {
  CoreState& core = ctx_->core();
  if (req.term > core.current_term) {
    StepDown(req.term, net::kInvalidNode);
  }
  RequestVoteResponse resp;
  resp.term = core.current_term;
  resp.from = ctx_->id();
  resp.granted = false;
  if (req.term == core.current_term && !core.heal_quarantine &&
      (core.voted_for == net::kInvalidNode ||
       core.voted_for == req.candidate)) {
    // A quarantined node grants no votes: its truncated log makes the
    // up-to-date comparison unsound (it may vote against entries it once
    // held committed).
    const storage::RaftLog& log = ctx_->log();
    const bool up_to_date =
        req.last_log_term > log.LastTerm() ||
        (req.last_log_term == log.LastTerm() &&
         req.last_log_index >= log.LastIndex());
    if (up_to_date) {
      resp.granted = true;
      core.voted_for = req.candidate;
      ctx_->PersistHardState();
      ArmElectionTimer();
    }
  }
  if (resp.granted && !ctx_->DurabilityInstant()) {
    // The vote is a durable promise: it must not reach the candidate
    // before the fsync that remembers it.
    const uint64_t epoch = core.epoch;
    const net::NodeId candidate = req.candidate;
    ctx_->WhenDurable([this, epoch, candidate, resp]() {
      const CoreState& c = ctx_->core();
      if (c.crashed || epoch != c.epoch) return;
      ctx_->SendTo(candidate, resp.WireSize(), resp);
    });
    return;
  }
  ctx_->SendTo(req.candidate, resp.WireSize(), resp);
}

void ElectionEngine::HandleVoteResponse(RequestVoteResponse resp) {
  CoreState& core = ctx_->core();
  if (resp.term > core.current_term) {
    StepDown(resp.term, net::kInvalidNode);
    return;
  }
  if (core.role != Role::kCandidate || resp.term != core.current_term ||
      !resp.granted) {
    return;
  }
  votes_received_.insert(resp.from);
  if (static_cast<int>(votes_received_.size()) >= ctx_->quorum()) {
    BecomeLeader();
  }
}

void ElectionEngine::BecomeLeader() {
  CoreState& core = ctx_->core();
  NBRAFT_CHECK_NE(static_cast<int>(core.role),
                  static_cast<int>(Role::kLeader));
  core.role = Role::kLeader;
  core.leader = ctx_->id();
  ++ctx_->stats().times_elected;
  NBRAFT_LOG(Info) << "node " << ctx_->id() << " elected leader, term "
                   << core.current_term;
  if (ctx_->tracer() != nullptr) {
    ctx_->tracer()->RecordInstant(obs::names::kLeaderElected, ctx_->id(),
                                  core.current_term);
  }
  if (obs::Journal* j = ctx_->journal(); j != nullptr) {
    j->Record(obs::JournalEventKind::kLeaderElected, ctx_->id(), -1,
              static_cast<int64_t>(core.current_term));
    j->Record(obs::JournalEventKind::kRoleChange, ctx_->id(), -1,
              static_cast<int64_t>(Role::kLeader),
              static_cast<int64_t>(core.current_term));
  }
  if (leader_observer_) leader_observer_(core.current_term, ctx_->id());
  ctx_->simulator()->Cancel(election_timer_);
  election_timer_ = sim::kInvalidEventId;

  // Any leader-side state left from a previous leadership — and weakly
  // accepted cache entries belonging to the previous leader's pipeline —
  // is stale now.
  ctx_->applier()->ResetLeaderState();
  ctx_->pipeline()->ResetLeaderState();
  ctx_->ingress()->OnLeadershipTaken();

  // Commit a no-op in the new term so older entries can commit (Raft's
  // current-term commit rule).
  storage::RaftLog& log = ctx_->log();
  storage::LogEntry noop;
  noop.index = log.LastIndex() + 1;
  noop.term = core.current_term;
  noop.prev_term = log.LastTerm();
  log.Append(noop);
  ctx_->PersistEntry(noop);
  ++ctx_->stats().entries_appended;
  VoteList& vote_list = ctx_->applier()->vote_list();
  if (ctx_->DurabilityInstant()) {
    vote_list.AddTuple(noop.index, noop.term, ctx_->id(), ctx_->quorum());
    core.strong_ack_frontier =
        std::max(core.strong_ack_frontier, noop.index);
  } else {
    // Same fsync-gated self-vote as IndexAndReplicate.
    vote_list.AddTuple(noop.index, noop.term, net::kInvalidNode,
                       ctx_->quorum());
    const uint64_t epoch = core.epoch;
    const storage::LogIndex index = noop.index;
    const storage::Term term = noop.term;
    ctx_->WhenDurable([this, epoch, index, term]() {
      CoreState& c = ctx_->core();
      if (c.crashed || epoch != c.epoch || c.role != Role::kLeader ||
          c.current_term != term) {
        return;
      }
      c.strong_ack_frontier = std::max(c.strong_ack_frontier, index);
      ctx_->applier()->CommitIndices(
          ctx_->applier()->vote_list().AddStrongUpTo(index, ctx_->id(),
                                                     c.current_term));
    });
  }
  ctx_->applier()->OnLeaderAppended(noop.index);
  ctx_->pipeline()->ReplicateEntry(noop);
  if (ctx_->peer_ids().empty() && ctx_->DurabilityInstant()) {
    ctx_->applier()->CommitIndices(
        vote_list.AddStrongUpTo(noop.index, ctx_->id(), core.current_term));
  }

  ctx_->pipeline()->BroadcastHeartbeat();
}

void ElectionEngine::StepDown(storage::Term term, net::NodeId leader) {
  CoreState& core = ctx_->core();
  const bool was_leader = core.role == Role::kLeader;
  const bool role_changes = core.role != Role::kFollower;
  const storage::Term old_term = core.current_term;
  if (obs::Journal* j = ctx_->journal(); j != nullptr) {
    j->Record(obs::JournalEventKind::kStepDown, ctx_->id(), -1,
              static_cast<int64_t>(term), was_leader ? 1 : 0);
    if (term > old_term) {
      j->Record(obs::JournalEventKind::kTermChange, ctx_->id(), -1,
                static_cast<int64_t>(old_term), static_cast<int64_t>(term));
    }
    if (role_changes) {
      j->Record(obs::JournalEventKind::kRoleChange, ctx_->id(), -1,
                static_cast<int64_t>(Role::kFollower),
                static_cast<int64_t>(std::max(term, old_term)));
    }
  }
  if (was_leader) {
    // Tell clients of in-flight entries to retry with the new leader
    // (Sec. III-B3a: reply LEADER_CHANGED and clean the VoteList), then
    // drop every piece of leader-only state — peer pipelines, outstanding
    // RPCs, fragment caches, commit timing (the Crash() path clears the
    // same set; keeping one reset per engine keeps the lifetimes honest).
    ctx_->applier()->FailPendingClientEntries(term, leader);
    ctx_->pipeline()->ResetLeaderState();
    ctx_->applier()->ResetLeaderState();
  }
  if (term > core.current_term) {
    core.current_term = term;
    core.voted_for = net::kInvalidNode;
    ctx_->PersistHardState();
  }
  core.role = Role::kFollower;
  core.leader = leader;
  votes_received_.clear();
  ArmElectionTimer();
}

void ElectionEngine::NoteLeaderContact(storage::Term term,
                                       net::NodeId leader) {
  CoreState& core = ctx_->core();
  if (term > core.current_term || core.role != Role::kFollower) {
    StepDown(term, leader);
  }
  core.leader = leader;
  ArmElectionTimer();
}

}  // namespace nbraft::raft
