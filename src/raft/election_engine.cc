#include "raft/election_engine.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/names.h"
#include "raft/commit_applier.h"
#include "raft/follower_ingress.h"
#include "raft/membership.h"
#include "raft/recovery_stm.h"
#include "raft/replication_pipeline.h"

namespace nbraft::raft {

bool ElectionEngine::VoteQuorumReached(const std::set<net::NodeId>& votes) {
  MembershipEngine* m = ctx_->membership();
  if (m != nullptr && m->active()) return m->QuorumSatisfied(votes);
  return static_cast<int>(votes.size()) >= ctx_->quorum();
}

bool ElectionEngine::IsPassive() {
  MembershipEngine* m = ctx_->membership();
  return m != nullptr && m->active() && !m->SelfIsVoter();
}

void ElectionEngine::ArmElectionTimer() {
  sim::Simulator* sim = ctx_->simulator();
  sim->Cancel(election_timer_);
  if (IsPassive()) {
    // A learner (or a node voted out of the config) never campaigns: the
    // timer stays disarmed until a config change restores its vote.
    election_timer_ = sim::kInvalidEventId;
    return;
  }
  const SimDuration base = ctx_->options().election_timeout;
  // Jitter is drawn per arming (never cached per node): each retry gets a
  // fresh draw from [base, 2*base), which is what breaks split-vote /
  // election-storm resonance between replicas.
  SimDuration delay =
      base + static_cast<SimDuration>(ctx_->rng().NextBounded(
                 static_cast<uint64_t>(std::max<SimDuration>(base, 1))));
  if (timer_skew_ != 1.0) {
    // Chaos clock skew: stretch or shrink this node's perception of the
    // timeout (floor 1 tick keeps the timer strictly in the future).
    delay = std::max<SimDuration>(
        static_cast<SimDuration>(static_cast<double>(delay) * timer_skew_), 1);
  }
  const uint64_t epoch = ctx_->core().epoch;
  election_timer_ = sim->After(delay, [this, epoch]() {
    const CoreState& core = ctx_->core();
    if (core.crashed || epoch != core.epoch || core.role == Role::kLeader) {
      return;
    }
    OnElectionTimeout();
  });
}

void ElectionEngine::OnElectionTimeout() {
  if (ctx_->options().pre_vote) {
    StartPreVote();
    return;
  }
  StartElection();
}

void ElectionEngine::OnCrash() {
  ctx_->simulator()->Cancel(election_timer_);
  election_timer_ = sim::kInvalidEventId;
  votes_received_.clear();
  AbortPreVote();
  CancelCheckQuorumTimer();
  last_leader_contact_ = 0;
  transfer_pending_ = false;
}

bool ElectionEngine::LeaseHeld() const {
  const CoreState& core = ctx_->core();
  if (core.role == Role::kLeader) return true;
  if (core.leader == net::kInvalidNode || last_leader_contact_ == 0) {
    return false;
  }
  return ctx_->simulator()->Now() - last_leader_contact_ <
         ctx_->options().election_timeout;
}

void ElectionEngine::StartPreVote() {
  CoreState& core = ctx_->core();
  if (IsPassive()) return;
  if (core.heal_quarantine) {
    // Same sit-out as StartElection: a corruption-truncated log must not
    // seek leadership, not even tentatively.
    ArmElectionTimer();
    return;
  }
  AbortPreVote();
  prevote_in_progress_ = true;
  prevote_term_ = core.current_term + 1;
  prevotes_received_.insert(ctx_->id());
  NBRAFT_LOG(Info) << "node " << ctx_->id()
                   << " starts pre-vote canvass for term " << prevote_term_;
  if (ctx_->tracer() != nullptr) {
    ctx_->tracer()->RecordInstant(obs::names::kPreVoteStart, ctx_->id(),
                                  static_cast<int64_t>(prevote_term_));
  }
  if (obs::Journal* j = ctx_->journal(); j != nullptr) {
    j->Record(obs::JournalEventKind::kPreVoteStart, ctx_->id(), -1,
              static_cast<int64_t>(prevote_term_));
  }
  if (VoteQuorumReached(prevotes_received_)) {
    AbortPreVote();
    StartElection();
    return;
  }
  // The canvass is non-binding: nothing is persisted and no durability
  // barrier gates the sends — a forgotten pre-vote costs nothing.
  RequestVoteRequest req;
  req.term = prevote_term_;
  req.candidate = ctx_->id();
  req.last_log_index = ctx_->log().LastIndex();
  req.last_log_term = ctx_->log().LastTerm();
  req.pre_vote = true;
  for (net::NodeId peer : ctx_->peer_ids()) {
    ctx_->SendTo(peer, req.WireSize(), req);
  }
  ArmElectionTimer();  // Retry the canvass with a fresh randomized timeout.
}

void ElectionEngine::StartElection() {
  CoreState& core = ctx_->core();
  if (IsPassive()) return;
  if (core.heal_quarantine) {
    // A corruption-truncated log must not seek leadership: it may be
    // missing committed entries, and electing it (or splitting votes with
    // it) could lose them. Sit out until healed from the leader.
    ArmElectionTimer();
    return;
  }
  AbortPreVote();
  ++core.current_term;
  ++ctx_->stats().terms_started;
  core.role = Role::kCandidate;
  core.voted_for = ctx_->id();
  ctx_->PersistHardState();
  core.leader = net::kInvalidNode;
  votes_received_.clear();
  votes_received_.insert(ctx_->id());
  ++ctx_->stats().elections_started;
  NBRAFT_LOG(Info) << "node " << ctx_->id() << " starts election, term "
                   << core.current_term;
  if (ctx_->tracer() != nullptr) {
    ctx_->tracer()->RecordInstant(obs::names::kElectionStart, ctx_->id(),
                                  core.current_term);
  }
  if (obs::Journal* j = ctx_->journal(); j != nullptr) {
    j->Record(obs::JournalEventKind::kTermChange, ctx_->id(), -1,
              static_cast<int64_t>(core.current_term) - 1,
              static_cast<int64_t>(core.current_term));
    j->Record(obs::JournalEventKind::kElectionStart, ctx_->id(), -1,
              static_cast<int64_t>(core.current_term));
    j->Record(obs::JournalEventKind::kRoleChange, ctx_->id(), -1,
              static_cast<int64_t>(Role::kCandidate),
              static_cast<int64_t>(core.current_term));
  }

  if (VoteQuorumReached(votes_received_)) {
    BecomeLeader();
    return;
  }
  RequestVoteRequest req;
  req.term = core.current_term;
  req.candidate = ctx_->id();
  req.last_log_index = ctx_->log().LastIndex();
  req.last_log_term = ctx_->log().LastTerm();
  if (ctx_->DurabilityInstant()) {
    for (net::NodeId peer : ctx_->peer_ids()) {
      ctx_->SendTo(peer, req.WireSize(), req);
    }
  } else {
    // The candidacy (term bump + self-vote) must be fsynced before anyone
    // hears about it, or a crash could forget the vote and grant it again.
    const uint64_t epoch = core.epoch;
    const storage::Term term = core.current_term;
    ctx_->WhenDurable([this, epoch, term, req]() {
      const CoreState& c = ctx_->core();
      if (c.crashed || epoch != c.epoch || c.current_term != term ||
          c.role != Role::kCandidate) {
        return;
      }
      for (net::NodeId peer : ctx_->peer_ids()) {
        ctx_->SendTo(peer, req.WireSize(), req);
      }
    });
  }
  ArmElectionTimer();  // Retry with a fresh randomized timeout.
}

void ElectionEngine::SendLeaseReject(const RequestVoteRequest& req) {
  const CoreState& core = ctx_->core();
  if (ctx_->tracer() != nullptr) {
    ctx_->tracer()->RecordInstant(obs::names::kLeaseReject, ctx_->id(),
                                  req.candidate);
  }
  if (obs::Journal* j = ctx_->journal(); j != nullptr) {
    j->Record(obs::JournalEventKind::kLeaseReject, ctx_->id(),
              static_cast<int32_t>(req.candidate),
              static_cast<int64_t>(req.term), req.pre_vote ? 1 : 0);
  }
  RequestVoteResponse resp;
  resp.term = core.current_term;
  resp.from = ctx_->id();
  resp.granted = false;
  resp.pre_vote = req.pre_vote;
  ctx_->SendTo(req.candidate, resp.WireSize(), resp);
}

void ElectionEngine::HandlePreVoteRequest(const RequestVoteRequest& req) {
  CoreState& core = ctx_->core();
  RequestVoteResponse resp;
  resp.term = core.current_term;
  resp.from = ctx_->id();
  resp.granted = false;
  resp.pre_vote = true;
  if (ctx_->options().leader_lease && LeaseHeld()) {
    ++ctx_->stats().prevotes_rejected;
    SendLeaseReject(req);
    return;
  }
  if (!withhold_votes_ && !core.heal_quarantine &&
      req.term > core.current_term) {
    // Non-binding up-to-date check against the prospective term; no term
    // adoption, no voted_for move, no persistence, and — unlike a real
    // grant — no election-timer reset.
    const storage::RaftLog& log = ctx_->log();
    resp.granted = req.last_log_term > log.LastTerm() ||
                   (req.last_log_term == log.LastTerm() &&
                    req.last_log_index >= log.LastIndex());
  }
  if (resp.granted) {
    ++ctx_->stats().prevotes_granted;
  } else {
    ++ctx_->stats().prevotes_rejected;
  }
  if (ctx_->tracer() != nullptr) {
    ctx_->tracer()->RecordInstant(resp.granted ? obs::names::kPreVoteGrant
                                               : obs::names::kPreVoteReject,
                                  ctx_->id(), req.candidate);
  }
  if (obs::Journal* j = ctx_->journal(); j != nullptr) {
    j->Record(resp.granted ? obs::JournalEventKind::kPreVoteGrant
                           : obs::JournalEventKind::kPreVoteReject,
              ctx_->id(), static_cast<int32_t>(req.candidate),
              static_cast<int64_t>(req.term));
  }
  ctx_->SendTo(req.candidate, resp.WireSize(), resp);
}

void ElectionEngine::HandleRequestVote(RequestVoteRequest req) {
  if (req.pre_vote) {
    HandlePreVoteRequest(req);
    return;
  }
  CoreState& core = ctx_->core();
  if (ctx_->options().leader_lease && LeaseHeld()) {
    // The deposition shield: a known-live leader outranks any candidacy.
    // Critically this runs *before* the higher-term step-down — the
    // candidate's (possibly inflated) term is never adopted.
    SendLeaseReject(req);
    return;
  }
  if (req.term > core.current_term) {
    StepDown(req.term, net::kInvalidNode);
  }
  RequestVoteResponse resp;
  resp.term = core.current_term;
  resp.from = ctx_->id();
  resp.granted = false;
  if (!withhold_votes_ && req.term == core.current_term &&
      !core.heal_quarantine &&
      (core.voted_for == net::kInvalidNode ||
       core.voted_for == req.candidate)) {
    // A quarantined node grants no votes: its truncated log makes the
    // up-to-date comparison unsound (it may vote against entries it once
    // held committed).
    const storage::RaftLog& log = ctx_->log();
    const bool up_to_date =
        req.last_log_term > log.LastTerm() ||
        (req.last_log_term == log.LastTerm() &&
         req.last_log_index >= log.LastIndex());
    if (up_to_date) {
      resp.granted = true;
      core.voted_for = req.candidate;
      ctx_->PersistHardState();
      ArmElectionTimer();
    }
  }
  if (resp.granted && !ctx_->DurabilityInstant()) {
    // The vote is a durable promise: it must not reach the candidate
    // before the fsync that remembers it.
    const uint64_t epoch = core.epoch;
    const net::NodeId candidate = req.candidate;
    ctx_->WhenDurable([this, epoch, candidate, resp]() {
      const CoreState& c = ctx_->core();
      if (c.crashed || epoch != c.epoch) return;
      ctx_->SendTo(candidate, resp.WireSize(), resp);
    });
    return;
  }
  ctx_->SendTo(req.candidate, resp.WireSize(), resp);
}

void ElectionEngine::HandleVoteResponse(RequestVoteResponse resp) {
  CoreState& core = ctx_->core();
  if (resp.term > core.current_term) {
    StepDown(resp.term, net::kInvalidNode);
    return;
  }
  if (resp.pre_vote) {
    // A candidate whose election stalled (votes lease-rejected, quorum
    // never formed) re-canvasses from its timer, so a canvass may
    // legitimately be in flight in either role; only the stale-term check
    // decides validity. Gating on follower here would drop every grant a
    // stuck candidate receives and wedge it at its current term forever.
    if (!prevote_in_progress_ || !resp.granted ||
        (core.role != Role::kFollower && core.role != Role::kCandidate) ||
        prevote_term_ != core.current_term + 1) {
      return;  // Stale canvass (term moved on) or a plain rejection.
    }
    prevotes_received_.insert(resp.from);
    if (VoteQuorumReached(prevotes_received_)) {
      AbortPreVote();
      StartElection();
    }
    return;
  }
  if (core.role != Role::kCandidate || resp.term != core.current_term ||
      !resp.granted) {
    return;
  }
  votes_received_.insert(resp.from);
  if (VoteQuorumReached(votes_received_)) {
    BecomeLeader();
  }
}

bool ElectionEngine::TransferLeadership(net::NodeId target) {
  CoreState& core = ctx_->core();
  if (core.role != Role::kLeader || target == ctx_->id()) return false;
  MembershipEngine* m = ctx_->membership();
  if (m != nullptr && m->active() && !m->IsVoter(target)) return false;
  ++ctx_->stats().transfers;
  NBRAFT_LOG(Info) << "node " << ctx_->id()
                   << " transfers leadership to node " << target << ", term "
                   << core.current_term;
  if (obs::Journal* j = ctx_->journal(); j != nullptr) {
    j->Record(obs::JournalEventKind::kTransferStart, ctx_->id(),
              static_cast<int32_t>(target),
              static_cast<int64_t>(core.current_term));
  }
  TimeoutNowRequest req;
  req.term = core.current_term;
  req.leader = ctx_->id();
  ctx_->SendTo(target, req.WireSize(), req);
  return true;
}

void ElectionEngine::HandleTimeoutNow(const TimeoutNowRequest& req) {
  CoreState& core = ctx_->core();
  if (req.term < core.current_term || core.role == Role::kLeader) return;
  if (core.heal_quarantine || IsPassive()) return;
  // An explicit leader instruction: campaign immediately, bypassing both
  // the randomized timeout and the PreVote canvass. The term bump deposes
  // the old leader the moment our vote request reaches it.
  transfer_pending_ = true;
  StartElection();
}

void ElectionEngine::ArmCheckQuorumTimer() {
  sim::Simulator* sim = ctx_->simulator();
  sim->Cancel(check_quorum_timer_);
  const uint64_t epoch = ctx_->core().epoch;
  check_quorum_timer_ =
      sim->After(ctx_->options().election_timeout, [this, epoch]() {
        const CoreState& core = ctx_->core();
        if (core.crashed || epoch != core.epoch ||
            core.role != Role::kLeader) {
          return;
        }
        OnCheckQuorumTimeout();
      });
}

void ElectionEngine::OnCheckQuorumTimeout() {
  CoreState& core = ctx_->core();
  const SimTime now = ctx_->simulator()->Now();
  const SimDuration window = ctx_->options().election_timeout;
  const int responsive =
      ctx_->pipeline()->PeersRespondedSince(now > window ? now - window : 0) +
      1;  // Self.
  if (responsive >= ctx_->quorum()) {
    ArmCheckQuorumTimer();
    return;
  }
  ++ctx_->stats().checkquorum_stepdowns;
  NBRAFT_LOG(Info) << "node " << ctx_->id() << " lost quorum contact ("
                   << responsive << " responsive), stepping down in term "
                   << core.current_term;
  if (ctx_->tracer() != nullptr) {
    ctx_->tracer()->RecordInstant(obs::names::kQuorumLost, ctx_->id(),
                                  core.current_term);
  }
  if (obs::Journal* j = ctx_->journal(); j != nullptr) {
    j->Record(obs::JournalEventKind::kQuorumLost, ctx_->id(), -1,
              static_cast<int64_t>(core.current_term), responsive);
  }
  // Same-term step-down: this is voluntary abdication, not a deposition
  // (no higher term forced it), so leader_depositions stays untouched.
  StepDown(core.current_term, net::kInvalidNode);
}

void ElectionEngine::CancelCheckQuorumTimer() {
  if (check_quorum_timer_ == sim::kInvalidEventId) return;
  ctx_->simulator()->Cancel(check_quorum_timer_);
  check_quorum_timer_ = sim::kInvalidEventId;
}

void ElectionEngine::BecomeLeader() {
  CoreState& core = ctx_->core();
  NBRAFT_CHECK_NE(static_cast<int>(core.role),
                  static_cast<int>(Role::kLeader));
  core.role = Role::kLeader;
  core.leader = ctx_->id();
  ++ctx_->stats().times_elected;
  NBRAFT_LOG(Info) << "node " << ctx_->id() << " elected leader, term "
                   << core.current_term;
  if (ctx_->tracer() != nullptr) {
    ctx_->tracer()->RecordInstant(obs::names::kLeaderElected, ctx_->id(),
                                  core.current_term);
  }
  if (obs::Journal* j = ctx_->journal(); j != nullptr) {
    j->Record(obs::JournalEventKind::kLeaderElected, ctx_->id(), -1,
              static_cast<int64_t>(core.current_term));
    j->Record(obs::JournalEventKind::kRoleChange, ctx_->id(), -1,
              static_cast<int64_t>(Role::kLeader),
              static_cast<int64_t>(core.current_term));
    if (transfer_pending_) {
      j->Record(obs::JournalEventKind::kTransferDone, ctx_->id(), -1,
                static_cast<int64_t>(core.current_term));
    }
  }
  transfer_pending_ = false;
  for (const LeaderObserver& observer : leader_observers_) {
    observer(core.current_term, ctx_->id());
  }
  ctx_->simulator()->Cancel(election_timer_);
  election_timer_ = sim::kInvalidEventId;
  AbortPreVote();
  if (ctx_->options().check_quorum) ArmCheckQuorumTimer();

  // Any leader-side state left from a previous leadership — and weakly
  // accepted cache entries belonging to the previous leader's pipeline —
  // is stale now.
  ctx_->applier()->ResetLeaderState();
  ctx_->pipeline()->ResetLeaderState();
  ctx_->ingress()->OnLeadershipTaken();

  // Commit a no-op in the new term so older entries can commit (Raft's
  // current-term commit rule).
  storage::RaftLog& log = ctx_->log();
  storage::LogEntry noop;
  noop.index = log.LastIndex() + 1;
  noop.term = core.current_term;
  noop.prev_term = log.LastTerm();
  log.Append(noop);
  ctx_->PersistEntry(noop);
  ++ctx_->stats().entries_appended;
  VoteList& vote_list = ctx_->applier()->vote_list();
  if (ctx_->DurabilityInstant()) {
    vote_list.AddTuple(noop.index, noop.term, ctx_->id(), ctx_->quorum());
    core.strong_ack_frontier =
        std::max(core.strong_ack_frontier, noop.index);
  } else {
    // Same fsync-gated self-vote as IndexAndReplicate.
    vote_list.AddTuple(noop.index, noop.term, net::kInvalidNode,
                       ctx_->quorum());
    const uint64_t epoch = core.epoch;
    const storage::LogIndex index = noop.index;
    const storage::Term term = noop.term;
    ctx_->WhenDurable([this, epoch, index, term]() {
      CoreState& c = ctx_->core();
      if (c.crashed || epoch != c.epoch || c.role != Role::kLeader ||
          c.current_term != term) {
        return;
      }
      c.strong_ack_frontier = std::max(c.strong_ack_frontier, index);
      ctx_->applier()->CommitIndices(
          ctx_->applier()->vote_list().AddStrongUpTo(index, ctx_->id(),
                                                     c.current_term));
    });
  }
  ctx_->applier()->OnLeaderAppended(noop.index);
  ctx_->pipeline()->ReplicateEntry(noop);
  MembershipEngine* m = ctx_->membership();
  const bool solo_quorum = (m != nullptr && m->active())
                               ? m->QuorumSatisfied({ctx_->id()})
                               : ctx_->peer_ids().empty();
  if (solo_quorum && ctx_->DurabilityInstant()) {
    ctx_->applier()->CommitIndices(
        vote_list.AddStrongUpTo(noop.index, ctx_->id(), core.current_term));
  }

  ctx_->pipeline()->BroadcastHeartbeat();

  // Resume catch-up for any learners the committed config already names:
  // recovery tracking is leader-side soft state, so a new leader rebuilds
  // it from the configuration.
  if (m != nullptr && m->active() && ctx_->recovery() != nullptr) {
    for (net::NodeId learner : m->config().learners) {
      if (learner != ctx_->id()) ctx_->recovery()->StartRecovery(learner);
    }
  }
}

void ElectionEngine::StepDown(storage::Term term, net::NodeId leader) {
  CoreState& core = ctx_->core();
  const bool was_leader = core.role == Role::kLeader;
  const Role new_role = IsPassive() ? Role::kLearner : Role::kFollower;
  const bool role_changes = core.role != new_role;
  const storage::Term old_term = core.current_term;
  if (was_leader && term > old_term) {
    // A live leader forced down by a higher term — the deposition the
    // PreVote / CheckQuorum / lease mitigations exist to prevent.
    ++ctx_->stats().leader_depositions;
  }
  if (obs::Journal* j = ctx_->journal(); j != nullptr) {
    j->Record(obs::JournalEventKind::kStepDown, ctx_->id(), -1,
              static_cast<int64_t>(term), was_leader ? 1 : 0);
    if (term > old_term) {
      j->Record(obs::JournalEventKind::kTermChange, ctx_->id(), -1,
                static_cast<int64_t>(old_term), static_cast<int64_t>(term));
    }
    if (role_changes) {
      j->Record(obs::JournalEventKind::kRoleChange, ctx_->id(), -1,
                static_cast<int64_t>(new_role),
                static_cast<int64_t>(std::max(term, old_term)));
    }
  }
  if (was_leader) {
    // Tell clients of in-flight entries to retry with the new leader
    // (Sec. III-B3a: reply LEADER_CHANGED and clean the VoteList), then
    // drop every piece of leader-only state — peer pipelines, outstanding
    // RPCs, fragment caches, commit timing (the Crash() path clears the
    // same set; keeping one reset per engine keeps the lifetimes honest).
    ctx_->applier()->FailPendingClientEntries(term, leader);
    ctx_->pipeline()->ResetLeaderState();
    ctx_->applier()->ResetLeaderState();
    CancelCheckQuorumTimer();
    if (ctx_->recovery() != nullptr) ctx_->recovery()->StopAll();
  }
  if (term > core.current_term) {
    core.current_term = term;
    core.voted_for = net::kInvalidNode;
    ctx_->PersistHardState();
  }
  core.role = new_role;
  core.leader = leader;
  votes_received_.clear();
  transfer_pending_ = false;
  AbortPreVote();
  ArmElectionTimer();
}

void ElectionEngine::NoteLeaderContact(storage::Term term,
                                       net::NodeId leader) {
  CoreState& core = ctx_->core();
  if (term > core.current_term ||
      (core.role != Role::kFollower && core.role != Role::kLearner)) {
    StepDown(term, leader);
  }
  core.leader = leader;
  // The lease clock: this is the moment a live leader was last heard.
  // Tracked unconditionally (one store) so flipping leader_lease on never
  // changes any other code path.
  last_leader_contact_ = ctx_->simulator()->Now();
  AbortPreVote();  // A live leader ends any canvass.
  ArmElectionTimer();
}

}  // namespace nbraft::raft
