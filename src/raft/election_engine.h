#ifndef NBRAFT_RAFT_ELECTION_ENGINE_H_
#define NBRAFT_RAFT_ELECTION_ENGINE_H_

#include <functional>
#include <set>
#include <vector>

#include "raft/messages.h"
#include "raft/node_context.h"

namespace nbraft::raft {

/// Leader election and term transitions: the randomized election timer,
/// vote bookkeeping, candidate -> leader promotion and the step-down path
/// (which drains the leader-side engines through the context). Everything
/// here mutates only CoreState term/role/vote fields plus its own timers.
///
/// Three independently switchable mitigations (RaftOptions) harden the
/// election path against protocol-level adversaries:
///
///  - PreVote: a timed-out follower first canvasses a non-binding
///    pre-vote quorum for its prospective term (current + 1) and only
///    then runs StartElection. Nothing is persisted and voted_for never
///    moves during the canvass, so an isolated node cannot inflate its
///    term — the classic disruptive-server attack dies here.
///  - CheckQuorum: a leader that heard AppendEntries responses from
///    fewer than quorum-1 peers within one election_timeout steps down
///    in its own term (counted as checkquorum_stepdowns, not as a
///    deposition).
///  - Leader lease: while this node heard a live leader within the last
///    election_timeout (or is that leader), vote and pre-vote requests
///    are rejected *without* adopting the candidate's term.
///
/// With all three off the code path — including the rng draw sequence —
/// is exactly the unmitigated engine (behavior_fingerprint-pinned).
class ElectionEngine {
 public:
  /// Invoked exactly once per term this node wins, from BecomeLeader().
  /// The chaos safety oracle uses it to check election safety (<= 1 leader
  /// per term) without polling.
  using LeaderObserver = std::function<void(storage::Term, net::NodeId)>;

  explicit ElectionEngine(NodeContext* ctx) : ctx_(ctx) {}

  /// (Re-)arms the randomized election timer. The jitter is drawn from
  /// the node's rng *per arming* — never cached at construction — so
  /// repeated election storms cannot resonate on identical timeouts
  /// (regression-pinned by ElectionJitter tests).
  void ArmElectionTimer();

  /// Election-timer expiry: pre-vote canvass when RaftOptions::pre_vote,
  /// otherwise a real election. TriggerElection (harness bootstrap)
  /// bypasses this and calls StartElection directly.
  void OnElectionTimeout();

  void StartElection();
  void HandleRequestVote(RequestVoteRequest req);
  void HandleVoteResponse(RequestVoteResponse resp);

  /// Leadership transfer (graceful drain): sends TimeoutNow to `target`,
  /// which campaigns immediately and deposes this leader with its higher
  /// term. Returns false when this node is not the leader or the target
  /// is not an eligible voter.
  bool TransferLeadership(net::NodeId target);

  /// Target side of TransferLeadership: campaign now, skipping both the
  /// election timeout and any PreVote canvass (the transfer is an explicit
  /// leader instruction, so the disruptive-server shield does not apply).
  void HandleTimeoutNow(const TimeoutNowRequest& req);

  /// Reverts to follower in `term` (> current steps the term forward),
  /// failing pending client entries and resetting the leader-side engines
  /// when this node was the leader.
  void StepDown(storage::Term term, net::NodeId leader);

  /// A current-or-newer leader made contact: step down if needed, adopt
  /// the leader hint and reset the election timer (and the lease clock).
  void NoteLeaderContact(storage::Term term, net::NodeId leader);

  /// Crash-stop cleanup: cancels the timers and forgets votes.
  void OnCrash();

  /// Registers a callback fired on every BecomeLeader (term, node id).
  /// Multicast: the harness's shard router and the chaos safety oracle
  /// both listen. Observers fire in registration order.
  void add_leader_observer(LeaderObserver observer) {
    leader_observers_.push_back(std::move(observer));
  }
  /// Historical name; appends like add_leader_observer.
  void set_leader_observer(LeaderObserver observer) {
    add_leader_observer(std::move(observer));
  }

  /// Multiplies the randomized election timeout (chaos clock skew; 1.0 =
  /// nominal). Applies from the next time the timer is armed.
  void set_timer_skew(double skew) { timer_skew_ = skew; }
  double timer_skew() const { return timer_skew_; }

  /// Chaos vote-withholder adversary: while set, this node refuses every
  /// vote and pre-vote request (term bookkeeping still runs — the node is
  /// unhelpful, not byzantine).
  void set_withhold_votes(bool withhold) { withhold_votes_ = withhold; }
  bool withhold_votes() const { return withhold_votes_; }

  /// True while a leader-lease holds: this node is the leader, or heard
  /// one within the last election_timeout. Only meaningful with
  /// RaftOptions::leader_lease (callers gate on the option).
  bool LeaseHeld() const;

 private:
  void BecomeLeader();
  void StartPreVote();
  /// Whether `votes` decides the election under the active configuration:
  /// joint configs need majorities of both voter generations (votes from
  /// removed nodes and learners are filtered out), fixed rosters keep the
  /// plain count >= quorum rule.
  bool VoteQuorumReached(const std::set<net::NodeId>& votes);
  /// True while this node holds no vote in the active configuration
  /// (learner, or removed): it neither campaigns nor arms election timers.
  bool IsPassive();
  void HandlePreVoteRequest(const RequestVoteRequest& req);
  void AbortPreVote() {
    prevote_in_progress_ = false;
    prevotes_received_.clear();
  }
  void ArmCheckQuorumTimer();
  void OnCheckQuorumTimeout();
  void CancelCheckQuorumTimer();
  /// Rejects `req` because the lease holds, without touching term state.
  void SendLeaseReject(const RequestVoteRequest& req);

  NodeContext* ctx_;
  std::set<net::NodeId> votes_received_;
  sim::EventId election_timer_ = sim::kInvalidEventId;
  std::vector<LeaderObserver> leader_observers_;
  double timer_skew_ = 1.0;

  // PreVote canvass state (never a Role: a pre-candidate is still a
  // follower to the rest of the protocol).
  bool prevote_in_progress_ = false;
  storage::Term prevote_term_ = 0;  ///< Prospective term of the canvass.
  std::set<net::NodeId> prevotes_received_;

  // Leader lease: when this node last heard from a live leader.
  SimTime last_leader_contact_ = 0;

  // CheckQuorum: leader-side quorum-liveness probe.
  sim::EventId check_quorum_timer_ = sim::kInvalidEventId;

  bool withhold_votes_ = false;

  /// Set when a TimeoutNow told this node to campaign: the next
  /// BecomeLeader journals the transfer as completed.
  bool transfer_pending_ = false;
};

}  // namespace nbraft::raft

#endif  // NBRAFT_RAFT_ELECTION_ENGINE_H_
