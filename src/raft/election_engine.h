#ifndef NBRAFT_RAFT_ELECTION_ENGINE_H_
#define NBRAFT_RAFT_ELECTION_ENGINE_H_

#include <functional>
#include <set>

#include "raft/messages.h"
#include "raft/node_context.h"

namespace nbraft::raft {

/// Leader election and term transitions: the randomized election timer,
/// vote bookkeeping, candidate -> leader promotion and the step-down path
/// (which drains the leader-side engines through the context). Everything
/// here mutates only CoreState term/role/vote fields plus its own timer.
class ElectionEngine {
 public:
  /// Invoked exactly once per term this node wins, from BecomeLeader().
  /// The chaos safety oracle uses it to check election safety (<= 1 leader
  /// per term) without polling.
  using LeaderObserver = std::function<void(storage::Term, net::NodeId)>;

  explicit ElectionEngine(NodeContext* ctx) : ctx_(ctx) {}

  /// (Re-)arms the randomized election timer.
  void ArmElectionTimer();

  void StartElection();
  void HandleRequestVote(RequestVoteRequest req);
  void HandleVoteResponse(RequestVoteResponse resp);

  /// Reverts to follower in `term` (> current steps the term forward),
  /// failing pending client entries and resetting the leader-side engines
  /// when this node was the leader.
  void StepDown(storage::Term term, net::NodeId leader);

  /// A current-or-newer leader made contact: step down if needed, adopt
  /// the leader hint and reset the election timer.
  void NoteLeaderContact(storage::Term term, net::NodeId leader);

  /// Crash-stop cleanup: cancels the timer and forgets votes.
  void OnCrash();

  void set_leader_observer(LeaderObserver observer) {
    leader_observer_ = std::move(observer);
  }

  /// Multiplies the randomized election timeout (chaos clock skew; 1.0 =
  /// nominal). Applies from the next time the timer is armed.
  void set_timer_skew(double skew) { timer_skew_ = skew; }
  double timer_skew() const { return timer_skew_; }

 private:
  void BecomeLeader();

  NodeContext* ctx_;
  std::set<net::NodeId> votes_received_;
  sim::EventId election_timer_ = sim::kInvalidEventId;
  LeaderObserver leader_observer_;
  double timer_skew_ = 1.0;
};

}  // namespace nbraft::raft

#endif  // NBRAFT_RAFT_ELECTION_ENGINE_H_
