#include "raft/follower_ingress.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "obs/names.h"
#include "raft/commit_applier.h"
#include "raft/election_engine.h"
#include "raft/membership.h"

namespace nbraft::raft {
namespace {

/// A configuration entry takes effect the moment it is appended — on
/// followers exactly as on the leader (Raft Sec. 6: a server always uses
/// the latest configuration in its log).
void NoteConfigAppended(NodeContext* ctx, const storage::LogEntry& entry) {
  if (entry.client_id != kConfigClientId) return;
  if (MembershipEngine* m = ctx->membership(); m != nullptr && m->active()) {
    m->OnConfigAppended(entry);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Window trace adapter
// ---------------------------------------------------------------------------

void FollowerIngress::WindowTraceAdapter::OnInsert(storage::LogIndex index,
                                                   size_t occupancy) {
  NodeContext* ctx = ingress_->ctx_;
  if (obs::Tracer* t = ctx->tracer(); t != nullptr) {
    t->RecordInstant(obs::names::kWindowInsert, ctx->id(), index,
                     static_cast<int64_t>(occupancy));
  }
  if (obs::Journal* j = ctx->journal(); j != nullptr) {
    j->Record(obs::JournalEventKind::kWindowInsert, ctx->id(), -1,
              static_cast<int64_t>(index), static_cast<int64_t>(occupancy));
  }
}

void FollowerIngress::WindowTraceAdapter::OnEvict(storage::LogIndex index,
                                                  size_t occupancy) {
  NodeContext* ctx = ingress_->ctx_;
  if (obs::Tracer* t = ctx->tracer(); t != nullptr) {
    t->RecordInstant(obs::names::kWindowEvict, ctx->id(), index,
                     static_cast<int64_t>(occupancy));
  }
  if (obs::Journal* j = ctx->journal(); j != nullptr) {
    j->Record(obs::JournalEventKind::kWindowEvict, ctx->id(), -1,
              static_cast<int64_t>(index), static_cast<int64_t>(occupancy));
  }
}

void FollowerIngress::WindowTraceAdapter::OnFlush(storage::LogIndex first,
                                                  size_t count,
                                                  size_t occupancy) {
  NodeContext* ctx = ingress_->ctx_;
  if (obs::Tracer* t = ctx->tracer(); t != nullptr) {
    t->RecordInstant(obs::names::kWindowFlush, ctx->id(), first,
                     static_cast<int64_t>(count));
  }
  if (obs::Journal* j = ctx->journal(); j != nullptr) {
    j->Record(obs::JournalEventKind::kWindowFlush, ctx->id(), -1,
              static_cast<int64_t>(first), static_cast<int64_t>(count));
  }
  (void)occupancy;
}

void FollowerIngress::OnTracerChanged() {
  // The adapter fans out to whichever sinks are attached; install it when
  // either is live so untraced runs keep the no-observer fast path.
  const bool observed =
      ctx_->tracer() != nullptr || ctx_->journal() != nullptr;
  window_.set_observer(observed ? &window_trace_adapter_ : nullptr);
}

void FollowerIngress::OnCrash() {
  window_.Clear();
  held_entries_.clear();
  recv_time_.clear();
}

void FollowerIngress::OnLeadershipTaken() {
  window_.Clear();
  held_entries_.clear();
  recv_time_.clear();
}

// ---------------------------------------------------------------------------
// Append path
// ---------------------------------------------------------------------------

void FollowerIngress::HandleAppendEntries(AppendEntriesRequest req,
                                          SimTime received_at) {
  CoreState& core = ctx_->core();
  storage::RaftLog& log = ctx_->log();
  if (req.term < core.current_term) {
    // Stale leader: tell it a newer term exists (paper Fig. 11 — the reply
    // carries the higher term so the old leader steps down and returns
    // LEADER_CHANGED to its clients).
    AppendEntriesResponse resp;
    resp.term = core.current_term;
    resp.from = ctx_->id();
    resp.rpc_id = req.rpc_id;
    resp.state = AcceptState::kLeaderChanged;
    resp.is_heartbeat = req.is_heartbeat;
    resp.entry_index = req.is_heartbeat ? 0 : req.entry.index;
    resp.last_index = log.LastIndex();
    resp.last_term = log.LastTerm();
    ctx_->SendTo(req.leader, resp.WireSize(), resp);
    return;
  }
  ctx_->election()->NoteLeaderContact(req.term, req.leader);

  // KRaft relay: forward to the assigned peers before local processing.
  if (!req.relay_to.empty()) {
    AppendEntriesRequest fwd = req;
    fwd.relay_to.clear();
    for (net::NodeId target : req.relay_to) {
      ctx_->SendTo(target, fwd.WireSize(), fwd);
    }
    req.relay_to.clear();
  }

  if (req.is_heartbeat) {
    // Heartbeats advance the commit index only when the follower can
    // verify its entry at leader_commit matches the leader's (otherwise a
    // stale divergent tail could be "committed" locally).
    if (log.Matches(req.leader_commit, req.commit_term)) {
      AdvanceFollowerCommit(req.leader_commit, req.leader_commit);
    }
    AppendEntriesResponse resp;
    resp.term = core.current_term;
    resp.from = ctx_->id();
    resp.rpc_id = req.rpc_id;
    resp.state = AcceptState::kStrongAccept;
    resp.is_heartbeat = true;
    resp.last_index = log.LastIndex();
    resp.last_term = log.LastTerm();
    ctx_->SendTo(req.leader, resp.WireSize(), resp);
    return;
  }

  // VGRaft: verify the digest and signature before accepting. The
  // signature check itself parallelizes on the worker pool, but admitting
  // a verified entry into consensus serializes with the log handling —
  // the "heavy overhead" of per-consensus verification groups the paper
  // measures as VGRaft's weakness.
  if (ctx_->options().verify_group && req.signed_payload) {
    const SimDuration verify_cost =
        PerKib(ctx_->options().costs.hash_cost_per_kib,
               req.entry.WireSize()) +
        ctx_->options().costs.verify_cost;
    ctx_->log_lock_lane()->Consume(
        ctx_->options().costs.verify_admission_cost);
    const uint64_t epoch = core.epoch;
    ctx_->cpu()->Submit(verify_cost, [this, epoch, received_at,
                                      req = std::move(req)]() mutable {
      const CoreState& c = ctx_->core();
      if (c.crashed || epoch != c.epoch) return;
      ProcessEntry(req, received_at, /*from_held_queue=*/false);
    });
    return;
  }
  if (!req.extra_entries.empty()) {
    ProcessBatch(std::move(req), received_at);
    return;
  }
  ProcessEntry(req, received_at, /*from_held_queue=*/false);
}

void FollowerIngress::ProcessEntry(const AppendEntriesRequest& req,
                                   SimTime received_at,
                                   bool from_held_queue) {
  CoreState& core = ctx_->core();
  storage::RaftLog& log = ctx_->log();
  const storage::LogEntry& entry = req.entry;
  const storage::LogIndex last = log.LastIndex();
  const storage::LogIndex diff = entry.index - last;

  // Duplicate delivery of an entry we already appended: the match proves
  // our prefix up to it agrees with the leader's. Entries below the
  // compacted prefix are covered by the installed snapshot (committed
  // state) and equally duplicates.
  if (diff <= 0 && (entry.index < log.FirstIndex() ||
                    log.Matches(entry.index, entry.term))) {
    if (entry.index >= log.FirstIndex()) {
      AdvanceFollowerCommit(req.leader_commit, entry.index);
    }
    if (ctx_->DurabilityInstant()) {
      RespondAppend(req, AcceptState::kStrongAccept, log.LastIndex(),
                    log.LastTerm());
    } else {
      // The duplicate was appended earlier but its covering fsync may
      // still be in flight: a strong accept must wait for it.
      const uint64_t epoch = core.epoch;
      const storage::LogIndex last = log.LastIndex();
      const storage::Term last_term = log.LastTerm();
      ctx_->WhenDurable([this, epoch, req, last, last_term]() {
        const CoreState& c = ctx_->core();
        if (c.crashed || epoch != c.epoch) return;
        RespondAppend(req, AcceptState::kStrongAccept, last, last_term);
      });
    }
    return;
  }

  if (diff <= 0) {
    // Sec. III-A1: a newer-term entry replaces an appended one. Committed
    // entries can never conflict (Leader Completeness).
    NBRAFT_CHECK_GT(entry.index, core.commit_index)
        << "node " << ctx_->id() << ": conflicting entry "
        << entry.ToString() << " from leader " << req.leader << " term "
        << req.term << " below commit " << core.commit_index
        << "; local term at index: "
        << log.TermAt(entry.index).value_or(-1) << ", my term "
        << core.current_term << ", last " << log.LastIndex();
    if (log.Matches(entry.index - 1, entry.prev_term)) {
      AppendAndFlush(req, received_at, /*truncate_first=*/true);
    } else {
      ++ctx_->stats().mismatches_sent;
      RespondAppend(req, AcceptState::kLogMismatch, log.LastIndex(),
                    log.LastTerm());
    }
    return;
  }

  if (diff == 1) {
    // Sec. III-A2b: directly appendable if the previous entry is our last.
    if (log.LastTerm() == entry.prev_term) {
      AppendAndFlush(req, received_at, /*truncate_first=*/false);
    } else {
      ++ctx_->stats().mismatches_sent;
      RespondAppend(req, AcceptState::kLogMismatch, log.LastIndex(),
                    log.LastTerm());
    }
    return;
  }

  if (diff <= ctx_->options().window_size) {
    // Sec. III-A2: cache in the sliding window, reply WEAK_ACCEPT.
    if (core.role == Role::kLearner) {
      // The WEAK_ACCEPT × catch-up hazard under study: a learner's window
      // frontier runs ahead of its contiguous durable prefix by `diff`.
      ctx_->stats().learner_gap_max = std::max<uint64_t>(
          ctx_->stats().learner_gap_max, static_cast<uint64_t>(diff));
    }
    recv_time_[entry.index] = received_at;
    window_.Insert(entry);
    ctx_->log_lock_lane()->Consume(ctx_->options().costs.window_insert_cost);
    ++ctx_->stats().window_inserts;
    ++ctx_->stats().weak_accepts_sent;
    RespondAppend(req, AcceptState::kWeakAccept, entry.index, entry.term);
    return;
  }

  // Sec. III-A3: beyond the window — hold and retry when the log advances.
  // The RPC stays open, keeping its dispatcher busy: this is the blocking
  // loop of the paper's Fig. 3 (and, with w = 0, the entirety of original
  // Raft's out-of-order handling).
  if (!from_held_queue) ++ctx_->stats().window_overflows;
  held_entries_.emplace(entry.index, HeldEntry{req, received_at});
}

SimDuration FollowerIngress::AppendChained(storage::LogEntry entry,
                                           SimTime received_at) {
  const SimDuration wait = ctx_->Now() - received_at;
  ctx_->stats().wait_hist.Record(wait);
  ctx_->TracePhase(metrics::Phase::kWaitFollower, received_at, ctx_->Now(),
                   entry.term, entry.index, entry.request_id);
  const SimDuration cost = FollowerAppendCost(entry);
  ctx_->PersistEntry(entry);
  const storage::LogIndex index = entry.index;
  NoteConfigAppended(ctx_, entry);
  ctx_->log().Append(std::move(entry));
  ++ctx_->stats().entries_appended;
  recv_time_.erase(index);
  return cost;
}

SimDuration FollowerIngress::FlushWindowPrefix() {
  storage::RaftLog& log = ctx_->log();
  SimDuration cost = 0;
  std::vector<storage::LogEntry> flushed =
      window_.TakeFlushablePrefix(log.LastIndex(), log.LastTerm());
  for (storage::LogEntry& e : flushed) {
    const auto rt = recv_time_.find(e.index);
    if (rt != recv_time_.end()) {
      const SimDuration w = ctx_->Now() - rt->second;
      ctx_->stats().wait_hist.Record(w);
      ctx_->TracePhase(metrics::Phase::kWaitFollower, rt->second,
                       ctx_->Now(), e.term, e.index, e.request_id);
      recv_time_.erase(rt);
    }
    cost += FollowerAppendCost(e);
    ctx_->PersistEntry(e);
    NoteConfigAppended(ctx_, e);
    log.Append(std::move(e));
    ++ctx_->stats().entries_appended;
  }
  return cost;
}

void FollowerIngress::ProcessBatch(AppendEntriesRequest req,
                                   SimTime received_at) {
  storage::RaftLog& log = ctx_->log();
  if (req.entry.index != log.LastIndex() + 1 ||
      log.LastTerm() != req.entry.prev_term) {
    // The head does not extend our log directly: peel the batch into the
    // normal per-entry decision tree (duplicates, truncation, window
    // caching, holding). The leader accepts one response per entry under
    // the shared rpc_id.
    AppendEntriesRequest sub = req;
    sub.extra_entries.clear();
    ProcessEntry(sub, received_at, /*from_held_queue=*/false);
    for (storage::LogEntry& e : req.extra_entries) {
      sub.entry = std::move(e);
      ProcessEntry(sub, received_at, /*from_held_queue=*/false);
    }
    return;
  }

  // Fast path: the batch is a consecutive run extending our log — append
  // the whole run (interleaved with window flushes) under ONE log-lock
  // acquisition and answer with ONE strong accept. This is the
  // amortization batching buys: one RPC, one lock pass, one held-entry
  // wakeup round instead of `batch` of each.
  AppendEntriesRequest head = req;
  head.extra_entries.clear();
  SimDuration cost = AppendChained(req.entry, received_at);
  cost += FlushWindowPrefix();
  size_t consumed = 0;
  for (storage::LogEntry& e : req.extra_entries) {
    if (e.index <= log.LastIndex()) {
      // A window flush already placed this index; only a matching entry is
      // a duplicate we can skip.
      if (log.Matches(e.index, e.term)) {
        ++consumed;
        continue;
      }
      break;
    }
    if (e.index != log.LastIndex() + 1 || log.LastTerm() != e.prev_term) {
      break;  // Chain broken mid-batch (truncation raced the send).
    }
    cost += AppendChained(std::move(e), received_at);
    cost += FlushWindowPrefix();
    ++consumed;
  }

  const storage::LogIndex new_last = log.LastIndex();
  const storage::Term new_last_term = log.LastTerm();
  ctx_->stats().append_latency.Record(ctx_->Now() - received_at);
  AdvanceFollowerCommit(req.leader_commit, new_last);
  cost += ctx_->options().costs.held_wakeup_cost *
          static_cast<SimDuration>(held_entries_.size());

  const uint64_t epoch = ctx_->core().epoch;
  const SimTime submit_time = ctx_->Now();
  ctx_->log_lock_lane()->Submit(
      cost, [this, epoch, head, new_last, new_last_term, submit_time,
             cost]() {
        const CoreState& c = ctx_->core();
        if (c.crashed || epoch != c.epoch) return;
        ctx_->TracePhase(metrics::Phase::kAppendFollower,
                         ctx_->Now() - cost, ctx_->Now(), head.entry.term,
                         head.entry.index, head.entry.request_id);
        ctx_->TracePhase(metrics::Phase::kWaitFollower, submit_time,
                         ctx_->Now() - cost, head.entry.term,
                         head.entry.index, head.entry.request_id);
        ++ctx_->stats().strong_accepts_sent;
        if (ctx_->DurabilityInstant()) {
          RespondAppend(head, AcceptState::kStrongAccept, new_last,
                        new_last_term);
        } else {
          ctx_->WhenDurable([this, epoch, head, new_last, new_last_term]() {
            const CoreState& c2 = ctx_->core();
            if (c2.crashed || epoch != c2.epoch) return;
            RespondAppend(head, AcceptState::kStrongAccept, new_last,
                          new_last_term);
          });
        }
      });

  RecheckHeldEntries();

  // Entries past a chain break re-enter the per-entry path (they may be
  // window-cacheable or held).
  if (consumed < req.extra_entries.size()) {
    AppendEntriesRequest sub = std::move(head);
    for (size_t i = consumed; i < req.extra_entries.size(); ++i) {
      sub.entry = std::move(req.extra_entries[i]);
      ProcessEntry(sub, received_at, /*from_held_queue=*/false);
    }
  }
}

void FollowerIngress::AppendAndFlush(const AppendEntriesRequest& req,
                                     SimTime received_at,
                                     bool truncate_first) {
  CoreState& core = ctx_->core();
  storage::RaftLog& log = ctx_->log();
  storage::LogEntry entry = req.entry;
  if (truncate_first) {
    NBRAFT_CHECK(log.TruncateSuffix(entry.index).ok());
    ctx_->PersistTruncate(entry.index);
  }

  const SimDuration wait = ctx_->Now() - received_at;
  ctx_->stats().wait_hist.Record(wait);
  ctx_->TracePhase(metrics::Phase::kWaitFollower, received_at, ctx_->Now(),
                   entry.term, entry.index, entry.request_id);

  SimDuration cost = FollowerAppendCost(entry);
  ctx_->PersistEntry(entry);
  NoteConfigAppended(ctx_, entry);
  log.Append(std::move(entry));
  ++ctx_->stats().entries_appended;
  recv_time_.erase(req.entry.index);

  if (truncate_first) {
    window_.OnLogReshaped(log.LastIndex(), req.entry.term);
  }

  // Flush the continuous window prefix into the log (paper Fig. 9).
  cost += FlushWindowPrefix();

  const storage::LogIndex new_last = log.LastIndex();
  const storage::Term new_last_term = log.LastTerm();
  ctx_->stats().append_latency.Record(ctx_->Now() - received_at);

  // The appended chain was prev-verified against the leader's log, so the
  // whole prefix up to new_last matches — safe commit bound.
  AdvanceFollowerCommit(req.leader_commit, new_last);

  // Every append wakes the appender threads blocked on the log lock so
  // they can re-check their held entries — the resource drain of original
  // Raft's blocking under concurrency.
  cost += ctx_->options().costs.held_wakeup_cost *
          static_cast<SimDuration>(held_entries_.size());

  // The append itself holds the log lock: charge the serialized lane and
  // reply when the work completes. The service cost is t_append(F) (tiny,
  // as the paper measures); time spent queued for the contended log lock
  // is part of t_wait(F) — the entry was received but could not be
  // appended yet.
  const uint64_t epoch = core.epoch;
  const SimTime submit_time = ctx_->Now();
  ctx_->log_lock_lane()->Submit(
      cost, [this, epoch, req, new_last, new_last_term, submit_time,
             cost]() {
        const CoreState& c = ctx_->core();
        if (c.crashed || epoch != c.epoch) return;
        ctx_->TracePhase(metrics::Phase::kAppendFollower,
                         ctx_->Now() - cost, ctx_->Now(), req.entry.term,
                         req.entry.index, req.entry.request_id);
        ctx_->TracePhase(metrics::Phase::kWaitFollower, submit_time,
                         ctx_->Now() - cost, req.entry.term,
                         req.entry.index, req.entry.request_id);
        ++ctx_->stats().strong_accepts_sent;
        if (ctx_->DurabilityInstant()) {
          RespondAppend(req, AcceptState::kStrongAccept, new_last,
                        new_last_term);
        } else {
          // The strong accept claims durability: it leaves only after the
          // fsync covering this append completes.
          ctx_->WhenDurable([this, epoch, req, new_last, new_last_term]() {
            const CoreState& c2 = ctx_->core();
            if (c2.crashed || epoch != c2.epoch) return;
            RespondAppend(req, AcceptState::kStrongAccept, new_last,
                          new_last_term);
          });
        }
      });

  RecheckHeldEntries();
}

void FollowerIngress::RespondAppend(const AppendEntriesRequest& req,
                                    AcceptState state,
                                    storage::LogIndex last_index,
                                    storage::Term last_term) {
  if (state == AcceptState::kStrongAccept) {
    // The response claims everything through last_index is durably stored
    // here; the safety oracle checks the claim against the fsynced
    // frontier at crash time.
    CoreState& core = ctx_->core();
    core.strong_ack_frontier =
        std::max(core.strong_ack_frontier, last_index);
  }
  AppendEntriesResponse resp;
  resp.term = ctx_->core().current_term;
  resp.from = ctx_->id();
  resp.rpc_id = req.rpc_id;
  resp.state = state;
  resp.entry_index = req.entry.index;
  resp.last_index = last_index;
  resp.last_term = last_term;
  ctx_->SendTo(req.leader, resp.WireSize(), resp);
}

void FollowerIngress::RecheckHeldEntries() {
  if (in_recheck_ || held_entries_.empty()) return;
  in_recheck_ = true;
  // Only the lowest-index held entries can have become placeable; the
  // bound keeps re-advancing as processing appends more of the log.
  for (;;) {
    if (held_entries_.empty()) break;
    const storage::LogIndex bound =
        ctx_->log().LastIndex() + std::max(ctx_->options().window_size, 1);
    auto it = held_entries_.begin();
    if (it->first > bound) break;
    HeldEntry held = std::move(it->second);
    held_entries_.erase(it);
    if (held.request.term < ctx_->core().current_term) {
      RespondAppend(held.request, AcceptState::kLeaderChanged,
                    ctx_->log().LastIndex(), ctx_->log().LastTerm());
      continue;
    }
    // One more turn of the paper's waiting loop; mutating paths re-queue
    // for the log lock inside ProcessEntry.
    ProcessEntry(held.request, held.received_at, /*from_held_queue=*/true);
  }
  in_recheck_ = false;
}

void FollowerIngress::AdvanceFollowerCommit(storage::LogIndex leader_commit,
                                            storage::LogIndex
                                                verified_up_to) {
  CoreState& core = ctx_->core();
  if (core.role == Role::kLeader) return;
  const storage::LogIndex target =
      std::min({leader_commit, verified_up_to, ctx_->log().LastIndex()});
  if (target > core.commit_index) {
    if (obs::Journal* j = ctx_->journal(); j != nullptr) {
      j->Record(obs::JournalEventKind::kCommitAdvance, ctx_->id(), -1,
                static_cast<int64_t>(target),
                static_cast<int64_t>(target - core.commit_index));
    }
    ctx_->stats().entries_committed +=
        static_cast<uint64_t>(target - core.commit_index);
    core.commit_index = target;
    ctx_->applier()->ApplyReadyEntries();
  }
  if (core.heal_quarantine && core.commit_index >= core.heal_target) {
    // The committed prefix covers the repaired image's old durable
    // frontier: every index this node ever acknowledged is re-replicated
    // and committed locally, so the corruption hole is closed and it is
    // again safe to vote and stand for election.
    ctx_->ClearHealQuarantine();
  }
}

// ---------------------------------------------------------------------------
// Snapshot installation
// ---------------------------------------------------------------------------

void FollowerIngress::HandleInstallSnapshot(InstallSnapshotRequest req) {
  CoreState& core = ctx_->core();
  storage::RaftLog& log = ctx_->log();
  InstallSnapshotResponse resp;
  resp.from = ctx_->id();
  resp.rpc_id = req.rpc_id;
  if (req.term < core.current_term) {
    resp.term = core.current_term;
    resp.installed = false;
    resp.last_index = log.LastIndex();
    ctx_->SendTo(req.leader, resp.WireSize(), resp);
    return;
  }
  ctx_->election()->NoteLeaderContact(req.term, req.leader);
  resp.term = core.current_term;

  if (req.last_included_index <= core.commit_index) {
    // Already at or past the snapshot: nothing to install.
    resp.installed = false;
    resp.last_index = log.LastIndex();
    ctx_->SendTo(req.leader, resp.WireSize(), resp);
    return;
  }

  const Status restored = ctx_->mutable_state_machine()->Restore(req.data);
  if (!restored.ok()) {
    NBRAFT_LOG(Warn) << "node " << ctx_->id()
                     << ": snapshot restore failed: " << restored.ToString();
    resp.installed = false;
    resp.last_index = log.LastIndex();
    ctx_->SendTo(req.leader, resp.WireSize(), resp);
    return;
  }
  log.ResetToSnapshot(req.last_included_index, req.last_included_term);
  core.commit_index = req.last_included_index;
  core.apply_scheduled_up_to = req.last_included_index;
  core.applied_index = req.last_included_index;
  core.snapshot_data = std::move(req.data);
  core.snapshot_index = req.last_included_index;
  core.snapshot_term = req.last_included_term;
  ctx_->PersistSnapshot(core.snapshot_index, core.snapshot_term,
                        core.snapshot_data, /*installed=*/true);
  window_.Clear();
  held_entries_.clear();
  recv_time_.clear();
  ++ctx_->stats().snapshots_installed;
  if (!req.config.empty()) {
    // The snapshot carries the roster in effect at its last index — the
    // only way a fresh learner bootstrapped by snapshot learns who else
    // exists.
    if (MembershipEngine* m = ctx_->membership();
        m != nullptr && m->active()) {
      Configuration cfg;
      if (Configuration::Decode(req.config, &cfg)) {
        m->InstallRecovered(cfg, req.last_included_index);
        ctx_->PersistConfig(cfg.Encode(), req.last_included_index);
      }
    }
  }
  if (core.heal_quarantine && core.commit_index >= core.heal_target) {
    // The installed snapshot covers the lost committed prefix.
    ctx_->ClearHealQuarantine();
  }

  const SimDuration cost = PerKib(ctx_->options().costs.snapshot_cost_per_kib,
                                  core.snapshot_data.size());
  const uint64_t epoch = core.epoch;
  resp.installed = true;
  resp.last_index = log.LastIndex();
  ctx_->cpu()->Submit(cost, [this, epoch, resp, leader = req.leader]() {
    const CoreState& c = ctx_->core();
    if (c.crashed || epoch != c.epoch) return;
    ctx_->SendTo(leader, resp.WireSize(), resp);
  });
}

SimDuration FollowerIngress::FollowerAppendCost(
    const storage::LogEntry& entry) const {
  return ctx_->options().costs.follower_append_base +
         PerKib(ctx_->options().costs.follower_append_per_kib,
                entry.WireSize());
}

}  // namespace nbraft::raft
