#ifndef NBRAFT_RAFT_FOLLOWER_INGRESS_H_
#define NBRAFT_RAFT_FOLLOWER_INGRESS_H_

#include <map>
#include <unordered_map>

#include "nbraft/sliding_window.h"
#include "raft/messages.h"
#include "raft/node_context.h"

namespace nbraft::raft {

/// The follower side of the append path: the decision tree for arriving
/// entries (duplicate / truncate-and-replace / direct append / sliding
/// window / held), the paper's blue waiting loop over held entries, the
/// serialized log-lock lane charge, commit advancement off verified
/// prefixes, and snapshot installation. Owns the sliding window and every
/// follower-only cache.
class FollowerIngress {
 public:
  explicit FollowerIngress(NodeContext* ctx)
      : ctx_(ctx),
        window_(ctx->options().window_size),
        window_trace_adapter_(this) {}

  void HandleAppendEntries(AppendEntriesRequest req, SimTime received_at);
  void HandleInstallSnapshot(InstallSnapshotRequest req);

  /// Advances the follower commit index to min(leader_commit,
  /// verified_up_to), where `verified_up_to` bounds the prefix known to
  /// match the leader's log (never advance over an unverified tail).
  void AdvanceFollowerCommit(storage::LogIndex leader_commit,
                             storage::LogIndex verified_up_to);

  /// Re-attaches / detaches the window's trace observer after the node's
  /// tracer changed (detached when untraced, so the window keeps its
  /// zero-overhead fast path).
  void OnTracerChanged();

  /// Crash-stop cleanup: window, held entries and receive times are
  /// volatile.
  void OnCrash();

  /// This node was just elected: weakly accepted cache entries (and their
  /// receive times) belong to the previous leader's pipeline.
  void OnLeadershipTaken();

  const SlidingWindow& window() const { return window_; }

 private:
  /// A received entry the follower cannot yet place (diff > max(w, 1)):
  /// the RPC stays open — this is the paper's blue waiting loop.
  struct HeldEntry {
    AppendEntriesRequest request;
    SimTime received_at = 0;
  };

  /// Forwards window transitions to the tracer.
  class WindowTraceAdapter : public SlidingWindow::Observer {
   public:
    explicit WindowTraceAdapter(FollowerIngress* ingress)
        : ingress_(ingress) {}
    void OnInsert(storage::LogIndex index, size_t occupancy) override;
    void OnEvict(storage::LogIndex index, size_t occupancy) override;
    void OnFlush(storage::LogIndex first, size_t count,
                 size_t occupancy) override;

   private:
    FollowerIngress* ingress_;
  };

  /// Decides what to do with an arriving entry: duplicate ack, truncate &
  /// replace, direct append (+ window flush), window caching, or holding
  /// it in the waiting loop.
  void ProcessEntry(const AppendEntriesRequest& req, SimTime received_at,
                    bool from_held_queue);
  /// Batched RPC: appends the whole consecutive run under one log-lock
  /// acquisition when the head extends the log directly; otherwise peels
  /// the batch into per-entry decisions (the leader accepts multiple
  /// responses per rpc_id).
  void ProcessBatch(AppendEntriesRequest req, SimTime received_at);
  void AppendAndFlush(const AppendEntriesRequest& req, SimTime received_at,
                      bool truncate_first);
  void RespondAppend(const AppendEntriesRequest& req, AcceptState state,
                     storage::LogIndex last_index, storage::Term last_term);
  void RecheckHeldEntries();
  SimDuration FollowerAppendCost(const storage::LogEntry& entry) const;
  /// Appends one leader-chained entry: t_wait accounting, persistence and
  /// the in-memory append; returns the entry's log-lock cost share.
  SimDuration AppendChained(storage::LogEntry entry, SimTime received_at);
  /// Flushes the continuous window prefix into the log (paper Fig. 9),
  /// accumulating the per-entry cost; returns the total.
  SimDuration FlushWindowPrefix();

  NodeContext* ctx_;
  SlidingWindow window_;
  /// Held (blocked) arrivals ordered by entry index, so a log advance only
  /// touches the entries it actually unblocks.
  std::multimap<storage::LogIndex, HeldEntry> held_entries_;
  bool in_recheck_ = false;
  /// Receive time of window-cached entries, for t_wait(F) accounting.
  std::unordered_map<storage::LogIndex, SimTime> recv_time_;
  WindowTraceAdapter window_trace_adapter_;
};

}  // namespace nbraft::raft

#endif  // NBRAFT_RAFT_FOLLOWER_INGRESS_H_
