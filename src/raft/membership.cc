#include "raft/membership.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "raft/commit_applier.h"
#include "raft/election_engine.h"
#include "raft/node_context.h"
#include "raft/recovery_stm.h"
#include "raft/replication_pipeline.h"

namespace nbraft::raft {
namespace {

bool Contains(const std::vector<net::NodeId>& set, net::NodeId id) {
  return std::find(set.begin(), set.end(), id) != set.end();
}

void Erase(std::vector<net::NodeId>* set, net::NodeId id) {
  set->erase(std::remove(set->begin(), set->end(), id), set->end());
}

/// Majority of `set` present in `acks`; vacuously true for an empty set
/// (only reachable through a decoded-then-rejected configuration).
bool MajorityOf(const std::vector<net::NodeId>& set,
                const std::set<net::NodeId>& acks) {
  if (set.empty()) return true;
  int have = 0;
  for (const net::NodeId id : set) {
    if (acks.count(id) != 0) ++have;
  }
  return have >= static_cast<int>(set.size()) / 2 + 1;
}

void EncodeSection(const std::vector<net::NodeId>& ids, char tag,
                   std::string* out) {
  out->push_back(tag);
  out->push_back('=');
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out->push_back(',');
    *out += std::to_string(ids[i]);
  }
}

bool DecodeSection(std::string_view section, char tag,
                   std::vector<net::NodeId>* out) {
  if (section.size() < 2 || section[0] != tag || section[1] != '=') {
    return false;
  }
  section.remove_prefix(2);
  while (!section.empty()) {
    const size_t comma = section.find(',');
    const std::string_view token = section.substr(0, comma);
    if (token.empty()) return false;
    int64_t value = 0;
    for (const char c : token) {
      if (c < '0' || c > '9') return false;
      value = value * 10 + (c - '0');
    }
    out->push_back(static_cast<net::NodeId>(value));
    if (comma == std::string_view::npos) break;
    section.remove_prefix(comma + 1);
  }
  return true;
}

}  // namespace

bool Configuration::IsVoter(net::NodeId id) const {
  return Contains(voters, id) || Contains(new_voters, id);
}

bool Configuration::IsNewVoter(net::NodeId id) const {
  return Contains(new_voters, id);
}

bool Configuration::IsLearner(net::NodeId id) const {
  return Contains(learners, id);
}

bool Configuration::Knows(net::NodeId id) const {
  return IsVoter(id) || IsLearner(id);
}

int Configuration::OthersKnown(net::NodeId self) const {
  int count = 0;
  for (const net::NodeId id : voters) {
    if (id != self) ++count;
  }
  for (const net::NodeId id : new_voters) {
    if (id != self && !Contains(voters, id)) ++count;
  }
  for (const net::NodeId id : learners) {
    if (id != self && !IsVoter(id)) ++count;
  }
  return count;
}

void Configuration::Normalize() {
  for (std::vector<net::NodeId>* set : {&voters, &new_voters, &learners}) {
    std::sort(set->begin(), set->end());
    set->erase(std::unique(set->begin(), set->end()), set->end());
  }
}

std::string Configuration::Encode() const {
  std::string out;
  EncodeSection(voters, 'v', &out);
  out.push_back(';');
  EncodeSection(new_voters, 'n', &out);
  out.push_back(';');
  EncodeSection(learners, 'l', &out);
  return out;
}

bool Configuration::Decode(std::string_view text, Configuration* out) {
  Configuration parsed;
  const size_t first = text.find(';');
  if (first == std::string_view::npos) return false;
  const size_t second = text.find(';', first + 1);
  if (second == std::string_view::npos) return false;
  if (!DecodeSection(text.substr(0, first), 'v', &parsed.voters) ||
      !DecodeSection(text.substr(first + 1, second - first - 1), 'n',
                     &parsed.new_voters) ||
      !DecodeSection(text.substr(second + 1), 'l', &parsed.learners)) {
    return false;
  }
  parsed.Normalize();
  *out = std::move(parsed);
  return true;
}

bool MembershipEngine::ChangeInFlight() const {
  if (!active_) return false;
  return config_.joint() || config_index_ > ctx_->core().commit_index;
}

bool MembershipEngine::SelfIsVoter() const {
  return config_.IsVoter(ctx_->id());
}

bool MembershipEngine::QuorumSatisfied(
    const std::set<net::NodeId>& acks) const {
  return MajorityOf(config_.voters, acks) &&
         (!config_.joint() || MajorityOf(config_.new_voters, acks));
}

int MembershipEngine::CountQuorum() const {
  const int old_majority = static_cast<int>(config_.voters.size()) / 2 + 1;
  if (!config_.joint()) return old_majority;
  const int new_majority = static_cast<int>(config_.new_voters.size()) / 2 + 1;
  return std::max(old_majority, new_majority);
}

void MembershipEngine::Bootstrap(const Configuration& config) {
  config_ = config;
  config_.Normalize();
  config_index_ = 0;
  final_proposed_for_ = 0;
  committed_counted_ = 0;
  history_.clear();
  active_ = true;
  // Commit decisions become set-based: a tuple commits when its strong
  // holders satisfy the active configuration (both generations during a
  // joint window), with the count-based rule restored while Reset.
  ctx_->applier()->vote_list().set_commit_check(
      [this](const VoteList::Tuple& t) {
        if (!active_) return static_cast<int>(t.strong.size()) >= t.required;
        return QuorumSatisfied(t.strong);
      });
  ReconcileSelfRole();
  for (const ConfigObserver& observer : observers_) observer(config_);
}

void MembershipEngine::Reset() {
  active_ = false;
  config_ = Configuration{};
  config_index_ = 0;
  final_proposed_for_ = 0;
  committed_counted_ = 0;
  history_.clear();
}

bool MembershipEngine::ProposeAddLearner(net::NodeId id) {
  if (!active_ || ctx_->core().role != Role::kLeader) return false;
  if (config_.Knows(id) || ChangeInFlight()) return false;
  Configuration next = config_;
  next.learners.push_back(id);
  if (!AppendConfigEntry(next)) return false;
  if (obs::Journal* j = ctx_->journal(); j != nullptr) {
    j->Record(obs::JournalEventKind::kLearnerAdd, ctx_->id(),
              static_cast<int32_t>(id),
              static_cast<int64_t>(config_index_));
  }
  if (RecoveryStm* recovery = ctx_->recovery(); recovery != nullptr) {
    recovery->StartRecovery(id);
  }
  return true;
}

bool MembershipEngine::ProposePromote(net::NodeId learner) {
  if (!active_ || ctx_->core().role != Role::kLeader) return false;
  if (!config_.IsLearner(learner) || ChangeInFlight()) return false;
  Configuration next = config_;
  next.new_voters = config_.voters;
  next.new_voters.push_back(learner);
  Erase(&next.learners, learner);
  if (!AppendConfigEntry(next)) return false;
  ++ctx_->stats().learners_promoted;
  if (obs::Journal* j = ctx_->journal(); j != nullptr) {
    j->Record(obs::JournalEventKind::kLearnerPromote, ctx_->id(),
              static_cast<int32_t>(learner),
              static_cast<int64_t>(config_index_));
  }
  return true;
}

bool MembershipEngine::ProposeRemove(net::NodeId id) {
  if (!active_ || ctx_->core().role != Role::kLeader) return false;
  if (!config_.Knows(id) || ChangeInFlight()) return false;
  Configuration next = config_;
  if (config_.IsLearner(id)) {
    // Dropping a learner never moves a quorum: a plain config entry.
    Erase(&next.learners, id);
  } else {
    next.new_voters = config_.voters;
    Erase(&next.new_voters, id);
    if (next.new_voters.empty()) return false;  // Never empty the roster.
  }
  return AppendConfigEntry(next);
}

bool MembershipEngine::AppendConfigEntry(const Configuration& next) {
  CoreState& core = ctx_->core();
  if (core.role != Role::kLeader) return false;
  Configuration canonical = next;
  canonical.Normalize();

  storage::RaftLog& log = ctx_->log();
  storage::LogEntry entry;
  entry.index = log.LastIndex() + 1;
  entry.term = core.current_term;
  entry.prev_term = log.LastTerm();
  entry.client_id = kConfigClientId;
  entry.payload = nbraft::Buffer(canonical.Encode());
  log.Append(entry);
  ctx_->PersistEntry(entry);
  ++ctx_->stats().entries_appended;
  // The configuration takes effect the moment it is appended.
  OnConfigAppended(entry);
  if (obs::Journal* j = ctx_->journal(); j != nullptr) {
    j->Record(obs::JournalEventKind::kConfigPropose, ctx_->id(), -1,
              static_cast<int64_t>(entry.index), canonical.joint() ? 1 : 0);
  }

  VoteList& vote_list = ctx_->applier()->vote_list();
  if (ctx_->DurabilityInstant()) {
    vote_list.AddTuple(entry.index, entry.term, ctx_->id(), ctx_->quorum());
    core.strong_ack_frontier = std::max(core.strong_ack_frontier, entry.index);
  } else {
    // Fsync-gated self-vote, exactly like the BecomeLeader no-op.
    vote_list.AddTuple(entry.index, entry.term, net::kInvalidNode,
                       ctx_->quorum());
    const uint64_t epoch = core.epoch;
    const storage::LogIndex index = entry.index;
    const storage::Term term = entry.term;
    ctx_->WhenDurable([this, epoch, index, term]() {
      CoreState& c = ctx_->core();
      if (c.crashed || epoch != c.epoch || c.role != Role::kLeader ||
          c.current_term != term) {
        return;
      }
      c.strong_ack_frontier = std::max(c.strong_ack_frontier, index);
      ctx_->applier()->CommitIndices(
          ctx_->applier()->vote_list().AddStrongUpTo(index, ctx_->id(),
                                                     c.current_term));
    });
  }
  ctx_->applier()->OnLeaderAppended(entry.index);
  ctx_->pipeline()->ReplicateEntry(entry);
  // A roster whose voting majority is the leader alone (bootstrap node,
  // or adding the first learner) commits on the leader's own vote.
  if (ctx_->DurabilityInstant() && QuorumSatisfied({ctx_->id()})) {
    ctx_->applier()->CommitIndices(
        vote_list.AddStrongUpTo(entry.index, ctx_->id(), core.current_term));
  }
  return true;
}

void MembershipEngine::OnConfigAppended(const storage::LogEntry& entry) {
  if (entry.client_id != kConfigClientId) return;
  Configuration next;
  if (!Configuration::Decode(entry.payload.view(), &next)) {
    NBRAFT_LOG(Warn) << "node " << ctx_->id()
                     << " dropped undecodable config entry " << entry.index;
    return;
  }
  const bool was_joint = config_.joint();
  Install(next, entry.index, /*remember_previous=*/true);
  if (obs::Journal* j = ctx_->journal(); j != nullptr) {
    if (config_.joint() && !was_joint) {
      j->Record(obs::JournalEventKind::kConfigJoint, ctx_->id(), -1,
                static_cast<int64_t>(entry.index),
                static_cast<int64_t>(config_.new_voters.size()));
    }
  }
}

void MembershipEngine::OnCommitAdvanced(storage::LogIndex commit_index) {
  if (!active_ || config_index_ == 0 || commit_index < config_index_) return;
  CoreState& core = ctx_->core();
  if (config_.joint()) {
    // C_old,new is committed: the leader (whichever node holds the role
    // when this lands — a successor inherits the duty) appends plain
    // C_new. Deferred one event so the append never reenters the commit
    // path that delivered this hook.
    if (core.role != Role::kLeader || final_proposed_for_ == config_index_) {
      return;
    }
    final_proposed_for_ = config_index_;
    const uint64_t epoch = core.epoch;
    const storage::LogIndex joint_index = config_index_;
    ctx_->simulator()->After(0, [this, epoch, joint_index]() {
      CoreState& c = ctx_->core();
      if (c.crashed || epoch != c.epoch || c.role != Role::kLeader) return;
      if (!config_.joint() || config_index_ != joint_index) return;
      Configuration final_config;
      final_config.voters = config_.new_voters;
      final_config.learners = config_.learners;
      AppendConfigEntry(final_config);
    });
    return;
  }
  if (config_index_ <= committed_counted_) return;
  committed_counted_ = config_index_;
  ++ctx_->stats().config_changes;
  if (obs::Journal* j = ctx_->journal(); j != nullptr) {
    j->Record(obs::JournalEventKind::kConfigCommit, ctx_->id(), -1,
              static_cast<int64_t>(config_index_),
              static_cast<int64_t>(config_.voters.size()));
  }
  if (core.role == Role::kLeader && !config_.IsVoter(ctx_->id())) {
    // The leader removed itself: it led through the change (Raft Sec. 6
    // lets a leader commit entries it does not count itself in) and
    // abdicates only now that C_new is durable on its own majority.
    const uint64_t epoch = core.epoch;
    const storage::Term term = core.current_term;
    ctx_->simulator()->After(0, [this, epoch, term]() {
      CoreState& c = ctx_->core();
      if (c.crashed || epoch != c.epoch || c.role != Role::kLeader ||
          c.current_term != term) {
        return;
      }
      ctx_->election()->StepDown(term, net::kInvalidNode);
    });
  }
}

void MembershipEngine::OnTruncated(storage::LogIndex from_index) {
  if (!active_ || config_index_ < from_index) return;
  while (config_index_ >= from_index && !history_.empty()) {
    config_index_ = history_.back().first;
    config_ = std::move(history_.back().second);
    history_.pop_back();
  }
  ctx_->PersistConfig(config_.Encode(), config_index_);
  ReconcileSelfRole();
  for (const ConfigObserver& observer : observers_) observer(config_);
}

void MembershipEngine::InstallRecovered(const Configuration& config,
                                        storage::LogIndex at) {
  config_ = config;
  config_.Normalize();
  config_index_ = at;
  ReconcileSelfRole();
  for (const ConfigObserver& observer : observers_) observer(config_);
}

void MembershipEngine::Install(const Configuration& config,
                               storage::LogIndex at, bool remember_previous) {
  if (remember_previous) history_.emplace_back(config_index_, config_);
  config_ = config;
  config_.Normalize();
  config_index_ = at;
  ctx_->PersistConfig(config_.Encode(), at);
  ReconcileSelfRole();
  for (const ConfigObserver& observer : observers_) observer(config_);
}

void MembershipEngine::ReconcileSelfRole() {
  CoreState& core = ctx_->core();
  const net::NodeId self = ctx_->id();
  if (config_.IsVoter(self)) {
    if (core.role == Role::kLearner) {
      core.role = Role::kFollower;
      if (obs::Journal* j = ctx_->journal(); j != nullptr) {
        j->Record(obs::JournalEventKind::kRoleChange, self, -1,
                  static_cast<int64_t>(Role::kFollower),
                  static_cast<int64_t>(core.current_term));
      }
      ctx_->election()->ArmElectionTimer();
    }
    return;
  }
  // Learner or removed: passive. A sitting leader is left alone — the
  // self-removal step-down is sequenced by OnCommitAdvanced.
  if (core.role == Role::kFollower || core.role == Role::kCandidate) {
    core.role = Role::kLearner;
    if (obs::Journal* j = ctx_->journal(); j != nullptr) {
      j->Record(obs::JournalEventKind::kRoleChange, self, -1,
                static_cast<int64_t>(Role::kLearner),
                static_cast<int64_t>(core.current_term));
    }
    ctx_->election()->ArmElectionTimer();  // Passive: cancels the timer.
  }
}

}  // namespace nbraft::raft
