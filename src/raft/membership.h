#ifndef NBRAFT_RAFT_MEMBERSHIP_H_
#define NBRAFT_RAFT_MEMBERSHIP_H_

#include <functional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/network.h"
#include "storage/log_entry.h"

namespace nbraft::raft {

class NodeContext;

/// Sentinel client_id marking configuration log entries. Distinct from
/// kInvalidNode (-1, leader no-ops) and real client ids (>= kClientIdBase):
/// every path that treats client_id as a reply address must skip it.
inline constexpr net::NodeId kConfigClientId = -2;

/// A replica roster. `voters` is the voting set (C_old during a joint
/// window); a non-empty `new_voters` marks the joint configuration
/// C_old,new, where elections and commits need majorities of BOTH sets.
/// `learners` replicate the log but never vote and never count toward a
/// commit quorum. All three vectors are kept sorted and disjoint-by-role
/// so Encode() is canonical and comparisons are bytewise.
struct Configuration {
  std::vector<net::NodeId> voters;
  std::vector<net::NodeId> new_voters;
  std::vector<net::NodeId> learners;

  bool joint() const { return !new_voters.empty(); }

  /// Voter in either generation (C_old or C_new).
  bool IsVoter(net::NodeId id) const;
  bool IsNewVoter(net::NodeId id) const;
  bool IsLearner(net::NodeId id) const;
  /// Any role at all — replication fans out exactly to known nodes.
  bool Knows(net::NodeId id) const;
  /// Voters + learners minus `self`: the replication fan-out size.
  int OthersKnown(net::NodeId self) const;

  /// Sorts and dedups each role vector (canonical form).
  void Normalize();

  /// Canonical text form, e.g. "v=0,1,2;n=3,4;l=5" (sections for C_old,
  /// C_new and learners; empty sections stay present so Decode is total).
  std::string Encode() const;
  static bool Decode(std::string_view text, Configuration* out);

  friend bool operator==(const Configuration& a, const Configuration& b) {
    return a.voters == b.voters && a.new_voters == b.new_voters &&
           a.learners == b.learners;
  }
};

/// The configuration-change engine: joint consensus (Raft Sec. 6 /
/// dissertation Sec. 4.3). A change from C_old to C_new first replicates
/// the transitional entry C_old,new; while it is in effect every election
/// and every commit needs separate majorities of both generations, so no
/// two disjoint majorities can ever decide anything — the two-leader
/// window of naive switchover cannot open. Once C_old,new commits the
/// leader appends plain C_new, and the change completes when that commits.
/// Joint consensus was chosen over staged single-server changes because
/// the chaos harness grows and shrinks by arbitrary deltas mid-fault and
/// the single-server variant's correctness leans on a subtle
/// no-concurrent-change discipline that is exactly what a nemesis likes
/// to violate; the joint window is checkable with one invariant instead.
///
/// Configurations take effect when *appended*, not when committed (a
/// server always uses the latest configuration in its log), and a
/// truncated suffix rolls the configuration back to the one in effect
/// before it — `history_` remembers the supplanted configurations for
/// exactly that.
///
/// The engine is always constructed (it draws no randomness and arms no
/// timers) but stays dormant until Bootstrap() installs a roster; every
/// hook in the consensus engines is guarded by `active()`, which keeps the
/// fixed-roster behavior fingerprint bit-identical.
class MembershipEngine {
 public:
  explicit MembershipEngine(NodeContext* ctx) : ctx_(ctx) {}

  bool active() const { return active_; }
  const Configuration& config() const { return config_; }
  storage::LogIndex config_index() const { return config_index_; }
  /// A change is still replicating: the joint window is open or the
  /// latest configuration entry has not committed yet.
  bool ChangeInFlight() const;

  /// Activates dynamic membership with an initial roster (no log entry:
  /// this is the construction-time configuration every replica agrees on).
  void Bootstrap(const Configuration& config);

  /// Durable-mode crash: volatile membership state is wiped with the rest
  /// of the core; Restart() re-bootstraps and replays recovered markers.
  void Reset();

  // ---- Leader API (all return false when this node is not the leader,
  // a change is already in flight, or the request is a no-op) ----
  bool ProposeAddLearner(net::NodeId id);
  /// Starts the joint change that makes a caught-up learner a voter.
  bool ProposePromote(net::NodeId learner);
  /// Starts the joint change that removes `id` (voter or learner). A
  /// leader may remove itself; it keeps leading until C_new commits.
  bool ProposeRemove(net::NodeId id);

  // ---- Hooks from the consensus engines ----
  /// A configuration entry was appended (leader or follower): it takes
  /// effect immediately.
  void OnConfigAppended(const storage::LogEntry& entry);
  /// Commit advanced: completes the joint handoff (leader appends C_new
  /// once C_old,new commits) and counts completed changes.
  void OnCommitAdvanced(storage::LogIndex commit_index);
  /// The log suffix from `from_index` was truncated: any configuration it
  /// carried is rolled back.
  void OnTruncated(storage::LogIndex from_index);
  /// Restart recovery / snapshot install found a persisted configuration.
  void InstallRecovered(const Configuration& config, storage::LogIndex at);

  // ---- Quorum evaluation ----
  /// True when `acks` satisfies a majority of voters AND, during the
  /// joint window, a majority of new_voters. Non-voter ids in `acks`
  /// (learners, removed nodes) never count.
  bool QuorumSatisfied(const std::set<net::NodeId>& acks) const;
  /// Count-based quorum for the paths that only track a tally (vote-list
  /// `required`, CheckQuorum): the larger generation's majority during
  /// the joint window.
  int CountQuorum() const;

  bool IsVoter(net::NodeId id) const { return config_.IsVoter(id); }
  bool IsLearner(net::NodeId id) const { return config_.IsLearner(id); }
  bool Knows(net::NodeId id) const { return config_.Knows(id); }
  bool SelfIsVoter() const;

  /// Observes every configuration change taking effect on this node (the
  /// harness uses it to invalidate shard-router hints and start learner
  /// recovery).
  using ConfigObserver = std::function<void(const Configuration&)>;
  void add_config_observer(ConfigObserver observer) {
    observers_.push_back(std::move(observer));
  }

 private:
  /// Leader-side: appends `next` as a config log entry and replicates it
  /// (the config-entry twin of the BecomeLeader no-op append).
  bool AppendConfigEntry(const Configuration& next);
  /// Makes `config` the active configuration (append, recovery or
  /// rollback all funnel here).
  void Install(const Configuration& config, storage::LogIndex at,
               bool remember_previous);
  /// Role upkeep after a configuration change: a node gaining the vote
  /// arms its election timer, one losing it goes passive.
  void ReconcileSelfRole();

  NodeContext* ctx_;
  bool active_ = false;
  Configuration config_;
  storage::LogIndex config_index_ = 0;
  /// Joint entry index for which C_new was already proposed (guards the
  /// commit hook against double-appending the final configuration).
  storage::LogIndex final_proposed_for_ = 0;
  /// Highest config-entry index whose commit was already counted.
  storage::LogIndex committed_counted_ = 0;
  /// Supplanted configurations, oldest first: (index of the entry that
  /// replaced them, the configuration that was in effect before it).
  std::vector<std::pair<storage::LogIndex, Configuration>> history_;
  std::vector<ConfigObserver> observers_;
};

}  // namespace nbraft::raft

#endif  // NBRAFT_RAFT_MEMBERSHIP_H_
