#ifndef NBRAFT_RAFT_MESSAGES_H_
#define NBRAFT_RAFT_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "net/network.h"
#include "raft/types.h"
#include "storage/log_entry.h"

namespace nbraft::raft {

/// AppendEntries RPC. Each dispatcher is a synchronous RPC lane (paper
/// Fig. 3) carrying `entry`; heartbeats are empty RPCs that also carry the
/// commit index. With `RaftOptions::max_batch_entries` > 1 a dispatcher
/// may coalesce a *consecutive* run of queued indices into one RPC:
/// `entry` stays the head of the run and `extra_entries` carries the rest
/// in index order. The wire default (max_batch_entries = 1) leaves
/// extra_entries empty — the single-entry form is byte-identical to the
/// unbatched protocol.
struct AppendEntriesRequest {
  storage::Term term = 0;
  net::NodeId leader = net::kInvalidNode;
  uint64_t rpc_id = 0;  ///< Correlates the response with its dispatcher.

  bool is_heartbeat = false;
  storage::LogEntry entry;  ///< Valid when !is_heartbeat.
  /// Batched form: entries directly following `entry` (indices
  /// entry.index + 1, +2, ... in order). Empty on the single-entry wire
  /// default. A follower that cannot append the whole run contiguously
  /// peels it into per-entry decisions and may send several responses for
  /// one rpc_id (the leader's bookkeeping frees the dispatcher on the
  /// first and tolerates the rest).
  std::vector<storage::LogEntry> extra_entries;
  storage::LogIndex leader_commit = 0;
  /// Term of the leader's entry at leader_commit: lets a follower verify
  /// its log matches before advancing its commit index off a heartbeat.
  storage::Term commit_term = 0;

  /// KRaft: nodes this receiver must forward the request to.
  std::vector<net::NodeId> relay_to;

  /// VGRaft: request carries a digest + signature the receiver verifies.
  bool signed_payload = false;

  /// Modelled wire size.
  size_t WireSize() const {
    size_t size = (is_heartbeat ? 0 : entry.WireSize()) + 64 +
                  relay_to.size() * 4 + (signed_payload ? 96 : 0);
    for (const storage::LogEntry& e : extra_entries) size += e.WireSize();
    return size;
  }
};

/// Response to AppendEntries, covering all the paper's reply kinds.
///
///  * kStrongAccept: `last_index`/`last_term` name the follower's last
///    appended entry — the leader marks every tuple <= last_index strong
///    (Sec. III-B3b) and detects leader change via last_term
///    (Sec. III-B3a).
///  * kWeakAccept: `entry_index` names the cached entry (Sec. III-B2).
///  * kLogMismatch: `last_index` is the follower's last appended index, a
///    resend hint.
struct AppendEntriesResponse {
  storage::Term term = 0;
  net::NodeId from = net::kInvalidNode;
  uint64_t rpc_id = 0;
  AcceptState state = AcceptState::kStrongAccept;
  storage::LogIndex entry_index = 0;  ///< Index the RPC carried (0 for hb).
  storage::LogIndex last_index = 0;
  storage::Term last_term = 0;
  bool is_heartbeat = false;

  size_t WireSize() const { return 64; }
};

struct RequestVoteRequest {
  storage::Term term = 0;
  net::NodeId candidate = net::kInvalidNode;
  storage::LogIndex last_log_index = 0;
  storage::Term last_log_term = 0;
  /// PreVote canvass (RaftOptions::pre_vote): `term` is the *prospective*
  /// term (current + 1) the candidate would campaign in. A pre-vote
  /// grant is non-binding — the voter persists nothing and its
  /// voted_for is untouched.
  bool pre_vote = false;

  size_t WireSize() const { return 64; }
};

struct RequestVoteResponse {
  storage::Term term = 0;
  net::NodeId from = net::kInvalidNode;
  bool granted = false;
  bool pre_vote = false;  ///< Echoes the request's pre_vote flag.

  size_t WireSize() const { return 48; }
};

/// Leader -> lagging follower: full state-machine snapshot replacing the
/// follower's log prefix (sent when the entries a follower needs were
/// already compacted away).
struct InstallSnapshotRequest {
  storage::Term term = 0;
  net::NodeId leader = net::kInvalidNode;
  uint64_t rpc_id = 0;
  storage::LogIndex last_included_index = 0;
  storage::Term last_included_term = 0;
  std::string data;  ///< StateMachine::Snapshot() bytes.
  /// Encoded Configuration in effect at last_included_index (dynamic
  /// membership only; a fresh learner bootstrapped by snapshot must learn
  /// the roster too). Empty on fixed rosters — and then wire-free.
  std::string config;

  size_t WireSize() const { return data.size() + config.size() + 96; }
};

struct InstallSnapshotResponse {
  storage::Term term = 0;
  net::NodeId from = net::kInvalidNode;
  uint64_t rpc_id = 0;
  bool installed = false;
  storage::LogIndex last_index = 0;  ///< Follower log end after install.

  size_t WireSize() const { return 64; }
};

/// A client write request (one IoT ingestion batch).
struct ClientRequest {
  net::NodeId client = net::kInvalidNode;
  uint64_t request_id = 0;
  /// Shared with the client's retry copy and, on the leader, with the log
  /// entry it becomes — one allocation end to end.
  nbraft::Buffer payload;

  size_t WireSize() const { return payload.size() + 48; }
};

/// Leader -> client reply (Sec. III-C): WEAK_ACCEPT unblocks the client's
/// next request; STRONG_ACCEPT confirms commit of everything up to `index`.
struct ClientResponse {
  AcceptState state = AcceptState::kStrongAccept;
  uint64_t request_id = 0;
  storage::LogIndex index = 0;
  storage::Term term = 0;
  net::NodeId leader_hint = net::kInvalidNode;

  size_t WireSize() const { return 64; }
};

/// Leader -> chosen successor: leadership transfer (graceful drain). The
/// target skips the election timeout (and any PreVote canvass) and
/// campaigns immediately; with an up-to-date target the handoff completes
/// in one round trip of vote traffic.
struct TimeoutNowRequest {
  storage::Term term = 0;
  net::NodeId leader = net::kInvalidNode;

  size_t WireSize() const { return 48; }
};

/// Follower-read query (supported by Raft/NB-Raft, not by CRaft variants —
/// Table II): returns how many points a series holds on that replica.
struct ReadRequest {
  net::NodeId client = net::kInvalidNode;
  uint64_t request_id = 0;
  uint64_t series_id = 0;

  size_t WireSize() const { return 48; }
};

struct ReadResponse {
  uint64_t request_id = 0;
  bool supported = true;  ///< False on erasure-coded replicas.
  uint64_t point_count = 0;

  size_t WireSize() const { return 48; }
};

}  // namespace nbraft::raft

#endif  // NBRAFT_RAFT_MESSAGES_H_
