#include "raft/node_context.h"

#include "raft/membership.h"

namespace nbraft::raft {

int NodeContext::quorum() {
  MembershipEngine* m = membership();
  if (m != nullptr && m->active()) return m->CountQuorum();
  return cluster_size() / 2 + 1;
}

}  // namespace nbraft::raft
