#ifndef NBRAFT_RAFT_NODE_CONTEXT_H_
#define NBRAFT_RAFT_NODE_CONTEXT_H_

#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "metrics/breakdown.h"
#include "net/network.h"
#include "obs/journal.h"
#include "obs/tracer.h"
#include "raft/node_stats.h"
#include "raft/types.h"
#include "sim/cpu_executor.h"
#include "sim/simulator.h"
#include "storage/raft_log.h"
#include "tsdb/state_machine.h"

namespace nbraft::raft {

class ElectionEngine;
class ReplicationPipeline;
class FollowerIngress;
class CommitApplier;
class MembershipEngine;
class RecoveryStm;

/// The consensus core state every engine reads and mutates. Owned by the
/// router (RaftNode); the engines access it through NodeContext::core() so
/// ownership stays in one place while the logic is layered.
struct CoreState {
  // ---- Durable (survives a crash; recovered from the WAL when real
  // durability is on) ----
  storage::Term current_term = 0;
  net::NodeId voted_for = net::kInvalidNode;

  // ---- Volatile ----
  bool crashed = false;
  Role role = Role::kFollower;
  net::NodeId leader = net::kInvalidNode;
  storage::LogIndex commit_index = 0;
  storage::LogIndex applied_index = 0;
  storage::LogIndex apply_scheduled_up_to = 0;
  /// Bumped on restart so stale scheduled callbacks become no-ops.
  uint64_t epoch = 0;

  // Latest snapshot (durable): state bytes and the log position it covers.
  std::string snapshot_data;
  storage::LogIndex snapshot_index = 0;
  storage::Term snapshot_term = 0;

  // ---- Durability bookkeeping (volatile; the chaos oracle reads it) ----
  /// Highest log index this node has claimed locally durable to the
  /// outside: follower strong-accept responses and the leader's own
  /// commit-quorum vote. Clamped down when the suffix is truncated (the
  /// claim is revoked with the entries). At crash time the safety oracle
  /// asserts it never exceeds the fsynced frontier.
  storage::LogIndex strong_ack_frontier = 0;
  /// Set when recovery detected corruption and cut durable suffix state:
  /// the node rejoins as a non-candidate that grants no votes until its
  /// committed prefix has healed from the leader (never serve — or elect
  /// over — divergent state).
  bool heal_quarantine = false;
  /// The index the committed prefix must reach for the quarantine to
  /// lift: the repaired image's durable entry frontier, i.e. the highest
  /// index this node could ever have acknowledged before the rot. Once
  /// commit_index covers it, every ack the node ever issued points at an
  /// entry it provably holds again.
  storage::LogIndex heal_target = 0;
};

/// The seam between the consensus engines and the node that hosts them:
/// simulator, network, durable state, CPU lanes, stats and tracing, plus
/// access to the sibling engines. RaftNode implements it for production;
/// tests implement it with a mock to drive a single engine in isolation.
class NodeContext {
 public:
  virtual ~NodeContext() = default;

  // ---- Environment ----
  virtual sim::Simulator* simulator() = 0;
  virtual net::NodeId id() const = 0;
  virtual const std::vector<net::NodeId>& peer_ids() const = 0;
  virtual const RaftOptions& options() const = 0;
  virtual nbraft::Rng& rng() = 0;
  virtual NodeStats& stats() = 0;
  virtual obs::Tracer* tracer() const = 0;
  /// The cluster flight recorder, or nullptr (the default) when the run
  /// is not journaled — every hook is then a single branch. Non-pure so
  /// engine-level mocks don't have to implement it.
  virtual obs::Journal* journal() const { return nullptr; }
  /// The dynamic-membership engine, or nullptr (the default, same
  /// contract as journal()): every membership hook guards on it being
  /// present *and* active, so fixed-roster behavior is untouched.
  virtual MembershipEngine* membership() { return nullptr; }
  /// The learner catch-up state machine (leader side), or nullptr.
  virtual RecoveryStm* recovery() { return nullptr; }
  virtual tsdb::StateMachine* mutable_state_machine() = 0;

  // ---- Modelled CPU lanes ----
  virtual sim::CpuExecutor* cpu() = 0;        ///< General worker pool.
  virtual sim::CpuExecutor* index_lane() = 0; ///< Serial indexing lock.
  virtual sim::CpuExecutor* apply_lane() = 0; ///< Ordered apply.
  virtual sim::CpuExecutor* log_lock_lane() = 0;  ///< Follower log lock.

  // ---- Shared state ----
  virtual CoreState& core() = 0;
  virtual const CoreState& core() const = 0;
  virtual storage::RaftLog& log() = 0;
  virtual const storage::RaftLog& log() const = 0;

  // ---- Services ----
  virtual void SendTo(net::NodeId to, size_t bytes,
                      net::PayloadRef payload) = 0;
  virtual void PersistEntry(const storage::LogEntry& entry) = 0;
  virtual void PersistTruncate(storage::LogIndex from_index) = 0;
  virtual void PersistHardState() = 0;
  /// Records a snapshot boundary (`installed` = received from the leader)
  /// and a prefix compaction in the durable record stream.
  virtual void PersistSnapshot(storage::LogIndex index, storage::Term term,
                               const std::string& data, bool installed) = 0;
  virtual void PersistCompact(storage::LogIndex upto) = 0;
  /// Records the active configuration as a durable marker (last wins on
  /// recovery). Only called with dynamic membership active; the default
  /// no-op keeps engine-level mocks and fixed rosters untouched.
  virtual void PersistConfig(const std::string& encoded,
                             storage::LogIndex at) {
    (void)encoded;
    (void)at;
  }

  // ---- Durability barrier ----
  /// True when persistence completes inline without consuming virtual
  /// time (modelled durability or the real-file WAL). The engines take the
  /// paper's original code paths in that case; only a simulated disk makes
  /// acknowledgements wait for their covering fsync.
  virtual bool DurabilityInstant() const = 0;
  /// Runs `fn` once everything persisted so far is fsynced — inline when
  /// it already is (always, for instant durability).
  virtual void WhenDurable(std::function<void()> fn) = 0;
  /// Highest entry index covered by a completed fsync (the whole log for
  /// instant durability).
  virtual storage::LogIndex DurableEntryFrontier() const = 0;
  /// A write or fsync against the durable log failed: surface it (leader
  /// steps down, follower halts) instead of aborting the process.
  virtual void OnStorageFailure(const Status& status) = 0;
  /// The committed prefix caught up with the leader after a corruption
  /// recovery: lift the quarantine (and clear its durable scar).
  virtual void ClearHealQuarantine() = 0;
  /// Accounts `end - start` to the Fig. 4 breakdown and, when traced,
  /// records the matching lifecycle span (one write site keeps the
  /// trace/Breakdown parity check exact).
  virtual void TracePhase(metrics::Phase phase, SimTime start, SimTime end,
                          int64_t term, int64_t index,
                          uint64_t request_id = 0) = 0;
  /// Term of the local entry at `index`, for span keys; only paid when the
  /// tracer is attached.
  virtual int64_t TraceTermAt(storage::LogIndex index) const = 0;

  // ---- Sibling engines ----
  virtual ElectionEngine* election() = 0;
  virtual ReplicationPipeline* pipeline() = 0;
  virtual FollowerIngress* ingress() = 0;
  virtual CommitApplier* applier() = 0;

  // ---- Convenience ----
  SimTime Now() { return simulator()->Now(); }
  int cluster_size() const {
    return static_cast<int>(peer_ids().size()) + 1;
  }
  /// Count-based majority. Fixed rosters: (peers + 1) / 2 + 1, exactly as
  /// always. With dynamic membership active it delegates to the live
  /// configuration (the larger generation's majority during a joint
  /// window); set-based joint decisions use MembershipEngine directly.
  int quorum();  // Defined in node_context.cc (needs MembershipEngine).
};

/// Cost helper shared by the engines' KiB-proportional CPU charges.
inline SimDuration PerKib(SimDuration per_kib, size_t bytes) {
  constexpr size_t kKibibyte = 1024;
  return per_kib * static_cast<SimDuration>(bytes) /
         static_cast<SimDuration>(kKibibyte);
}

}  // namespace nbraft::raft

#endif  // NBRAFT_RAFT_NODE_CONTEXT_H_
