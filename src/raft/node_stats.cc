#include "raft/node_stats.h"

#include <cstdio>

namespace nbraft::raft {

std::string NodeStats::ToJson() const {
  auto counter = [](const char* name, uint64_t value) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"%s\":%llu,", name,
                  static_cast<unsigned long long>(value));
    return std::string(buf);
  };
  std::string out = "{";
  out += counter("group", static_cast<uint64_t>(group));
  out += counter("replica", static_cast<uint64_t>(replica));
  out += counter("entries_appended", entries_appended);
  out += counter("entries_committed", entries_committed);
  out += counter("entries_applied", entries_applied);
  out += counter("weak_accepts_sent", weak_accepts_sent);
  out += counter("strong_accepts_sent", strong_accepts_sent);
  out += counter("mismatches_sent", mismatches_sent);
  out += counter("window_inserts", window_inserts);
  out += counter("window_overflows", window_overflows);
  out += counter("elections_started", elections_started);
  out += counter("times_elected", times_elected);
  out += counter("terms_started", terms_started);
  out += counter("prevotes_granted", prevotes_granted);
  out += counter("prevotes_rejected", prevotes_rejected);
  out += counter("leader_depositions", leader_depositions);
  out += counter("checkquorum_stepdowns", checkquorum_stepdowns);
  out += counter("rpc_timeouts", rpc_timeouts);
  out += counter("degraded_entries", degraded_entries);
  out += counter("snapshots_taken", snapshots_taken);
  out += counter("snapshots_sent", snapshots_sent);
  out += counter("snapshots_installed", snapshots_installed);
  out += counter("config_changes", config_changes);
  out += counter("learners_promoted", learners_promoted);
  out += counter("transfers", transfers);
  out += counter("learner_gap_max", learner_gap_max);
  out += counter("fsyncs_completed", fsyncs_completed);
  out += counter("disk_bytes_written", disk_bytes_written);
  out += counter("storage_failures", storage_failures);
  out += counter("recoveries", recoveries);
  out += counter("append_rpcs_sent", append_rpcs_sent);
  out += counter("append_entries_sent", append_entries_sent);
  out += counter("batched_rpcs", batched_rpcs);
  char ratio[64];
  std::snprintf(ratio, sizeof(ratio), "\"entries_per_rpc\":%.3f,",
                entries_per_rpc());
  out += ratio;
  out += "\"wait_hist\":" + wait_hist.ToJson() + ",";
  out += "\"append_latency\":" + append_latency.ToJson() + ",";
  out += "\"breakdown\":" + breakdown.ToJson();
  out += "}";
  return out;
}

}  // namespace nbraft::raft
