#ifndef NBRAFT_RAFT_NODE_STATS_H_
#define NBRAFT_RAFT_NODE_STATS_H_

#include <cstdint>
#include <string>

#include "metrics/breakdown.h"
#include "metrics/histogram.h"

namespace nbraft::raft {

/// Per-node metrics the harness aggregates after a run.
///
/// These are raw struct fields, but everything that crosses into the
/// observability pipeline (tracer instants, registry counters/gauges,
/// sampler sources, journal events) is named under the canonical
/// `subsystem.noun_verb[.nodeN]` scheme — the constants live in
/// src/obs/names.h and DESIGN.md section "2e. Observability pipeline"
/// documents each one. ToJson() keys stay snake_case field names; the
/// scheme applies to the named metric streams, not struct members.
struct NodeStats {
  /// Multi-Raft identity: which consensus group this replica serves and
  /// its replica ordinal within the group (both 0 in single-group
  /// clusters). Stamped by the harness so per-group breakdowns can be
  /// reassembled from a flat stats dump.
  int32_t group = 0;
  int32_t replica = 0;

  metrics::Breakdown breakdown;
  metrics::Histogram wait_hist;       ///< t_wait(F) per delayed entry.
  metrics::Histogram append_latency;  ///< Receive -> appended, per entry.
  uint64_t entries_appended = 0;
  uint64_t entries_committed = 0;
  uint64_t entries_applied = 0;
  uint64_t weak_accepts_sent = 0;
  uint64_t strong_accepts_sent = 0;
  uint64_t mismatches_sent = 0;
  uint64_t window_inserts = 0;
  uint64_t window_overflows = 0;  ///< diff > w arrivals (held, blocking).
  uint64_t elections_started = 0;
  uint64_t times_elected = 0;

  // Adversarial-resilience accounting (PreVote / CheckQuorum / lease).
  /// Terms this node minted by bumping current_term in StartElection.
  /// Every term value in the cluster above the initial one was minted by
  /// exactly one such bump, so the chaos oracle checks
  /// max(current_term) <= sum(terms_started) as term-accounting honesty.
  uint64_t terms_started = 0;
  uint64_t prevotes_granted = 0;   ///< Pre-vote canvasses this node granted.
  uint64_t prevotes_rejected = 0;  ///< Pre-vote canvasses this node refused.
  /// Times this node lost leadership to a higher term while alive — the
  /// healthy-leader deposition the PreVote/CheckQuorum/lease mitigations
  /// exist to prevent (CheckQuorum's own same-term step-down counts under
  /// checkquorum_stepdowns instead).
  uint64_t leader_depositions = 0;
  uint64_t checkquorum_stepdowns = 0;  ///< Leader gave up: quorum unheard.
  uint64_t rpc_timeouts = 0;
  uint64_t degraded_entries = 0;  ///< CRaft/ECRaft degraded-mode entries.
  uint64_t snapshots_taken = 0;
  uint64_t snapshots_sent = 0;
  uint64_t snapshots_installed = 0;

  // Dynamic membership (zero on fixed rosters — the dormant default).
  uint64_t config_changes = 0;     ///< Final (non-joint) configs committed.
  uint64_t learners_promoted = 0;  ///< Learner -> voter promotions proposed.
  uint64_t transfers = 0;          ///< Leadership transfers initiated.
  /// Largest window gap (frontier - contiguous durable prefix) observed
  /// while this node was a learner: the WEAK_ACCEPT × catch-up hazard the
  /// recovery STM's promotion rule must see through.
  uint64_t learner_gap_max = 0;

  // Durable storage (non-zero only with a real WAL or a simulated disk).
  uint64_t fsyncs_completed = 0;
  uint64_t disk_bytes_written = 0;  ///< Encoded record bytes staged.
  uint64_t storage_failures = 0;    ///< Failed writes/fsyncs surfaced.
  uint64_t recoveries = 0;          ///< Restarts that replayed durable state.

  // Replication pipeline RPC accounting (leader side, non-heartbeat).
  uint64_t append_rpcs_sent = 0;     ///< AppendEntries RPCs carrying entries.
  uint64_t append_entries_sent = 0;  ///< Entries those RPCs carried.
  uint64_t batched_rpcs = 0;         ///< RPCs that carried more than one.

  /// Mean entries per AppendEntries RPC (1.0 with batching off; the
  /// amortization factor with `max_batch_entries` > 1).
  double entries_per_rpc() const {
    return append_rpcs_sent == 0
               ? 0.0
               : static_cast<double>(append_entries_sent) /
                     static_cast<double>(append_rpcs_sent);
  }

  /// Serializes every counter (plus the breakdown and histograms) as a
  /// JSON object, so harness and chaos reports can emit node stats without
  /// hand-formatting each field.
  std::string ToJson() const;
};

}  // namespace nbraft::raft

#endif  // NBRAFT_RAFT_NODE_STATS_H_
