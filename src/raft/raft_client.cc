#include "raft/raft_client.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "obs/names.h"

namespace nbraft::raft {

RaftClient::RaftClient(sim::Simulator* sim, net::SimNetwork* network,
                       net::NodeId id, std::vector<net::NodeId> servers,
                       Options options, PayloadFn payload_fn)
    : sim_(sim),
      network_(network),
      id_(id),
      servers_(std::move(servers)),
      options_(options),
      payload_fn_(std::move(payload_fn)),
      rng_(sim->rng()->Next()) {
  NBRAFT_CHECK(!servers_.empty());
  NBRAFT_CHECK(net::IsClientId(id));
  NBRAFT_CHECK_GT(options_.backoff_base, 0);
  NBRAFT_CHECK_GE(options_.backoff_cap, options_.backoff_base);
  NBRAFT_CHECK_GE(options_.backoff_multiplier, 1.0);
  leader_guess_ = servers_[0];
}

void RaftClient::Start() {
  NBRAFT_CHECK(!started_);
  started_ = true;
  network_->RegisterEndpoint(
      id_, [this](net::Message&& msg) { HandleMessage(std::move(msg)); });
  ScheduleNextRequest();
}

void RaftClient::Stop() {
  stopped_ = true;
  sim_->Cancel(timeout_event_);
  timeout_event_ = sim::kInvalidEventId;
  network_->SetNodeUp(id_, false);
}

void RaftClient::ResetMeasurement() {
  stats_ = ClientStats{};
}

void RaftClient::HandleMessage(net::Message&& msg) {
  if (stopped_) return;
  if (auto* resp = msg.payload.Get<ClientResponse>()) {
    HandleResponse(*resp);
  }
}

void RaftClient::ScheduleNextRequest() {
  if (stopped_ || has_inflight_ || generate_scheduled_) return;
  if (static_cast<int>(op_list_.size()) > options_.pipeline_window) return;
  if (options_.max_requests != 0 && retry_queue_.empty() &&
      next_seq_ >= options_.max_requests) {
    return;
  }
  generate_scheduled_ = true;
  sim_->After(options_.think_time, [this]() {
    generate_scheduled_ = false;
    if (stopped_ || has_inflight_) return;
    stats_.gen_time_total += options_.think_time;

    PendingRequest req;
    bool is_retry = false;
    if (!retry_queue_.empty()) {
      req = std::move(retry_queue_.front());
      retry_queue_.pop_front();
      req.index = 0;
      req.term = 0;
      is_retry = true;
    } else {
      req.request_id =
          (static_cast<uint64_t>(id_) << 32) | static_cast<uint64_t>(
                                                   ++next_seq_);
      req.payload = payload_fn_(options_.payload_size);
      req.measured = true;
      ++stats_.requests_issued;
    }
    req.issued_at = sim_->Now();
    if (tracer_ != nullptr) {
      // The generation span matches the t_gen(C) charge recorded above.
      tracer_->RecordSpan(metrics::Phase::kGenClient, id_, /*term=*/0,
                          /*index=*/0, req.request_id,
                          sim_->Now() - options_.think_time, sim_->Now());
    }
    IssueRequest(std::move(req), is_retry);
  });
}

void RaftClient::IssueRequest(PendingRequest req, bool is_retry) {
  (void)is_retry;
  ClientRequest wire;
  wire.client = id_;
  wire.request_id = req.request_id;
  wire.payload = req.payload;
  inflight_ = std::move(req);
  has_inflight_ = true;
  const size_t bytes = wire.WireSize();
  network_->Send(id_, leader_guess_, bytes, std::move(wire));
  ArmTimeout();
}

SimDuration RaftClient::CurrentTimeout() {
  double wait = static_cast<double>(options_.backoff_base);
  const double cap = static_cast<double>(options_.backoff_cap);
  for (int k = 0; k < consecutive_timeouts_ && wait < cap; ++k) {
    wait *= options_.backoff_multiplier;
  }
  wait = std::min(wait, cap);
  auto timeout = static_cast<SimDuration>(wait);
  // Deterministic de-synchronisation: up to +25% drawn from the client's
  // own seeded stream, so stranded clients don't resend in lockstep.
  timeout += static_cast<SimDuration>(
      rng_.NextBounded(static_cast<uint64_t>(timeout / 4) + 1));
  return timeout;
}

void RaftClient::ResetBackoff() {
  if (consecutive_timeouts_ > 0) {
    ++stats_.backoff_resets;
    consecutive_timeouts_ = 0;
  }
}

void RaftClient::RecordStrongAck(uint64_t request_id) {
  if (options_.record_ack_ids) strong_acked_ids_.insert(request_id);
}

void RaftClient::ArmTimeout() {
  sim_->Cancel(timeout_event_);
  timeout_event_ = sim_->After(CurrentTimeout(), [this]() {
    // The resend target: the inflight request, or — when the opList bound
    // blocks the pipeline with nothing inflight — the oldest weakly
    // accepted request. Probing the opList is what keeps a client from
    // deadlocking when a leadership change silently wiped its window
    // entries: the probe's response carries the newer term and triggers
    // the Sec. III-C1 retry.
    const PendingRequest* target = nullptr;
    if (!stopped_ && has_inflight_) {
      target = &inflight_;
    } else if (!stopped_ && !op_list_.empty()) {
      target = &op_list_.front();
    }
    if (target == nullptr) return;
    ++stats_.timeouts;
    ++consecutive_timeouts_;
    if (guess_is_fresh_hint_) {
      // A server vouched for this leader and we haven't heard from it yet:
      // re-try it once before falling back to rotation (the hint usually
      // just lost a race with a partition heal or an in-flight election).
      guess_is_fresh_hint_ = false;
    } else {
      RotateLeaderGuess();
    }
    // Re-send the same request (same id: at-least-once).
    ClientRequest wire;
    wire.client = id_;
    wire.request_id = target->request_id;
    wire.payload = target->payload;
    const size_t bytes = wire.WireSize();
    network_->Send(id_, leader_guess_, bytes, std::move(wire));
    ArmTimeout();
  });
}

void RaftClient::RotateLeaderGuess() {
  auto it = std::find(servers_.begin(), servers_.end(), leader_guess_);
  if (it == servers_.end() || ++it == servers_.end()) it = servers_.begin();
  leader_guess_ = *it;
}

void RaftClient::RetryAll(const char* reason) {
  if (op_list_.empty()) return;
  NBRAFT_LOG(Debug) << "client " << id_ << " retries " << op_list_.size()
                    << " weakly accepted requests (" << reason << ")";
  stats_.retries += op_list_.size();
  if (tracer_ != nullptr) {
    tracer_->RecordInstant(obs::names::kClientRetryAll, id_,
                           static_cast<int64_t>(op_list_.size()));
  }
  // Preserve order: older requests retry first.
  while (!op_list_.empty()) {
    retry_queue_.push_back(std::move(op_list_.front()));
    op_list_.pop_front();
  }
}

void RaftClient::HandleResponse(const ClientResponse& resp) {
  // Any response means the cluster is reachable again: snap the resend
  // backoff back to its base.
  ResetBackoff();
  switch (resp.state) {
    case AcceptState::kWeakAccept: {
      // Sec. III-C1: a newer term means earlier WEAK_ACCEPTs may be lost.
      // Checked before the staleness filter so a re-accept of an opList
      // probe under a new leader still triggers the retry.
      if (resp.term > list_term_) {
        RetryAll("newer term on weak accept");
        list_term_ = resp.term;
      }
      if (!has_inflight_ || resp.request_id != inflight_.request_id) {
        break;  // Stale (e.g. the strong accept already arrived).
      }
      sim_->Cancel(timeout_event_);
      timeout_event_ = sim::kInvalidEventId;
      guess_is_fresh_hint_ = false;  // The guess answered: it's confirmed.
      ++stats_.weak_accepts;
      if (options_.record_ack_ids) weak_acked_ids_.insert(resp.request_id);
      if (tracer_ != nullptr) {
        tracer_->RecordInstant(obs::names::kClientWeakAccept, id_,
                               resp.index,
                               static_cast<int64_t>(resp.request_id));
      }
      if (inflight_.measured) {
        stats_.unblock_latency.Record(sim_->Now() - inflight_.issued_at);
      }
      inflight_.index = resp.index;
      inflight_.term = resp.term;
      op_list_.push_back(std::move(inflight_));
      has_inflight_ = false;
      ScheduleNextRequest();  // The early unblock of Fig. 1(b).
      break;
    }

    case AcceptState::kStrongAccept: {
      if (resp.term > list_term_) {
        RetryAll("newer term on strong accept");
        list_term_ = resp.term;
      }
      if (tracer_ != nullptr) {
        tracer_->RecordInstant(obs::names::kClientStrongAccept, id_,
                               resp.index,
                               static_cast<int64_t>(resp.request_id));
      }
      guess_is_fresh_hint_ = false;  // The guess answered: it's confirmed.
      // Sec. III-C2: everything with index <= resp.index is committed.
      while (!op_list_.empty() && op_list_.front().index != 0 &&
             op_list_.front().index <= resp.index) {
        const PendingRequest& done = op_list_.front();
        ++stats_.requests_completed;
        RecordStrongAck(done.request_id);
        if (done.measured) {
          stats_.completion_latency.Record(sim_->Now() - done.issued_at);
        }
        op_list_.pop_front();
      }
      if (has_inflight_ && resp.request_id == inflight_.request_id) {
        sim_->Cancel(timeout_event_);
        timeout_event_ = sim::kInvalidEventId;
        ++stats_.requests_completed;
        RecordStrongAck(inflight_.request_id);
        if (inflight_.measured) {
          stats_.completion_latency.Record(sim_->Now() - inflight_.issued_at);
          stats_.unblock_latency.Record(sim_->Now() - inflight_.issued_at);
        }
        has_inflight_ = false;
      }
      ScheduleNextRequest();
      break;
    }

    case AcceptState::kLeaderChanged: {
      ++stats_.leader_changes_seen;
      if (resp.leader_hint != net::kInvalidNode) {
        leader_guess_ = resp.leader_hint;
        guess_is_fresh_hint_ = true;
      } else {
        RotateLeaderGuess();
        guess_is_fresh_hint_ = false;
      }
      if (resp.term > list_term_) list_term_ = resp.term;
      RetryAll("leader changed");
      if (has_inflight_) {
        sim_->Cancel(timeout_event_);
        timeout_event_ = sim::kInvalidEventId;
        retry_queue_.push_front(std::move(inflight_));
        has_inflight_ = false;
      }
      ScheduleNextRequest();
      break;
    }

    case AcceptState::kNotLeader: {
      if (!has_inflight_ || resp.request_id != inflight_.request_id) return;
      if (resp.leader_hint != net::kInvalidNode &&
          resp.leader_hint != leader_guess_) {
        leader_guess_ = resp.leader_hint;
        guess_is_fresh_hint_ = true;
      } else {
        RotateLeaderGuess();
        guess_is_fresh_hint_ = false;
      }
      // Re-send promptly to the new guess.
      ClientRequest wire;
      wire.client = id_;
      wire.request_id = inflight_.request_id;
      wire.payload = inflight_.payload;
      const size_t bytes = wire.WireSize();
      network_->Send(id_, leader_guess_, bytes, std::move(wire));
      ArmTimeout();
      break;
    }

    case AcceptState::kLogMismatch:
      break;  // Never client-facing.
  }

  // Whatever the branch did: make sure a blocked client (opList at its
  // bound, nothing inflight) keeps a probe timer armed, and that queued
  // retries get issued.
  ScheduleNextRequest();
  if (!stopped_ && !has_inflight_ && !op_list_.empty() &&
      timeout_event_ == sim::kInvalidEventId) {
    ArmTimeout();
  }
}

}  // namespace nbraft::raft
