#ifndef NBRAFT_RAFT_RAFT_CLIENT_H_
#define NBRAFT_RAFT_RAFT_CLIENT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "metrics/histogram.h"
#include "net/network.h"
#include "obs/tracer.h"
#include "raft/messages.h"
#include "raft/types.h"
#include "sim/simulator.h"
#include "storage/log_entry.h"

namespace nbraft::raft {

/// Per-client metrics aggregated by the harness.
struct ClientStats {
  uint64_t requests_issued = 0;    ///< Distinct request ids sent.
  uint64_t requests_completed = 0; ///< STRONG_ACCEPT received.
  uint64_t weak_accepts = 0;
  uint64_t retries = 0;
  uint64_t leader_changes_seen = 0;
  uint64_t timeouts = 0;
  /// Times the exponential resend backoff snapped back to its base after a
  /// response arrived mid-backoff (i.e. recoveries, not just timeouts).
  uint64_t backoff_resets = 0;
  metrics::Histogram completion_latency;  ///< Issue -> STRONG_ACCEPT.
  metrics::Histogram unblock_latency;     ///< Issue -> first response.
  SimDuration gen_time_total = 0;         ///< Accumulated t_gen(C).
};

/// One client connection of the paper's Sec. III-C: a closed loop that
/// keeps exactly one request awaiting its *first* response, plus — under
/// NB-Raft — an opList of weakly accepted requests awaiting commit.
///
/// With pipeline_window = 0 (original Raft) the connection blocks until the
/// current request is STRONG_ACCEPTed: Fig. 1(a). With a window, a
/// WEAK_ACCEPT unblocks the next request early: Fig. 1(b).
class RaftClient {
 public:
  struct Options {
    /// Modelled request generation time, t_gen(C) — bounded by the IoT
    /// device sampling frequency per Table I.
    SimDuration think_time = Micros(5);

    /// Request payload size in bytes (the paper's 4 KB default).
    size_t payload_size = 4096;

    /// Maximum weakly-accepted requests awaiting commit (the opList bound,
    /// tied to the follower window size). 0 = original Raft behaviour.
    int pipeline_window = 0;

    /// Resend timeout for the first attempt of a request. Consecutive
    /// timeouts of the same request back off exponentially:
    ///   wait(k) = min(backoff_cap, backoff_base * backoff_multiplier^k)
    /// plus a deterministic jitter drawn from the client's seeded RNG (up
    /// to wait/4), so a fleet of clients stranded by the same fault does
    /// not resend in lockstep. Any response resets the backoff to base.
    SimDuration backoff_base = Millis(1500);
    SimDuration backoff_cap = Millis(8000);
    double backoff_multiplier = 2.0;

    /// Stop issuing after this many requests (0 = unlimited).
    uint64_t max_requests = 0;

    /// Retain the ids of weakly / strongly acknowledged requests (the
    /// chaos safety oracle audits them against the committed log). Off by
    /// default: long benchmark runs should not grow id sets.
    bool record_ack_ids = false;
  };

  /// Generates a request payload of (at least) `target` bytes.
  using PayloadFn = std::function<std::string(size_t target)>;

  RaftClient(sim::Simulator* sim, net::SimNetwork* network, net::NodeId id,
             std::vector<net::NodeId> servers, Options options,
             PayloadFn payload_fn);

  RaftClient(const RaftClient&) = delete;
  RaftClient& operator=(const RaftClient&) = delete;

  /// Registers the endpoint and issues the first request after think time.
  void Start();

  /// Crash-stops the client (no more requests; pending ones are lost) —
  /// used by the persistence-loss experiment, Sec. V-G.
  void Stop();

  /// Begins counting completions/latencies from now (end of warm-up).
  void ResetMeasurement();

  net::NodeId id() const { return id_; }
  const ClientStats& stats() const { return stats_; }
  uint64_t requests_issued_total() const { return next_seq_; }
  bool stopped() const { return stopped_; }

  /// Request ids acknowledged so far (empty unless
  /// Options::record_ack_ids). A strong ack promises durability; the
  /// safety oracle checks every id here against the committed log.
  const std::set<uint64_t>& strong_acked_ids() const {
    return strong_acked_ids_;
  }
  const std::set<uint64_t>& weak_acked_ids() const { return weak_acked_ids_; }

  /// Attaches the lifecycle tracer (nullptr = off, the default): t_gen(C)
  /// spans per request plus WEAK/STRONG-accept and retry instants.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  struct PendingRequest {
    uint64_t request_id = 0;
    storage::LogIndex index = 0;  ///< Known once weakly accepted.
    storage::Term term = 0;
    /// Shared with every (re)send's wire copy — resends bump a refcount
    /// instead of copying the 4 KB body.
    nbraft::Buffer payload;
    SimTime issued_at = 0;
    bool measured = false;  ///< Issued after ResetMeasurement().
  };

  void HandleMessage(net::Message&& msg);
  void HandleResponse(const ClientResponse& resp);
  void ScheduleNextRequest();
  void IssueRequest(PendingRequest req, bool is_retry);
  void RetryAll(const char* reason);
  void ArmTimeout();
  void RotateLeaderGuess();
  /// Current resend wait: capped exponential in the consecutive-timeout
  /// count, plus deterministic jitter.
  SimDuration CurrentTimeout();
  /// A response arrived: snap the backoff back to its base.
  void ResetBackoff();
  void RecordStrongAck(uint64_t request_id);

  sim::Simulator* sim_;
  net::SimNetwork* network_;
  const net::NodeId id_;
  std::vector<net::NodeId> servers_;
  Options options_;
  PayloadFn payload_fn_;

  net::NodeId leader_guess_;
  storage::Term list_term_ = 0;  ///< Newest leader term seen (Sec. III-C).
  /// True while leader_guess_ came from an unconfirmed leader hint: the
  /// next timeout re-tries the hinted node instead of rotating past it.
  bool guess_is_fresh_hint_ = false;
  int consecutive_timeouts_ = 0;

  /// The request awaiting its first response (at most one), plus the
  /// opList of weakly accepted requests awaiting STRONG_ACCEPT.
  bool has_inflight_ = false;
  PendingRequest inflight_;
  std::deque<PendingRequest> op_list_;
  std::deque<PendingRequest> retry_queue_;

  obs::Tracer* tracer_ = nullptr;
  nbraft::Rng rng_;  ///< Deterministic per-client stream (backoff jitter).

  std::set<uint64_t> strong_acked_ids_;
  std::set<uint64_t> weak_acked_ids_;

  uint64_t next_seq_ = 0;
  bool started_ = false;
  bool stopped_ = false;
  bool generate_scheduled_ = false;
  sim::EventId timeout_event_ = sim::kInvalidEventId;

  ClientStats stats_;
};

}  // namespace nbraft::raft

#endif  // NBRAFT_RAFT_RAFT_CLIENT_H_
