#include "raft/raft_node.h"

#include <filesystem>
#include <utility>

#include "common/logging.h"

namespace nbraft::raft {
namespace {

/// Translates a wire payload into the journal's RPC vocabulary. Only
/// called when a journal is attached, so untraced runs never pay for the
/// type probes.
obs::JournalRpc DecodeRpc(const net::PayloadRef& payload) {
  if (const auto* ae = payload.Get<AppendEntriesRequest>()) {
    return ae->is_heartbeat ? obs::JournalRpc::kHeartbeat
                            : obs::JournalRpc::kAppendEntries;
  }
  if (payload.Get<AppendEntriesResponse>() != nullptr) {
    return obs::JournalRpc::kAppendEntriesResp;
  }
  if (payload.Get<RequestVoteRequest>() != nullptr) {
    return obs::JournalRpc::kRequestVote;
  }
  if (payload.Get<RequestVoteResponse>() != nullptr) {
    return obs::JournalRpc::kRequestVoteResp;
  }
  if (payload.Get<ClientRequest>() != nullptr) {
    return obs::JournalRpc::kClientRequest;
  }
  if (payload.Get<ClientResponse>() != nullptr) {
    return obs::JournalRpc::kClientResponse;
  }
  if (payload.Get<InstallSnapshotRequest>() != nullptr) {
    return obs::JournalRpc::kInstallSnapshot;
  }
  if (payload.Get<InstallSnapshotResponse>() != nullptr) {
    return obs::JournalRpc::kInstallSnapshotResp;
  }
  if (payload.Get<ReadRequest>() != nullptr) return obs::JournalRpc::kRead;
  if (payload.Get<ReadResponse>() != nullptr) {
    return obs::JournalRpc::kReadResp;
  }
  if (payload.Get<TimeoutNowRequest>() != nullptr) {
    return obs::JournalRpc::kTimeoutNow;
  }
  return obs::JournalRpc::kUnknown;
}

}  // namespace

RaftNode::RaftNode(sim::Simulator* sim, net::SimNetwork* network,
                   net::NodeId id, std::vector<net::NodeId> peers,
                   RaftOptions options,
                   std::unique_ptr<tsdb::StateMachine> state_machine)
    : sim_(sim),
      network_(network),
      id_(id),
      peers_(std::move(peers)),
      options_(options),
      state_machine_(std::move(state_machine)),
      rng_(sim->rng()->Next()) {
  NBRAFT_CHECK(state_machine_ != nullptr);
  durability_ = std::make_unique<DurabilityCoordinator>(this);
  if (options_.shared_cpu != nullptr) {
    // Multi-Raft: the physical host's pool, shared with co-resident
    // groups. The substrate configured its lane count and switch costs.
    cpu_ = options_.shared_cpu;
  } else {
    owned_cpu_ = std::make_unique<sim::CpuExecutor>(
        sim_, options_.cpu_lanes, "node" + std::to_string(id_) + ".cpu");
    cpu_ = owned_cpu_.get();
    cpu_->set_switch_cost(options_.costs.context_switch_cost,
                          options_.costs.max_switch_overhead);
  }
  index_lane_ = std::make_unique<sim::CpuExecutor>(
      sim_, 1, "node" + std::to_string(id_) + ".index");
  apply_lane_ = std::make_unique<sim::CpuExecutor>(
      sim_, 1, "node" + std::to_string(id_) + ".apply");
  log_lock_lane_ = std::make_unique<sim::CpuExecutor>(
      sim_, 1, "node" + std::to_string(id_) + ".loglock");
  log_lock_lane_->set_switch_cost(options_.costs.lock_switch_cost,
                                  options_.costs.max_switch_overhead);
  election_ = std::make_unique<ElectionEngine>(this);
  pipeline_ = std::make_unique<ReplicationPipeline>(this);
  ingress_ = std::make_unique<FollowerIngress>(this);
  applier_ = std::make_unique<CommitApplier>(this);
  membership_ = std::make_unique<MembershipEngine>(this);
  recovery_ = std::make_unique<RecoveryStm>(this);
}

RaftNode::~RaftNode() = default;

void RaftNode::Start() {
  NBRAFT_CHECK(!started_);
  started_ = true;
  BootstrapMembership();
  if (!options_.wal_dir.empty()) {
    RecoverFromWal();
  } else if (options_.disk.enabled) {
    storage::SimDisk::Options dopts;
    dopts.write_latency = options_.disk.write_latency;
    dopts.fsync_latency = options_.disk.fsync_latency;
    dopts.bytes_per_us = options_.disk.bytes_per_us;
    dopts.fault_seed = options_.disk.fault_seed;
    dopts.shared_io_lane = options_.disk.shared_io_lane;
    disk_ = std::make_unique<storage::SimDisk>(sim_, dopts, id_);
  }
  OpenDurableLog();
  network_->RegisterEndpoint(
      id_, [this](net::Message&& msg) { HandleMessage(std::move(msg)); });
  election_->ArmElectionTimer();
}

void RaftNode::Crash() {
  if (core_.crashed) return;
  if (journal_ != nullptr) {
    journal_->Record(obs::JournalEventKind::kCrash, id_, -1, 0,
                     durable_ != nullptr ? 1 : 0);
  }
  core_.crashed = true;
  network_->SetNodeUp(id_, false);
  // Volatile state is lost; durable state (term, vote, log) survives, and
  // the state machine is durable by the paper's Sec. IV assumptions. Each
  // engine drops its own caches and cancels its own timers.
  election_->OnCrash();
  pipeline_->ResetLeaderState();
  ingress_->OnCrash();
  applier_->ResetLeaderState();
  recovery_->StopAll();
  core_.role = Role::kFollower;
  core_.leader = net::kInvalidNode;
  if (durable_ != nullptr) {
    // Real durability: everything in memory dies with the process; only
    // the durable image (WAL file or simulated disk) survives.
    durability_->Detach();
    const Status closed = durable_->Close();
    if (!closed.ok()) {
      NBRAFT_LOG(Warn) << "node " << id_
                       << ": durable log close failed: " << closed.ToString();
    }
    durable_.reset();
    log_ = storage::RaftLog();
    core_.current_term = 0;
    core_.voted_for = net::kInvalidNode;
    core_.commit_index = 0;
    core_.applied_index = 0;
    core_.apply_scheduled_up_to = 0;
    core_.snapshot_data.clear();
    core_.snapshot_index = 0;
    core_.snapshot_term = 0;
    core_.strong_ack_frontier = 0;
    core_.heal_quarantine = false;
    core_.heal_target = 0;
    storage_failure_pending_ = false;
    state_machine_->Reset();
    membership_->Reset();
    // Power loss on the simulated disk: un-fsynced records tear off.
    if (disk_ != nullptr) disk_->Crash();
  }
}

void RaftNode::Restart() {
  NBRAFT_CHECK(core_.crashed);
  if (journal_ != nullptr) {
    journal_->Record(obs::JournalEventKind::kRestart, id_);
  }
  core_.crashed = false;
  ++core_.epoch;
  // Durable-mode crashes wiped the volatile membership state; re-bootstrap
  // before recovery so recovered config markers land on an active engine
  // (and win over the construction-time roster).
  BootstrapMembership();
  if (!options_.wal_dir.empty()) {
    RecoverFromWal();
  } else if (disk_ != nullptr) {
    RecoverFromDisk();
  }
  OpenDurableLog();
  network_->SetNodeUp(id_, true);
  election_->ArmElectionTimer();
}

void RaftNode::TriggerElection() {
  if (core_.crashed) return;
  election_->StartElection();
}

void RaftNode::BootstrapMembership() {
  if (membership_->active()) return;  // Modelled-durability crash kept it.
  if (options_.membership.initial_config.empty()) return;
  Configuration cfg;
  NBRAFT_CHECK(Configuration::Decode(options_.membership.initial_config, &cfg))
      << "bad initial_config: " << options_.membership.initial_config;
  membership_->Bootstrap(cfg);
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

void RaftNode::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  ingress_->OnTracerChanged();
}

void RaftNode::set_journal(obs::Journal* journal) {
  journal_ = journal;
  // The window observer serves both sinks; (re)install it.
  ingress_->OnTracerChanged();
}

void RaftNode::TracePhase(metrics::Phase phase, SimTime start, SimTime end,
                          int64_t term, int64_t index, uint64_t request_id) {
  stats_.breakdown.Add(phase, end - start);
  if (tracer_ != nullptr) {
    tracer_->RecordSpan(phase, id_, term, index, request_id, start, end);
  }
}

int64_t RaftNode::TraceTermAt(storage::LogIndex index) const {
  if (tracer_ == nullptr) return 0;
  return log_.TermAt(index).value_or(0);
}

// ---------------------------------------------------------------------------
// Message plumbing
// ---------------------------------------------------------------------------

void RaftNode::HandleMessage(net::Message&& msg) {
  if (core_.crashed) return;
  const SimTime received_at = sim_->Now();
  if (journal_ != nullptr) {
    journal_->Record(obs::JournalEventKind::kRpcRecv, id_, msg.from,
                     static_cast<int64_t>(DecodeRpc(msg.payload)),
                     static_cast<int64_t>(msg.bytes));
  }
  if (auto* ae = msg.payload.Get<AppendEntriesRequest>()) {
    if (!ae->is_heartbeat) {
      TracePhase(metrics::Phase::kTransLeaderFollower, msg.sent_at,
                 received_at, ae->entry.term, ae->entry.index,
                 ae->entry.request_id);
    }
    ingress_->HandleAppendEntries(std::move(*ae), received_at);
  } else if (auto* aer = msg.payload.Get<AppendEntriesResponse>()) {
    pipeline_->HandleAppendResponse(std::move(*aer));
  } else if (auto* rv = msg.payload.Get<RequestVoteRequest>()) {
    election_->HandleRequestVote(*rv);
  } else if (auto* rvr = msg.payload.Get<RequestVoteResponse>()) {
    election_->HandleVoteResponse(*rvr);
  } else if (auto* cr = msg.payload.Get<ClientRequest>()) {
    pipeline_->HandleClientRequest(std::move(*cr), received_at, msg.sent_at);
  } else if (auto* is = msg.payload.Get<InstallSnapshotRequest>()) {
    ingress_->HandleInstallSnapshot(std::move(*is));
  } else if (auto* isr = msg.payload.Get<InstallSnapshotResponse>()) {
    pipeline_->HandleInstallSnapshotResponse(*isr);
  } else if (auto* rr = msg.payload.Get<ReadRequest>()) {
    HandleReadRequest(*rr);
  } else if (auto* tn = msg.payload.Get<TimeoutNowRequest>()) {
    election_->HandleTimeoutNow(*tn);
  } else {
    NBRAFT_LOG(Warn) << "node " << id_ << ": unknown message type";
  }
}

void RaftNode::SendTo(net::NodeId to, size_t bytes,
                      net::PayloadRef payload) {
  if (journal_ != nullptr) {
    journal_->Record(obs::JournalEventKind::kRpcSend, id_, to,
                     static_cast<int64_t>(DecodeRpc(payload)),
                     static_cast<int64_t>(bytes));
  }
  network_->Send(id_, to, bytes, std::move(payload));
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

void RaftNode::HandleReadRequest(ReadRequest req) {
  ReadResponse resp;
  resp.request_id = req.request_id;
  if (options_.erasure && core_.role != Role::kLeader) {
    // Fragmented replicas cannot serve reads (Table II: no follower read
    // under CRaft).
    resp.supported = false;
  } else {
    resp.supported = true;
    resp.point_count = state_machine_->PointCount(req.series_id);
  }
  SendTo(req.client, resp.WireSize(), resp);
}

// ---------------------------------------------------------------------------
// CPU
// ---------------------------------------------------------------------------

void RaftNode::SetCpuSpeedFactor(double factor) {
  cpu_->set_speed_factor(factor);
  index_lane_->set_speed_factor(factor);
  apply_lane_->set_speed_factor(factor);
  log_lock_lane_->set_speed_factor(factor);
}

// ---------------------------------------------------------------------------
// Durability
// ---------------------------------------------------------------------------

std::string RaftNode::WalPath() const {
  return options_.wal_dir + "/node_" + std::to_string(id_) + ".wal";
}

void RaftNode::OpenDurableLog() {
  if (!options_.wal_dir.empty()) {
    durable_ = std::make_unique<storage::DurableLog>();
    NBRAFT_CHECK(durable_->Open(WalPath()).ok());
  } else if (disk_ != nullptr) {
    durable_ = std::make_unique<storage::DurableLog>();
    durable_->OpenWith(std::make_unique<storage::SimDiskBackend>(disk_.get()));
  } else if (options_.backend_factory) {
    durable_ = std::make_unique<storage::DurableLog>();
    durable_->OpenWith(options_.backend_factory(id_));
  }
  // durable_ may be null: modelled durability, nothing to coordinate.
  durability_->Attach(durable_.get(), log_.LastIndex());
}

void RaftNode::PersistEntry(const storage::LogEntry& entry) {
  durability_->PersistEntry(entry);
}

void RaftNode::PersistTruncate(storage::LogIndex from_index) {
  // Truncated entries take their durability claims with them.
  core_.strong_ack_frontier =
      std::min(core_.strong_ack_frontier, from_index - 1);
  durability_->PersistTruncate(from_index);
  if (membership_->active()) {
    // A truncated suffix takes its configuration entries with it: roll
    // back to the roster in effect before the cut.
    membership_->OnTruncated(from_index);
  }
}

void RaftNode::PersistHardState() {
  durability_->PersistHardState(core_.current_term, core_.voted_for);
}

void RaftNode::PersistSnapshot(storage::LogIndex index, storage::Term term,
                               const std::string& data, bool installed) {
  durability_->PersistSnapshot(index, term, nbraft::Buffer(data), installed);
}

void RaftNode::PersistCompact(storage::LogIndex upto) {
  durability_->PersistCompact(upto);
}

void RaftNode::PersistConfig(const std::string& encoded,
                             storage::LogIndex at) {
  durability_->PersistConfig(encoded, at);
}

storage::LogIndex RaftNode::DurableEntryFrontier() const {
  // Instant (or modelled) durability: everything appended is durable.
  if (durability_->instant()) return log_.LastIndex();
  return durability_->durable_entry_frontier();
}

void RaftNode::OnStorageFailure(const Status& status) {
  NBRAFT_LOG(Warn) << "node " << id_
                   << ": storage failure: " << status.ToString();
  if (storage_failure_pending_ || core_.crashed) return;
  storage_failure_pending_ = true;
  if (journal_ != nullptr) {
    journal_->Record(obs::JournalEventKind::kStorageFailure, id_, -1,
                     core_.role == Role::kLeader ? 1 : 0);
  }
  // Deferred one event so the failing persist call unwinds first: its
  // caller may still be mutating engine state.
  const uint64_t epoch = core_.epoch;
  sim_->After(0, [this, epoch]() {
    storage_failure_pending_ = false;
    if (core_.crashed || epoch != core_.epoch) return;
    if (core_.role == Role::kLeader) {
      // A leader that cannot persist must not keep acknowledging: hand
      // leadership off. The same-term step-down persists nothing, so this
      // cannot recurse into another storage failure.
      election_->StepDown(core_.current_term, net::kInvalidNode);
    } else {
      // A follower that cannot persist halts loudly rather than serving
      // acknowledgements it cannot back.
      Crash();
    }
  });
}

void RaftNode::ClearHealQuarantine() {
  core_.heal_quarantine = false;
  core_.heal_target = 0;
  if (disk_ != nullptr) disk_->ClearHealScar();
}

void RaftNode::RecoverFromWal() {
  const std::string path = WalPath();
  if (!std::filesystem::exists(path)) return;  // Fresh node.
  auto recovered = storage::DurableLog::Recover(path);
  NBRAFT_CHECK(recovered.ok()) << recovered.status().ToString();
  ApplyRecovered(std::move(recovered).value());
}

void RaftNode::RecoverFromDisk() {
  auto recovered = storage::DurableLog::RecoverFromDisk(*disk_);
  if (recovered.corrupt_dropped_records > 0) {
    // fsck: cut the image at the corrupt record so post-heal appends land
    // on a clean stream. The scar keeps the quarantine across crashes.
    disk_->RepairCorruptTail();
  }
  ApplyRecovered(std::move(recovered));
  if (disk_->heal_scar()) {
    core_.heal_quarantine = true;
    core_.heal_target = std::max(core_.heal_target, disk_->scar_frontier());
  }
}

void RaftNode::ApplyRecovered(storage::DurableLog::RecoveredState&& recovered) {
  log_ = std::move(recovered.log);
  core_.current_term = recovered.hard_state.term;
  core_.voted_for = recovered.hard_state.voted_for;
  if (recovered.has_snapshot) {
    core_.snapshot_data = recovered.snapshot_data.str();
    core_.snapshot_index = recovered.snapshot_index;
    core_.snapshot_term = recovered.snapshot_term;
    NBRAFT_CHECK(state_machine_->Restore(core_.snapshot_data).ok());
    // The snapshot covers the committed prefix through its index; apply
    // resumes past it.
    core_.commit_index = recovered.snapshot_index;
    core_.applied_index = recovered.snapshot_index;
    core_.apply_scheduled_up_to = recovered.snapshot_index;
  }
  if (recovered.corrupt_dropped_records > 0) {
    core_.heal_quarantine = true;
    // Conservative floor; RecoverFromDisk raises it to the repaired
    // image's exact pre-cut durable frontier.
    core_.heal_target = std::max(core_.heal_target, log_.LastIndex());
  }
  if (!recovered.config.empty() && membership_->active()) {
    // The recovered configuration marker supersedes the construction-time
    // bootstrap roster (Restart re-bootstrapped just before recovery).
    Configuration cfg;
    if (Configuration::Decode(recovered.config, &cfg)) {
      membership_->InstallRecovered(cfg, recovered.config_index);
    }
  }
  ++stats_.recoveries;
  if (journal_ != nullptr) {
    journal_->Record(obs::JournalEventKind::kRecovery, id_, -1,
                     static_cast<int64_t>(log_.LastIndex()),
                     core_.heal_quarantine ? 1 : 0);
  }
  NBRAFT_LOG(Info) << "node " << id_ << " recovered " << log_.LastIndex()
                   << " entries, term " << core_.current_term
                   << (recovered.has_snapshot ? ", snapshot at " : "")
                   << (recovered.has_snapshot
                           ? std::to_string(core_.snapshot_index)
                           : "")
                   << (core_.heal_quarantine ? ", QUARANTINED (corruption)"
                                             : "");
}

}  // namespace nbraft::raft
