#include "raft/raft_node.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

#include <filesystem>

namespace nbraft::raft {

namespace {

constexpr size_t kKibibyte = 1024;

SimDuration PerKib(SimDuration per_kib, size_t bytes) {
  return per_kib * static_cast<SimDuration>(bytes) /
         static_cast<SimDuration>(kKibibyte);
}

}  // namespace

RaftNode::RaftNode(sim::Simulator* sim, net::SimNetwork* network,
                   net::NodeId id, std::vector<net::NodeId> peers,
                   RaftOptions options,
                   std::unique_ptr<tsdb::StateMachine> state_machine)
    : sim_(sim),
      network_(network),
      id_(id),
      peers_(std::move(peers)),
      options_(options),
      state_machine_(std::move(state_machine)),
      rng_(sim->rng()->Next()),
      window_(options.window_size) {
  NBRAFT_CHECK(state_machine_ != nullptr);
  NBRAFT_CHECK(options_.wal_dir.empty() || options_.snapshot_threshold <= 0)
      << "real WAL durability does not persist compaction";
  cpu_ = std::make_unique<sim::CpuExecutor>(
      sim_, options_.cpu_lanes, "node" + std::to_string(id_) + ".cpu");
  cpu_->set_switch_cost(options_.costs.context_switch_cost,
                        options_.costs.max_switch_overhead);
  index_lane_ = std::make_unique<sim::CpuExecutor>(
      sim_, 1, "node" + std::to_string(id_) + ".index");
  apply_lane_ = std::make_unique<sim::CpuExecutor>(
      sim_, 1, "node" + std::to_string(id_) + ".apply");
  log_lock_lane_ = std::make_unique<sim::CpuExecutor>(
      sim_, 1, "node" + std::to_string(id_) + ".loglock");
  log_lock_lane_->set_switch_cost(options_.costs.lock_switch_cost,
                                  options_.costs.max_switch_overhead);
}

RaftNode::~RaftNode() = default;

void RaftNode::Start() {
  NBRAFT_CHECK(!started_);
  started_ = true;
  if (!options_.wal_dir.empty()) {
    RecoverFromWal();
    durable_ = std::make_unique<storage::DurableLog>();
    NBRAFT_CHECK(durable_->Open(WalPath()).ok());
  }
  network_->RegisterEndpoint(
      id_, [this](net::Message&& msg) { HandleMessage(std::move(msg)); });
  ArmElectionTimer();
}

void RaftNode::Crash() {
  if (crashed_) return;
  crashed_ = true;
  network_->SetNodeUp(id_, false);
  sim_->Cancel(election_timer_);
  sim_->Cancel(heartbeat_timer_);
  election_timer_ = sim::kInvalidEventId;
  heartbeat_timer_ = sim::kInvalidEventId;
  for (auto& [rpc_id, rpc] : outstanding_rpcs_) {
    sim_->Cancel(rpc.timeout_event);
  }
  outstanding_rpcs_.clear();
  // Volatile state is lost; durable state (term, vote, log) survives, and
  // the state machine is durable by the paper's Sec. IV assumptions.
  role_ = Role::kFollower;
  leader_ = net::kInvalidNode;
  window_.Clear();
  held_entries_.clear();
  vote_list_.Clear();
  peer_state_.clear();
  fragment_cache_.clear();
  fragment_required_.clear();
  entry_timing_.clear();
  votes_received_.clear();
  recv_time_.clear();
  if (durable_ != nullptr) {
    // Real durability: everything in memory dies with the process; only
    // the WAL file survives.
    NBRAFT_CHECK(durable_->Close().ok());
    durable_.reset();
    log_ = storage::RaftLog();
    current_term_ = 0;
    voted_for_ = net::kInvalidNode;
    commit_index_ = 0;
    applied_index_ = 0;
    apply_scheduled_up_to_ = 0;
    snapshot_data_.clear();
    snapshot_index_ = 0;
    snapshot_term_ = 0;
    state_machine_->Reset();
  }
}

void RaftNode::Restart() {
  NBRAFT_CHECK(crashed_);
  crashed_ = false;
  ++epoch_;
  if (!options_.wal_dir.empty()) {
    RecoverFromWal();
    durable_ = std::make_unique<storage::DurableLog>();
    NBRAFT_CHECK(durable_->Open(WalPath()).ok());
  }
  network_->SetNodeUp(id_, true);
  ArmElectionTimer();
}

void RaftNode::TriggerElection() {
  if (crashed_) return;
  StartElection();
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

void RaftNode::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  window_.set_observer(tracer != nullptr ? &window_trace_adapter_ : nullptr);
}

void RaftNode::TracePhase(metrics::Phase phase, SimTime start, SimTime end,
                          int64_t term, int64_t index, uint64_t request_id) {
  stats_.breakdown.Add(phase, end - start);
  if (tracer_ != nullptr) {
    tracer_->RecordSpan(phase, id_, term, index, request_id, start, end);
  }
}

int64_t RaftNode::TraceTermAt(storage::LogIndex index) const {
  if (tracer_ == nullptr) return 0;
  return log_.TermAt(index).value_or(0);
}

void RaftNode::WindowTraceAdapter::OnInsert(storage::LogIndex index,
                                            size_t occupancy) {
  node_->tracer_->RecordInstant("window_insert", node_->id_, index,
                                static_cast<int64_t>(occupancy));
}

void RaftNode::WindowTraceAdapter::OnEvict(storage::LogIndex index,
                                           size_t occupancy) {
  node_->tracer_->RecordInstant("window_evict", node_->id_, index,
                                static_cast<int64_t>(occupancy));
}

void RaftNode::WindowTraceAdapter::OnFlush(storage::LogIndex first,
                                           size_t count, size_t occupancy) {
  node_->tracer_->RecordInstant("window_flush", node_->id_, first,
                                static_cast<int64_t>(count));
  (void)occupancy;
}

size_t RaftNode::DispatcherQueueDepth() const {
  size_t depth = 0;
  for (const auto& [peer, ps] : peer_state_) depth += ps.queue.size();
  return depth;
}

// ---------------------------------------------------------------------------
// Message plumbing
// ---------------------------------------------------------------------------

void RaftNode::HandleMessage(net::Message&& msg) {
  if (crashed_) return;
  const SimTime received_at = sim_->Now();
  if (auto* ae = std::any_cast<AppendEntriesRequest>(&msg.payload)) {
    if (!ae->is_heartbeat) {
      TracePhase(metrics::Phase::kTransLeaderFollower, msg.sent_at,
                 received_at, ae->entry.term, ae->entry.index,
                 ae->entry.request_id);
    }
    HandleAppendEntries(std::move(*ae), received_at);
  } else if (auto* aer =
                 std::any_cast<AppendEntriesResponse>(&msg.payload)) {
    HandleAppendResponse(std::move(*aer));
  } else if (auto* rv = std::any_cast<RequestVoteRequest>(&msg.payload)) {
    HandleRequestVote(*rv);
  } else if (auto* rvr = std::any_cast<RequestVoteResponse>(&msg.payload)) {
    HandleVoteResponse(*rvr);
  } else if (auto* cr = std::any_cast<ClientRequest>(&msg.payload)) {
    HandleClientRequest(std::move(*cr), received_at, msg.sent_at);
  } else if (auto* is = std::any_cast<InstallSnapshotRequest>(&msg.payload)) {
    HandleInstallSnapshot(std::move(*is));
  } else if (auto* isr =
                 std::any_cast<InstallSnapshotResponse>(&msg.payload)) {
    HandleInstallSnapshotResponse(*isr);
  } else if (auto* rr = std::any_cast<ReadRequest>(&msg.payload)) {
    HandleReadRequest(*rr);
  } else {
    NBRAFT_LOG(Warn) << "node " << id_ << ": unknown message type";
  }
}

void RaftNode::SendTo(net::NodeId to, size_t bytes, std::any payload) {
  network_->Send(id_, to, bytes, std::move(payload));
}

// ---------------------------------------------------------------------------
// Client request path (leader)
// ---------------------------------------------------------------------------

void RaftNode::HandleClientRequest(ClientRequest req, SimTime received_at,
                                   SimTime sent_at) {
  if (role_ != Role::kLeader) {
    ClientResponse resp;
    resp.state = AcceptState::kNotLeader;
    resp.request_id = req.request_id;
    resp.leader_hint = leader_;
    SendTo(req.client, resp.WireSize(), resp);
    return;
  }
  TracePhase(metrics::Phase::kTransClientLeader, sent_at, received_at,
             /*term=*/0, /*index=*/0, req.request_id);

  // Step 2 of the paper: parse, then index on the serialized indexing lane
  // (the lock Ratis holds longer than IoTDB).
  const SimTime parse_submitted = sim_->Now();
  const uint64_t epoch = epoch_;
  const SimDuration parse_cost = state_machine_->ParseCost(req.payload.size());
  cpu_->Submit(
      parse_cost,
      [this, epoch, parse_submitted, req = std::move(req)]() mutable {
        if (crashed_ || epoch != epoch_) return;
        const SimTime parse_done = sim_->Now();
        TracePhase(metrics::Phase::kParse, parse_submitted, parse_done,
                   /*term=*/0, /*index=*/0, req.request_id);
        SimDuration index_cost =
            options_.costs.index_cost +
            PerKib(options_.costs.leader_append_per_kib, req.payload.size());
        index_lane_->Submit(
            index_cost,
            [this, epoch, parse_done, req = std::move(req)]() mutable {
              if (crashed_ || epoch != epoch_) return;
              TracePhase(metrics::Phase::kIndex, parse_done, sim_->Now(),
                         /*term=*/0, /*index=*/0, req.request_id);
              if (role_ != Role::kLeader) {
                ClientResponse resp;
                resp.state = AcceptState::kNotLeader;
                resp.request_id = req.request_id;
                resp.leader_hint = leader_;
                SendTo(req.client, resp.WireSize(), resp);
                return;
              }
              IndexAndReplicate(std::move(req));
            });
      });
}

void RaftNode::IndexAndReplicate(ClientRequest req) {
  storage::LogEntry entry;
  entry.index = log_.LastIndex() + 1;
  entry.term = current_term_;
  entry.prev_term = log_.LastTerm();
  entry.client_id = req.client;
  entry.request_id = req.request_id;
  entry.payload = std::move(req.payload);
  entry.payload_size_hint = entry.payload.size();
  log_.Append(entry);
  PersistEntry(entry);
  ++stats_.entries_appended;
  entry_timing_[entry.index].indexed_at = sim_->Now();
  if (tracer_ != nullptr) {
    // Joins the request-keyed client/parse spans with the (term, index)
    // keyed replication spans.
    tracer_->RecordInstant("indexed", id_, entry.index,
                           static_cast<int64_t>(entry.request_id));
  }

  // Decide the replication shape (plain / fragmented / degraded).
  const int n = cluster_size();
  const int f = (n - 1) / 2;
  const int alive = AliveNodes();
  const int dead = n - alive;
  int k = 0;  // 0 = full replication.
  if (options_.erasure && n >= 3) {
    if (dead == 0) {
      k = f + 1;
    } else if (options_.ecraft) {
      // ECRaft: keep coding in degraded mode with a smaller k when
      // possible; fall back to full replication otherwise.
      const int k_degraded = alive - (f - dead);
      k = k_degraded >= 2 ? k_degraded : 0;
      ++stats_.degraded_entries;
    } else {
      k = 0;  // CRaft degrades to full replication (its liveness fix).
      ++stats_.degraded_entries;
    }
  }
  const int required = RequiredStrong(k > 0, k);
  vote_list_.AddTuple(entry.index, entry.term, id_, required);

  if (k > 0) {
    // Fragment the payload. Benchmarks model the coder's cost and shard
    // sizes; tests/examples run the real Reed–Solomon coder.
    fragment_required_[entry.index] = k;
    const SimDuration encode_cost =
        PerKib(options_.costs.encode_cost_per_kib, entry.payload.size());
    const uint64_t epoch = epoch_;
    const storage::LogIndex index = entry.index;
    std::string payload = entry.payload;
    cpu_->Submit(encode_cost, [this, epoch, index,
                               payload = std::move(payload)]() {
      if (crashed_ || epoch != epoch_ || role_ != Role::kLeader) return;
      const auto it = fragment_required_.find(index);
      if (it == fragment_required_.end()) return;
      const int kk = it->second;
      std::vector<std::string> shards;
      if (options_.real_erasure_coding) {
        craft::ReedSolomon rs(kk, cluster_size() - kk);
        shards = rs.Encode(payload);
      } else {
        const size_t shard_size = (payload.size() + kk - 1) / kk;
        shards.assign(static_cast<size_t>(cluster_size()),
                      std::string(shard_size, 'f'));
      }
      fragment_cache_[index] = std::move(shards);
      auto e = log_.At(index);
      if (e.ok()) ReplicateEntry(e.value());
    });
  } else {
    ReplicateEntry(entry);
  }

  // Single-node cluster: the leader's own append is the whole quorum.
  if (peers_.empty()) {
    const auto committed =
        vote_list_.AddStrongUpTo(entry.index, id_, current_term_);
    CommitIndices(committed);
  }
}

void RaftNode::ReplicateEntry(const storage::LogEntry& entry) {
  // VGRaft: hash + sign + verification-group selection before fan-out.
  SimDuration pre_cost = 0;
  if (options_.verify_group) {
    pre_cost = PerKib(options_.costs.hash_cost_per_kib, entry.WireSize()) +
               options_.costs.sign_cost + options_.costs.group_select_cost;
  }
  const uint64_t epoch = epoch_;
  const storage::LogIndex index = entry.index;
  const auto fan_out = [this, epoch, index]() {
    if (crashed_ || epoch != epoch_ || role_ != Role::kLeader) return;
    const int bucket = EffectiveKBucket();
    if (bucket > 0) {
      // KRaft: send to the bucket only; the bucket relays to the rest.
      const int limit = std::min<int>(bucket, static_cast<int>(peers_.size()));
      for (int i = 0; i < limit; ++i) EnqueueForPeer(peers_[i], index);
    } else {
      for (net::NodeId peer : peers_) EnqueueForPeer(peer, index);
    }
  };
  if (pre_cost > 0) {
    cpu_->Submit(pre_cost, fan_out);
  } else {
    fan_out();
  }
}

void RaftNode::EnqueueForPeer(net::NodeId peer, storage::LogIndex index) {
  PeerState& ps = peer_state_[peer];
  if (ps.queued.count(index) > 0 || ps.in_flight.count(index) > 0) return;
  ps.queue.push_back(QueuedEntry{index, sim_->Now()});
  ps.queued.insert(index);
  ps.max_enqueued = std::max(ps.max_enqueued, index);
  TryDispatch(peer);
}

void RaftNode::TryDispatch(net::NodeId peer) {
  if (role_ != Role::kLeader) return;
  PeerState& ps = peer_state_[peer];
  while (ps.busy_dispatchers < options_.dispatchers_per_follower &&
         !ps.queue.empty()) {
    // Dispatch the lowest queued index first. In steady state entries are
    // enqueued in log order, so this is FIFO; after a fault it matters:
    // out-of-window entries a lagging follower is holding keep timing out
    // and re-queueing, and under FIFO they would recycle through the freed
    // dispatcher slots forever, starving the catch-up entries the follower
    // actually needs to advance its log.
    auto pick = ps.queue.begin();
    for (auto it = std::next(pick); it != ps.queue.end(); ++it) {
      if (it->index < pick->index) pick = it;
    }
    const QueuedEntry qe = *pick;
    ps.queue.erase(pick);
    ps.queued.erase(qe.index);
    if (qe.index > log_.LastIndex()) continue;  // Truncated since queued.
    if (qe.index < log_.FirstIndex()) {
      // Compacted away: the peer needs the snapshot instead.
      SendInstallSnapshot(peer);
      continue;
    }
    TracePhase(metrics::Phase::kQueue, qe.enqueued_at, sim_->Now(),
               TraceTermAt(qe.index), qe.index);
    ++ps.busy_dispatchers;
    ps.in_flight.insert(qe.index);
    SendAppendRpc(peer, qe.index);
  }
}

void RaftNode::SendAppendRpc(net::NodeId peer, storage::LogIndex index) {
  AppendEntriesRequest req;
  req.term = current_term_;
  req.leader = id_;
  req.rpc_id = next_rpc_id_++;
  req.leader_commit = commit_index_;
  req.commit_term = log_.TermAt(commit_index_).value_or(0);
  req.signed_payload = options_.verify_group;
  req.entry = log_.AtUnchecked(index);

  // CRaft: swap the payload for this peer's shard while the entry is still
  // fragment-replicated (committed entries fall back to full payloads).
  const auto frag = fragment_cache_.find(index);
  if (frag != fragment_cache_.end()) {
    // Peer i holds shard i+1 (the leader implicitly holds shard 0).
    int shard_id = 0;
    for (size_t i = 0; i < peers_.size(); ++i) {
      if (peers_[i] == peer) {
        shard_id = static_cast<int>(i) + 1;
        break;
      }
    }
    req.entry.payload = frag->second[static_cast<size_t>(shard_id) %
                                     frag->second.size()];
    req.entry.payload_size_hint = 0;
    req.entry.frag_shard = shard_id;
    req.entry.frag_k = static_cast<uint32_t>(fragment_required_[index]);
    req.entry.full_size = log_.AtUnchecked(index).WireSize();
  }

  // KRaft: attach the relay fan-out for this bucket member.
  const int bucket = EffectiveKBucket();
  if (bucket > 0) {
    const int limit = std::min<int>(bucket, static_cast<int>(peers_.size()));
    int my_pos = -1;
    for (int i = 0; i < limit; ++i) {
      if (peers_[i] == peer) {
        my_pos = i;
        break;
      }
    }
    if (my_pos >= 0) {
      for (size_t i = static_cast<size_t>(limit); i < peers_.size(); ++i) {
        const int assigned =
            static_cast<int>((i + static_cast<size_t>(index)) %
                             static_cast<size_t>(limit));
        if (assigned == my_pos) req.relay_to.push_back(peers_[i]);
      }
    }
  }

  const uint64_t rpc_id = req.rpc_id;
  const uint64_t epoch = epoch_;
  const sim::EventId timeout_event = sim_->After(
      options_.rpc_timeout, [this, epoch, rpc_id]() {
        if (crashed_ || epoch != epoch_) return;
        OnRpcTimeout(rpc_id);
      });
  outstanding_rpcs_[rpc_id] =
      OutstandingRpc{peer, index, /*is_snapshot=*/false, timeout_event};
  SendTo(peer, req.WireSize(), std::move(req));
}

void RaftNode::OnRpcTimeout(uint64_t rpc_id) {
  const auto it = outstanding_rpcs_.find(rpc_id);
  if (it == outstanding_rpcs_.end()) return;
  const OutstandingRpc rpc = it->second;
  outstanding_rpcs_.erase(it);
  ++stats_.rpc_timeouts;
  if (role_ != Role::kLeader) return;
  PeerState& ps = peer_state_[rpc.peer];
  if (rpc.is_snapshot) {
    ps.snapshot_in_flight = false;  // Retried on the next trigger.
    return;
  }
  ps.busy_dispatchers = std::max(0, ps.busy_dispatchers - 1);
  ps.in_flight.erase(rpc.index);
  // Re-send if the entry is still uncommitted or the peer may lack it.
  if (rpc.index <= log_.LastIndex() && ps.queued.count(rpc.index) == 0) {
    ps.queue.push_front(QueuedEntry{rpc.index, sim_->Now()});
    ps.queued.insert(rpc.index);
  }
  TryDispatch(rpc.peer);
}

// ---------------------------------------------------------------------------
// Follower append path
// ---------------------------------------------------------------------------

void RaftNode::HandleAppendEntries(AppendEntriesRequest req,
                                   SimTime received_at) {
  if (req.term < current_term_) {
    // Stale leader: tell it a newer term exists (paper Fig. 11 — the reply
    // carries the higher term so the old leader steps down and returns
    // LEADER_CHANGED to its clients).
    AppendEntriesResponse resp;
    resp.term = current_term_;
    resp.from = id_;
    resp.rpc_id = req.rpc_id;
    resp.state = AcceptState::kLeaderChanged;
    resp.is_heartbeat = req.is_heartbeat;
    resp.entry_index = req.is_heartbeat ? 0 : req.entry.index;
    resp.last_index = log_.LastIndex();
    resp.last_term = log_.LastTerm();
    SendTo(req.leader, resp.WireSize(), resp);
    return;
  }
  NoteLeaderContact(req.term, req.leader);

  // KRaft relay: forward to the assigned peers before local processing.
  if (!req.relay_to.empty()) {
    AppendEntriesRequest fwd = req;
    fwd.relay_to.clear();
    for (net::NodeId target : req.relay_to) {
      SendTo(target, fwd.WireSize(), fwd);
    }
    req.relay_to.clear();
  }

  if (req.is_heartbeat) {
    // Heartbeats advance the commit index only when the follower can
    // verify its entry at leader_commit matches the leader's (otherwise a
    // stale divergent tail could be "committed" locally).
    if (log_.Matches(req.leader_commit, req.commit_term)) {
      AdvanceFollowerCommit(req.leader_commit, req.leader_commit);
    }
    AppendEntriesResponse resp;
    resp.term = current_term_;
    resp.from = id_;
    resp.rpc_id = req.rpc_id;
    resp.state = AcceptState::kStrongAccept;
    resp.is_heartbeat = true;
    resp.last_index = log_.LastIndex();
    resp.last_term = log_.LastTerm();
    SendTo(req.leader, resp.WireSize(), resp);
    return;
  }

  // VGRaft: verify the digest and signature before accepting. The
  // signature check itself parallelizes on the worker pool, but admitting
  // a verified entry into consensus serializes with the log handling —
  // the "heavy overhead" of per-consensus verification groups the paper
  // measures as VGRaft's weakness.
  if (options_.verify_group && req.signed_payload) {
    const SimDuration verify_cost =
        PerKib(options_.costs.hash_cost_per_kib, req.entry.WireSize()) +
        options_.costs.verify_cost;
    log_lock_lane_->Consume(options_.costs.verify_admission_cost);
    const uint64_t epoch = epoch_;
    cpu_->Submit(verify_cost, [this, epoch, received_at,
                               req = std::move(req)]() mutable {
      if (crashed_ || epoch != epoch_) return;
      ProcessEntry(req, received_at, /*from_held_queue=*/false);
    });
    return;
  }
  ProcessEntry(req, received_at, /*from_held_queue=*/false);
}

void RaftNode::ProcessEntry(const AppendEntriesRequest& req,
                            SimTime received_at, bool from_held_queue) {
  const storage::LogEntry& entry = req.entry;
  const storage::LogIndex last = log_.LastIndex();
  const storage::LogIndex diff = entry.index - last;

  // Duplicate delivery of an entry we already appended: the match proves
  // our prefix up to it agrees with the leader's. Entries below the
  // compacted prefix are covered by the installed snapshot (committed
  // state) and equally duplicates.
  if (diff <= 0 && (entry.index < log_.FirstIndex() ||
                    log_.Matches(entry.index, entry.term))) {
    if (entry.index >= log_.FirstIndex()) {
      AdvanceFollowerCommit(req.leader_commit, entry.index);
    }
    RespondAppend(req, AcceptState::kStrongAccept, log_.LastIndex(),
                  log_.LastTerm());
    return;
  }

  if (diff <= 0) {
    // Sec. III-A1: a newer-term entry replaces an appended one. Committed
    // entries can never conflict (Leader Completeness).
    NBRAFT_CHECK_GT(entry.index, commit_index_)
        << "node " << id_ << ": conflicting entry " << entry.ToString()
        << " from leader " << req.leader << " term " << req.term
        << " below commit " << commit_index_ << "; local term at index: "
        << log_.TermAt(entry.index).value_or(-1) << ", my term "
        << current_term_ << ", last " << log_.LastIndex();
    if (log_.Matches(entry.index - 1, entry.prev_term)) {
      AppendAndFlush(req, received_at, /*truncate_first=*/true);
    } else {
      ++stats_.mismatches_sent;
      RespondAppend(req, AcceptState::kLogMismatch, log_.LastIndex(),
                    log_.LastTerm());
    }
    return;
  }

  if (diff == 1) {
    // Sec. III-A2b: directly appendable if the previous entry is our last.
    if (log_.LastTerm() == entry.prev_term) {
      AppendAndFlush(req, received_at, /*truncate_first=*/false);
    } else {
      ++stats_.mismatches_sent;
      RespondAppend(req, AcceptState::kLogMismatch, log_.LastIndex(),
                    log_.LastTerm());
    }
    return;
  }

  if (diff <= options_.window_size) {
    // Sec. III-A2: cache in the sliding window, reply WEAK_ACCEPT.
    recv_time_[entry.index] = received_at;
    window_.Insert(entry);
    log_lock_lane_->Consume(options_.costs.window_insert_cost);
    ++stats_.window_inserts;
    ++stats_.weak_accepts_sent;
    RespondAppend(req, AcceptState::kWeakAccept, entry.index, entry.term);
    return;
  }

  // Sec. III-A3: beyond the window — hold and retry when the log advances.
  // The RPC stays open, keeping its dispatcher busy: this is the blocking
  // loop of the paper's Fig. 3 (and, with w = 0, the entirety of original
  // Raft's out-of-order handling).
  if (!from_held_queue) ++stats_.window_overflows;
  held_entries_.emplace(entry.index, HeldEntry{req, received_at});
}

void RaftNode::AppendAndFlush(const AppendEntriesRequest& req,
                              SimTime received_at, bool truncate_first) {
  storage::LogEntry entry = req.entry;
  if (truncate_first) {
    NBRAFT_CHECK(log_.TruncateSuffix(entry.index).ok());
    PersistTruncate(entry.index);
  }

  const SimDuration wait = sim_->Now() - received_at;
  stats_.wait_hist.Record(wait);
  TracePhase(metrics::Phase::kWaitFollower, received_at, sim_->Now(),
             entry.term, entry.index, entry.request_id);

  SimDuration cost = FollowerAppendCost(entry);
  PersistEntry(entry);
  log_.Append(std::move(entry));
  ++stats_.entries_appended;
  recv_time_.erase(req.entry.index);

  if (truncate_first) {
    window_.OnLogReshaped(log_.LastIndex(), req.entry.term);
  }

  // Flush the continuous window prefix into the log (paper Fig. 9).
  std::vector<storage::LogEntry> flushed =
      window_.TakeFlushablePrefix(log_.LastIndex(), log_.LastTerm());
  for (storage::LogEntry& e : flushed) {
    const auto rt = recv_time_.find(e.index);
    if (rt != recv_time_.end()) {
      const SimDuration w = sim_->Now() - rt->second;
      stats_.wait_hist.Record(w);
      TracePhase(metrics::Phase::kWaitFollower, rt->second, sim_->Now(),
                 e.term, e.index, e.request_id);
      recv_time_.erase(rt);
    }
    cost += FollowerAppendCost(e);
    PersistEntry(e);
    log_.Append(std::move(e));
    ++stats_.entries_appended;
  }

  const storage::LogIndex new_last = log_.LastIndex();
  const storage::Term new_last_term = log_.LastTerm();
  stats_.append_latency.Record(sim_->Now() - received_at);

  // The appended chain was prev-verified against the leader's log, so the
  // whole prefix up to new_last matches — safe commit bound.
  AdvanceFollowerCommit(req.leader_commit, new_last);

  // Every append wakes the appender threads blocked on the log lock so
  // they can re-check their held entries — the resource drain of original
  // Raft's blocking under concurrency.
  cost += options_.costs.held_wakeup_cost *
          static_cast<SimDuration>(held_entries_.size());

  // The append itself holds the log lock: charge the serialized lane and
  // reply when the work completes. The service cost is t_append(F) (tiny,
  // as the paper measures); time spent queued for the contended log lock
  // is part of t_wait(F) — the entry was received but could not be
  // appended yet.
  const uint64_t epoch = epoch_;
  const SimTime submit_time = sim_->Now();
  log_lock_lane_->Submit(cost, [this, epoch, req, new_last, new_last_term,
                                submit_time, cost]() {
    if (crashed_ || epoch != epoch_) return;
    TracePhase(metrics::Phase::kAppendFollower, sim_->Now() - cost,
               sim_->Now(), req.entry.term, req.entry.index,
               req.entry.request_id);
    TracePhase(metrics::Phase::kWaitFollower, submit_time,
               sim_->Now() - cost, req.entry.term, req.entry.index,
               req.entry.request_id);
    ++stats_.strong_accepts_sent;
    RespondAppend(req, AcceptState::kStrongAccept, new_last, new_last_term);
  });

  RecheckHeldEntries();
}

void RaftNode::RespondAppend(const AppendEntriesRequest& req,
                             AcceptState state, storage::LogIndex last_index,
                             storage::Term last_term) {
  AppendEntriesResponse resp;
  resp.term = current_term_;
  resp.from = id_;
  resp.rpc_id = req.rpc_id;
  resp.state = state;
  resp.entry_index = req.entry.index;
  resp.last_index = last_index;
  resp.last_term = last_term;
  SendTo(req.leader, resp.WireSize(), resp);
}

void RaftNode::RecheckHeldEntries() {
  if (in_recheck_ || held_entries_.empty()) return;
  in_recheck_ = true;
  // Only the lowest-index held entries can have become placeable; the
  // bound keeps re-advancing as processing appends more of the log.
  for (;;) {
    if (held_entries_.empty()) break;
    const storage::LogIndex bound =
        log_.LastIndex() + std::max(options_.window_size, 1);
    auto it = held_entries_.begin();
    if (it->first > bound) break;
    HeldEntry held = std::move(it->second);
    held_entries_.erase(it);
    if (held.request.term < current_term_) {
      RespondAppend(held.request, AcceptState::kLeaderChanged,
                    log_.LastIndex(), log_.LastTerm());
      continue;
    }
    // One more turn of the paper's waiting loop; mutating paths re-queue
    // for the log lock inside ProcessEntry.
    ProcessEntry(held.request, held.received_at, /*from_held_queue=*/true);
  }
  in_recheck_ = false;
}

void RaftNode::AdvanceFollowerCommit(storage::LogIndex leader_commit,
                                     storage::LogIndex verified_up_to) {
  if (role_ == Role::kLeader) return;
  const storage::LogIndex target =
      std::min({leader_commit, verified_up_to, log_.LastIndex()});
  if (target > commit_index_) {
    stats_.entries_committed += static_cast<uint64_t>(target - commit_index_);
    commit_index_ = target;
    ApplyReadyEntries();
  }
}

// ---------------------------------------------------------------------------
// Leader response path
// ---------------------------------------------------------------------------

void RaftNode::HandleAppendResponse(AppendEntriesResponse resp) {
  // Dispatcher bookkeeping happens regardless of role/term transitions.
  const auto rpc_it = outstanding_rpcs_.find(resp.rpc_id);
  if (rpc_it != outstanding_rpcs_.end()) {
    sim_->Cancel(rpc_it->second.timeout_event);
    PeerState& ps = peer_state_[rpc_it->second.peer];
    ps.busy_dispatchers = std::max(0, ps.busy_dispatchers - 1);
    ps.in_flight.erase(rpc_it->second.index);
    outstanding_rpcs_.erase(rpc_it);
  }

  if (resp.term > current_term_) {
    StepDown(resp.term, net::kInvalidNode);
    return;
  }
  if (role_ != Role::kLeader || resp.term < current_term_) {
    return;
  }

  PeerState& ps = peer_state_[resp.from];
  ps.last_response_at = sim_->Now();

  if (resp.is_heartbeat) {
    MaybeCatchUpPeer(resp.from, resp.last_index);
    TryDispatch(resp.from);
    return;
  }

  switch (resp.state) {
    case AcceptState::kWeakAccept: {
      if (vote_list_.AddWeak(resp.entry_index, resp.from)) {
        // A living quorum has received the entry: unblock the client
        // (Sec. III-B2).
        const auto e = log_.At(resp.entry_index);
        if (e.ok() && e->client_id != net::kInvalidNode) {
          ClientResponse cresp;
          cresp.state = AcceptState::kWeakAccept;
          cresp.request_id = e->request_id;
          cresp.index = e->index;
          cresp.term = e->term;
          SendTo(e->client_id, cresp.WireSize(), cresp);
        }
      }
      break;
    }
    case AcceptState::kStrongAccept: {
      // A covering ack proves the follower's prefix matches ours only if
      // (last_index, last_term) names an entry of OUR log (the log
      // matching property). Without this guard, a follower that flushed
      // stale old-term window entries could be counted as holding the
      // current leader's different entries at those indices.
      if (!log_.Matches(resp.last_index, resp.last_term)) {
        if (resp.last_index <= log_.LastIndex() &&
            resp.last_index >= log_.FirstIndex()) {
          // Re-send our entry at that point; its delivery truncates the
          // follower's divergent tail.
          EnqueueForPeer(resp.from, resp.last_index);
        }
        break;
      }
      ps.mismatch_probe = -1;
      // t_ack starts at the first strong accept covering an index.
      for (auto it = entry_timing_.begin();
           it != entry_timing_.end() && it->first <= resp.last_index; ++it) {
        if (it->second.first_strong_at == 0) {
          it->second.first_strong_at = sim_->Now();
        }
      }
      const auto committed =
          vote_list_.AddStrongUpTo(resp.last_index, resp.from, current_term_);
      CommitIndices(committed);
      break;
    }
    case AcceptState::kLogMismatch: {
      ++stats_.mismatches_sent;  // Symmetric counter on the leader side.
      storage::LogIndex start =
          std::min(resp.last_index + 1, resp.entry_index);
      if (ps.mismatch_probe >= 0 && ps.mismatch_probe <= start) {
        start = ps.mismatch_probe - 1;  // Backtrack further.
      }
      if (start < log_.FirstIndex()) {
        // The entries the follower needs were compacted away.
        SendInstallSnapshot(resp.from);
        break;
      }
      ps.mismatch_probe = start;
      for (storage::LogIndex i = start; i <= log_.LastIndex(); ++i) {
        EnqueueForPeer(resp.from, i);
      }
      break;
    }
    case AcceptState::kLeaderChanged:
      // resp.term > current_term_ was handled above; a stale message.
      break;
    case AcceptState::kNotLeader:
      break;
  }
  TryDispatch(resp.from);
}

void RaftNode::CommitIndices(const std::vector<storage::LogIndex>& indices) {
  for (const storage::LogIndex index : indices) {
    // The index may jump past commit_index_ + 1 right after an election:
    // entries from older terms commit implicitly through the first
    // current-term commit (Raft Sec. 5.4.2).
    NBRAFT_CHECK_GT(index, commit_index_);
    stats_.entries_committed += static_cast<uint64_t>(index - commit_index_);
    commit_index_ = index;
    cpu_->Consume(options_.costs.commit_cost);
    const int64_t trace_term = TraceTermAt(index);
    TracePhase(metrics::Phase::kCommit, sim_->Now(),
               sim_->Now() + options_.costs.commit_cost, trace_term, index);

    const auto timing = entry_timing_.find(index);
    if (timing != entry_timing_.end()) {
      if (timing->second.first_strong_at != 0) {
        TracePhase(metrics::Phase::kAck, timing->second.first_strong_at,
                   sim_->Now(), trace_term, index);
      }
      entry_timing_.erase(timing);
    }
    fragment_cache_.erase(index);
    fragment_required_.erase(index);
  }
  if (!indices.empty()) ApplyReadyEntries();
}

void RaftNode::ApplyReadyEntries() {
  MaybeTakeSnapshot();
  while (apply_scheduled_up_to_ < commit_index_) {
    const storage::LogIndex index = ++apply_scheduled_up_to_;
    auto entry_or = log_.At(index);
    if (!entry_or.ok()) break;  // Compacted (snapshot already applied).
    storage::LogEntry entry = std::move(entry_or).value();

    // Fragments cannot be executed (no full command bytes): CRaft gives up
    // follower reads. The apply index still advances.
    SimDuration cost = 0;
    if (!entry.IsFragment() && !entry.payload.empty()) {
      cost = state_machine_->Apply(entry);
    }
    if (options_.release_applied_payloads) {
      log_.ReleasePayloadAt(index);
    }

    const uint64_t epoch = epoch_;
    apply_lane_->Submit(cost, [this, epoch, index, cost,
                               client = entry.client_id,
                               request_id = entry.request_id,
                               term = entry.term]() {
      if (crashed_ || epoch != epoch_) return;
      applied_index_ = std::max(applied_index_, index);
      ++stats_.entries_applied;
      TracePhase(metrics::Phase::kApply, sim_->Now() - cost, sim_->Now(),
                 term, index, request_id);
      if (role_ == Role::kLeader && client != net::kInvalidNode) {
        ClientResponse cresp;
        cresp.state = AcceptState::kStrongAccept;
        cresp.request_id = request_id;
        cresp.index = index;
        cresp.term = term;
        SendTo(client, cresp.WireSize(), cresp);
      }
    });
  }
}

void RaftNode::MaybeCatchUpPeer(net::NodeId peer,
                                storage::LogIndex follower_last) {
  PeerState& ps = peer_state_[peer];
  if (follower_last != ps.last_reported) {
    ps.last_reported = follower_last;
    ps.last_advance_at = sim_->Now();
  }
  if (follower_last >= log_.LastIndex()) return;
  if (follower_last + 1 < log_.FirstIndex()) {
    // The follower's continuation point was compacted away — only a
    // snapshot can move it forward, whatever we may have enqueued before
    // it fell behind.
    SendInstallSnapshot(peer);
    return;
  }
  // Only fill in entries never handed to this peer's pipeline: everything
  // at or below max_enqueued is queued, in flight, or already delivered
  // (losses there are retried by the RPC timeout). Without this bound the
  // stale follower_last in heartbeat acks floods the dispatchers with
  // duplicates of in-flight entries.
  storage::LogIndex start = std::max(
      {follower_last + 1, ps.max_enqueued + 1, log_.FirstIndex()});
  if (sim_->Now() - ps.last_advance_at > 2 * options_.rpc_timeout) {
    // Stagnant: every pipeline copy of the missing entries was consumed
    // without an append (cached in a window that was since cleared, or
    // dropped from the queues by a leadership change while the follower
    // was partitioned). Force a re-send of the continuation — waiting for
    // the normal pipeline would deadlock when the backlog predates this
    // leader's peer state.
    start = std::max(follower_last + 1, log_.FirstIndex());
    ps.last_advance_at = sim_->Now();  // Back off between forced bursts.
  }
  const storage::LogIndex end =
      std::min(log_.LastIndex(), start + 4 * options_.dispatchers_per_follower);
  for (storage::LogIndex i = start; i <= end; ++i) {
    if (ps.queued.count(i) == 0 && ps.in_flight.count(i) == 0) {
      EnqueueForPeer(peer, i);
    }
  }
}

// ---------------------------------------------------------------------------
// Elections
// ---------------------------------------------------------------------------

void RaftNode::SetCpuSpeedFactor(double factor) {
  cpu_->set_speed_factor(factor);
  index_lane_->set_speed_factor(factor);
  apply_lane_->set_speed_factor(factor);
  log_lock_lane_->set_speed_factor(factor);
}

void RaftNode::ArmElectionTimer() {
  sim_->Cancel(election_timer_);
  const SimDuration base = options_.election_timeout;
  SimDuration delay =
      base + static_cast<SimDuration>(rng_.NextBounded(
                 static_cast<uint64_t>(std::max<SimDuration>(base, 1))));
  if (timer_skew_ != 1.0) {
    // Chaos clock skew: stretch or shrink this node's perception of the
    // timeout (floor 1 tick keeps the timer strictly in the future).
    delay = std::max<SimDuration>(
        static_cast<SimDuration>(static_cast<double>(delay) * timer_skew_), 1);
  }
  const uint64_t epoch = epoch_;
  election_timer_ = sim_->After(delay, [this, epoch]() {
    if (crashed_ || epoch != epoch_ || role_ == Role::kLeader) return;
    StartElection();
  });
}

void RaftNode::StartElection() {
  ++current_term_;
  role_ = Role::kCandidate;
  voted_for_ = id_;
  PersistHardState();
  leader_ = net::kInvalidNode;
  votes_received_.clear();
  votes_received_.insert(id_);
  ++stats_.elections_started;
  NBRAFT_LOG(Info) << "node " << id_ << " starts election, term "
                   << current_term_;
  if (tracer_ != nullptr) {
    tracer_->RecordInstant("election_start", id_, current_term_);
  }

  if (static_cast<int>(votes_received_.size()) >= quorum()) {
    BecomeLeader();
    return;
  }
  RequestVoteRequest req;
  req.term = current_term_;
  req.candidate = id_;
  req.last_log_index = log_.LastIndex();
  req.last_log_term = log_.LastTerm();
  for (net::NodeId peer : peers_) {
    SendTo(peer, req.WireSize(), req);
  }
  ArmElectionTimer();  // Retry with a fresh randomized timeout.
}

void RaftNode::HandleRequestVote(RequestVoteRequest req) {
  if (req.term > current_term_) {
    StepDown(req.term, net::kInvalidNode);
  }
  RequestVoteResponse resp;
  resp.term = current_term_;
  resp.from = id_;
  resp.granted = false;
  if (req.term == current_term_ &&
      (voted_for_ == net::kInvalidNode || voted_for_ == req.candidate)) {
    const bool up_to_date =
        req.last_log_term > log_.LastTerm() ||
        (req.last_log_term == log_.LastTerm() &&
         req.last_log_index >= log_.LastIndex());
    if (up_to_date) {
      resp.granted = true;
      voted_for_ = req.candidate;
      PersistHardState();
      ArmElectionTimer();
    }
  }
  SendTo(req.candidate, resp.WireSize(), resp);
}

void RaftNode::HandleVoteResponse(RequestVoteResponse resp) {
  if (resp.term > current_term_) {
    StepDown(resp.term, net::kInvalidNode);
    return;
  }
  if (role_ != Role::kCandidate || resp.term != current_term_ ||
      !resp.granted) {
    return;
  }
  votes_received_.insert(resp.from);
  if (static_cast<int>(votes_received_.size()) >= quorum()) {
    BecomeLeader();
  }
}

void RaftNode::BecomeLeader() {
  NBRAFT_CHECK_NE(static_cast<int>(role_), static_cast<int>(Role::kLeader));
  role_ = Role::kLeader;
  leader_ = id_;
  ++stats_.times_elected;
  NBRAFT_LOG(Info) << "node " << id_ << " elected leader, term "
                   << current_term_;
  if (tracer_ != nullptr) {
    tracer_->RecordInstant("leader_elected", id_, current_term_);
  }
  if (leader_observer_) leader_observer_(current_term_, id_);
  sim_->Cancel(election_timer_);
  election_timer_ = sim::kInvalidEventId;

  vote_list_.Clear();
  peer_state_.clear();
  entry_timing_.clear();
  fragment_cache_.clear();
  fragment_required_.clear();
  for (auto& [rpc_id, rpc] : outstanding_rpcs_) {
    sim_->Cancel(rpc.timeout_event);
  }
  outstanding_rpcs_.clear();
  // Weakly accepted cache entries belong to the previous leader's pipeline.
  window_.Clear();
  held_entries_.clear();

  // Commit a no-op in the new term so older entries can commit (Raft's
  // current-term commit rule).
  storage::LogEntry noop;
  noop.index = log_.LastIndex() + 1;
  noop.term = current_term_;
  noop.prev_term = log_.LastTerm();
  log_.Append(noop);
  PersistEntry(noop);
  ++stats_.entries_appended;
  vote_list_.AddTuple(noop.index, noop.term, id_, quorum());
  entry_timing_[noop.index].indexed_at = sim_->Now();
  ReplicateEntry(noop);
  if (peers_.empty()) {
    CommitIndices(vote_list_.AddStrongUpTo(noop.index, id_, current_term_));
  }

  BroadcastHeartbeat();
}

void RaftNode::StepDown(storage::Term term, net::NodeId leader) {
  const bool was_leader = role_ == Role::kLeader;
  if (was_leader) {
    // Tell clients of in-flight entries to retry with the new leader
    // (Sec. III-B3a: reply LEADER_CHANGED and clean the VoteList).
    while (!vote_list_.empty()) {
      const storage::LogIndex index = vote_list_.FrontIndex();
      const auto e = log_.At(index);
      if (e.ok() && e->client_id != net::kInvalidNode) {
        ClientResponse cresp;
        cresp.state = AcceptState::kLeaderChanged;
        cresp.request_id = e->request_id;
        cresp.index = index;
        cresp.term = term;
        cresp.leader_hint = leader;
        SendTo(e->client_id, cresp.WireSize(), cresp);
      }
      vote_list_.RemoveFront();
    }
    sim_->Cancel(heartbeat_timer_);
    heartbeat_timer_ = sim::kInvalidEventId;
    for (auto& [rpc_id, rpc] : outstanding_rpcs_) {
      sim_->Cancel(rpc.timeout_event);
    }
    outstanding_rpcs_.clear();
    peer_state_.clear();
    entry_timing_.clear();
    fragment_cache_.clear();
    fragment_required_.clear();
  }
  if (term > current_term_) {
    current_term_ = term;
    voted_for_ = net::kInvalidNode;
    PersistHardState();
  }
  role_ = Role::kFollower;
  leader_ = leader;
  votes_received_.clear();
  ArmElectionTimer();
}

void RaftNode::BroadcastHeartbeat() {
  if (role_ != Role::kLeader || crashed_) return;
  // Replica liveness changed? CRaft/ECRaft requirements must follow, or
  // in-flight fragmented entries needing all N acks would never commit
  // after a follower dies (CRaft's degraded-mode liveness fix).
  const int alive = AliveNodes();
  if (alive != last_alive_seen_) {
    last_alive_seen_ = alive;
    if (options_.erasure) {
      vote_list_.ForEach([this](storage::LogIndex index,
                                VoteList::Tuple* tuple) {
        const auto frag = fragment_required_.find(index);
        const int k = frag == fragment_required_.end() ? 0 : frag->second;
        tuple->required = RequiredStrong(k > 0, k);
      });
      CommitIndices(vote_list_.CollectCommittable(current_term_));
    }
  }
  for (net::NodeId peer : peers_) {
    AppendEntriesRequest hb;
    hb.term = current_term_;
    hb.leader = id_;
    hb.is_heartbeat = true;
    hb.leader_commit = commit_index_;
    hb.commit_term = log_.TermAt(commit_index_).value_or(0);
    SendTo(peer, hb.WireSize(), hb);
  }
  const uint64_t epoch = epoch_;
  heartbeat_timer_ =
      sim_->After(options_.heartbeat_interval, [this, epoch]() {
        if (crashed_ || epoch != epoch_) return;
        BroadcastHeartbeat();
      });
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

void RaftNode::MaybeTakeSnapshot() {
  if (options_.snapshot_threshold <= 0) return;
  // Fragment replicas hold no applicable state — a snapshot taken there
  // would be empty. Snapshot-based compaction is a full-replication
  // feature (CRaft pairs it with fragment reconstruction instead).
  if (options_.erasure) return;
  const storage::LogIndex applied = apply_scheduled_up_to_;
  if (applied - log_.FirstIndex() + 1 <= options_.snapshot_threshold) {
    return;
  }
  // The state machine was mutated through `applied` (mutations happen at
  // scheduling time, in order), so the snapshot names that position.
  snapshot_data_ = state_machine_->Snapshot();
  snapshot_index_ = applied;
  snapshot_term_ = log_.TermAt(applied).value_or(0);
  ++stats_.snapshots_taken;
  cpu_->Consume(PerKib(options_.costs.snapshot_cost_per_kib,
                       snapshot_data_.size()));

  const storage::LogIndex compact_upto =
      std::max<storage::LogIndex>(applied - options_.snapshot_keep_tail,
                                  log_.FirstIndex() - 1);
  if (compact_upto >= log_.FirstIndex()) {
    NBRAFT_CHECK(log_.CompactPrefix(compact_upto).ok());
  }
}

void RaftNode::SendInstallSnapshot(net::NodeId peer) {
  if (role_ != Role::kLeader || snapshot_index_ == 0) return;
  PeerState& ps = peer_state_[peer];
  if (ps.snapshot_in_flight) return;
  ps.snapshot_in_flight = true;
  ++stats_.snapshots_sent;

  InstallSnapshotRequest req;
  req.term = current_term_;
  req.leader = id_;
  req.rpc_id = next_rpc_id_++;
  req.last_included_index = snapshot_index_;
  req.last_included_term = snapshot_term_;
  req.data = snapshot_data_;

  const uint64_t rpc_id = req.rpc_id;
  const uint64_t epoch = epoch_;
  // Snapshots are large: give them a generous multiple of the RPC timeout.
  const sim::EventId timeout_event =
      sim_->After(4 * options_.rpc_timeout, [this, epoch, rpc_id]() {
        if (crashed_ || epoch != epoch_) return;
        OnRpcTimeout(rpc_id);
      });
  outstanding_rpcs_[rpc_id] =
      OutstandingRpc{peer, snapshot_index_, /*is_snapshot=*/true,
                     timeout_event};
  SendTo(peer, req.WireSize(), std::move(req));
}

void RaftNode::HandleInstallSnapshot(InstallSnapshotRequest req) {
  InstallSnapshotResponse resp;
  resp.from = id_;
  resp.rpc_id = req.rpc_id;
  if (req.term < current_term_) {
    resp.term = current_term_;
    resp.installed = false;
    resp.last_index = log_.LastIndex();
    SendTo(req.leader, resp.WireSize(), resp);
    return;
  }
  NoteLeaderContact(req.term, req.leader);
  resp.term = current_term_;

  if (req.last_included_index <= commit_index_) {
    // Already at or past the snapshot: nothing to install.
    resp.installed = false;
    resp.last_index = log_.LastIndex();
    SendTo(req.leader, resp.WireSize(), resp);
    return;
  }

  const Status restored = state_machine_->Restore(req.data);
  if (!restored.ok()) {
    NBRAFT_LOG(Warn) << "node " << id_
                     << ": snapshot restore failed: " << restored.ToString();
    resp.installed = false;
    resp.last_index = log_.LastIndex();
    SendTo(req.leader, resp.WireSize(), resp);
    return;
  }
  log_.ResetToSnapshot(req.last_included_index, req.last_included_term);
  commit_index_ = req.last_included_index;
  apply_scheduled_up_to_ = req.last_included_index;
  applied_index_ = req.last_included_index;
  snapshot_data_ = std::move(req.data);
  snapshot_index_ = req.last_included_index;
  snapshot_term_ = req.last_included_term;
  window_.Clear();
  held_entries_.clear();
  recv_time_.clear();
  ++stats_.snapshots_installed;

  const SimDuration cost =
      PerKib(options_.costs.snapshot_cost_per_kib, snapshot_data_.size());
  const uint64_t epoch = epoch_;
  resp.installed = true;
  resp.last_index = log_.LastIndex();
  cpu_->Submit(cost, [this, epoch, resp, leader = req.leader]() {
    if (crashed_ || epoch != epoch_) return;
    SendTo(leader, resp.WireSize(), resp);
  });
}

void RaftNode::HandleInstallSnapshotResponse(
    const InstallSnapshotResponse& resp) {
  const auto rpc_it = outstanding_rpcs_.find(resp.rpc_id);
  if (rpc_it != outstanding_rpcs_.end()) {
    sim_->Cancel(rpc_it->second.timeout_event);
    outstanding_rpcs_.erase(rpc_it);
  }
  if (resp.term > current_term_) {
    StepDown(resp.term, net::kInvalidNode);
    return;
  }
  if (role_ != Role::kLeader) return;
  PeerState& ps = peer_state_[resp.from];
  ps.snapshot_in_flight = false;
  ps.last_response_at = sim_->Now();
  // Continue with log entries from wherever the follower now stands.
  MaybeCatchUpPeer(resp.from, resp.last_index);
  TryDispatch(resp.from);
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

void RaftNode::HandleReadRequest(ReadRequest req) {
  ReadResponse resp;
  resp.request_id = req.request_id;
  if (options_.erasure && role_ != Role::kLeader) {
    // Fragmented replicas cannot serve reads (Table II: no follower read
    // under CRaft).
    resp.supported = false;
  } else {
    resp.supported = true;
    resp.point_count = state_machine_->PointCount(req.series_id);
  }
  SendTo(req.client, resp.WireSize(), resp);
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

std::string RaftNode::WalPath() const {
  return options_.wal_dir + "/node_" + std::to_string(id_) + ".wal";
}

void RaftNode::PersistEntry(const storage::LogEntry& entry) {
  if (durable_ == nullptr) return;
  NBRAFT_CHECK(durable_->AppendEntry(entry).ok());
}

void RaftNode::PersistTruncate(storage::LogIndex from_index) {
  if (durable_ == nullptr) return;
  NBRAFT_CHECK(durable_->AppendTruncate(from_index).ok());
}

void RaftNode::PersistHardState() {
  if (durable_ == nullptr) return;
  storage::DurableLog::HardState hs;
  hs.term = current_term_;
  hs.voted_for = voted_for_;
  NBRAFT_CHECK(durable_->AppendHardState(hs).ok());
}

void RaftNode::RecoverFromWal() {
  const std::string path = WalPath();
  if (!std::filesystem::exists(path)) return;  // Fresh node.
  auto recovered = storage::DurableLog::Recover(path);
  NBRAFT_CHECK(recovered.ok()) << recovered.status().ToString();
  log_ = std::move(recovered->log);
  current_term_ = recovered->hard_state.term;
  voted_for_ = recovered->hard_state.voted_for;
  NBRAFT_LOG(Info) << "node " << id_ << " recovered " << log_.LastIndex()
                   << " entries, term " << current_term_ << " from WAL";
}

void RaftNode::NoteLeaderContact(storage::Term term, net::NodeId leader) {
  if (term > current_term_ || role_ != Role::kFollower) {
    StepDown(term, leader);
  }
  leader_ = leader;
  ArmElectionTimer();
}

int RaftNode::AliveNodes() const {
  int alive = 1;  // Self.
  for (const net::NodeId peer : peers_) {
    if (IsPeerAlive(peer)) ++alive;
  }
  return alive;
}

bool RaftNode::IsPeerAlive(net::NodeId peer) const {
  const auto it = peer_state_.find(peer);
  if (it == peer_state_.end()) return true;  // No evidence yet: optimistic.
  if (it->second.last_response_at == 0) return true;
  return sim_->Now() - it->second.last_response_at <
         3 * options_.heartbeat_interval;
}

int RaftNode::RequiredStrong(bool fragmented, int k) const {
  const int n = cluster_size();
  const int f = (n - 1) / 2;
  const int dead = n - AliveNodes();
  const int remaining_faults = std::max(0, f - dead);
  if (fragmented) {
    // A committed fragment set must still be decodable after every
    // remaining tolerated fault: k + (f - dead) holders.
    return std::min(n, k + remaining_faults);
  }
  // Full copies: one survivor after the remaining tolerated faults, but
  // never less than a majority of the full cluster for term safety.
  return std::max(quorum(), remaining_faults + 1);
}

int RaftNode::EffectiveKBucket() const {
  if (options_.kbucket_size == 0) return 0;
  const int followers = static_cast<int>(peers_.size());
  if (followers <= 1) return 0;  // Nothing to relay through (paper Fig. 15).
  if (options_.kbucket_size < 0) return (followers + 1) / 2;
  return std::min(options_.kbucket_size, followers);
}

SimDuration RaftNode::FollowerAppendCost(
    const storage::LogEntry& entry) const {
  return options_.costs.follower_append_base +
         PerKib(options_.costs.follower_append_per_kib, entry.WireSize());
}

}  // namespace nbraft::raft
