#include "raft/raft_node.h"

#include <filesystem>
#include <utility>

#include "common/logging.h"

namespace nbraft::raft {

RaftNode::RaftNode(sim::Simulator* sim, net::SimNetwork* network,
                   net::NodeId id, std::vector<net::NodeId> peers,
                   RaftOptions options,
                   std::unique_ptr<tsdb::StateMachine> state_machine)
    : sim_(sim),
      network_(network),
      id_(id),
      peers_(std::move(peers)),
      options_(options),
      state_machine_(std::move(state_machine)),
      rng_(sim->rng()->Next()) {
  NBRAFT_CHECK(state_machine_ != nullptr);
  NBRAFT_CHECK(options_.wal_dir.empty() || options_.snapshot_threshold <= 0)
      << "real WAL durability does not persist compaction";
  cpu_ = std::make_unique<sim::CpuExecutor>(
      sim_, options_.cpu_lanes, "node" + std::to_string(id_) + ".cpu");
  cpu_->set_switch_cost(options_.costs.context_switch_cost,
                        options_.costs.max_switch_overhead);
  index_lane_ = std::make_unique<sim::CpuExecutor>(
      sim_, 1, "node" + std::to_string(id_) + ".index");
  apply_lane_ = std::make_unique<sim::CpuExecutor>(
      sim_, 1, "node" + std::to_string(id_) + ".apply");
  log_lock_lane_ = std::make_unique<sim::CpuExecutor>(
      sim_, 1, "node" + std::to_string(id_) + ".loglock");
  log_lock_lane_->set_switch_cost(options_.costs.lock_switch_cost,
                                  options_.costs.max_switch_overhead);
  election_ = std::make_unique<ElectionEngine>(this);
  pipeline_ = std::make_unique<ReplicationPipeline>(this);
  ingress_ = std::make_unique<FollowerIngress>(this);
  applier_ = std::make_unique<CommitApplier>(this);
}

RaftNode::~RaftNode() = default;

void RaftNode::Start() {
  NBRAFT_CHECK(!started_);
  started_ = true;
  if (!options_.wal_dir.empty()) {
    RecoverFromWal();
    durable_ = std::make_unique<storage::DurableLog>();
    NBRAFT_CHECK(durable_->Open(WalPath()).ok());
  }
  network_->RegisterEndpoint(
      id_, [this](net::Message&& msg) { HandleMessage(std::move(msg)); });
  election_->ArmElectionTimer();
}

void RaftNode::Crash() {
  if (core_.crashed) return;
  core_.crashed = true;
  network_->SetNodeUp(id_, false);
  // Volatile state is lost; durable state (term, vote, log) survives, and
  // the state machine is durable by the paper's Sec. IV assumptions. Each
  // engine drops its own caches and cancels its own timers.
  election_->OnCrash();
  pipeline_->ResetLeaderState();
  ingress_->OnCrash();
  applier_->ResetLeaderState();
  core_.role = Role::kFollower;
  core_.leader = net::kInvalidNode;
  if (durable_ != nullptr) {
    // Real durability: everything in memory dies with the process; only
    // the WAL file survives.
    NBRAFT_CHECK(durable_->Close().ok());
    durable_.reset();
    log_ = storage::RaftLog();
    core_.current_term = 0;
    core_.voted_for = net::kInvalidNode;
    core_.commit_index = 0;
    core_.applied_index = 0;
    core_.apply_scheduled_up_to = 0;
    core_.snapshot_data.clear();
    core_.snapshot_index = 0;
    core_.snapshot_term = 0;
    state_machine_->Reset();
  }
}

void RaftNode::Restart() {
  NBRAFT_CHECK(core_.crashed);
  core_.crashed = false;
  ++core_.epoch;
  if (!options_.wal_dir.empty()) {
    RecoverFromWal();
    durable_ = std::make_unique<storage::DurableLog>();
    NBRAFT_CHECK(durable_->Open(WalPath()).ok());
  }
  network_->SetNodeUp(id_, true);
  election_->ArmElectionTimer();
}

void RaftNode::TriggerElection() {
  if (core_.crashed) return;
  election_->StartElection();
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

void RaftNode::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  ingress_->OnTracerChanged();
}

void RaftNode::TracePhase(metrics::Phase phase, SimTime start, SimTime end,
                          int64_t term, int64_t index, uint64_t request_id) {
  stats_.breakdown.Add(phase, end - start);
  if (tracer_ != nullptr) {
    tracer_->RecordSpan(phase, id_, term, index, request_id, start, end);
  }
}

int64_t RaftNode::TraceTermAt(storage::LogIndex index) const {
  if (tracer_ == nullptr) return 0;
  return log_.TermAt(index).value_or(0);
}

// ---------------------------------------------------------------------------
// Message plumbing
// ---------------------------------------------------------------------------

void RaftNode::HandleMessage(net::Message&& msg) {
  if (core_.crashed) return;
  const SimTime received_at = sim_->Now();
  if (auto* ae = msg.payload.Get<AppendEntriesRequest>()) {
    if (!ae->is_heartbeat) {
      TracePhase(metrics::Phase::kTransLeaderFollower, msg.sent_at,
                 received_at, ae->entry.term, ae->entry.index,
                 ae->entry.request_id);
    }
    ingress_->HandleAppendEntries(std::move(*ae), received_at);
  } else if (auto* aer = msg.payload.Get<AppendEntriesResponse>()) {
    pipeline_->HandleAppendResponse(std::move(*aer));
  } else if (auto* rv = msg.payload.Get<RequestVoteRequest>()) {
    election_->HandleRequestVote(*rv);
  } else if (auto* rvr = msg.payload.Get<RequestVoteResponse>()) {
    election_->HandleVoteResponse(*rvr);
  } else if (auto* cr = msg.payload.Get<ClientRequest>()) {
    pipeline_->HandleClientRequest(std::move(*cr), received_at, msg.sent_at);
  } else if (auto* is = msg.payload.Get<InstallSnapshotRequest>()) {
    ingress_->HandleInstallSnapshot(std::move(*is));
  } else if (auto* isr = msg.payload.Get<InstallSnapshotResponse>()) {
    pipeline_->HandleInstallSnapshotResponse(*isr);
  } else if (auto* rr = msg.payload.Get<ReadRequest>()) {
    HandleReadRequest(*rr);
  } else {
    NBRAFT_LOG(Warn) << "node " << id_ << ": unknown message type";
  }
}

void RaftNode::SendTo(net::NodeId to, size_t bytes,
                      net::PayloadRef payload) {
  network_->Send(id_, to, bytes, std::move(payload));
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

void RaftNode::HandleReadRequest(ReadRequest req) {
  ReadResponse resp;
  resp.request_id = req.request_id;
  if (options_.erasure && core_.role != Role::kLeader) {
    // Fragmented replicas cannot serve reads (Table II: no follower read
    // under CRaft).
    resp.supported = false;
  } else {
    resp.supported = true;
    resp.point_count = state_machine_->PointCount(req.series_id);
  }
  SendTo(req.client, resp.WireSize(), resp);
}

// ---------------------------------------------------------------------------
// CPU
// ---------------------------------------------------------------------------

void RaftNode::SetCpuSpeedFactor(double factor) {
  cpu_->set_speed_factor(factor);
  index_lane_->set_speed_factor(factor);
  apply_lane_->set_speed_factor(factor);
  log_lock_lane_->set_speed_factor(factor);
}

// ---------------------------------------------------------------------------
// Durability
// ---------------------------------------------------------------------------

std::string RaftNode::WalPath() const {
  return options_.wal_dir + "/node_" + std::to_string(id_) + ".wal";
}

void RaftNode::PersistEntry(const storage::LogEntry& entry) {
  if (durable_ == nullptr) return;
  NBRAFT_CHECK(durable_->AppendEntry(entry).ok());
}

void RaftNode::PersistTruncate(storage::LogIndex from_index) {
  if (durable_ == nullptr) return;
  NBRAFT_CHECK(durable_->AppendTruncate(from_index).ok());
}

void RaftNode::PersistHardState() {
  if (durable_ == nullptr) return;
  storage::DurableLog::HardState hs;
  hs.term = core_.current_term;
  hs.voted_for = core_.voted_for;
  NBRAFT_CHECK(durable_->AppendHardState(hs).ok());
}

void RaftNode::RecoverFromWal() {
  const std::string path = WalPath();
  if (!std::filesystem::exists(path)) return;  // Fresh node.
  auto recovered = storage::DurableLog::Recover(path);
  NBRAFT_CHECK(recovered.ok()) << recovered.status().ToString();
  log_ = std::move(recovered->log);
  core_.current_term = recovered->hard_state.term;
  core_.voted_for = recovered->hard_state.voted_for;
  NBRAFT_LOG(Info) << "node " << id_ << " recovered " << log_.LastIndex()
                   << " entries, term " << core_.current_term << " from WAL";
}

}  // namespace nbraft::raft
