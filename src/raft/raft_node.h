#ifndef NBRAFT_RAFT_RAFT_NODE_H_
#define NBRAFT_RAFT_RAFT_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "nbraft/sliding_window.h"
#include "nbraft/vote_list.h"
#include "net/network.h"
#include "obs/tracer.h"
#include "raft/commit_applier.h"
#include "raft/durability.h"
#include "raft/election_engine.h"
#include "raft/follower_ingress.h"
#include "raft/membership.h"
#include "raft/node_context.h"
#include "raft/node_stats.h"
#include "raft/recovery_stm.h"
#include "raft/replication_pipeline.h"
#include "raft/types.h"
#include "sim/cpu_executor.h"
#include "sim/simulator.h"
#include "storage/durable_log.h"
#include "storage/raft_log.h"
#include "storage/sim_disk.h"
#include "tsdb/state_machine.h"

namespace nbraft::raft {

/// One consensus replica. A single node implements Raft, NB-Raft, CRaft,
/// ECRaft, KRaft and VGRaft via `RaftOptions` (original Raft is exactly
/// window_size = 0 with every flag off).
///
/// The node is a thin message router over four engines that share state
/// through the NodeContext seam it implements:
///
///   - ElectionEngine       timers, votes, term transitions, step-down
///   - ReplicationPipeline  leader fan-out: dispatchers, RPCs, catch-up
///   - FollowerIngress      append decision tree, sliding window, held loop
///   - CommitApplier        VoteList commit, ordered apply, compaction
///
/// RaftNode itself owns only what must live in one place: the durable
/// state (term, vote, log, WAL), the CoreState every engine reads, the CPU
/// lanes, the network endpoint and the stats/tracer sinks. Everything is
/// event-driven on the deterministic simulator.
class RaftNode : public NodeContext {
 public:
  RaftNode(sim::Simulator* sim, net::SimNetwork* network, net::NodeId id,
           std::vector<net::NodeId> peers, RaftOptions options,
           std::unique_ptr<tsdb::StateMachine> state_machine);
  ~RaftNode() override;

  RaftNode(const RaftNode&) = delete;
  RaftNode& operator=(const RaftNode&) = delete;

  /// Registers the network endpoint and arms the election timer.
  void Start();

  /// Crash-stops the node: drops volatile state (role, window, vote list,
  /// pending RPCs), keeps the durable state (log, term, vote).
  void Crash();

  /// Restarts a crashed node as a follower.
  void Restart();

  /// Forces an immediate election (tests / harness bootstrap).
  void TriggerElection();

  /// True between Start() and destruction (elastic harness: nodes that are
  /// constructed but never started take no part in the cluster).
  bool started() const { return started_; }

  // ---- Introspection ----
  net::NodeId id() const override { return id_; }
  Role role() const { return core_.role; }
  bool crashed() const { return core_.crashed; }
  storage::Term current_term() const { return core_.current_term; }
  net::NodeId leader_hint() const { return core_.leader; }
  const storage::RaftLog& log() const override { return log_; }
  storage::LogIndex commit_index() const { return core_.commit_index; }
  storage::LogIndex applied_index() const { return core_.applied_index; }
  const SlidingWindow& window() const { return ingress_->window(); }
  const VoteList& vote_list() const { return applier_->vote_list(); }
  /// Highest index this node has claimed durably stored (safety oracle).
  storage::LogIndex strong_ack_frontier() const {
    return core_.strong_ack_frontier;
  }
  bool heal_quarantine() const { return core_.heal_quarantine; }
  /// The node's simulated disk, if configured (chaos fault injection).
  /// Survives crash/restart cycles — it is the durable image.
  storage::SimDisk* disk() { return disk_.get(); }
  const storage::SimDisk* disk() const { return disk_.get(); }
  const RaftOptions& options() const override { return options_; }
  const tsdb::StateMachine& state_machine() const { return *state_machine_; }
  tsdb::StateMachine* mutable_state_machine() override {
    return state_machine_.get();
  }
  NodeStats& stats() override { return stats_; }
  const NodeStats& stats() const { return stats_; }
  sim::CpuExecutor* cpu() override { return cpu_; }

  /// Attaches the lifecycle tracer (nullptr = off, the default). Every
  /// phase the node adds to its `Breakdown` is mirrored as a span, and the
  /// sliding window's insert/evict/flush transitions become instants.
  void set_tracer(obs::Tracer* tracer);

  /// Attaches the cluster flight recorder (nullptr = off, the default).
  /// Role/term transitions, decoded RPC send/recv, window transitions,
  /// commit/apply advances, disk write/fsync activity and crash/recovery
  /// milestones are recorded into the node's journal ring.
  void set_journal(obs::Journal* journal);

  using LeaderObserver = ElectionEngine::LeaderObserver;
  /// Registers a leadership callback (multicast — the safety oracle and
  /// the shard router both listen; see ElectionEngine::add_leader_observer).
  void add_leader_observer(LeaderObserver observer) {
    election_->add_leader_observer(std::move(observer));
  }
  /// Historical name; appends like add_leader_observer.
  void set_leader_observer(LeaderObserver observer) {
    election_->add_leader_observer(std::move(observer));
  }

  /// Registers a configuration-change callback (multicast — the shard
  /// router listens to invalidate stale leader hints for removed nodes).
  void add_config_observer(MembershipEngine::ConfigObserver observer) {
    membership_->add_config_observer(std::move(observer));
  }

  /// Multiplies the randomized election timeout (chaos clock skew; 1.0 =
  /// nominal). Applies from the next time the timer is armed.
  void set_timer_skew(double skew) { election_->set_timer_skew(skew); }
  double timer_skew() const { return election_->timer_skew(); }

  /// Chaos vote-withholder adversary: while set, this node refuses every
  /// vote and pre-vote request (term bookkeeping still runs).
  void set_withhold_votes(bool withhold) {
    election_->set_withhold_votes(withhold);
  }
  bool withhold_votes() const { return election_->withhold_votes(); }

  /// Degrades (or restores) all of this node's CPU lanes — the chaos
  /// slow-node fault. Charged costs divide by the factor, so factor < 1
  /// slows the node down and 1.0 restores nominal speed.
  void SetCpuSpeedFactor(double factor);

  /// Entries sitting in dispatcher queues across all peers (telemetry).
  size_t DispatcherQueueDepth() const {
    return pipeline_->DispatcherQueueDepth();
  }
  /// AppendEntries / InstallSnapshot RPCs currently on the wire.
  size_t OutstandingRpcCount() const {
    return pipeline_->OutstandingRpcCount();
  }
  /// Durable records staged but not yet covered by a completed fsync
  /// (the `storage.barriers_pending` pull source; 0 in instant modes).
  uint64_t PendingBarrierRecords() const {
    return durability_->pending_records();
  }
  /// True when every leader-only container (dispatcher queues, in-flight
  /// RPCs, fragment caches, VoteList, per-entry timing) is empty. Step-down
  /// and crash must leave this true — regression-tested.
  bool LeaderVolatileStateEmpty() const {
    return pipeline_->LeaderStateEmpty() && applier_->LeaderStateEmpty();
  }

  // ---- NodeContext (the seam the engines program against) ----
  sim::Simulator* simulator() override { return sim_; }
  const std::vector<net::NodeId>& peer_ids() const override {
    return peers_;
  }
  nbraft::Rng& rng() override { return rng_; }
  obs::Tracer* tracer() const override { return tracer_; }
  obs::Journal* journal() const override { return journal_; }
  sim::CpuExecutor* index_lane() override { return index_lane_.get(); }
  sim::CpuExecutor* apply_lane() override { return apply_lane_.get(); }
  sim::CpuExecutor* log_lock_lane() override { return log_lock_lane_.get(); }
  CoreState& core() override { return core_; }
  const CoreState& core() const override { return core_; }
  storage::RaftLog& log() override { return log_; }
  void SendTo(net::NodeId to, size_t bytes, net::PayloadRef payload) override;
  void PersistEntry(const storage::LogEntry& entry) override;
  void PersistTruncate(storage::LogIndex from_index) override;
  void PersistHardState() override;
  void PersistSnapshot(storage::LogIndex index, storage::Term term,
                       const std::string& data, bool installed) override;
  void PersistCompact(storage::LogIndex upto) override;
  bool DurabilityInstant() const override { return durability_->instant(); }
  void WhenDurable(std::function<void()> fn) override {
    durability_->WhenDurable(std::move(fn));
  }
  storage::LogIndex DurableEntryFrontier() const override;
  void OnStorageFailure(const Status& status) override;
  void ClearHealQuarantine() override;
  void TracePhase(metrics::Phase phase, SimTime start, SimTime end,
                  int64_t term, int64_t index,
                  uint64_t request_id = 0) override;
  int64_t TraceTermAt(storage::LogIndex index) const override;
  ElectionEngine* election() override { return election_.get(); }
  ReplicationPipeline* pipeline() override { return pipeline_.get(); }
  FollowerIngress* ingress() override { return ingress_.get(); }
  CommitApplier* applier() override { return applier_.get(); }
  MembershipEngine* membership() override { return membership_.get(); }
  RecoveryStm* recovery() override { return recovery_.get(); }
  void PersistConfig(const std::string& encoded,
                     storage::LogIndex at) override;

 private:
  // ---- Message plumbing ----
  void HandleMessage(net::Message&& msg);

  // ---- Membership ----
  /// Activates the membership engine from options' initial_config (no-op
  /// when unset — the dormant fixed-roster default — or already active).
  void BootstrapMembership();

  // ---- Reads ----
  void HandleReadRequest(ReadRequest req);

  // ---- Durability (wal_dir file, simulated disk, or injected backend) ----
  std::string WalPath() const;
  /// Replays the WAL file into log/term/vote/snapshot (skips fresh nodes).
  void RecoverFromWal();
  /// Folds the simulated disk's durable record stream back into memory and
  /// repairs (quarantining) a corruption-cut stream.
  void RecoverFromDisk();
  /// Installs a recovered state: log, hard state, snapshot restore, heal
  /// quarantine on corruption.
  void ApplyRecovered(storage::DurableLog::RecoveredState&& recovered);
  /// Builds this lifetime's DurableLog for the configured mode (if any)
  /// and points the coordinator at it.
  void OpenDurableLog();

  sim::Simulator* sim_;
  net::SimNetwork* network_;
  const net::NodeId id_;
  std::vector<net::NodeId> peers_;
  RaftOptions options_;
  std::unique_ptr<tsdb::StateMachine> state_machine_;
  nbraft::Rng rng_;

  // Modelled CPU resources. The general pool is owned unless
  // options.shared_cpu injected the physical host's shared pool.
  std::unique_ptr<sim::CpuExecutor> owned_cpu_;
  sim::CpuExecutor* cpu_ = nullptr;               ///< General worker pool.
  std::unique_ptr<sim::CpuExecutor> index_lane_;  ///< Serial indexing lock.
  std::unique_ptr<sim::CpuExecutor> apply_lane_;  ///< Ordered apply.
  std::unique_ptr<sim::CpuExecutor> log_lock_lane_;  ///< Follower log lock.

  /// Durable + volatile consensus core shared by the engines.
  CoreState core_;
  storage::RaftLog log_;
  bool started_ = false;

  /// Real write-ahead log (nullptr in modelled-durability mode). Non-null
  /// implies a crash wipes all in-memory state and Restart recovers it.
  std::unique_ptr<storage::DurableLog> durable_;
  /// Simulated disk image (options.disk.enabled); outlives crashes.
  std::unique_ptr<storage::SimDisk> disk_;
  /// Fsync barriers + ack gating over durable_.
  std::unique_ptr<DurabilityCoordinator> durability_;
  /// Collapses a burst of storage failures into one step-down/halt.
  bool storage_failure_pending_ = false;

  obs::Tracer* tracer_ = nullptr;
  obs::Journal* journal_ = nullptr;
  NodeStats stats_;

  // The engines (constructed after the lanes; they capture `this` as their
  // NodeContext).
  std::unique_ptr<ElectionEngine> election_;
  std::unique_ptr<ReplicationPipeline> pipeline_;
  std::unique_ptr<FollowerIngress> ingress_;
  std::unique_ptr<CommitApplier> applier_;
  /// Dynamic membership (always constructed, dormant until Bootstrap).
  std::unique_ptr<MembershipEngine> membership_;
  /// Leader-side learner catch-up state machine.
  std::unique_ptr<RecoveryStm> recovery_;
};

}  // namespace nbraft::raft

#endif  // NBRAFT_RAFT_RAFT_NODE_H_
