#ifndef NBRAFT_RAFT_RAFT_NODE_H_
#define NBRAFT_RAFT_RAFT_NODE_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "craft/reed_solomon.h"
#include "metrics/breakdown.h"
#include "metrics/histogram.h"
#include "nbraft/sliding_window.h"
#include "nbraft/vote_list.h"
#include "net/network.h"
#include "obs/tracer.h"
#include "raft/messages.h"
#include "raft/types.h"
#include "sim/cpu_executor.h"
#include "sim/simulator.h"
#include "storage/durable_log.h"
#include "storage/raft_log.h"
#include "tsdb/state_machine.h"

namespace nbraft::raft {

/// Per-node metrics the harness aggregates after a run.
struct NodeStats {
  metrics::Breakdown breakdown;
  metrics::Histogram wait_hist;       ///< t_wait(F) per delayed entry.
  metrics::Histogram append_latency;  ///< Receive -> appended, per entry.
  uint64_t entries_appended = 0;
  uint64_t entries_committed = 0;
  uint64_t entries_applied = 0;
  uint64_t weak_accepts_sent = 0;
  uint64_t strong_accepts_sent = 0;
  uint64_t mismatches_sent = 0;
  uint64_t window_inserts = 0;
  uint64_t window_overflows = 0;  ///< diff > w arrivals (held, blocking).
  uint64_t elections_started = 0;
  uint64_t times_elected = 0;
  uint64_t rpc_timeouts = 0;
  uint64_t degraded_entries = 0;  ///< CRaft/ECRaft degraded-mode entries.
  uint64_t snapshots_taken = 0;
  uint64_t snapshots_sent = 0;
  uint64_t snapshots_installed = 0;
};

/// One consensus replica. A single class implements Raft, NB-Raft, CRaft,
/// ECRaft, KRaft and VGRaft via `RaftOptions` (original Raft is exactly
/// window_size = 0 with every flag off).
///
/// The node is entirely event-driven on the deterministic simulator: the
/// network delivers typed messages, CPU work is charged to per-node
/// executors, and timers drive elections and heartbeats.
class RaftNode {
 public:
  RaftNode(sim::Simulator* sim, net::SimNetwork* network, net::NodeId id,
           std::vector<net::NodeId> peers, RaftOptions options,
           std::unique_ptr<tsdb::StateMachine> state_machine);
  ~RaftNode();

  RaftNode(const RaftNode&) = delete;
  RaftNode& operator=(const RaftNode&) = delete;

  /// Registers the network endpoint and arms the election timer.
  void Start();

  /// Crash-stops the node: drops volatile state (role, window, vote list,
  /// pending RPCs), keeps the durable state (log, term, vote).
  void Crash();

  /// Restarts a crashed node as a follower.
  void Restart();

  /// Forces an immediate election (tests / harness bootstrap).
  void TriggerElection();

  // ---- Introspection ----
  net::NodeId id() const { return id_; }
  Role role() const { return role_; }
  bool crashed() const { return crashed_; }
  storage::Term current_term() const { return current_term_; }
  net::NodeId leader_hint() const { return leader_; }
  const storage::RaftLog& log() const { return log_; }
  storage::LogIndex commit_index() const { return commit_index_; }
  storage::LogIndex applied_index() const { return applied_index_; }
  const SlidingWindow& window() const { return window_; }
  const VoteList& vote_list() const { return vote_list_; }
  const RaftOptions& options() const { return options_; }
  const tsdb::StateMachine& state_machine() const { return *state_machine_; }
  tsdb::StateMachine* mutable_state_machine() { return state_machine_.get(); }
  NodeStats& stats() { return stats_; }
  const NodeStats& stats() const { return stats_; }
  sim::CpuExecutor* cpu() { return cpu_.get(); }

  /// Attaches the lifecycle tracer (nullptr = off, the default). Every
  /// phase the node adds to its `Breakdown` is mirrored as a span, and the
  /// sliding window's insert/evict/flush transitions become instants.
  void set_tracer(obs::Tracer* tracer);

  /// Invoked exactly once per term this node wins, from BecomeLeader().
  /// The chaos safety oracle uses it to check election safety (<= 1 leader
  /// per term) without polling.
  using LeaderObserver = std::function<void(storage::Term, net::NodeId)>;
  void set_leader_observer(LeaderObserver observer) {
    leader_observer_ = std::move(observer);
  }

  /// Multiplies the randomized election timeout (chaos clock skew; 1.0 =
  /// nominal). < 1 makes this node trigger-happy, > 1 sluggish. Applies
  /// from the next time the timer is armed.
  void set_timer_skew(double skew) { timer_skew_ = skew; }
  double timer_skew() const { return timer_skew_; }

  /// Degrades (or restores) all of this node's CPU lanes — the chaos
  /// slow-node fault. Charged costs divide by the factor, so factor < 1
  /// slows the node down and 1.0 restores nominal speed.
  void SetCpuSpeedFactor(double factor);

  /// Entries sitting in dispatcher queues across all peers (telemetry).
  size_t DispatcherQueueDepth() const;
  /// AppendEntries / InstallSnapshot RPCs currently on the wire.
  size_t OutstandingRpcCount() const { return outstanding_rpcs_.size(); }

  int cluster_size() const { return static_cast<int>(peers_.size()) + 1; }
  int quorum() const { return cluster_size() / 2 + 1; }

 private:
  struct QueuedEntry {
    storage::LogIndex index = 0;
    SimTime enqueued_at = 0;
  };

  /// Leader-side replication state for one follower connection.
  struct PeerState {
    std::deque<QueuedEntry> queue;
    std::set<storage::LogIndex> queued;     ///< Mirrors `queue` for dedup.
    std::set<storage::LogIndex> in_flight;  ///< Indices on the wire.
    int busy_dispatchers = 0;
    bool snapshot_in_flight = false;
    storage::LogIndex mismatch_probe = -1;  ///< Backtracking cursor.
    /// Highest index ever enqueued for this peer; heartbeat catch-up only
    /// fills in above it (the pipeline below is in flight or completed —
    /// losses there are the RPC timeout's job, not catch-up's).
    storage::LogIndex max_enqueued = 0;
    SimTime last_response_at = 0;           ///< Liveness estimate.
    /// Stagnation detection: last log end the follower reported and when
    /// it last advanced. A follower stuck below the commit index (e.g.
    /// weakly accepted entries wiped with its window) gets a forced
    /// re-send.
    storage::LogIndex last_reported = -1;
    SimTime last_advance_at = 0;
  };

  /// An in-flight AppendEntries or InstallSnapshot RPC.
  struct OutstandingRpc {
    net::NodeId peer = net::kInvalidNode;
    storage::LogIndex index = 0;
    bool is_snapshot = false;
    sim::EventId timeout_event = sim::kInvalidEventId;
  };

  /// A received entry the follower cannot yet place (diff > max(w, 1)):
  /// the RPC stays open — this is the paper's blue waiting loop.
  struct HeldEntry {
    AppendEntriesRequest request;
    SimTime received_at = 0;
  };

  /// Per-index timestamps for the Fig. 4 breakdown.
  struct EntryTiming {
    SimTime indexed_at = 0;
    SimTime first_strong_at = 0;
  };

  // ---- Message plumbing ----
  void HandleMessage(net::Message&& msg);
  void SendTo(net::NodeId to, size_t bytes, std::any payload);

  // ---- Client request path (leader) ----
  void HandleClientRequest(ClientRequest req, SimTime received_at,
                           SimTime sent_at);
  void IndexAndReplicate(ClientRequest req);
  void ReplicateEntry(const storage::LogEntry& entry);
  void EnqueueForPeer(net::NodeId peer, storage::LogIndex index);
  void TryDispatch(net::NodeId peer);
  void SendAppendRpc(net::NodeId peer, storage::LogIndex index);
  void OnRpcTimeout(uint64_t rpc_id);

  // ---- Follower append path ----
  void HandleAppendEntries(AppendEntriesRequest req, SimTime received_at);
  /// Decides what to do with an arriving entry: duplicate ack, truncate &
  /// replace, direct append (+ window flush), window caching, or holding
  /// it in the waiting loop.
  void ProcessEntry(const AppendEntriesRequest& req, SimTime received_at,
                    bool from_held_queue);
  void AppendAndFlush(const AppendEntriesRequest& req, SimTime received_at,
                      bool truncate_first);
  void RespondAppend(const AppendEntriesRequest& req, AcceptState state,
                     storage::LogIndex last_index, storage::Term last_term);
  void RecheckHeldEntries();
  /// Advances the follower commit index to min(leader_commit,
  /// verified_up_to), where `verified_up_to` bounds the prefix known to
  /// match the leader's log (never advance over an unverified tail).
  void AdvanceFollowerCommit(storage::LogIndex leader_commit,
                             storage::LogIndex verified_up_to);

  // ---- Leader response path ----
  void HandleAppendResponse(AppendEntriesResponse resp);
  void CommitIndices(const std::vector<storage::LogIndex>& indices);
  void ApplyReadyEntries();
  void MaybeCatchUpPeer(net::NodeId peer, storage::LogIndex follower_last);

  // ---- Elections ----
  void ArmElectionTimer();
  void StartElection();
  void HandleRequestVote(RequestVoteRequest req);
  void HandleVoteResponse(RequestVoteResponse resp);
  void BecomeLeader();
  void StepDown(storage::Term term, net::NodeId leader);
  void BroadcastHeartbeat();

  // ---- Snapshots ----
  /// Compacts the log once enough applied entries accumulated.
  void MaybeTakeSnapshot();
  void SendInstallSnapshot(net::NodeId peer);
  void HandleInstallSnapshot(InstallSnapshotRequest req);
  void HandleInstallSnapshotResponse(const InstallSnapshotResponse& resp);

  // ---- Reads ----
  void HandleReadRequest(ReadRequest req);

  // ---- Durability (real WAL; active when options.wal_dir is set) ----
  void PersistEntry(const storage::LogEntry& entry);
  void PersistTruncate(storage::LogIndex from_index);
  void PersistHardState();
  std::string WalPath() const;
  /// Replays the WAL into log/term/vote (no-op without wal_dir).
  void RecoverFromWal();

  // ---- Observability ----

  /// Forwards window transitions to the tracer (detached when untraced, so
  /// the window keeps its zero-overhead fast path).
  class WindowTraceAdapter : public SlidingWindow::Observer {
   public:
    explicit WindowTraceAdapter(RaftNode* node) : node_(node) {}
    void OnInsert(storage::LogIndex index, size_t occupancy) override;
    void OnEvict(storage::LogIndex index, size_t occupancy) override;
    void OnFlush(storage::LogIndex first, size_t count,
                 size_t occupancy) override;

   private:
    RaftNode* node_;
  };

  /// Accounts `end - start` to the Fig. 4 breakdown and, when traced,
  /// records the matching lifecycle span. Keeping both writes in one place
  /// is what makes the trace/Breakdown parity check exact.
  void TracePhase(metrics::Phase phase, SimTime start, SimTime end,
                  int64_t term, int64_t index, uint64_t request_id = 0);

  /// Term of the local entry at `index`, for span keys; only paid when the
  /// tracer is attached.
  int64_t TraceTermAt(storage::LogIndex index) const;

  // ---- Helpers ----
  int AliveNodes() const;
  int RequiredStrong(bool fragmented, int k) const;
  int EffectiveKBucket() const;
  bool IsPeerAlive(net::NodeId peer) const;
  SimDuration FollowerAppendCost(const storage::LogEntry& entry) const;
  void NoteLeaderContact(storage::Term term, net::NodeId leader);

  sim::Simulator* sim_;
  net::SimNetwork* network_;
  const net::NodeId id_;
  std::vector<net::NodeId> peers_;
  RaftOptions options_;
  std::unique_ptr<tsdb::StateMachine> state_machine_;
  nbraft::Rng rng_;

  // Modelled CPU resources.
  std::unique_ptr<sim::CpuExecutor> cpu_;         ///< General worker pool.
  std::unique_ptr<sim::CpuExecutor> index_lane_;  ///< Serial indexing lock.
  std::unique_ptr<sim::CpuExecutor> apply_lane_;  ///< Ordered apply.
  std::unique_ptr<sim::CpuExecutor> log_lock_lane_;  ///< Follower log lock.

  // ---- Durable state ----
  storage::Term current_term_ = 0;
  net::NodeId voted_for_ = net::kInvalidNode;
  storage::RaftLog log_;

  // ---- Volatile state ----
  bool started_ = false;
  bool crashed_ = false;
  Role role_ = Role::kFollower;
  net::NodeId leader_ = net::kInvalidNode;
  storage::LogIndex commit_index_ = 0;
  storage::LogIndex applied_index_ = 0;
  storage::LogIndex apply_scheduled_up_to_ = 0;

  SlidingWindow window_;
  /// Held (blocked) arrivals ordered by entry index, so a log advance only
  /// touches the entries it actually unblocks.
  std::multimap<storage::LogIndex, HeldEntry> held_entries_;
  bool in_recheck_ = false;
  /// Receive time of window-cached entries, for t_wait(F) accounting.
  std::unordered_map<storage::LogIndex, SimTime> recv_time_;
  /// Bumped on restart so stale scheduled callbacks become no-ops.
  uint64_t epoch_ = 0;

  // Leader state.
  VoteList vote_list_;
  std::map<net::NodeId, PeerState> peer_state_;
  std::unordered_map<uint64_t, OutstandingRpc> outstanding_rpcs_;
  std::unordered_map<storage::LogIndex, std::vector<std::string>>
      fragment_cache_;
  std::unordered_map<storage::LogIndex, int> fragment_required_;
  std::map<storage::LogIndex, EntryTiming> entry_timing_;
  std::set<net::NodeId> votes_received_;
  uint64_t next_rpc_id_ = 1;
  int last_alive_seen_ = -1;

  /// Real write-ahead log (nullptr in modelled-durability mode).
  std::unique_ptr<storage::DurableLog> durable_;

  // Latest snapshot (durable): state bytes and the log position it covers.
  std::string snapshot_data_;
  storage::LogIndex snapshot_index_ = 0;
  storage::Term snapshot_term_ = 0;

  sim::EventId election_timer_ = sim::kInvalidEventId;
  sim::EventId heartbeat_timer_ = sim::kInvalidEventId;

  obs::Tracer* tracer_ = nullptr;
  WindowTraceAdapter window_trace_adapter_{this};
  LeaderObserver leader_observer_;
  double timer_skew_ = 1.0;

  NodeStats stats_;
};

}  // namespace nbraft::raft

#endif  // NBRAFT_RAFT_RAFT_NODE_H_
