#include "raft/recovery_stm.h"

#include <algorithm>

#include "common/logging.h"
#include "raft/membership.h"
#include "raft/node_context.h"
#include "raft/replication_pipeline.h"
#include "sim/simulator.h"

namespace nbraft::raft {

void RecoveryStm::StartRecovery(net::NodeId learner) {
  if (ctx_->core().role != Role::kLeader) return;
  if (learners_.count(learner) != 0) return;
  LearnerState state;
  state.timer_epoch = 1;
  learners_[learner] = state;
  ScheduleRound(learner, ctx_->options().membership.recovery_interval);
}

void RecoveryStm::StopRecovery(net::NodeId learner) {
  learners_.erase(learner);  // Pending round timers see the gap and die.
}

void RecoveryStm::StopAll() { learners_.clear(); }

RecoveryStm::Stage RecoveryStm::StageOf(net::NodeId learner) const {
  const auto it = learners_.find(learner);
  return it == learners_.end() ? Stage::kIdle : it->second.stage;
}

int RecoveryStm::RoundsFor(net::NodeId learner) const {
  const auto it = learners_.find(learner);
  return it == learners_.end() ? 0 : it->second.rounds;
}

SimDuration RecoveryStm::CurrentDelay(net::NodeId learner) const {
  const auto it = learners_.find(learner);
  return it == learners_.end() ? 0 : it->second.last_delay;
}

void RecoveryStm::OnProgress(net::NodeId learner,
                             storage::LogIndex durable_prefix) {
  const auto it = learners_.find(learner);
  if (it == learners_.end()) return;
  LearnerState& state = it->second;
  if (durable_prefix > state.matched) {
    state.matched = durable_prefix;
    state.stalled_rounds = 0;
  }
  if (state.stage == Stage::kSnapshot &&
      state.matched + 1 >= ctx_->log().FirstIndex()) {
    state.stage = Stage::kLogTail;  // Snapshot landed; tail reads resume.
  }
}

void RecoveryStm::ScheduleRound(net::NodeId learner, SimDuration delay) {
  LearnerState& state = learners_[learner];
  state.last_delay = delay;
  const uint64_t timer_epoch = ++state.timer_epoch;
  const uint64_t core_epoch = ctx_->core().epoch;
  ctx_->simulator()->After(delay, [this, learner, timer_epoch, core_epoch]() {
    const CoreState& core = ctx_->core();
    if (core.crashed || core.epoch != core_epoch ||
        core.role != Role::kLeader) {
      return;
    }
    const auto it = learners_.find(learner);
    if (it == learners_.end() || it->second.timer_epoch != timer_epoch) {
      return;
    }
    RunRound(learner);
  });
}

void RecoveryStm::RunRound(net::NodeId learner) {
  LearnerState& state = learners_[learner];
  const MembershipOptions& opts = ctx_->options().membership;
  ++state.rounds;
  if (state.matched == state.round_baseline) {
    ++state.stalled_rounds;
  } else {
    state.stalled_rounds = 0;
  }
  state.round_baseline = state.matched;

  const storage::RaftLog& log = ctx_->log();
  const storage::LogIndex last = log.LastIndex();
  // A log shorter than the lag window satisfies the bound vacuously, so
  // the learner must additionally have confirmed at least one entry:
  // matched == 0 means it may never have received anything at all, and a
  // promoted empty-log voter can stall every later quorum it joins.
  const bool caught_up = last - state.matched <= opts.promotion_lag &&
                         (state.matched > 0 || last == 0);
  if (caught_up) {
    // Caught up within the bounded lag — on the learner's *contiguous*
    // prefix, so WEAK_ACCEPT window holes can never fake eligibility.
    state.stage = Stage::kCaughtUp;
    MembershipEngine* membership = ctx_->membership();
    if (opts.auto_promote && membership != nullptr &&
        membership->IsLearner(learner) &&
        membership->ProposePromote(learner)) {
      // Promotion proposed; the joint change takes it from here and the
      // ordinary replication path covers the sub-lag remainder.
      StopRecovery(learner);
      return;
    }
    if (membership != nullptr && membership->IsVoter(learner)) {
      StopRecovery(learner);  // Promoted by other means; job done.
      return;
    }
    // Promotion blocked (another change in flight, or auto-promote off):
    // keep the learner warm and retry at the base cadence.
    ScheduleRound(learner, opts.recovery_interval);
    return;
  }

  const storage::LogIndex needed = state.matched + 1;
  if (needed < log.FirstIndex()) {
    // The tail the learner needs was compacted away: stage a snapshot
    // install. SendInstallSnapshot no-ops while one is in flight, so a
    // backoff-extended round never double-sends.
    state.stage = Stage::kSnapshot;
    ctx_->pipeline()->SendInstallSnapshot(learner);
  } else {
    state.stage = Stage::kLogTail;
    const storage::LogIndex end = std::min(
        last, needed + static_cast<storage::LogIndex>(
                           opts.recovery_max_entries_per_round) -
                  1);
    for (storage::LogIndex index = needed; index <= end; ++index) {
      ctx_->pipeline()->EnqueueForPeer(learner, index);
    }
    ctx_->pipeline()->TryDispatch(learner);
  }
  ScheduleRound(learner, NextDelay(state));
}

SimDuration RecoveryStm::NextDelay(const LearnerState& state) const {
  const MembershipOptions& opts = ctx_->options().membership;
  if (state.stalled_rounds == 0) return opts.recovery_interval;
  // Deterministic capped exponential backoff: base * 2^(stalls-1).
  SimDuration delay = opts.recovery_backoff_base;
  for (int i = 1; i < state.stalled_rounds; ++i) {
    delay *= 2;
    if (delay >= opts.recovery_backoff_cap) break;
  }
  return std::min(delay, opts.recovery_backoff_cap);
}

}  // namespace nbraft::raft
