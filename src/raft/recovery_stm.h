#ifndef NBRAFT_RAFT_RECOVERY_STM_H_
#define NBRAFT_RAFT_RECOVERY_STM_H_

#include <cstdint>
#include <map>

#include "common/sim_time.h"
#include "net/network.h"
#include "storage/log_entry.h"

namespace nbraft::raft {

class NodeContext;

/// Leader-side learner catch-up state machine, modeled on the shape of
/// Redpanda's recovery_stm: bring a fresh (or far-behind) learner to the
/// log head in stages —
///
///   kSnapshot: the learner's next needed entry was compacted away, so a
///     snapshot install must land first;
///   kLogTail:  throttled reads of the log tail, at most
///     `max_entries_per_round` entries enqueued per round so recovery
///     traffic never starves live replication;
///   kCaughtUp: the learner's durable contiguous prefix is within
///     `promotion_lag` of the leader's last index — eligible for
///     promotion to voter (auto-proposed when `auto_promote` is set).
///
/// Rounds are timer-driven on a fixed interval; a round that observes no
/// progress backs off exponentially from `backoff_base` up to
/// `backoff_cap` and snaps back to the base interval on the next
/// response. Promotion keys off the learner's *contiguous* durable
/// prefix (AppendEntries responses report it), never the sliding-window
/// frontier — under NB-Raft a learner's window can hold entries far
/// ahead of holes, and promoting on that illusion would seat a voter
/// whose applied prefix lags non-contiguously (the WEAK_ACCEPT x
/// learner-lag hazard; EXPERIMENTS.md quantifies the gap).
///
/// The state machine is inert unless a leader starts it for a learner:
/// construction arms nothing and draws no randomness, so dormant
/// behavior fingerprints are untouched.
class RecoveryStm {
 public:
  enum class Stage { kIdle, kSnapshot, kLogTail, kCaughtUp };

  explicit RecoveryStm(NodeContext* ctx) : ctx_(ctx) {}

  /// Leader: begin (or resume, after re-election) driving catch-up.
  void StartRecovery(net::NodeId learner);
  void StopRecovery(net::NodeId learner);
  /// Step-down / crash: recovery is leader-only state.
  void StopAll();

  bool Tracking(net::NodeId learner) const {
    return learners_.count(learner) != 0;
  }
  Stage StageOf(net::NodeId learner) const;
  /// Rounds run so far for `learner` (test introspection).
  int RoundsFor(net::NodeId learner) const;
  /// Delay the next round was scheduled with (test introspection).
  SimDuration CurrentDelay(net::NodeId learner) const;

  /// Progress feedback from AppendEntries / InstallSnapshot responses:
  /// `durable_prefix` is the learner's contiguous durable frontier.
  void OnProgress(net::NodeId learner, storage::LogIndex durable_prefix);

 private:
  struct LearnerState {
    Stage stage = Stage::kLogTail;
    storage::LogIndex matched = 0;        ///< Contiguous durable prefix.
    storage::LogIndex round_baseline = -1;  ///< `matched` at last round.
    int stalled_rounds = 0;
    int rounds = 0;
    SimDuration last_delay = 0;
    uint64_t timer_epoch = 0;  ///< Invalidates superseded round timers.
  };

  void ScheduleRound(net::NodeId learner, SimDuration delay);
  void RunRound(net::NodeId learner);
  SimDuration NextDelay(const LearnerState& state) const;

  NodeContext* ctx_;
  std::map<net::NodeId, LearnerState> learners_;
};

}  // namespace nbraft::raft

#endif  // NBRAFT_RAFT_RECOVERY_STM_H_
