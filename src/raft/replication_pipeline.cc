#include "raft/replication_pipeline.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "craft/reed_solomon.h"
#include "obs/names.h"
#include "raft/commit_applier.h"
#include "raft/election_engine.h"
#include "raft/membership.h"
#include "raft/recovery_stm.h"

namespace nbraft::raft {

bool ReplicationPipeline::KnowsPeer(net::NodeId peer) {
  MembershipEngine* m = ctx_->membership();
  return m == nullptr || !m->active() || m->Knows(peer);
}

// ---------------------------------------------------------------------------
// Client request path
// ---------------------------------------------------------------------------

void ReplicationPipeline::HandleClientRequest(ClientRequest req,
                                              SimTime received_at,
                                              SimTime sent_at) {
  CoreState& core = ctx_->core();
  if (core.role != Role::kLeader) {
    ClientResponse resp;
    resp.state = AcceptState::kNotLeader;
    resp.request_id = req.request_id;
    resp.leader_hint = core.leader;
    ctx_->SendTo(req.client, resp.WireSize(), resp);
    return;
  }
  ctx_->TracePhase(metrics::Phase::kTransClientLeader, sent_at, received_at,
                   /*term=*/0, /*index=*/0, req.request_id);

  // Step 2 of the paper: parse, then index on the serialized indexing lane
  // (the lock Ratis holds longer than IoTDB).
  const SimTime parse_submitted = ctx_->Now();
  const uint64_t epoch = core.epoch;
  const SimDuration parse_cost =
      ctx_->mutable_state_machine()->ParseCost(req.payload.size());
  ctx_->cpu()->Submit(
      parse_cost,
      [this, epoch, parse_submitted, req = std::move(req)]() mutable {
        if (ctx_->core().crashed || epoch != ctx_->core().epoch) return;
        const SimTime parse_done = ctx_->Now();
        ctx_->TracePhase(metrics::Phase::kParse, parse_submitted, parse_done,
                         /*term=*/0, /*index=*/0, req.request_id);
        SimDuration index_cost =
            ctx_->options().costs.index_cost +
            PerKib(ctx_->options().costs.leader_append_per_kib,
                   req.payload.size());
        ctx_->index_lane()->Submit(
            index_cost,
            [this, epoch, parse_done, req = std::move(req)]() mutable {
              if (ctx_->core().crashed || epoch != ctx_->core().epoch) return;
              ctx_->TracePhase(metrics::Phase::kIndex, parse_done,
                               ctx_->Now(),
                               /*term=*/0, /*index=*/0, req.request_id);
              if (ctx_->core().role != Role::kLeader) {
                ClientResponse resp;
                resp.state = AcceptState::kNotLeader;
                resp.request_id = req.request_id;
                resp.leader_hint = ctx_->core().leader;
                ctx_->SendTo(req.client, resp.WireSize(), resp);
                return;
              }
              IndexAndReplicate(std::move(req));
            });
      });
}

void ReplicationPipeline::IndexAndReplicate(ClientRequest req) {
  CoreState& core = ctx_->core();
  storage::RaftLog& log = ctx_->log();
  storage::LogEntry entry;
  entry.index = log.LastIndex() + 1;
  entry.term = core.current_term;
  entry.prev_term = log.LastTerm();
  entry.client_id = req.client;
  entry.request_id = req.request_id;
  entry.payload = std::move(req.payload);
  entry.payload_size_hint = entry.payload.size();
  log.Append(entry);
  ctx_->PersistEntry(entry);
  ++ctx_->stats().entries_appended;
  ctx_->applier()->OnLeaderAppended(entry.index);
  if (ctx_->tracer() != nullptr) {
    // Joins the request-keyed client/parse spans with the (term, index)
    // keyed replication spans.
    ctx_->tracer()->RecordInstant(obs::names::kEntryIndexed, ctx_->id(),
                                  entry.index,
                                  static_cast<int64_t>(entry.request_id));
  }

  // Decide the replication shape (plain / fragmented / degraded).
  const int n = ctx_->cluster_size();
  const int f = (n - 1) / 2;
  const int alive = AliveNodes();
  const int dead = n - alive;
  int k = 0;  // 0 = full replication.
  if (ctx_->options().erasure && n >= 3) {
    if (dead == 0) {
      k = f + 1;
    } else if (ctx_->options().ecraft) {
      // ECRaft: keep coding in degraded mode with a smaller k when
      // possible; fall back to full replication otherwise.
      const int k_degraded = alive - (f - dead);
      k = k_degraded >= 2 ? k_degraded : 0;
      ++ctx_->stats().degraded_entries;
    } else {
      k = 0;  // CRaft degrades to full replication (its liveness fix).
      ++ctx_->stats().degraded_entries;
    }
  }
  const int required = RequiredStrong(k > 0, k);
  if (ctx_->DurabilityInstant()) {
    ctx_->applier()->vote_list().AddTuple(entry.index, entry.term, ctx_->id(),
                                          required);
    core.strong_ack_frontier =
        std::max(core.strong_ack_frontier, entry.index);
  } else {
    // Fsync-gated self-vote: the leader's local append only counts toward
    // the quorum once its own disk has fsynced it.
    ctx_->applier()->vote_list().AddTuple(entry.index, entry.term,
                                          net::kInvalidNode, required);
    const uint64_t epoch = core.epoch;
    const storage::LogIndex index = entry.index;
    const storage::Term term = entry.term;
    ctx_->WhenDurable([this, epoch, index, term]() {
      CoreState& c = ctx_->core();
      if (c.crashed || epoch != c.epoch || c.role != Role::kLeader ||
          c.current_term != term) {
        return;
      }
      c.strong_ack_frontier = std::max(c.strong_ack_frontier, index);
      ctx_->applier()->CommitIndices(
          ctx_->applier()->vote_list().AddStrongUpTo(index, ctx_->id(),
                                                     c.current_term));
    });
  }

  if (k > 0) {
    // Fragment the payload. Benchmarks model the coder's cost and shard
    // sizes; tests/examples run the real Reed–Solomon coder.
    fragment_required_[entry.index] = k;
    const SimDuration encode_cost = PerKib(
        ctx_->options().costs.encode_cost_per_kib, entry.payload.size());
    const uint64_t epoch = core.epoch;
    const storage::LogIndex index = entry.index;
    nbraft::Buffer payload = entry.payload;  // Shares the log's bytes.
    ctx_->cpu()->Submit(encode_cost, [this, epoch, index,
                                      payload = std::move(payload)]() {
      const CoreState& c = ctx_->core();
      if (c.crashed || epoch != c.epoch || c.role != Role::kLeader) return;
      const auto it = fragment_required_.find(index);
      if (it == fragment_required_.end()) return;
      const int kk = it->second;
      std::vector<nbraft::Buffer> shards;
      if (ctx_->options().real_erasure_coding) {
        craft::ReedSolomon rs(kk, ctx_->cluster_size() - kk);
        std::vector<std::string> coded = rs.Encode(payload);
        shards.reserve(coded.size());
        for (std::string& shard : coded) shards.emplace_back(std::move(shard));
      } else {
        // Modelled shards all carry the same filler bytes: one allocation
        // shared across the whole shard set.
        const size_t shard_size = (payload.size() + kk - 1) / kk;
        shards.assign(static_cast<size_t>(ctx_->cluster_size()),
                      nbraft::Buffer(std::string(shard_size, 'f')));
      }
      fragment_cache_[index] = std::move(shards);
      auto e = ctx_->log().At(index);
      if (e.ok()) ReplicateEntry(e.value());
    });
  } else {
    ReplicateEntry(entry);
  }

  // Single-node cluster (or solo-voter config): the leader's own append is
  // the whole quorum (with a simulated disk the deferred self-vote above
  // commits it instead).
  MembershipEngine* m = ctx_->membership();
  const bool solo_quorum = (m != nullptr && m->active())
                               ? m->QuorumSatisfied({ctx_->id()})
                               : ctx_->peer_ids().empty();
  if (solo_quorum && ctx_->DurabilityInstant()) {
    const auto committed = ctx_->applier()->vote_list().AddStrongUpTo(
        entry.index, ctx_->id(), core.current_term);
    ctx_->applier()->CommitIndices(committed);
  }
}

// ---------------------------------------------------------------------------
// Fan-out
// ---------------------------------------------------------------------------

void ReplicationPipeline::ReplicateEntry(const storage::LogEntry& entry) {
  // VGRaft: hash + sign + verification-group selection before fan-out.
  SimDuration pre_cost = 0;
  if (ctx_->options().verify_group) {
    pre_cost =
        PerKib(ctx_->options().costs.hash_cost_per_kib, entry.WireSize()) +
        ctx_->options().costs.sign_cost +
        ctx_->options().costs.group_select_cost;
  }
  const uint64_t epoch = ctx_->core().epoch;
  const storage::LogIndex index = entry.index;
  const auto fan_out = [this, epoch, index]() {
    const CoreState& core = ctx_->core();
    if (core.crashed || epoch != core.epoch || core.role != Role::kLeader) {
      return;
    }
    const std::vector<net::NodeId>& peers = ctx_->peer_ids();
    const int bucket = EffectiveKBucket();
    if (bucket > 0) {
      // KRaft: send to the bucket only; the bucket relays to the rest.
      const int limit = std::min<int>(bucket, static_cast<int>(peers.size()));
      for (int i = 0; i < limit; ++i) EnqueueForPeer(peers[i], index);
    } else {
      for (net::NodeId peer : peers) EnqueueForPeer(peer, index);
    }
  };
  if (pre_cost > 0) {
    ctx_->cpu()->Submit(pre_cost, fan_out);
  } else {
    fan_out();
  }
}

void ReplicationPipeline::EnqueueForPeer(net::NodeId peer,
                                         storage::LogIndex index) {
  if (!KnowsPeer(peer)) return;  // Removed from the active config.
  PeerState& ps = peer_state_[peer];
  if (ps.queue.count(index) > 0 || ps.in_flight.count(index) > 0) return;
  ps.queue.emplace(index, ctx_->Now());
  ps.max_enqueued = std::max(ps.max_enqueued, index);
  TryDispatch(peer);
}

void ReplicationPipeline::TryDispatch(net::NodeId peer) {
  if (ctx_->core().role != Role::kLeader) return;
  const RaftOptions& options = ctx_->options();
  storage::RaftLog& log = ctx_->log();
  PeerState& ps = peer_state_[peer];
  while (ps.busy_dispatchers < options.dispatchers_per_follower &&
         !ps.queue.empty()) {
    // Dispatch the lowest queued index first. In steady state entries are
    // enqueued in log order, so this is FIFO; after a fault it matters:
    // out-of-window entries a lagging follower is holding keep timing out
    // and re-queueing, and under FIFO they would recycle through the freed
    // dispatcher slots forever, starving the catch-up entries the follower
    // actually needs to advance its log.
    const auto pick = ps.queue.begin();
    const storage::LogIndex picked = pick->first;
    const SimTime enqueued_at = pick->second;
    ps.queue.erase(pick);
    if (picked > log.LastIndex()) continue;  // Truncated since queued.
    if (picked < log.FirstIndex()) {
      // Compacted away: the peer needs the snapshot instead.
      SendInstallSnapshot(peer);
      continue;
    }
    ctx_->TracePhase(metrics::Phase::kQueue, enqueued_at, ctx_->Now(),
                     ctx_->TraceTermAt(picked), picked);
    std::vector<storage::LogIndex> batch{picked};
    if (options.max_batch_entries > 1 && !options.verify_group &&
        fragment_cache_.count(picked) == 0) {
      // Coalesce the consecutive run queued behind the picked index into
      // one RPC. Fragmented entries stay single (the shard swap is
      // per-entry), and on the NB-Raft path the batch never reaches past
      // the follower's window, so nothing lands in the held (blocking)
      // loop that batching is meant to relieve.
      storage::LogIndex bound = log.LastIndex();
      if (options.window_size > 0 && ps.last_reported >= 0) {
        bound = std::min(bound, ps.last_reported + options.window_size);
      }
      storage::LogIndex next = picked + 1;
      while (static_cast<int>(batch.size()) < options.max_batch_entries &&
             next <= bound && fragment_cache_.count(next) == 0) {
        const auto extra = ps.queue.find(next);
        if (extra == ps.queue.end()) break;
        ctx_->TracePhase(metrics::Phase::kQueue, extra->second, ctx_->Now(),
                         ctx_->TraceTermAt(next), next);
        ps.queue.erase(extra);
        batch.push_back(next);
        ++next;
      }
    }
    ++ps.busy_dispatchers;
    for (const storage::LogIndex index : batch) {
      ps.in_flight.insert(index);
    }
    SendAppendRpc(peer, std::move(batch));
  }
}

void ReplicationPipeline::SendAppendRpc(
    net::NodeId peer, std::vector<storage::LogIndex> batch) {
  CoreState& core = ctx_->core();
  storage::RaftLog& log = ctx_->log();
  const std::vector<net::NodeId>& peers = ctx_->peer_ids();
  const storage::LogIndex index = batch.front();
  AppendEntriesRequest req;
  req.term = core.current_term;
  req.leader = ctx_->id();
  req.rpc_id = next_rpc_id_++;
  req.leader_commit = core.commit_index;
  req.commit_term = log.TermAt(core.commit_index).value_or(0);
  req.signed_payload = ctx_->options().verify_group;
  req.entry = log.AtUnchecked(index);
  if (batch.size() > 1) {
    req.extra_entries.reserve(batch.size() - 1);
    for (size_t i = 1; i < batch.size(); ++i) {
      req.extra_entries.push_back(log.AtUnchecked(batch[i]));
    }
  }

  // CRaft: swap the payload for this peer's shard while the entry is still
  // fragment-replicated (committed entries fall back to full payloads).
  const auto frag = fragment_cache_.find(index);
  if (frag != fragment_cache_.end()) {
    // Peer i holds shard i+1 (the leader implicitly holds shard 0).
    int shard_id = 0;
    for (size_t i = 0; i < peers.size(); ++i) {
      if (peers[i] == peer) {
        shard_id = static_cast<int>(i) + 1;
        break;
      }
    }
    req.entry.payload = frag->second[static_cast<size_t>(shard_id) %
                                     frag->second.size()];
    req.entry.payload_size_hint = 0;
    req.entry.frag_shard = shard_id;
    req.entry.frag_k = static_cast<uint32_t>(fragment_required_[index]);
    req.entry.full_size = log.AtUnchecked(index).WireSize();
  }

  // KRaft: attach the relay fan-out for this bucket member.
  const int bucket = EffectiveKBucket();
  if (bucket > 0) {
    const int limit = std::min<int>(bucket, static_cast<int>(peers.size()));
    int my_pos = -1;
    for (int i = 0; i < limit; ++i) {
      if (peers[i] == peer) {
        my_pos = i;
        break;
      }
    }
    if (my_pos >= 0) {
      for (size_t i = static_cast<size_t>(limit); i < peers.size(); ++i) {
        const int assigned =
            static_cast<int>((i + static_cast<size_t>(index)) %
                             static_cast<size_t>(limit));
        if (assigned == my_pos) req.relay_to.push_back(peers[i]);
      }
    }
  }

  ++ctx_->stats().append_rpcs_sent;
  ctx_->stats().append_entries_sent += batch.size();
  if (batch.size() > 1) ++ctx_->stats().batched_rpcs;

  const uint64_t rpc_id = req.rpc_id;
  const uint64_t epoch = core.epoch;
  const sim::EventId timeout_event =
      ctx_->simulator()->After(ctx_->options().rpc_timeout,
                               [this, epoch, rpc_id]() {
                                 const CoreState& c = ctx_->core();
                                 if (c.crashed || epoch != c.epoch) return;
                                 OnRpcTimeout(rpc_id);
                               });
  outstanding_rpcs_[rpc_id] = OutstandingRpc{
      peer, index, /*is_snapshot=*/false, timeout_event, std::move(batch)};
  ctx_->SendTo(peer, req.WireSize(), std::move(req));
}

void ReplicationPipeline::OnRpcTimeout(uint64_t rpc_id) {
  const auto it = outstanding_rpcs_.find(rpc_id);
  if (it == outstanding_rpcs_.end()) return;
  const OutstandingRpc rpc = it->second;
  outstanding_rpcs_.erase(it);
  ++ctx_->stats().rpc_timeouts;
  if (ctx_->core().role != Role::kLeader) return;
  PeerState& ps = peer_state_[rpc.peer];
  if (rpc.is_snapshot) {
    ps.snapshot_in_flight = false;  // Retried on the next trigger.
    return;
  }
  ps.busy_dispatchers = std::max(0, ps.busy_dispatchers - 1);
  for (const storage::LogIndex index : rpc.batch) {
    ps.in_flight.erase(index);
    // Re-send if the entry is still uncommitted or the peer may lack it.
    if (index <= ctx_->log().LastIndex() && ps.queue.count(index) == 0) {
      ps.queue.emplace(index, ctx_->Now());
    }
  }
  TryDispatch(rpc.peer);
}

// ---------------------------------------------------------------------------
// Leader response path
// ---------------------------------------------------------------------------

void ReplicationPipeline::HandleAppendResponse(AppendEntriesResponse resp) {
  // Dispatcher bookkeeping happens regardless of role/term transitions.
  const auto rpc_it = outstanding_rpcs_.find(resp.rpc_id);
  if (rpc_it != outstanding_rpcs_.end()) {
    ctx_->simulator()->Cancel(rpc_it->second.timeout_event);
    PeerState& ps = peer_state_[rpc_it->second.peer];
    ps.busy_dispatchers = std::max(0, ps.busy_dispatchers - 1);
    for (const storage::LogIndex index : rpc_it->second.batch) {
      ps.in_flight.erase(index);
    }
    outstanding_rpcs_.erase(rpc_it);
  }

  CoreState& core = ctx_->core();
  if (resp.term > core.current_term) {
    ctx_->election()->StepDown(resp.term, net::kInvalidNode);
    return;
  }
  if (core.role != Role::kLeader || resp.term < core.current_term) {
    return;
  }

  storage::RaftLog& log = ctx_->log();
  PeerState& ps = peer_state_[resp.from];
  ps.last_response_at = ctx_->Now();

  if (resp.is_heartbeat) {
    MaybeCatchUpPeer(resp.from, resp.last_index);
    TryDispatch(resp.from);
    return;
  }

  switch (resp.state) {
    case AcceptState::kWeakAccept: {
      if (ctx_->applier()->vote_list().AddWeak(resp.entry_index,
                                               resp.from)) {
        // A living quorum has received the entry: unblock the client
        // (Sec. III-B2).
        const auto e = log.At(resp.entry_index);
        if (e.ok() && e->client_id != net::kInvalidNode &&
            e->client_id != kConfigClientId) {
          ClientResponse cresp;
          cresp.state = AcceptState::kWeakAccept;
          cresp.request_id = e->request_id;
          cresp.index = e->index;
          cresp.term = e->term;
          ctx_->SendTo(e->client_id, cresp.WireSize(), cresp);
        }
      }
      break;
    }
    case AcceptState::kStrongAccept: {
      // A covering ack proves the follower's prefix matches ours only if
      // (last_index, last_term) names an entry of OUR log (the log
      // matching property). Without this guard, a follower that flushed
      // stale old-term window entries could be counted as holding the
      // current leader's different entries at those indices.
      if (!log.Matches(resp.last_index, resp.last_term)) {
        if (resp.last_index <= log.LastIndex() &&
            resp.last_index >= log.FirstIndex()) {
          // Re-send our entry at that point; its delivery truncates the
          // follower's divergent tail.
          EnqueueForPeer(resp.from, resp.last_index);
        }
        break;
      }
      ps.mismatch_probe = -1;
      if (ctx_->recovery() != nullptr) {
        // A covering strong ack is exactly a contiguous durable prefix —
        // the only progress signal the catch-up STM trusts (weak accepts
        // may hide sliding-window holes).
        ctx_->recovery()->OnProgress(resp.from, resp.last_index);
      }
      // t_ack starts at the first strong accept covering an index.
      ctx_->applier()->NoteFirstStrongUpTo(resp.last_index);
      const auto committed = ctx_->applier()->vote_list().AddStrongUpTo(
          resp.last_index, resp.from, core.current_term);
      ctx_->applier()->CommitIndices(committed);
      break;
    }
    case AcceptState::kLogMismatch: {
      ++ctx_->stats().mismatches_sent;  // Symmetric counter, leader side.
      storage::LogIndex start =
          std::min(resp.last_index + 1, resp.entry_index);
      if (ps.mismatch_probe >= 0 && ps.mismatch_probe <= start) {
        start = ps.mismatch_probe - 1;  // Backtrack further.
      }
      if (start < log.FirstIndex()) {
        // The entries the follower needs were compacted away.
        SendInstallSnapshot(resp.from);
        break;
      }
      ps.mismatch_probe = start;
      for (storage::LogIndex i = start; i <= log.LastIndex(); ++i) {
        EnqueueForPeer(resp.from, i);
      }
      break;
    }
    case AcceptState::kLeaderChanged:
      // resp.term > current_term was handled above; a stale message.
      break;
    case AcceptState::kNotLeader:
      break;
  }
  TryDispatch(resp.from);
}

void ReplicationPipeline::MaybeCatchUpPeer(net::NodeId peer,
                                           storage::LogIndex follower_last) {
  storage::RaftLog& log = ctx_->log();
  PeerState& ps = peer_state_[peer];
  if (follower_last != ps.last_reported) {
    ps.last_reported = follower_last;
    ps.last_advance_at = ctx_->Now();
  }
  if (ctx_->recovery() != nullptr && ctx_->recovery()->Tracking(peer)) {
    // The catch-up STM feeds this peer in throttled rounds; the heartbeat
    // catch-up path would flood straight past the throttle.
    return;
  }
  if (follower_last >= log.LastIndex()) return;
  if (follower_last + 1 < log.FirstIndex()) {
    // The follower's continuation point was compacted away — only a
    // snapshot can move it forward, whatever we may have enqueued before
    // it fell behind.
    SendInstallSnapshot(peer);
    return;
  }
  // Only fill in entries never handed to this peer's pipeline: everything
  // at or below max_enqueued is queued, in flight, or already delivered
  // (losses there are retried by the RPC timeout). Without this bound the
  // stale follower_last in heartbeat acks floods the dispatchers with
  // duplicates of in-flight entries.
  storage::LogIndex start =
      std::max({follower_last + 1, ps.max_enqueued + 1, log.FirstIndex()});
  storage::LogIndex end =
      std::min(log.LastIndex(),
               start + 4 * ctx_->options().dispatchers_per_follower);
  if (ctx_->Now() - ps.last_advance_at > 2 * ctx_->options().rpc_timeout) {
    // Stagnant: every pipeline copy of the missing entries was consumed
    // without an append (cached in a window that was since cleared,
    // dropped from the queues by a leadership change while the follower
    // was partitioned, or — with durable disks — lost when a corrupted
    // tail was repaired away on recovery). Force a re-send of the
    // continuation — waiting for the normal pipeline would deadlock when
    // the backlog predates this leader's peer state.
    start = std::max(follower_last + 1, log.FirstIndex());
    if (ctx_->DurabilityInstant()) {
      end = std::min(log.LastIndex(),
                     start + 4 * ctx_->options().dispatchers_per_follower);
    } else {
      // Durable recovery can regress a follower's log end *below* the
      // delivered-and-acked frontier (a repaired corrupt tail), leaving
      // an arbitrarily large hole no pipeline copy will ever refill.
      // The delivery bookkeeping is untrustworthy below max_enqueued, so
      // resync the whole range from the follower's reported position,
      // exactly like a log-mismatch rejection would. (Kept to the small
      // burst in instant mode, where log ends never regress and the
      // bounded re-send is always enough.)
      end = log.LastIndex();
    }
    ps.last_advance_at = ctx_->Now();  // Back off between forced bursts.
  }
  for (storage::LogIndex i = start; i <= end; ++i) {
    if (ps.queue.count(i) == 0 && ps.in_flight.count(i) == 0) {
      EnqueueForPeer(peer, i);
    }
  }
}

// ---------------------------------------------------------------------------
// Heartbeats
// ---------------------------------------------------------------------------

void ReplicationPipeline::BroadcastHeartbeat() {
  CoreState& core = ctx_->core();
  if (core.role != Role::kLeader || core.crashed) return;
  // Replica liveness changed? CRaft/ECRaft requirements must follow, or
  // in-flight fragmented entries needing all N acks would never commit
  // after a follower dies (CRaft's degraded-mode liveness fix).
  const int alive = AliveNodes();
  if (alive != last_alive_seen_) {
    last_alive_seen_ = alive;
    if (ctx_->options().erasure) {
      ctx_->applier()->vote_list().ForEach(
          [this](storage::LogIndex index, VoteList::Tuple* tuple) {
            const auto frag = fragment_required_.find(index);
            const int k =
                frag == fragment_required_.end() ? 0 : frag->second;
            tuple->required = RequiredStrong(k > 0, k);
          });
      ctx_->applier()->CommitIndices(
          ctx_->applier()->vote_list().CollectCommittable(
              core.current_term));
    }
  }
  for (net::NodeId peer : ctx_->peer_ids()) {
    if (!KnowsPeer(peer)) continue;
    AppendEntriesRequest hb;
    hb.term = core.current_term;
    hb.leader = ctx_->id();
    hb.is_heartbeat = true;
    hb.leader_commit = core.commit_index;
    hb.commit_term = ctx_->log().TermAt(core.commit_index).value_or(0);
    ctx_->SendTo(peer, hb.WireSize(), hb);
  }
  const uint64_t epoch = core.epoch;
  heartbeat_timer_ = ctx_->simulator()->After(
      ctx_->options().heartbeat_interval, [this, epoch]() {
        const CoreState& c = ctx_->core();
        if (c.crashed || epoch != c.epoch) return;
        BroadcastHeartbeat();
      });
}

// ---------------------------------------------------------------------------
// Snapshot sends
// ---------------------------------------------------------------------------

void ReplicationPipeline::SendInstallSnapshot(net::NodeId peer) {
  CoreState& core = ctx_->core();
  if (core.role != Role::kLeader || core.snapshot_index == 0) return;
  PeerState& ps = peer_state_[peer];
  if (ps.snapshot_in_flight) return;
  ps.snapshot_in_flight = true;
  ++ctx_->stats().snapshots_sent;

  InstallSnapshotRequest req;
  req.term = core.current_term;
  req.leader = ctx_->id();
  req.rpc_id = next_rpc_id_++;
  req.last_included_index = core.snapshot_index;
  req.last_included_term = core.snapshot_term;
  req.data = core.snapshot_data;
  if (MembershipEngine* m = ctx_->membership(); m != nullptr && m->active()) {
    // A snapshot-bootstrapped learner must learn the roster too.
    req.config = m->config().Encode();
  }

  const uint64_t rpc_id = req.rpc_id;
  const uint64_t epoch = core.epoch;
  // Snapshots are large: give them a generous multiple of the RPC timeout.
  const sim::EventId timeout_event = ctx_->simulator()->After(
      4 * ctx_->options().rpc_timeout, [this, epoch, rpc_id]() {
        const CoreState& c = ctx_->core();
        if (c.crashed || epoch != c.epoch) return;
        OnRpcTimeout(rpc_id);
      });
  outstanding_rpcs_[rpc_id] =
      OutstandingRpc{peer,
                     core.snapshot_index,
                     /*is_snapshot=*/true,
                     timeout_event,
                     {core.snapshot_index}};
  ctx_->SendTo(peer, req.WireSize(), std::move(req));
}

void ReplicationPipeline::HandleInstallSnapshotResponse(
    const InstallSnapshotResponse& resp) {
  const auto rpc_it = outstanding_rpcs_.find(resp.rpc_id);
  if (rpc_it != outstanding_rpcs_.end()) {
    ctx_->simulator()->Cancel(rpc_it->second.timeout_event);
    outstanding_rpcs_.erase(rpc_it);
  }
  if (resp.term > ctx_->core().current_term) {
    ctx_->election()->StepDown(resp.term, net::kInvalidNode);
    return;
  }
  if (ctx_->core().role != Role::kLeader) return;
  PeerState& ps = peer_state_[resp.from];
  ps.snapshot_in_flight = false;
  ps.last_response_at = ctx_->Now();
  if (resp.installed && ctx_->recovery() != nullptr) {
    ctx_->recovery()->OnProgress(resp.from, resp.last_index);
  }
  // Continue with log entries from wherever the follower now stands.
  MaybeCatchUpPeer(resp.from, resp.last_index);
  TryDispatch(resp.from);
}

// ---------------------------------------------------------------------------
// Lifecycle / introspection
// ---------------------------------------------------------------------------

void ReplicationPipeline::ResetLeaderState() {
  ctx_->simulator()->Cancel(heartbeat_timer_);
  heartbeat_timer_ = sim::kInvalidEventId;
  for (auto& [rpc_id, rpc] : outstanding_rpcs_) {
    ctx_->simulator()->Cancel(rpc.timeout_event);
  }
  outstanding_rpcs_.clear();
  peer_state_.clear();
  fragment_cache_.clear();
  fragment_required_.clear();
  // Reset the liveness estimate too: a later leadership must recompute the
  // CRaft/ECRaft commit requirements from scratch rather than inherit a
  // stale alive count from the previous reign.
  last_alive_seen_ = -1;
}

void ReplicationPipeline::ReleaseFragments(storage::LogIndex index) {
  fragment_cache_.erase(index);
  fragment_required_.erase(index);
}

size_t ReplicationPipeline::DispatcherQueueDepth() const {
  size_t depth = 0;
  for (const auto& [peer, ps] : peer_state_) depth += ps.queue.size();
  return depth;
}

// ---------------------------------------------------------------------------
// Liveness helpers
// ---------------------------------------------------------------------------

int ReplicationPipeline::AliveNodes() const {
  int alive = 1;  // Self.
  for (const net::NodeId peer : ctx_->peer_ids()) {
    if (IsPeerAlive(peer)) ++alive;
  }
  return alive;
}

int ReplicationPipeline::PeersRespondedSince(SimTime since) const {
  int responded = 0;
  for (const auto& [peer, state] : peer_state_) {
    if (state.last_response_at != 0 && state.last_response_at >= since) {
      ++responded;
    }
  }
  return responded;
}

bool ReplicationPipeline::IsPeerAlive(net::NodeId peer) const {
  const auto it = peer_state_.find(peer);
  if (it == peer_state_.end()) return true;  // No evidence yet: optimistic.
  if (it->second.last_response_at == 0) return true;
  return ctx_->simulator()->Now() - it->second.last_response_at <
         3 * ctx_->options().heartbeat_interval;
}

int ReplicationPipeline::RequiredStrong(bool fragmented, int k) {
  const int n = ctx_->cluster_size();
  const int f = (n - 1) / 2;
  const int dead = n - AliveNodes();
  const int remaining_faults = std::max(0, f - dead);
  if (fragmented) {
    // A committed fragment set must still be decodable after every
    // remaining tolerated fault: k + (f - dead) holders.
    return std::min(n, k + remaining_faults);
  }
  // Full copies: one survivor after the remaining tolerated faults, but
  // never less than a majority of the full cluster for term safety.
  return std::max(ctx_->quorum(), remaining_faults + 1);
}

int ReplicationPipeline::EffectiveKBucket() const {
  if (ctx_->options().kbucket_size == 0) return 0;
  const int followers = static_cast<int>(ctx_->peer_ids().size());
  if (followers <= 1) return 0;  // Nothing to relay through (Fig. 15).
  if (ctx_->options().kbucket_size < 0) return (followers + 1) / 2;
  return std::min(ctx_->options().kbucket_size, followers);
}

}  // namespace nbraft::raft
