#ifndef NBRAFT_RAFT_REPLICATION_PIPELINE_H_
#define NBRAFT_RAFT_REPLICATION_PIPELINE_H_

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "raft/messages.h"
#include "raft/node_context.h"

namespace nbraft::raft {

/// The leader side of replication (the paper's Fig. 3 pipeline): client
/// request intake (parse -> serialized indexing lane), per-follower
/// dispatcher queues, in-flight RPC bookkeeping with timeouts, heartbeat
/// fan-out, lagging-peer catch-up and snapshot sends. CRaft fragmenting,
/// KRaft relay assembly and VGRaft signing hook in on this side too.
///
/// Batching: when `options.max_batch_entries` > 1, a freed dispatcher slot
/// coalesces up to that many *consecutive* queued indices into one
/// AppendEntries RPC (one wire round trip, one follower log-lock
/// acquisition for the whole run). On the NB-Raft path the batch is capped
/// so it never reaches past the follower's window
/// (`last_reported + window_size`). With the default of 1 the pipeline is
/// bit-identical to unbatched replication.
class ReplicationPipeline {
 public:
  explicit ReplicationPipeline(NodeContext* ctx) : ctx_(ctx) {}

  // ---- Client request path ----
  void HandleClientRequest(ClientRequest req, SimTime received_at,
                           SimTime sent_at);

  // ---- Fan-out ----
  void ReplicateEntry(const storage::LogEntry& entry);
  void EnqueueForPeer(net::NodeId peer, storage::LogIndex index);
  void TryDispatch(net::NodeId peer);

  // ---- Responses / timeouts ----
  void HandleAppendResponse(AppendEntriesResponse resp);
  void HandleInstallSnapshotResponse(const InstallSnapshotResponse& resp);

  // ---- Heartbeats, catch-up, snapshots ----
  void BroadcastHeartbeat();
  void MaybeCatchUpPeer(net::NodeId peer, storage::LogIndex follower_last);
  void SendInstallSnapshot(net::NodeId peer);

  // ---- Lifecycle ----
  /// Drops all leader-only state: peer pipelines, outstanding RPCs (with
  /// their timeouts), fragment caches and the liveness estimate. Called on
  /// Crash(), StepDown() and BecomeLeader() so nothing leaks across
  /// leadership changes.
  void ResetLeaderState();

  /// Commit releases the fragment cache for an index (committed entries
  /// fall back to full payloads on re-send).
  void ReleaseFragments(storage::LogIndex index);

  // ---- Introspection ----
  /// Entries sitting in dispatcher queues across all peers (telemetry).
  size_t DispatcherQueueDepth() const;
  /// AppendEntries / InstallSnapshot RPCs currently on the wire.
  size_t OutstandingRpcCount() const { return outstanding_rpcs_.size(); }
  /// True when every leader-only container is empty (step-down audit).
  bool LeaderStateEmpty() const {
    return peer_state_.empty() && outstanding_rpcs_.empty() &&
           fragment_cache_.empty() && fragment_required_.empty();
  }

  // ---- Liveness helpers (shared with the applier's commit rules) ----
  int AliveNodes() const;
  bool IsPeerAlive(net::NodeId peer) const;
  /// Peers whose last AppendEntries/InstallSnapshot response arrived at or
  /// after `since` (CheckQuorum: the leader counts these + itself against
  /// the quorum once per election timeout).
  int PeersRespondedSince(SimTime since) const;
  int RequiredStrong(bool fragmented, int k);
  int EffectiveKBucket() const;
  const std::unordered_map<storage::LogIndex, int>& fragment_required()
      const {
    return fragment_required_;
  }

 private:
  /// Leader-side replication state for one follower connection.
  struct PeerState {
    /// Pending indices → enqueue time. Ordered so dispatch pops the lowest
    /// index in O(log n) and batch coalescing walks consecutive runs.
    std::map<storage::LogIndex, SimTime> queue;
    std::set<storage::LogIndex> in_flight;  ///< Indices on the wire.
    int busy_dispatchers = 0;
    bool snapshot_in_flight = false;
    storage::LogIndex mismatch_probe = -1;  ///< Backtracking cursor.
    /// Highest index ever enqueued for this peer; heartbeat catch-up only
    /// fills in above it (the pipeline below is in flight or completed —
    /// losses there are the RPC timeout's job, not catch-up's).
    storage::LogIndex max_enqueued = 0;
    SimTime last_response_at = 0;           ///< Liveness estimate.
    /// Stagnation detection: last log end the follower reported and when
    /// it last advanced. A follower stuck below the commit index (e.g.
    /// weakly accepted entries wiped with its window) gets a forced
    /// re-send.
    storage::LogIndex last_reported = -1;
    SimTime last_advance_at = 0;
  };

  /// An in-flight AppendEntries or InstallSnapshot RPC. `batch` lists
  /// every log index the RPC carries (one element unless batching
  /// coalesced a run).
  struct OutstandingRpc {
    net::NodeId peer = net::kInvalidNode;
    storage::LogIndex index = 0;
    bool is_snapshot = false;
    sim::EventId timeout_event = sim::kInvalidEventId;
    std::vector<storage::LogIndex> batch;
  };

  void IndexAndReplicate(ClientRequest req);
  void SendAppendRpc(net::NodeId peer,
                     std::vector<storage::LogIndex> batch);
  void OnRpcTimeout(uint64_t rpc_id);
  /// False only when dynamic membership is active and `peer` is outside
  /// the active configuration (removed nodes get no replication traffic).
  bool KnowsPeer(net::NodeId peer);

  NodeContext* ctx_;
  std::map<net::NodeId, PeerState> peer_state_;
  std::unordered_map<uint64_t, OutstandingRpc> outstanding_rpcs_;
  /// CRaft: per-index Reed–Solomon shards while fragment-replicated.
  /// Buffers, so handing a shard to an RPC shares it with the cache.
  std::unordered_map<storage::LogIndex, std::vector<nbraft::Buffer>>
      fragment_cache_;
  std::unordered_map<storage::LogIndex, int> fragment_required_;
  uint64_t next_rpc_id_ = 1;
  int last_alive_seen_ = -1;
  sim::EventId heartbeat_timer_ = sim::kInvalidEventId;
};

}  // namespace nbraft::raft

#endif  // NBRAFT_RAFT_REPLICATION_PIPELINE_H_
