#include "raft/types.h"

namespace nbraft::raft {

std::string_view RoleName(Role role) {
  switch (role) {
    case Role::kFollower:
      return "follower";
    case Role::kCandidate:
      return "candidate";
    case Role::kLeader:
      return "leader";
    case Role::kLearner:
      return "learner";
  }
  return "?";
}

std::string_view AcceptStateName(AcceptState state) {
  switch (state) {
    case AcceptState::kStrongAccept:
      return "STRONG_ACCEPT";
    case AcceptState::kWeakAccept:
      return "WEAK_ACCEPT";
    case AcceptState::kLogMismatch:
      return "LOG_MISMATCH";
    case AcceptState::kLeaderChanged:
      return "LEADER_CHANGED";
    case AcceptState::kNotLeader:
      return "NOT_LEADER";
  }
  return "?";
}

std::string_view ProtocolName(Protocol protocol) {
  switch (protocol) {
    case Protocol::kRaft:
      return "Raft";
    case Protocol::kNbRaft:
      return "NB-Raft";
    case Protocol::kCRaft:
      return "CRaft";
    case Protocol::kNbCRaft:
      return "NB-Raft+CRaft";
    case Protocol::kECRaft:
      return "ECRaft";
    case Protocol::kKRaft:
      return "KRaft";
    case Protocol::kVGRaft:
      return "VGRaft";
  }
  return "?";
}

RaftOptions OptionsForProtocol(Protocol protocol, int window_size) {
  RaftOptions options;
  switch (protocol) {
    case Protocol::kRaft:
      break;
    case Protocol::kNbRaft:
      options.window_size = window_size;
      break;
    case Protocol::kCRaft:
      options.erasure = true;
      break;
    case Protocol::kNbCRaft:
      options.window_size = window_size;
      options.erasure = true;
      break;
    case Protocol::kECRaft:
      options.erasure = true;
      options.ecraft = true;
      break;
    case Protocol::kKRaft:
      options.kbucket_size = -1;  // Resolved to ceil((N-1)/2) by the node.
      break;
    case Protocol::kVGRaft:
      options.verify_group = true;
      break;
  }
  return options;
}

}  // namespace nbraft::raft
