#ifndef NBRAFT_RAFT_TYPES_H_
#define NBRAFT_RAFT_TYPES_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/sim_time.h"

namespace nbraft::storage {
class LogBackend;
}  // namespace nbraft::storage

namespace nbraft::sim {
class CpuExecutor;
}  // namespace nbraft::sim

namespace nbraft::raft {

/// Raft role of a node. kLearner is the passive membership role (dynamic
/// membership only): the node replicates the log but never campaigns,
/// never arms an election timer, and never counts toward any quorum —
/// both catch-up learners and nodes removed from the configuration sit
/// here. Fixed-roster clusters only ever see the first three.
enum class Role { kFollower, kCandidate, kLeader, kLearner };

std::string_view RoleName(Role role);

/// Reply states of NB-Raft (paper Fig. 5). The original Raft only ever
/// produces kStrongAccept / kLogMismatch.
enum class AcceptState : uint8_t {
  kStrongAccept,   ///< Entry (and its whole prefix) appended durably.
  kWeakAccept,     ///< Entry received and cached in the sliding window.
  kLogMismatch,    ///< Prefix missing or conflicting; resend earlier entries.
  kLeaderChanged,  ///< A newer term exists; retry with the new leader.
  kNotLeader,      ///< This node is not the leader (client-facing).
};

std::string_view AcceptStateName(AcceptState state);

/// The protocols compared in the paper's evaluation.
enum class Protocol {
  kRaft,         ///< Original Raft (NB-Raft with w = 0).
  kNbRaft,       ///< Non-Blocking Raft (this paper).
  kCRaft,        ///< Erasure-coded Raft [FAST'20].
  kNbCRaft,      ///< NB-Raft + CRaft combination.
  kECRaft,       ///< CRaft with erasure-coded degraded mode [ICPADS'21].
  kKRaft,        ///< K-Bucket relay Raft [ICPADS'19].
  kVGRaft,       ///< Verification-group byzantine-resistant Raft [ICCT'21].
};

std::string_view ProtocolName(Protocol protocol);

/// Modelled CPU costs of protocol work. The defaults are calibrated to a
/// contemporary server core (paper testbed: Xeon Platinum 8260); the
/// benchmark harness never needs to change them except for the Ratis
/// profile (heavier indexing lock) and CPU experiments (speed factor).
struct CostModel {
  // Leader path.
  SimDuration index_cost = Micros(3);  ///< t_idx per entry, on the serial
                                       ///< indexing lane (models the lock).
  SimDuration leader_append_per_kib = Micros(1);  ///< Local log append.
  SimDuration commit_cost = Micros(1);            ///< t_commit bookkeeping.

  // Follower path. Appends serialize on the follower's log lock (the
  // paper's Fig. 3: the blue waiting loop "is controlled by Follower's
  // Log, which is accessed by multiple appenders").
  SimDuration follower_append_base = Micros(8);
  SimDuration follower_append_per_kib = Micros(2);
  SimDuration recheck_cost = Nanos(100);  ///< One turn of the waiting loop.
  /// Serialize / restore cost of snapshot state, per KiB.
  SimDuration snapshot_cost_per_kib = Micros(2);
  /// Cost, per blocked (held) entry, that every append pays on the log
  /// lock: each append wakes all waiting appender threads so they can
  /// re-check appendability. This is how original Raft's blocking burns
  /// follower capacity as concurrency grows; NB-Raft's window keeps the
  /// held set empty and skips the cost.
  SimDuration held_wakeup_cost = Nanos(600);
  /// Lock cost of caching one entry in the sliding window.
  SimDuration window_insert_cost = Nanos(500);

  // Erasure coding (CRaft / ECRaft): cost per KiB of original payload.
  SimDuration encode_cost_per_kib = Micros(10);
  SimDuration decode_cost_per_kib = Micros(10);

  // Verification (VGRaft).
  SimDuration hash_cost_per_kib = Micros(3);
  SimDuration sign_cost = Micros(70);
  SimDuration verify_cost = Micros(90);
  SimDuration group_select_cost = Micros(25);
  /// Serialized admission of a verified entry into consensus (charged on
  /// the log-handling lane; dominates VGRaft's throughput ceiling).
  SimDuration verify_admission_cost = Micros(18);

  /// Per-task scheduling overhead charged per concurrently outstanding CPU
  /// task (context switching / cache pressure), saturating at
  /// max_switch_overhead. This is what bends the throughput curve downward
  /// past ~512 clients in Figs. 14/17/18.
  SimDuration context_switch_cost = Nanos(120);
  SimDuration lock_switch_cost = Nanos(300);
  SimDuration max_switch_overhead = Micros(3);
};

/// Simulated durable-disk configuration. With `enabled` set, each node
/// stores its durable log on a deterministic simulated disk: writes and
/// fsyncs cost virtual time on a dedicated I/O lane, un-fsynced records
/// are torn off by a crash, and acknowledgements wait for the covering
/// fsync (group commit batches records per barrier). All-zero latencies
/// still run the full durability machinery — they just make it free.
struct DiskOptions {
  bool enabled = false;
  SimDuration write_latency = 0;  ///< Media write cost per record.
  SimDuration fsync_latency = 0;  ///< Barrier cost per fsync.
  /// Sustained media bandwidth in bytes/µs of virtual time; 0 = no charge.
  double bytes_per_us = 0.0;
  /// Batch every record staged while a sync is in flight under the next
  /// single barrier (one fsync amortized over many records). Off = one
  /// fsync per persisted record, serialized on the I/O lane.
  bool group_commit = true;
  /// Seed for the disk fault injector (torn-tail draws, corruption
  /// placement); independent of the simulator rng.
  uint64_t fault_seed = 1;
  /// Externally owned single-lane I/O executor shared by every disk on
  /// this node's physical host (multi-Raft: co-resident groups contend
  /// for the host's media bandwidth and fsync serialization). Null (the
  /// default) gives the disk its own lane.
  sim::CpuExecutor* shared_io_lane = nullptr;
};

/// Dynamic-membership configuration. Dormant (and behavior-fingerprint
/// invisible) while `initial_config` is empty: the roster is then fixed
/// at construction as peers + self, exactly as before.
struct MembershipOptions {
  /// Encoded initial Configuration (see raft/membership.h). Empty (the
  /// default) keeps dynamic membership off entirely.
  std::string initial_config;
  /// Learner promotion threshold: eligible once its contiguous durable
  /// prefix is within this many entries of the leader's last index.
  int64_t promotion_lag = 16;
  /// Recovery throttle: max log entries enqueued per recovery round.
  int recovery_max_entries_per_round = 32;
  /// Cadence of recovery rounds while the learner makes progress.
  SimDuration recovery_interval = Millis(10);
  /// Capped exponential backoff for rounds that observe no progress.
  SimDuration recovery_backoff_base = Millis(20);
  SimDuration recovery_backoff_cap = Millis(500);
  /// Leader auto-proposes promotion once a learner is caught up.
  bool auto_promote = true;
};

/// Per-node protocol configuration. A single RaftNode implements every
/// variant; the flags compose (NB-Raft + CRaft = window_size > 0 plus
/// erasure = true), and all-flags-off with window_size = 0 is original Raft.
struct RaftOptions {
  /// NB-Raft sliding-window size w; 0 reproduces original Raft exactly
  /// (paper Sec. III, contribution 3). The paper's default is 10000.
  int window_size = 0;

  /// Consensus group this replica belongs to (multi-Raft sharding). Pure
  /// identity: stamped into NodeStats and journal context so stats and
  /// post-mortems can tell co-resident groups apart. 0 in single-group
  /// clusters.
  int32_t group_id = 0;

  /// Externally owned general CPU pool shared by every replica on this
  /// node's physical host (multi-Raft: co-resident groups contend for the
  /// host's cores). Null (the default) gives the node its own pool of
  /// `cpu_lanes` lanes. The serial index/apply/log-lock lanes stay
  /// per-replica either way — they model software locks, not cores.
  sim::CpuExecutor* shared_cpu = nullptr;

  /// Dispatchers per follower (N_csm): concurrent in-flight AppendEntries
  /// RPCs per follower connection. The evaluation sets this equal to the
  /// number of clients "to avoid long queues".
  int dispatchers_per_follower = 16;

  /// Max *consecutive* log entries one AppendEntries RPC may carry. 1 (the
  /// default) is the paper's one-entry-per-dispatcher protocol, unchanged
  /// on the wire. > 1 lets a freed dispatcher drain a contiguous run of
  /// its queue in a single RPC (one round trip, one follower log-lock
  /// acquisition); on the NB-Raft path the batch never reaches past the
  /// follower's sliding window.
  int max_batch_entries = 1;

  /// CPU cores modelled per node (paper testbed: large SMP boxes; what
  /// matters is the ratio of cores to concurrent requests).
  int cpu_lanes = 16;

  /// Log compaction: once more than this many applied entries sit in the
  /// log, snapshot the state machine and compact the prefix (0 disables).
  /// Lagging followers whose next entry was compacted away receive an
  /// InstallSnapshot instead.
  int64_t snapshot_threshold = 0;
  /// Applied entries kept behind the snapshot point so slightly-lagging
  /// followers can still catch up from the log.
  int64_t snapshot_keep_tail = 64;

  /// Base follower (election) timeout; the concrete timeout is drawn
  /// uniformly from [election_timeout, 2 * election_timeout).
  SimDuration election_timeout = Millis(500);

  SimDuration heartbeat_interval = Millis(50);

  /// Dispatcher RPC timeout before an entry is re-sent.
  SimDuration rpc_timeout = Millis(400);

  // ---- Adversarial-resilience mitigations ----
  // Independently switchable so ablations (attack x mitigation sweeps)
  // can isolate each one. All off by default: the default protocol is
  // bit-identical to the unmitigated implementation.

  /// PreVote (libraft's pre-candidate phase): before incrementing its
  /// term, a timed-out follower canvasses the cluster with a
  /// non-binding RequestVote marked pre_vote. Only a pre-vote quorum
  /// starts a real election, so a partitioned node cannot inflate its
  /// term unboundedly and depose a healthy leader on rejoin.
  bool pre_vote = false;

  /// CheckQuorum: a leader that has not heard AppendEntries responses
  /// from a quorum within one election_timeout steps down (same term).
  /// Pairs with leader_lease — a leader shielded from depositions must
  /// also notice when it has actually lost the cluster.
  bool check_quorum = false;

  /// Leader lease: while a node has heard from a live leader within the
  /// last election_timeout (or is itself the leader), it rejects vote
  /// and pre-vote requests without adopting the candidate's term. This
  /// is the deposition shield against term-inflating rejoiners.
  bool leader_lease = false;

  // ---- Variant flags ----
  bool erasure = false;      ///< CRaft: replicate RS fragments.
  /// Run the actual Reed–Solomon coder on every entry (tests/examples).
  /// Benchmarks leave this off: fragment sizes and CPU costs are modelled,
  /// the coder itself is exercised by its own unit tests and microbench.
  bool real_erasure_coding = false;
  bool ecraft = false;       ///< ECRaft: erasure-coded degraded mode too.
  int kbucket_size = 0;      ///< KRaft: relay bucket size; 0 = off.
  bool verify_group = false; ///< VGRaft: per-entry hash + signature.

  /// Drop applied entries' payload bytes to bound memory in long benchmark
  /// runs (metadata and modelled sizes are kept). Disable in tests that
  /// inspect payloads.
  bool release_applied_payloads = false;

  /// When non-empty, the node keeps a REAL write-ahead log under this
  /// directory: a crash drops all in-memory state and a restart recovers
  /// the log, term, vote and snapshot/compaction boundaries from the file
  /// (the durable-log assumption of the paper's Sec. IV made concrete).
  /// Takes precedence over `disk.enabled`.
  std::string wal_dir;

  /// Simulated durable disk (ignored when wal_dir is set).
  DiskOptions disk;

  /// Dynamic membership (joint consensus + learner recovery). Dormant by
  /// default.
  MembershipOptions membership;

  /// Test hook: builds the node's durable-log backend instead of the
  /// wal_dir / disk selection above (e.g. an injected failing backend for
  /// storage-error-path tests). Implies durable semantics: a crash wipes
  /// memory.
  std::function<std::unique_ptr<storage::LogBackend>(int64_t node_id)>
      backend_factory;

  CostModel costs;
};

/// Canonical options for a protocol as configured in the paper's
/// experiments (`window_size` defaults to the paper's 10000 for the
/// non-blocking variants).
RaftOptions OptionsForProtocol(Protocol protocol, int window_size = 10000);

}  // namespace nbraft::raft

#endif  // NBRAFT_RAFT_TYPES_H_
