#include "sim/cpu_executor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"

namespace nbraft::sim {

CpuExecutor::CpuExecutor(Simulator* sim, int lanes, std::string name)
    : sim_(sim), name_(std::move(name)) {
  NBRAFT_CHECK_GE(lanes, 1);
  free_at_.assign(static_cast<size_t>(lanes), 0);
}

void CpuExecutor::set_speed_factor(double f) {
  NBRAFT_CHECK_GT(f, 0.0);
  speed_factor_ = f;
}

SimTime CpuExecutor::EarliestStart() const {
  const SimTime earliest = *std::min_element(free_at_.begin(), free_at_.end());
  return std::max(earliest, sim_->Now());
}

SimTime CpuExecutor::PlanTask(SimDuration cost) {
  if (cost < 0) cost = 0;
  auto effective =
      static_cast<SimDuration>(static_cast<double>(cost) / speed_factor_);
  if (switch_cost_ > 0 && outstanding_ > 0) {
    // Logarithmic growth in the runnable backlog: contention keeps
    // degrading throughput as concurrency rises (the paper's post-peak
    // decline) without the positive-feedback collapse a linear model has.
    const double scaled =
        static_cast<double>(switch_cost_) *
        std::log2(1.0 + static_cast<double>(outstanding_));
    effective += std::min(static_cast<SimDuration>(scaled),
                          max_switch_overhead_);
  }
  auto lane = std::min_element(free_at_.begin(), free_at_.end());
  const SimTime start = std::max(*lane, sim_->Now());
  const SimTime done = start + effective;
  *lane = done;
  busy_time_ += effective;
  queue_time_ += start - sim_->Now();
  ++tasks_;
  ++outstanding_;
  return done;
}

}  // namespace nbraft::sim
