#ifndef NBRAFT_SIM_CPU_EXECUTOR_H_
#define NBRAFT_SIM_CPU_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "sim/simulator.h"

namespace nbraft::sim {

/// Models a node's CPU as `lanes` identical cores. Submitting work picks the
/// lane that frees up earliest; when all lanes are busy the task queues,
/// which is exactly how the paper's high-concurrency throughput collapse
/// arises (Figs. 14, 17, 18: throughput drops past ~512 clients as requests
/// contend for cores).
///
/// `speed_factor` scales effective execution cost; the Fig. 23 CPU-Turbo
/// experiment lowers it to model disabled turbo, and the Fig. 20 cloud
/// experiment uses weaker instances.
class CpuExecutor {
 public:
  /// `lanes` must be >= 1.
  CpuExecutor(Simulator* sim, int lanes, std::string name);

  /// Schedules `fn` to run after `cost` of CPU time on the first free lane.
  /// Returns the completion time. `cost` is divided by speed_factor().
  ///
  /// Templated so the completion wrapper composes with `fn` *before* type
  /// erasure: the combined capture still fits EventFn's inline buffer for
  /// typical callbacks (wrapping an already-erased EventFn never could —
  /// its capture is strictly larger than the buffer it must fit in).
  template <typename F>
  SimTime Submit(SimDuration cost, F&& fn) {
    const SimTime done = PlanTask(cost);
    sim_->At(done, [this, fn = std::forward<F>(fn)]() mutable {
      --outstanding_;
      fn();
    });
    return done;
  }

  /// CPU time consumed without a completion callback (e.g. bookkeeping that
  /// delays later work on the same executor).
  SimTime Consume(SimDuration cost) {
    return Submit(cost, [] {});
  }

  /// Earliest time a new zero-cost task would start executing.
  SimTime EarliestStart() const;

  int lanes() const { return static_cast<int>(free_at_.size()); }

  double speed_factor() const { return speed_factor_; }
  void set_speed_factor(double f);

  /// Per-task scheduling overhead charged once per concurrently
  /// outstanding task at submission time (context switches, cache
  /// pressure), saturating at `max_overhead` so contention degrades
  /// throughput without a death spiral. This is what bends the throughput
  /// curve downward past ~512 clients in Figs. 14/17/18.
  void set_switch_cost(SimDuration cost, SimDuration max_overhead) {
    switch_cost_ = cost;
    max_switch_overhead_ = max_overhead;
  }
  SimDuration switch_cost() const { return switch_cost_; }

  /// Tasks submitted but not yet completed.
  int outstanding() const { return outstanding_; }

  /// Total CPU-busy time accumulated across lanes (for utilization stats).
  SimDuration busy_time() const { return busy_time_; }

  /// Sum over submissions of (start - submit) — aggregate queueing delay.
  SimDuration queue_time() const { return queue_time_; }

  uint64_t tasks_submitted() const { return tasks_; }

  const std::string& name() const { return name_; }

 private:
  /// Lane-selection + contention math shared by every Submit instantiation;
  /// claims a lane, records stats, bumps outstanding_, returns completion.
  SimTime PlanTask(SimDuration cost);

  Simulator* sim_;
  std::string name_;
  std::vector<SimTime> free_at_;
  double speed_factor_ = 1.0;
  SimDuration switch_cost_ = 0;
  SimDuration max_switch_overhead_ = 0;
  int outstanding_ = 0;
  SimDuration busy_time_ = 0;
  SimDuration queue_time_ = 0;
  uint64_t tasks_ = 0;
};

}  // namespace nbraft::sim

#endif  // NBRAFT_SIM_CPU_EXECUTOR_H_
