#ifndef NBRAFT_SIM_EVENT_FN_H_
#define NBRAFT_SIM_EVENT_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace nbraft::sim {

/// Move-only type-erased callable with small-buffer optimization, sized for
/// the simulator's hot events (network delivery, protocol timers, CPU
/// completions). Captures up to kInlineCapacity bytes live inside the event
/// slot itself — scheduling them allocates nothing. Larger or potentially
/// throwing-to-move callables fall back to one heap allocation, exactly
/// like std::function, so nothing is lost for cold paths.
///
/// This replaces std::function in the event queue: std::function's inline
/// buffer (16 bytes on libstdc++) is too small for even a `[this, msg]`
/// delivery capture, so the old kernel paid a heap allocation per
/// scheduled event.
class EventFn {
 public:
  static constexpr size_t kInlineCapacity = 64;

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT: match std::function.

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT: implicit, like std::function.
    if constexpr (sizeof(D) <= kInlineCapacity &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &InlineImpl<D>::kOps;
    } else {
      ::new (static_cast<void*>(storage_))
          D*(new D(std::forward<F>(f)));
      ops_ = &HeapImpl<D>::kOps;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(&other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(&other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs dst's payload from src's and destroys src's.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename D>
  struct InlineImpl {
    static D* Get(void* s) { return std::launder(reinterpret_cast<D*>(s)); }
    static void Invoke(void* s) { (*Get(s))(); }
    static void Relocate(void* dst, void* src) {
      D* from = Get(src);
      ::new (dst) D(std::move(*from));
      from->~D();
    }
    static void Destroy(void* s) { Get(s)->~D(); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  template <typename D>
  struct HeapImpl {
    static D* Get(void* s) {
      return *std::launder(reinterpret_cast<D**>(s));
    }
    static void Invoke(void* s) { (*Get(s))(); }
    static void Relocate(void* dst, void* src) {
      ::new (dst) D*(Get(src));
    }
    static void Destroy(void* s) { delete Get(s); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  void MoveFrom(EventFn* other) noexcept {
    if (other->ops_ != nullptr) {
      ops_ = other->ops_;
      ops_->relocate(storage_, other->storage_);
      other->ops_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace nbraft::sim

#endif  // NBRAFT_SIM_EVENT_FN_H_
