#include "sim/simulator.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace nbraft::sim {

namespace {

EventId MakeId(uint32_t slot, uint32_t generation) {
  return (static_cast<EventId>(generation) << 32) |
         (static_cast<EventId>(slot) + 1);
}

}  // namespace

Simulator::Simulator(uint64_t seed) : rng_(seed) {
  heap_.reserve(1024);
  slots_.reserve(1024);
  free_slots_.reserve(1024);
}

uint32_t Simulator::AcquireSlot() {
  if (!free_slots_.empty()) {
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

EventId Simulator::At(SimTime when, EventFn fn) {
  if (when < now_) when = now_;
  const uint32_t slot = AcquireSlot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  heap_.push_back(HeapItem{when, next_seq_++, slot, s.generation});
  std::push_heap(heap_.begin(), heap_.end(), Later);
  ++live_;
  return MakeId(slot, s.generation);
}

EventId Simulator::After(SimDuration delay, EventFn fn) {
  if (delay < 0) delay = 0;
  return At(now_ + delay, std::move(fn));
}

void Simulator::Cancel(EventId id) {
  const uint64_t low = id & 0xFFFFFFFFull;
  if (low == 0) return;  // kInvalidEventId.
  const auto slot = static_cast<size_t>(low - 1);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (s.generation != static_cast<uint32_t>(id >> 32)) return;  // Stale id.
  s.fn = EventFn();
  ++s.generation;  // Invalidates the heap record; reaped lazily at pop.
  free_slots_.push_back(static_cast<uint32_t>(slot));
  --live_;
}

bool Simulator::Step() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    const HeapItem item = heap_.back();
    heap_.pop_back();
    Slot& s = slots_[item.slot];
    if (s.generation != item.generation) continue;  // Cancelled.
    NBRAFT_CHECK_GE(item.when, now_);
    now_ = item.when;
    EventFn fn = std::move(s.fn);
    // Retire the slot before firing so the callback can reuse it and a
    // self-Cancel of the now-stale id is a no-op.
    ++s.generation;
    free_slots_.push_back(item.slot);
    --live_;
    ++events_processed_;
    if (fn) fn();
    return true;
  }
  return false;
}

void Simulator::Run(uint64_t max_events) {
  for (uint64_t i = 0; i < max_events; ++i) {
    if (!Step()) return;
  }
}

void Simulator::RunUntil(SimTime t) {
  while (!heap_.empty()) {
    // Reap cancelled heads so heap_.front().when is a live event time.
    const HeapItem& top = heap_.front();
    if (slots_[top.slot].generation != top.generation) {
      std::pop_heap(heap_.begin(), heap_.end(), Later);
      heap_.pop_back();
      continue;
    }
    if (top.when > t) break;
    Step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace nbraft::sim
