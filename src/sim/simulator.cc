#include "sim/simulator.h"

#include <utility>

#include "common/logging.h"

namespace nbraft::sim {

Simulator::Simulator(uint64_t seed) : rng_(seed) {}

EventId Simulator::At(SimTime when, EventFn fn) {
  if (when < now_) when = now_;
  const EventId id = next_seq_++;
  heap_.push(HeapItem{when, id, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

EventId Simulator::After(SimDuration delay, EventFn fn) {
  if (delay < 0) delay = 0;
  return At(now_ + delay, std::move(fn));
}

void Simulator::Cancel(EventId id) { callbacks_.erase(id); }

bool Simulator::Step() {
  while (!heap_.empty()) {
    const HeapItem item = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(item.id);
    if (it == callbacks_.end()) continue;  // Cancelled.
    NBRAFT_CHECK_GE(item.when, now_);
    now_ = item.when;
    EventFn fn = std::move(it->second);
    callbacks_.erase(it);
    ++events_processed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::Run(uint64_t max_events) {
  for (uint64_t i = 0; i < max_events; ++i) {
    if (!Step()) return;
  }
}

void Simulator::RunUntil(SimTime t) {
  while (!heap_.empty()) {
    // Skip cancelled heads so heap_.top().when is a live event time.
    if (callbacks_.find(heap_.top().id) == callbacks_.end()) {
      heap_.pop();
      continue;
    }
    if (heap_.top().when > t) break;
    Step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace nbraft::sim
