#ifndef NBRAFT_SIM_SIMULATOR_H_
#define NBRAFT_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/sim_time.h"

namespace nbraft::sim {

/// Handle for a scheduled event; used to cancel timers (e.g. election
/// timeouts that are reset by heartbeats).
using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

using EventFn = std::function<void()>;

/// Deterministic single-threaded discrete-event simulator.
///
/// All cluster activity — network delivery, CPU completion, protocol timers,
/// client think time — is expressed as events on one queue ordered by
/// (virtual time, insertion sequence). Runs with the same seed replay
/// bit-identically, which the integration tests rely on.
class Simulator {
 public:
  explicit Simulator(uint64_t seed);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `when` (clamped to >= Now()).
  EventId At(SimTime when, EventFn fn);

  /// Schedules `fn` after `delay` (clamped to >= 0).
  EventId After(SimDuration delay, EventFn fn);

  /// Cancels a scheduled event. Cancelling an already-fired or invalid id
  /// is a no-op.
  void Cancel(EventId id);

  /// Runs one event; returns false when the queue is empty.
  bool Step();

  /// Runs events until the queue is empty or `max_events` fired.
  void Run(uint64_t max_events = UINT64_MAX);

  /// Runs all events scheduled at times <= `t`, then advances Now() to `t`.
  void RunUntil(SimTime t);

  /// Root deterministic random stream for this run.
  nbraft::Rng* rng() { return &rng_; }

  uint64_t events_processed() const { return events_processed_; }
  size_t pending_events() const { return callbacks_.size(); }

 private:
  struct HeapItem {
    SimTime when;
    uint64_t seq;
    EventId id;
    bool operator>(const HeapItem& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t events_processed_ = 0;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<HeapItem>>
      heap_;
  std::unordered_map<EventId, EventFn> callbacks_;
  nbraft::Rng rng_;
};

}  // namespace nbraft::sim

#endif  // NBRAFT_SIM_SIMULATOR_H_
