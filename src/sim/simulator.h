#ifndef NBRAFT_SIM_SIMULATOR_H_
#define NBRAFT_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/sim_time.h"
#include "sim/event_fn.h"

namespace nbraft::sim {

/// Handle for a scheduled event; used to cancel timers (e.g. election
/// timeouts that are reset by heartbeats). Generation-tagged: the high
/// 32 bits are the owning slot's generation at scheduling time, the low
/// 32 bits are slot index + 1 (so 0 stays the invalid id). A fired or
/// cancelled event bumps its slot's generation, which invalidates every
/// outstanding handle to it in O(1).
using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

/// Deterministic single-threaded discrete-event simulator.
///
/// All cluster activity — network delivery, CPU completion, protocol timers,
/// client think time — is expressed as events on one queue ordered by
/// (virtual time, insertion sequence). Runs with the same seed replay
/// bit-identically, which the integration tests rely on.
///
/// Internally the queue is a slab-pooled event arena: callbacks live in
/// recycled slots (no per-event heap allocation once the pool is warm —
/// EventFn keeps small captures inline), the heap holds plain
/// (when, seq, slot, generation) records, and Cancel is a generation bump
/// with lazy deletion when the stale heap record surfaces at pop.
class Simulator {
 public:
  explicit Simulator(uint64_t seed);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `when` (clamped to >= Now()).
  EventId At(SimTime when, EventFn fn);

  /// Schedules `fn` after `delay` (clamped to >= 0).
  EventId After(SimDuration delay, EventFn fn);

  /// Cancels a scheduled event. Cancelling an already-fired, already-
  /// cancelled, or invalid id is a no-op.
  void Cancel(EventId id);

  /// Runs one event; returns false when the queue is empty.
  bool Step();

  /// Runs events until the queue is empty or `max_events` fired.
  void Run(uint64_t max_events = UINT64_MAX);

  /// Runs all events scheduled at times <= `t`, then advances Now() to `t`.
  void RunUntil(SimTime t);

  /// Root deterministic random stream for this run.
  nbraft::Rng* rng() { return &rng_; }

  uint64_t events_processed() const { return events_processed_; }
  size_t pending_events() const { return live_; }

 private:
  struct Slot {
    uint32_t generation = 1;
    EventFn fn;
  };

  /// Heap records are value-only; the callback stays in its slot so heap
  /// sifts move 24 bytes, not a type-erased callable. `seq` increments
  /// once per At() — the same tiebreaker sequence the pre-arena kernel
  /// used as its EventId — so replay ordering is bit-identical.
  struct HeapItem {
    SimTime when;
    uint64_t seq;
    uint32_t slot;
    uint32_t generation;
  };

  /// Min-heap comparator (std::push_heap builds a max-heap by `comp`).
  static bool Later(const HeapItem& a, const HeapItem& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }

  uint32_t AcquireSlot();

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t events_processed_ = 0;
  size_t live_ = 0;
  std::vector<HeapItem> heap_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  nbraft::Rng rng_;
};

}  // namespace nbraft::sim

#endif  // NBRAFT_SIM_SIMULATOR_H_
