#include "storage/durable_log.h"

#include "common/logging.h"

namespace nbraft::storage {

Status DurableLog::Open(const std::string& path) { return wal_.Open(path); }

Status DurableLog::Close() { return wal_.Close(); }

Status DurableLog::AppendEntry(const LogEntry& entry) {
  NBRAFT_CHECK_GE(entry.index, 1) << "marker indices are reserved";
  Status s = wal_.Append(entry);
  if (!s.ok()) return s;
  return wal_.Sync();
}

Status DurableLog::AppendTruncate(LogIndex from_index) {
  LogEntry marker;
  marker.index = kTruncateMarker;
  marker.term = from_index;  // Payload slot for the truncation point.
  Status s = wal_.Append(marker);
  if (!s.ok()) return s;
  return wal_.Sync();
}

Status DurableLog::AppendHardState(const HardState& state) {
  LogEntry marker;
  marker.index = kHardStateMarker;
  marker.term = state.term;
  marker.client_id = state.voted_for;
  Status s = wal_.Append(marker);
  if (!s.ok()) return s;
  return wal_.Sync();
}

Result<DurableLog::RecoveredState> DurableLog::Recover(
    const std::string& path) {
  RecoveredState out;
  size_t torn = 0;
  Status replayed = Wal::Replay(
      path,
      [&out](LogEntry entry) {
        ++out.records;
        if (entry.index == kTruncateMarker) {
          // Truncations in the stream always refer to live suffixes.
          const LogIndex from = entry.term;
          if (from <= out.log.LastIndex()) {
            NBRAFT_CHECK(out.log.TruncateSuffix(from).ok());
          }
          return;
        }
        if (entry.index == kHardStateMarker) {
          out.hard_state.term = entry.term;
          out.hard_state.voted_for = entry.client_id;
          return;
        }
        out.log.Append(std::move(entry));
      },
      &torn);
  if (!replayed.ok()) return replayed;
  out.truncated_tail_bytes = torn;
  return out;
}

}  // namespace nbraft::storage
