#include "storage/durable_log.h"

#include "common/logging.h"
#include "storage/sim_disk.h"

namespace nbraft::storage {

Status DurableLog::Open(const std::string& path) {
  auto backend = std::make_unique<WalFileBackend>();
  Status s = backend->Open(path);
  if (!s.ok()) return s;
  backend_ = std::move(backend);
  return Status::Ok();
}

Status DurableLog::Close() {
  if (backend_ == nullptr) return Status::Ok();
  Status s = backend_->Close();
  backend_.reset();
  return s;
}

Status DurableLog::AppendEntry(const LogEntry& entry) {
  NBRAFT_CHECK_GE(entry.index, 1) << "marker indices are reserved";
  return backend_->Append(entry);
}

Status DurableLog::AppendTruncate(LogIndex from_index) {
  LogEntry marker;
  marker.index = kTruncateMarker;
  marker.term = from_index;  // Payload slot for the truncation point.
  return backend_->Append(marker);
}

Status DurableLog::AppendHardState(const HardState& state) {
  LogEntry marker;
  marker.index = kHardStateMarker;
  marker.term = state.term;
  marker.client_id = state.voted_for;
  return backend_->Append(marker);
}

Status DurableLog::AppendCompact(LogIndex upto) {
  LogEntry marker;
  marker.index = kCompactMarker;
  marker.term = upto;  // Payload slot for the compaction point.
  return backend_->Append(marker);
}

Status DurableLog::AppendSnapshot(LogIndex index, Term term,
                                  const nbraft::Buffer& data,
                                  bool installed) {
  LogEntry marker;
  marker.index = kSnapshotMarker;
  marker.term = index;       // Last included index.
  marker.prev_term = term;   // Last included term.
  marker.client_id = installed ? 1 : 0;
  marker.payload = data;
  return backend_->Append(marker);
}

Status DurableLog::AppendConfig(const std::string& encoded, LogIndex at) {
  LogEntry marker;
  marker.index = kConfigMarker;
  marker.term = at;  // Payload slot for the effective index.
  marker.payload = nbraft::Buffer(encoded);
  return backend_->Append(marker);
}

void DurableLog::Sync(std::function<void(Status)> done) {
  backend_->Sync(std::move(done));
}

void DurableLog::FoldRecord(LogEntry entry, RecoveredState* out) {
  ++out->records;
  switch (entry.index) {
    case kTruncateMarker: {
      // Truncations in the stream always refer to live suffixes.
      const LogIndex from = entry.term;
      if (from <= out->log.LastIndex()) {
        NBRAFT_CHECK(out->log.TruncateSuffix(from).ok());
      }
      return;
    }
    case kHardStateMarker:
      out->hard_state.term = entry.term;
      out->hard_state.voted_for = entry.client_id;
      return;
    case kCompactMarker: {
      const LogIndex upto = entry.term;
      if (upto >= out->log.FirstIndex() && upto <= out->log.LastIndex()) {
        NBRAFT_CHECK(out->log.CompactPrefix(upto).ok());
      }
      return;
    }
    case kSnapshotMarker: {
      out->has_snapshot = true;
      out->snapshot_index = entry.term;
      out->snapshot_term = entry.prev_term;
      out->snapshot_data = entry.payload;
      if (entry.client_id == 1) {
        // Installed from the leader: the log restarts past the snapshot.
        out->log.ResetToSnapshot(out->snapshot_index, out->snapshot_term);
      }
      return;
    }
    case kConfigMarker:
      // Last-writer-wins: rollbacks re-stage the supplanted roster, so the
      // final marker in the stream is the configuration in effect.
      out->config = entry.payload.str();
      out->config_index = entry.term;
      return;
    default:
      out->log.Append(std::move(entry));
      return;
  }
}

Result<DurableLog::RecoveredState> DurableLog::Recover(
    const std::string& path) {
  RecoveredState out;
  size_t torn = 0;
  Status replayed = Wal::Replay(
      path, [&out](LogEntry entry) { FoldRecord(std::move(entry), &out); },
      &torn);
  if (!replayed.ok()) return replayed;
  out.truncated_tail_bytes = torn;
  return out;
}

DurableLog::RecoveredState DurableLog::RecoverFromDisk(const SimDisk& disk) {
  RecoveredState out;
  const auto& records = disk.records();
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].corrupt) {
      // Bit rot cuts the stream: the corrupt record and everything after
      // it are gone, exactly as if the node had crashed before writing
      // them. The caller quarantines the node until it heals.
      out.corrupt_dropped_records = records.size() - i;
      break;
    }
    FoldRecord(records[i].entry, &out);
  }
  out.truncated_tail_bytes = disk.torn_tail_bytes();
  return out;
}

}  // namespace nbraft::storage
