#ifndef NBRAFT_STORAGE_DURABLE_LOG_H_
#define NBRAFT_STORAGE_DURABLE_LOG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "common/buffer.h"
#include "common/status.h"
#include "net/network.h"
#include "storage/log_backend.h"
#include "storage/raft_log.h"
#include "storage/wal.h"

namespace nbraft::storage {

class SimDisk;

/// The durable face of a Raft replica: a typed write-ahead log holding
/// everything Raft requires to survive a crash — the entry log (with
/// truncations), the current term, the vote, and snapshot/compaction
/// boundaries. Recovery folds the record stream back into a RaftLog + hard
/// state + snapshot.
///
/// Record stream format (each record framed by the Wal entry codec; the
/// byte sink behind it is a pluggable LogBackend — real file or simulated
/// disk):
///   * append:     the LogEntry itself;
///   * truncate:   a marker entry (sentinel index scheme) naming the first
///     removed index;
///   * hard state: a marker entry carrying (term, voted_for);
///   * compact:    a marker naming the last compacted index (follows a
///     snapshot record);
///   * snapshot:   a marker carrying (last included index, term) plus the
///     state-machine image, flagged local (taken here) or installed
///     (received from the leader).
///
/// Appends stage records; durability is the covering Sync's business (the
/// raft layer's DurabilityCoordinator drives it, batching records per
/// fsync under group commit).
class DurableLog {
 public:
  // Marker records use impossible indices to distinguish record kinds:
  // real entries always have index >= 1.
  static constexpr LogIndex kTruncateMarker = -1;
  static constexpr LogIndex kHardStateMarker = -2;
  static constexpr LogIndex kCompactMarker = -3;
  static constexpr LogIndex kSnapshotMarker = -4;
  static constexpr LogIndex kConfigMarker = -5;

  struct HardState {
    Term term = 0;
    net::NodeId voted_for = net::kInvalidNode;
  };

  struct RecoveredState {
    RaftLog log;
    HardState hard_state;
    size_t records = 0;
    size_t truncated_tail_bytes = 0;  ///< Torn tail dropped, if any.
    /// Latest snapshot in the stream (local or installed); when present the
    /// state machine restores from it and apply resumes past it.
    bool has_snapshot = false;
    LogIndex snapshot_index = 0;
    Term snapshot_term = 0;
    nbraft::Buffer snapshot_data;
    /// Records dropped because a CRC-detected corrupt record cut the
    /// stream (the corrupt record and everything after it). Non-zero means
    /// the node lost durable suffix state and must heal from the leader
    /// before participating in elections again.
    size_t corrupt_dropped_records = 0;
    /// Latest cluster configuration marker (dynamic membership): the
    /// encoded roster and the log index at which it took effect. Empty
    /// when the stream carries no config records (fixed-roster clusters).
    std::string config;
    LogIndex config_index = 0;
  };

  DurableLog() = default;

  /// Opens (creating if needed) a real WAL file backend at `path`.
  Status Open(const std::string& path);

  /// Adopts an externally built backend (simulated disk, test double).
  void OpenWith(std::unique_ptr<LogBackend> backend) {
    backend_ = std::move(backend);
  }

  Status Close();
  bool is_open() const { return backend_ != nullptr; }

  /// True when Sync completes inline without consuming virtual time.
  bool instant() const {
    return backend_ == nullptr || backend_->instant();
  }

  /// Stages an appended entry. Durable after a covering Sync.
  Status AppendEntry(const LogEntry& entry);

  /// Stages a suffix truncation starting at `from_index`.
  Status AppendTruncate(LogIndex from_index);

  /// Stages a term/vote change.
  Status AppendHardState(const HardState& state);

  /// Stages a prefix compaction up to and including `upto`.
  Status AppendCompact(LogIndex upto);

  /// Stages a snapshot boundary: `installed` distinguishes a snapshot
  /// received via InstallSnapshot (which resets the log) from one taken
  /// locally (which leaves the log to a following compact record).
  Status AppendSnapshot(LogIndex index, Term term,
                        const nbraft::Buffer& data, bool installed);

  /// Stages a cluster-configuration change: the canonical encoded roster
  /// plus the log index at which it took effect. Recovery keeps the last
  /// one in the stream (rollbacks re-stage the supplanted roster).
  Status AppendConfig(const std::string& encoded, LogIndex at);

  /// Forwards a durability barrier to the backend.
  void Sync(std::function<void(Status)> done);

  /// Folds `path`'s record stream into a recovered log + hard state.
  /// Tolerates a torn final record (crash mid-write).
  static Result<RecoveredState> Recover(const std::string& path);

  /// Folds a simulated disk's durable record stream. Never fails: a
  /// corrupt record cuts the stream there (reported via
  /// `corrupt_dropped_records`), matching the file path's torn-tail
  /// tolerance.
  static RecoveredState RecoverFromDisk(const SimDisk& disk);

 private:
  static void FoldRecord(LogEntry entry, RecoveredState* out);

  std::unique_ptr<LogBackend> backend_;
};

}  // namespace nbraft::storage

#endif  // NBRAFT_STORAGE_DURABLE_LOG_H_
