#ifndef NBRAFT_STORAGE_DURABLE_LOG_H_
#define NBRAFT_STORAGE_DURABLE_LOG_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/network.h"
#include "storage/raft_log.h"
#include "storage/wal.h"

namespace nbraft::storage {

/// The durable face of a Raft replica: a typed write-ahead log holding the
/// three things Raft requires to survive a crash — the entry log (with
/// truncations), the current term, and the vote. Recovery folds the record
/// stream back into a RaftLog + hard state.
///
/// Record stream format (each record framed by the Wal entry codec):
///   * append:   the LogEntry itself;
///   * truncate: a marker entry (sentinel index scheme) naming the first
///     removed index;
///   * hard state: a marker entry carrying (term, voted_for).
class DurableLog {
 public:
  struct HardState {
    Term term = 0;
    net::NodeId voted_for = net::kInvalidNode;
  };

  struct RecoveredState {
    RaftLog log;
    HardState hard_state;
    size_t records = 0;
    size_t truncated_tail_bytes = 0;  ///< Torn tail dropped, if any.
  };

  DurableLog() = default;

  /// Opens (creating if needed) the node's WAL file.
  Status Open(const std::string& path);
  Status Close();
  bool is_open() const { return wal_.is_open(); }

  /// Durably records an appended entry.
  Status AppendEntry(const LogEntry& entry);

  /// Durably records a suffix truncation starting at `from_index`.
  Status AppendTruncate(LogIndex from_index);

  /// Durably records a term/vote change.
  Status AppendHardState(const HardState& state);

  /// Folds `path`'s record stream into a recovered log + hard state.
  /// Tolerates a torn final record (crash mid-write).
  static Result<RecoveredState> Recover(const std::string& path);

 private:
  // Marker entries use impossible indices to distinguish record kinds:
  // real entries always have index >= 1.
  static constexpr LogIndex kTruncateMarker = -1;
  static constexpr LogIndex kHardStateMarker = -2;

  Wal wal_;
};

}  // namespace nbraft::storage

#endif  // NBRAFT_STORAGE_DURABLE_LOG_H_
