#ifndef NBRAFT_STORAGE_LOG_BACKEND_H_
#define NBRAFT_STORAGE_LOG_BACKEND_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "storage/log_entry.h"
#include "storage/wal.h"

namespace nbraft::storage {

/// The seam between DurableLog's typed record stream and whatever actually
/// stores the bytes: the real WAL file, the simulated disk, or a test
/// double. Records staged with Append become durable only once a covering
/// Sync completes; what "durable" means (a real fsync, a virtual-time
/// latency charge, an injected failure) is the backend's business.
class LogBackend {
 public:
  virtual ~LogBackend() = default;

  /// True when Sync completes inline without consuming virtual time. An
  /// instant backend never leaves a record un-synced across a simulated
  /// crash, so the protocol layer may acknowledge writes immediately after
  /// persisting them — exactly the pre-disk-model behavior.
  virtual bool instant() const = 0;

  /// Stages one record. Not durable until a covering Sync completes.
  virtual Status Append(const LogEntry& record) = 0;

  /// Makes every record appended so far durable, then invokes `done` with
  /// the outcome. Instant backends invoke `done` before returning.
  virtual void Sync(std::function<void(Status)> done) = 0;

  virtual Status Close() = 0;
};

/// Real-file backend wrapping Wal. The fsync happens for real but costs no
/// virtual time, so it is `instant` to the protocol layer.
class WalFileBackend : public LogBackend {
 public:
  Status Open(const std::string& path) { return wal_.Open(path); }

  bool instant() const override { return true; }
  Status Append(const LogEntry& record) override {
    return wal_.Append(record);
  }
  void Sync(std::function<void(Status)> done) override { done(wal_.Sync()); }
  Status Close() override { return wal_.Close(); }

 private:
  Wal wal_;
};

}  // namespace nbraft::storage

#endif  // NBRAFT_STORAGE_LOG_BACKEND_H_
