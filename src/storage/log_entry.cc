#include "storage/log_entry.h"

#include <cstdio>

#include "common/hash.h"
#include "common/varint.h"

namespace nbraft::storage {

namespace {

size_t VarintLen(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

size_t VarintSignedLen(int64_t v) { return VarintLen(ZigZagEncode(v)); }

}  // namespace

size_t LogEntry::EncodedSize() const {
  const size_t body =
      VarintSignedLen(index) + VarintSignedLen(term) +
      VarintSignedLen(prev_term) + VarintSignedLen(client_id) +
      VarintLen(request_id) + VarintSignedLen(frag_shard) +
      VarintLen(frag_k) + VarintLen(full_size) + VarintLen(payload.size()) +
      payload.size();
  return VarintLen(body) + body + 4;  // Length prefix + body + CRC32C.
}

void LogEntry::EncodeTo(std::string* out) const {
  std::string body;
  PutVarintSigned64(&body, index);
  PutVarintSigned64(&body, term);
  PutVarintSigned64(&body, prev_term);
  PutVarintSigned64(&body, client_id);
  PutVarint64(&body, request_id);
  PutVarintSigned64(&body, frag_shard);
  PutVarint64(&body, frag_k);
  PutVarint64(&body, full_size);
  PutVarint64(&body, payload.size());
  body.append(payload.data(), payload.size());

  PutVarint64(out, body.size());
  *out += body;
  PutFixed32(out, Crc32c(body));
}

Result<LogEntry> LogEntry::DecodeFrom(std::string_view* in) {
  uint64_t body_len = 0;
  if (!GetVarint64(in, &body_len)) {
    return Status::Corruption("log entry: truncated length");
  }
  if (in->size() < body_len + 4) {
    return Status::Corruption("log entry: truncated body");
  }
  std::string_view body = in->substr(0, body_len);
  std::string_view rest = in->substr(body_len);
  uint32_t stored_crc = 0;
  if (!GetFixed32(&rest, &stored_crc)) {
    return Status::Corruption("log entry: truncated crc");
  }
  if (Crc32c(body) != stored_crc) {
    return Status::Corruption("log entry: crc mismatch");
  }

  LogEntry entry;
  int64_t client_id = 0;
  int64_t frag_shard = 0;
  uint64_t frag_k = 0;
  uint64_t payload_len = 0;
  if (!GetVarintSigned64(&body, &entry.index) ||
      !GetVarintSigned64(&body, &entry.term) ||
      !GetVarintSigned64(&body, &entry.prev_term) ||
      !GetVarintSigned64(&body, &client_id) ||
      !GetVarint64(&body, &entry.request_id) ||
      !GetVarintSigned64(&body, &frag_shard) ||
      !GetVarint64(&body, &frag_k) || !GetVarint64(&body, &entry.full_size) ||
      !GetVarint64(&body, &payload_len) || body.size() != payload_len) {
    return Status::Corruption("log entry: malformed body");
  }
  entry.client_id = static_cast<net::NodeId>(client_id);
  entry.frag_shard = static_cast<int32_t>(frag_shard);
  entry.frag_k = static_cast<uint32_t>(frag_k);
  entry.payload = nbraft::Buffer(body);
  *in = rest;
  return entry;
}

std::string LogEntry::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%lld,%lld,%lld)",
                static_cast<long long>(index), static_cast<long long>(term),
                static_cast<long long>(prev_term));
  return buf;
}

LogEntry MakeEntry(LogIndex index, Term term, Term prev_term,
                   std::string payload) {
  LogEntry e;
  e.index = index;
  e.term = term;
  e.prev_term = prev_term;
  e.payload = std::move(payload);
  return e;
}

}  // namespace nbraft::storage
