#ifndef NBRAFT_STORAGE_LOG_ENTRY_H_
#define NBRAFT_STORAGE_LOG_ENTRY_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/buffer.h"
#include "common/result.h"
#include "common/status.h"
#include "net/network.h"

namespace nbraft::storage {

/// Monotone log position; index 0 is the sentinel "before the log".
using LogIndex = int64_t;
/// Raft term; term 0 is the sentinel for the empty-log position.
using Term = int64_t;

/// One replicated log entry.
///
/// Besides the classic Raft fields (index, term), NB-Raft entries carry
/// `prev_term` — the term of the immediately preceding entry — which the
/// follower's sliding window uses for its continuity checks (paper
/// Sec. III-A: an entry (i, j, k) where k is the previous entry's term).
struct LogEntry {
  LogIndex index = 0;
  Term term = 0;
  Term prev_term = 0;

  /// Originating client connection and its per-client sequence number;
  /// used for response routing and the data-loss accounting of Sec. V-G.
  net::NodeId client_id = net::kInvalidNode;
  uint64_t request_id = 0;

  /// Opaque command bytes applied to the state machine. For CRaft
  /// replicas this is one Reed–Solomon shard of the original command.
  /// Ref-counted and immutable: copying an entry (per-peer RPC fan-out,
  /// batches, retries, the follower's sliding window) shares the bytes.
  nbraft::Buffer payload;

  /// CRaft fragment metadata: shard id (-1 = not a fragment), the number of
  /// data shards `k` needed for reconstruction, and the original command
  /// size.
  int32_t frag_shard = -1;
  uint32_t frag_k = 0;
  uint64_t full_size = 0;

  /// When long benchmark runs release applied payload bytes to bound
  /// memory, this keeps the modelled size so re-sends stay realistic.
  uint64_t payload_size_hint = 0;

  bool IsFragment() const { return frag_shard >= 0; }

  /// Modelled wire size: payload plus header overhead. Drives the network
  /// bandwidth simulation.
  size_t WireSize() const {
    const size_t bytes =
        payload.size() > payload_size_hint ? payload.size()
                                           : payload_size_hint;
    return bytes + kHeaderOverhead;
  }

  /// Releases this entry's payload reference while keeping the modelled
  /// size (the bytes are freed once every sharing copy has released too).
  void ReleasePayload() {
    if (payload.size() > payload_size_hint) payload_size_hint = payload.size();
    payload.clear();
  }

  /// Serializes to a self-delimiting binary record with a CRC32C trailer.
  void EncodeTo(std::string* out) const;

  /// Exact byte size of EncodeTo's output, computed without encoding. The
  /// simulated disk charges bandwidth and sizes torn tails from this.
  size_t EncodedSize() const;

  /// Decodes one record from the front of `*in`, advancing it.
  static Result<LogEntry> DecodeFrom(std::string_view* in);

  /// Entry identity as the paper draws it: "(index, term, prev_term)".
  std::string ToString() const;

  friend bool operator==(const LogEntry& a, const LogEntry& b) {
    return a.index == b.index && a.term == b.term &&
           a.prev_term == b.prev_term && a.client_id == b.client_id &&
           a.request_id == b.request_id && a.payload == b.payload &&
           a.frag_shard == b.frag_shard && a.frag_k == b.frag_k &&
           a.full_size == b.full_size;
  }

  static constexpr size_t kHeaderOverhead = 48;
};

/// Convenience factory used widely in tests: an entry whose identity is
/// the paper's (index, term, prev_term) triple.
LogEntry MakeEntry(LogIndex index, Term term, Term prev_term,
                   std::string payload = "");

}  // namespace nbraft::storage

#endif  // NBRAFT_STORAGE_LOG_ENTRY_H_
