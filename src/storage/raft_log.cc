#include "storage/raft_log.h"

#include <utility>

#include "common/logging.h"

namespace nbraft::storage {

Term RaftLog::LastTerm() const {
  return entries_.empty() ? compacted_term_ : entries_.back().term;
}

Result<Term> RaftLog::TermAt(LogIndex index) const {
  if (index == first_index_ - 1) return compacted_term_;
  if (index < first_index_ - 1 || index > LastIndex()) {
    return Status::OutOfRange("TermAt(" + std::to_string(index) + ")");
  }
  return entries_[static_cast<size_t>(index - first_index_)].term;
}

Result<LogEntry> RaftLog::At(LogIndex index) const {
  if (index < first_index_ || index > LastIndex()) {
    return Status::OutOfRange("At(" + std::to_string(index) + ")");
  }
  return entries_[static_cast<size_t>(index - first_index_)];
}

const LogEntry& RaftLog::AtUnchecked(LogIndex index) const {
  NBRAFT_CHECK_GE(index, first_index_);
  NBRAFT_CHECK_LE(index, LastIndex());
  return entries_[static_cast<size_t>(index - first_index_)];
}

void RaftLog::Append(LogEntry entry) {
  NBRAFT_CHECK_EQ(entry.index, LastIndex() + 1)
      << "log must stay continuous: appending " << entry.ToString()
      << " after last index " << LastIndex();
  NBRAFT_CHECK_GE(entry.term, LastTerm())
      << "terms are non-decreasing: " << entry.ToString();
  NBRAFT_CHECK_EQ(entry.prev_term, LastTerm())
      << "prev_term must match predecessor: " << entry.ToString()
      << " after term " << LastTerm();
  payload_bytes_ += entry.payload.size();
  entries_.push_back(std::move(entry));
}

Status RaftLog::TruncateSuffix(LogIndex from_index) {
  if (from_index > LastIndex()) return Status::Ok();
  if (from_index < first_index_) {
    return Status::OutOfRange("cannot truncate into compacted prefix");
  }
  while (LastIndex() >= from_index) {
    payload_bytes_ -= entries_.back().payload.size();
    entries_.pop_back();
  }
  return Status::Ok();
}

Status RaftLog::CompactPrefix(LogIndex upto) {
  if (upto < first_index_) return Status::Ok();
  if (upto > LastIndex()) {
    return Status::OutOfRange("compacting beyond last index");
  }
  const auto term = TermAt(upto);
  while (first_index_ <= upto) {
    payload_bytes_ -= entries_.front().payload.size();
    entries_.pop_front();
    ++first_index_;
  }
  compacted_term_ = term.value();
  return Status::Ok();
}

void RaftLog::ResetToSnapshot(LogIndex index, Term term) {
  entries_.clear();
  payload_bytes_ = 0;
  first_index_ = index + 1;
  compacted_term_ = term;
}

void RaftLog::ReleasePayloadAt(LogIndex index) {
  if (index < first_index_ || index > LastIndex()) return;
  LogEntry& e = entries_[static_cast<size_t>(index - first_index_)];
  payload_bytes_ -= e.payload.size();
  e.ReleasePayload();
}

bool RaftLog::Matches(LogIndex index, Term term) const {
  if (index == 0) return term == 0;
  const auto t = TermAt(index);
  return t.ok() && t.value() == term;
}

}  // namespace nbraft::storage
