#ifndef NBRAFT_STORAGE_RAFT_LOG_H_
#define NBRAFT_STORAGE_RAFT_LOG_H_

#include <cstdint>
#include <deque>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/log_entry.h"

namespace nbraft::storage {

/// The continuous Raft log of one replica: a dense sequence of entries with
/// 1-based indices and a compactable prefix. Enforces the Raft invariants a
/// log must uphold locally:
///
///  * indices are contiguous (no holes — holes live only in NB-Raft's
///    sliding window, never in the log);
///  * terms are non-decreasing;
///  * each entry's prev_term matches its predecessor's term.
///
/// Violations are programming errors and abort via NBRAFT_CHECK; recoverable
/// conditions (e.g. out-of-range lookups) return Status.
class RaftLog {
 public:
  RaftLog() = default;

  /// Index of the last entry; 0 when empty (after compaction this is the
  /// snapshot's last included index if nothing follows).
  LogIndex LastIndex() const { return first_index_ + Size() - 1; }

  /// Term of the last entry; snapshot term / 0 when empty.
  Term LastTerm() const;

  /// First index still present (compacted logs start later than 1).
  LogIndex FirstIndex() const { return first_index_; }

  /// Number of entries physically present.
  int64_t Size() const { return static_cast<int64_t>(entries_.size()); }
  bool Empty() const { return entries_.empty(); }

  /// Term at `index`; supports index 0 (returns 0) and the last compacted
  /// index. Fails with OutOfRange otherwise.
  Result<Term> TermAt(LogIndex index) const;

  /// Entry lookup; fails with OutOfRange for compacted or future indices.
  Result<LogEntry> At(LogIndex index) const;
  const LogEntry& AtUnchecked(LogIndex index) const;

  /// Appends `entry`, which must be exactly LastIndex()+1 and satisfy the
  /// continuity invariants above.
  void Append(LogEntry entry);

  /// Removes all entries with index >= `from_index` (leader-change
  /// truncation). No-op if `from_index` > LastIndex().
  Status TruncateSuffix(LogIndex from_index);

  /// Drops entries with index <= `upto` after a snapshot. `upto` must be
  /// <= commit point (enforced by the caller); remembers the boundary term.
  Status CompactPrefix(LogIndex upto);

  /// Discards the whole log and restarts it right after an installed
  /// snapshot at (`index`, `term`) — the receiving side of
  /// InstallSnapshot.
  void ResetToSnapshot(LogIndex index, Term term);

  /// Checks whether an entry at (index, term) is present (or covered by the
  /// compacted prefix with a matching boundary term).
  bool Matches(LogIndex index, Term term) const;

  /// Releases the payload bytes of an applied entry to bound memory in
  /// long runs (the modelled wire size is preserved). No-op out of range.
  void ReleasePayloadAt(LogIndex index);

  /// Total payload bytes held (for memory accounting).
  size_t PayloadBytes() const { return payload_bytes_; }

 private:
  std::deque<LogEntry> entries_;
  LogIndex first_index_ = 1;      // Index of entries_.front() when non-empty.
  Term compacted_term_ = 0;       // Term at first_index_ - 1.
  size_t payload_bytes_ = 0;
};

}  // namespace nbraft::storage

#endif  // NBRAFT_STORAGE_RAFT_LOG_H_
