#include "storage/sim_disk.h"

#include <algorithm>
#include <string>

#include "storage/durable_log.h"

namespace nbraft::storage {

SimDisk::SimDisk(sim::Simulator* sim, const Options& opts, int64_t node_id)
    : opts_(opts),
      owned_io_lane_(opts.shared_io_lane != nullptr
                         ? nullptr
                         : std::make_unique<sim::CpuExecutor>(
                               sim, 1,
                               "node" + std::to_string(node_id) + ".io")),
      io_lane_(opts.shared_io_lane != nullptr ? opts.shared_io_lane
                                              : owned_io_lane_.get()),
      // Seeded independently of the simulator rng: creating or using a disk
      // must never shift the draws of the protocol layer.
      fault_rng_(opts.fault_seed +
                 0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(node_id + 1)) {}

Status SimDisk::Append(const LogEntry& record) {
  if (write_errors_armed_ > 0) {
    --write_errors_armed_;
    ++write_errors_injected_;
    return Status::IoError("sim disk: transient write error");
  }
  Record r;
  r.encoded_size = record.EncodedSize();
  r.entry = record;
  bytes_written_ += r.encoded_size;
  pending_write_cost_ += opts_.write_latency;
  if (opts_.bytes_per_us > 0) {
    pending_write_cost_ += static_cast<SimDuration>(
        static_cast<double>(r.encoded_size) / opts_.bytes_per_us *
        static_cast<double>(kMicrosecond));
  }
  if (record.index == DurableLog::kCompactMarker) {
    // Compacted entries can never be read again (every recovery folds this
    // marker or cuts before it together with everything it covers — the
    // fault injector only rots records past the last marker), so their
    // payload references are dropped to bound the disk image's memory.
    const LogIndex upto = record.term;
    for (Record& existing : records_) {
      if (existing.entry.index >= 1 && existing.entry.index <= upto) {
        existing.entry.payload.clear();
      }
    }
  }
  records_.push_back(std::move(r));
  return Status::Ok();
}

void SimDisk::Sync(std::function<void(Status)> done) {
  const size_t cover = records_.size();
  const uint64_t gen = generation_;
  const SimDuration cost =
      opts_.fsync_latency + fsync_stall_ + pending_write_cost_;
  pending_write_cost_ = 0;
  io_lane_->Submit(cost, [this, cover, gen, done = std::move(done)]() mutable {
    if (gen != generation_) return;  // Crashed while the sync was in flight.
    durable_records_ = std::max(durable_records_, cover);
    ++fsyncs_completed_;
    done(Status::Ok());
  });
}

void SimDisk::Crash() {
  ++generation_;
  torn_tail_bytes_ = 0;
  if (records_.size() > durable_records_) {
    const size_t first_lost = records_[durable_records_].encoded_size;
    torn_tail_bytes_ =
        first_lost > 1
            ? static_cast<size_t>(fault_rng_.NextBounded(first_lost))
            : 0;
    records_.resize(durable_records_);
  }
  pending_write_cost_ = 0;
}

bool SimDisk::CorruptTailRecord() {
  // Only records past the last durable *marker* record are eligible: bit
  // rot that cuts the recovered stream there can drop entry appends (the
  // node heals from the leader) but can never resurrect a truncated tail,
  // forget a vote, or strand a half-released compaction.
  size_t begin = 0;
  for (size_t i = 0; i < durable_records_; ++i) {
    if (records_[i].entry.index < 1) begin = i + 1;
  }
  std::vector<size_t> eligible;
  for (size_t i = begin; i < durable_records_; ++i) {
    if (records_[i].entry.index >= 1 && !records_[i].corrupt) {
      eligible.push_back(i);
    }
  }
  if (eligible.empty()) return false;
  const size_t pick = eligible[static_cast<size_t>(
      fault_rng_.NextBounded(eligible.size()))];
  records_[pick].corrupt = true;
  return true;
}

void SimDisk::RepairCorruptTail() {
  for (size_t i = 0; i < records_.size(); ++i) {
    if (!records_[i].corrupt) continue;
    // Everything the node may ever have acknowledged is bounded by the
    // durable image at repair time: acks are fsync-gated, so the highest
    // durable entry index is the frontier the node must see re-committed
    // before its quarantine can lift.
    for (size_t j = 0; j < durable_records_; ++j) {
      if (records_[j].entry.index >= 1) {
        scar_frontier_ = std::max(scar_frontier_, records_[j].entry.index);
      }
    }
    records_.resize(i);
    durable_records_ = std::min(durable_records_, i);
    heal_scar_ = true;
    return;
  }
}

}  // namespace nbraft::storage
