#ifndef NBRAFT_STORAGE_SIM_DISK_H_
#define NBRAFT_STORAGE_SIM_DISK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "sim/cpu_executor.h"
#include "storage/log_backend.h"
#include "storage/log_entry.h"

namespace nbraft::storage {

/// A deterministic simulated disk: one node's durable byte store with
/// write/fsync latency and bandwidth modeled on a dedicated single-lane
/// I/O executor, a durable/volatile frontier (records staged but not yet
/// covered by a completed fsync vanish on crash), and a seeded fault
/// injector for torn tails, CRC-detected bit rot, transient write errors
/// and fsync stalls.
///
/// The disk stores *typed* records (the same LogEntry record stream
/// DurableLog writes) rather than encoded bytes: payload Buffers are shared
/// with the in-memory log, and byte costs come from the analytic
/// LogEntry::EncodedSize(), so the steady state stays zero-copy and
/// allocation-free on the data path.
///
/// Cost model: each Append accumulates `write_latency` plus a bandwidth
/// charge for the record's encoded size; the accumulated cost is paid by
/// the next fsync barrier (writes are buffered until the barrier, as on a
/// real volatile-write-cache disk). Concurrent fsyncs serialize on the
/// single I/O lane.
///
/// The disk itself survives RaftNode::Crash(): the node's memory is wiped,
/// the disk image persists, and Restart() recovers from it (see
/// DurableLog::RecoverFromDisk).
class SimDisk {
 public:
  struct Options {
    SimDuration write_latency = 0;  ///< Media write cost per record.
    SimDuration fsync_latency = 0;  ///< Barrier cost per fsync.
    /// Sustained media bandwidth in bytes per microsecond of virtual time;
    /// 0 disables the per-byte charge.
    double bytes_per_us = 0.0;
    /// Fault-injector rng stream; combined with the node id so each
    /// node's disk draws independently. Never touches the simulator rng.
    uint64_t fault_seed = 1;
    /// When set, the disk submits its I/O costs to this externally owned
    /// single-lane executor instead of creating its own. Several disks on
    /// one physical host share the lane, so co-resident consensus groups
    /// contend for the host's media bandwidth and fsync serialization.
    sim::CpuExecutor* shared_io_lane = nullptr;
  };

  /// One durable-stream record: the typed entry, its exact on-media size,
  /// and the bit-rot flag (CRC mismatch detected at recovery).
  struct Record {
    LogEntry entry;
    size_t encoded_size = 0;
    bool corrupt = false;
  };

  SimDisk(sim::Simulator* sim, const Options& opts, int64_t node_id);

  // ---- Write path ----
  /// Stages one record in the volatile region. Fails with IoError while
  /// transient write errors are armed.
  Status Append(const LogEntry& record);

  /// Schedules an fsync barrier covering everything staged so far; `done`
  /// fires after the modeled latency (fsync + stall + buffered writes).
  /// Never fires for syncs in flight at a crash.
  void Sync(std::function<void(Status)> done);

  // ---- Crash surface ----
  /// Power loss: un-fsynced records vanish, and when any were lost a
  /// deterministic draw decides how many bytes of the first lost record
  /// linger as a torn tail for recovery to report. In-flight syncs and
  /// buffered write costs are discarded.
  void Crash();

  // ---- Recovery surface ----
  const std::vector<Record>& records() const { return records_; }
  size_t durable_records() const { return durable_records_; }
  /// Torn-tail bytes left by the most recent crash.
  size_t torn_tail_bytes() const { return torn_tail_bytes_; }

  // ---- Fault hooks (chaos nemesis) ----
  /// Extra latency added to every fsync until reset (stalled-disk fault).
  void set_fsync_stall(SimDuration extra) { fsync_stall_ = extra; }
  SimDuration fsync_stall() const { return fsync_stall_; }

  /// The next `count` Appends fail with IoError (transient write errors).
  void ArmWriteErrors(int count) { write_errors_armed_ = count; }

  /// Bit rot: flips the corrupt flag on one durable entry record chosen
  /// from the stream tail — past the last durable hard-state record, where
  /// the byte mass of a real WAL lives (payload records dwarf the ~20-byte
  /// vote records), and where dropping the suffix at recovery can never
  /// resurrect a forgotten vote. Returns false when no record is eligible.
  bool CorruptTailRecord();

  /// Recovery repair (fsck): cuts the image at its first corrupt record so
  /// post-heal appends land on a clean stream, and leaves a scar that
  /// survives further crashes. The node stays quarantined — granting no
  /// votes, starting no elections — until it has healed from the leader
  /// and clears the scar.
  void RepairCorruptTail();
  bool heal_scar() const { return heal_scar_; }
  void ClearHealScar() {
    heal_scar_ = false;
    scar_frontier_ = 0;
  }
  /// Highest entry index the node could have acknowledged before the
  /// repair cut (the durable frontier at repair time). The quarantine
  /// lifts once the node's committed prefix covers it. Survives crashes,
  /// like the scar itself.
  LogIndex scar_frontier() const { return scar_frontier_; }

  // ---- Telemetry ----
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t fsyncs_completed() const { return fsyncs_completed_; }
  uint64_t write_errors_injected() const { return write_errors_injected_; }
  sim::CpuExecutor* io_lane() { return io_lane_; }

 private:
  Options opts_;
  /// Owned lane when the disk is the host's only one; empty when
  /// Options::shared_io_lane injected the host-wide lane.
  std::unique_ptr<sim::CpuExecutor> owned_io_lane_;
  sim::CpuExecutor* io_lane_ = nullptr;
  nbraft::Rng fault_rng_;

  std::vector<Record> records_;
  size_t durable_records_ = 0;
  size_t torn_tail_bytes_ = 0;
  /// Buffered write cost charged at the next fsync barrier.
  SimDuration pending_write_cost_ = 0;
  /// Bumped on Crash so in-flight sync completions become no-ops.
  uint64_t generation_ = 0;

  SimDuration fsync_stall_ = 0;
  int write_errors_armed_ = 0;
  bool heal_scar_ = false;
  LogIndex scar_frontier_ = 0;

  uint64_t bytes_written_ = 0;
  uint64_t fsyncs_completed_ = 0;
  uint64_t write_errors_injected_ = 0;
};

/// LogBackend adapter over a SimDisk the node owns elsewhere (the disk
/// outlives crash/restart cycles; the backend is recreated per lifetime).
class SimDiskBackend : public LogBackend {
 public:
  explicit SimDiskBackend(SimDisk* disk) : disk_(disk) {}

  bool instant() const override { return false; }
  Status Append(const LogEntry& record) override {
    return disk_->Append(record);
  }
  void Sync(std::function<void(Status)> done) override {
    disk_->Sync(std::move(done));
  }
  Status Close() override { return Status::Ok(); }

 private:
  SimDisk* disk_;
};

}  // namespace nbraft::storage

#endif  // NBRAFT_STORAGE_SIM_DISK_H_
