#include "storage/wal.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace nbraft::storage {

Wal::~Wal() {
  if (file_ != nullptr) Close();
}

Status Wal::Open(const std::string& path) {
  if (file_ != nullptr) return Status::Internal("WAL already open");
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  path_ = path;
  return Status::Ok();
}

Status Wal::Append(const LogEntry& entry) {
  if (file_ == nullptr) return Status::Internal("WAL not open");
  std::string buf;
  entry.EncodeTo(&buf);
  if (std::fwrite(buf.data(), 1, buf.size(), file_) != buf.size()) {
    return Status::IoError("write " + path_ + ": " + std::strerror(errno));
  }
  ++appended_;
  return Status::Ok();
}

Status Wal::Sync() {
  if (file_ == nullptr) return Status::Internal("WAL not open");
  if (std::fflush(file_) != 0) {
    return Status::IoError("flush " + path_ + ": " + std::strerror(errno));
  }
  if (::fsync(fileno(file_)) != 0) {
    return Status::IoError("fsync " + path_ + ": " + std::strerror(errno));
  }
  return Status::Ok();
}

Status Wal::Close() {
  if (file_ == nullptr) return Status::Ok();
  Status s = Sync();
  std::fclose(file_);
  file_ = nullptr;
  return s;
}

Status Wal::Replay(const std::string& path,
                   const std::function<void(LogEntry)>& fn,
                   size_t* truncated_tail_bytes) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  std::string data;
  char chunk[1 << 16];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    data.append(chunk, n);
  }
  std::fclose(f);

  std::string_view in(data);
  while (!in.empty()) {
    std::string_view checkpoint = in;
    auto entry = LogEntry::DecodeFrom(&in);
    if (!entry.ok()) {
      // Torn tail from a crash mid-append: report and stop.
      if (truncated_tail_bytes != nullptr) {
        *truncated_tail_bytes = checkpoint.size();
      }
      return Status::Ok();
    }
    fn(std::move(entry).value());
  }
  if (truncated_tail_bytes != nullptr) *truncated_tail_bytes = 0;
  return Status::Ok();
}

}  // namespace nbraft::storage
