#ifndef NBRAFT_STORAGE_WAL_H_
#define NBRAFT_STORAGE_WAL_H_

#include <cstdio>
#include <functional>
#include <string>

#include "common/status.h"
#include "storage/log_entry.h"

namespace nbraft::storage {

/// File-backed write-ahead log of encoded `LogEntry` records.
///
/// The simulator models persistence *cost* instead of doing real I/O (to
/// stay deterministic), but the WAL is a real durable implementation used
/// by the examples and tested for crash-tail tolerance: a torn final record
/// is detected by its CRC and discarded on replay, as Raft's durable-log
/// assumption (paper Sec. IV) requires.
class Wal {
 public:
  Wal() = default;
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens (creating if necessary) the log file for appending.
  Status Open(const std::string& path);

  /// Appends one entry. Not durable until Sync().
  Status Append(const LogEntry& entry);

  /// Flushes and fsyncs.
  Status Sync();

  /// Closes the file (syncing first).
  Status Close();

  /// Reads `path` from the beginning, invoking `fn` per decoded entry.
  /// Stops cleanly at a torn tail (returns Ok, reporting via
  /// `truncated_tail_bytes` if non-null).
  static Status Replay(const std::string& path,
                       const std::function<void(LogEntry)>& fn,
                       size_t* truncated_tail_bytes = nullptr);

  bool is_open() const { return file_ != nullptr; }
  uint64_t appended_entries() const { return appended_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t appended_ = 0;
};

}  // namespace nbraft::storage

#endif  // NBRAFT_STORAGE_WAL_H_
