#include "sweep/report.h"

#include <algorithm>
#include <utility>

namespace nbraft::sweep {

namespace {

void MixBytes(uint64_t* h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= 1099511628211ULL;  // FNV-1a prime.
  }
}

void MixU64(uint64_t* h, uint64_t v) { MixBytes(h, &v, sizeof(v)); }

void MixStr(uint64_t* h, const std::string& s) {
  MixU64(h, s.size());
  MixBytes(h, s.data(), s.size());
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char kHex[] = "0123456789abcdef";
          *out += "\\u00";
          *out += kHex[(c >> 4) & 0xf];
          *out += kHex[c & 0xf];
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

SweepReport MergeResults(uint64_t sweep_seed,
                         std::vector<SweepResult> results) {
  SweepReport report;
  report.sweep_seed = sweep_seed;
  report.results = std::move(results);
  std::sort(report.results.begin(), report.results.end(),
            [](const SweepResult& a, const SweepResult& b) {
              return a.task_index < b.task_index;
            });

  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis.
  MixU64(&h, sweep_seed);
  for (const SweepResult& r : report.results) {
    MixU64(&h, r.task_index);
    MixStr(&h, r.name);
    MixU64(&h, r.completed ? 1 : 0);
    MixU64(&h, r.output.ok ? 1 : 0);
    MixU64(&h, r.output.fingerprint);
    MixStr(&h, r.output.detail);
    MixStr(&h, r.output.stats_json);
    MixU64(&h, r.output.events);
    if (!r.ok()) ++report.failed;
    report.total_events += r.output.events;
  }
  report.merged_hash = h;
  return report;
}

std::string SweepReport::ToJson() const {
  std::string out = "{\n  \"sweep_seed\": " + std::to_string(sweep_seed) +
                    ",\n  \"merged_hash\": " + std::to_string(merged_hash) +
                    ",\n  \"failed\": " + std::to_string(failed) +
                    ",\n  \"total_events\": " + std::to_string(total_events) +
                    ",\n  \"tasks\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    out += "    {\"index\": " + std::to_string(r.task_index) + ", \"name\": \"";
    AppendEscaped(&out, r.name);
    out += "\", \"completed\": ";
    out += r.completed ? "true" : "false";
    out += ", \"ok\": ";
    out += r.output.ok ? "true" : "false";
    out += ", \"fingerprint\": " + std::to_string(r.output.fingerprint) +
           ", \"events\": " + std::to_string(r.output.events);
    if (!r.error.empty()) {
      out += ", \"error\": \"";
      AppendEscaped(&out, r.error);
      out += "\"";
    }
    if (!r.output.detail.empty()) {
      out += ", \"detail\": \"";
      AppendEscaped(&out, r.output.detail);
      out += "\"";
    }
    if (!r.output.stats_json.empty()) {
      out += ", \"stats\": " + r.output.stats_json;
    }
    out += "}";
    if (i + 1 < results.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string SweepReport::Summary() const {
  std::string out = std::to_string(results.size()) + " tasks, " +
                    std::to_string(failed) + " failed, " +
                    std::to_string(total_events) + " events, hash " +
                    std::to_string(merged_hash) + " (" +
                    std::to_string(workers_used) + " workers, " +
                    std::to_string(static_cast<int64_t>(wall_ms)) + " ms";
  if (wall_ms > 0) {
    out += ", " +
           std::to_string(static_cast<int64_t>(
               static_cast<double>(total_events) / (wall_ms / 1000.0))) +
           " ev/s aggregate";
  }
  out += ")";
  return out;
}

}  // namespace nbraft::sweep
