#ifndef NBRAFT_SWEEP_REPORT_H_
#define NBRAFT_SWEEP_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/task.h"

namespace nbraft::sweep {

/// The deterministic merge of a whole sweep. `results` is ordered by task
/// index — never by completion order — and `merged_hash` FNV-chains every
/// task's deterministic fields in that order, so two sweeps over the same
/// tasks produce the same hash regardless of worker count, scheduling
/// order, or machine. A workers=1 run *is* the serial loop over the tasks
/// and therefore defines the oracle value the parallel runs must match.
struct SweepReport {
  uint64_t sweep_seed = 0;
  std::vector<SweepResult> results;  ///< Ordered by task_index.

  /// FNV-1a chain over (index, name, completed, output.ok,
  /// output.fingerprint, output.detail, output.stats_json, output.events)
  /// in index order. Wall times and worker ids are excluded.
  uint64_t merged_hash = 0;

  /// Tasks that threw or reported !output.ok.
  size_t failed = 0;
  /// Sum of every task's simulator events (aggregate ev/s numerator).
  uint64_t total_events = 0;

  // Machine-dependent facts about this particular execution.
  int workers_used = 0;
  double wall_ms = 0.0;

  bool ok() const { return failed == 0; }

  /// Canonical JSON: deterministic fields only, tasks in index order.
  /// Byte-identical across worker counts — the determinism tests compare
  /// this string directly.
  std::string ToJson() const;

  /// One-line human summary (includes the machine-dependent timing).
  std::string Summary() const;
};

/// Folds per-task results (any order) into an index-ordered report with
/// the chained hash. Exposed separately from the scheduler so the serial
/// path and tests can build reports from hand-run tasks.
SweepReport MergeResults(uint64_t sweep_seed,
                         std::vector<SweepResult> results);

}  // namespace nbraft::sweep

#endif  // NBRAFT_SWEEP_REPORT_H_
