#include "sweep/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

namespace nbraft::sweep {

namespace {

double WallMs(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

SweepResult RunOne(const SweepTask& task, size_t index, uint64_t sweep_seed,
                   int worker) {
  SweepResult result;
  result.task_index = index;
  result.name = task.name;
  result.worker = worker;
  const auto start = std::chrono::steady_clock::now();
  try {
    result.output = task.run(TaskSeed(sweep_seed, index));
    result.completed = true;
  } catch (const std::exception& e) {
    result.output = TaskOutput{};
    result.error = e.what();
  } catch (...) {
    result.output = TaskOutput{};
    result.error = "non-standard exception";
  }
  result.wall_ms = WallMs(start);
  return result;
}

/// One worker's task deque. The owner pops indices from the front (so a
/// worker walks its own deal in index order); thieves take from the back,
/// where the owner will arrive last — the classic work-stealing split,
/// with a plain mutex per deque because tasks here are whole simulations
/// (milliseconds to seconds each) and queue traffic is noise.
struct Shard {
  std::mutex mu;
  std::deque<size_t> q;
};

}  // namespace

int ResolveWorkers(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int WorkersFromEnv(int fallback) {
  const char* text = std::getenv("NBRAFT_SWEEP_WORKERS");
  if (text == nullptr || *text == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || v <= 0 || v > 1024) return fallback;
  return static_cast<int>(v);
}

SweepScheduler::SweepScheduler(SweepOptions options)
    : options_(options) {
  options_.workers = ResolveWorkers(options_.workers);
}

SweepReport SweepScheduler::Run(const std::vector<SweepTask>& tasks) {
  const auto start = std::chrono::steady_clock::now();
  const int workers =
      static_cast<int>(std::min<size_t>(
          static_cast<size_t>(options_.workers), std::max<size_t>(tasks.size(), 1)));
  std::vector<SweepResult> results(tasks.size());

  if (workers <= 1) {
    // The serial oracle: same thread, index order, no synchronization.
    for (size_t i = 0; i < tasks.size(); ++i) {
      results[i] = RunOne(tasks[i], i, options_.sweep_seed, /*worker=*/0);
    }
  } else {
    std::vector<Shard> shards(static_cast<size_t>(workers));
    for (size_t i = 0; i < tasks.size(); ++i) {
      shards[i % static_cast<size_t>(workers)].q.push_back(i);
    }

    auto worker_loop = [&](int w) {
      Shard& own = shards[static_cast<size_t>(w)];
      for (;;) {
        size_t index = 0;
        bool found = false;
        {
          std::lock_guard<std::mutex> lock(own.mu);
          if (!own.q.empty()) {
            index = own.q.front();
            own.q.pop_front();
            found = true;
          }
        }
        if (!found) {
          // Steal from the back of the fullest other deque. No task is
          // ever added after start, so one empty-handed full scan means
          // this worker is done.
          int victim = -1;
          size_t best = 0;
          for (int v = 0; v < workers; ++v) {
            if (v == w) continue;
            std::lock_guard<std::mutex> lock(shards[static_cast<size_t>(v)].mu);
            const size_t depth = shards[static_cast<size_t>(v)].q.size();
            if (depth > best) {
              best = depth;
              victim = v;
            }
          }
          if (victim >= 0) {
            Shard& s = shards[static_cast<size_t>(victim)];
            std::lock_guard<std::mutex> lock(s.mu);
            if (!s.q.empty()) {
              index = s.q.back();
              s.q.pop_back();
              found = true;
            }
          }
        }
        if (!found) return;
        // Each task writes only its own pre-sized slot: no result lock.
        results[index] = RunOne(tasks[index], index, options_.sweep_seed, w);
      }
    };

    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) threads.emplace_back(worker_loop, w);
    for (std::thread& t : threads) t.join();
  }

  SweepReport report = MergeResults(options_.sweep_seed, std::move(results));
  report.workers_used = workers;
  report.wall_ms = WallMs(start);
  return report;
}

}  // namespace nbraft::sweep
