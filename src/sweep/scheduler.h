#ifndef NBRAFT_SWEEP_SCHEDULER_H_
#define NBRAFT_SWEEP_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "sweep/report.h"
#include "sweep/task.h"

namespace nbraft::sweep {

struct SweepOptions {
  /// Worker threads. 1 runs every task inline on the calling thread in
  /// index order — the bit-exact serial oracle, no threads spawned.
  /// 0 resolves to the hardware concurrency (at least 1).
  int workers = 0;

  /// Root of every task's seed stream: task i receives
  /// TaskSeed(sweep_seed, i).
  uint64_t sweep_seed = 0;
};

/// Resolves SweepOptions::workers (0 => hardware concurrency, floor 1).
int ResolveWorkers(int requested);

/// Worker count from the NBRAFT_SWEEP_WORKERS environment variable
/// (positive integer, or "0"/unset/garbage => `fallback`). CI pins the
/// parallel jobs to nproc and the serial oracle job to 1 through this.
int WorkersFromEnv(int fallback);

/// Work-stealing multi-core sweep scheduler. Tasks are dealt round-robin
/// onto per-worker deques; each worker drains its own deque from the
/// front (preserving index order locally) and, when empty, steals from
/// the back of the busiest other deque. Every task runs on exactly one
/// worker with a private seed stream, so the merged report — ordered by
/// task index, hashed by MergeResults — is byte-identical for any worker
/// count, and workers=1 reduces to a plain serial loop on the calling
/// thread.
///
/// Isolation contract: a task must confine itself to objects it creates
/// (its own Simulator/Cluster/ChaosRunner); the scheduler adds no locks
/// around task bodies. Exceptions escaping a task are caught and reported
/// on that task's SweepResult — one failing cell never kills the sweep.
class SweepScheduler {
 public:
  explicit SweepScheduler(SweepOptions options);

  SweepScheduler(const SweepScheduler&) = delete;
  SweepScheduler& operator=(const SweepScheduler&) = delete;

  /// Runs every task to completion and returns the merged report.
  /// Callable repeatedly (each call is an independent sweep).
  SweepReport Run(const std::vector<SweepTask>& tasks);

 private:
  SweepOptions options_;
};

}  // namespace nbraft::sweep

#endif  // NBRAFT_SWEEP_SCHEDULER_H_
