#ifndef NBRAFT_SWEEP_TASK_H_
#define NBRAFT_SWEEP_TASK_H_

#include <cstdint>
#include <functional>
#include <string>

namespace nbraft::sweep {

/// Deterministic per-task seed stream: splitmix64 over
/// (sweep_seed, task_index). Every task of a sweep gets a well-separated
/// 64-bit seed that depends only on the sweep seed and its own index —
/// never on the worker that ran it, the scheduling order, or the machine —
/// which is the whole determinism contract of the parallel scheduler.
/// Task factories derive their ClusterConfig/ChaosPlan seeds from this.
inline uint64_t TaskSeed(uint64_t sweep_seed, uint64_t task_index) {
  uint64_t z = sweep_seed + 0x9E3779B97F4A7C15ULL * (task_index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// What one task reports back. Everything here must be a pure function of
/// the task definition (and its TaskSeed) — wall-clock time, worker ids
/// and any other machine-dependent facts live on SweepResult instead, so
/// the merged report stays byte-identical across worker counts.
struct TaskOutput {
  /// The cell's deterministic outcome in one number (e.g. the chaos
  /// report hash). Folded into SweepReport::merged_hash in index order.
  uint64_t fingerprint = 0;
  /// Cell-level verdict: false means the cell ran to completion but the
  /// run itself failed its own checks (oracle violations, a vacuous
  /// attack, a starved group). The sweep keeps going either way.
  bool ok = true;
  /// Human-readable summary or violation text for the merged report.
  std::string detail;
  /// Optional machine-readable per-cell stats (JSON object, "" = none).
  std::string stats_json;
  /// Simulator events this cell processed (aggregate ev/s accounting).
  uint64_t events = 0;
};

/// One independent unit of sweep work: a (seed x config x protocol) cell.
/// `run` is executed on exactly one worker thread with no shared mutable
/// state; it receives TaskSeed(sweep_seed, index) and must derive every
/// random choice from it. Exceptions escaping `run` are caught by the
/// scheduler and reported on the task's SweepResult — a failing cell
/// never kills the sweep. (NBRAFT_CHECK aborts the process by design and
/// is not recoverable.)
struct SweepTask {
  std::string name;
  std::function<TaskOutput(uint64_t task_seed)> run;
};

/// One task's slot in the merged report, ordered by task index.
struct SweepResult {
  size_t task_index = 0;
  std::string name;
  /// False when an exception escaped `run` (error holds what()); the
  /// task's output is then default-constructed.
  bool completed = false;
  std::string error;
  TaskOutput output;

  // Machine-dependent facts — excluded from merged_hash and from the
  // canonical report JSON.
  double wall_ms = 0.0;
  int worker = -1;

  /// Completed with the cell's own checks green.
  bool ok() const { return completed && output.ok; }
};

}  // namespace nbraft::sweep

#endif  // NBRAFT_SWEEP_TASK_H_
