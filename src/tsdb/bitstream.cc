#include "tsdb/bitstream.h"

#include "common/logging.h"

namespace nbraft::tsdb {

void BitWriter::Write(uint64_t value, int bits) {
  NBRAFT_CHECK_GE(bits, 0);
  NBRAFT_CHECK_LE(bits, 64);
  for (int i = bits - 1; i >= 0; --i) {
    const uint8_t bit = static_cast<uint8_t>((value >> i) & 1);
    current_ = static_cast<uint8_t>((current_ << 1) | bit);
    ++filled_;
    ++bit_count_;
    if (filled_ == 8) {
      out_->push_back(static_cast<char>(current_));
      current_ = 0;
      filled_ = 0;
    }
  }
}

void BitWriter::Finish() {
  if (filled_ > 0) {
    current_ = static_cast<uint8_t>(current_ << (8 - filled_));
    out_->push_back(static_cast<char>(current_));
    current_ = 0;
    filled_ = 0;
  }
}

bool BitReader::Read(uint64_t* value, int bits) {
  NBRAFT_CHECK_GE(bits, 0);
  NBRAFT_CHECK_LE(bits, 64);
  if (pos_ + static_cast<size_t>(bits) > data_.size() * 8) return false;
  uint64_t v = 0;
  for (int i = 0; i < bits; ++i) {
    const size_t byte = pos_ >> 3;
    const int offset = 7 - static_cast<int>(pos_ & 7);
    const uint8_t bit =
        static_cast<uint8_t>((static_cast<uint8_t>(data_[byte]) >> offset) & 1);
    v = (v << 1) | bit;
    ++pos_;
  }
  *value = v;
  return true;
}

bool BitReader::ReadBit(bool* bit) {
  uint64_t v = 0;
  if (!Read(&v, 1)) return false;
  *bit = v != 0;
  return true;
}

}  // namespace nbraft::tsdb
