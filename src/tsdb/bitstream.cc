#include "tsdb/bitstream.h"

#include "common/logging.h"

namespace nbraft::tsdb {

void BitWriter::Write(uint64_t value, int bits) {
  NBRAFT_CHECK_GE(bits, 0);
  NBRAFT_CHECK_LE(bits, 64);
  if (bits == 0) return;
  bit_count_ += static_cast<size_t>(bits);
  if (bits < 64) value &= (~uint64_t{0}) >> (64 - bits);
  int remaining = bits;
  // Top up the partially filled byte with the high bits of `value`.
  if (filled_ > 0) {
    const int take = remaining < 8 - filled_ ? remaining : 8 - filled_;
    const uint8_t chunk = static_cast<uint8_t>(
        (value >> (remaining - take)) & ((uint32_t{1} << take) - 1));
    current_ = static_cast<uint8_t>((current_ << take) | chunk);
    filled_ += take;
    remaining -= take;
    if (filled_ == 8) {
      out_->push_back(static_cast<char>(current_));
      current_ = 0;
      filled_ = 0;
    }
  }
  // Emit whole bytes directly.
  while (remaining >= 8) {
    remaining -= 8;
    out_->push_back(static_cast<char>((value >> remaining) & 0xff));
  }
  // Stash the tail for the next Write.
  if (remaining > 0) {
    current_ =
        static_cast<uint8_t>(value & ((uint32_t{1} << remaining) - 1));
    filled_ = remaining;
  }
}

void BitWriter::Finish() {
  if (filled_ > 0) {
    current_ = static_cast<uint8_t>(current_ << (8 - filled_));
    out_->push_back(static_cast<char>(current_));
    current_ = 0;
    filled_ = 0;
  }
}

bool BitReader::Read(uint64_t* value, int bits) {
  NBRAFT_CHECK_GE(bits, 0);
  NBRAFT_CHECK_LE(bits, 64);
  if (pos_ + static_cast<size_t>(bits) > data_.size() * 8) return false;
  uint64_t v = 0;
  int remaining = bits;
  while (remaining > 0) {
    const size_t byte = pos_ >> 3;
    const int avail = 8 - static_cast<int>(pos_ & 7);
    const int take = remaining < avail ? remaining : avail;
    const uint8_t cur = static_cast<uint8_t>(data_[byte]);
    const uint8_t chunk = static_cast<uint8_t>(
        (cur >> (avail - take)) & ((uint32_t{1} << take) - 1));
    v = (v << take) | chunk;
    pos_ += static_cast<size_t>(take);
    remaining -= take;
  }
  *value = v;
  return true;
}

bool BitReader::ReadBit(bool* bit) {
  uint64_t v = 0;
  if (!Read(&v, 1)) return false;
  *bit = v != 0;
  return true;
}

}  // namespace nbraft::tsdb
