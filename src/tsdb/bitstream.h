#ifndef NBRAFT_TSDB_BITSTREAM_H_
#define NBRAFT_TSDB_BITSTREAM_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace nbraft::tsdb {

/// MSB-first bit writer backing the time-series encoders.
class BitWriter {
 public:
  explicit BitWriter(std::string* out) : out_(out) {}

  /// Writes the low `bits` bits of `value`, most significant first.
  /// `bits` must be in [0, 64].
  void Write(uint64_t value, int bits);

  void WriteBit(bool bit) { Write(bit ? 1 : 0, 1); }

  /// Pads the final partial byte with zeros. Must be called exactly once,
  /// after the last Write.
  void Finish();

  /// Bits written so far (excluding padding).
  size_t bit_count() const { return bit_count_; }

 private:
  std::string* out_;
  uint8_t current_ = 0;
  int filled_ = 0;  // Bits used in current_.
  size_t bit_count_ = 0;
};

/// MSB-first bit reader.
class BitReader {
 public:
  explicit BitReader(std::string_view data) : data_(data) {}

  /// Reads `bits` bits into the low bits of the result. Returns false on
  /// exhausted input. `bits` must be in [0, 64].
  bool Read(uint64_t* value, int bits);

  bool ReadBit(bool* bit);

  size_t bits_consumed() const { return pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;  // Bit position.
};

}  // namespace nbraft::tsdb

#endif  // NBRAFT_TSDB_BITSTREAM_H_
