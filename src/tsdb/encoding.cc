#include "tsdb/encoding.h"

#include <bit>
#include <cstring>

#include "common/logging.h"
#include "tsdb/bitstream.h"

namespace nbraft::tsdb {

namespace {

uint64_t DoubleToBits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

double BitsToDouble(uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

}  // namespace

void EncodeTimestamps(const std::vector<int64_t>& timestamps,
                      std::string* out) {
  BitWriter w(out);
  if (timestamps.empty()) {
    w.Finish();
    return;
  }
  w.Write(static_cast<uint64_t>(timestamps[0]), 64);
  int64_t prev = timestamps[0];
  int64_t prev_delta = 0;
  for (size_t i = 1; i < timestamps.size(); ++i) {
    const int64_t delta = timestamps[i] - prev;
    const int64_t dod = delta - prev_delta;
    if (dod == 0) {
      w.WriteBit(false);
    } else if (dod >= -63 && dod <= 64) {
      w.Write(0b10, 2);
      w.Write(static_cast<uint64_t>(dod + 63), 7);
    } else if (dod >= -255 && dod <= 256) {
      w.Write(0b110, 3);
      w.Write(static_cast<uint64_t>(dod + 255), 9);
    } else if (dod >= -2047 && dod <= 2048) {
      w.Write(0b1110, 4);
      w.Write(static_cast<uint64_t>(dod + 2047), 12);
    } else {
      w.Write(0b1111, 4);
      w.Write(static_cast<uint64_t>(dod), 64);
    }
    prev = timestamps[i];
    prev_delta = delta;
  }
  w.Finish();
}

Result<std::vector<int64_t>> DecodeTimestamps(std::string_view data,
                                              size_t count) {
  std::vector<int64_t> out;
  if (count == 0) return out;
  out.reserve(count);
  BitReader r(data);
  uint64_t first = 0;
  if (!r.Read(&first, 64)) {
    return Status::Corruption("timestamps: truncated header");
  }
  out.push_back(static_cast<int64_t>(first));
  int64_t prev = out[0];
  int64_t prev_delta = 0;
  while (out.size() < count) {
    bool bit = false;
    if (!r.ReadBit(&bit)) return Status::Corruption("timestamps: truncated");
    int64_t dod = 0;
    if (bit) {
      bool b2 = false;
      if (!r.ReadBit(&b2)) return Status::Corruption("timestamps: truncated");
      if (!b2) {  // '10' + 7 bits
        uint64_t raw = 0;
        if (!r.Read(&raw, 7)) return Status::Corruption("timestamps: short");
        dod = static_cast<int64_t>(raw) - 63;
      } else {
        bool b3 = false;
        if (!r.ReadBit(&b3)) {
          return Status::Corruption("timestamps: truncated");
        }
        if (!b3) {  // '110' + 9 bits
          uint64_t raw = 0;
          if (!r.Read(&raw, 9)) return Status::Corruption("timestamps: short");
          dod = static_cast<int64_t>(raw) - 255;
        } else {
          bool b4 = false;
          if (!r.ReadBit(&b4)) {
            return Status::Corruption("timestamps: truncated");
          }
          if (!b4) {  // '1110' + 12 bits
            uint64_t raw = 0;
            if (!r.Read(&raw, 12)) {
              return Status::Corruption("timestamps: short");
            }
            dod = static_cast<int64_t>(raw) - 2047;
          } else {  // '1111' + 64 bits
            uint64_t raw = 0;
            if (!r.Read(&raw, 64)) {
              return Status::Corruption("timestamps: short");
            }
            dod = static_cast<int64_t>(raw);
          }
        }
      }
    }
    const int64_t delta = prev_delta + dod;
    prev += delta;
    prev_delta = delta;
    out.push_back(prev);
  }
  return out;
}

void EncodeValues(const std::vector<double>& values, std::string* out) {
  BitWriter w(out);
  if (values.empty()) {
    w.Finish();
    return;
  }
  uint64_t prev = DoubleToBits(values[0]);
  w.Write(prev, 64);
  int prev_leading = -1;  // -1: no previous meaningful window.
  int prev_trailing = 0;
  for (size_t i = 1; i < values.size(); ++i) {
    const uint64_t cur = DoubleToBits(values[i]);
    const uint64_t x = cur ^ prev;
    if (x == 0) {
      w.WriteBit(false);
    } else {
      w.WriteBit(true);
      int leading = std::countl_zero(x);
      const int trailing = std::countr_zero(x);
      if (leading > 31) leading = 31;  // Fit in the 5-bit field.
      if (prev_leading >= 0 && leading >= prev_leading &&
          trailing >= prev_trailing) {
        // Reuse previous window: '0' + meaningful bits.
        w.WriteBit(false);
        const int meaningful = 64 - prev_leading - prev_trailing;
        w.Write(x >> prev_trailing, meaningful);
      } else {
        // New window: '1' + 5-bit leading + 6-bit length + bits.
        w.WriteBit(true);
        const int meaningful = 64 - leading - trailing;
        w.Write(static_cast<uint64_t>(leading), 5);
        w.Write(static_cast<uint64_t>(meaningful), 6);
        w.Write(x >> trailing, meaningful);
        prev_leading = leading;
        prev_trailing = trailing;
      }
    }
    prev = cur;
  }
  w.Finish();
}

Result<std::vector<double>> DecodeValues(std::string_view data, size_t count) {
  std::vector<double> out;
  if (count == 0) return out;
  out.reserve(count);
  BitReader r(data);
  uint64_t prev = 0;
  if (!r.Read(&prev, 64)) return Status::Corruption("values: truncated header");
  out.push_back(BitsToDouble(prev));
  int leading = 0;
  int trailing = 0;
  bool have_window = false;
  while (out.size() < count) {
    bool changed = false;
    if (!r.ReadBit(&changed)) return Status::Corruption("values: truncated");
    if (changed) {
      bool new_window = false;
      if (!r.ReadBit(&new_window)) {
        return Status::Corruption("values: truncated");
      }
      if (new_window) {
        uint64_t lead_raw = 0;
        uint64_t len_raw = 0;
        if (!r.Read(&lead_raw, 5) || !r.Read(&len_raw, 6)) {
          return Status::Corruption("values: short window header");
        }
        leading = static_cast<int>(lead_raw);
        int meaningful = static_cast<int>(len_raw);
        if (meaningful == 0) meaningful = 64;  // 6-bit field wraps at 64.
        trailing = 64 - leading - meaningful;
        if (trailing < 0) return Status::Corruption("values: bad window");
        have_window = true;
        uint64_t bits = 0;
        if (!r.Read(&bits, meaningful)) {
          return Status::Corruption("values: short bits");
        }
        prev ^= bits << trailing;
      } else {
        if (!have_window) return Status::Corruption("values: missing window");
        const int meaningful = 64 - leading - trailing;
        uint64_t bits = 0;
        if (!r.Read(&bits, meaningful)) {
          return Status::Corruption("values: short bits");
        }
        prev ^= bits << trailing;
      }
    }
    out.push_back(BitsToDouble(prev));
  }
  return out;
}

Chunk BuildChunk(uint64_t series_id, const std::vector<Point>& points) {
  Chunk chunk;
  chunk.series_id = series_id;
  chunk.point_count = points.size();
  if (!points.empty()) {
    chunk.min_timestamp = points.front().timestamp;
    chunk.max_timestamp = points.back().timestamp;
  }
  std::vector<int64_t> timestamps;
  std::vector<double> values;
  timestamps.reserve(points.size());
  values.reserve(points.size());
  for (const Point& p : points) {
    timestamps.push_back(p.timestamp);
    values.push_back(p.value);
  }
  EncodeTimestamps(timestamps, &chunk.encoded_timestamps);
  EncodeValues(values, &chunk.encoded_values);
  return chunk;
}

Result<std::vector<Point>> Chunk::Decode() const {
  auto timestamps = DecodeTimestamps(encoded_timestamps, point_count);
  if (!timestamps.ok()) return timestamps.status();
  auto values = DecodeValues(encoded_values, point_count);
  if (!values.ok()) return values.status();
  std::vector<Point> out;
  out.reserve(point_count);
  for (size_t i = 0; i < point_count; ++i) {
    out.push_back(Point{(*timestamps)[i], (*values)[i]});
  }
  return out;
}

}  // namespace nbraft::tsdb
