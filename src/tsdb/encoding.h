#ifndef NBRAFT_TSDB_ENCODING_H_
#define NBRAFT_TSDB_ENCODING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace nbraft::tsdb {

/// One time-series sample.
struct Point {
  int64_t timestamp = 0;  ///< Milliseconds since epoch (by convention).
  double value = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.timestamp == b.timestamp && a.value == b.value;
  }
};

/// Delta-of-delta timestamp compression in the style of Facebook Gorilla:
/// regular sampling intervals (the common IoT case) collapse to one bit per
/// timestamp. Appends the encoded block to `out`.
void EncodeTimestamps(const std::vector<int64_t>& timestamps,
                      std::string* out);

/// Decodes `count` timestamps from `data`.
Result<std::vector<int64_t>> DecodeTimestamps(std::string_view data,
                                              size_t count);

/// Gorilla XOR compression for doubles: repeated or slowly-varying values
/// (sensor plateaus) compress to ~1 bit per sample.
void EncodeValues(const std::vector<double>& values, std::string* out);

/// Decodes `count` doubles from `data`.
Result<std::vector<double>> DecodeValues(std::string_view data, size_t count);

/// An immutable encoded chunk of one series (what a flushed memtable
/// produces), with O(1) metadata for pruning.
struct Chunk {
  uint64_t series_id = 0;
  size_t point_count = 0;
  int64_t min_timestamp = 0;
  int64_t max_timestamp = 0;
  std::string encoded_timestamps;
  std::string encoded_values;

  size_t EncodedBytes() const {
    return encoded_timestamps.size() + encoded_values.size();
  }

  /// Decodes all points back (tests, follower reads).
  Result<std::vector<Point>> Decode() const;
};

/// Builds a chunk from points (which must be timestamp-ordered).
Chunk BuildChunk(uint64_t series_id, const std::vector<Point>& points);

}  // namespace nbraft::tsdb

#endif  // NBRAFT_TSDB_ENCODING_H_
