#include "tsdb/ingest_record.h"

#include <cstring>

#include "common/varint.h"

namespace nbraft::tsdb {

namespace {

uint64_t DoubleToBits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

double BitsToDouble(uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

}  // namespace

void EncodeIngestBatch(const std::vector<Measurement>& batch,
                       size_t target_size, std::string* out) {
  const size_t start = out->size();
  PutVarint64(out, batch.size());
  for (const Measurement& m : batch) {
    PutVarint64(out, m.series_id);
    PutVarintSigned64(out, m.point.timestamp);
    PutFixed64(out, DoubleToBits(m.point.value));
  }
  const size_t natural = out->size() - start;
  if (target_size > natural) {
    out->append(target_size - natural, '\0');
  }
}

Result<std::vector<Measurement>> ParseIngestBatch(std::string_view data) {
  uint64_t count = 0;
  if (!GetVarint64(&data, &count)) {
    return Status::Corruption("ingest batch: truncated count");
  }
  if (count > data.size()) {  // Each measurement needs >= 10 bytes; coarse.
    return Status::Corruption("ingest batch: implausible count");
  }
  std::vector<Measurement> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Measurement m;
    uint64_t value_bits = 0;
    if (!GetVarint64(&data, &m.series_id) ||
        !GetVarintSigned64(&data, &m.point.timestamp) ||
        !GetFixed64(&data, &value_bits)) {
      return Status::Corruption("ingest batch: truncated measurement");
    }
    m.point.value = BitsToDouble(value_bits);
    out.push_back(m);
  }
  return out;
}

}  // namespace nbraft::tsdb
