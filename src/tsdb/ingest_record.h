#ifndef NBRAFT_TSDB_INGEST_RECORD_H_
#define NBRAFT_TSDB_INGEST_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "tsdb/encoding.h"

namespace nbraft::tsdb {

/// One sample destined for one series.
struct Measurement {
  uint64_t series_id = 0;
  Point point;

  friend bool operator==(const Measurement& a, const Measurement& b) {
    return a.series_id == b.series_id && a.point == b.point;
  }
};

/// Binary ingestion batch — the command format clients replicate through
/// the consensus log (the TPCx-IoT-style workload of the evaluation).
/// Layout: varint count, then (varint series_id, signed-varint timestamp,
/// fixed64 value bits) per measurement, then arbitrary padding that brings
/// the record to the workload's requested payload size (parsers ignore it).
///
/// Appends the record to `out`. If `target_size` > 0 the record is padded
/// to exactly max(natural size, target_size) bytes.
void EncodeIngestBatch(const std::vector<Measurement>& batch,
                       size_t target_size, std::string* out);

/// Parses an ingestion batch (ignoring padding).
Result<std::vector<Measurement>> ParseIngestBatch(std::string_view data);

}  // namespace nbraft::tsdb

#endif  // NBRAFT_TSDB_INGEST_RECORD_H_
