#include "tsdb/memtable.h"

#include <algorithm>

namespace nbraft::tsdb {

void Memtable::Insert(uint64_t series_id, Point point) {
  if (series_.empty()) series_.reserve(64);
  std::vector<Point>& points = series_[series_id];
  // Skip the 1/2/4/8 doubling steps; per-series runs between flushes are
  // almost always longer than a handful of points.
  if (points.capacity() == 0) points.reserve(16);
  points.push_back(point);
  ++point_count_;
}

std::vector<std::pair<uint64_t, std::vector<Point>*>> Memtable::Ordered() {
  std::vector<std::pair<uint64_t, std::vector<Point>*>> ordered;
  ordered.reserve(series_.size());
  for (auto& [id, points] : series_) ordered.emplace_back(id, &points);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return ordered;
}

std::vector<Point> Memtable::Scan(uint64_t series_id) const {
  const auto it = series_.find(series_id);
  if (it == series_.end()) return {};
  std::vector<Point> out = it->second;
  std::stable_sort(out.begin(), out.end(),
                   [](const Point& a, const Point& b) {
                     return a.timestamp < b.timestamp;
                   });
  return out;
}

std::vector<std::pair<uint64_t, Point>> Memtable::AllPoints() const {
  std::vector<std::pair<uint64_t, Point>> out;
  out.reserve(point_count_);
  for (const auto& [id, points] : series_) {
    for (const Point& p : points) out.emplace_back(id, p);
  }
  // Series order with insertion order preserved within a series (each
  // series' points are contiguous and stable_sort keeps them that way).
  std::stable_sort(out.begin(), out.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  return out;
}

std::vector<Chunk> Memtable::FlushAll() {
  auto ordered = Ordered();
  std::vector<Chunk> chunks;
  chunks.reserve(ordered.size());
  for (auto& [id, points] : ordered) {
    std::stable_sort(points->begin(), points->end(),
                     [](const Point& a, const Point& b) {
                       return a.timestamp < b.timestamp;
                     });
    chunks.push_back(BuildChunk(id, *points));
  }
  series_.clear();
  point_count_ = 0;
  return chunks;
}

}  // namespace nbraft::tsdb
