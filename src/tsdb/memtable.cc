#include "tsdb/memtable.h"

#include <algorithm>

namespace nbraft::tsdb {

void Memtable::Insert(uint64_t series_id, Point point) {
  series_[series_id].push_back(point);
  ++point_count_;
}

std::vector<Point> Memtable::Scan(uint64_t series_id) const {
  const auto it = series_.find(series_id);
  if (it == series_.end()) return {};
  std::vector<Point> out = it->second;
  std::stable_sort(out.begin(), out.end(),
                   [](const Point& a, const Point& b) {
                     return a.timestamp < b.timestamp;
                   });
  return out;
}

std::vector<std::pair<uint64_t, Point>> Memtable::AllPoints() const {
  std::vector<std::pair<uint64_t, Point>> out;
  out.reserve(point_count_);
  for (const auto& [id, points] : series_) {
    for (const Point& p : points) out.emplace_back(id, p);
  }
  return out;
}

std::vector<Chunk> Memtable::FlushAll() {
  std::vector<Chunk> chunks;
  chunks.reserve(series_.size());
  for (auto& [id, points] : series_) {
    std::stable_sort(points.begin(), points.end(),
                     [](const Point& a, const Point& b) {
                       return a.timestamp < b.timestamp;
                     });
    chunks.push_back(BuildChunk(id, points));
  }
  series_.clear();
  point_count_ = 0;
  return chunks;
}

}  // namespace nbraft::tsdb
