#ifndef NBRAFT_TSDB_MEMTABLE_H_
#define NBRAFT_TSDB_MEMTABLE_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tsdb/encoding.h"

namespace nbraft::tsdb {

/// In-memory write buffer: per-series sorted point lists. Like IoTDB's
/// memtable, it absorbs random-ish arrivals cheaply and produces ordered,
/// encodable runs at flush.
class Memtable {
 public:
  /// Inserts one point. Out-of-order timestamps within a series are
  /// tolerated (common with IoT sources) and sorted at flush.
  void Insert(uint64_t series_id, Point point);

  size_t point_count() const { return point_count_; }
  size_t series_count() const { return series_.size(); }

  /// Approximate resident bytes (16B per point + per-series overhead).
  size_t ApproximateBytes() const {
    return point_count_ * sizeof(Point) + series_.size() * 64;
  }

  /// Points currently buffered for a series (sorted copy).
  std::vector<Point> Scan(uint64_t series_id) const;

  /// Every buffered (series, point) pair in series order, insertion order
  /// within a series (snapshot serialization).
  std::vector<std::pair<uint64_t, Point>> AllPoints() const;

  /// Encodes every series into a chunk (sorted by timestamp, then clears
  /// the table). Returns chunks ordered by series id.
  std::vector<Chunk> FlushAll();

  bool Empty() const { return point_count_ == 0; }

 private:
  /// Per-series point lists sorted by series id (flush/snapshot order).
  std::vector<std::pair<uint64_t, std::vector<Point>*>> Ordered();

  // Hash map on the ingest hot path (one lookup per point); everything that
  // iterates (FlushAll, AllPoints) sorts by series id first so output order
  // is identical to the ordered-map layout this replaced.
  std::unordered_map<uint64_t, std::vector<Point>> series_;
  size_t point_count_ = 0;
};

}  // namespace nbraft::tsdb

#endif  // NBRAFT_TSDB_MEMTABLE_H_
