#include "tsdb/state_machine.h"

#include <algorithm>
#include <cstring>

#include "common/hash.h"
#include "common/varint.h"
#include "tsdb/ingest_record.h"

namespace nbraft::tsdb {

TsdbStateMachine::TsdbStateMachine(Options options) : options_(options) {}

SimDuration TsdbStateMachine::ParseCost(size_t bytes) const {
  return options_.parse_cost_per_kib * static_cast<SimDuration>(bytes) / 1024;
}

SimDuration TsdbStateMachine::Apply(const storage::LogEntry& entry) {
  ++applied_;
  auto batch = ParseIngestBatch(entry.payload);
  if (!batch.ok()) {
    ++corrupt_batches_;
    return ParseCost(entry.payload.size());
  }
  SimDuration cost =
      options_.insert_cost_per_point * static_cast<SimDuration>(batch->size());
  for (const Measurement& m : *batch) {
    memtable_.Insert(m.series_id, m.point);
  }
  ingested_points_ += batch->size();

  if (memtable_.point_count() >= options_.flush_threshold_points) {
    const size_t bytes_before = memtable_.ApproximateBytes();
    std::vector<Chunk> flushed = memtable_.FlushAll();
    chunks_.insert(chunks_.end(), std::make_move_iterator(flushed.begin()),
                   std::make_move_iterator(flushed.end()));
    cost += options_.flush_cost_per_kib *
            static_cast<SimDuration>(bytes_before) / 1024;
  }
  return cost;
}

Result<std::vector<Point>> TsdbStateMachine::Query(uint64_t series_id) const {
  std::vector<Point> out;
  for (const Chunk& chunk : chunks_) {
    if (chunk.series_id != series_id) continue;
    auto points = chunk.Decode();
    if (!points.ok()) return points.status();
    out.insert(out.end(), points->begin(), points->end());
  }
  std::vector<Point> buffered = memtable_.Scan(series_id);
  out.insert(out.end(), buffered.begin(), buffered.end());
  std::stable_sort(out.begin(), out.end(), [](const Point& a, const Point& b) {
    return a.timestamp < b.timestamp;
  });
  return out;
}

Result<TsdbStateMachine::Aggregate> TsdbStateMachine::AggregateRange(
    uint64_t series_id, int64_t start_ts, int64_t end_ts) const {
  Aggregate agg;
  const auto fold = [&agg](const Point& p) {
    if (agg.count == 0) {
      agg.min = p.value;
      agg.max = p.value;
    } else {
      agg.min = std::min(agg.min, p.value);
      agg.max = std::max(agg.max, p.value);
    }
    agg.sum += p.value;
    ++agg.count;
  };
  for (const Chunk& chunk : chunks_) {
    if (chunk.series_id != series_id) continue;
    // Metadata pruning: skip chunks entirely outside the range.
    if (chunk.max_timestamp < start_ts || chunk.min_timestamp > end_ts) {
      continue;
    }
    auto points = chunk.Decode();
    if (!points.ok()) return points.status();
    for (const Point& p : *points) {
      if (p.timestamp >= start_ts && p.timestamp <= end_ts) fold(p);
    }
  }
  for (const Point& p : memtable_.Scan(series_id)) {
    if (p.timestamp >= start_ts && p.timestamp <= end_ts) fold(p);
  }
  return agg;
}

uint64_t TsdbStateMachine::PointCount(uint64_t series_id) const {
  uint64_t count = 0;
  for (const Chunk& chunk : chunks_) {
    if (chunk.series_id == series_id) count += chunk.point_count;
  }
  count += memtable_.Scan(series_id).size();
  return count;
}

namespace {

// Snapshot wire format: varint version, counters, chunk records, buffered
// memtable points, CRC32C trailer over everything before it.
constexpr uint64_t kTsdbSnapshotVersion = 1;

void PutChunk(const Chunk& chunk, std::string* out) {
  PutVarint64(out, chunk.series_id);
  PutVarint64(out, chunk.point_count);
  PutVarintSigned64(out, chunk.min_timestamp);
  PutVarintSigned64(out, chunk.max_timestamp);
  PutVarint64(out, chunk.encoded_timestamps.size());
  *out += chunk.encoded_timestamps;
  PutVarint64(out, chunk.encoded_values.size());
  *out += chunk.encoded_values;
}

bool GetChunk(std::string_view* in, Chunk* chunk) {
  uint64_t ts_len = 0;
  uint64_t v_len = 0;
  uint64_t point_count = 0;
  if (!GetVarint64(in, &chunk->series_id) ||
      !GetVarint64(in, &point_count) ||
      !GetVarintSigned64(in, &chunk->min_timestamp) ||
      !GetVarintSigned64(in, &chunk->max_timestamp) ||
      !GetVarint64(in, &ts_len) || in->size() < ts_len) {
    return false;
  }
  chunk->point_count = point_count;
  chunk->encoded_timestamps.assign(in->data(), ts_len);
  in->remove_prefix(ts_len);
  if (!GetVarint64(in, &v_len) || in->size() < v_len) return false;
  chunk->encoded_values.assign(in->data(), v_len);
  in->remove_prefix(v_len);
  return true;
}

uint64_t DoubleBits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

double BitsDouble(uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

}  // namespace

std::string TsdbStateMachine::Snapshot() const {
  std::string out;
  PutVarint64(&out, kTsdbSnapshotVersion);
  PutVarint64(&out, applied_);
  PutVarint64(&out, ingested_points_);
  PutVarint64(&out, corrupt_batches_);
  PutVarint64(&out, chunks_.size());
  for (const Chunk& chunk : chunks_) PutChunk(chunk, &out);

  // Buffered (unflushed) memtable points.
  const std::vector<std::pair<uint64_t, Point>> points =
      memtable_.AllPoints();
  PutVarint64(&out, points.size());
  for (const auto& [series, point] : points) {
    PutVarint64(&out, series);
    PutVarintSigned64(&out, point.timestamp);
    PutFixed64(&out, DoubleBits(point.value));
  }

  PutFixed32(&out, Crc32c(out));
  return out;
}

Status TsdbStateMachine::Restore(std::string_view snapshot) {
  if (snapshot.size() < 4) {
    return Status::Corruption("tsdb snapshot: too short");
  }
  std::string_view body = snapshot.substr(0, snapshot.size() - 4);
  std::string_view crc_part = snapshot.substr(snapshot.size() - 4);
  uint32_t stored_crc = 0;
  if (!GetFixed32(&crc_part, &stored_crc) || Crc32c(body) != stored_crc) {
    return Status::Corruption("tsdb snapshot: crc mismatch");
  }

  uint64_t version = 0;
  uint64_t applied = 0;
  uint64_t ingested = 0;
  uint64_t corrupt = 0;
  uint64_t chunk_count = 0;
  if (!GetVarint64(&body, &version) || version != kTsdbSnapshotVersion ||
      !GetVarint64(&body, &applied) || !GetVarint64(&body, &ingested) ||
      !GetVarint64(&body, &corrupt) || !GetVarint64(&body, &chunk_count)) {
    return Status::Corruption("tsdb snapshot: bad header");
  }
  std::vector<Chunk> chunks;
  chunks.reserve(chunk_count);
  for (uint64_t i = 0; i < chunk_count; ++i) {
    Chunk chunk;
    if (!GetChunk(&body, &chunk)) {
      return Status::Corruption("tsdb snapshot: bad chunk");
    }
    chunks.push_back(std::move(chunk));
  }
  uint64_t buffered_count = 0;
  if (!GetVarint64(&body, &buffered_count)) {
    return Status::Corruption("tsdb snapshot: bad buffered count");
  }
  Memtable memtable;
  for (uint64_t i = 0; i < buffered_count; ++i) {
    uint64_t series = 0;
    int64_t ts = 0;
    uint64_t bits = 0;
    if (!GetVarint64(&body, &series) || !GetVarintSigned64(&body, &ts) ||
        !GetFixed64(&body, &bits)) {
      return Status::Corruption("tsdb snapshot: bad buffered point");
    }
    memtable.Insert(series, Point{ts, BitsDouble(bits)});
  }
  if (!body.empty()) {
    return Status::Corruption("tsdb snapshot: trailing bytes");
  }

  applied_ = applied;
  ingested_points_ = ingested;
  corrupt_batches_ = corrupt;
  chunks_ = std::move(chunks);
  memtable_ = std::move(memtable);
  return Status::Ok();
}

void TsdbStateMachine::Reset() {
  memtable_ = Memtable();
  chunks_.clear();
  applied_ = 0;
  ingested_points_ = 0;
  corrupt_batches_ = 0;
}

FileStoreStateMachine::FileStoreStateMachine(Options options)
    : options_(options) {}

void FileStoreStateMachine::Reset() {
  applied_ = 0;
  bytes_written_ = 0;
}

std::string FileStoreStateMachine::Snapshot() const {
  std::string out;
  PutVarint64(&out, applied_);
  PutVarint64(&out, bytes_written_);
  PutFixed32(&out, Crc32c(out));
  return out;
}

Status FileStoreStateMachine::Restore(std::string_view snapshot) {
  if (snapshot.size() < 4) {
    return Status::Corruption("filestore snapshot: too short");
  }
  std::string_view body = snapshot.substr(0, snapshot.size() - 4);
  std::string_view crc_part = snapshot.substr(snapshot.size() - 4);
  uint32_t stored_crc = 0;
  if (!GetFixed32(&crc_part, &stored_crc) || Crc32c(body) != stored_crc) {
    return Status::Corruption("filestore snapshot: crc mismatch");
  }
  uint64_t applied = 0;
  uint64_t bytes = 0;
  if (!GetVarint64(&body, &applied) || !GetVarint64(&body, &bytes) ||
      !body.empty()) {
    return Status::Corruption("filestore snapshot: malformed");
  }
  applied_ = applied;
  bytes_written_ = bytes;
  return Status::Ok();
}

SimDuration FileStoreStateMachine::ParseCost(size_t bytes) const {
  return options_.parse_cost_per_kib * static_cast<SimDuration>(bytes) / 1024;
}

SimDuration FileStoreStateMachine::Apply(const storage::LogEntry& entry) {
  ++applied_;
  bytes_written_ += entry.payload.size();
  const double stream_seconds = static_cast<double>(entry.payload.size()) *
                                8.0 / options_.disk_bandwidth_bps;
  return options_.io_latency +
         static_cast<SimDuration>(stream_seconds *
                                  static_cast<double>(kSecond));
}

}  // namespace nbraft::tsdb
