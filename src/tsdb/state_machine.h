#ifndef NBRAFT_TSDB_STATE_MACHINE_H_
#define NBRAFT_TSDB_STATE_MACHINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "storage/log_entry.h"
#include "tsdb/encoding.h"
#include "tsdb/memtable.h"

namespace nbraft::tsdb {

/// The replicated state machine a Raft node drives. Apply() both *really
/// executes* the command (so tests can query the resulting state) and
/// returns the modelled CPU cost the simulator charges for it — this is the
/// t_apply(L) phase of the paper's cost model.
class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Applies a committed entry. Returns the modelled CPU cost.
  virtual SimDuration Apply(const storage::LogEntry& entry) = 0;

  /// Modelled CPU cost of parsing a request of `bytes` into a command
  /// (t_prs(L)); depends on the command format, hence lives here.
  virtual SimDuration ParseCost(size_t bytes) const = 0;

  virtual uint64_t applied_entries() const = 0;
  virtual std::string name() const = 0;

  /// Number of points stored for a series (follower-read support).
  /// State machines without series semantics return 0.
  virtual uint64_t PointCount(uint64_t series_id) const {
    (void)series_id;
    return 0;
  }

  /// Serializes the full state for snapshot transfer / compaction.
  virtual std::string Snapshot() const = 0;

  /// Replaces the state with a previously serialized snapshot.
  virtual Status Restore(std::string_view snapshot) = 0;

  /// Drops all state (crash recovery rebuilds by re-applying the log).
  virtual void Reset() = 0;
};

/// IoTDB-profile state machine: parses ingestion batches into a memtable
/// and flushes encoded chunks when the buffer fills. Because writes are
/// batched in memory and flushed later, per-entry apply cost is small —
/// the profile the paper measures for IoTDB in Fig. 4.
class TsdbStateMachine : public StateMachine {
 public:
  struct Options {
    /// Flush when the memtable holds this many points.
    size_t flush_threshold_points = 64 * 1024;
    /// Modelled cost to parse 1 KiB of request (memory allocation bound).
    SimDuration parse_cost_per_kib = Micros(2);
    /// Modelled cost to buffer one point.
    SimDuration insert_cost_per_point = Nanos(150);
    /// Modelled cost to encode + hand off 1 KiB at flush.
    SimDuration flush_cost_per_kib = Micros(4);
  };

  TsdbStateMachine() : TsdbStateMachine(Options()) {}
  explicit TsdbStateMachine(Options options);

  SimDuration Apply(const storage::LogEntry& entry) override;
  SimDuration ParseCost(size_t bytes) const override;
  uint64_t applied_entries() const override { return applied_; }
  std::string name() const override { return "tsdb"; }

  /// All points of a series across flushed chunks and the memtable.
  /// Fails only if a flushed chunk is corrupt.
  Result<std::vector<Point>> Query(uint64_t series_id) const;

  /// Aggregate over a series' points within [start_ts, end_ts] (IoT
  /// dashboard-style range queries). Chunk min/max metadata prunes
  /// non-overlapping chunks without decoding them.
  struct Aggregate {
    uint64_t count = 0;
    double min = 0;
    double max = 0;
    double sum = 0;
    double Mean() const { return count == 0 ? 0.0 : sum / count; }
  };
  Result<Aggregate> AggregateRange(uint64_t series_id, int64_t start_ts,
                                   int64_t end_ts) const;

  uint64_t PointCount(uint64_t series_id) const override;

  /// Serializes chunks + buffered points + counters into a self-described
  /// binary snapshot (CRC-protected), and restores from one.
  std::string Snapshot() const override;
  Status Restore(std::string_view snapshot) override;
  void Reset() override;

  size_t flushed_chunks() const { return chunks_.size(); }
  uint64_t ingested_points() const { return ingested_points_; }
  uint64_t corrupt_batches() const { return corrupt_batches_; }
  const Memtable& memtable() const { return memtable_; }

 private:
  Options options_;
  Memtable memtable_;
  std::vector<Chunk> chunks_;
  uint64_t applied_ = 0;
  uint64_t ingested_points_ = 0;
  uint64_t corrupt_batches_ = 0;
};

/// Ratis-FileStore-profile state machine: every request pays a synchronous
/// I/O cost, so t_apply is large — the contrasting profile of Fig. 4.
class FileStoreStateMachine : public StateMachine {
 public:
  struct Options {
    SimDuration io_latency = Micros(120);    ///< Per-request sync write.
    double disk_bandwidth_bps = 2e9;         ///< Streaming write bandwidth.
    SimDuration parse_cost_per_kib = Micros(3);
  };

  FileStoreStateMachine() : FileStoreStateMachine(Options()) {}
  explicit FileStoreStateMachine(Options options);

  SimDuration Apply(const storage::LogEntry& entry) override;
  SimDuration ParseCost(size_t bytes) const override;
  uint64_t applied_entries() const override { return applied_; }
  std::string name() const override { return "filestore"; }

  std::string Snapshot() const override;
  Status Restore(std::string_view snapshot) override;
  void Reset() override;

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  Options options_;
  uint64_t applied_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace nbraft::tsdb

#endif  // NBRAFT_TSDB_STATE_MACHINE_H_
